// bench_scale_test.go is the million-gate scaling record behind
// BENCH_scale.json: every stage of the compile path — streaming Verilog
// parse, evaluation-engine compile, timing-graph compile, full
// multi-corner STA, and incremental re-timing under sparse SP deltas —
// benchmarked at 10^4, 10^5 and 10^6 cells of the parametric pipelined
// core. The incremental case perturbs 100 net SPs per iteration
// (<0.1% of cells at every size), the profile-refinement shape the
// incremental engine exists for.
package vega_test

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/aging"
	"repro/internal/cell"
	"repro/internal/engine"
	"repro/internal/netlist"
	"repro/internal/sim"
	"repro/internal/sta"
	"repro/internal/synth"
)

// scaleCase prepares one netlist size with a seeded random SP profile
// and a 4-corner lifetime grid at a just-passing period.
func scaleCase(target int) (*netlist.Netlist, sta.BatchConfig, []sta.Corner) {
	nl := synth.PipelineForCells(target).Build()
	lib := cell.Lib28()
	rng := rand.New(rand.NewSource(int64(target)))
	prof := &sim.Profile{Cycles: 1, SP: make([]float64, nl.NumNets)}
	for i := range prof.SP {
		prof.SP[i] = rng.Float64()
	}
	cfg := sta.BatchConfig{
		PeriodPs:    sta.CriticalDelay(nl, lib) * 1.05,
		Base:        lib,
		Model:       aging.Default(),
		Profile:     prof,
		PerEndpoint: 40,
	}
	corners := []sta.Corner{{}, {Years: 3.3}, {Years: 6.6}, {Years: 10}}
	return nl, cfg, corners
}

func BenchmarkScale(b *testing.B) {
	for _, target := range []int{10_000, 100_000, 1_000_000} {
		nl, cfg, corners := scaleCase(target)
		name := fmt.Sprintf("cells=%d", len(nl.Cells))
		src := nl.Verilog()

		b.Run(name+"/parse", func(b *testing.B) {
			b.SetBytes(int64(len(src)))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := netlist.ParseVerilog(src); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(name+"/compile-engine", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				engine.Compile(nl)
			}
		})
		b.Run(name+"/compile-graph", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sta.CompileGraph(nl)
			}
		})
		b.Run(name+"/sta-full", func(b *testing.B) {
			sta.CachedGraph(nl) // compile outside the timed region
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sta.AnalyzeCorners(nl, cfg, corners)
			}
		})
		b.Run(name+"/sta-incremental", func(b *testing.B) {
			rng := rand.New(rand.NewSource(7))
			inc := sta.NewIncremental(nl, cfg, corners)
			defer inc.Close()
			inc.Results()
			changed := make([]netlist.NetID, 100)
			retimed := 0
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := range changed {
					n := netlist.NetID(rng.Intn(nl.NumNets))
					cfg.Profile.SP[n] = rng.Float64()
					changed[j] = n
				}
				inc.UpdateSP(changed)
				retimed += inc.LastRetimed
			}
			b.ReportMetric(float64(retimed)/float64(b.N), "retimed-ops/op")
		})
	}
}
