// vega-quality evaluates the generated test suites against the failing
// netlists (the emulated aged silicon) and prints the paper's Table 6
// (detection quality per failure mode, with/without mitigation) and
// Table 7 (Vega vs random test suites).
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/lift"
	"repro/internal/report"
)

func main() {
	seeds := flag.Int("seeds", 10, "random-suite seeds for Table 7")
	years := flag.Float64("years", 10, "assumed lifetime in years")
	jobs := flag.Int("j", 0, "worker parallelism (0 = all CPUs, 1 = sequential)")
	flag.Parse()

	var t6rows, t7rows [][]string
	for _, mk := range []func(core.Config) *core.Workflow{core.NewALU, core.NewFPU} {
		var suites [2]*lift.Suite
		var flows [2]*core.Workflow
		for i, mitigation := range []bool{false, true} {
			w := mk(core.Config{Years: *years, Parallelism: *jobs, Lift: lift.Config{Mitigation: mitigation}})
			fmt.Printf("lifting %s (mitigation=%v) ...\n", w.Describe(), mitigation)
			if _, err := w.ErrorLifting(); err != nil {
				log.Fatal(err)
			}
			suites[i] = w.Suite()
			flows[i] = w
		}

		for i, mitigation := range []bool{false, true} {
			fmt.Printf("evaluating %s suite (mitigation=%v, %d cases) against failing netlists ...\n",
				flows[i].Module.Name, mitigation, len(suites[i].Cases))
			qrows, err := flows[i].TestQuality(suites[i])
			if err != nil {
				log.Fatal(err)
			}
			for _, q := range qrows {
				t6rows = append(t6rows, []string{
					q.Unit, cfg(mitigation), q.FM.String(),
					report.Pct(q.Pct(q.Detected)), report.Pct(q.Pct(q.Before)),
					report.Pct(q.Pct(q.Later)), report.Pct(q.Pct(q.Stall)),
				})
			}
		}

		fmt.Printf("Table 7 comparison for %s (%d random seeds) ...\n", flows[0].Module.Name, *seeds)
		vrows, err := flows[0].VsRandom(suites[0], *seeds)
		if err != nil {
			log.Fatal(err)
		}
		for _, r := range vrows {
			t7rows = append(t7rows, []string{
				r.Unit, r.FM.String(),
				report.Pct(r.VegaPct), report.Pct(r.RandomPct),
			})
		}
	}

	fmt.Println("\nTable 6 — quality of the generated test cases (% of failing netlists):")
	fmt.Print(report.Table(
		[]string{"Unit", "Config", "FM", "Det.", "B", "L", "S"}, t6rows))
	fmt.Println("\nTable 7 — Vega vs random test suites (% detected):")
	fmt.Print(report.Table([]string{"Unit", "FM", "Vega", "Random"}, t7rows))
}

func cfg(m bool) string {
	if m {
		return "w/ mitig"
	}
	return "w/o mitig"
}
