// vega-inject runs the fault-injection campaign: it lifts a unit's test
// suite, samples fault universes the pipeline did NOT target (off-path
// stuck-at, transient flips, intermittent flips, multi-fault silicon),
// runs every injection under the suite, and prints the escape-rate
// table per fault class. Injections are classified by packed concurrent
// fault simulation — 63 faults share one compiled gate-level wave and
// diverging lanes retire to per-fault continuations — with `-scalar`
// forcing the one-replay-per-injection baseline and `-stats` printing
// the wave occupancy and retirement accounting. Campaigns can be
// deadline-bounded (-deadline) and checkpointed (-checkpoint): an
// interrupted run resumes to the identical final report.
//
// `-guards all` (or a comma-separated subset of the unit's guard names,
// see internal/guard) attaches the always-on algebraic runtime guards
// as an extra detection source: completed runs whose state diverged
// from golden but whose guard log fired are classified detected instead
// of sdc-escape, and the escape table gains per-class guard columns.
//
// SIGINT/SIGTERM interrupt the campaign gracefully through the shared
// internal/sigctx path (the same one fleetd workers drain through): the
// current checkpoint wave is flushed, the partial report and any -json
// output are written, and the process exits with code 130 so wrappers
// can tell an interrupted run from a failed one. A second signal kills
// immediately.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/inject"
	"repro/internal/report"
	"repro/internal/sigctx"
)

func main() {
	ctx, stop := sigctx.Notify(context.Background())
	err := run(ctx, os.Args[1:], os.Stdout)
	interrupted := sigctx.Interrupted(ctx) // before stop(): stop cancels too
	stop()
	if err != nil {
		fmt.Fprintln(os.Stderr, "vega-inject:", err)
		os.Exit(1)
	}
	if interrupted {
		fmt.Fprintln(os.Stderr, "vega-inject: interrupted — checkpoint flushed, resume with -checkpoint")
		os.Exit(sigctx.ExitInterrupted)
	}
}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("vega-inject", flag.ContinueOnError)
	unit := fs.String("unit", "ALU", "unit to inject (ALU or FPU)")
	seed := fs.Uint64("seed", 1, "fault-universe sampling seed")
	perClass := fs.Int("n", 25, "injections per fault class")
	mode := fs.String("mode", "standalone", "program under injection: standalone (suite image) or embedded (workload carrying the suite)")
	workload := fs.String("workload", "crc32", "embedded-mode benchmark")
	budget := fs.Float64("budget", 0.01, "embedded-mode integration overhead budget")
	maxCycles := fs.Uint64("max-cycles", 0, "per-injection cycle budget (0 = engine default)")
	deadline := fs.Duration("deadline", 0, "overall wall-clock deadline (0 = none); an expired campaign reports coverage so far")
	checkpoint := fs.String("checkpoint", "", "checkpoint file for resume (atomic JSON)")
	jsonOut := fs.String("json", "", "write the full report JSON to this file")
	years := fs.Float64("years", 10, "assumed lifetime in years")
	jobs := fs.Int("j", 0, "worker parallelism (0 = all CPUs, 1 = sequential)")
	scalar := fs.Bool("scalar", false, "force the scalar one-replay-per-injection baseline (no packed waves)")
	chaosPlan := fs.String("chaos", "", "TESTING ONLY: injected fault plan for checkpoint I/O, e.g. \"crash@3,flip@2:9\" (crash points exit the process)")
	stats := fs.Bool("stats", false, "print packed-simulation accounting (wave occupancy, retired lanes, replay savings)")
	guards := fs.String("guards", "", "always-on runtime guards: \"all\" or comma-separated guard names (empty = unguarded)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var mk func(core.Config) *core.Workflow
	switch *unit {
	case "ALU":
		mk = core.NewALU
	case "FPU":
		mk = core.NewFPU
	default:
		return fmt.Errorf("unknown unit %q", *unit)
	}
	w := mk(core.Config{Years: *years, Parallelism: *jobs})
	fmt.Fprintf(out, "lifting %s ...\n", w.Describe())
	if _, err := w.ErrorLifting(); err != nil {
		return err
	}
	fmt.Fprintf(out, "suite: %d cases; sampling %d injections per class (seed %d, mode %s)\n",
		len(w.Suite().Cases), *perClass, *seed, *mode)

	if *deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *deadline)
		defer cancel()
	}
	var fsys chaos.FS
	if *chaosPlan != "" {
		plan, err := chaos.ParsePlan(*chaosPlan)
		if err != nil {
			return err
		}
		inj := chaos.NewInjected(chaos.OS{}, plan)
		inj.ExitOnCrash = true // crash points kill the process, like real power loss
		fsys = inj
		fmt.Fprintf(os.Stderr, "vega-inject: CHAOS MODE — fault plan %q armed on checkpoint I/O\n", plan.String())
	}

	start := time.Now()
	rep, ps, err := w.InjectionCampaignStats(ctx, core.InjectOptions{
		Seed:           *seed,
		PerClass:       *perClass,
		Mode:           *mode,
		Workload:       *workload,
		Budget:         *budget,
		MaxCycles:      *maxCycles,
		CheckpointPath: *checkpoint,
		FS:             fsys,
		Scalar:         *scalar,
		Guards:         guardList(*guards),
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "campaign: %d/%d injections classified in %s", rep.Completed, rep.Total,
		time.Since(start).Round(time.Millisecond))
	if rep.Partial {
		if sigctx.Interrupted(ctx) {
			fmt.Fprintf(out, " (PARTIAL — interrupted; coverage so far, resume with -checkpoint)")
		} else {
			fmt.Fprintf(out, " (PARTIAL — deadline hit; coverage so far, resume with -checkpoint)")
		}
	}
	fmt.Fprintln(out)

	fmt.Fprintf(out, "\nEscape rates per fault class (%s, %s mode):\n", rep.Unit, rep.Mode)
	fmt.Fprint(out, report.EscapeTable(rep))

	if *stats {
		if ps == nil {
			fmt.Fprintf(out, "\npacked stats: unavailable (scalar baseline path)\n")
		} else {
			fmt.Fprintf(out, "\nPacked simulation accounting (golden run: %d unit ops):\n", ps.GoldenOps)
			fmt.Fprint(out, report.PackedStatsTable(ps))
			fmt.Fprintf(out, "retired-lane savings: %.1f%% of per-lane unit-op work avoided by wave sharing and early retirement\n",
				100*ps.TotalSavings())
		}
	}

	escaped := 0
	for _, r := range rep.Results {
		if r.Outcome == inject.SDCEscape.String() {
			escaped++
		}
	}
	if escaped > 0 {
		fmt.Fprintf(out, "\n%d silent escapes:\n", escaped)
		for _, r := range rep.Results {
			if r.Outcome == inject.SDCEscape.String() {
				fmt.Fprintf(out, "  %s (%d cycles)\n", r.Spec, r.Cycles)
			}
		}
	}
	detectedCases, guardDetected := 0, 0
	for _, r := range rep.Results {
		if r.Outcome == inject.Detected.String() {
			detectedCases++
			if r.Guard != "" && r.Halt == "exit" {
				guardDetected++
			}
		}
	}
	fmt.Fprintf(out, "\ntotals: detected %d, escapes %d of %d completed\n", detectedCases, escaped, rep.Completed)
	if len(rep.Guards) > 0 {
		fmt.Fprintf(out, "guards %s: %d of the %d detections are guard catches the suite missed\n",
			strings.Join(rep.Guards, ","), guardDetected, detectedCases)
	}

	if *jsonOut != "" {
		data, err := rep.JSON()
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonOut, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "report written to %s\n", *jsonOut)
	}
	return nil
}

// guardList splits the -guards flag into the name list the campaign
// expects; whitespace around commas is tolerated.
func guardList(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}
