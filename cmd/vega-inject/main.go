// vega-inject runs the fault-injection campaign: it lifts a unit's test
// suite, samples fault universes the pipeline did NOT target (off-path
// stuck-at, transient flips, intermittent flips, multi-fault silicon),
// runs every injection under the suite, and prints the escape-rate
// table per fault class. Campaigns can be deadline-bounded (-deadline)
// and checkpointed (-checkpoint): an interrupted run resumes to the
// identical final report.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/inject"
	"repro/internal/report"
)

func main() {
	unit := flag.String("unit", "ALU", "unit to inject (ALU or FPU)")
	seed := flag.Uint64("seed", 1, "fault-universe sampling seed")
	perClass := flag.Int("n", 25, "injections per fault class")
	mode := flag.String("mode", "standalone", "program under injection: standalone (suite image) or embedded (workload carrying the suite)")
	workload := flag.String("workload", "crc32", "embedded-mode benchmark")
	budget := flag.Float64("budget", 0.01, "embedded-mode integration overhead budget")
	maxCycles := flag.Uint64("max-cycles", 0, "per-injection cycle budget (0 = engine default)")
	deadline := flag.Duration("deadline", 0, "overall wall-clock deadline (0 = none); an expired campaign reports coverage so far")
	checkpoint := flag.String("checkpoint", "", "checkpoint file for resume (atomic JSON)")
	jsonOut := flag.String("json", "", "write the full report JSON to this file")
	years := flag.Float64("years", 10, "assumed lifetime in years")
	jobs := flag.Int("j", 0, "worker parallelism (0 = all CPUs, 1 = sequential)")
	flag.Parse()

	var mk func(core.Config) *core.Workflow
	switch *unit {
	case "ALU":
		mk = core.NewALU
	case "FPU":
		mk = core.NewFPU
	default:
		log.Fatalf("unknown unit %q", *unit)
	}
	w := mk(core.Config{Years: *years, Parallelism: *jobs})
	fmt.Printf("lifting %s ...\n", w.Describe())
	if _, err := w.ErrorLifting(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("suite: %d cases; sampling %d injections per class (seed %d, mode %s)\n",
		len(w.Suite().Cases), *perClass, *seed, *mode)

	ctx := context.Background()
	if *deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *deadline)
		defer cancel()
	}
	start := time.Now()
	rep, err := w.InjectionCampaign(ctx, core.InjectOptions{
		Seed:           *seed,
		PerClass:       *perClass,
		Mode:           *mode,
		Workload:       *workload,
		Budget:         *budget,
		MaxCycles:      *maxCycles,
		CheckpointPath: *checkpoint,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("campaign: %d/%d injections classified in %s", rep.Completed, rep.Total,
		time.Since(start).Round(time.Millisecond))
	if rep.Partial {
		fmt.Printf(" (PARTIAL — deadline hit; coverage so far, resume with -checkpoint)")
	}
	fmt.Println()

	fmt.Printf("\nEscape rates per fault class (%s, %s mode):\n", rep.Unit, rep.Mode)
	fmt.Print(report.EscapeTable(rep))

	escaped := 0
	for _, r := range rep.Results {
		if r.Outcome == inject.SDCEscape.String() {
			escaped++
		}
	}
	if escaped > 0 {
		fmt.Printf("\n%d silent escapes:\n", escaped)
		for _, r := range rep.Results {
			if r.Outcome == inject.SDCEscape.String() {
				fmt.Printf("  %s (%d cycles)\n", r.Spec, r.Cycles)
			}
		}
	}
	detectedCases := 0
	for _, r := range rep.Results {
		if r.Outcome == inject.Detected.String() {
			detectedCases++
		}
	}
	fmt.Printf("\ntotals: detected %d, escapes %d of %d completed\n", detectedCases, escaped, rep.Completed)

	if *jsonOut != "" {
		data, err := rep.JSON()
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*jsonOut, data, 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("report written to %s\n", *jsonOut)
	}
}
