package main

import (
	"context"
	"strings"
	"testing"
)

// TestRunSmokeStats drives the CLI end to end on a tiny ALU campaign
// with -stats: the escape table, the packed-simulation accounting, and
// the totals line must all appear in the output.
func TestRunSmokeStats(t *testing.T) {
	var out strings.Builder
	err := run(context.Background(), []string{"-unit", "ALU", "-n", "2", "-seed", "3", "-j", "1", "-stats"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"campaign: 8/8 injections classified",
		"Escape rates per fault class",
		"95% CI",
		"Packed simulation accounting",
		"Occup.",
		"retired-lane savings:",
		"totals: detected",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

// TestRunScalarStats pins the -scalar/-stats interaction: the baseline
// path has no packed accounting to print and must say so rather than
// fabricate a table.
func TestRunScalarStats(t *testing.T) {
	var out strings.Builder
	err := run(context.Background(), []string{"-unit", "ALU", "-n", "1", "-seed", "3", "-j", "1", "-scalar", "-stats"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "packed stats: unavailable (scalar baseline path)") {
		t.Errorf("scalar -stats output missing unavailability notice:\n%s", out.String())
	}
}

// TestRunBadUnit pins the error path: an unknown unit is an error, not
// an os.Exit, so the CLI surface stays testable.
func TestRunBadUnit(t *testing.T) {
	var out strings.Builder
	if err := run(context.Background(), []string{"-unit", "VPU"}, &out); err == nil {
		t.Fatal("expected error for unknown unit")
	}
}

// TestRunGuards drives a guarded campaign: the escape table must grow
// the guard columns and the totals must attribute guard catches.
func TestRunGuards(t *testing.T) {
	var out strings.Builder
	err := run(context.Background(), []string{"-unit", "ALU", "-n", "2", "-seed", "3", "-j", "1", "-guards", "all"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"GrdDet", "GrdFire", "guards res3,parity,bounds,flags:"} {
		if !strings.Contains(got, want) {
			t.Errorf("guarded output missing %q:\n%s", want, got)
		}
	}
}

// TestRunBadGuard: an unknown guard name surfaces as a clean error
// naming the available guards.
func TestRunBadGuard(t *testing.T) {
	var out strings.Builder
	err := run(context.Background(), []string{"-unit", "ALU", "-n", "1", "-j", "1", "-guards", "res9"}, &out)
	if err == nil {
		t.Fatal("expected error for unknown guard")
	}
	if !strings.Contains(err.Error(), "res9") {
		t.Errorf("error does not name the bad guard: %v", err)
	}
}
