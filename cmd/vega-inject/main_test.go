package main

import (
	"strings"
	"testing"
)

// TestRunSmokeStats drives the CLI end to end on a tiny ALU campaign
// with -stats: the escape table, the packed-simulation accounting, and
// the totals line must all appear in the output.
func TestRunSmokeStats(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-unit", "ALU", "-n", "2", "-seed", "3", "-j", "1", "-stats"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"campaign: 8/8 injections classified",
		"Escape rates per fault class",
		"95% CI",
		"Packed simulation accounting",
		"Occup.",
		"retired-lane savings:",
		"totals: detected",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

// TestRunScalarStats pins the -scalar/-stats interaction: the baseline
// path has no packed accounting to print and must say so rather than
// fabricate a table.
func TestRunScalarStats(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-unit", "ALU", "-n", "1", "-seed", "3", "-j", "1", "-scalar", "-stats"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "packed stats: unavailable (scalar baseline path)") {
		t.Errorf("scalar -stats output missing unavailability notice:\n%s", out.String())
	}
}

// TestRunBadUnit pins the error path: an unknown unit is an error, not
// an os.Exit, so the CLI surface stays testable.
func TestRunBadUnit(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-unit", "VPU"}, &out); err == nil {
		t.Fatal("expected error for unknown unit")
	}
}
