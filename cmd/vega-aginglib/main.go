// vega-aginglib prints the paper's Figure 4 (cell delay degradation vs
// signal probability over time) and emits the generated software aging
// library (§3.4.1): a C file with one inline-assembly function per test
// case plus scheduling helpers, and a Go (cgo) wrapper.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/aging"
	"repro/internal/cell"
	"repro/internal/core"
	"repro/internal/integrate"
	"repro/internal/lift"
)

func main() {
	outDir := flag.String("out", ".", "directory for the generated library sources")
	years := flag.Float64("years", 10, "assumed lifetime in years")
	jobs := flag.Int("j", 0, "worker parallelism (0 = all CPUs, 1 = sequential)")
	flag.Parse()

	// Figure 4: switching-delay degradation of the 28nm XOR cell.
	fmt.Println("Figure 4 — XOR cell delay degradation over a 10-year period:")
	model := aging.Default()
	fmt.Printf("%8s", "years")
	sps := []float64{0.0, 0.25, 0.5, 0.75, 1.0}
	for _, sp := range sps {
		fmt.Printf("  SP=%.2f", sp)
	}
	fmt.Println()
	for _, yr := range []float64{0.5, 1, 2, 4, 6, 8, 10} {
		fmt.Printf("%8.1f", yr)
		for _, sp := range sps {
			f := model.DelayFactor(cell.XOR2, sp, yr)
			fmt.Printf("  %+5.2f%%", (f-1)*100)
		}
		fmt.Println()
	}
	fmt.Println()

	// Generate the aging library from freshly lifted suites.
	cfg := core.Config{Years: *years, Parallelism: *jobs, Lift: lift.Config{Mitigation: true}}
	var suites []*lift.Suite
	for _, mk := range []func(core.Config) *core.Workflow{core.NewALU, core.NewFPU} {
		w := mk(cfg)
		fmt.Printf("lifting %s ...\n", w.Describe())
		if _, err := w.ErrorLifting(); err != nil {
			log.Fatal(err)
		}
		suites = append(suites, w.Suite())
	}

	cPath := filepath.Join(*outDir, "vega_aging.c")
	goPath := filepath.Join(*outDir, "vega_aging_wrapper.go")
	if err := os.WriteFile(cPath, []byte(integrate.GenerateC(suites)), 0o644); err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(goPath, []byte(integrate.GenerateGoWrapper()), 0o644); err != nil {
		log.Fatal(err)
	}
	total := 0
	for _, s := range suites {
		total += len(s.Cases)
	}
	fmt.Printf("wrote %s and %s (%d test cases)\n", cPath, goPath, total)
}
