// vega-failnets emits the circuit-level failure models — the paper's
// third stated contribution: for every aging-prone path found by the
// analysis it writes the failing netlist (§3.3.2) as a synthesizable
// structural Verilog file, in each failure mode, and verifies that every
// emitted file parses back into an identical-shape netlist.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/bmc"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/lift"
	"repro/internal/netlist"
)

func main() {
	outDir := flag.String("out", "failnets", "output directory")
	unit := flag.String("unit", "ALU", "unit to export (ALU or FPU)")
	limit := flag.Int("limit", 0, "max pairs to export (0 = all)")
	jobs := flag.Int("j", 0, "worker parallelism (0 = all CPUs, 1 = sequential)")
	cover := flag.Bool("cover", false, "run incremental BMC per exported pair and report minimal cover depths + solver stats")
	flag.Parse()

	var w *core.Workflow
	switch strings.ToUpper(*unit) {
	case "ALU":
		w = core.NewALU(core.Config{Parallelism: *jobs})
	case "FPU":
		w = core.NewFPU(core.Config{Parallelism: *jobs})
	default:
		log.Fatalf("unknown unit %q", *unit)
	}
	fmt.Printf("analyzing %s ...\n", w.Describe())
	res, err := w.AgingAnalysis()
	if err != nil {
		log.Fatal(err)
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		log.Fatal(err)
	}

	written := 0
	var agg bmc.Stats
	covered := 0
	for i, p := range res.Pairs {
		if *limit > 0 && i >= *limit {
			break
		}
		for _, c := range []fault.CValue{fault.C0, fault.C1, fault.CRandom} {
			spec := fault.Spec{Type: p.Type, Start: p.Pair.Start, End: p.Pair.End, C: c}
			failing := fault.FailingNetlist(w.Module.Netlist, spec)
			src := failing.Verilog()

			// Round-trip check: the artifact must reload.
			back, err := netlist.ParseVerilog(src)
			if err != nil {
				log.Fatalf("%s: emitted Verilog does not parse: %v", spec.Name(w.Module.Netlist), err)
			}
			if len(back.Cells) != len(failing.Cells) {
				log.Fatalf("%s: round trip lost cells (%d vs %d)",
					spec.Name(w.Module.Netlist), len(back.Cells), len(failing.Cells))
			}

			name := fmt.Sprintf("%s_%02d_%s_%s_C%s.v",
				strings.ToLower(w.Module.Name), i,
				w.Module.Netlist.Cells[p.Pair.Start].Name,
				w.Module.Netlist.Cells[p.Pair.End].Name, c)
			name = strings.Map(func(r rune) rune {
				switch r {
				case '$':
					return '_'
				}
				return r
			}, name)
			path := filepath.Join(*outDir, name)
			if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
				log.Fatal(err)
			}
			written++

			// Trace generation requires a constant C (0 or 1); CRandom
			// exists only as an emulation artifact.
			if *cover && c != fault.CRandom {
				inst := fault.ShadowReplica(w.Module.Netlist, spec)
				r := bmc.Cover(inst.Netlist, inst.Covers, lift.BMCConfig(w.Module, lift.Config{}))
				agg = agg.Add(r.Stats)
				if r.Verdict == bmc.Covered {
					covered++
					fmt.Printf("  %-40s minimal depth %d (conflicts %d)\n",
						spec.Name(w.Module.Netlist), r.Depth, r.Stats.Solver.Conflicts)
				} else {
					fmt.Printf("  %-40s %v at depth %d (conflicts %d)\n",
						spec.Name(w.Module.Netlist), r.Verdict, r.Depth, r.Stats.Solver.Conflicts)
				}
			}
		}
	}
	fmt.Printf("wrote %d failing netlists to %s (all verified by parse-back)\n", written, *outDir)
	if *cover {
		fmt.Printf("cover summary: %d covered; solver totals: %d solves, %d vars, %d clauses, %d conflicts, %d propagations, %d restarts, %d learnts\n",
			covered, agg.Solves, agg.Vars, agg.Clauses,
			agg.Solver.Conflicts, agg.Solver.Propagations, agg.Solver.Restarts, agg.Solver.Learnts)
	}
}
