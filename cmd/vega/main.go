// vega runs the complete three-phase workflow end to end for both units
// and prints a summary of every phase: the aging analysis, the lifted
// test suite, a detection-quality check against emulated aged silicon,
// and a sample integration.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/embench"
	"repro/internal/integrate"
	"repro/internal/lift"
	"repro/internal/profile"
	"repro/internal/report"
)

func main() {
	years := flag.Float64("years", 10, "assumed lifetime in years")
	mitigation := flag.Bool("mitigation", false, "enable the initial-value-dependency mitigation")
	budget := flag.Float64("budget", 0.01, "integration overhead budget")
	jobs := flag.Int("j", 0, "worker parallelism (0 = all CPUs, 1 = sequential)")
	flag.Parse()

	cfg := core.Config{Years: *years, Parallelism: *jobs, Lift: lift.Config{Mitigation: *mitigation}}
	var suites []*lift.Suite

	for _, mk := range []func(core.Config) *core.Workflow{core.NewALU, core.NewFPU} {
		w := mk(cfg)
		fmt.Printf("== %s ==\n", w.Describe())

		fmt.Println("phase 1: aging analysis (signal probability + aged STA)")
		res, err := w.AgingAnalysis()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  unit op density: %.4f ops/instruction over %d workload instructions\n",
			w.OpDensity, w.TotalInsts)
		fmt.Printf("  aged WNS: setup %+.1fps (%d violating paths), hold %+.1fps (%d)\n",
			res.WNSSetup, res.NumSetupViolations, res.WNSHold, res.NumHoldViolations)
		fmt.Printf("  unique aging-prone pairs: %d\n", len(res.Pairs))

		fmt.Println("phase 2: error lifting (failure models + BMC + instruction construction)")
		if _, err := w.ErrorLifting(); err != nil {
			log.Fatal(err)
		}
		t4 := core.Table4(w.Module.Name, *mitigation, w.Results)
		fmt.Printf("  outcomes: S=%d UR=%d FF=%d FC=%d (of %d pairs)\n",
			t4.S, t4.UR, t4.FF, t4.FC, t4.Total)
		suite := w.Suite()
		cycles, err := core.SuiteCycles(suite)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  suite: %d test cases, %d cycles per full pass\n", len(suite.Cases), cycles)

		fmt.Println("phase 2b: validation against emulated aged silicon")
		qrows, err := w.TestQuality(suite)
		if err != nil {
			log.Fatal(err)
		}
		for _, q := range qrows {
			fmt.Printf("  FM C=%s: detected %.1f%% (B %.1f%%, L %.1f%%, S %.1f%%)\n",
				q.FM, q.Pct(q.Detected), q.Pct(q.Before), q.Pct(q.Later), q.Pct(q.Stall))
		}
		suites = append(suites, suite)
		fmt.Println()
	}

	fmt.Println("phase 3: profile-guided test integration (sample: crc32)")
	merged := core.MergeSuites(suites...)
	b, _ := embench.ByName("crc32")
	img, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	prof := profile.Collect(img, core.MemSize, core.MaxCycles)
	insts, err := merged.InstCount()
	if err != nil {
		log.Fatal(err)
	}
	site, err := integrate.ChooseSite(prof, insts, *budget)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  chosen block @%#x (count %d), throttle period %d, est overhead %.3f%%\n",
		site.Block.Start, site.Block.Count, site.Period, site.EffOverhead*100)
	o, err := integrate.MeasureOverhead("crc32", img, merged, *budget, core.MemSize, core.MaxCycles)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  measured overhead: %.3f%% (%d -> %d cycles)\n",
		o.Fraction*100, o.BaselineCycles, o.TestedCycles)

	fmt.Println("\nper-pair lifting outcomes:")
	var rows [][]string
	for _, s := range suites {
		for _, tc := range s.Cases {
			rows = append(rows, []string{s.Unit, tc.Name, fmt.Sprint(len(tc.Ops)), tc.CoverPointName()})
		}
	}
	fmt.Print(report.Table([]string{"Unit", "Test", "Ops", "Observes"}, rows))
}
