// vega-overhead measures the runtime overhead of Profile-Guided Test
// Integration over the embench workloads — the paper's Figure 9, with
// the "-N" (no mitigation) and "-M" (with mitigation) suite configs.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/lift"
	"repro/internal/report"
)

func main() {
	budget := flag.Float64("budget", 0.01, "overhead budget fraction")
	years := flag.Float64("years", 10, "assumed lifetime in years")
	jobs := flag.Int("j", 0, "worker parallelism (0 = all CPUs, 1 = sequential)")
	flag.Parse()

	for _, mitigation := range []bool{false, true} {
		cfg := core.Config{Years: *years, Parallelism: *jobs, Lift: lift.Config{Mitigation: mitigation}}
		wALU := core.NewALU(cfg)
		wFPU := core.NewFPU(cfg)
		fmt.Printf("building suites (mitigation=%v) ...\n", mitigation)
		if _, err := wALU.ErrorLifting(); err != nil {
			log.Fatal(err)
		}
		if _, err := wFPU.ErrorLifting(); err != nil {
			log.Fatal(err)
		}
		suite := core.MergeSuites(wALU.Suite(), wFPU.Suite())
		label := "-N"
		if mitigation {
			label = "-M"
		}
		fmt.Printf("integrating %d test cases into embench (budget %.1f%%) ...\n",
			len(suite.Cases), *budget*100)
		rows, err := core.Figure9(suite, label, *budget)
		if err != nil {
			log.Fatal(err)
		}
		var labels []string
		var values []float64
		for _, r := range rows {
			labels = append(labels, r.App+r.Config)
			values = append(values, r.OverheadPct)
		}
		fmt.Printf("\nFigure 9 — performance overhead (%s suite):\n", label)
		fmt.Print(report.Bars(labels, values, 40))
		fmt.Printf("average overhead: %.3f%%\n\n", core.MeanOverheadPct(rows))
	}
}
