// vega-sta runs the Aging Analysis phase for the ALU and FPU and prints
// the paper's Table 3 (aging-aware STA results) and Figure 8 (delay-
// degradation histogram).
//
// SIGINT/SIGTERM are honoured at unit boundaries via the shared
// internal/sigctx path: the unit currently being analyzed finishes, the
// tables cover the units completed so far, and the process exits with
// code 130. A second signal kills immediately.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/report"
	"repro/internal/sigctx"
	"repro/internal/sta"
)

// timed runs f and, when -stats is on, prints its wall time and
// allocation delta (a GC first, so TotalAlloc attributes bytes to this
// stage rather than survivors of the previous one).
func timed(on bool, label string, f func()) {
	if !on {
		f()
		return
	}
	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	t0 := time.Now()
	f()
	el := time.Since(t0)
	runtime.ReadMemStats(&m1)
	fmt.Printf("  [stats] %-18s %9.1f ms  %8.1f MiB allocated\n",
		label, float64(el.Microseconds())/1000,
		float64(m1.TotalAlloc-m0.TotalAlloc)/(1<<20))
}

func main() {
	years := flag.Float64("years", 10, "assumed lifetime in years")
	bins := flag.Int("bins", 12, "histogram bins for Figure 8")
	paths := flag.Bool("paths", true, "print the worst aged path per unit")
	sweep := flag.Bool("sweep", false, "sweep lifetimes and report failure onset")
	sweepStep := flag.Float64("sweep-step", 0,
		"with -sweep: sample every STEP years from 0 to -years instead of the default coarse grid (fine grids are cheap: all corners run in one batched pass)")
	jobs := flag.Int("j", 0, "worker parallelism (0 = all CPUs, 1 = sequential)")
	randomSP := flag.Int("random-sp", 0,
		"profile-free mode: collect the SP profile from this many 64-lane packed cycles of uniform random stimulus instead of workload replay")
	stats := flag.Bool("stats", false,
		"print per-phase wall time and bytes allocated (profile, timing-graph compile, analysis) plus compiled-artifact cache counters")
	flag.Parse()

	ctx, stopSignals := sigctx.Notify(context.Background())
	defer stopSignals()

	cfg := core.Config{Years: *years, Parallelism: *jobs}
	var rows [][]string
	for _, mk := range []func(core.Config) *core.Workflow{core.NewALU, core.NewFPU} {
		if sigctx.Interrupted(ctx) {
			fmt.Println("interrupted — skipping remaining units")
			break
		}
		w := mk(cfg)
		fmt.Printf("analyzing %s ...\n", w.Describe())
		if *randomSP > 0 {
			if _, err := w.RandomSPProfile(*randomSP, 1); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  SP profile: random stimulus, %d packed cycles (%d lane-cycles)\n",
				*randomSP, w.SPProfile.Cycles)
		}
		if *stats && w.SPProfile == nil {
			timed(true, "profile workloads", func() {
				if err := w.ProfileWorkloads(); err != nil {
					log.Fatal(err)
				}
			})
		}
		timed(*stats, "compile (timing)", func() { sta.CachedGraph(w.Module.Netlist) })
		var agingErr error
		timed(*stats, "aging STA", func() { _, agingErr = w.AgingAnalysis() })
		if agingErr != nil {
			log.Fatal(agingErr)
		}
		var fresh *sta.Result
		timed(*stats, "fresh STA", func() { fresh = w.FreshAnalysis() })
		fmt.Printf("  fresh signoff: WNS setup %+.1fps, WNS hold %+.1fps (must both be positive)\n",
			fresh.WNSSetup, fresh.WNSHold)
		t3 := w.Table3()
		setup := "-"
		if t3.SetupPaths > 0 {
			setup = fmt.Sprintf("%.0fps / %d", t3.WNSSetupPs, t3.SetupPaths)
		}
		hold := "- / 0"
		if t3.HoldPaths > 0 {
			hold = fmt.Sprintf("%.0fps / %d", t3.WNSHoldPs, t3.HoldPaths)
		}
		rows = append(rows, []string{t3.Unit, setup, hold, fmt.Sprint(t3.UniquePairs)})

		fmt.Printf("\nFigure 8 — aging-induced delay increase (%s):\n", w.Module.Name)
		fmt.Print(report.Histogram(w.Figure8(*bins), 40))
		if *paths && len(w.STA.Pairs) > 0 {
			rep, err := sta.WorstPath(w.Module.Netlist, w.STA.Config, w.STA.Pairs[0].End)
			if err == nil {
				fmt.Printf("\nworst aged path (%s):\n%s", w.Module.Name, rep)
			}
		}
		if *sweep {
			grid := []float64{0, 1, 2, 3, 5, 7, 10}
			if *sweepStep > 0 {
				grid = grid[:0]
				for yr := 0.0; yr <= *years; yr += *sweepStep {
					grid = append(grid, yr)
				}
			}
			pts, err := w.LifetimeSweep(grid)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("\nlifetime sweep (%s):\n", w.Module.Name)
			for _, p := range pts {
				fmt.Printf("  %6.2fy  WNS setup %+8.1fps (%4d paths)  hold %+8.1fps (%d)\n",
					p.Years, p.WNSSetup, p.SetupViolations, p.WNSHold, p.HoldViolations)
			}
			fmt.Printf("  failure onset: %g years\n", core.FailureOnsetYears(pts))
		}
		fmt.Println()
	}

	fmt.Println("Table 3 — STA result with aging-aware timing libraries:")
	fmt.Print(report.Table(
		[]string{"Unit", "WNS / setup paths", "WNS / hold paths", "unique pairs"},
		rows))
	if *stats {
		es, gs := engine.CacheStats(), sta.GraphCacheStats()
		fmt.Printf("\ncaches: programs %d/%d hit (%d resident, %d evicted), graphs %d/%d hit (%d resident, %d evicted)\n",
			es.Hits, es.Hits+es.Misses, es.Len, es.Evictions,
			gs.Hits, gs.Hits+gs.Misses, gs.Len, gs.Evictions)
	}
	if sigctx.Interrupted(ctx) {
		os.Exit(sigctx.ExitInterrupted)
	}
}
