// vega-lift runs Error Lifting for the ALU and FPU, with and without the
// initial-value-dependency mitigation, and prints the paper's Table 4
// (construction outcomes) and Table 5 (suite sizes and cycle costs).
//
// SIGINT/SIGTERM are honoured at (unit, mitigation) boundaries via the
// shared internal/sigctx path: the lift currently running finishes, the
// tables cover the combinations completed so far, and the process exits
// with code 130. A second signal kills immediately.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/lift"
	"repro/internal/report"
	"repro/internal/sigctx"
)

func main() {
	years := flag.Float64("years", 10, "assumed lifetime in years")
	jobs := flag.Int("j", 0, "worker parallelism (0 = all CPUs, 1 = sequential)")
	flag.Parse()

	ctx, stopSignals := sigctx.Notify(context.Background())
	defer stopSignals()

	var t4rows, t5rows, statRows [][]string
lifts:
	for _, mitigation := range []bool{false, true} {
		for _, mk := range []func(core.Config) *core.Workflow{core.NewALU, core.NewFPU} {
			if sigctx.Interrupted(ctx) {
				fmt.Println("interrupted — skipping remaining configurations")
				break lifts
			}
			w := mk(core.Config{Years: *years, Parallelism: *jobs, Lift: lift.Config{Mitigation: mitigation}})
			fmt.Printf("lifting %s (mitigation=%v) ...\n", w.Describe(), mitigation)
			if _, err := w.ErrorLifting(); err != nil {
				log.Fatal(err)
			}
			for _, os := range w.LiftStats() {
				statRows = append(statRows, []string{
					w.Module.Name, cfgName(mitigation), os.Outcome.String(),
					fmt.Sprint(os.Attempts), depthSpan(os.MinDepth, os.MaxDepth),
					fmt.Sprint(os.Stats.Solves), fmt.Sprint(os.Stats.Solver.Conflicts),
					fmt.Sprint(os.Stats.Solver.Propagations), fmt.Sprint(os.Stats.Solver.Restarts),
					fmt.Sprint(os.Stats.Solver.Learnts),
				})
			}
			t4 := core.Table4(w.Module.Name, mitigation, w.Results)
			t4rows = append(t4rows, []string{
				t4.Unit, cfgName(mitigation),
				report.Pct(t4.Pct(t4.S)), report.Pct(t4.Pct(t4.UR)),
				report.Pct(t4.Pct(t4.FF)), report.Pct(t4.Pct(t4.FC)),
				fmt.Sprint(t4.Total),
			})
			t5, err := core.Table5(w.Module.Name, mitigation, w.Suite())
			if err != nil {
				log.Fatal(err)
			}
			t5rows = append(t5rows, []string{
				t5.Unit, cfgName(mitigation),
				fmt.Sprint(t5.TestCases), fmt.Sprint(t5.Cycles),
			})
		}
	}

	fmt.Println("\nTable 4 — result of test case construction (% of unique pairs):")
	fmt.Print(report.Table(
		[]string{"Unit", "Config", "S", "UR", "FF", "FC", "pairs"}, t4rows))
	fmt.Println("\nTable 5 — test cases generated and execution cycles:")
	fmt.Print(report.Table(
		[]string{"Unit", "Config", "Test Cases", "Cycles"}, t5rows))
	fmt.Println("\nSolver effort per outcome (incremental BMC; Depth is minimal for S):")
	fmt.Print(report.Table(
		[]string{"Unit", "Config", "Outcome", "Attempts", "Depth", "Solves",
			"Conflicts", "Propagations", "Restarts", "Learnts"}, statRows))
	if sigctx.Interrupted(ctx) {
		os.Exit(sigctx.ExitInterrupted)
	}
}

func cfgName(mitigation bool) string {
	if mitigation {
		return "w/ mitigation"
	}
	return "w/o mitigation"
}

// depthSpan renders a min–max depth range, collapsing equal bounds.
func depthSpan(lo, hi int) string {
	if lo == hi {
		return fmt.Sprint(lo)
	}
	return fmt.Sprintf("%d-%d", lo, hi)
}
