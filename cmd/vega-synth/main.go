// vega-synth is the million-gate scale driver: it generates a parametric
// pipelined core sized to a target cell count, round-trips it through the
// streaming Verilog writer/parser, compiles it for both evaluation
// engines, runs a batched multi-corner aging STA over a random SP
// profile, and demonstrates incremental re-timing against sparse SP
// deltas — printing wall time and bytes allocated for every stage. It is
// the command behind the scale numbers in EXPERIMENTS.md and
// BENCH_scale.json.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"runtime"
	"time"

	"repro/internal/aging"
	"repro/internal/cell"
	"repro/internal/engine"
	"repro/internal/netlist"
	"repro/internal/sim"
	"repro/internal/sta"
	"repro/internal/synth"
)

// stage runs f and prints its wall time and allocation delta. The GC runs
// first so TotalAlloc deltas attribute bytes to the stage that asked for
// them, not to a survivor of the previous one.
func stage(label string, f func()) {
	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	t0 := time.Now()
	f()
	el := time.Since(t0)
	runtime.ReadMemStats(&m1)
	fmt.Printf("  %-22s %10.1f ms  %9.1f MiB allocated\n",
		label, float64(el.Microseconds())/1000,
		float64(m1.TotalAlloc-m0.TotalAlloc)/(1<<20))
}

type countingWriter struct{ n int64 }

func (w *countingWriter) Write(p []byte) (int, error) { w.n += int64(len(p)); return len(p), nil }

func main() {
	cells := flag.Int("cells", 100000, "target cell count for the generated core")
	nCorners := flag.Int("corners", 4, "corners in the multi-corner STA (lifetimes spread over 0..-years)")
	years := flag.Float64("years", 10, "oldest corner's assumed lifetime")
	deltas := flag.Int("deltas", 100, "SP deltas for the incremental re-timing demonstration")
	roundtrip := flag.Bool("roundtrip", true, "export the generated core to Verilog and re-parse it")
	jobs := flag.Int("j", 0, "worker parallelism for the STA report phase (0 = all CPUs)")
	seed := flag.Int64("seed", 1, "seed for the random SP profile and the delta selection")
	flag.Parse()

	p := synth.PipelineForCells(*cells)
	fmt.Printf("pipeline: %d stages x %d lanes, %d-bit datapath (target %d cells)\n",
		p.Stages, p.Lanes, p.Width, *cells)

	var nl *netlist.Netlist
	stage("generate", func() { nl = p.Build() })
	st := nl.Stats()
	fmt.Printf("  -> %d cells (%d DFFs, %d comb, %d clock), %d nets\n",
		st.Cells, st.DFFs, st.Comb, st.ClockCells, st.Nets)

	if *roundtrip {
		var cw countingWriter
		stage("export verilog", func() {
			if err := nl.WriteVerilog(&cw); err != nil {
				log.Fatal(err)
			}
		})
		fmt.Printf("  -> %.1f MiB of Verilog\n", float64(cw.n)/(1<<20))
		pr, pw := io.Pipe()
		go func() { pw.CloseWithError(nl.WriteVerilog(pw)) }()
		var back *netlist.Netlist
		stage("parse verilog", func() {
			var err error
			back, err = netlist.ParseVerilogReader(pr)
			if err != nil {
				log.Fatal(err)
			}
		})
		if back.Stats() != st {
			log.Fatalf("round trip changed the netlist: %+v -> %+v", st, back.Stats())
		}
	}

	var prog *engine.Program
	stage("compile (engine)", func() { prog = engine.Compile(nl) })
	fmt.Printf("  -> %s\n", prog.Stats())

	stage("compile (timing)", func() { sta.CachedGraph(nl) })

	lib := cell.Lib28()
	rng := rand.New(rand.NewSource(*seed))
	prof := &sim.Profile{Cycles: 1, SP: make([]float64, nl.NumNets)}
	for i := range prof.SP {
		prof.SP[i] = rng.Float64()
	}
	cfg := sta.BatchConfig{
		PeriodPs:    sta.CriticalDelay(nl, lib) * 1.05,
		Base:        lib,
		Model:       aging.Default(),
		Profile:     prof,
		PerEndpoint: 40,
		Parallelism: *jobs,
	}
	corners := make([]sta.Corner, *nCorners)
	for i := range corners {
		if *nCorners > 1 {
			corners[i] = sta.Corner{Years: *years * float64(i) / float64(*nCorners-1)}
		} else {
			corners[i] = sta.Corner{Years: *years}
		}
	}
	var results []*sta.Result
	stage(fmt.Sprintf("full STA (%d corners)", len(corners)), func() {
		results = sta.AnalyzeCorners(nl, cfg, corners)
	})
	last := results[len(results)-1]
	fmt.Printf("  -> @%gy: WNS setup %+.1fps (%d violations), hold %+.1fps (%d)\n",
		corners[len(corners)-1].Years, last.WNSSetup, last.NumSetupViolations,
		last.WNSHold, last.NumHoldViolations)

	// Incremental demonstration: perturb a sparse set of net SPs and
	// re-time only the affected fanout cones, against the cost of a full
	// re-analysis over the same mutated profile.
	var inc *sta.Incremental
	stage("incremental warmup", func() { inc = sta.NewIncremental(nl, cfg, corners) })
	defer inc.Close()
	changed := make([]netlist.NetID, *deltas)
	for i := range changed {
		n := netlist.NetID(rng.Intn(nl.NumNets))
		prof.SP[n] = rng.Float64()
		changed[i] = n
	}
	stage(fmt.Sprintf("incremental (%d deltas)", *deltas), func() { inc.UpdateSP(changed) })
	fmt.Printf("  -> re-timed %d of %d combinational ops\n",
		inc.LastRetimed, st.Comb)
	stage("full STA (re-run)", func() { sta.AnalyzeCorners(nl, cfg, corners) })

	es, gs := engine.CacheStats(), sta.GraphCacheStats()
	fmt.Printf("caches: programs %d/%d hit (%d resident), graphs %d/%d hit (%d resident)\n",
		es.Hits, es.Hits+es.Misses, es.Len, gs.Hits, gs.Hits+gs.Misses, gs.Len)
}
