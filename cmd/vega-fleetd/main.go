// vega-fleetd is the fleet screening daemon: an HTTP/JSON service that
// accepts lift, sweep and injection-campaign submissions, shards them
// across a bounded worker pool, and shares one content-addressed
// compile cache across every job (see internal/fleet). Job state
// persists under -dir; a restarted daemon requeues interrupted work and
// resumes checkpointed campaigns to byte-identical reports.
//
// SIGINT/SIGTERM drain gracefully through the shared internal/sigctx
// path — running campaigns flush their current checkpoint wave and are
// requeued on disk — and the process exits with code 130. A second
// signal kills immediately.
//
// -loadtest switches to the benchmark harness instead of serving: an
// in-process daemon is driven with -jobs submissions at -concurrency
// concurrent clients over a mixed hot/cold netlist population, and the
// warm/cold latency split plus cache counters are written to -o (see
// internal/fleet/loadtest and BENCH_fleetd.json).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"runtime"
	"time"

	"repro/internal/chaos"
	"repro/internal/fleet"
	"repro/internal/fleet/loadtest"
	"repro/internal/sigctx"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	dir := flag.String("dir", "fleetd-state", "job-state directory (records + campaign checkpoints)")
	workers := flag.Int("workers", runtime.NumCPU(), "worker pool size")
	jobsFlag := flag.Int("j", 1, "per-job internal parallelism (results are identical at every setting)")
	cache := flag.Int("cache", 128, "shared artifact-store capacity")
	jobTimeout := flag.Duration("job-timeout", 0, "per-job execution deadline (0 = none); expired jobs are retried up to -max-attempts")
	maxAttempts := flag.Int("max-attempts", 0, "execution attempts before a job fails as poison (0 = default 5)")
	maxBody := flag.Int64("max-body", 0, "POST /jobs body cap in bytes (0 = default 8 MiB); oversized submissions get 413")
	chaosPlan := flag.String("chaos", "", "TESTING ONLY: injected fault plan for the daemon's own I/O, e.g. \"crash@17,torn@5:12,flip@7:3\" (crash points exit the process)")

	loadMode := flag.Bool("loadtest", false, "run the load-test harness against an in-process daemon instead of serving")
	ltJobs := flag.Int("jobs", 3000, "loadtest: total submissions")
	ltConc := flag.Int("concurrency", 1000, "loadtest: concurrent submitting clients")
	ltCells := flag.Int("cells", 2000, "loadtest: approximate netlist size")
	ltOut := flag.String("o", "BENCH_fleetd.json", "loadtest: report output path")
	flag.Parse()

	opts := fleet.Options{Dir: *dir, Workers: *workers, Parallelism: *jobsFlag, CacheCap: *cache,
		JobTimeout: *jobTimeout, MaxAttempts: *maxAttempts, MaxBodyBytes: *maxBody}
	if *chaosPlan != "" {
		plan, err := chaos.ParsePlan(*chaosPlan)
		if err != nil {
			fmt.Fprintln(os.Stderr, "vega-fleetd:", err)
			os.Exit(2)
		}
		inj := chaos.NewInjected(chaos.OS{}, plan)
		inj.ExitOnCrash = true // a crash point kills the live daemon for real
		opts.FS = inj
		fmt.Fprintf(os.Stderr, "vega-fleetd: CHAOS MODE — fault plan %q armed on the state directory\n", plan.String())
	}
	if *loadMode {
		if err := runLoadtest(opts, *ltJobs, *ltConc, *ltCells, *ltOut); err != nil {
			fmt.Fprintln(os.Stderr, "vega-fleetd:", err)
			os.Exit(1)
		}
		return
	}
	if err := serve(*addr, opts); err != nil {
		fmt.Fprintln(os.Stderr, "vega-fleetd:", err)
		os.Exit(1)
	}
}

// serve runs the daemon until a signal, then drains: HTTP listener
// first (no new submissions), then the worker pool (campaigns flush
// checkpoints and requeue). Exits 130 via sigctx convention.
func serve(addr string, opts fleet.Options) error {
	s, err := fleet.New(opts)
	if err != nil {
		return err
	}
	s.Start()
	// Slowloris and dead-peer protection: a client that trickles its
	// headers, never finishes its body, or parks an idle connection must
	// not pin a daemon file descriptor forever.
	httpSrv := &http.Server{
		Addr:              addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       120 * time.Second,
	}

	ctx, stop := sigctx.Notify(context.Background())
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Printf("vega-fleetd: serving on %s (workers %d, cache %d, state %s)\n",
		addr, opts.Workers, opts.CacheCap, opts.Dir)

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	fmt.Println("vega-fleetd: signal received — draining (second signal kills)")
	grace, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	_ = httpSrv.Shutdown(grace)
	if err := s.Shutdown(grace); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	fmt.Println("vega-fleetd: drained, interrupted jobs requeued on disk")
	os.Exit(sigctx.ExitInterrupted)
	return nil
}

// runLoadtest drives an in-process daemon over a real TCP listener and
// writes the report.
func runLoadtest(opts fleet.Options, jobs, concurrency, cells int, out string) error {
	opts.Dir = fmt.Sprintf("%s-loadtest", opts.Dir)
	if err := os.RemoveAll(opts.Dir); err != nil {
		return err
	}
	defer os.RemoveAll(opts.Dir)
	// The hot/cold population cycles through the cache; size the store
	// so the hot variants stay resident alongside the cold churn.
	s, err := fleet.New(opts)
	if err != nil {
		return err
	}
	s.Start()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: s.Handler()}
	go func() { _ = httpSrv.Serve(ln) }()
	defer httpSrv.Close()
	defer s.Shutdown(context.Background())

	cfg := loadtest.Config{Jobs: jobs, Concurrency: concurrency, Cells: cells}
	c := &fleet.Client{Base: "http://" + ln.Addr().String()}
	fmt.Printf("vega-fleetd: loadtest %d jobs, %d concurrent clients, ~%d cells, %d workers\n",
		jobs, concurrency, cells, opts.Workers)
	start := time.Now()
	rep, err := loadtest.Run(context.Background(), cfg, c, s.Store())
	if err != nil {
		return err
	}
	wall := time.Since(start)

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("loadtest: %d jobs in %s (%.0f jobs/s)\n", jobs, wall.Round(time.Millisecond),
		float64(jobs)/wall.Seconds())
	fmt.Printf("  warm: n=%d p50=%.2fms p99=%.2fms\n", rep.Warm.Count, rep.Warm.P50Ms, rep.Warm.P99Ms)
	fmt.Printf("  cold: n=%d p50=%.2fms p99=%.2fms\n", rep.Cold.Count, rep.Cold.P50Ms, rep.Cold.P99Ms)
	fmt.Printf("  first-wave: n=%d p50=%.2fms\n", rep.FirstWave.Count, rep.FirstWave.P50Ms)
	fmt.Printf("  cold/warm p50 ratio: %.1fx; store hit rate %.1f%% (builds %d, hits %d, coalesced %d, evictions %d)\n",
		rep.WarmColdP50Ratio, 100*rep.HitRate, rep.Store.Builds, rep.Store.Hits, rep.Store.Coalesced, rep.Store.Evictions)
	fmt.Printf("report written to %s\n", out)
	return nil
}
