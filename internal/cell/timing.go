package cell

// Timing holds the nominal (unaged, typical-corner) timing data of a cell
// kind. All values are picoseconds.
//
// For combinational and clock cells only DelayMin/DelayMax are meaningful:
// the propagation delay from any input pin to the output. For DFF cells
// DelayMin/DelayMax are the clk-to-Q delay, and Setup/Hold are the
// constraint windows around the capturing clock edge.
type Timing struct {
	DelayMin float64 // fastest input-to-output propagation (ps)
	DelayMax float64 // slowest input-to-output propagation (ps)
	Setup    float64 // DFF only: data must be stable this long before the edge
	Hold     float64 // DFF only: data must hold this long after the edge
}

// Library is a full timing characterization of the cell library, the Go
// equivalent of a .lib file at a fixed process/voltage/temperature corner.
type Library struct {
	Name   string
	Timing [NumKinds]Timing
}

// Lib28 returns the default library used for the ALU/FPU experiments. The
// values are calibrated to a generic 28nm process at the conservative
// (slow/low-voltage/hot) corner that the paper's aging-aware STA assumes:
// simple gates in the 15-40ps range, flip-flops with ~50ps clk-to-q.
func Lib28() *Library {
	l := &Library{Name: "generic28"}
	set := func(k Kind, min, max float64) { l.Timing[k] = Timing{DelayMin: min, DelayMax: max} }
	set(TIE0, 0, 0)
	set(TIE1, 0, 0)
	set(BUF, 12, 22)
	set(INV, 8, 15)
	set(AND2, 14, 26)
	set(OR2, 14, 27)
	set(NAND2, 10, 20)
	set(NOR2, 11, 22)
	set(XOR2, 18, 36)
	set(XNOR2, 18, 37)
	set(MUX2, 16, 32)
	set(AOI21, 13, 25)
	set(OAI21, 13, 26)
	set(CLKBUF, 20, 28)
	set(CLKGATE, 24, 34)
	l.Timing[DFF] = Timing{DelayMin: 40, DelayMax: 62, Setup: 46, Hold: 30}
	return l
}

// DemoLibrary returns the toy library used by the paper's Section 3
// running example: AND/XOR/DFF cells with a 0.1ns minimum and 0.3ns
// maximum delay, DFF setup 0.06ns and hold 0.03ns, at a 1GHz target.
func DemoLibrary() *Library {
	l := &Library{Name: "demo"}
	for k := Kind(0); k < numKinds; k++ {
		l.Timing[k] = Timing{DelayMin: 100, DelayMax: 300}
	}
	l.Timing[TIE0] = Timing{}
	l.Timing[TIE1] = Timing{}
	l.Timing[DFF] = Timing{DelayMin: 100, DelayMax: 300, Setup: 60, Hold: 30}
	// Clock buffers in the demo are idealized.
	l.Timing[CLKBUF] = Timing{DelayMin: 0, DelayMax: 0}
	l.Timing[CLKGATE] = Timing{DelayMin: 0, DelayMax: 0}
	return l
}
