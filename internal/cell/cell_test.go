package cell

import "testing"

func TestNumInputs(t *testing.T) {
	want := map[Kind]int{
		TIE0: 0, TIE1: 0, BUF: 1, INV: 1, DFF: 1, CLKBUF: 1,
		AND2: 2, OR2: 2, NAND2: 2, NOR2: 2, XOR2: 2, XNOR2: 2, CLKGATE: 2,
		MUX2: 3, AOI21: 3, OAI21: 3,
	}
	for k, n := range want {
		if got := k.NumInputs(); got != n {
			t.Errorf("%v.NumInputs() = %d, want %d", k, got, n)
		}
	}
}

func TestEvalTruthTables(t *testing.T) {
	b := []bool{false, true}
	for _, a := range b {
		for _, c := range b {
			in := []bool{a, c}
			if AND2.Eval(in) != (a && c) {
				t.Errorf("AND2(%v,%v)", a, c)
			}
			if OR2.Eval(in) != (a || c) {
				t.Errorf("OR2(%v,%v)", a, c)
			}
			if NAND2.Eval(in) != !(a && c) {
				t.Errorf("NAND2(%v,%v)", a, c)
			}
			if NOR2.Eval(in) != !(a || c) {
				t.Errorf("NOR2(%v,%v)", a, c)
			}
			if XOR2.Eval(in) != (a != c) {
				t.Errorf("XOR2(%v,%v)", a, c)
			}
			if XNOR2.Eval(in) != (a == c) {
				t.Errorf("XNOR2(%v,%v)", a, c)
			}
			for _, s := range b {
				in3 := []bool{a, c, s}
				wantMux := a
				if s {
					wantMux = c
				}
				if MUX2.Eval(in3) != wantMux {
					t.Errorf("MUX2(%v,%v,%v)", a, c, s)
				}
				if AOI21.Eval(in3) != !((a && c) || s) {
					t.Errorf("AOI21(%v,%v,%v)", a, c, s)
				}
				if OAI21.Eval(in3) != !((a || c) && s) {
					t.Errorf("OAI21(%v,%v,%v)", a, c, s)
				}
			}
		}
		if BUF.Eval([]bool{a}) != a {
			t.Errorf("BUF(%v)", a)
		}
		if INV.Eval([]bool{a}) != !a {
			t.Errorf("INV(%v)", a)
		}
	}
	if TIE0.Eval(nil) != false || TIE1.Eval(nil) != true {
		t.Error("TIE cells wrong")
	}
}

func TestEvalPanicsOnSequential(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Eval(DFF) did not panic")
		}
	}()
	DFF.Eval([]bool{true})
}

func TestClassification(t *testing.T) {
	if !DFF.IsSequential() || DFF.IsCombinational() || DFF.IsClock() {
		t.Error("DFF classification wrong")
	}
	if !CLKBUF.IsClock() || !CLKGATE.IsClock() || CLKBUF.IsCombinational() {
		t.Error("clock cell classification wrong")
	}
	if !AND2.IsCombinational() || AND2.IsClock() || AND2.IsSequential() {
		t.Error("AND2 classification wrong")
	}
}

func TestLibrariesPopulated(t *testing.T) {
	for _, lib := range []*Library{Lib28(), DemoLibrary()} {
		for k := Kind(0); int(k) < NumKinds; k++ {
			tm := lib.Timing[k]
			if k == TIE0 || k == TIE1 {
				continue
			}
			if lib.Name == "demo" && k.IsClock() {
				continue // idealized in the demo library
			}
			if tm.DelayMax < tm.DelayMin {
				t.Errorf("%s: %v DelayMax < DelayMin", lib.Name, k)
			}
			if tm.DelayMax <= 0 {
				t.Errorf("%s: %v has no delay data", lib.Name, k)
			}
		}
		dff := lib.Timing[DFF]
		if dff.Setup <= 0 || dff.Hold <= 0 {
			t.Errorf("%s: DFF missing setup/hold", lib.Name)
		}
	}
}

func TestKindString(t *testing.T) {
	if DFF.String() != "DFF" || XOR2.String() != "XOR2" {
		t.Error("Kind.String wrong")
	}
	if Kind(200).String() == "" {
		t.Error("out-of-range Kind.String empty")
	}
}
