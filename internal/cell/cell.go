// Package cell defines the standard cell library used by every netlist in
// this repository. It is the Go stand-in for the 28nm foundry library the
// paper synthesizes into: each kind carries a logic function and nominal
// timing data (min/max propagation delay, and setup/hold/clk-to-q for
// flip-flops). The aging package perturbs these nominal delays as a
// function of signal probability and lifetime.
package cell

import "fmt"

// Kind identifies a standard cell type.
type Kind uint8

// The library. Combinational cells compute a single output from 0-3
// inputs. DFF is the sole sequential element. CLKBUF and CLKGATE are
// clock-network cells: they carry the clock-enable signal in functional
// simulation and contribute delay (and aged skew) in timing analysis.
const (
	TIE0    Kind = iota // constant 0, no inputs
	TIE1                // constant 1, no inputs
	BUF                 // Y = A
	INV                 // Y = !A
	AND2                // Y = A & B
	OR2                 // Y = A | B
	NAND2               // Y = !(A & B)
	NOR2                // Y = !(A | B)
	XOR2                // Y = A ^ B
	XNOR2               // Y = !(A ^ B)
	MUX2                // Y = S ? B : A   (inputs A, B, S)
	AOI21               // Y = !((A & B) | C)
	OAI21               // Y = !((A | B) & C)
	DFF                 // Q <= D on rising clock edge (when clock enabled)
	CLKBUF              // clock buffer: passes the clock
	CLKGATE             // gated clock: clock & enable (inputs CLK, EN)
	numKinds
)

// NumKinds reports the number of cell kinds in the library.
const NumKinds = int(numKinds)

// MaxArity is the largest data fan-in of any cell in the library. The
// evaluation engine (internal/engine) flattens every cell's input list
// into a fixed-width array of this size, and netlist validation rejects
// cells that exceed it, so the engine can never silently drop an input.
const MaxArity = 3

var names = [...]string{
	TIE0: "TIE0", TIE1: "TIE1", BUF: "BUF", INV: "INV",
	AND2: "AND2", OR2: "OR2", NAND2: "NAND2", NOR2: "NOR2",
	XOR2: "XOR2", XNOR2: "XNOR2", MUX2: "MUX2",
	AOI21: "AOI21", OAI21: "OAI21",
	DFF: "DFF", CLKBUF: "CLKBUF", CLKGATE: "CLKGATE",
}

func (k Kind) String() string {
	if int(k) < len(names) {
		return names[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// NumInputs reports how many data inputs a cell of kind k has. For DFF
// this counts only the D pin (the clock pin is tracked separately); for
// CLKGATE it counts the enable pin (the clock pin is separate as well).
func (k Kind) NumInputs() int {
	switch k {
	case TIE0, TIE1:
		return 0
	case BUF, INV, DFF, CLKBUF:
		return 1
	case AND2, OR2, NAND2, NOR2, XOR2, XNOR2, CLKGATE:
		return 2
	case MUX2, AOI21, OAI21:
		return 3
	}
	panic("cell: unknown kind " + k.String())
}

// IsSequential reports whether k is a flip-flop.
func (k Kind) IsSequential() bool { return k == DFF }

// IsClock reports whether k is a clock-network cell.
func (k Kind) IsClock() bool { return k == CLKBUF || k == CLKGATE }

// IsCombinational reports whether k computes a pure function of its
// inputs (everything except DFF and the clock cells).
func (k Kind) IsCombinational() bool {
	return !k.IsSequential() && !k.IsClock()
}

// Eval computes the cell's output for the given input values. The slice
// length must equal NumInputs(). Sequential and clock cells are evaluated
// by the simulator, not here; calling Eval on them panics.
func (k Kind) Eval(in []bool) bool {
	switch k {
	case TIE0:
		return false
	case TIE1:
		return true
	case BUF:
		return in[0]
	case INV:
		return !in[0]
	case AND2:
		return in[0] && in[1]
	case OR2:
		return in[0] || in[1]
	case NAND2:
		return !(in[0] && in[1])
	case NOR2:
		return !(in[0] || in[1])
	case XOR2:
		return in[0] != in[1]
	case XNOR2:
		return in[0] == in[1]
	case MUX2:
		if in[2] {
			return in[1]
		}
		return in[0]
	case AOI21:
		return !((in[0] && in[1]) || in[2])
	case OAI21:
		return !((in[0] || in[1]) && in[2])
	}
	panic("cell: Eval on non-combinational kind " + k.String())
}
