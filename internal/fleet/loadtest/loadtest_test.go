package loadtest

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"testing"

	"repro/internal/fleet"
)

// startDaemon brings up an in-process fleetd over an HTTP test listener.
func startDaemon(t testing.TB, opts fleet.Options) (*fleet.Server, *fleet.Client) {
	t.Helper()
	opts.Dir = t.TempDir()
	s, err := fleet.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	h := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		h.Close()
		_ = s.Shutdown(context.Background())
	})
	return s, &fleet.Client{Base: h.URL}
}

// TestLoadBurst is the short race-mode burst CI runs: a concurrent
// submission storm against a live daemon, checking the run completes,
// the warm/cold split is populated, and the store counters add up.
func TestLoadBurst(t *testing.T) {
	s, c := startDaemon(t, fleet.Options{Workers: 8})
	cfg := Config{Jobs: 60, Concurrency: 16, Cells: 400, SPCycles: 32, HotVariants: 3, ColdEvery: 6}
	rep, err := Run(context.Background(), cfg, c, s.Store())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Warm.Count+rep.Cold.Count+rep.FirstWave.Count != cfg.Jobs {
		t.Errorf("split %d warm + %d cold + %d first-wave != %d jobs",
			rep.Warm.Count, rep.Cold.Count, rep.FirstWave.Count, cfg.Jobs)
	}
	if rep.Warm.Count == 0 {
		t.Error("no warm submissions — hot population never became resident")
	}
	if want := cfg.Jobs / cfg.ColdEvery; rep.Cold.Count != want {
		t.Errorf("%d cold submissions, want exactly %d (by construction)", rep.Cold.Count, want)
	}
	st := rep.Store
	if st.Inflight != 0 {
		t.Errorf("%d builds still in flight at rest", st.Inflight)
	}
	if st.Builds == 0 || st.Hits == 0 {
		t.Errorf("store counters implausible for a hot/cold mix: %+v", st)
	}
	data, err := json.Marshal(rep)
	if err != nil || len(data) == 0 {
		t.Fatalf("report does not serialize: %v", err)
	}
}

// TestPopulationDeterminism pins that the population depends on Config
// alone — the cold submissions really are unique, and the hot ones
// really repeat.
func TestPopulationDeterminism(t *testing.T) {
	cfg := Config{Jobs: 40, HotVariants: 3, ColdEvery: 8, Cells: 300}
	a, b := Population(cfg), Population(cfg)
	if len(a) != 40 {
		t.Fatalf("population size %d", len(a))
	}
	seen := map[string]int{}
	for i := range a {
		if a[i].Verilog != b[i].Verilog {
			t.Fatalf("population not deterministic at %d", i)
		}
		seen[a[i].Verilog]++
	}
	// 5 cold uniques + 3 hot variants.
	uniq := len(seen)
	if want := 5 + 3; uniq != want {
		t.Errorf("%d distinct netlists, want %d", uniq, want)
	}
}

// BenchmarkFleetd measures one scaled-down load-test round trip per
// iteration — the e2e cost of a mixed burst through the HTTP surface,
// worker pool and shared store.
func BenchmarkFleetd(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s, c := startDaemon(b, fleet.Options{Workers: 8})
		b.StartTimer()
		rep, err := Run(context.Background(),
			Config{Jobs: 100, Concurrency: 32, Cells: 1000, SPCycles: 64}, c, s.Store())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rep.Warm.P50Ms, "warm-p50-ms")
		b.ReportMetric(rep.Cold.P50Ms, "cold-p50-ms")
		b.ReportMetric(rep.WarmColdP50Ratio, "cold/warm-p50")
	}
}
