// Package loadtest drives a fleetd instance with thousands of
// concurrent sweep submissions over a mixed hot/cold netlist population
// and reports the latency and cache-counter evidence behind
// BENCH_fleetd.json: warm-cache submissions (content hash already
// resident in the shared store) against cold-compile submissions
// (unique netlists that pay the full parse + characterize chain).
//
// The population is honest by construction: cold submissions are the
// base netlist with a uniquified module name, so their content hash —
// and therefore their compile work — is genuinely distinct; hot
// submissions repeat a small set of variants, so after each variant's
// first build every later submission rides the cache. The split in the
// report keys off the per-job CacheHit marker the daemon records at
// submit time, and latencies are the server-side service times, so
// client-side queueing cannot flatter (or smear) the curve.
package loadtest

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/fleet"
	"repro/internal/par"
	"repro/internal/store"
	"repro/internal/synth"
)

// Config shapes one load-test run.
type Config struct {
	// Jobs is the total number of submissions (default 200).
	Jobs int
	// Concurrency is the number of concurrent submitting clients
	// (default 32). Each client submits and waits round-trip, so this
	// also bounds the daemon-side backlog.
	Concurrency int
	// HotVariants is the size of the hot netlist population (default 4);
	// ColdEvery makes every Nth submission a unique cold netlist
	// (default 10, i.e. a 10% cold mix; 0 disables cold submissions).
	HotVariants int
	ColdEvery   int
	// Cells is the approximate synthesized netlist size (default 2000).
	Cells int
	// SPCycles is the per-submission profile depth (default 128).
	SPCycles int
}

func (c *Config) fill() {
	if c.Jobs == 0 {
		c.Jobs = 200
	}
	if c.Concurrency == 0 {
		c.Concurrency = 32
	}
	if c.HotVariants == 0 {
		c.HotVariants = 4
	}
	if c.ColdEvery == 0 {
		c.ColdEvery = 10
	}
	if c.Cells == 0 {
		c.Cells = 2000
	}
	if c.SPCycles == 0 {
		c.SPCycles = 128
	}
}

// Latency summarizes one side of the warm/cold split, in milliseconds
// of server-side service time.
type Latency struct {
	Count  int     `json:"count"`
	P50Ms  float64 `json:"p50_ms"`
	P99Ms  float64 `json:"p99_ms"`
	MeanMs float64 `json:"mean_ms"`
	MaxMs  float64 `json:"max_ms"`
}

// Report is the load-test outcome, serialized into BENCH_fleetd.json.
// The three latency buckets partition the run:
//
//   - Cold: by-construction unique netlists — every one pays the full
//     parse + characterize compile chain. The honest cold curve.
//   - Warm: hot-population submissions whose artifact chain was
//     resident at submit time (CacheHit) — pure cache-served analysis.
//   - FirstWave: hot-population submissions that arrived before their
//     variant finished building — the leader pays the compile, the
//     rest coalesce onto it (singleflight). Neither warm nor a full
//     compile, so reported separately rather than polluting either
//     curve.
type Report struct {
	Jobs        int     `json:"jobs"`
	Concurrency int     `json:"concurrency"`
	Cells       int     `json:"cells"`
	Warm        Latency `json:"warm"`
	Cold        Latency `json:"cold"`
	FirstWave   Latency `json:"first_wave"`
	// WarmColdP50Ratio is the headline: cold-compile p50 over
	// warm-cache p50.
	WarmColdP50Ratio float64     `json:"warm_cold_p50_ratio"`
	Store            store.Stats `json:"store"`
	// HitRate is Hits / (Hits + Coalesced + Builds) over the whole run.
	HitRate float64 `json:"hit_rate"`
}

// isCold reports whether slot i of the population carries a unique
// (never-seen) netlist.
func (c Config) isCold(i int) bool {
	return c.ColdEvery > 0 && i%c.ColdEvery == c.ColdEvery-1
}

// Population returns the job mix: Jobs sweep specs over HotVariants
// recurring netlists with a unique cold netlist every ColdEvery-th
// slot. Deterministic in Config alone.
func Population(cfg Config) []fleet.Spec {
	cfg.fill()
	hot := make([]string, cfg.HotVariants)
	for i := range hot {
		// Structurally distinct variants: lane count perturbs the size a
		// little, which is fine — they are all "about Cells cells".
		p := synth.PipelineForCells(cfg.Cells)
		p.Lanes += i
		hot[i] = p.Build().Verilog()
	}
	specs := make([]fleet.Spec, cfg.Jobs)
	cold := 0
	for i := range specs {
		src := hot[i%len(hot)]
		if cfg.isCold(i) {
			// A unique module name gives a unique content hash: the
			// store has never seen it, so the full compile chain runs.
			cold++
			src = uniquify(hot[0], cold)
		}
		specs[i] = fleet.Spec{Kind: fleet.KindSweep, Verilog: src, SPCycles: cfg.SPCycles}
	}
	return specs
}

// uniquify renames the netlist's module so the source hashes cold while
// the structure (and so the per-submission work) stays representative.
func uniquify(src string, n int) string {
	name := moduleName(src)
	return strings.ReplaceAll(src, name, fmt.Sprintf("%s_cold%d", name, n))
}

func moduleName(src string) string {
	rest := src[strings.Index(src, "module ")+len("module "):]
	end := strings.IndexAny(rest, " (\n")
	return rest[:end]
}

// Run submits the population through c at cfg.Concurrency concurrent
// clients and assembles the report. st must be the daemon's own store
// (for the counters); pass nil to skip counter collection when driving
// a remote daemon.
func Run(ctx context.Context, cfg Config, c *fleet.Client, st *store.Store) (*Report, error) {
	cfg.fill()
	specs := Population(cfg)

	type outcome struct {
		warm      bool
		serviceMs float64
	}
	outcomes := make([]outcome, len(specs))
	err := par.ForEach(ctx, len(specs), cfg.Concurrency, func(ctx context.Context, i int) error {
		j, err := c.Submit(ctx, specs[i])
		if err != nil {
			return fmt.Errorf("submit %d: %w", i, err)
		}
		warm := j.CacheHit
		j, err = c.Wait(ctx, j.ID)
		if err != nil {
			return fmt.Errorf("wait %d: %w", i, err)
		}
		if j.Status != fleet.StatusDone {
			return fmt.Errorf("job %d finished %s: %s", i, j.Status, j.Error)
		}
		outcomes[i] = outcome{warm: warm, serviceMs: j.ServiceMs}
		return nil
	})
	if err != nil {
		return nil, err
	}

	var warmMs, coldMs, firstMs []float64
	for i, o := range outcomes {
		switch {
		case cfg.isCold(i):
			coldMs = append(coldMs, o.serviceMs)
		case o.warm:
			warmMs = append(warmMs, o.serviceMs)
		default:
			firstMs = append(firstMs, o.serviceMs)
		}
	}
	rep := &Report{
		Jobs:        cfg.Jobs,
		Concurrency: cfg.Concurrency,
		Cells:       cfg.Cells,
		Warm:        summarize(warmMs),
		Cold:        summarize(coldMs),
		FirstWave:   summarize(firstMs),
	}
	if rep.Warm.P50Ms > 0 {
		rep.WarmColdP50Ratio = rep.Cold.P50Ms / rep.Warm.P50Ms
	}
	if st != nil {
		rep.Store = st.Stats()
		if total := rep.Store.Hits + rep.Store.Coalesced + rep.Store.Builds; total > 0 {
			rep.HitRate = float64(rep.Store.Hits) / float64(total)
		}
	}
	return rep, nil
}

// summarize computes the latency digest of one split.
func summarize(ms []float64) Latency {
	if len(ms) == 0 {
		return Latency{}
	}
	sort.Float64s(ms)
	var sum float64
	for _, v := range ms {
		sum += v
	}
	return Latency{
		Count:  len(ms),
		P50Ms:  percentile(ms, 50),
		P99Ms:  percentile(ms, 99),
		MeanMs: sum / float64(len(ms)),
		MaxMs:  ms[len(ms)-1],
	}
}

// percentile reads the p-th percentile from a sorted slice using the
// nearest-rank method.
func percentile(sorted []float64, p int) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := (p*len(sorted) + 99) / 100
	if idx > 0 {
		idx--
	}
	return sorted[idx]
}
