package fleet

import (
	"bytes"
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/core"
)

// TestRestartResume is the daemon-restart contract test: a campaign job
// interrupted mid-flight (checkpoint flushed, daemon killed) must, on a
// fresh daemon over the same state directory, resume from its
// checkpoint and produce the byte-identical final report an
// uninterrupted run produces.
func TestRestartResume(t *testing.T) {
	ctx := context.Background()
	spec := Spec{Kind: KindCampaign, Unit: "ALU", Seed: 5, PerClass: 8, CheckpointEvery: 4}

	// The oracle: the same campaign through the library path, no
	// daemon, no checkpoint, no interruption.
	w := core.NewALU(core.Config{Years: 10, Parallelism: 1})
	if _, err := w.ErrorLifting(); err != nil {
		t.Fatal(err)
	}
	rep, err := w.InjectionCampaign(ctx, core.InjectOptions{Seed: 5, PerClass: 8})
	if err != nil {
		t.Fatal(err)
	}
	want, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}

	// Daemon 1: cancel the worker context synchronously at the first
	// checkpoint wave — deterministic interruption with the wave on
	// disk — then shut down.
	dir := t.TempDir()
	s1, err := New(Options{Dir: dir, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	var once sync.Once
	shutdownDone := make(chan struct{})
	s1.progressHook = func(id string, p Progress) {
		once.Do(func() {
			s1.mu.Lock()
			s1.draining = true
			s1.closed = true
			s1.mu.Unlock()
			s1.cancel() // the campaign stops at the next wave boundary
			go func() {
				_ = s1.Shutdown(context.Background())
				close(shutdownDone)
			}()
		})
	}
	s1.Start()
	sub, err := s1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	<-shutdownDone

	// The interrupted job must be requeued on disk with real progress
	// behind it — otherwise this test would not exercise resume at all.
	recovered, _, err := loadJobs(chaos.OS{}, dir)
	if err != nil {
		t.Fatal(err)
	}
	var rec *Job
	for _, j := range recovered {
		if j.ID == sub.ID {
			rec = j
		}
	}
	if rec == nil {
		t.Fatalf("job %s not on disk after shutdown", sub.ID)
	}
	if rec.Status != StatusQueued {
		t.Fatalf("interrupted job persisted as %s, want queued", rec.Status)
	}
	if rec.Progress.Done == 0 || rec.Progress.Done >= rec.Progress.Total {
		t.Fatalf("interruption landed at %d/%d — not mid-campaign", rec.Progress.Done, rec.Progress.Total)
	}

	// Harden the scenario to a true kill: a daemon that died without
	// the graceful requeue leaves the record saying "running". Restart
	// must treat that as interrupted work too.
	rec.Status = StatusRunning
	if err := saveJob(chaos.OS{}, dir, rec); err != nil {
		t.Fatal(err)
	}

	// Daemon 2 over the same directory: the job requeues, the campaign
	// resumes from <id>.ckpt, and the final report matches the oracle
	// byte for byte.
	s2, err := New(Options{Dir: dir, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	s2.Start()
	defer func() { _ = s2.Shutdown(context.Background()) }()

	if j2, ok := s2.Job(sub.ID); !ok || (j2.Status != StatusQueued && j2.Status != StatusRunning && j2.Status != StatusDone) {
		t.Fatalf("restarted daemon did not requeue the job (status %v)", j2)
	}
	final := waitServerDone(t, s2, sub.ID)
	if !bytes.Equal(final.Result, want) {
		t.Errorf("resumed report diverges from uninterrupted run:\n resumed %d bytes\n oracle  %d bytes",
			len(final.Result), len(want))
	}
	if final.Progress.Done != final.Progress.Total {
		t.Errorf("resumed job progress %d/%d", final.Progress.Done, final.Progress.Total)
	}
}

// waitServerDone polls the server directly (no HTTP) until the job is
// done, failing on any terminal non-done status.
func waitServerDone(t *testing.T, s *Server, id string) *Job {
	t.Helper()
	for {
		j, ok := s.Job(id)
		if !ok {
			t.Fatalf("job %s vanished", id)
		}
		switch j.Status {
		case StatusDone:
			return j
		case StatusFailed, StatusCancelled:
			t.Fatalf("job %s finished %s (error %q)", id, j.Status, j.Error)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
