package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"
)

// Client talks to a fleetd instance. The zero HTTP field uses a
// transport sized for load-test fan-out (many concurrent keep-alive
// connections to one host), which is also fine for a single caller.
type Client struct {
	// Base is the daemon's base URL, e.g. "http://127.0.0.1:8080".
	Base string
	// HTTP overrides the underlying client (optional).
	HTTP *http.Client
}

// defaultHTTP is shared by all zero-field Clients so the load-test's
// thousands of goroutines pool connections instead of exhausting
// ephemeral ports.
var defaultHTTP = &http.Client{
	Transport: &http.Transport{
		MaxIdleConns:        512,
		MaxIdleConnsPerHost: 512,
	},
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return defaultHTTP
}

// errorBody decodes the daemon's {"error": ...} payload.
func errorBody(resp *http.Response) error {
	var e struct {
		Error string `json:"error"`
	}
	data, _ := io.ReadAll(resp.Body)
	if json.Unmarshal(data, &e) == nil && e.Error != "" {
		return fmt.Errorf("fleet: %s: %s", resp.Status, e.Error)
	}
	return fmt.Errorf("fleet: %s", resp.Status)
}

func (c *Client) getJSON(ctx context.Context, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+path, nil)
	if err != nil {
		return err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return errorBody(resp)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Submit posts a job spec and returns the accepted record.
func (c *Client) Submit(ctx context.Context, spec Spec) (*Job, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.Base+"/jobs", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return nil, errorBody(resp)
	}
	var j Job
	if err := json.NewDecoder(resp.Body).Decode(&j); err != nil {
		return nil, err
	}
	return &j, nil
}

// Job fetches one job record (without its result payload).
func (c *Client) Job(ctx context.Context, id string) (*Job, error) {
	var j Job
	if err := c.getJSON(ctx, "/jobs/"+id, &j); err != nil {
		return nil, err
	}
	return &j, nil
}

// Wait polls until the job leaves the queued/running states, with a
// short exponential backoff so thousands of concurrent waiters don't
// hammer the daemon.
func (c *Client) Wait(ctx context.Context, id string) (*Job, error) {
	delay := 2 * time.Millisecond
	const maxDelay = 250 * time.Millisecond
	for {
		j, err := c.Job(ctx, id)
		if err != nil {
			return nil, err
		}
		if j.Status != StatusQueued && j.Status != StatusRunning {
			return j, nil
		}
		select {
		case <-ctx.Done():
			return j, ctx.Err()
		case <-time.After(delay):
		}
		if delay < maxDelay {
			delay *= 2
		}
	}
}

// Result fetches a finished job's raw result payload.
func (c *Client) Result(ctx context.Context, id string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/jobs/"+id+"/result", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, errorBody(resp)
	}
	return io.ReadAll(resp.Body)
}

// Cancel requests cancellation and returns the (possibly already
// updated) record.
func (c *Client) Cancel(ctx context.Context, id string) (*Job, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, c.Base+"/jobs/"+id, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, errorBody(resp)
	}
	var j Job
	if err := json.NewDecoder(resp.Body).Decode(&j); err != nil {
		return nil, err
	}
	return &j, nil
}

// Metrics fetches the daemon's store counters and job census.
func (c *Client) Metrics(ctx context.Context) (*Metrics, error) {
	var m Metrics
	if err := c.getJSON(ctx, "/metrics", &m); err != nil {
		return nil, err
	}
	return &m, nil
}
