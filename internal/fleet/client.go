package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/store"
)

// Client talks to a fleetd instance. The zero HTTP field uses a
// transport sized for load-test fan-out (many concurrent keep-alive
// connections to one host), which is also fine for a single caller.
type Client struct {
	// Base is the daemon's base URL, e.g. "http://127.0.0.1:8080".
	Base string
	// HTTP overrides the underlying client (optional).
	HTTP *http.Client
	// Retry, when non-nil, makes every request retry transient failures
	// (transport errors, 5xx) with exponential backoff and jitter. A
	// retried Submit is safe: the first attempt stamps the spec with a
	// content-addressed SubmitKey, so a resend after a lost response
	// dedups onto the already-accepted job instead of running the work
	// twice. Nil keeps the historical fail-fast behaviour.
	Retry *RetryPolicy
}

// RetryPolicy tunes the client's transient-failure handling.
type RetryPolicy struct {
	// Max is the number of retries after the first attempt (default 4).
	Max int
	// Base is the first backoff delay (default 50ms); attempt n waits
	// Base<<n plus up to 50% jitter, capped at MaxDelay.
	Base time.Duration
	// MaxDelay caps one backoff sleep (default 2s). A server-sent
	// Retry-After below the cap overrides the computed delay.
	MaxDelay time.Duration
	// Seed makes the jitter (and SubmitKey nonces) deterministic for
	// tests; 0 seeds from the wall clock.
	Seed int64

	once sync.Once
	mu   sync.Mutex
	rng  *rand.Rand
}

func (p *RetryPolicy) fill() {
	p.once.Do(func() {
		if p.Max == 0 {
			p.Max = 4
		}
		if p.Base == 0 {
			p.Base = 50 * time.Millisecond
		}
		if p.MaxDelay == 0 {
			p.MaxDelay = 2 * time.Second
		}
		seed := p.Seed
		if seed == 0 {
			seed = time.Now().UnixNano()
		}
		p.rng = rand.New(rand.NewSource(seed))
	})
}

// delay computes the backoff before retry attempt (0-based), honoring
// a server-sent Retry-After when it is longer.
func (p *RetryPolicy) delay(attempt int, retryAfter time.Duration) time.Duration {
	d := p.Base << attempt
	if d > p.MaxDelay {
		d = p.MaxDelay
	}
	// Full jitter on the top half: d/2 + U[0, d/2). A thousand clients
	// retrying the same hiccup must not resynchronize into waves.
	p.mu.Lock()
	d = d/2 + time.Duration(p.rng.Int63n(int64(d/2)+1))
	p.mu.Unlock()
	if retryAfter > d {
		d = retryAfter
	}
	return d
}

// nonce returns a random submission nonce (serialized under the same
// lock as the jitter so concurrent Submits stay race-free).
func (p *RetryPolicy) nonce() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.rng.Uint64()
}

// retryAfter parses a Retry-After header (seconds form) from a
// response, 0 when absent or unparsable.
func retryAfter(resp *http.Response) time.Duration {
	if resp == nil {
		return 0
	}
	if s := resp.Header.Get("Retry-After"); s != "" {
		if secs, err := strconv.Atoi(s); err == nil && secs >= 0 {
			return time.Duration(secs) * time.Second
		}
	}
	return 0
}

// retryable reports whether a response status is worth retrying:
// overload and transient server faults, never client errors.
func retryable(status int) bool {
	return status >= 500 || status == http.StatusTooManyRequests
}

// doRetry issues the request built by mk, retrying per c.Retry. mk is
// called per attempt (request bodies are single-use). The caller owns
// the returned response body.
func (c *Client) doRetry(ctx context.Context, mk func() (*http.Request, error)) (*http.Response, error) {
	if c.Retry == nil {
		req, err := mk()
		if err != nil {
			return nil, err
		}
		return c.http().Do(req)
	}
	c.Retry.fill()
	var lastErr error
	for attempt := 0; ; attempt++ {
		req, err := mk()
		if err != nil {
			return nil, err
		}
		resp, err := c.http().Do(req)
		var ra time.Duration
		switch {
		case err == nil && !retryable(resp.StatusCode):
			return resp, nil
		case err == nil:
			ra = retryAfter(resp)
			lastErr = errorBody(resp) // drains and closes the body
		default:
			lastErr = err
		}
		if attempt >= c.Retry.Max || ctx.Err() != nil {
			return nil, lastErr
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(c.Retry.delay(attempt, ra)):
		}
	}
}

// defaultHTTP is shared by all zero-field Clients so the load-test's
// thousands of goroutines pool connections instead of exhausting
// ephemeral ports.
var defaultHTTP = &http.Client{
	Transport: &http.Transport{
		MaxIdleConns:        512,
		MaxIdleConnsPerHost: 512,
	},
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return defaultHTTP
}

// errorBody decodes the daemon's {"error": ...} payload.
func errorBody(resp *http.Response) error {
	var e struct {
		Error string `json:"error"`
	}
	data, _ := io.ReadAll(resp.Body)
	if json.Unmarshal(data, &e) == nil && e.Error != "" {
		return fmt.Errorf("fleet: %s: %s", resp.Status, e.Error)
	}
	return fmt.Errorf("fleet: %s", resp.Status)
}

func (c *Client) getJSON(ctx context.Context, path string, out any) error {
	resp, err := c.doRetry(ctx, func() (*http.Request, error) {
		return http.NewRequestWithContext(ctx, http.MethodGet, c.Base+path, nil)
	})
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return errorBody(resp)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Submit posts a job spec and returns the accepted record. With a
// retry policy, the spec is stamped once with a content-addressed
// idempotency key (hash of the spec plus a per-call nonce), so every
// resend of this logical submission maps onto one server-side job even
// when a response was lost in flight. Distinct Submit calls get
// distinct nonces and stay distinct jobs.
func (c *Client) Submit(ctx context.Context, spec Spec) (*Job, error) {
	if c.Retry != nil && spec.SubmitKey == "" {
		c.Retry.fill()
		content, err := json.Marshal(spec)
		if err != nil {
			return nil, err
		}
		spec.SubmitKey = fmt.Sprintf("%.16s-%016x", store.HashBytes(content), c.Retry.nonce())
	}
	body, err := json.Marshal(spec)
	if err != nil {
		return nil, err
	}
	resp, err := c.doRetry(ctx, func() (*http.Request, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.Base+"/jobs", bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		return req, nil
	})
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return nil, errorBody(resp)
	}
	var j Job
	if err := json.NewDecoder(resp.Body).Decode(&j); err != nil {
		return nil, err
	}
	return &j, nil
}

// Job fetches one job record (without its result payload).
func (c *Client) Job(ctx context.Context, id string) (*Job, error) {
	var j Job
	if err := c.getJSON(ctx, "/jobs/"+id, &j); err != nil {
		return nil, err
	}
	return &j, nil
}

// Wait polls until the job leaves the queued/running states, with a
// short exponential backoff so thousands of concurrent waiters don't
// hammer the daemon.
func (c *Client) Wait(ctx context.Context, id string) (*Job, error) {
	delay := 2 * time.Millisecond
	const maxDelay = 250 * time.Millisecond
	for {
		j, err := c.Job(ctx, id)
		if err != nil {
			return nil, err
		}
		if j.Status != StatusQueued && j.Status != StatusRunning {
			return j, nil
		}
		select {
		case <-ctx.Done():
			return j, ctx.Err()
		case <-time.After(delay):
		}
		if delay < maxDelay {
			delay *= 2
		}
	}
}

// Result fetches a finished job's raw result payload.
func (c *Client) Result(ctx context.Context, id string) ([]byte, error) {
	resp, err := c.doRetry(ctx, func() (*http.Request, error) {
		return http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/jobs/"+id+"/result", nil)
	})
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, errorBody(resp)
	}
	return io.ReadAll(resp.Body)
}

// Cancel requests cancellation and returns the (possibly already
// updated) record. Cancellation is idempotent server-side, so it is
// safe to retry.
func (c *Client) Cancel(ctx context.Context, id string) (*Job, error) {
	resp, err := c.doRetry(ctx, func() (*http.Request, error) {
		return http.NewRequestWithContext(ctx, http.MethodDelete, c.Base+"/jobs/"+id, nil)
	})
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, errorBody(resp)
	}
	var j Job
	if err := json.NewDecoder(resp.Body).Decode(&j); err != nil {
		return nil, err
	}
	return &j, nil
}

// Metrics fetches the daemon's store counters and job census.
func (c *Client) Metrics(ctx context.Context) (*Metrics, error) {
	var m Metrics
	if err := c.getJSON(ctx, "/metrics", &m); err != nil {
		return nil, err
	}
	return &m, nil
}
