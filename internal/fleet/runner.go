package fleet

import (
	"context"
	"encoding/json"
	"fmt"

	"repro/internal/aging"
	"repro/internal/cell"
	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/lift"
	"repro/internal/netlist"
	"repro/internal/sim"
	"repro/internal/sta"
	"repro/internal/store"
)

// Cache keys. Every expensive artifact a job produces is published in
// the shared content-addressed store under one of these prefixes, keyed
// by the hash of the submission content it derives from. The chain for
// a sweep job is netlist -> period -> profile -> grid (each key embeds
// the parameters that distinguish it); lift and campaign jobs share one
// fully-built workflow per (unit, years, mitigation). The deepest key
// of each chain doubles as the warm/cold probe at submit time.
func keyNetlist(h string) string { return "netlist:" + h }
func keyPeriod(h string, margin float64) string {
	return fmt.Sprintf("period:%s:m%g", h, margin)
}
func keyProfile(h string, cycles int, seed int64) string {
	return fmt.Sprintf("profile:%s:c%d:s%d", h, cycles, seed)
}
func keyGrid(sp *Spec, h string) string {
	return fmt.Sprintf("grid:%s:m%g:c%d:s%d:y%v", h, sp.Margin, sp.SPCycles, sp.SPSeed, sp.YearsGrid)
}
func keyWorkflow(sp *Spec) string {
	return fmt.Sprintf("workflow:%s:y%g:mit%v", sp.Unit, sp.Years, sp.Mitigation)
}

// probeKey is the deepest artifact key of sp's chain — resident iff the
// whole chain was already built, which is what "warm" means to the
// load-test latency split.
func probeKey(sp *Spec) string {
	switch sp.Kind {
	case KindSweep:
		return keyGrid(sp, store.HashBytes([]byte(sp.Verilog)))
	default:
		return keyWorkflow(sp)
	}
}

// runner executes jobs against the shared store. It is stateless beyond
// the store and the per-job parallelism bound; one runner serves every
// worker.
type runner struct {
	store       *store.Store
	parallelism int
	// fs is the chaos seam campaign checkpoints are written through —
	// the same one the server persists job records with, so one fault
	// plan covers every byte the daemon puts on disk.
	fs chaos.FS
}

// run dispatches on the job kind and returns the result payload. The
// returned bytes are the job's contract: byte-identical to what the
// existing library paths produce for the same inputs (the differential
// tests in server_test.go pin this per kind).
func (r *runner) run(ctx context.Context, j *Job, onProgress func(done, total int)) (json.RawMessage, error) {
	switch j.Spec.Kind {
	case KindLift:
		return r.runLift(&j.Spec)
	case KindSweep:
		return r.runSweep(&j.Spec)
	case KindCampaign:
		return r.runCampaign(ctx, j, onProgress)
	default:
		return nil, fmt.Errorf("fleet: unknown job kind %q", j.Spec.Kind)
	}
}

// workflow returns the fully-built (profiled, aged, lifted) workflow for
// a lift/campaign spec, building it at most once per (unit, years,
// mitigation) across the whole daemon. The build runs to completion
// inside the store's singleflight, so a shared workflow is always
// complete and thereafter read-only — concurrent campaign jobs read
// Results/STA/Module without synchronization.
func (r *runner) workflow(sp *Spec) (*core.Workflow, error) {
	v, _, err := r.store.Do(keyWorkflow(sp), func() (any, error) {
		mk := core.NewALU
		if sp.Unit == "FPU" {
			mk = core.NewFPU
		}
		w := mk(core.Config{
			Years:       sp.Years,
			Parallelism: r.parallelism,
			Lift:        lift.Config{Mitigation: sp.Mitigation},
		})
		if _, err := w.ErrorLifting(); err != nil {
			return nil, err
		}
		return w, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*core.Workflow), nil
}

// runLift returns the lifted suite, marshalled exactly as the library
// path marshals it (lift.Suite.MarshalJSON via json.Marshal).
func (r *runner) runLift(sp *Spec) (json.RawMessage, error) {
	w, err := r.workflow(sp)
	if err != nil {
		return nil, err
	}
	return json.Marshal(w.Suite())
}

// runCampaign runs the injection campaign against the shared workflow's
// suite. The checkpoint file lives next to the job record, so a killed
// daemon resumes the campaign on restart and still produces the
// byte-identical final report.
func (r *runner) runCampaign(ctx context.Context, j *Job, onProgress func(done, total int)) (json.RawMessage, error) {
	sp := &j.Spec
	w, err := r.workflow(sp)
	if err != nil {
		return nil, err
	}
	total := CampaignTotal(sp.PerClass)
	rep, err := w.InjectionCampaign(ctx, core.InjectOptions{
		Seed:            sp.Seed,
		PerClass:        sp.PerClass,
		MaxCycles:       sp.MaxCycles,
		CheckpointPath:  j.ckpt,
		CheckpointEvery: sp.CheckpointEvery,
		FS:              r.fs,
		OnCheckpoint: func(done int) {
			if onProgress != nil {
				onProgress(done, total)
			}
		},
	})
	if err != nil {
		return nil, err
	}
	if onProgress != nil {
		onProgress(rep.Completed, total)
	}
	if rep.Partial {
		// Interrupted (shutdown or cancel): the caller decides whether
		// to requeue or record the partial report.
		data, jerr := rep.JSON()
		if jerr != nil {
			return nil, jerr
		}
		return data, errPartial
	}
	return rep.JSON()
}

// errPartial marks a gracefully interrupted campaign: the result bytes
// are a valid partial report, and the job is either requeued (daemon
// shutdown) or recorded cancelled (user cancel).
var errPartial = fmt.Errorf("fleet: campaign interrupted before completion")

// runSweep analyzes a submitted netlist across the lifetime grid. Every
// stage reads through the store: concurrent submissions of one netlist
// parse and characterize it exactly once, and re-submissions skip
// straight to the (cheap) per-corner analysis pass against the cached
// grid — the warm path the daemon's latency headline is built on.
func (r *runner) runSweep(sp *Spec) (json.RawMessage, error) {
	h := store.HashBytes([]byte(sp.Verilog))
	lib := cell.Lib28()

	nv, _, err := r.store.Do(keyNetlist(h), func() (any, error) {
		return netlist.ParseVerilog(sp.Verilog)
	})
	if err != nil {
		return nil, err
	}
	nl := nv.(*netlist.Netlist)

	pv, _, err := r.store.Do(keyPeriod(h, sp.Margin), func() (any, error) {
		return sta.CriticalDelay(nl, lib) * sp.Margin, nil
	})
	if err != nil {
		return nil, err
	}
	period := pv.(float64)

	fv, _, err := r.store.Do(keyProfile(h, sp.SPCycles, sp.SPSeed), func() (any, error) {
		return core.RandomSP(nl, sp.SPCycles, sp.SPSeed, r.parallelism)
	})
	if err != nil {
		return nil, err
	}

	corners := make([]sta.Corner, len(sp.YearsGrid))
	for i, yr := range sp.YearsGrid {
		corners[i] = sta.Corner{Years: yr}
	}
	cfg := sta.BatchConfig{
		PeriodPs:    period,
		Base:        lib,
		Model:       aging.Default(),
		Profile:     fv.(*sim.Profile),
		PerEndpoint: 40,
		Parallelism: r.parallelism,
	}

	gv, _, err := r.store.Do(keyGrid(sp, h), func() (any, error) {
		return sta.CornerLibraries(nl.Name, cfg, corners), nil
	})
	if err != nil {
		return nil, err
	}
	cfg.Libs = gv.([]*aging.Library)

	results := sta.AnalyzeCorners(nl, cfg, corners)
	out := SweepResult{Netlist: nl.Name, Cells: len(nl.Cells), PeriodPs: period}
	for i, res := range results {
		out.Points = append(out.Points, SweepPoint{
			Years:           sp.YearsGrid[i],
			WNSSetup:        res.WNSSetup,
			WNSHold:         res.WNSHold,
			SetupViolations: res.NumSetupViolations,
			HoldViolations:  res.NumHoldViolations,
		})
	}
	return json.MarshalIndent(out, "", "  ")
}

// CampaignTotal is the injection-universe size a campaign spec samples —
// one PerClass draw per each of the four untargeted fault classes (see
// inject.SampleUniverse).
func CampaignTotal(perClass int) int { return 4 * perClass }
