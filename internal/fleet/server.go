package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/chaos"
	"repro/internal/par"
	"repro/internal/store"
)

// Options tunes a Server.
type Options struct {
	// Dir is the job-state directory (required). Job records and
	// campaign checkpoints persist here; a daemon restarted on the same
	// directory requeues interrupted work.
	Dir string
	// Workers bounds the worker pool (default 4): at most this many
	// jobs execute concurrently.
	Workers int
	// Parallelism bounds each job's internal fan-out (default 1: the
	// pool provides the concurrency, jobs stay sequential inside).
	// Results are byte-identical at every setting.
	Parallelism int
	// CacheCap bounds the shared content-addressed store (default 128
	// artifacts).
	CacheCap int
	// Store, when non-nil, is used instead of building a fresh store —
	// the warm-restart seam: a supervisor that replaces a crashed
	// daemon in-process hands the compiled artifacts across, and the
	// torture harness uses it so a 40-point crash matrix compiles its
	// workflow once. CacheCap is ignored when Store is set.
	Store *store.Store
	// FS is the filesystem seam all job-record and checkpoint I/O goes
	// through (default: the real filesystem). The chaos tests inject
	// seeded fault plans here.
	FS chaos.FS
	// JobTimeout, when positive, is the per-job execution deadline. A
	// job that exceeds it is interrupted at its next cancellation point
	// (campaigns flush their checkpoint first) and retried — until
	// MaxAttempts, when it fails with a reason. Zero disables the
	// deadline.
	JobTimeout time.Duration
	// MaxAttempts caps how many times one job may start executing
	// (default 5): requeues from restarts and deadline retries beyond
	// the cap land the job in failed instead of looping forever.
	MaxAttempts int
	// MaxBodyBytes caps a POST /jobs body (default 8 MiB). Oversized
	// submissions get 413, not an OOM.
	MaxBodyBytes int64
}

func (o *Options) fill() {
	if o.Workers == 0 {
		o.Workers = 4
	}
	if o.Parallelism == 0 {
		o.Parallelism = 1
	}
	if o.CacheCap == 0 {
		o.CacheCap = 128
	}
	if o.MaxAttempts == 0 {
		o.MaxAttempts = 5
	}
	if o.MaxBodyBytes == 0 {
		o.MaxBodyBytes = 8 << 20
	}
	if o.FS == nil {
		o.FS = chaos.OS{}
	}
}

// Server is the fleet daemon: a job queue, a bounded worker pool built
// on par.ForEach, and the shared content-addressed artifact store.
type Server struct {
	opts   Options
	store  *store.Store
	runner *runner
	fs     chaos.FS

	mu      sync.Mutex
	jobs    map[string]*Job
	cancels map[string]context.CancelFunc // running jobs only
	byKey   map[string]string             // Spec.SubmitKey -> job ID (idempotent resubmit)
	// quarantined lists the corrupt record files moved aside at startup
	// (relative names) — served on /metrics so corruption is loud even
	// though it no longer stops the daemon.
	quarantined []string
	seq         int
	closed      bool

	queue    chan string
	ctx      context.Context // cancelled by Shutdown: drains workers
	cancel   context.CancelFunc
	workers  sync.WaitGroup
	draining bool // set under mu by Shutdown before cancelling

	// progressHook, when set before Start, observes every progress
	// update outside the server lock — the deterministic interruption
	// point the restart/resume tests use.
	progressHook func(id string, p Progress)
}

// queueCap bounds the submission backlog. Submissions beyond it fail
// fast with 503 instead of blocking the HTTP handler.
const queueCap = 8192

// New creates a server over opts.Dir, recovering persisted job state:
// done/failed/cancelled records are served as-is, queued records and
// running records from an interrupted daemon are requeued (campaign
// jobs then resume from their checkpoint files), and corrupt records
// are quarantined instead of failing the start. Call Start to launch
// the workers.
func New(opts Options) (*Server, error) {
	opts.fill()
	if opts.Dir == "" {
		return nil, fmt.Errorf("fleet: Options.Dir is required")
	}
	if err := opts.FS.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, err
	}
	st := opts.Store
	if st == nil {
		st = store.New(opts.CacheCap)
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		opts:    opts,
		store:   st,
		runner:  &runner{store: st, parallelism: opts.Parallelism, fs: opts.FS},
		fs:      opts.FS,
		jobs:    make(map[string]*Job),
		cancels: make(map[string]context.CancelFunc),
		byKey:   make(map[string]string),
		queue:   make(chan string, queueCap),
		ctx:     ctx,
		cancel:  cancel,
	}
	prior, quarantined, err := loadJobs(opts.FS, opts.Dir)
	if err != nil {
		cancel()
		return nil, err
	}
	s.quarantined = quarantined
	for _, j := range prior {
		j.ckpt = ckptPath(opts.Dir, j.ID)
		if j.Status == StatusRunning || j.Status == StatusQueued {
			if j.Attempts >= opts.MaxAttempts {
				// Poison-job fuse: a record that keeps getting requeued
				// (daemon crashed or timed out on it MaxAttempts times)
				// fails with a reason instead of crash-looping the fleet.
				j.Status = StatusFailed
				j.Error = fmt.Sprintf("fleet: requeue attempts exhausted (%d/%d) — poison job?",
					j.Attempts, opts.MaxAttempts)
			} else {
				j.Status = StatusQueued
			}
			if err := saveJob(opts.FS, opts.Dir, j); err != nil {
				cancel()
				return nil, err
			}
			if j.Status == StatusQueued {
				s.queue <- j.ID
			}
		}
		s.jobs[j.ID] = j
		if j.Spec.SubmitKey != "" {
			s.byKey[j.Spec.SubmitKey] = j.ID
		}
		// Keep seq ahead of every recovered ID (IDs are zero-padded,
		// so the lexicographic max is the numeric max).
		var n int
		if _, err := fmt.Sscanf(j.ID, "j%06d", &n); err == nil && n > s.seq {
			s.seq = n
		}
	}
	return s, nil
}

// Start launches the worker pool: par.ForEach with one task per worker
// slot, each draining the queue until Shutdown. The pool IS the
// concurrency bound — jobs beyond Workers wait in the queue.
func (s *Server) Start() {
	s.workers.Add(1)
	go func() {
		defer s.workers.Done()
		// Error-free by construction: worker loops return nil.
		_ = par.ForEach(context.Background(), s.opts.Workers, s.opts.Workers,
			func(_ context.Context, i int) error {
				s.worker()
				return nil
			})
	}()
}

// worker drains the queue until the server context cancels.
func (s *Server) worker() {
	for {
		select {
		case <-s.ctx.Done():
			return
		case id := <-s.queue:
			s.execute(id)
		}
	}
}

// execute runs one job end to end, persisting each state transition.
func (s *Server) execute(id string) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok || j.Status != StatusQueued {
		// Cancelled while queued, or stale entry.
		s.mu.Unlock()
		return
	}
	jctx, jcancel := context.WithCancel(s.ctx)
	if s.opts.JobTimeout > 0 {
		// Per-job deadline: a hung or poison job is interrupted at its
		// next cancellation point instead of pinning this worker forever.
		jctx, jcancel = context.WithTimeout(jctx, s.opts.JobTimeout)
	}
	j.Status = StatusRunning
	j.Attempts++
	s.cancels[id] = jcancel
	spec := j.Spec // runner reads the copy; record stays handler-owned
	_ = saveJob(s.fs, s.opts.Dir, j)
	s.mu.Unlock()
	defer jcancel()

	started := time.Now()
	work := &Job{ID: j.ID, Spec: spec, ckpt: j.ckpt}
	result, err := s.runSafely(jctx, work, func(done, total int) {
		p := Progress{Done: done, Total: total}
		s.mu.Lock()
		j.Progress = p
		s.mu.Unlock()
		if s.progressHook != nil {
			s.progressHook(id, p)
		}
	})

	elapsed := time.Since(started)
	timedOut := errors.Is(jctx.Err(), context.DeadlineExceeded)
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.cancels, id)
	j.ServiceMs = float64(elapsed.Microseconds()) / 1000
	switch {
	case err == errPartial && s.draining:
		// Daemon shutdown mid-campaign: the wave checkpoint is on disk,
		// requeue so a restarted daemon resumes to the identical report.
		j.Status = StatusQueued
	case err != nil && timedOut:
		// Deadline hit: campaigns flushed a checkpoint, so a retry picks
		// up the completed prefix. The attempt counter bounds how often —
		// a job that can never finish lands in failed with the reason.
		s.requeueOrFail(j, fmt.Sprintf("fleet: job deadline %s exceeded (attempt %d/%d)",
			s.opts.JobTimeout, j.Attempts, s.opts.MaxAttempts))
	case err == errPartial:
		// User cancel: record the partial report for inspection.
		j.Status = StatusCancelled
		j.Result = result
	case err != nil && jctx.Err() != nil && s.draining:
		// Interrupted non-campaign work has no partial value; requeue.
		j.Status = StatusQueued
	case err != nil && jctx.Err() != nil:
		j.Status = StatusCancelled
	case err != nil:
		j.Status = StatusFailed
		j.Error = err.Error()
	default:
		j.Status = StatusDone
		j.Result = result
		if j.Progress.Total > 0 {
			j.Progress.Done = j.Progress.Total
		}
	}
	_ = saveJob(s.fs, s.opts.Dir, j)
}

// runSafely wraps the runner so a panicking job degrades to a failed
// record instead of killing the whole daemon: one poison submission
// must never take the fleet down with it.
func (s *Server) runSafely(ctx context.Context, j *Job, onProgress func(done, total int)) (result json.RawMessage, err error) {
	defer func() {
		if r := recover(); r != nil {
			result, err = nil, fmt.Errorf("fleet: job panicked: %v", r)
		}
	}()
	return s.runner.run(ctx, j, onProgress)
}

// requeueOrFail puts an interrupted job back on the live queue, or
// fails it with reason once its attempt budget is spent. Caller holds
// s.mu.
func (s *Server) requeueOrFail(j *Job, reason string) {
	if j.Attempts >= s.opts.MaxAttempts {
		j.Status = StatusFailed
		j.Error = reason
		return
	}
	select {
	case s.queue <- j.ID:
		j.Status = StatusQueued
	default:
		j.Status = StatusFailed
		j.Error = reason + " (and requeue rejected: queue full)"
	}
}

// specHash is the content address of a spec — what a SubmitKey binds
// to. The key itself is excluded (it names the submission attempt, not
// the work), so a replayed key provably carries identical work.
func specHash(sp *Spec) string {
	c := *sp
	c.SubmitKey = ""
	data, _ := json.Marshal(&c)
	return store.HashBytes(data)
}

// Submit validates and enqueues a spec, returning the new job record.
// A spec carrying a SubmitKey the server has seen before is an
// idempotent resend (a client retry after a lost response): the
// already-accepted job is returned instead of a duplicate — after
// verifying the spec's content hash matches, so a colliding key can
// never hand back someone else's work.
func (s *Server) Submit(spec Spec) (*Job, error) {
	spec.fill()
	if err := spec.validate(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if spec.SubmitKey != "" {
		if id, ok := s.byKey[spec.SubmitKey]; ok {
			j := s.jobs[id]
			if specHash(&j.Spec) != specHash(&spec) {
				return nil, fmt.Errorf("fleet: submit key %q already bound to different work (job %s)",
					spec.SubmitKey, id)
			}
			return snapshot(j), nil
		}
	}
	if s.closed {
		return nil, errClosed
	}
	s.seq++
	j := &Job{
		ID:       fmt.Sprintf("j%06d", s.seq),
		Spec:     spec,
		Status:   StatusQueued,
		CacheHit: s.store.Contains(probeKey(&spec)),
	}
	if spec.Kind == KindCampaign {
		j.Progress.Total = CampaignTotal(spec.PerClass)
	}
	j.ckpt = ckptPath(s.opts.Dir, j.ID)
	if err := saveJob(s.fs, s.opts.Dir, j); err != nil {
		return nil, err
	}
	select {
	case s.queue <- j.ID:
	default:
		return nil, errQueueFull
	}
	s.jobs[j.ID] = j
	if spec.SubmitKey != "" {
		s.byKey[spec.SubmitKey] = j.ID
	}
	return snapshot(j), nil
}

// Cancel cancels a job: queued jobs are marked cancelled immediately,
// running jobs get their context cancelled (campaigns then flush a
// checkpoint and record a partial report). Done jobs are left alone.
func (s *Server) Cancel(id string) (*Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, errNotFound
	}
	switch j.Status {
	case StatusQueued:
		j.Status = StatusCancelled
		_ = saveJob(s.fs, s.opts.Dir, j)
	case StatusRunning:
		if c := s.cancels[id]; c != nil {
			c()
		}
	}
	return snapshot(j), nil
}

// Job returns a snapshot of one job record.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, false
	}
	return snapshot(j), true
}

// Jobs returns snapshots of every job, sorted by ID.
func (s *Server) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		out = append(out, snapshot(j))
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}

// Metrics is the /metrics payload: the shared store's counters, the
// job census, and the records quarantined at the last startup (silent
// corruption made loud — detected, moved aside, reported — while the
// daemon keeps serving).
type Metrics struct {
	Store       store.Stats    `json:"store"`
	Jobs        map[string]int `json:"jobs"`
	Quarantined []string       `json:"quarantined,omitempty"`
}

// MetricsSnapshot assembles the current Metrics.
func (s *Server) MetricsSnapshot() Metrics {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := Metrics{Store: s.store.Stats(), Jobs: make(map[string]int), Quarantined: s.quarantined}
	for _, j := range s.jobs {
		m.Jobs[j.Status]++
	}
	return m
}

// Store exposes the shared artifact store (the load-test harness reads
// its counters directly).
func (s *Server) Store() *store.Store { return s.store }

// Shutdown stops accepting submissions, cancels running jobs (campaigns
// flush their current checkpoint wave and are requeued on disk), and
// waits for the workers to drain, bounded by ctx.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.closed = true
	s.draining = true
	s.mu.Unlock()
	s.cancel()
	done := make(chan struct{})
	go func() { s.workers.Wait(); close(done) }()
	select {
	case <-done:
	case <-ctx.Done():
		return ctx.Err()
	}
	// Workers are gone; any job still queued in memory stays queued on
	// disk for the next daemon instance.
	return nil
}

// snapshot deep-copies the fields handlers return, so records mutated
// by workers never race with encoding.
func snapshot(j *Job) *Job {
	c := *j
	return &c
}

// redact trims a snapshot down to what HTTP status views need: the
// result payload has its own endpoint, and echoing a submitted netlist
// source back on every poll would turn a thousand-waiter load test into
// a bandwidth benchmark.
func redact(j *Job) *Job {
	j.Result = nil
	j.Spec.Verilog = ""
	return j
}

var (
	errNotFound  = fmt.Errorf("fleet: no such job")
	errQueueFull = fmt.Errorf("fleet: queue full (%d pending)", queueCap)
	errClosed    = fmt.Errorf("fleet: server is shutting down")
)

// Handler returns the daemon's HTTP surface.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("POST /jobs", func(w http.ResponseWriter, r *http.Request) {
		// Cap the body BEFORE decoding: a multi-gigabyte "netlist" must
		// cost a 413, not the daemon's heap.
		r.Body = http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
		var spec Spec
		if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
			var tooBig *http.MaxBytesError
			if errors.As(err, &tooBig) {
				httpError(w, http.StatusRequestEntityTooLarge,
					fmt.Errorf("fleet: submission exceeds %d bytes", tooBig.Limit))
				return
			}
			httpError(w, http.StatusBadRequest, err)
			return
		}
		j, err := s.Submit(spec)
		if err != nil {
			code := http.StatusBadRequest
			if errors.Is(err, errQueueFull) || errors.Is(err, errClosed) {
				code = http.StatusServiceUnavailable
				// Transient overload: tell well-behaved clients when to
				// come back instead of letting them hammer the queue.
				w.Header().Set("Retry-After", "1")
			}
			httpError(w, code, err)
			return
		}
		writeJSON(w, http.StatusAccepted, redact(j))
	})
	mux.HandleFunc("GET /jobs", func(w http.ResponseWriter, r *http.Request) {
		jobs := s.Jobs()
		for i, j := range jobs {
			jobs[i] = redact(j)
		}
		writeJSON(w, http.StatusOK, jobs)
	})
	mux.HandleFunc("GET /jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		j, ok := s.Job(r.PathValue("id"))
		if !ok {
			httpError(w, http.StatusNotFound, errNotFound)
			return
		}
		writeJSON(w, http.StatusOK, redact(j))
	})
	mux.HandleFunc("GET /jobs/{id}/result", func(w http.ResponseWriter, r *http.Request) {
		j, ok := s.Job(r.PathValue("id"))
		if !ok {
			httpError(w, http.StatusNotFound, errNotFound)
			return
		}
		if j.Result == nil {
			httpError(w, http.StatusConflict,
				fmt.Errorf("fleet: job %s is %s, no result yet", j.ID, j.Status))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(j.Result)
	})
	mux.HandleFunc("DELETE /jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		j, err := s.Cancel(r.PathValue("id"))
		if err != nil {
			httpError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, redact(j))
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.MetricsSnapshot())
	})
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
