package fleet

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// flakyHandler fails the first n requests matching the filter with the
// given status (plus optional Retry-After), then passes everything
// through to the inner handler.
type flakyHandler struct {
	inner      http.Handler
	mu         sync.Mutex
	remaining  int
	status     int
	retryAfter string
	filter     func(*http.Request) bool
	failed     int
}

func (f *flakyHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	f.mu.Lock()
	fail := f.remaining > 0 && (f.filter == nil || f.filter(r))
	if fail {
		f.remaining--
		f.failed++
	}
	f.mu.Unlock()
	if fail {
		if f.retryAfter != "" {
			w.Header().Set("Retry-After", f.retryAfter)
		}
		http.Error(w, fmt.Sprintf(`{"error":"injected %d"}`, f.status), f.status)
		return
	}
	f.inner.ServeHTTP(w, r)
}

// testPolicy is a fast deterministic retry policy for tests.
func testPolicy() *RetryPolicy {
	return &RetryPolicy{Max: 4, Base: time.Millisecond, MaxDelay: 5 * time.Millisecond, Seed: 42}
}

// TestRetryTransient5xx: a daemon that answers 503 (overload) to the
// first two submissions must end up with exactly one accepted job once
// the client retries through the hiccup.
func TestRetryTransient5xx(t *testing.T) {
	s, err := New(Options{Dir: t.TempDir(), Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	defer func() { _ = s.Shutdown(context.Background()) }()

	fh := &flakyHandler{inner: s.Handler(), remaining: 2, status: http.StatusServiceUnavailable,
		retryAfter: "0", filter: func(r *http.Request) bool { return r.Method == http.MethodPost }}
	h := httptest.NewServer(fh)
	defer h.Close()

	c := &Client{Base: h.URL, HTTP: h.Client(), Retry: testPolicy()}
	j, err := c.Submit(context.Background(), Spec{Kind: KindSweep, Verilog: tinyVerilog(1)})
	if err != nil {
		t.Fatalf("submit through transient 503s: %v", err)
	}
	fh.mu.Lock()
	failed := fh.failed
	fh.mu.Unlock()
	if failed != 2 {
		t.Fatalf("middleware failed %d requests, want 2", failed)
	}
	s.mu.Lock()
	n := len(s.jobs)
	s.mu.Unlock()
	if n != 1 {
		t.Fatalf("server holds %d jobs after retried submit, want 1", n)
	}
	waitDone(t, c, j.ID)
}

// TestRetryLostResponse is the double-submit hazard: the server accepts
// the job but the 202 is lost in flight (client sees 502). The retry
// resends the same content-addressed SubmitKey and must land on the
// already-accepted job — one job total, same ID, not two runs of the
// same work.
func TestRetryLostResponse(t *testing.T) {
	s, err := New(Options{Dir: t.TempDir(), Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	defer func() { _ = s.Shutdown(context.Background()) }()

	inner := s.Handler()
	var lost int
	var lostMu sync.Mutex
	h := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		lostMu.Lock()
		dropThis := r.Method == http.MethodPost && lost == 0
		if dropThis {
			lost++
		}
		lostMu.Unlock()
		if dropThis {
			// The daemon processes the submission; the response dies on
			// the wire.
			rec := httptest.NewRecorder()
			inner.ServeHTTP(rec, r)
			if rec.Code != http.StatusAccepted {
				t.Errorf("inner submission failed: %d %s", rec.Code, rec.Body)
			}
			http.Error(w, `{"error":"bad gateway (injected)"}`, http.StatusBadGateway)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer h.Close()

	c := &Client{Base: h.URL, HTTP: h.Client(), Retry: testPolicy()}
	j, err := c.Submit(context.Background(), Spec{Kind: KindSweep, Verilog: tinyVerilog(1)})
	if err != nil {
		t.Fatalf("submit through lost response: %v", err)
	}
	s.mu.Lock()
	n := len(s.jobs)
	_, present := s.jobs[j.ID]
	s.mu.Unlock()
	if n != 1 {
		t.Fatalf("lost-response retry created %d jobs, want 1 (dedup by SubmitKey)", n)
	}
	if !present {
		t.Fatalf("returned job %s is not the server's accepted job", j.ID)
	}
	waitDone(t, c, j.ID)
}

// TestRetryDistinctSubmitsStayDistinct: retry stamping must not collapse
// two intentional submissions of identical work — each Submit call gets
// its own nonce, so the daemon still sees two jobs (and the store, not
// the dedup map, is what coalesces the duplicated computation).
func TestRetryDistinctSubmitsStayDistinct(t *testing.T) {
	s, c := newTestServer(t, Options{Workers: 1})
	c.Retry = testPolicy()
	spec := Spec{Kind: KindSweep, Verilog: tinyVerilog(1)}
	j1, err := c.Submit(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	j2, err := c.Submit(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if j1.ID == j2.ID {
		t.Fatalf("two logical submissions collapsed onto job %s", j1.ID)
	}
	s.mu.Lock()
	n := len(s.jobs)
	s.mu.Unlock()
	if n != 2 {
		t.Fatalf("server holds %d jobs, want 2", n)
	}
}

// TestSubmitKeyRejectsDifferentWork: a replayed idempotency key bound to
// different spec content is an error, not a silent dedup — the key
// embeds the content hash and the server verifies it.
func TestSubmitKeyRejectsDifferentWork(t *testing.T) {
	s, _ := newTestServer(t, Options{Workers: 1})
	specA := Spec{Kind: KindSweep, Verilog: tinyVerilog(1), SubmitKey: "k1"}
	if _, err := s.Submit(specA); err != nil {
		t.Fatal(err)
	}
	specB := Spec{Kind: KindSweep, Verilog: tinyVerilog(2), SubmitKey: "k1"}
	if _, err := s.Submit(specB); err == nil {
		t.Fatal("replayed key with different content accepted")
	}
	// Exact replay of the same content dedups onto the original.
	j1, err := s.Submit(specA)
	if err != nil {
		t.Fatal(err)
	}
	j2, err := s.Submit(specA)
	if err != nil {
		t.Fatal(err)
	}
	if j1.ID != j2.ID {
		t.Fatalf("same key + same content produced jobs %s and %s", j1.ID, j2.ID)
	}
}

// failingTransport fails the first n round-trips with a transport-level
// error (the connection-refused shape), then delegates.
type failingTransport struct {
	mu        sync.Mutex
	remaining int
	under     http.RoundTripper
}

func (ft *failingTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	ft.mu.Lock()
	fail := ft.remaining > 0
	if fail {
		ft.remaining--
	}
	ft.mu.Unlock()
	if fail {
		return nil, fmt.Errorf("dial tcp: connect: connection refused (injected)")
	}
	return ft.under.RoundTrip(r)
}

// TestRetryTransportError: connection-level failures (daemon briefly
// down, connection refused) are retried the same way 5xx responses are.
func TestRetryTransportError(t *testing.T) {
	s, err := New(Options{Dir: t.TempDir(), Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	defer func() { _ = s.Shutdown(context.Background()) }()
	h := httptest.NewServer(s.Handler())
	defer h.Close()

	ft := &failingTransport{remaining: 3, under: http.DefaultTransport}
	c := &Client{Base: h.URL, HTTP: &http.Client{Transport: ft}, Retry: testPolicy()}
	if _, err := c.Submit(context.Background(), Spec{Kind: KindSweep, Verilog: tinyVerilog(1)}); err != nil {
		t.Fatalf("submit through 3 refused connections: %v", err)
	}

	// With more failures than Max retries the last transport error
	// surfaces.
	ft2 := &failingTransport{remaining: 100, under: http.DefaultTransport}
	c2 := &Client{Base: h.URL, HTTP: &http.Client{Transport: ft2}, Retry: testPolicy()}
	if _, err := c2.Submit(context.Background(), Spec{Kind: KindSweep, Verilog: tinyVerilog(1)}); err == nil {
		t.Fatal("submit succeeded against a permanently refusing transport")
	}
}

// TestRetryAfterHonored: a server-sent Retry-After longer than the
// computed backoff stretches the wait; the client must not hammer a
// server that asked for breathing room.
func TestRetryAfterHonored(t *testing.T) {
	p := testPolicy()
	p.fill()
	// Computed backoff is ≤ MaxDelay (5ms); a 1s Retry-After dominates.
	if d := p.delay(0, time.Second); d != time.Second {
		t.Fatalf("delay(0, 1s) = %v, want 1s", d)
	}
	// Without a Retry-After the jittered backoff stays within
	// [Base/2, Base] for attempt 0 and is capped by MaxDelay later.
	for i := 0; i < 50; i++ {
		if d := p.delay(0, 0); d < p.Base/2 || d > p.Base {
			t.Fatalf("delay(0) = %v outside [%v, %v]", d, p.Base/2, p.Base)
		}
		if d := p.delay(10, 0); d < p.MaxDelay/2 || d > p.MaxDelay {
			t.Fatalf("delay(10) = %v outside [%v, %v]", d, p.MaxDelay/2, p.MaxDelay)
		}
	}

	// Header parsing: seconds form, absent, junk.
	mk := func(v string) *http.Response {
		r := &http.Response{Header: http.Header{}}
		if v != "" {
			r.Header.Set("Retry-After", v)
		}
		return r
	}
	if got := retryAfter(mk("2")); got != 2*time.Second {
		t.Fatalf("retryAfter(2) = %v", got)
	}
	if got := retryAfter(mk("")); got != 0 {
		t.Fatalf("retryAfter(absent) = %v", got)
	}
	if got := retryAfter(mk("soon")); got != 0 {
		t.Fatalf("retryAfter(junk) = %v", got)
	}
	if got := retryAfter(nil); got != 0 {
		t.Fatalf("retryAfter(nil) = %v", got)
	}

	// End-to-end: a 503 carrying Retry-After is waited out, not spun on.
	s, err := New(Options{Dir: t.TempDir(), Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	defer func() { _ = s.Shutdown(context.Background()) }()
	fh := &flakyHandler{inner: s.Handler(), remaining: 1, status: http.StatusServiceUnavailable, retryAfter: "1"}
	h := httptest.NewServer(fh)
	defer h.Close()
	c := &Client{Base: h.URL, HTTP: h.Client(), Retry: testPolicy()}
	start := time.Now()
	if _, err := c.Submit(context.Background(), Spec{Kind: KindSweep, Verilog: tinyVerilog(1)}); err != nil {
		t.Fatal(err)
	}
	if waited := time.Since(start); waited < time.Second {
		t.Fatalf("client retried after %v, ignoring Retry-After: 1", waited)
	}
}

// TestRetryNeverRetriesClientErrors: 4xx means the submission itself is
// wrong; resending it is pure waste and must not happen.
func TestRetryNeverRetriesClientErrors(t *testing.T) {
	var posts int
	var mu sync.Mutex
	h := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		posts++
		mu.Unlock()
		http.Error(w, `{"error":"no"}`, http.StatusBadRequest)
	}))
	defer h.Close()
	c := &Client{Base: h.URL, HTTP: h.Client(), Retry: testPolicy()}
	if _, err := c.Submit(context.Background(), Spec{Kind: KindSweep, Verilog: "x"}); err == nil {
		t.Fatal("400 submission reported success")
	}
	mu.Lock()
	n := posts
	mu.Unlock()
	if n != 1 {
		t.Fatalf("client sent %d requests for a 400, want 1", n)
	}
}

// TestRetryContextCancel: a cancelled context stops the retry loop
// promptly instead of sleeping out the whole backoff schedule.
func TestRetryContextCancel(t *testing.T) {
	h := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"down"}`, http.StatusServiceUnavailable)
	}))
	defer h.Close()
	c := &Client{Base: h.URL, HTTP: h.Client(),
		Retry: &RetryPolicy{Max: 10, Base: 100 * time.Millisecond, MaxDelay: 10 * time.Second, Seed: 7}}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Submit(ctx, Spec{Kind: KindSweep, Verilog: "x"})
	if err == nil {
		t.Fatal("submit succeeded against a dead server")
	}
	if !errors.Is(err, context.DeadlineExceeded) && time.Since(start) > time.Second {
		t.Fatalf("retry loop ran %v past a 50ms context (err %v)", time.Since(start), err)
	}
}
