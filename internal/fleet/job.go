// Package fleet is the screening daemon behind cmd/vega-fleetd: an
// HTTP/JSON service that accepts netlist and workload-profile
// submissions, shards them across a bounded worker pool built on
// internal/par, and serves results and progress over a small REST
// surface (POST /jobs, GET /jobs/{id}, GET /jobs/{id}/result,
// DELETE /jobs/{id}, GET /metrics).
//
// Three job kinds cover the workflow phases a screening fleet runs at
// scale:
//
//   - "lift": error-lift a built-in unit (ALU/FPU) and return the test
//     suite, byte-identical to the vega-lift library path.
//   - "sweep": aging-aware lifetime sweep of a SUBMITTED gate-level
//     Verilog netlist under a random-stimulus SP profile, byte-identical
//     to calling sta.AnalyzeCorners directly.
//   - "campaign": fault-injection campaign against a built-in unit's
//     lifted suite, byte-identical to the vega-inject library path,
//     checkpointed per wave so a killed daemon resumes the job on
//     restart to the identical final report.
//
// The perf core is a single content-addressed artifact store
// (internal/store) shared by every worker: submissions are canonicalized
// by the hash of their content, so N concurrent submissions of the same
// netlist compile it exactly once (singleflight) and every later
// submission reuses the parsed netlist, compiled engine program, timing
// graph, SP profile and corner-library grid. /metrics exposes the
// hit/coalesced/build/eviction counters that the load-test harness
// (internal/fleet/loadtest) turns into the warm-vs-cold latency curve in
// BENCH_fleetd.json.
//
// Job state is persisted under Options.Dir with the same atomic-rename
// discipline as the injection checkpoints, so jobs survive a daemon
// restart: queued and interrupted-running jobs are requeued, and
// campaign jobs resume from their per-job checkpoint file.
package fleet

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Job kinds.
const (
	KindLift     = "lift"
	KindSweep    = "sweep"
	KindCampaign = "campaign"
)

// Job statuses. Lifecycle: queued -> running -> done | failed |
// cancelled. A daemon restart moves interrupted running jobs back to
// queued.
const (
	StatusQueued    = "queued"
	StatusRunning   = "running"
	StatusDone      = "done"
	StatusFailed    = "failed"
	StatusCancelled = "cancelled"
)

// Spec is a job submission. Kind selects which fields matter; unknown
// kinds are rejected at submit time.
type Spec struct {
	Kind string `json:"kind"`

	// Unit selects the built-in unit for lift and campaign jobs
	// ("ALU" or "FPU").
	Unit string `json:"unit,omitempty"`
	// Years is the assumed lifetime for lift/campaign workflows
	// (default 10, like the CLIs).
	Years float64 `json:"years,omitempty"`
	// Mitigation enables the initial-value-dependency mitigation for
	// lift jobs.
	Mitigation bool `json:"mitigation,omitempty"`

	// Campaign parameters (see core.InjectOptions).
	Seed            uint64 `json:"seed,omitempty"`
	PerClass        int    `json:"per_class,omitempty"`
	MaxCycles       uint64 `json:"max_cycles,omitempty"`
	CheckpointEvery int    `json:"checkpoint_every,omitempty"`

	// Sweep parameters: a gate-level Verilog netlist plus the
	// workload-profile spec (random-stimulus packed cycles and seed)
	// and the lifetime grid to analyze.
	Verilog string `json:"verilog,omitempty"`
	// Margin sets the clock period as CriticalDelay * Margin
	// (default 1.05, the scale-bench signoff convention).
	Margin float64 `json:"margin,omitempty"`
	// SPCycles is the number of 64-lane packed random-stimulus cycles
	// profiled (default 256); SPSeed seeds the stimulus streams.
	SPCycles int   `json:"sp_cycles,omitempty"`
	SPSeed   int64 `json:"sp_seed,omitempty"`
	// YearsGrid lists the sweep lifetimes (default 0, 3.3, 6.6, 10).
	YearsGrid []float64 `json:"years_grid,omitempty"`
}

// fill applies the spec defaults shared by the runner and the cache-key
// derivation (both must see identical values or warm probes would miss).
func (sp *Spec) fill() {
	if sp.Years == 0 {
		sp.Years = 10
	}
	switch sp.Kind {
	case KindCampaign:
		if sp.PerClass == 0 {
			sp.PerClass = 25
		}
	case KindSweep:
		if sp.Margin == 0 {
			sp.Margin = 1.05
		}
		if sp.SPCycles == 0 {
			sp.SPCycles = 256
		}
		if len(sp.YearsGrid) == 0 {
			sp.YearsGrid = []float64{0, 3.3, 6.6, 10}
		}
	}
}

// validate rejects malformed submissions before they reach the queue.
func (sp *Spec) validate() error {
	switch sp.Kind {
	case KindLift, KindCampaign:
		if sp.Unit != "ALU" && sp.Unit != "FPU" {
			return fmt.Errorf("fleet: %s job needs unit ALU or FPU, got %q", sp.Kind, sp.Unit)
		}
	case KindSweep:
		if strings.TrimSpace(sp.Verilog) == "" {
			return fmt.Errorf("fleet: sweep job needs a verilog netlist")
		}
	default:
		return fmt.Errorf("fleet: unknown job kind %q", sp.Kind)
	}
	return nil
}

// Progress reports campaign completion (injections classified so far,
// out of the sampled universe). Zero for kinds without incremental
// progress.
type Progress struct {
	Done  int `json:"done"`
	Total int `json:"total"`
}

// Job is the persisted record of one submission. Result holds the
// job-kind-specific payload once Status is done (or a partial campaign
// report when cancelled mid-run).
type Job struct {
	ID     string `json:"id"`
	Spec   Spec   `json:"spec"`
	Status string `json:"status"`
	Error  string `json:"error,omitempty"`
	// CacheHit records whether the job's deepest compile artifact was
	// already resident in the shared store at submit time — the
	// warm/cold marker the load-test latency split keys on.
	CacheHit bool `json:"cache_hit"`
	// ServiceMs is the wall time the job spent executing on its worker
	// (excluding queue wait) — the latency the cache actually shortens,
	// measured server-side so client-side queueing can't distort the
	// load-test curve.
	ServiceMs float64         `json:"service_ms,omitempty"`
	Progress  Progress        `json:"progress"`
	Result   json.RawMessage `json:"result,omitempty"`

	// ckpt is the campaign checkpoint path, derived from the state dir
	// and ID by the server (not persisted — the derivation is the
	// contract, so restarted daemons find the same file).
	ckpt string
}

// SweepPoint is one lifetime sample of a sweep job's result, mirroring
// core.OnsetPoint so daemon results line up with the library sweep.
type SweepPoint struct {
	Years           float64 `json:"years"`
	WNSSetup        float64 `json:"wns_setup"`
	WNSHold         float64 `json:"wns_hold"`
	SetupViolations int     `json:"setup_violations"`
	HoldViolations  int     `json:"hold_violations"`
}

// SweepResult is a sweep job's payload.
type SweepResult struct {
	Netlist  string       `json:"netlist"` // module name from the parsed source
	Cells    int          `json:"cells"`
	PeriodPs float64      `json:"period_ps"`
	Points   []SweepPoint `json:"points"`
}

// jobPath is the job's persisted record; ckptPath is the campaign
// checkpoint file the injection engine owns.
func jobPath(dir, id string) string  { return filepath.Join(dir, id+".json") }
func ckptPath(dir, id string) string { return filepath.Join(dir, id+".ckpt") }

// saveJob persists j under dir with the atomic-rename discipline the
// checkpoint files use: a torn write can never corrupt the record a
// restarting daemon recovers from.
func saveJob(dir string, j *Job) error {
	data, err := json.MarshalIndent(j, "", "  ")
	if err != nil {
		return err
	}
	tmp := jobPath(dir, j.ID) + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, jobPath(dir, j.ID))
}

// loadJobs recovers every persisted job record in dir, sorted by ID so
// requeue order is deterministic across restarts.
func loadJobs(dir string) ([]*Job, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var jobs []*Job
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".json") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		var j Job
		if err := json.Unmarshal(data, &j); err != nil {
			return nil, fmt.Errorf("fleet: corrupt job record %s: %w", name, err)
		}
		jobs = append(jobs, &j)
	}
	sort.Slice(jobs, func(a, b int) bool { return jobs[a].ID < jobs[b].ID })
	return jobs, nil
}
