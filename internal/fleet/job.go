// Package fleet is the screening daemon behind cmd/vega-fleetd: an
// HTTP/JSON service that accepts netlist and workload-profile
// submissions, shards them across a bounded worker pool built on
// internal/par, and serves results and progress over a small REST
// surface (POST /jobs, GET /jobs/{id}, GET /jobs/{id}/result,
// DELETE /jobs/{id}, GET /metrics).
//
// Three job kinds cover the workflow phases a screening fleet runs at
// scale:
//
//   - "lift": error-lift a built-in unit (ALU/FPU) and return the test
//     suite, byte-identical to the vega-lift library path.
//   - "sweep": aging-aware lifetime sweep of a SUBMITTED gate-level
//     Verilog netlist under a random-stimulus SP profile, byte-identical
//     to calling sta.AnalyzeCorners directly.
//   - "campaign": fault-injection campaign against a built-in unit's
//     lifted suite, byte-identical to the vega-inject library path,
//     checkpointed per wave so a killed daemon resumes the job on
//     restart to the identical final report.
//
// The perf core is a single content-addressed artifact store
// (internal/store) shared by every worker: submissions are canonicalized
// by the hash of their content, so N concurrent submissions of the same
// netlist compile it exactly once (singleflight) and every later
// submission reuses the parsed netlist, compiled engine program, timing
// graph, SP profile and corner-library grid. /metrics exposes the
// hit/coalesced/build/eviction counters that the load-test harness
// (internal/fleet/loadtest) turns into the warm-vs-cold latency curve in
// BENCH_fleetd.json.
//
// Job state is persisted under Options.Dir with the same atomic-rename
// discipline as the injection checkpoints, so jobs survive a daemon
// restart: queued and interrupted-running jobs are requeued, and
// campaign jobs resume from their per-job checkpoint file.
package fleet

import (
	"encoding/json"
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/chaos"
)

// Job kinds.
const (
	KindLift     = "lift"
	KindSweep    = "sweep"
	KindCampaign = "campaign"
)

// Job statuses. Lifecycle: queued -> running -> done | failed |
// cancelled. A daemon restart moves interrupted running jobs back to
// queued.
const (
	StatusQueued    = "queued"
	StatusRunning   = "running"
	StatusDone      = "done"
	StatusFailed    = "failed"
	StatusCancelled = "cancelled"
)

// Spec is a job submission. Kind selects which fields matter; unknown
// kinds are rejected at submit time.
type Spec struct {
	Kind string `json:"kind"`

	// Unit selects the built-in unit for lift and campaign jobs
	// ("ALU" or "FPU").
	Unit string `json:"unit,omitempty"`
	// Years is the assumed lifetime for lift/campaign workflows
	// (default 10, like the CLIs).
	Years float64 `json:"years,omitempty"`
	// Mitigation enables the initial-value-dependency mitigation for
	// lift jobs.
	Mitigation bool `json:"mitigation,omitempty"`

	// Campaign parameters (see core.InjectOptions).
	Seed            uint64 `json:"seed,omitempty"`
	PerClass        int    `json:"per_class,omitempty"`
	MaxCycles       uint64 `json:"max_cycles,omitempty"`
	CheckpointEvery int    `json:"checkpoint_every,omitempty"`

	// Sweep parameters: a gate-level Verilog netlist plus the
	// workload-profile spec (random-stimulus packed cycles and seed)
	// and the lifetime grid to analyze.
	Verilog string `json:"verilog,omitempty"`
	// Margin sets the clock period as CriticalDelay * Margin
	// (default 1.05, the scale-bench signoff convention).
	Margin float64 `json:"margin,omitempty"`
	// SPCycles is the number of 64-lane packed random-stimulus cycles
	// profiled (default 256); SPSeed seeds the stimulus streams.
	SPCycles int   `json:"sp_cycles,omitempty"`
	SPSeed   int64 `json:"sp_seed,omitempty"`
	// YearsGrid lists the sweep lifetimes (default 0, 3.3, 6.6, 10).
	YearsGrid []float64 `json:"years_grid,omitempty"`

	// SubmitKey is an optional client-chosen idempotency key: a resend
	// of the same logical submission (a retry after a lost response)
	// carries the same key and maps onto the already-accepted job
	// instead of creating a duplicate. The key embeds the content hash
	// of the spec, and the server verifies that hash on a dedup hit, so
	// a replayed key can never attach to different work.
	SubmitKey string `json:"submit_key,omitempty"`
}

// fill applies the spec defaults shared by the runner and the cache-key
// derivation (both must see identical values or warm probes would miss).
func (sp *Spec) fill() {
	if sp.Years == 0 {
		sp.Years = 10
	}
	switch sp.Kind {
	case KindCampaign:
		if sp.PerClass == 0 {
			sp.PerClass = 25
		}
	case KindSweep:
		if sp.Margin == 0 {
			sp.Margin = 1.05
		}
		if sp.SPCycles == 0 {
			sp.SPCycles = 256
		}
		if len(sp.YearsGrid) == 0 {
			sp.YearsGrid = []float64{0, 3.3, 6.6, 10}
		}
	}
}

// validate rejects malformed submissions before they reach the queue.
func (sp *Spec) validate() error {
	switch sp.Kind {
	case KindLift, KindCampaign:
		if sp.Unit != "ALU" && sp.Unit != "FPU" {
			return fmt.Errorf("fleet: %s job needs unit ALU or FPU, got %q", sp.Kind, sp.Unit)
		}
	case KindSweep:
		if strings.TrimSpace(sp.Verilog) == "" {
			return fmt.Errorf("fleet: sweep job needs a verilog netlist")
		}
	default:
		return fmt.Errorf("fleet: unknown job kind %q", sp.Kind)
	}
	return nil
}

// Progress reports campaign completion (injections classified so far,
// out of the sampled universe). Zero for kinds without incremental
// progress.
type Progress struct {
	Done  int `json:"done"`
	Total int `json:"total"`
}

// Job is the persisted record of one submission. Result holds the
// job-kind-specific payload once Status is done (or a partial campaign
// report when cancelled mid-run).
type Job struct {
	ID     string `json:"id"`
	Spec   Spec   `json:"spec"`
	Status string `json:"status"`
	Error  string `json:"error,omitempty"`
	// CacheHit records whether the job's deepest compile artifact was
	// already resident in the shared store at submit time — the
	// warm/cold marker the load-test latency split keys on.
	CacheHit bool `json:"cache_hit"`
	// ServiceMs is the wall time the job spent executing on its worker
	// (excluding queue wait) — the latency the cache actually shortens,
	// measured server-side so client-side queueing can't distort the
	// load-test curve.
	ServiceMs float64 `json:"service_ms,omitempty"`
	// Attempts counts how many times the job has started executing —
	// across restarts, requeues and deadline retries. When it reaches
	// Options.MaxAttempts the job lands in failed with a reason instead
	// of requeueing forever: a poison job (one that crashes or hangs the
	// daemon every time) cannot pin the fleet in a crash loop.
	Attempts int             `json:"attempts,omitempty"`
	Progress Progress        `json:"progress"`
	Result   json.RawMessage `json:"result,omitempty"`

	// ckpt is the campaign checkpoint path, derived from the state dir
	// and ID by the server (not persisted — the derivation is the
	// contract, so restarted daemons find the same file).
	ckpt string
}

// SweepPoint is one lifetime sample of a sweep job's result, mirroring
// core.OnsetPoint so daemon results line up with the library sweep.
type SweepPoint struct {
	Years           float64 `json:"years"`
	WNSSetup        float64 `json:"wns_setup"`
	WNSHold         float64 `json:"wns_hold"`
	SetupViolations int     `json:"setup_violations"`
	HoldViolations  int     `json:"hold_violations"`
}

// SweepResult is a sweep job's payload.
type SweepResult struct {
	Netlist  string       `json:"netlist"` // module name from the parsed source
	Cells    int          `json:"cells"`
	PeriodPs float64      `json:"period_ps"`
	Points   []SweepPoint `json:"points"`
}

// jobPath is the job's persisted record; ckptPath is the campaign
// checkpoint file the injection engine owns.
func jobPath(dir, id string) string  { return filepath.Join(dir, id+".json") }
func ckptPath(dir, id string) string { return filepath.Join(dir, id+".ckpt") }

// diskJob is the persisted form of a Job. The result payload moves to
// a base64 field because encoding/json re-indents an embedded
// RawMessage, and a result served after a restart must be byte-for-byte
// the report the job originally produced. Legacy records carry the
// result in the embedded field and load with normalized whitespace.
type diskJob struct {
	Job
	ResultRaw []byte `json:"result_raw,omitempty"`
}

// saveJob persists j under dir, sealed in the self-verifying envelope
// and written with the durable atomic sequence (tmp write, fsync,
// rename, directory fsync): a torn write or power loss can never
// corrupt the record a restarting daemon recovers from, and silent
// on-disk corruption is detected — not loaded — by loadJobs.
func saveJob(fs chaos.FS, dir string, j *Job) error {
	dj := diskJob{Job: *j, ResultRaw: j.Result}
	dj.Job.Result = nil
	data, err := json.MarshalIndent(&dj, "", "  ")
	if err != nil {
		return err
	}
	return chaos.WriteAtomic(fs, jobPath(dir, j.ID), chaos.Seal(data), 0o644)
}

// loadJobs recovers every persisted job record in dir, sorted by ID so
// requeue order is deterministic across restarts. Records that fail
// their envelope check or no longer parse are quarantined (moved to
// dir/quarantine/) and reported by name — one corrupt record must not
// brick every restart — and leftover .tmp debris from a crashed write
// is deleted (by the atomic-rename contract it was never committed).
// Legacy un-sealed records from pre-envelope builds load verbatim.
func loadJobs(fs chaos.FS, dir string) (jobs []*Job, quarantined []string, err error) {
	ents, err := fs.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() {
			continue
		}
		if strings.HasSuffix(name, ".tmp") {
			_ = fs.Remove(filepath.Join(dir, name))
			continue
		}
		if !strings.HasSuffix(name, ".json") {
			continue
		}
		path := filepath.Join(dir, name)
		data, err := fs.ReadFile(path)
		if err != nil {
			return nil, nil, err
		}
		payload, _, err := chaos.Open(data)
		if errors.Is(err, chaos.ErrNewerVersion) {
			// Not corruption: the record outranks the binary. Refuse to
			// start rather than quarantine state that is presumed good.
			return nil, nil, fmt.Errorf("fleet: job record %s: %w", name, err)
		}
		if err == nil {
			var dj diskJob
			if jerr := json.Unmarshal(payload, &dj); jerr == nil {
				j := dj.Job
				if dj.ResultRaw != nil {
					j.Result = dj.ResultRaw
				}
				jobs = append(jobs, &j)
				continue
			} else {
				err = jerr
			}
		}
		if _, qerr := chaos.Quarantine(fs, path); qerr != nil {
			return nil, nil, fmt.Errorf("fleet: job record %s corrupt (%v) and quarantine failed: %w", name, err, qerr)
		}
		quarantined = append(quarantined, name)
	}
	sort.Slice(jobs, func(a, b int) bool { return jobs[a].ID < jobs[b].ID })
	return jobs, quarantined, nil
}
