package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/chaos"
)

// TestLegacyJobRecordLoads: job records written by pre-envelope builds
// are plain JSON with the result embedded. A daemon upgrade must load
// them verbatim — no envelope, no checksum, no migration step.
func TestLegacyJobRecordLoads(t *testing.T) {
	dir := t.TempDir()
	legacy := &Job{
		ID:     "j000007",
		Spec:   Spec{Kind: KindSweep, Verilog: tinyVerilog(1)},
		Status: StatusDone,
		Result: json.RawMessage(`{"netlist":"legacy","cells":1}`),
	}
	data, err := json.MarshalIndent(legacy, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(jobPath(dir, legacy.ID), data, 0o644); err != nil {
		t.Fatal(err)
	}

	s, err := New(Options{Dir: dir, Workers: 1})
	if err != nil {
		t.Fatalf("daemon refused legacy record: %v", err)
	}
	defer func() { _ = s.Shutdown(context.Background()) }()
	j, ok := s.Job(legacy.ID)
	if !ok || j.Status != StatusDone {
		t.Fatalf("legacy record not recovered: %+v", j)
	}
	if j.Result == nil {
		t.Fatal("legacy embedded result dropped")
	}
	if len(s.quarantined) != 0 {
		t.Fatalf("legacy record quarantined: %v", s.quarantined)
	}
	// The ID sequence must clear the recovered record.
	s.Start()
	j2, err := s.Submit(Spec{Kind: KindSweep, Verilog: tinyVerilog(1)})
	if err != nil {
		t.Fatal(err)
	}
	if j2.ID <= legacy.ID {
		t.Fatalf("new job ID %s does not clear recovered %s", j2.ID, legacy.ID)
	}
}

// TestCorruptJobRecordQuarantined is the regression test for the old
// fail-closed recovery: one flipped bit in one job record used to
// abort the whole daemon start. Now the record is quarantined, the
// corruption is reported on /metrics, and the daemon keeps serving.
func TestCorruptJobRecordQuarantined(t *testing.T) {
	dir := t.TempDir()
	good := &Job{ID: "j000001", Spec: Spec{Kind: KindSweep, Verilog: tinyVerilog(1)}, Status: StatusDone,
		Result: json.RawMessage(`{"ok":1}`)}
	bad := &Job{ID: "j000002", Spec: Spec{Kind: KindSweep, Verilog: tinyVerilog(1)}, Status: StatusDone}
	for _, j := range []*Job{good, bad} {
		if err := saveJob(chaos.OS{}, dir, j); err != nil {
			t.Fatal(err)
		}
	}
	path := jobPath(dir, bad.ID)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x04 // one silent bit flip in the payload
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	s, err := New(Options{Dir: dir, Workers: 1})
	if err != nil {
		t.Fatalf("one corrupt record aborted the daemon: %v", err)
	}
	s.Start()
	defer func() { _ = s.Shutdown(context.Background()) }()

	if _, ok := s.Job(good.ID); !ok {
		t.Fatal("healthy record lost alongside the corrupt one")
	}
	if _, ok := s.Job(bad.ID); ok {
		t.Fatal("corrupt record served as a job")
	}
	m := s.MetricsSnapshot()
	if len(m.Quarantined) != 1 || m.Quarantined[0] != bad.ID+".json" {
		t.Fatalf("metrics quarantine census = %v, want [%s.json]", m.Quarantined, bad.ID)
	}
	if _, err := os.Stat(filepath.Join(dir, chaos.QuarantineDirName, bad.ID+".json")); err != nil {
		t.Fatalf("corrupt record not preserved in quarantine: %v", err)
	}
	// The daemon is degraded, not dead: it still takes and finishes work.
	j, err := s.Submit(Spec{Kind: KindSweep, Verilog: tinyVerilog(1)})
	if err != nil {
		t.Fatal(err)
	}
	for {
		cur, _ := s.Job(j.ID)
		if cur.Status == StatusDone {
			break
		}
		if cur.Status == StatusFailed || cur.Status == StatusCancelled {
			t.Fatalf("post-quarantine job finished %s (%s)", cur.Status, cur.Error)
		}
	}
}

// TestRecordRoundTripPreservesResultBytes: a done record reloaded from
// disk must serve the byte-identical result payload — encoding/json
// would re-indent an embedded raw message, which is why the persisted
// form carries the result out-of-band.
func TestRecordRoundTripPreservesResultBytes(t *testing.T) {
	dir := t.TempDir()
	result := json.RawMessage("{\n  \"a\": [1, 2,    3],\n\t\"b\": \"x\"\n}")
	j := &Job{ID: "j000003", Spec: Spec{Kind: KindLift, Unit: "ALU"}, Status: StatusDone, Result: result}
	if err := saveJob(chaos.OS{}, dir, j); err != nil {
		t.Fatal(err)
	}
	jobs, quarantined, err := loadJobs(chaos.OS{}, dir)
	if err != nil || len(quarantined) != 0 || len(jobs) != 1 {
		t.Fatalf("load: jobs=%d quarantined=%v err=%v", len(jobs), quarantined, err)
	}
	if !bytes.Equal(jobs[0].Result, result) {
		t.Fatalf("result bytes mangled by persistence round-trip:\n%q\n%q", jobs[0].Result, result)
	}
}

// TestOversizedSubmissionRejected: a submission larger than
// MaxBodyBytes costs a 413, not the daemon's heap.
func TestOversizedSubmissionRejected(t *testing.T) {
	s, err := New(Options{Dir: t.TempDir(), Workers: 1, MaxBodyBytes: 256 << 10})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	defer func() { _ = s.Shutdown(context.Background()) }()
	h := httptest.NewServer(s.Handler())
	defer h.Close()

	huge, err := json.Marshal(Spec{Kind: KindSweep, Verilog: strings.Repeat("x", 1<<20)})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(h.URL+"/jobs", "application/json", bytes.NewReader(huge))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized submission got %d, want 413", resp.StatusCode)
	}
	// A normal-sized submission on the same daemon still works.
	ok, err := json.Marshal(Spec{Kind: KindSweep, Verilog: tinyVerilog(1)})
	if err != nil {
		t.Fatal(err)
	}
	resp2, err := http.Post(h.URL+"/jobs", "application/json", bytes.NewReader(ok))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusAccepted {
		t.Fatalf("normal submission after 413 got %d, want 202", resp2.StatusCode)
	}
}
