package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"sync"
	"testing"

	"repro/internal/aging"
	"repro/internal/cell"
	"repro/internal/core"
	"repro/internal/lift"
	"repro/internal/netlist"
	"repro/internal/sta"
	"repro/internal/synth"
)

// newTestServer starts a daemon over a fresh state dir and an in-process
// HTTP listener, returning the server, a client bound to it, and a
// cleanup-registered shutdown.
func newTestServer(t *testing.T, opts Options) (*Server, *Client) {
	t.Helper()
	if opts.Dir == "" {
		opts.Dir = t.TempDir()
	}
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	h := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		h.Close()
		_ = s.Shutdown(context.Background())
	})
	return s, &Client{Base: h.URL, HTTP: h.Client()}
}

// tinyVerilog synthesizes a small pipeline netlist as submission text.
func tinyVerilog(lanes int) string {
	return synth.Pipeline{Stages: 2, Width: 4, Lanes: lanes}.Build().Verilog()
}

// waitDone waits a job to done status, failing the test otherwise.
func waitDone(t *testing.T, c *Client, id string) *Job {
	t.Helper()
	j, err := c.Wait(context.Background(), id)
	if err != nil {
		t.Fatalf("wait %s: %v", id, err)
	}
	if j.Status != StatusDone {
		t.Fatalf("job %s finished %s (error %q), want done", id, j.Status, j.Error)
	}
	return j
}

// TestSmoke drives the full HTTP surface: an ALU lift job and an ALU
// campaign job (sharing one cached workflow), progress, results and
// metrics.
func TestSmoke(t *testing.T) {
	_, c := newTestServer(t, Options{Workers: 2})
	ctx := context.Background()

	liftJob, err := c.Submit(ctx, Spec{Kind: KindLift, Unit: "ALU"})
	if err != nil {
		t.Fatal(err)
	}
	campJob, err := c.Submit(ctx, Spec{Kind: KindCampaign, Unit: "ALU", Seed: 3, PerClass: 2})
	if err != nil {
		t.Fatal(err)
	}
	if liftJob.CacheHit || campJob.CacheHit {
		t.Errorf("fresh submissions marked warm: lift=%v campaign=%v", liftJob.CacheHit, campJob.CacheHit)
	}

	lj := waitDone(t, c, liftJob.ID)
	cj := waitDone(t, c, campJob.ID)
	if cj.Progress.Done != cj.Progress.Total || cj.Progress.Total != CampaignTotal(2) {
		t.Errorf("campaign progress %+v, want %d/%d", cj.Progress, CampaignTotal(2), CampaignTotal(2))
	}

	suiteBytes, err := c.Result(ctx, lj.ID)
	if err != nil {
		t.Fatal(err)
	}
	var suite lift.Suite
	if err := json.Unmarshal(suiteBytes, &suite); err != nil {
		t.Fatalf("lift result is not a suite: %v", err)
	}
	if suite.Unit != "ALU" || len(suite.Cases) == 0 {
		t.Errorf("lift suite: unit %q, %d cases", suite.Unit, len(suite.Cases))
	}

	repBytes, err := c.Result(ctx, cj.ID)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Unit      string
		Completed int
		Partial   bool
	}
	if err := json.Unmarshal(repBytes, &rep); err != nil {
		t.Fatalf("campaign result is not a report: %v", err)
	}
	if rep.Unit != "ALU" || rep.Partial || rep.Completed != CampaignTotal(2) {
		t.Errorf("campaign report: %+v", rep)
	}

	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.Store.Builds == 0 {
		t.Error("metrics: no store builds after two jobs")
	}
	// The two jobs share one (unit, years, mitigation) workflow: one
	// build, and the campaign either hit the cache or coalesced onto the
	// lift job's in-flight build.
	if m.Store.Hits+m.Store.Coalesced == 0 {
		t.Errorf("metrics: no sharing between lift and campaign: %+v", m.Store)
	}
	if m.Jobs[StatusDone] != 2 {
		t.Errorf("metrics: job census %v, want 2 done", m.Jobs)
	}
}

// TestDifferentialLift pins the byte-identity contract for lift jobs:
// the daemon's result equals json.Marshal of the suite the library path
// builds directly.
func TestDifferentialLift(t *testing.T) {
	_, c := newTestServer(t, Options{Workers: 1})
	ctx := context.Background()
	j, err := c.Submit(ctx, Spec{Kind: KindLift, Unit: "ALU", Mitigation: true})
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Result(ctx, waitDone(t, c, j.ID).ID)
	if err != nil {
		t.Fatal(err)
	}

	w := core.NewALU(core.Config{Years: 10, Parallelism: 1, Lift: lift.Config{Mitigation: true}})
	if _, err := w.ErrorLifting(); err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(w.Suite())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("lift result diverges from library path:\n daemon %d bytes\n direct %d bytes", len(got), len(want))
	}
}

// TestDifferentialSweep pins the byte-identity contract for sweep jobs
// against the direct sta.AnalyzeCorners path over the same submitted
// netlist text.
func TestDifferentialSweep(t *testing.T) {
	_, c := newTestServer(t, Options{Workers: 1})
	ctx := context.Background()
	src := tinyVerilog(2)
	spec := Spec{Kind: KindSweep, Verilog: src, SPCycles: 64, SPSeed: 7, YearsGrid: []float64{0, 5, 10}}
	j, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Result(ctx, waitDone(t, c, j.ID).ID)
	if err != nil {
		t.Fatal(err)
	}

	// The library path, with no store in sight.
	nl, err := netlist.ParseVerilog(src)
	if err != nil {
		t.Fatal(err)
	}
	lib := cell.Lib28()
	period := sta.CriticalDelay(nl, lib) * 1.05
	prof, err := core.RandomSP(nl, 64, 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := sta.BatchConfig{
		PeriodPs: period, Base: lib, Model: aging.Default(),
		Profile: prof, PerEndpoint: 40, Parallelism: 1,
	}
	corners := []sta.Corner{{}, {Years: 5}, {Years: 10}}
	results := sta.AnalyzeCorners(nl, cfg, corners)
	want := SweepResult{Netlist: nl.Name, Cells: len(nl.Cells), PeriodPs: period}
	for i, res := range results {
		want.Points = append(want.Points, SweepPoint{
			Years:           spec.YearsGrid[i],
			WNSSetup:        res.WNSSetup,
			WNSHold:         res.WNSHold,
			SetupViolations: res.NumSetupViolations,
			HoldViolations:  res.NumHoldViolations,
		})
	}
	wantBytes, err := json.MarshalIndent(want, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, wantBytes) {
		t.Errorf("sweep result diverges from library path:\n daemon: %s\n direct: %s", got, wantBytes)
	}
}

// TestDifferentialCampaign pins the byte-identity contract for campaign
// jobs against the direct library path (same seed, same universe).
func TestDifferentialCampaign(t *testing.T) {
	_, c := newTestServer(t, Options{Workers: 1})
	ctx := context.Background()
	j, err := c.Submit(ctx, Spec{Kind: KindCampaign, Unit: "ALU", Seed: 9, PerClass: 1})
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Result(ctx, waitDone(t, c, j.ID).ID)
	if err != nil {
		t.Fatal(err)
	}

	w := core.NewALU(core.Config{Years: 10, Parallelism: 1})
	if _, err := w.ErrorLifting(); err != nil {
		t.Fatal(err)
	}
	rep, err := w.InjectionCampaign(ctx, core.InjectOptions{Seed: 9, PerClass: 1})
	if err != nil {
		t.Fatal(err)
	}
	want, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("campaign result diverges from library path:\n daemon %d bytes\n direct %d bytes", len(got), len(want))
	}
}

// TestDaemonSingleflight submits many identical sweep jobs concurrently
// and asserts the store compiled each artifact of the chain exactly
// once: the perf claim of the shared content-addressed cache, enforced
// at the daemon level rather than the store's own unit tests.
func TestDaemonSingleflight(t *testing.T) {
	s, c := newTestServer(t, Options{Workers: 8})
	ctx := context.Background()
	src := tinyVerilog(1)
	const K = 16

	ids := make([]string, K)
	var wg sync.WaitGroup
	errs := make([]error, K)
	for i := 0; i < K; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			j, err := c.Submit(ctx, Spec{Kind: KindSweep, Verilog: src, SPCycles: 32})
			if err != nil {
				errs[i] = err
				return
			}
			ids[i] = j.ID
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	var results [][]byte
	for _, id := range ids {
		got, err := c.Result(ctx, waitDone(t, c, id).ID)
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, got)
	}
	for i := 1; i < K; i++ {
		if !bytes.Equal(results[i], results[0]) {
			t.Fatalf("submission %d returned different bytes than submission 0", i)
		}
	}

	st := s.Store().Stats()
	// The sweep chain publishes exactly 4 artifacts: netlist, period,
	// profile, corner grid. K identical jobs must build each once.
	if st.Builds != 4 {
		t.Errorf("store built %d artifacts for %d identical submissions, want 4 (compile-once)", st.Builds, K)
	}
	if got, want := st.Hits+st.Coalesced, uint64(4*(K-1)); got != want {
		t.Errorf("store reuse %d (hits %d + coalesced %d), want %d", got, st.Hits, st.Coalesced, want)
	}
	if st.Inflight != 0 {
		t.Errorf("store still has %d in-flight builds at rest", st.Inflight)
	}
}

// TestValidationAndCancel exercises the submission guard rails and
// queued-job cancellation.
func TestValidationAndCancel(t *testing.T) {
	s, c := newTestServer(t, Options{Workers: 1})
	ctx := context.Background()

	for _, bad := range []Spec{
		{Kind: "mine"},
		{Kind: KindLift, Unit: "VPU"},
		{Kind: KindSweep},
	} {
		if _, err := c.Submit(ctx, bad); err == nil {
			t.Errorf("spec %+v accepted, want rejection", bad)
		}
	}
	if _, err := c.Job(ctx, "j999999"); err == nil {
		t.Error("lookup of unknown job succeeded")
	}

	// Saturate the single worker with a slow job (a full ALU lift), then
	// cancel a queued one behind it: it must go straight to cancelled
	// without running.
	busy, err := c.Submit(ctx, Spec{Kind: KindLift, Unit: "ALU"})
	if err != nil {
		t.Fatal(err)
	}
	queued, err := c.Submit(ctx, Spec{Kind: KindSweep, Verilog: tinyVerilog(2), SPCycles: 64})
	if err != nil {
		t.Fatal(err)
	}
	cj, err := c.Cancel(ctx, queued.ID)
	if err != nil {
		t.Fatal(err)
	}
	if cj.Status == StatusDone || cj.Status == StatusFailed {
		t.Errorf("cancelled queued job reports %s", cj.Status)
	}
	final, err := c.Wait(ctx, queued.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.Status != StatusCancelled {
		t.Errorf("queued job finished %s after cancel, want cancelled", final.Status)
	}
	waitDone(t, c, busy.ID)

	// The cancelled record survives in the census.
	m := s.MetricsSnapshot()
	if m.Jobs[StatusCancelled] != 1 {
		t.Errorf("census %v, want 1 cancelled", m.Jobs)
	}
}
