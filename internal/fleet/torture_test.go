package fleet

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/store"
)

// tortureOracle computes the uninterrupted campaign report for the
// torture spec through the library path — the byte-exact answer every
// crashed-and-restarted daemon must still converge to.
func tortureOracle(t *testing.T, spec Spec) []byte {
	t.Helper()
	w := core.NewALU(core.Config{Years: 10, Parallelism: 1})
	if _, err := w.ErrorLifting(); err != nil {
		t.Fatal(err)
	}
	rep, err := w.InjectionCampaign(context.Background(), core.InjectOptions{Seed: spec.Seed, PerClass: spec.PerClass})
	if err != nil {
		t.Fatal(err)
	}
	want, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	return want
}

// waitTerminal polls until the job leaves queued/running in the
// server's memory (any terminal status), with a deadline.
func waitTerminal(t *testing.T, s *Server, id string) *Job {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		j, ok := s.Job(id)
		if !ok {
			t.Fatalf("job %s vanished", id)
		}
		switch j.Status {
		case StatusDone, StatusFailed, StatusCancelled:
			return j
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s did not reach a terminal state", id)
	return nil
}

// TestCrashMatrix is the proof layer of the chaos seam: run a
// checkpointed campaign job while the injected filesystem crashes at
// I/O step k, for EVERY k the uninterrupted run performs; restart a
// fresh daemon over the surviving directory each time and require the
// crash-consistency invariants:
//
//   - an accepted job (Submit returned success) is never lost — the
//     restarted daemon finds it on disk and finishes it;
//   - no corrupt or partial result is ever served — the finished
//     report is byte-identical to the uninterrupted oracle;
//   - a crash before acceptance leaves a directory a fresh daemon
//     starts on and serves the same oracle answer for a resubmission.
//
// One shared artifact store plays the warm-restart supervisor so the
// ALU workflow compiles once across the whole matrix.
func TestCrashMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("crash matrix is long")
	}
	spec := Spec{Kind: KindCampaign, Unit: "ALU", Seed: 5, PerClass: 2, CheckpointEvery: 2}
	want := tortureOracle(t, spec)
	shared := store.New(128)

	// Pass 0: no faults, through the counting filesystem — establishes
	// the step count and the differential baseline.
	runOnce := func(dir string, fs chaos.FS) (*Server, *Job, error) {
		s, err := New(Options{Dir: dir, Workers: 1, Store: shared, FS: fs})
		if err != nil {
			return nil, nil, err
		}
		s.Start()
		j, err := s.Submit(spec)
		if err != nil {
			_ = s.Shutdown(context.Background())
			return nil, nil, err
		}
		return s, j, nil
	}

	count := chaos.NewInjected(chaos.OS{}, chaos.Plan{})
	s0, j0, err := runOnce(t.TempDir(), count)
	if err != nil {
		t.Fatal(err)
	}
	fin := waitTerminal(t, s0, j0.ID)
	_ = s0.Shutdown(context.Background())
	if fin.Status != StatusDone {
		t.Fatalf("baseline job finished %s (%s)", fin.Status, fin.Error)
	}
	if !bytes.Equal(fin.Result, want) {
		t.Fatalf("baseline daemon report diverges from library oracle (%d vs %d bytes)",
			len(fin.Result), len(want))
	}
	steps := count.Steps()
	if steps < 10 {
		t.Fatalf("baseline run performed only %d I/O steps — matrix would prove nothing", steps)
	}
	t.Logf("crash matrix: %d I/O steps to cover", steps)

	var nAccepted, nAmbiguous, nResubmitted int
	for k := 1; k <= steps; k++ {
		dir := t.TempDir()
		fs := chaos.NewInjected(chaos.OS{}, chaos.Plan{Faults: []chaos.Fault{{Step: k, Kind: chaos.Crash}}})

		accepted := ""
		s1, j1, err := runOnce(dir, fs)
		if err == nil {
			accepted = j1.ID
			// Let the daemon run into the crash (or to completion, when
			// the crash hit only later persistence); every path ends in a
			// terminal in-memory state because a dead FS fails the run.
			waitTerminal(t, s1, j1.ID)
			_ = s1.Shutdown(context.Background())
		}
		if !fs.Crashed() {
			t.Fatalf("k=%d: fault plan never fired (%d steps taken)", k, fs.Steps())
		}

		// Restart over the surviving directory with a healthy filesystem.
		s2, err := New(Options{Dir: dir, Workers: 1, Store: shared})
		if err != nil {
			t.Fatalf("k=%d: restart failed: %v", k, err)
		}
		if len(s2.quarantined) != 0 {
			t.Fatalf("k=%d: crash produced corrupt records %v — atomic replace is torn", k, s2.quarantined)
		}
		s2.Start()

		id := accepted
		if id == "" {
			// Crash before acceptance: the outcome is legitimately
			// ambiguous (the classic lost-response window). Either the
			// record never committed — the directory is empty and a fresh
			// submission works — or the atomic rename landed just before
			// the crash and the restarted daemon recovers the job anyway.
			// Both must converge on the oracle; what is never allowed is
			// a torn or duplicated record.
			switch recovered := s2.Jobs(); len(recovered) {
			case 0:
				nResubmitted++
				j2, err := s2.Submit(spec)
				if err != nil {
					t.Fatalf("k=%d: resubmission failed: %v", k, err)
				}
				id = j2.ID
			case 1:
				nAmbiguous++
				id = recovered[0].ID
			default:
				t.Fatalf("k=%d: one unacknowledged submission left %d records", k, len(recovered))
			}
		} else {
			nAccepted++
			// Accepted job must survive the crash.
			if _, ok := s2.Job(id); !ok {
				t.Fatalf("k=%d: accepted job %s lost across crash+restart", k, id)
			}
		}
		fin := waitTerminal(t, s2, id)
		_ = s2.Shutdown(context.Background())
		if fin.Status != StatusDone {
			t.Fatalf("k=%d: job finished %s (%s), want done", k, fin.Status, fin.Error)
		}
		if !bytes.Equal(fin.Result, want) {
			t.Fatalf("k=%d: report after crash+restart diverges from oracle (%d vs %d bytes)",
				k, len(fin.Result), len(want))
		}
	}
	t.Logf("crash matrix: %d points — accepted+recovered %d, ambiguous-submit recovered %d, resubmitted fresh %d; all byte-identical to oracle",
		steps, nAccepted, nAmbiguous, nResubmitted)
}

// TestJobDeadlinePoisonFuse: a job that can never meet its deadline is
// retried (campaigns keep their checkpointed prefix) until the attempt
// cap trips, then fails with an explanatory reason — it must not
// requeue forever or pin a worker.
func TestJobDeadlinePoisonFuse(t *testing.T) {
	// The workflow build runs inside the store's singleflight, outside
	// the job context, so it completes even under a nanosecond deadline —
	// the deadline then bites at the campaign's first cancellation point.
	shared := store.New(128)
	spec := Spec{Kind: KindCampaign, Unit: "ALU", Seed: 5, PerClass: 4, CheckpointEvery: 1}

	s, err := New(Options{Dir: t.TempDir(), Workers: 1, Store: shared,
		JobTimeout: time.Nanosecond, MaxAttempts: 3})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	defer func() { _ = s.Shutdown(context.Background()) }()
	j, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	fin := waitTerminal(t, s, j.ID)
	if fin.Status != StatusFailed {
		t.Fatalf("impossible-deadline job finished %s, want failed", fin.Status)
	}
	if !strings.Contains(fin.Error, "deadline") || !strings.Contains(fin.Error, "3/3") {
		t.Fatalf("poison-fuse reason %q does not name the deadline and attempt budget", fin.Error)
	}
	if fin.Attempts != 3 {
		t.Fatalf("job recorded %d attempts, want 3", fin.Attempts)
	}

	// The same daemon still completes reasonable work afterwards.
	s2, err := New(Options{Dir: t.TempDir(), Workers: 1, Store: shared, JobTimeout: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	s2.Start()
	defer func() { _ = s2.Shutdown(context.Background()) }()
	ok, err := s2.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if fin := waitTerminal(t, s2, ok.ID); fin.Status != StatusDone {
		t.Fatalf("job under a sane deadline finished %s (%s)", fin.Status, fin.Error)
	}
}

// TestCorruptCheckpointQuarantined: a campaign interrupted mid-flight
// whose on-disk checkpoint is then silently corrupted (one flipped bit)
// must NOT resume from the corrupt state — the envelope detects it, the
// file is quarantined, and the restarted daemon recomputes the
// campaign from scratch to the byte-identical oracle report.
func TestCorruptCheckpointQuarantined(t *testing.T) {
	spec := Spec{Kind: KindCampaign, Unit: "ALU", Seed: 5, PerClass: 8, CheckpointEvery: 4}
	want := tortureOracle(t, spec)

	dir := t.TempDir()
	s1, err := New(Options{Dir: dir, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	var once sync.Once
	shutdownDone := make(chan struct{})
	s1.progressHook = func(id string, p Progress) {
		once.Do(func() {
			s1.mu.Lock()
			s1.draining = true
			s1.closed = true
			s1.mu.Unlock()
			s1.cancel()
			go func() {
				_ = s1.Shutdown(context.Background())
				close(shutdownDone)
			}()
		})
	}
	s1.Start()
	sub, err := s1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	<-shutdownDone

	// Flip one bit in the checkpoint payload — the silent corruption an
	// aging storage device hands back.
	ckpt := ckptPath(dir, sub.ID)
	data, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatalf("no checkpoint on disk after interruption: %v", err)
	}
	data[len(data)-2] ^= 0x10
	if err := os.WriteFile(ckpt, data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := New(Options{Dir: dir, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	s2.Start()
	defer func() { _ = s2.Shutdown(context.Background()) }()
	final := waitServerDone(t, s2, sub.ID)
	if !bytes.Equal(final.Result, want) {
		t.Errorf("report after corrupt-checkpoint restart diverges from oracle (%d vs %d bytes)",
			len(final.Result), len(want))
	}
	qdir := filepath.Join(dir, chaos.QuarantineDirName)
	ents, err := os.ReadDir(qdir)
	if err != nil || len(ents) == 0 {
		t.Errorf("corrupt checkpoint was not quarantined under %s (err %v)", qdir, err)
	}
	for _, e := range ents {
		if !strings.HasSuffix(e.Name(), ".ckpt") {
			t.Errorf("unexpected quarantined file %s", e.Name())
		}
	}
}
