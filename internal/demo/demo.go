// Package demo builds the running example of the paper's Section 3: a
// pipelined 2-bit adder (Listing 1) synthesized into the minimal AND/XOR/
// DFF netlist of Figure 3. It is used by the quickstart example and as a
// small, hand-checkable fixture throughout the test suite.
package demo

import (
	"repro/internal/cell"
	"repro/internal/netlist"
)

// Adder2 returns the Figure 3 netlist. Cell numbering matches the paper:
//
//	DFF$1..$4  sample a[0], b[0], a[1], b[1] into aq/bq
//	XOR$5      = aq[0] ^ bq[0]        (sum bit 0)
//	AND$6      = aq[0] & bq[0]        (carry into bit 1)
//	XOR$7      = aq[1] ^ bq[1]
//	XOR$8      = XOR$7 ^ AND$6        (sum bit 1)
//	DFF$9/$10  register o[0] / o[1]
//
// The paper's aging-prone setup path is $4 -> $7 -> $8 -> $10 and the
// hold-violating path is $1 -> $5 -> $9.
func Adder2() *netlist.Netlist {
	b := netlist.NewBuilder("adder")
	clk := b.Clock("clk")
	a := b.InputBus("a", 2)
	bb := b.InputBus("b", 2)

	aq0 := b.AddDFFNamed("DFF$1", a[0], clk, false)
	bq0 := b.AddDFFNamed("DFF$2", bb[0], clk, false)
	aq1 := b.AddDFFNamed("DFF$3", a[1], clk, false)
	bq1 := b.AddDFFNamed("DFF$4", bb[1], clk, false)

	s0 := b.AddNamed(cell.XOR2, "XOR$5", aq0, bq0)
	c0 := b.AddNamed(cell.AND2, "AND$6", aq0, bq0)
	x1 := b.AddNamed(cell.XOR2, "XOR$7", aq1, bq1)
	s1 := b.AddNamed(cell.XOR2, "XOR$8", x1, c0)

	o0 := b.AddDFFNamed("DFF$9", s0, clk, false)
	o1 := b.AddDFFNamed("DFF$10", s1, clk, false)

	b.OutputBus("o", netlist.Bus{o0, o1})
	return b.MustBuild()
}

// CellIDByName returns the CellID of the named cell, panicking if absent.
// Convenience for tests and the quickstart, which refer to the paper's
// $-numbered instances.
func CellIDByName(nl *netlist.Netlist, name string) netlist.CellID {
	for i, c := range nl.Cells {
		if c.Name == name {
			return netlist.CellID(i)
		}
	}
	panic("demo: no cell named " + name)
}
