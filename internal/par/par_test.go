package par

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"testing/quick"
)

// seqMap is the reference semantics: the plain sequential for loop,
// stopping at the first error.
func seqMap(n int, fn func(i int) (int, error)) ([]int, error) {
	out := make([]int, n)
	for i := 0; i < n; i++ {
		v, err := fn(i)
		if err != nil {
			return out, fmt.Errorf("par: task %d: %w", i, err)
		}
		out[i] = v
	}
	if n == 0 {
		return nil, nil
	}
	return out, nil
}

// TestMapEqualsSequentialLoop is the testing/quick property the tentpole
// rests on: Map over any []int with any pure function equals the
// sequential for loop, at every parallelism, including the empty slice.
func TestMapEqualsSequentialLoop(t *testing.T) {
	property := func(xs []int, mul int8, par uint8) bool {
		fn := func(i int) (int, error) { return xs[i]*int(mul) + i, nil }
		want, _ := seqMap(len(xs), fn)
		got, err := Map(context.Background(), len(xs), int(par%16), func(_ context.Context, i int) (int, error) {
			return fn(i)
		})
		if err != nil {
			return false
		}
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestMapFirstErrorWins checks that the returned error is the one from
// the lowest-indexed failing task — the deterministic analogue of the
// sequential loop's "first error" — at every parallelism.
func TestMapFirstErrorWins(t *testing.T) {
	sentinel := errors.New("boom")
	property := func(failsRaw []uint8, par uint8) bool {
		n := 40
		fails := map[int]bool{}
		for _, f := range failsRaw {
			fails[int(f)%n] = true
		}
		fn := func(i int) (int, error) {
			if fails[i] {
				return 0, fmt.Errorf("%w at %d", sentinel, i)
			}
			return i, nil
		}
		_, wantErr := seqMap(n, fn)
		_, gotErr := Map(context.Background(), n, int(par%16), func(_ context.Context, i int) (int, error) {
			return fn(i)
		})
		if (wantErr == nil) != (gotErr == nil) {
			return false
		}
		if wantErr == nil {
			return true
		}
		// Same failing index ⇒ same wrapped message.
		return errors.Is(gotErr, sentinel) && gotErr.Error() == wantErr.Error()
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestMapErrorCancelsRest checks that a failing task cancels the shared
// context so cooperative tasks stop early.
func TestMapErrorCancelsRest(t *testing.T) {
	var sawCancel atomic.Bool
	started := make(chan struct{})
	_, err := Map(context.Background(), 2, 2, func(ctx context.Context, i int) (int, error) {
		if i == 0 {
			<-started // wait until the sibling is live, then fail
			return 0, errors.New("fail fast")
		}
		close(started)
		<-ctx.Done() // the failing sibling must release us
		sawCancel.Store(true)
		return 0, nil
	})
	if err == nil {
		t.Fatal("expected an error")
	}
	if !sawCancel.Load() {
		t.Error("context was never cancelled for sibling tasks")
	}
}

// TestMapPanicRecovered checks that a panicking task is reported as an
// error, not a process crash, at sequential and parallel widths.
func TestMapPanicRecovered(t *testing.T) {
	for _, par := range []int{1, 8} {
		_, err := Map(context.Background(), 10, par, func(_ context.Context, i int) (int, error) {
			if i == 3 {
				panic("kaboom")
			}
			return i, nil
		})
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("par=%d: want PanicError, got %v", par, err)
		}
		if !strings.Contains(pe.Error(), "kaboom") {
			t.Errorf("par=%d: panic value lost: %v", par, pe)
		}
	}
}

// TestMapEmpty checks the empty slice degenerate case.
func TestMapEmpty(t *testing.T) {
	got, err := Map(context.Background(), 0, 8, func(_ context.Context, i int) (int, error) {
		t.Error("task ran for empty input")
		return 0, nil
	})
	if err != nil || len(got) != 0 {
		t.Fatalf("got %v, %v", got, err)
	}
}

// TestMapExternalCancel checks that a pre-cancelled caller context
// surfaces as an error instead of silently returning zero values.
func TestMapExternalCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Map(ctx, 100, 4, func(_ context.Context, i int) (int, error) { return i, nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

// TestForEach covers the result-free wrapper.
func TestForEach(t *testing.T) {
	var count atomic.Int64
	if err := ForEach(context.Background(), 32, 8, func(_ context.Context, i int) error {
		count.Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if count.Load() != 32 {
		t.Errorf("ran %d of 32 tasks", count.Load())
	}
}

// TestN covers the parallelism-knob resolution.
func TestN(t *testing.T) {
	if N(0) < 1 || N(-3) < 1 {
		t.Error("auto parallelism must be at least 1")
	}
	if N(7) != 7 {
		t.Error("explicit parallelism must pass through")
	}
}

// TestSeedIndexDerivation checks that per-task seeds differ across
// indices and are pure functions of (base, index).
func TestSeedIndexDerivation(t *testing.T) {
	seen := map[int64]int{}
	for i := 0; i < 1000; i++ {
		s := Seed(42, i)
		if j, dup := seen[s]; dup {
			t.Fatalf("seed collision between tasks %d and %d", i, j)
		}
		seen[s] = i
		if s != Seed(42, i) {
			t.Fatal("seed is not deterministic")
		}
	}
	if Seed(1, 0) == Seed(2, 0) {
		t.Error("base seed must matter")
	}
}

// TestMapHammer drives many concurrent pools at once; it exists to give
// `go test -race` scheduling variety to chew on.
func TestMapHammer(t *testing.T) {
	if err := ForEach(context.Background(), 8, 8, func(ctx context.Context, _ int) error {
		for round := 0; round < 20; round++ {
			sum := 0
			vals, err := Map(ctx, 50, 4, func(_ context.Context, i int) (int, error) {
				return i * i, nil
			})
			if err != nil {
				return err
			}
			for _, v := range vals {
				sum += v
			}
			if sum != 40425 {
				return fmt.Errorf("bad sum %d", sum)
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}
