// Package par is the repository's worker pool: bounded fan-out with
// errgroup-style semantics hand-rolled on the standard library. It
// exists because every expensive phase of the Vega workflow — error
// lifting, workload profiling, suite-vs-failing-netlist replay, the
// lifetime and temperature sweeps — is an independent map over a task
// list, and the determinism contract of the workflow (Parallelism=N
// must deep-equal Parallelism=1) demands index-ordered result
// collection rather than completion-ordered channels.
//
// Semantics:
//
//   - Tasks are dispensed in index order to at most `parallelism`
//     workers (0 selects runtime.NumCPU(); 1 degenerates to the plain
//     sequential loop, run inline on the caller's goroutine).
//   - Results land in a pre-sized slice at their own index, so output
//     order never depends on scheduling.
//   - First error wins: the returned error is the one from the
//     lowest-indexed failed task, and the shared context is cancelled
//     as soon as any task fails so cooperative tasks can stop early.
//     Tasks never dispensed after cancellation leave zero values.
//   - A panicking task is recovered and reported as a *PanicError
//     carrying the panic value and stack — one bad task must not kill
//     a long experiment binary.
package par

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// N resolves a parallelism knob: values <= 0 select runtime.NumCPU().
func N(parallelism int) int {
	if parallelism <= 0 {
		return runtime.NumCPU()
	}
	return parallelism
}

// PanicError wraps a panic recovered from a task.
type PanicError struct {
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("task panicked: %v\n%s", e.Value, e.Stack)
}

// Map runs fn(ctx, i) for every i in [0, n) on up to N(parallelism)
// workers and returns the results in index order. On failure it returns
// the partially-filled result slice and the error of the lowest-indexed
// failed task, wrapped with its index.
func Map[T any](ctx context.Context, n, parallelism int, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	p := N(parallelism)
	if p > n {
		p = n
	}
	results := make([]T, n)
	errs := make([]error, n)
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var next atomic.Int64
	worker := func() {
		for {
			if ctx.Err() != nil {
				return
			}
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			runTask(ctx, i, fn, results, errs, cancel)
		}
	}

	if p == 1 {
		worker()
	} else {
		var wg sync.WaitGroup
		wg.Add(p)
		for k := 0; k < p; k++ {
			go func() {
				defer wg.Done()
				worker()
			}()
		}
		wg.Wait()
	}

	for i, err := range errs {
		if err != nil {
			return results, fmt.Errorf("par: task %d: %w", i, err)
		}
	}
	// No task failed, but the caller's context may have been cancelled
	// externally, leaving later tasks undone; surface that.
	return results, ctx.Err()
}

// runTask executes one task with panic capture; any failure records the
// error at the task's index and cancels the pool.
func runTask[T any](ctx context.Context, i int, fn func(ctx context.Context, i int) (T, error), results []T, errs []error, cancel context.CancelFunc) {
	defer func() {
		if r := recover(); r != nil {
			errs[i] = &PanicError{Value: r, Stack: debug.Stack()}
			cancel()
		}
	}()
	v, err := fn(ctx, i)
	if err != nil {
		errs[i] = err
		cancel()
		return
	}
	results[i] = v
}

// ForEach is Map for side-effecting tasks with no result value.
func ForEach(ctx context.Context, n, parallelism int, fn func(ctx context.Context, i int) error) error {
	_, err := Map(ctx, n, parallelism, func(ctx context.Context, i int) (struct{}, error) {
		return struct{}{}, fn(ctx, i)
	})
	return err
}

// Seed derives a per-task RNG seed from a base seed and a task index
// (splitmix64), so parallel tasks never share one rand.Rand and the
// stream a task sees is a function of its index alone — not of how the
// scheduler interleaved the pool.
func Seed(base int64, i int) int64 {
	z := uint64(base) + 0x9E3779B97F4A7C15*uint64(i+1)
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}
