package sta

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/aging"
	"repro/internal/alu"
	"repro/internal/cell"
	"repro/internal/demo"
	"repro/internal/fpu"
	"repro/internal/module"
	"repro/internal/netlist"
	"repro/internal/sim"
)

// table1Profile builds the paper's Table 1 SP profile for the demo adder.
func table1Profile(nl *netlist.Netlist) *sim.Profile {
	p := &sim.Profile{Cycles: 1, SP: make([]float64, nl.NumNets)}
	sp := map[string]float64{
		"DFF$1": 0.85, "DFF$2": 0.54, "DFF$3": 0.38, "DFF$4": 0.27,
		"XOR$5": 0.46, "AND$6": 0.48, "XOR$7": 0.13, "XOR$8": 0.52,
		"DFF$9": 0.44, "DFF$10": 0.54,
	}
	for name, v := range sp {
		cid := demo.CellIDByName(nl, name)
		p.SP[nl.Cells[cid].Out] = v
	}
	return p
}

func TestFreshAdderMeetsTiming(t *testing.T) {
	nl := demo.Adder2()
	res := Analyze(nl, Config{PeriodPs: 1000, Base: cell.DemoLibrary()})
	// Longest path: clk-to-q 300 + two XORs 600 = 900; required 940.
	if math.Abs(res.WNSSetup-40) > 1e-9 {
		t.Errorf("fresh WNS setup = %v, want 40", res.WNSSetup)
	}
	// Shortest path: clk-to-q 100 + XOR 100 = 200 vs hold 30.
	if math.Abs(res.WNSHold-170) > 1e-9 {
		t.Errorf("fresh WNS hold = %v, want 170", res.WNSHold)
	}
	if res.NumSetupViolations != 0 || res.NumHoldViolations != 0 {
		t.Errorf("fresh design has violations: %+v", res)
	}
}

func TestAgedAdderReproducesPaperExample(t *testing.T) {
	// §3.2.2: with the Table 1 profile, the path $4 -> $7 -> $8 -> $10
	// accumulates ~0.946ns after 10 years and violates the 0.94ns setup
	// requirement.
	nl := demo.Adder2()
	lib := aging.NewLibrary(cell.DemoLibrary(), aging.Default(), 10)
	res := Analyze(nl, Config{PeriodPs: 1000, Aged: lib, Profile: table1Profile(nl)})
	if res.WNSSetup >= 0 {
		t.Fatalf("aged WNS setup = %v, want negative", res.WNSSetup)
	}
	if res.WNSSetup < -12 {
		t.Fatalf("aged WNS setup = %v, out of the expected few-ps band", res.WNSSetup)
	}
	if len(res.Pairs) == 0 {
		t.Fatal("no violating pairs")
	}
	worst := res.Pairs[0]
	start := nl.Cells[worst.Start].Name
	end := nl.Cells[worst.End].Name
	if start != "DFF$4" || end != "DFF$10" {
		t.Errorf("worst pair = %s -> %s, want DFF$4 -> DFF$10", start, end)
	}
	// Aged path delay ~945-946ps.
	delay := 1000.0 - lib.Base.Timing[cell.DFF].Setup - (res.WNSSetup + 0)
	if delay < 942 || delay > 950 {
		t.Errorf("aged critical path = %vps, want ~946ps", delay)
	}
	if res.NumHoldViolations != 0 {
		t.Error("demo adder should have no hold violations (no clock skew)")
	}
}

func TestHoldViolationFromAgedClockSkew(t *testing.T) {
	// Launch FF under a 9-buffer ungated branch; capture FF under a
	// nominally-balanced gated branch (gate + 8 buffers) with a direct
	// Q->D connection. Fresh timing meets hold by a small residual; the
	// gated branch's aged slowdown flips it negative.
	b := netlist.NewBuilder("skew")
	clk := b.Clock("clk")
	en := b.Input("en")
	d := b.Input("d")

	launch := clk
	var launchNets []netlist.NetID
	for i := 0; i < 9; i++ {
		launch = b.Add(cell.CLKBUF, launch)
		launchNets = append(launchNets, launch)
	}
	capture := b.Add(cell.CLKGATE, clk, en)
	captureNets := []netlist.NetID{capture}
	for i := 0; i < 8; i++ {
		capture = b.Add(cell.CLKBUF, capture)
		captureNets = append(captureNets, capture)
	}
	ql := b.AddDFFNamed("launch_ff", d, launch, false)
	qc := b.AddDFFNamed("capture_ff", ql, capture, false)
	b.Output("q", qc)
	nl := b.MustBuild()

	prof := &sim.Profile{Cycles: 1, SP: make([]float64, nl.NumNets)}
	for _, n := range launchNets {
		prof.SP[n] = 0.5 // running clock
	}
	for _, n := range captureNets {
		prof.SP[n] = 0.0 // gated off: idles low
	}
	prof.SP[ql] = 0.5
	prof.SP[qc] = 0.5
	prof.SP[clk] = 0.5

	fresh := Analyze(nl, Config{PeriodPs: 4000, Base: cell.Lib28()})
	if fresh.WNSHold < 0 {
		t.Fatalf("fresh WNS hold = %v, must meet timing", fresh.WNSHold)
	}
	lib := aging.NewLibrary(cell.Lib28(), aging.Default(), 10)
	aged := Analyze(nl, Config{PeriodPs: 4000, Aged: lib, Profile: prof})
	if aged.WNSHold >= 0 {
		t.Fatalf("aged WNS hold = %v, want negative (skewed capture clock)", aged.WNSHold)
	}
	if aged.NumHoldViolations != 1 || len(aged.Pairs) != 1 || aged.Pairs[0].Type != Hold {
		t.Fatalf("want exactly one hold pair, got %+v", aged.Pairs)
	}
}

func TestCalibrateHitsMargin(t *testing.T) {
	m := alu.Build()
	scale := Calibrate(m.Netlist, cell.Lib28(), m.PeriodPs, 0.04)
	res := Analyze(m.Netlist, Config{PeriodPs: m.PeriodPs, Scale: scale, Base: cell.Lib28()})
	wantWNS := 0.04 * m.PeriodPs
	if math.Abs(res.WNSSetup-wantWNS) > 1 {
		t.Errorf("calibrated WNS = %v, want %v", res.WNSSetup, wantWNS)
	}
	if res.NumSetupViolations != 0 || res.NumHoldViolations != 0 {
		t.Error("calibrated fresh design must meet timing")
	}
}

// profileModule drives the module with a synthetic workload (ops spaced
// by the given idle gap) and returns the SP profile.
func profileModule(m *module.Module, ops int, gap int, seed int64, opGen func(*rand.Rand) (uint32, uint32, uint32)) *sim.Profile {
	d := module.NewDriver(m)
	d.Sim.EnableSP()
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < ops; i++ {
		op, a, b := opGen(rng)
		d.Exec(op, a, b)
		d.Sim.SetInput(module.PortInValid, 0)
		d.Sim.Run(gap)
	}
	return d.Sim.Profile()
}

func TestALUAgedViolations(t *testing.T) {
	m := alu.Build()
	scale := Calibrate(m.Netlist, cell.Lib28(), m.PeriodPs, m.SynthMargin)
	prof := profileModule(m, 300, 2, 5, func(r *rand.Rand) (uint32, uint32, uint32) {
		return uint32(r.Intn(alu.NumOps)), r.Uint32(), r.Uint32()
	})
	lib := aging.NewLibrary(cell.Lib28(), aging.Default(), 10)
	res := Analyze(m.Netlist, Config{PeriodPs: m.PeriodPs, Scale: scale, Aged: lib, Profile: prof})
	t.Logf("ALU aged: WNS setup %.1fps (%d paths), WNS hold %.1fps (%d paths), %d pairs",
		res.WNSSetup, res.NumSetupViolations, res.WNSHold, res.NumHoldViolations, len(res.Pairs))
	if res.NumSetupViolations == 0 {
		t.Error("expected aged setup violations in the ALU")
	}
	if res.NumHoldViolations != 0 {
		t.Error("ALU should have no hold violations (shallow, active clock tree)")
	}
}

func TestFPUAgedViolations(t *testing.T) {
	m := fpu.Build()
	scale := Calibrate(m.Netlist, cell.Lib28(), m.PeriodPs, m.SynthMargin)
	// FPU is rarely used: long idle gaps, so its gated clock subtrees
	// idle low and age hard.
	prof := profileModule(m, 40, 40, 6, func(r *rand.Rand) (uint32, uint32, uint32) {
		return uint32(r.Intn(fpu.NumOps)), r.Uint32(), r.Uint32()
	})
	lib := aging.NewLibrary(cell.Lib28(), aging.Default(), 10)
	res := Analyze(m.Netlist, Config{PeriodPs: m.PeriodPs, Scale: scale, Aged: lib, Profile: prof})
	t.Logf("FPU aged: WNS setup %.1fps (%d paths), WNS hold %.1fps (%d paths), %d pairs",
		res.WNSSetup, res.NumSetupViolations, res.WNSHold, res.NumHoldViolations, len(res.Pairs))
	if res.NumSetupViolations == 0 {
		t.Error("expected aged setup violations in the FPU")
	}
	if res.NumHoldViolations == 0 {
		t.Error("expected aged hold violations in the FPU (skewed gated clock tree)")
	}
	holdPairs := 0
	for _, p := range res.Pairs {
		if p.Type == Hold {
			holdPairs++
		}
	}
	if holdPairs == 0 || holdPairs > 8 {
		t.Errorf("hold pairs = %d, want a small handful", holdPairs)
	}
}

func TestFactorHistogramBand(t *testing.T) {
	// Figure 8's premise: per-cell degradation spans ~1.9%..6.8%.
	m := alu.Build()
	prof := profileModule(m, 100, 2, 7, func(r *rand.Rand) (uint32, uint32, uint32) {
		return uint32(r.Intn(alu.NumOps)), r.Uint32(), r.Uint32()
	})
	lib := aging.NewLibrary(cell.Lib28(), aging.Default(), 10)
	res := Analyze(m.Netlist, Config{PeriodPs: m.PeriodPs, Aged: lib, Profile: prof})
	lo, hi := math.Inf(1), math.Inf(-1)
	for i, f := range res.Factor {
		k := m.Netlist.Cells[i].Kind
		if k == cell.TIE0 || k == cell.TIE1 || k.IsClock() {
			continue
		}
		lo = math.Min(lo, f)
		hi = math.Max(hi, f)
	}
	if lo < 1.015 || hi > 1.08 || hi <= lo {
		t.Errorf("degradation band [%v, %v] outside the expected range", lo, hi)
	}
}

func TestTruncationCap(t *testing.T) {
	m := alu.Build()
	scale := Calibrate(m.Netlist, cell.Lib28(), m.PeriodPs, m.SynthMargin)
	prof := profileModule(m, 50, 2, 8, func(r *rand.Rand) (uint32, uint32, uint32) {
		return uint32(r.Intn(alu.NumOps)), r.Uint32(), r.Uint32()
	})
	lib := aging.NewLibrary(cell.Lib28(), aging.Default(), 10)
	res := Analyze(m.Netlist, Config{PeriodPs: m.PeriodPs, Scale: scale, Aged: lib, Profile: prof, MaxPaths: 3})
	if res.NumSetupViolations > 3 && !res.Truncated {
		t.Error("exceeding MaxPaths must set Truncated")
	}
	if res.NumSetupViolations > 0 && res.NumSetupViolations <= 4 && res.Truncated {
		// Budget respected (allow one pair of off-by-one at the boundary).
		_ = res
	}
}

func TestWorstPathReport(t *testing.T) {
	nl := demo.Adder2()
	lib := aging.NewLibrary(cell.DemoLibrary(), aging.Default(), 10)
	cfg := Config{PeriodPs: 1000, Aged: lib, Profile: table1Profile(nl)}
	res := Analyze(nl, cfg)
	if len(res.Pairs) == 0 {
		t.Fatal("no violating pairs")
	}
	rep, err := WorstPath(nl, cfg, res.Pairs[0].End)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's worst path: DFF$4 -> XOR$7 -> XOR$8 -> (capture DFF$10).
	if rep.StartName != "DFF$4" || rep.EndName != "DFF$10" {
		t.Errorf("path %s -> %s, want DFF$4 -> DFF$10", rep.StartName, rep.EndName)
	}
	var names []string
	for _, s := range rep.Stages {
		names = append(names, s.Name)
	}
	want := []string{"DFF$4", "XOR$7", "XOR$8"}
	if len(names) != len(want) {
		t.Fatalf("stages = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("stages = %v, want %v", names, want)
		}
	}
	// Slack in the report matches the pair summary.
	if diff := rep.SlackPs - res.Pairs[0].WorstSlack; diff > 0.01 || diff < -0.01 {
		t.Errorf("report slack %.2f vs pair slack %.2f", rep.SlackPs, res.Pairs[0].WorstSlack)
	}
	// Arrival is the accumulation of stage delays plus launch clock.
	sum := rep.LaunchPs
	for _, s := range rep.Stages {
		sum += s.DelayPs
	}
	if diff := sum - rep.ArrivalPs; diff > 0.01 || diff < -0.01 {
		t.Errorf("stage delays sum to %.2f, arrival %.2f", sum, rep.ArrivalPs)
	}
	out := rep.String()
	for _, wantS := range []string{"DFF$4", "XOR$8", "slack"} {
		if !strings.Contains(out, wantS) {
			t.Errorf("report missing %q:\n%s", wantS, out)
		}
	}
}

func TestWorstPathErrors(t *testing.T) {
	nl := demo.Adder2()
	cfg := Config{PeriodPs: 1000, Base: cell.DemoLibrary()}
	// Non-DFF endpoint.
	if _, err := WorstPath(nl, cfg, demo.CellIDByName(nl, "XOR$7")); err == nil {
		t.Error("non-FF endpoint accepted")
	}
	// Input-register endpoint (D fed by a primary input): no timed path.
	if _, err := WorstPath(nl, cfg, demo.CellIDByName(nl, "DFF$1")); err == nil {
		t.Error("untimed endpoint accepted")
	}
}
