package sta

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/aging"
	"repro/internal/cell"
	"repro/internal/netlist"
)

// FuzzBatchedVsScalar lets the fuzzer pick a random timed netlist (via
// seed) and a corner grid + caps (via raw bytes), then holds the batched
// engine to bit-identical Results against the scalar differential
// baseline. Same contract as TestBatchedMatchesScalar, with the fuzzer
// steering the corpus.
func FuzzBatchedVsScalar(f *testing.F) {
	f.Add(int64(1), byte(1), byte(0), byte(0), uint16(300))
	f.Add(int64(7), byte(4), byte(7), byte(2), uint16(150))
	f.Add(int64(42), byte(2), byte(255), byte(1), uint16(900))
	f.Add(int64(99), byte(5), byte(31), byte(40), uint16(60))
	f.Fuzz(func(t *testing.T, seed int64, nCorners, cornerBits, caps byte, periodRaw uint16) {
		nl := randomTimedNetlist(seed % 4096)
		lib := cell.Lib28()
		rng := rand.New(rand.NewSource(seed ^ int64(cornerBits)))
		cfg := BatchConfig{
			PeriodPs: float64(periodRaw%1200) + 40,
			Base:     lib,
			Model:    aging.Default(),
			Profile:  randomNetSP(nl, seed+2),
		}
		if caps > 0 {
			cfg.MaxPaths = int(caps) % 16
			cfg.PerEndpoint = 1 + int(caps)%8
		}
		if cornerBits%2 == 1 {
			cfg.Parallelism = 8
		} else {
			cfg.Parallelism = 1
		}
		corners := make([]Corner, 1+int(nCorners)%6)
		for i := range corners {
			if cornerBits&(1<<(uint(i)%8)) != 0 {
				corners[i].Years = rng.Float64() * 15
			}
			if rng.Intn(3) == 0 {
				corners[i].TempK = 290 + rng.Float64()*120
			}
		}
		got := AnalyzeCorners(nl, cfg, corners)
		want := scalarBaseline(nl, cfg, corners)
		for k := range corners {
			if !reflect.DeepEqual(got[k], want[k]) {
				t.Fatalf("corner %d (%+v) diverges:\n  batched: %+v\n  scalar:  %+v",
					k, corners[k], got[k], want[k])
			}
		}
	})
}

// FuzzIncrementalSTA holds the incremental re-timing engine to
// byte-identical Results against from-scratch AnalyzeCorners across
// fuzzer-chosen netlists, corner sets, SP-delta sequences and corner
// moves — the cone worklist, the clock-network invalidation and the
// adjacent-corner SetCorners path all under one differential oracle.
func FuzzIncrementalSTA(f *testing.F) {
	f.Add(int64(1), byte(2), byte(3), byte(0))
	f.Add(int64(7), byte(1), byte(9), byte(1))
	f.Add(int64(42), byte(5), byte(1), byte(2))
	f.Add(int64(1234), byte(3), byte(30), byte(3))
	f.Fuzz(func(t *testing.T, seed int64, rounds, deltas, mode byte) {
		nl, cfg, corners := randomCase(seed % 4096)
		rng := rand.New(rand.NewSource(seed ^ int64(mode)))
		inc := NewIncremental(nl, cfg, corners)
		defer inc.Close()
		if got, want := inc.Results(), AnalyzeCorners(nl, cfg, corners); !reflect.DeepEqual(got, want) {
			t.Fatal("initial incremental Results diverge from AnalyzeCorners")
		}
		for round := 0; round < 1+int(rounds)%6; round++ {
			if mode%3 == 2 && round%2 == 1 {
				// Corner move: jitter every corner's lifetime, same set size.
				next := make([]Corner, len(corners))
				for i, c := range corners {
					next[i] = c
					next[i].Years = c.Years * (0.5 + rng.Float64())
				}
				corners = next
				got := inc.SetCorners(next)
				if want := AnalyzeCorners(nl, cfg, next); !reflect.DeepEqual(got, want) {
					t.Fatalf("round %d: SetCorners diverges from full analysis", round)
				}
				continue
			}
			n := 1 + int(deltas)%8
			changed := make([]netlist.NetID, 0, n)
			for i := 0; i < n; i++ {
				net := netlist.NetID(rng.Intn(nl.NumNets))
				cfg.Profile.SP[net] = rng.Float64()
				changed = append(changed, net)
			}
			got := inc.UpdateSP(changed)
			if want := AnalyzeCorners(nl, cfg, corners); !reflect.DeepEqual(got, want) {
				t.Fatalf("round %d: incremental diverges after %d SP deltas", round, n)
			}
		}
	})
}
