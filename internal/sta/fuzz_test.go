package sta

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/aging"
	"repro/internal/cell"
)

// FuzzBatchedVsScalar lets the fuzzer pick a random timed netlist (via
// seed) and a corner grid + caps (via raw bytes), then holds the batched
// engine to bit-identical Results against the scalar differential
// baseline. Same contract as TestBatchedMatchesScalar, with the fuzzer
// steering the corpus.
func FuzzBatchedVsScalar(f *testing.F) {
	f.Add(int64(1), byte(1), byte(0), byte(0), uint16(300))
	f.Add(int64(7), byte(4), byte(7), byte(2), uint16(150))
	f.Add(int64(42), byte(2), byte(255), byte(1), uint16(900))
	f.Add(int64(99), byte(5), byte(31), byte(40), uint16(60))
	f.Fuzz(func(t *testing.T, seed int64, nCorners, cornerBits, caps byte, periodRaw uint16) {
		nl := randomTimedNetlist(seed % 4096)
		lib := cell.Lib28()
		rng := rand.New(rand.NewSource(seed ^ int64(cornerBits)))
		cfg := BatchConfig{
			PeriodPs: float64(periodRaw%1200) + 40,
			Base:     lib,
			Model:    aging.Default(),
			Profile:  randomNetSP(nl, seed+2),
		}
		if caps > 0 {
			cfg.MaxPaths = int(caps) % 16
			cfg.PerEndpoint = 1 + int(caps)%8
		}
		if cornerBits%2 == 1 {
			cfg.Parallelism = 8
		} else {
			cfg.Parallelism = 1
		}
		corners := make([]Corner, 1+int(nCorners)%6)
		for i := range corners {
			if cornerBits&(1<<(uint(i)%8)) != 0 {
				corners[i].Years = rng.Float64() * 15
			}
			if rng.Intn(3) == 0 {
				corners[i].TempK = 290 + rng.Float64()*120
			}
		}
		got := AnalyzeCorners(nl, cfg, corners)
		want := scalarBaseline(nl, cfg, corners)
		for k := range corners {
			if !reflect.DeepEqual(got[k], want[k]) {
				t.Fatalf("corner %d (%+v) diverges:\n  batched: %+v\n  scalar:  %+v",
					k, corners[k], got[k], want[k])
			}
		}
	})
}
