package sta

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/aging"
	"repro/internal/cell"
	"repro/internal/netlist"
	"repro/internal/sim"
)

// randomTimedNetlist builds a random synchronous DAG with a random
// clock tree (buffer chains, optionally gated) so endpoints see skewed
// clock arrivals — the ingredient that produces hold violations and
// pairs violating both checks. Cells only read already-driven nets, so
// the result always validates.
func randomTimedNetlist(seed int64) *netlist.Netlist {
	rng := rand.New(rand.NewSource(seed))
	b := netlist.NewBuilder(fmt.Sprintf("t%d", seed))
	clk := b.Clock("clk")
	en := b.Input("en")
	nIn := 2 + rng.Intn(4)
	in := b.InputBus("x", nIn)
	pool := append(netlist.Bus{}, in...)

	// Clock branches of varying depth; DFFs pick a random leaf.
	leaves := netlist.Bus{clk}
	for i, branches := 0, 1+rng.Intn(3); i < branches; i++ {
		n := clk
		if rng.Intn(2) == 0 {
			n = b.Add(cell.CLKGATE, n, en)
		}
		for j, depth := 0, rng.Intn(4); j < depth; j++ {
			n = b.Add(cell.CLKBUF, n)
		}
		leaves = append(leaves, n)
	}
	pickClk := func() netlist.NetID { return leaves[rng.Intn(len(leaves))] }

	kinds := []cell.Kind{
		cell.BUF, cell.INV, cell.AND2, cell.OR2, cell.NAND2,
		cell.NOR2, cell.XOR2, cell.XNOR2, cell.MUX2, cell.AOI21, cell.OAI21,
	}
	pool = append(pool, b.AddDFF(pool[rng.Intn(len(pool))], pickClk(), rng.Intn(2) == 0))
	pool = append(pool, b.AddDFF(pool[rng.Intn(len(pool))], pickClk(), rng.Intn(2) == 0))
	nCells := 10 + rng.Intn(40)
	for i := 0; i < nCells; i++ {
		if rng.Intn(4) == 0 {
			pool = append(pool, b.AddDFF(pool[rng.Intn(len(pool))], pickClk(), rng.Intn(2) == 0))
			continue
		}
		k := kinds[rng.Intn(len(kinds))]
		ins := make([]netlist.NetID, k.NumInputs())
		for j := range ins {
			ins[j] = pool[rng.Intn(len(pool))]
		}
		pool = append(pool, b.Add(k, ins...))
	}
	for i := 0; i < 3 && i < len(pool); i++ {
		b.Output(fmt.Sprintf("y%d", i), pool[len(pool)-1-i])
	}
	return b.MustBuild()
}

// randomNetSP gives every net an independent random signal probability.
func randomNetSP(nl *netlist.Netlist, seed int64) *sim.Profile {
	rng := rand.New(rand.NewSource(seed))
	p := &sim.Profile{Cycles: 1, SP: make([]float64, nl.NumNets)}
	for i := range p.SP {
		p.SP[i] = rng.Float64()
	}
	return p
}

// scalarBaseline runs the differential baseline: one scalar Analyze per
// corner, building each corner's aged library independently, exactly as
// the pre-batched LifetimeSweep/TemperatureSweep did.
func scalarBaseline(nl *netlist.Netlist, cfg BatchConfig, corners []Corner) []*Result {
	out := make([]*Result, len(corners))
	for i, c := range corners {
		sc := Config{
			PeriodPs:    cfg.PeriodPs,
			Scale:       cfg.Scale,
			MaxPaths:    cfg.MaxPaths,
			PerEndpoint: cfg.PerEndpoint,
		}
		if c.Years > 0 {
			model := cfg.Model
			if c.TempK != 0 && c.TempK != model.TempK {
				clone := *model
				clone.TempK = c.TempK
				model = &clone
			}
			sc.Aged = aging.NewLibrary(cfg.Base, model, c.Years)
			sc.Profile = cfg.Profile
		} else {
			sc.Base = cfg.Base
		}
		out[i] = Analyze(nl, sc)
	}
	return out
}

// randomCase derives a whole (netlist, profile, config, corners) case
// from one seed. The period is anchored to the fresh critical delay so
// a healthy share of cases has violations, and caps are sometimes tiny
// so truncation accounting is exercised hard.
func randomCase(seed int64) (*netlist.Netlist, BatchConfig, []Corner) {
	rng := rand.New(rand.NewSource(seed ^ 0x5eed))
	nl := randomTimedNetlist(seed)
	lib := cell.Lib28()
	crit := CriticalDelay(nl, lib)
	cfg := BatchConfig{
		PeriodPs: crit * (0.55 + 0.6*rng.Float64()),
		Base:     lib,
		Model:    aging.Default(),
		Profile:  randomNetSP(nl, seed+1),
	}
	if rng.Intn(3) == 0 {
		cfg.Scale = 0.5 + rng.Float64()
	}
	switch rng.Intn(3) {
	case 0:
		cfg.MaxPaths = 1 + rng.Intn(6)
		cfg.PerEndpoint = 1 + rng.Intn(4)
	case 1:
		cfg.PerEndpoint = 1 + rng.Intn(30)
	}
	if rng.Intn(2) == 0 {
		cfg.Parallelism = 8
	} else {
		cfg.Parallelism = 1
	}
	corners := make([]Corner, 1+rng.Intn(5))
	for i := range corners {
		var c Corner
		if rng.Intn(4) > 0 {
			c.Years = rng.Float64() * 12
		}
		if rng.Intn(3) == 0 {
			c.TempK = 300 + rng.Float64()*110
		}
		corners[i] = c
	}
	return nl, cfg, corners
}

// TestBatchedMatchesScalar is the testing/quick property at the heart of
// the batched engine's contract: over randomized netlists, SP profiles,
// corner sets, scales, caps and parallelism, every per-corner Result —
// WNS, violation counts, truncation, the full sorted Pairs slice, delay
// factors, clock arrivals and the embedded Config — must deep-equal the
// scalar baseline's. DeepEqual compares float64s with ==, so this is
// bit-identity, not tolerance.
func TestBatchedMatchesScalar(t *testing.T) {
	prop := func(seed int64) bool {
		nl, cfg, corners := randomCase(seed)
		got := AnalyzeCorners(nl, cfg, corners)
		want := scalarBaseline(nl, cfg, corners)
		for k := range corners {
			if !reflect.DeepEqual(got[k], want[k]) {
				t.Logf("seed %d corner %d (%+v):\n  batched: %+v\n  scalar:  %+v",
					seed, k, corners[k], got[k], want[k])
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestBatchedDeterminism pins the -j contract of the parallel
// enumerator: Parallelism 1 and 8 must produce byte-identical results —
// the merge applies the global budget in endpoint order, never in pool
// completion order.
func TestBatchedDeterminism(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		nl, cfg, corners := randomCase(seed)
		cfg.Parallelism = 1
		r1 := AnalyzeCorners(nl, cfg, corners)
		cfg.Parallelism = 8
		r8 := AnalyzeCorners(nl, cfg, corners)
		if !reflect.DeepEqual(r1, r8) {
			t.Fatalf("seed %d: results differ between Parallelism 1 and 8", seed)
		}
	}
}

// TestPrecomputedLibsMatch is the contract behind BatchConfig.Libs (the
// fleet daemon's corner-grid reuse seam): AnalyzeCorners with libraries
// precomputed via CornerLibraries must be bit-identical to the same
// analysis deriving its own grid — DeepEqual over the full Results, same
// standard as the scalar differential.
func TestPrecomputedLibsMatch(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		nl, cfg, corners := randomCase(seed)
		want := AnalyzeCorners(nl, cfg, corners)
		cfg.Libs = CornerLibraries(nl.Name, cfg, corners)
		got := AnalyzeCorners(nl, cfg, corners)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("seed %d: precomputed-Libs results differ from self-derived grid", seed)
		}
	}
}

// TestLibsLengthMismatchPanics pins the misuse guard: handing K libs to
// an analysis over a different corner count must panic rather than
// silently mis-age corners.
func TestLibsLengthMismatchPanics(t *testing.T) {
	nl, cfg, corners := randomCase(3)
	if len(corners) < 2 {
		corners = append(corners, Corner{Years: 5})
	}
	cfg.Libs = CornerLibraries(nl.Name, cfg, corners)[:1]
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched BatchConfig.Libs length did not panic")
		}
	}()
	AnalyzeCorners(nl, cfg, corners[:2])
}

// TestPairViolatingBothChecks is the regression for the pair-keying fix:
// a launch/capture pair whose data path violates setup through its slow
// branch and hold through its fast branch must yield two PairSummary
// entries — one per check — not one entry with a first-seen Type and a
// WorstSlack mixing the two checks.
//
// Lib28 arithmetic: capture's clock runs through one CLKBUF (28ps late).
// Fast branch Q->OR2 arrives at min 40+14 = 54ps, violating hold
// (required 28+30 = 58) by -4ps; slow branch Q->10xBUF->OR2 arrives at
// max 62+220+27 = 309ps, violating setup (required 200+28-46 = 182) by
// -127ps.
func TestPairViolatingBothChecks(t *testing.T) {
	b := netlist.NewBuilder("both")
	clk := b.Clock("clk")
	d0 := b.Input("d0")
	q := b.AddDFFNamed("launch", d0, clk, false)
	cclk := b.Add(cell.CLKBUF, clk)
	n := q
	for i := 0; i < 10; i++ {
		n = b.Add(cell.BUF, n)
	}
	or := b.Add(cell.OR2, q, n)
	capQ := b.AddDFFNamed("capture", or, cclk, false)
	b.Output("y", capQ)
	nl := b.MustBuild()

	res := Analyze(nl, Config{PeriodPs: 200, Base: cell.Lib28()})
	if math.Abs(res.WNSSetup+127) > 1e-9 || math.Abs(res.WNSHold+4) > 1e-9 {
		t.Fatalf("WNS setup %v hold %v, want -127 and -4", res.WNSSetup, res.WNSHold)
	}
	if res.NumSetupViolations != 1 || res.NumHoldViolations != 1 {
		t.Fatalf("violations setup %d hold %d, want 1 and 1", res.NumSetupViolations, res.NumHoldViolations)
	}
	if len(res.Pairs) != 2 {
		t.Fatalf("got %d pair summaries, want 2 (setup and hold kept apart): %+v", len(res.Pairs), res.Pairs)
	}
	for i, want := range []struct {
		typ   PathType
		slack float64
	}{{Setup, -127}, {Hold, -4}} {
		p := res.Pairs[i]
		if nl.Cells[p.Start].Name != "launch" || nl.Cells[p.End].Name != "capture" {
			t.Errorf("pair %d: %s -> %s, want launch -> capture", i, nl.Cells[p.Start].Name, nl.Cells[p.End].Name)
		}
		if p.Type != want.typ || p.Paths != 1 || math.Abs(p.WorstSlack-want.slack) > 1e-9 {
			t.Errorf("pair %d: %+v, want type %v, 1 path, slack %v", i, p, want.typ, want.slack)
		}
	}

	// And the batched engine agrees bit for bit.
	batched := AnalyzeCorners(nl, BatchConfig{PeriodPs: 200, Base: cell.Lib28()}, []Corner{{}})
	if !reflect.DeepEqual(batched[0].Pairs, res.Pairs) {
		t.Errorf("batched pairs differ: %+v vs %+v", batched[0].Pairs, res.Pairs)
	}
}

// TestGraphCache pins the compile-once contract: the same netlist
// pointer yields the same graph, and the cache stays bounded.
func TestGraphCache(t *testing.T) {
	nl := randomTimedNetlist(1)
	if CachedGraph(nl) != CachedGraph(nl) {
		t.Error("CachedGraph recompiled for the same netlist")
	}
	for i := 0; i < graphCacheCap+10; i++ {
		CachedGraph(randomTimedNetlist(int64(1000 + i)))
	}
	if n := GraphCacheSize(); n > graphCacheCap {
		t.Errorf("graph cache grew to %d entries (cap %d)", n, graphCacheCap)
	}
}
