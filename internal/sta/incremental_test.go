package sta

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/aging"
	"repro/internal/cell"
	"repro/internal/netlist"
)

// perturbSP mutates nDeltas random nets' signal probabilities in place
// and returns the changed net IDs (with deliberate duplicates left in:
// UpdateSP must tolerate a net reported twice).
func perturbSP(nl *netlist.Netlist, cfg BatchConfig, rng *rand.Rand, nDeltas int) []netlist.NetID {
	changed := make([]netlist.NetID, 0, nDeltas)
	for i := 0; i < nDeltas; i++ {
		n := netlist.NetID(rng.Intn(nl.NumNets))
		cfg.Profile.SP[n] = rng.Float64()
		changed = append(changed, n)
	}
	return changed
}

// TestIncrementalMatchesFull is the incremental engine's differential
// contract: after any sequence of sparse SP updates, Results must
// deep-equal a from-scratch AnalyzeCorners over the same mutated
// profile. DeepEqual compares float64s with ==, so this is bit-identity.
func TestIncrementalMatchesFull(t *testing.T) {
	prop := func(seed int64) bool {
		nl, cfg, corners := randomCase(seed)
		rng := rand.New(rand.NewSource(seed ^ 0x1ec))
		inc := NewIncremental(nl, cfg, corners)
		defer inc.Close()

		if got, want := inc.Results(), AnalyzeCorners(nl, cfg, corners); !reflect.DeepEqual(got, want) {
			t.Logf("seed %d: initial Results diverge from AnalyzeCorners", seed)
			return false
		}
		for round := 0; round < 4; round++ {
			changed := perturbSP(nl, cfg, rng, 1+rng.Intn(5))
			got := inc.UpdateSP(changed)
			want := AnalyzeCorners(nl, cfg, corners)
			if !reflect.DeepEqual(got, want) {
				t.Logf("seed %d round %d: incremental diverges after %d SP deltas", seed, round, len(changed))
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestIncrementalClockCone forces the expensive invalidation path:
// changing the SP of clock-cell outputs ages the clock network
// differently, which shifts every endpoint's launch and required times.
func TestIncrementalClockCone(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		nl, cfg, corners := randomCase(seed)
		inc := NewIncremental(nl, cfg, corners)
		var clkNets []netlist.NetID
		for _, c := range nl.Cells {
			if c.Kind.IsClock() {
				clkNets = append(clkNets, c.Out)
			}
		}
		if len(clkNets) == 0 {
			inc.Close()
			continue
		}
		rng := rand.New(rand.NewSource(seed))
		for _, n := range clkNets {
			cfg.Profile.SP[n] = rng.Float64()
		}
		got := inc.UpdateSP(clkNets)
		want := AnalyzeCorners(nl, cfg, corners)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("seed %d: clock-cone update diverges from full analysis", seed)
		}
		inc.Close()
	}
}

// TestIncrementalSetCorners checks the adjacent-corner path the onset
// bisection rides: moving a live Incremental across corner sets must
// reproduce a from-scratch analysis of each set.
func TestIncrementalSetCorners(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		nl := randomTimedNetlist(seed)
		lib := cell.Lib28()
		cfg := BatchConfig{
			PeriodPs: CriticalDelay(nl, lib) * 0.9,
			Base:     lib,
			Model:    aging.Default(),
			Profile:  randomNetSP(nl, seed+1),
		}
		corners := []Corner{{Years: 5}, {}}
		inc := NewIncremental(nl, cfg, corners)
		for _, next := range [][]Corner{
			{{Years: 5.5}, {}},                     // adjacent aged corner
			{{Years: 5.5}, {Years: 1}},             // fresh lane ages
			{{}, {}},                               // everything fresh
			{{Years: 10, TempK: 350}, {Years: 10}}, // temperature override
		} {
			got := inc.SetCorners(next)
			want := AnalyzeCorners(nl, cfg, next)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("seed %d: SetCorners(%+v) diverges from full analysis", seed, next)
			}
		}
		inc.Close()
	}
}

// TestIncrementalResultsAreStable pins the escape contract: a Result
// returned before an update must not be mutated by the update (factor
// columns are copies, clock maps are rebuilt on clock changes).
func TestIncrementalResultsAreStable(t *testing.T) {
	nl, cfg, corners := randomCase(3)
	inc := NewIncremental(nl, cfg, corners)
	defer inc.Close()
	before := inc.Results()
	snapshot := make([]float64, len(before[0].Factor))
	copy(snapshot, before[0].Factor)

	rng := rand.New(rand.NewSource(9))
	for round := 0; round < 3; round++ {
		inc.UpdateSP(perturbSP(nl, cfg, rng, 8))
	}
	if !reflect.DeepEqual(before[0].Factor, snapshot) {
		t.Error("an update mutated a previously returned Result's Factor column")
	}
}

// TestIncrementalConeIsSparse is the point of the whole path: a single
// SP delta on a large design must re-time a small fraction of the
// combinational ops, not the whole netlist.
func TestIncrementalConeIsSparse(t *testing.T) {
	nl := randomTimedNetlist(7)
	lib := cell.Lib28()
	cfg := BatchConfig{
		PeriodPs: CriticalDelay(nl, lib) * 2, // relaxed: no violations, pure retiming cost
		Base:     lib,
		Model:    aging.Default(),
		Profile:  randomNetSP(nl, 8),
	}
	corners := []Corner{{Years: 10}}
	inc := NewIncremental(nl, cfg, corners)
	defer inc.Close()
	total := len(CachedGraph(nl).combOps)
	if inc.LastRetimed != total {
		t.Fatalf("initial pass retimed %d of %d ops", inc.LastRetimed, total)
	}
	// An update with no SP change retimes nothing.
	inc.UpdateSP(nil)
	if inc.LastRetimed != 0 {
		t.Errorf("empty update retimed %d ops", inc.LastRetimed)
	}
	// A no-op "change" (same value written back) retimes nothing either:
	// the delay lanes are bitwise unchanged.
	inc.UpdateSP([]netlist.NetID{0})
	if inc.LastRetimed != 0 {
		t.Errorf("bitwise-identical SP write retimed %d ops", inc.LastRetimed)
	}
}
