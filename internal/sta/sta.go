// Package sta implements aging-aware static timing analysis over
// netlists: block-based arrival-time propagation, setup and hold checks
// against per-flip-flop clock arrival (including aged clock-tree skew),
// worst-negative-slack reporting, and exhaustive enumeration of
// violating paths with unique start/end pair filtering — the paper's
// Aging Analysis phase (§3.2.2) and the producer of its Table 3.
//
// Conservatism matches industrial signoff: launch clock and data use
// late (maximum, aged) delays against an early capture clock for setup,
// and early delays against a late capture clock for hold, with no common
// path pessimism removal.
package sta

import (
	"math"
	"sort"

	"repro/internal/aging"
	"repro/internal/cell"
	"repro/internal/netlist"
	"repro/internal/sim"
)

// Config parameterizes one STA run.
type Config struct {
	// PeriodPs is the clock period constraint.
	PeriodPs float64
	// Scale multiplies every timing quantity (delays and constraint
	// windows) — the synthesis-margin calibration knob. Zero means 1.
	Scale float64
	// Aged is the aging-aware timing library. If nil, the analysis runs
	// fresh (nominal delays) using Base.
	Aged *aging.Library
	// Base is the nominal library, required when Aged is nil.
	Base *cell.Library
	// Profile supplies per-net signal probabilities for the aged lookup.
	// Required when Aged is non-nil.
	Profile *sim.Profile
	// MaxPaths caps violating-path enumeration (0 means 200000).
	MaxPaths int
	// PerEndpoint caps the paths enumerated into any single endpoint,
	// like the nworst limit of a signoff tool's timing report (0 means
	// 400).
	PerEndpoint int
}

// PathType distinguishes the two timing checks.
type PathType int

// Setup and hold checks (§2.3.2).
const (
	Setup PathType = iota
	Hold
)

func (t PathType) String() string {
	if t == Hold {
		return "hold"
	}
	return "setup"
}

// Pair identifies a signal path by its launching and capturing flip-flops
// — the unit the paper deduplicates on before error lifting (§5.2.1).
type Pair struct {
	Start, End netlist.CellID
}

// PairSummary aggregates all violating paths sharing a start/end pair
// and check type.
type PairSummary struct {
	Pair
	Type       PathType
	Paths      int
	WorstSlack float64
}

// pairKey keys pair summaries. The type is part of the key: a pair can
// violate both setup and hold (skewed capture clock plus a wide min/max
// delay spread), and folding those into one summary would mix setup and
// hold slacks in WorstSlack and report a first-seen Type.
type pairKey struct {
	Pair
	Type PathType
}

// Result is the outcome of one STA run.
type Result struct {
	Config Config

	// WNSSetup/WNSHold are worst slacks in ps (positive = met). They are
	// +Inf when no path of that kind exists.
	WNSSetup float64
	WNSHold  float64

	// NumSetupViolations/NumHoldViolations count violating paths
	// (possibly truncated at MaxPaths; Truncated reports that).
	NumSetupViolations int
	NumHoldViolations  int
	Truncated          bool

	// Pairs holds per start/end pair aggregates for violating paths,
	// worst first.
	Pairs []PairSummary

	// Factor is the aging delay factor applied to each cell (1.0 when
	// fresh) — the data behind the paper's Figure 8.
	Factor []float64

	// ClockArrival gives each DFF's (late) clock arrival in ps, for skew
	// reports.
	ClockArrival map[netlist.CellID]float64
}

const inf = math.MaxFloat64

// Analyze runs the timing analysis.
func Analyze(nl *netlist.Netlist, cfg Config) *Result {
	a := newAnalysis(nl, cfg)
	a.computeCellTiming()
	a.computeClockArrivals()
	a.propagateArrivals()
	return a.check()
}

type analysis struct {
	nl  *netlist.Netlist
	cfg Config

	scale  float64
	dmin   []float64 // per cell, aged+scaled
	dmax   []float64
	factor []float64
	setup  float64 // scaled DFF setup window
	hold   float64

	clkLate  []float64 // per cell (DFF): late clock arrival at CLK pin
	clkEarly []float64

	// Per-net data arrival times; -inf/+inf mean "no timed path".
	arrMax []float64
	arrMin []float64
}

func newAnalysis(nl *netlist.Netlist, cfg Config) *analysis {
	a := &analysis{nl: nl, cfg: cfg, scale: cfg.Scale}
	if a.scale == 0 {
		a.scale = 1
	}
	if a.cfg.MaxPaths == 0 {
		a.cfg.MaxPaths = 200000
	}
	if a.cfg.PerEndpoint == 0 {
		a.cfg.PerEndpoint = 400
	}
	return a
}

func (a *analysis) baseLib() *cell.Library {
	if a.cfg.Aged != nil {
		return a.cfg.Aged.Base
	}
	return a.cfg.Base
}

func (a *analysis) computeCellTiming() {
	nl := a.nl
	base := a.baseLib()
	a.dmin = make([]float64, len(nl.Cells))
	a.dmax = make([]float64, len(nl.Cells))
	a.factor = make([]float64, len(nl.Cells))
	for i, c := range nl.Cells {
		t := base.Timing[c.Kind]
		f := 1.0
		if a.cfg.Aged != nil {
			sp := a.cfg.Profile.SP[c.Out]
			f = a.cfg.Aged.Factor(c.Kind, sp)
		}
		a.factor[i] = f
		a.dmin[i] = t.DelayMin * f * a.scale
		a.dmax[i] = t.DelayMax * f * a.scale
	}
	dff := base.Timing[cell.DFF]
	a.setup = dff.Setup * a.scale
	a.hold = dff.Hold * a.scale
}

// computeClockArrivals walks each DFF's clock pin up the clock network to
// the root, accumulating aged buffer delays. This is the clock
// phase-shift analysis of §3.2.2: asymmetric aging of gated subtrees
// shows up here as skew between flip-flops.
//
// Clock arrivals use a single corner (the aged maximum delay) for both
// launch and capture: branches of the same tree on the same die track
// each other, and signoff removes common-path pessimism. Skew between two
// flip-flops therefore comes only from genuinely different branch delays
// — nominal imbalance plus asymmetric aging — not from min/max corner
// spread.
func (a *analysis) computeClockArrivals() {
	nl := a.nl
	a.clkLate = make([]float64, len(nl.Cells))
	a.clkEarly = make([]float64, len(nl.Cells))
	// Clock cells appear in Topo() after the cells driving their inputs,
	// so one forward pass over a slice memo computes every clock net's
	// arrival — no recursion on deep clock chains, no map allocation.
	// Nets not driven by clock cells keep arrival 0, like the recursive
	// walk's default.
	arr := make([]float64, nl.NumNets)
	for _, cid := range nl.Topo() {
		c := &nl.Cells[cid]
		if c.Kind.IsClock() {
			arr[c.Out] = arr[c.In[0]] + a.dmax[cid]
		}
	}
	for i, c := range nl.Cells {
		if c.Kind == cell.DFF {
			v := arr[c.Clk]
			a.clkLate[i], a.clkEarly[i] = v, v
		}
	}
}

// propagateArrivals runs the forward block-based pass. Sources are DFF
// outputs (launch clock + clk-to-q); primary inputs, tie cells and the
// clock network carry no data arrival (I/O paths are unconstrained, as
// the paper's module-level analysis assumes registered boundaries).
func (a *analysis) propagateArrivals() {
	nl := a.nl
	a.arrMax = make([]float64, nl.NumNets)
	a.arrMin = make([]float64, nl.NumNets)
	for n := range a.arrMax {
		a.arrMax[n] = -inf
		a.arrMin[n] = inf
	}
	for i, c := range nl.Cells {
		if c.Kind == cell.DFF {
			a.arrMax[c.Out] = a.clkLate[i] + a.dmax[i]
			a.arrMin[c.Out] = a.clkEarly[i] + a.dmin[i]
		}
	}
	for _, cid := range nl.Topo() {
		c := &nl.Cells[cid]
		if c.Kind.IsClock() || c.Kind == cell.TIE0 || c.Kind == cell.TIE1 {
			continue
		}
		hi, lo := -inf, inf
		for _, in := range c.In {
			if a.arrMax[in] > hi {
				hi = a.arrMax[in]
			}
			if a.arrMin[in] < lo {
				lo = a.arrMin[in]
			}
		}
		if hi > -inf {
			a.arrMax[c.Out] = hi + a.dmax[cid]
		}
		if lo < inf {
			a.arrMin[c.Out] = lo + a.dmin[cid]
		}
	}
}

// check computes slacks at every DFF D pin, then enumerates violating
// paths.
func (a *analysis) check() *Result {
	nl := a.nl
	res := &Result{
		Config:       a.cfg,
		WNSSetup:     inf,
		WNSHold:      inf,
		Factor:       a.factor,
		ClockArrival: make(map[netlist.CellID]float64),
	}
	pairs := map[pairKey]*PairSummary{}
	budget := a.cfg.MaxPaths

	for i, c := range nl.Cells {
		if c.Kind != cell.DFF {
			continue
		}
		cid := netlist.CellID(i)
		res.ClockArrival[cid] = a.clkLate[i]
		d := c.In[0]

		// Setup: data (late) must beat the next capture edge (early).
		if a.arrMax[d] > -inf {
			required := a.cfg.PeriodPs + a.clkEarly[i] - a.setup
			slack := required - a.arrMax[d]
			if slack < res.WNSSetup {
				res.WNSSetup = slack
			}
			if slack < 0 {
				n, trunc := a.enumerate(cid, d, required, Setup, pairs, min(budget, a.cfg.PerEndpoint))
				res.NumSetupViolations += n
				budget -= n
				res.Truncated = res.Truncated || trunc
			}
		}

		// Hold: data (early) from the same edge must not race past the
		// capture edge (late) plus the hold window.
		if a.arrMin[d] < inf {
			required := a.clkLate[i] + a.hold
			slack := a.arrMin[d] - required
			if slack < res.WNSHold {
				res.WNSHold = slack
			}
			if slack < 0 {
				n, trunc := a.enumerate(cid, d, required, Hold, pairs, min(budget, a.cfg.PerEndpoint))
				res.NumHoldViolations += n
				budget -= n
				res.Truncated = res.Truncated || trunc
			}
		}
	}

	for _, p := range pairs {
		res.Pairs = append(res.Pairs, *p)
	}
	sortPairs(res.Pairs)
	return res
}

// sortPairs orders pair summaries worst-first with a total tiebreak
// (slack, start, end, type) so report order never depends on map
// iteration. Shared by the scalar and batched engines — identical order
// is part of their bit-identity contract.
func sortPairs(ps []PairSummary) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].WorstSlack != ps[j].WorstSlack {
			return ps[i].WorstSlack < ps[j].WorstSlack
		}
		if ps[i].Start != ps[j].Start {
			return ps[i].Start < ps[j].Start
		}
		if ps[i].End != ps[j].End {
			return ps[i].End < ps[j].End
		}
		return ps[i].Type < ps[j].Type
	})
}

// enumerate counts every violating path into endpoint end (bounded DFS
// with arrival-time pruning) and folds them into the per-pair summaries.
// It returns the number found and whether the budget truncated the walk.
func (a *analysis) enumerate(end netlist.CellID, dNet netlist.NetID, required float64,
	t PathType, pairs map[pairKey]*PairSummary, budget int) (int, bool) {

	nl := a.nl
	found := 0
	truncated := false

	var dfs func(n netlist.NetID, suffix float64)
	dfs = func(n netlist.NetID, suffix float64) {
		if found >= budget {
			truncated = true
			return
		}
		if t == Setup {
			if a.arrMax[n] == -inf || a.arrMax[n]+suffix <= required {
				return // every completion meets timing
			}
		} else {
			if a.arrMin[n] == inf || a.arrMin[n]+suffix >= required {
				return
			}
		}
		d := nl.Driver(n)
		if d == netlist.NoCell {
			return
		}
		c := &nl.Cells[d]
		switch {
		case c.Kind == cell.DFF:
			var total, slack float64
			if t == Setup {
				total = a.clkLate[d] + a.dmax[d] + suffix
				slack = required - total
			} else {
				total = a.clkEarly[d] + a.dmin[d] + suffix
				slack = total - required
			}
			if slack >= 0 {
				return
			}
			found++
			key := pairKey{Pair: Pair{Start: d, End: end}, Type: t}
			s, ok := pairs[key]
			if !ok {
				s = &PairSummary{Pair: key.Pair, Type: t, WorstSlack: slack}
				pairs[key] = s
			}
			s.Paths++
			if slack < s.WorstSlack {
				s.WorstSlack = slack
			}
		case c.Kind.IsClock(), c.Kind == cell.TIE0, c.Kind == cell.TIE1:
			return
		default:
			var step float64
			if t == Setup {
				step = a.dmax[d]
			} else {
				step = a.dmin[d]
			}
			for _, in := range c.In {
				dfs(in, suffix+step)
			}
		}
	}
	dfs(dNet, 0)
	return found, truncated
}

// CriticalDelay returns the largest "effective" endpoint delay of a fresh
// (unaged, unscaled) analysis: launch clock + clk-to-q + combinational
// delay − capture clock + setup, i.e. the minimum period at which the
// design just meets setup timing. It is used to calibrate the synthesis
// margin (see Calibrate).
func CriticalDelay(nl *netlist.Netlist, base *cell.Library) float64 {
	// Runs on the compiled graph: Calibrate is called at workflow
	// construction for the same netlists the batched engine analyzes, so
	// the compile is shared. Fresh and unscaled means the max-delay
	// vector is just the library's (x·1·1 is bitwise x, so this matches
	// the scalar computeCellTiming path exactly).
	g := CachedGraph(nl)
	dmax := make([]float64, g.numCells)
	for i := 0; i < g.numCells; i++ {
		dmax[i] = base.Timing[g.kind[i]].DelayMax
	}
	clk := make([]float64, g.numNets)
	for i := range g.clockOps {
		op := &g.clockOps[i]
		clk[op.out] = clk[op.in] + dmax[op.cellID]
	}
	arrMax := make([]float64, g.numNets)
	for n := range arrMax {
		arrMax[n] = -inf
	}
	for i := range g.endpoints {
		e := &g.endpoints[i]
		arrMax[e.q] = clk[e.clk] + dmax[e.cellID]
	}
	for i := range g.combOps {
		op := &g.combOps[i]
		hi := -inf
		lo, hiIdx := g.cellInLo[op.cellID], g.cellInLo[op.cellID+1]
		for j := lo; j < hiIdx; j++ {
			if a := arrMax[g.cellIn[j]]; a > hi {
				hi = a
			}
		}
		if hi > -inf {
			arrMax[op.out] = hi + dmax[op.cellID]
		}
	}
	setup := base.Timing[cell.DFF].Setup
	worst := 0.0
	for i := range g.endpoints {
		e := &g.endpoints[i]
		if arrMax[e.d] == -inf {
			continue
		}
		eff := arrMax[e.d] - clk[e.clk] + setup
		if eff > worst {
			worst = eff
		}
	}
	return worst
}

// Calibrate computes the global delay scale that makes the fresh design
// meet its period with exactly the given relative margin (fresh WNS =
// margin × period). This models the synthesis/P&R flow, which optimizes
// a design until it just meets its frequency target — the reason a
// freshly-deployed circuit passes signoff but sits close enough to the
// edge for aging to push paths over (§5.2.1).
func Calibrate(nl *netlist.Netlist, base *cell.Library, periodPs, margin float64) float64 {
	crit := CriticalDelay(nl, base)
	if crit <= 0 {
		return 1
	}
	return periodPs * (1 - margin) / crit
}
