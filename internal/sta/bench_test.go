package sta

import (
	"math/rand"
	"testing"

	"repro/internal/aging"
	"repro/internal/alu"
	"repro/internal/cell"
	"repro/internal/fpu"
	"repro/internal/module"
)

// BenchmarkLifetimeSweep is the acceptance benchmark of the batched
// multi-corner engine: a 32-corner onset-bisection sweep on the real ALU
// and FPU netlists, batched (one AnalyzeCorners call: one corner grid,
// one SoA propagation, one enumeration fan-out) versus the per-corner
// scratch baseline (one aging.NewLibrary + scalar Analyze per corner —
// exactly what the pre-batched LifetimeSweep ran per sweep point).
//
// The corner windows model the engine's advertised use case (fine
// `-sweep-step` grids that bracket each unit's violation onset, the
// expensive inner loop of an onset bisection) rather than a full-life
// 0..10y grid: a coarse sweep has already located the bracket, and the
// fine sweep resolves the onset inside it. Measured onsets: the ALU's
// first setup violation appears near 0.31y (WNS +0.9ps at 0.3y, −6.2ps
// at 0.4y), so its window is [0, 0.5]y; the FPU ages into violation
// almost immediately (fresh WNS +48ps, +2.2ps at 0.002y, −1.0ps at
// 0.003y), so its window is the tight bracket [0, 0.003]y. Both use
// the workflow's signoff report bound of
// 40 paths per endpoint; the two paths produce bit-identical Results
// (TestBatchedMatchesScalar, TestBatchedDeterminism).
func BenchmarkLifetimeSweep(b *testing.B) {
	const nCorners = 32
	units := []struct {
		m        *module.Module
		maxYears float64
		ops, gap int
		seed     int64
		numOps   int
	}{
		{alu.Build(), 0.5, 300, 2, 5, alu.NumOps},
		{fpu.Build(), 0.003, 40, 40, 6, fpu.NumOps},
	}
	lib := cell.Lib28()
	model := aging.Default()
	for _, u := range units {
		corners := make([]Corner, nCorners)
		for i := range corners {
			corners[i] = Corner{Years: u.maxYears * float64(i) / float64(nCorners-1)}
		}
		scale := Calibrate(u.m.Netlist, lib, u.m.PeriodPs, u.m.SynthMargin)
		numOps := u.numOps
		prof := profileModule(u.m, u.ops, u.gap, u.seed, func(r *rand.Rand) (uint32, uint32, uint32) {
			return uint32(r.Intn(numOps)), r.Uint32(), r.Uint32()
		})
		cfg := BatchConfig{
			PeriodPs:    u.m.PeriodPs,
			Scale:       scale,
			Base:        lib,
			Model:       model,
			Profile:     prof,
			PerEndpoint: 40,
		}
		b.Run(u.m.Name+"/batched", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				AnalyzeCorners(u.m.Netlist, cfg, corners)
			}
		})
		b.Run(u.m.Name+"/scratch", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for _, c := range corners {
					aged := aging.NewLibrary(lib, model, c.Years)
					Analyze(u.m.Netlist, Config{
						PeriodPs:    u.m.PeriodPs,
						Scale:       scale,
						Aged:        aged,
						Profile:     prof,
						PerEndpoint: 40,
					})
				}
			}
		})
	}
}
