package sta

import (
	"fmt"

	"repro/internal/aging"
	"repro/internal/netlist"
)

// This file is the incremental re-timing path of the batched STA engine.
// A full AnalyzeCorners pass recomputes every cell's delay and every
// net's arrival even when only a handful of signal probabilities moved —
// the common shape of profile refinement, instrumentation sweeps and
// adjacent-corner onset bisection. Incremental keeps the whole
// evaluation state (delay, clock and arrival lanes) alive between
// analyses and, per update, recomputes only the forward fanout cone of
// the cells whose delays actually changed: changed cells seed a worklist
// of combinational-op positions, drained in ascending topological order
// through the same propOp kernel the full pass runs, and propagation
// stops wherever a recomputed arrival is bitwise unchanged. Results are
// byte-identical to a from-scratch AnalyzeCorners — arrivals outside the
// cone already hold the values a full pass would rewrite from identical
// operands, and cone members are re-evaluated by the identical kernel —
// a contract enforced by differential test and FuzzIncrementalSTA, in
// the same proof style as the batched engine itself.

// Incremental is a persistent multi-corner STA over one netlist: one
// full evaluation at construction, then cone-sized re-analyses as the SP
// profile or the corner set moves. Not safe for concurrent use.
type Incremental struct {
	g       *TimingGraph
	cfg     BatchConfig
	corners []Corner
	libs    []*aging.Library
	anyAged bool
	scale   float64
	K       int
	st      *batchState

	// clockMaps caches the per-corner endpoint clock-arrival maps; nil
	// after an update that touched a clock cell's delay.
	clockMaps []map[netlist.CellID]float64

	// Factor double-buffer. Results hands out zero-copy views into the
	// live factorFlat and marks it escaped; the next update swaps in the
	// spare buffer, patch-copying only the cells whose factors were
	// written since the previous swap (the touched list) — so an escaped
	// Result's Factor columns are never written again, at O(touched*K)
	// patch cost instead of an O(cells*K) snapshot copy per Results.
	spare     []float64
	touched   []int32
	inTouched []bool
	escaped   bool

	dirty []bool  // per combOps position: queued in heap
	heap  []int32 // min-heap of dirty positions (ascending topo order)
	oldHi []float64
	oldLo []float64

	// LastRetimed is the number of combinational ops re-evaluated by the
	// most recent update — the measured cone size (whole-netlist counts
	// mean the update degenerated to a full propagation).
	LastRetimed int

	closed bool
}

// NewIncremental compiles (or reuses) nl's timing graph, runs one full
// batched evaluation and returns the persistent analysis. The caller
// owns the lifetime: Close releases the pooled evaluation slab.
// cfg.Profile is referenced, not copied — UpdateSP expects the caller to
// mutate it in place and report which nets moved.
func NewIncremental(nl *netlist.Netlist, cfg BatchConfig, corners []Corner) *Incremental {
	K := len(corners)
	if K == 0 {
		panic("sta: NewIncremental needs at least one corner")
	}
	scale := cfg.Scale
	if scale == 0 {
		scale = 1
	}
	g := CachedGraph(nl)
	libs := cornerLibs(nl.Name, cfg, corners)
	inc := &Incremental{
		g:       g,
		cfg:     cfg,
		corners: append([]Corner(nil), corners...),
		libs:    libs,
		scale:   scale,
		K:       K,
		st:        newBatchState(g, K),
		dirty:     make([]bool, len(g.combOps)),
		inTouched: make([]bool, g.numCells),
		oldHi:     make([]float64, K),
		oldLo:     make([]float64, K),
	}
	for _, lib := range libs {
		if lib != nil {
			inc.anyAged = true
		}
	}
	inc.st.computeDelays(cfg, libs, scale)
	inc.st.computeClockArrivals()
	inc.st.propagate()
	inc.LastRetimed = len(g.combOps)
	return inc
}

// Close returns the pooled evaluation slab. The Incremental must not be
// used afterwards; Results already returned remain valid (they hold no
// views into the slab).
func (inc *Incremental) Close() {
	if !inc.closed {
		inc.st.release()
		inc.closed = true
	}
}

// Results runs the reporting pass — endpoint checks, violating-path
// enumeration, per-corner merge — over the current evaluation state and
// returns one Result per corner, byte-identical to what a fresh
// AnalyzeCorners with the same profile and corners would return. The
// embedded factor columns are zero-copy views into the live factor
// buffer; handing them out marks the buffer escaped, and the next update
// retires it to the double-buffer's read-only side — so later updates
// never mutate an escaped Result.
func (inc *Incremental) Results() []*Result {
	st, nc := inc.st, inc.g.numCells
	cols := make([][]float64, inc.K)
	for k := range cols {
		cols[k] = st.factorFlat[k*nc : (k+1)*nc : (k+1)*nc]
	}
	inc.escaped = true
	if inc.clockMaps == nil {
		inc.clockMaps = clockArrivalMaps(inc.g, st)
	}
	return checkAndEnumerate(inc.g, st, inc.cfg, inc.corners, inc.libs, cols, inc.clockMaps)
}

// beginUpdate makes the live factor buffer private before the first
// write of an update batch. If the current buffer escaped via Results,
// the spare buffer — which differs from the live one only at the cells
// touched since the previous swap — is patched at those cells and
// swapped in; the escaped buffer is never written again. The first swap
// clones the whole buffer; every later one costs O(touched * K).
func (inc *Incremental) beginUpdate() {
	if !inc.escaped {
		return
	}
	st := inc.st
	if inc.spare == nil {
		inc.spare = append([]float64(nil), st.factorFlat...)
	} else {
		K, nc := inc.K, inc.g.numCells
		for _, ci := range inc.touched {
			for k := 0; k < K; k++ {
				inc.spare[k*nc+int(ci)] = st.factorFlat[k*nc+int(ci)]
			}
		}
	}
	for _, ci := range inc.touched {
		inc.inTouched[ci] = false
	}
	inc.touched = inc.touched[:0]
	st.factorFlat, inc.spare = inc.spare, st.factorFlat
	nc := inc.g.numCells
	for k := range st.factorC {
		st.factorC[k] = st.factorFlat[k*nc : (k+1)*nc : (k+1)*nc]
	}
	inc.escaped = false
}

// UpdateSP re-times after a sparse profile change: the caller has
// already written the new signal probabilities into cfg.Profile.SP and
// passes the net IDs whose SP moved. Only cells driving those nets get
// their delays recomputed, and only their forward fanout cones are
// re-propagated. Returns the refreshed per-corner Results.
func (inc *Incremental) UpdateSP(changed []netlist.NetID) []*Result {
	inc.beginUpdate()
	clocksDirty := false
	for _, n := range changed {
		cid := inc.g.driver[n]
		if cid == netlist.NoCell {
			continue // primary input: no cell's delay is keyed by this net
		}
		inc.touchCell(int(cid), &clocksDirty)
	}
	inc.finishUpdate(clocksDirty)
	return inc.Results()
}

// SetCorners moves the analysis to a new corner set of the same size
// (re-characterizing the aged libraries), re-timing only the cones whose
// delays actually changed between the corner sets — cells whose factors
// are bitwise stable across adjacent corners (ties, saturated SP bins,
// fresh lanes) keep their arrivals without re-propagation.
func (inc *Incremental) SetCorners(corners []Corner) []*Result {
	if len(corners) != inc.K {
		panic(fmt.Sprintf("sta: SetCorners with %d corners on a %d-corner Incremental", len(corners), inc.K))
	}
	inc.beginUpdate()
	inc.corners = append(inc.corners[:0], corners...)
	inc.libs = cornerLibs(inc.g.nl.Name, inc.cfg, corners)
	inc.anyAged = false
	for _, lib := range inc.libs {
		if lib != nil {
			inc.anyAged = true
		}
	}
	clocksDirty := false
	for i := 0; i < inc.g.numCells; i++ {
		inc.touchCell(i, &clocksDirty)
	}
	inc.finishUpdate(clocksDirty)
	return inc.Results()
}

// touchCell recomputes cell i's delay lanes and, when they changed
// bitwise, seeds the re-timing worklist: a combinational cell enqueues
// its own op, a flip-flop refreshes its launch (Q) arrival and enqueues
// the readers, a clock cell dirties the whole clock network.
func (inc *Incremental) touchCell(i int, clocksDirty *bool) {
	st, K := inc.st, inc.K
	if !inc.inTouched[i] {
		inc.inTouched[i] = true
		inc.touched = append(inc.touched, int32(i))
	}
	base := i * K
	copy(inc.oldHi, st.dmax[base:base+K])
	copy(inc.oldLo, st.dmin[base:base+K])
	st.delaysForCell(inc.cfg, inc.libs, inc.scale, inc.anyAged, i)
	if lanesEqual(inc.oldHi, st.dmax[base:base+K]) && lanesEqual(inc.oldLo, st.dmin[base:base+K]) {
		return
	}
	g := inc.g
	switch g.class[i] {
	case classComb:
		inc.seed(g.combPos[i])
	case classDFF:
		inc.refreshEndpointQ(i)
	case classStop:
		if g.kind[i].IsClock() {
			*clocksDirty = true
		}
		// Ties: no timed arrival, no cone.
	}
}

// refreshEndpointQ rewrites DFF i's launch arrivals (clock arrival plus
// clk-to-q delay, the same expression the full pass initializes
// endpoints with) and seeds the Q net's readers if they moved.
func (inc *Incremental) refreshEndpointQ(i int) {
	st, g, K := inc.st, inc.g, inc.K
	q, clk := g.outNet[i], g.clkNet[i]
	qb, cb, kb := int(q)*K, i*K, int(clk)*K
	am := st.arrMax[qb : qb+K : qb+K]
	an := st.arrMin[qb : qb+K : qb+K]
	ck := st.clk[kb : kb+K]
	dx := st.dmax[cb : cb+K]
	dn := st.dmin[cb : cb+K]
	changed := false
	for k := range am {
		hi := ck[k] + dx[k]
		lo := ck[k] + dn[k]
		if hi != am[k] || lo != an[k] {
			changed = true
		}
		am[k] = hi
		an[k] = lo
	}
	if changed {
		inc.seedReaders(q)
	}
}

// finishUpdate drains the worklist. If a clock cell's delay changed the
// clock network is recomputed in full first (it is cheap relative to the
// data network, and its arrivals feed every endpoint), every launch
// arrival is refreshed, and the cached clock-arrival maps are dropped.
func (inc *Incremental) finishUpdate(clocksDirty bool) {
	st, g := inc.st, inc.g
	if clocksDirty {
		st.computeClockArrivals()
		inc.clockMaps = nil
		for ei := range g.endpoints {
			inc.refreshEndpointQ(int(g.endpoints[ei].cellID))
		}
	}
	retimed := 0
	for len(inc.heap) > 0 {
		p := inc.heapPop()
		inc.dirty[p] = false
		op := &g.combOps[p]
		ob := int(op.out) * inc.K
		copy(inc.oldHi, st.arrMax[ob:ob+inc.K])
		copy(inc.oldLo, st.arrMin[ob:ob+inc.K])
		st.propOp(int(p))
		retimed++
		if !lanesEqual(inc.oldHi, st.arrMax[ob:ob+inc.K]) || !lanesEqual(inc.oldLo, st.arrMin[ob:ob+inc.K]) {
			inc.seedReaders(op.out)
		}
	}
	inc.LastRetimed = retimed
}

func lanesEqual(a, b []float64) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// seedReaders enqueues every combinational op reading net n through a
// data pin. Readers sit at higher topological positions than n's driver,
// so the ascending drain evaluates each cone member exactly once.
func (inc *Incremental) seedReaders(n netlist.NetID) {
	g := inc.g
	for j := g.fanLo[n]; j < g.fanLo[n+1]; j++ {
		inc.seed(g.fanOp[j])
	}
}

func (inc *Incremental) seed(p int32) {
	if p < 0 || inc.dirty[p] {
		return
	}
	inc.dirty[p] = true
	inc.heapPush(p)
}

// Arrival lanes never hold NaN, so != above is a pure bitwise-change
// test (no float equality subtlety: identical operands through identical
// expressions reproduce identical bits, which is the invariant the
// worklist prunes on).

func (inc *Incremental) heapPush(p int32) {
	h := append(inc.heap, p)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h[parent] <= h[i] {
			break
		}
		h[parent], h[i] = h[i], h[parent]
		i = parent
	}
	inc.heap = h
}

func (inc *Incremental) heapPop() int32 {
	h := inc.heap
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h = h[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(h) && h[l] < h[small] {
			small = l
		}
		if r < len(h) && h[r] < h[small] {
			small = r
		}
		if small == i {
			break
		}
		h[i], h[small] = h[small], h[i]
		i = small
	}
	inc.heap = h
	return top
}
