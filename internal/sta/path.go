package sta

import (
	"fmt"
	"strings"

	"repro/internal/cell"
	"repro/internal/netlist"
)

// PathStage is one hop of a reported timing path.
type PathStage struct {
	Cell      netlist.CellID
	Name      string
	Kind      cell.Kind
	DelayPs   float64 // this cell's (aged, scaled) contribution
	ArrivalPs float64 // cumulative arrival after the cell
	Factor    float64 // the aging factor applied to this cell
}

// PathReport is the report_timing-style breakdown of the worst path into
// an endpoint — the artifact an engineer reads to see where the aged
// slack went.
type PathReport struct {
	Type       PathType
	Start, End netlist.CellID
	StartName  string
	EndName    string
	LaunchPs   float64 // launch clock arrival
	CapturePs  float64 // capture clock arrival
	RequiredPs float64
	ArrivalPs  float64
	SlackPs    float64
	Stages     []PathStage
}

// WorstPath recomputes the analysis and backtracks the worst setup path
// into the given endpoint flip-flop, stage by stage.
func WorstPath(nl *netlist.Netlist, cfg Config, end netlist.CellID) (*PathReport, error) {
	a := newAnalysis(nl, cfg)
	a.computeCellTiming()
	a.computeClockArrivals()
	a.propagateArrivals()

	c := nl.Cells[end]
	if c.Kind != cell.DFF {
		return nil, fmt.Errorf("sta: endpoint %s is not a flip-flop", c.Name)
	}
	d := c.In[0]
	if a.arrMax[d] == -inf {
		return nil, fmt.Errorf("sta: endpoint %s has no timed path", c.Name)
	}
	rep := &PathReport{
		Type:       Setup,
		End:        end,
		EndName:    c.Name,
		CapturePs:  a.clkEarly[end],
		RequiredPs: cfg.PeriodPs + a.clkEarly[end] - a.setup,
		ArrivalPs:  a.arrMax[d],
	}
	rep.SlackPs = rep.RequiredPs - rep.ArrivalPs

	// Backtrack: at each net pick the driving cell, then the input pin
	// whose arrival dominates.
	var stages []PathStage
	n := d
	for {
		drv := nl.Driver(n)
		if drv == netlist.NoCell {
			return nil, fmt.Errorf("sta: path backtrack reached an input net %s", nl.NetName(n))
		}
		dc := &nl.Cells[drv]
		stages = append(stages, PathStage{
			Cell: drv, Name: dc.Name, Kind: dc.Kind,
			DelayPs: a.dmax[drv], ArrivalPs: a.arrMax[n], Factor: a.factor[drv],
		})
		if dc.Kind == cell.DFF {
			rep.Start = drv
			rep.StartName = dc.Name
			rep.LaunchPs = a.clkLate[drv]
			break
		}
		best := netlist.NoNet
		bestArr := -inf
		for _, in := range dc.In {
			if a.arrMax[in] > bestArr {
				bestArr = a.arrMax[in]
				best = in
			}
		}
		if best == netlist.NoNet {
			return nil, fmt.Errorf("sta: cell %s has no timed fanin", dc.Name)
		}
		n = best
	}
	// Reverse into launch-to-capture order.
	for i, j := 0, len(stages)-1; i < j; i, j = i+1, j-1 {
		stages[i], stages[j] = stages[j], stages[i]
	}
	rep.Stages = stages
	return rep, nil
}

// String renders the report in signoff-tool style.
func (r *PathReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "startpoint %s (clk %+0.1fps)  endpoint %s (clk %+0.1fps)\n",
		r.StartName, r.LaunchPs, r.EndName, r.CapturePs)
	fmt.Fprintf(&b, "%-24s %-8s %10s %10s %8s\n", "cell", "kind", "delay(ps)", "arrive(ps)", "aged(x)")
	for _, s := range r.Stages {
		fmt.Fprintf(&b, "%-24s %-8s %10.1f %10.1f %8.4f\n",
			s.Name, s.Kind, s.DelayPs, s.ArrivalPs, s.Factor)
	}
	fmt.Fprintf(&b, "required %.1fps  arrival %.1fps  slack %+.1fps\n",
		r.RequiredPs, r.ArrivalPs, r.SlackPs)
	return b.String()
}
