package sta

import (
	"sync"

	"repro/internal/cell"
	"repro/internal/lru"
	"repro/internal/netlist"
)

// This file is the compile step of the batched STA engine: a netlist is
// lowered once into a TimingGraph — flat, cache-friendly arrays in
// traversal order — and every corner evaluation reuses it. It mirrors
// internal/engine's Compile/Cached split: compile cost is paid once per
// netlist, evaluation state lives elsewhere (batchState in batch.go).

// Cell classes steer the path walker without re-deriving kind predicates
// per visit.
const (
	classComb uint8 = iota // combinational: paths pass through
	classDFF               // flip-flop: paths start here
	classStop              // clock cells and ties: no timed data arrival
)

// combOp is one combinational cell in topological order.
type combOp struct {
	cellID netlist.CellID
	out    netlist.NetID
}

// clockOp is one clock-network cell in topological order; out's clock
// arrival is in's plus the cell's (aged) max delay.
type clockOp struct {
	cellID  netlist.CellID
	out, in netlist.NetID
}

// endpoint is one flip-flop, in cell order — the order the scalar
// analysis scans endpoints in, which the batched merge must reproduce.
type endpoint struct {
	cellID    netlist.CellID
	d, clk, q netlist.NetID
}

// TimingGraph is the reusable compiled form of a netlist for timing
// analysis. It is immutable after CompileGraph and shared read-only
// across corners and goroutines.
type TimingGraph struct {
	nl *netlist.Netlist

	numNets  int
	numCells int

	// Per-cell tables.
	kind   []cell.Kind
	class  []uint8
	outNet []netlist.NetID
	clkNet []netlist.NetID // DFF clock pin; NoNet otherwise

	// Per-net driving cell (flattened copy of netlist.Driver).
	driver []netlist.CellID

	// Flattened input pins: cell i reads cellIn[cellInLo[i]:cellInLo[i+1]].
	cellInLo []int32
	cellIn   []netlist.NetID

	// Traversal orders derived from nl.Topo().
	combOps  []combOp
	clockOps []clockOp

	// Flip-flops in cell order.
	endpoints []endpoint

	// Nets the arrival pass never writes (everything but flip-flop
	// outputs and combinational outputs). Evaluation sentinel-fills
	// exactly these lanes instead of sweeping the whole arrival arrays.
	untimed []netlist.NetID

	// Clock nets the evaluation reads but no clock cell drives — tree
	// roots, whose arrival is zero by definition. Like untimed, listed
	// so evaluation state can be reused without a full clearing sweep.
	clkRoots []netlist.NetID

	// Cell kinds the netlist actually instantiates. The corner-major
	// characterization grid is only materialized for these rows.
	usedKinds []cell.Kind

	// Incremental re-timing support (incremental.go). combPos maps each
	// cell to its position in combOps (-1 for non-combinational cells);
	// the fanout CSR lists, per net, the combOps positions reading it
	// through a data pin: net n's readers are fanOp[fanLo[n]:fanLo[n+1]].
	// Positions rather than cell IDs, because the incremental worklist is
	// ordered by topological position — a reader's position is always
	// greater than its driver's, so an ascending drain re-evaluates every
	// cone member exactly once.
	combPos []int32
	fanLo   []int32
	fanOp   []int32
}

// CompileGraph lowers a netlist into its timing graph.
func CompileGraph(nl *netlist.Netlist) *TimingGraph {
	g := &TimingGraph{
		nl:       nl,
		numNets:  nl.NumNets,
		numCells: len(nl.Cells),
	}
	g.kind = make([]cell.Kind, g.numCells)
	g.class = make([]uint8, g.numCells)
	g.outNet = make([]netlist.NetID, g.numCells)
	g.clkNet = make([]netlist.NetID, g.numCells)
	g.driver = make([]netlist.CellID, g.numNets)
	for n := range g.driver {
		g.driver[n] = nl.Driver(netlist.NetID(n))
	}

	totalIn := 0
	for i := range nl.Cells {
		totalIn += len(nl.Cells[i].In)
	}
	g.cellInLo = make([]int32, g.numCells+1)
	g.cellIn = make([]netlist.NetID, 0, totalIn)

	for i := range nl.Cells {
		c := &nl.Cells[i]
		g.cellInLo[i] = int32(len(g.cellIn))
		g.cellIn = append(g.cellIn, c.In...)
		g.kind[i] = c.Kind
		g.outNet[i] = c.Out
		g.clkNet[i] = c.Clk
		switch {
		case c.Kind == cell.DFF:
			g.class[i] = classDFF
			g.endpoints = append(g.endpoints, endpoint{
				cellID: netlist.CellID(i), d: c.In[0], clk: c.Clk, q: c.Out,
			})
		case c.Kind.IsClock(), c.Kind == cell.TIE0, c.Kind == cell.TIE1:
			g.class[i] = classStop
		default:
			g.class[i] = classComb
		}
	}
	g.cellInLo[g.numCells] = int32(len(g.cellIn))

	for _, cid := range nl.Topo() {
		switch g.class[cid] {
		case classComb:
			g.combOps = append(g.combOps, combOp{cellID: cid, out: g.outNet[cid]})
		case classStop:
			if g.kind[cid].IsClock() {
				g.clockOps = append(g.clockOps, clockOp{
					cellID: cid, out: g.outNet[cid], in: g.cellIn[g.cellInLo[cid]],
				})
			}
		}
	}

	written := make([]bool, g.numNets)
	for i := range g.endpoints {
		written[g.endpoints[i].q] = true
	}
	for i := range g.combOps {
		written[g.combOps[i].out] = true
	}
	for n, w := range written {
		if !w {
			g.untimed = append(g.untimed, netlist.NetID(n))
		}
	}

	var kindSeen [cell.NumKinds]bool
	for _, k := range g.kind {
		if !kindSeen[k] {
			kindSeen[k] = true
			g.usedKinds = append(g.usedKinds, k)
		}
	}

	clkDriven := make(map[netlist.NetID]bool, len(g.clockOps))
	for i := range g.clockOps {
		clkDriven[g.clockOps[i].out] = true
	}
	rootSeen := make(map[netlist.NetID]bool)
	addRoot := func(n netlist.NetID) {
		if !clkDriven[n] && !rootSeen[n] {
			rootSeen[n] = true
			g.clkRoots = append(g.clkRoots, n)
		}
	}
	for i := range g.clockOps {
		addRoot(g.clockOps[i].in)
	}
	for i := range g.endpoints {
		addRoot(g.endpoints[i].clk)
	}

	// Fanout CSR for incremental re-timing: two counting passes, no
	// per-net slice churn. A net read through several pins of one cell
	// appears once per pin; the worklist's dirty bitmap makes duplicates
	// harmless.
	g.combPos = make([]int32, g.numCells)
	for i := range g.combPos {
		g.combPos[i] = -1
	}
	for p := range g.combOps {
		g.combPos[g.combOps[p].cellID] = int32(p)
	}
	g.fanLo = make([]int32, g.numNets+1)
	for p := range g.combOps {
		cid := g.combOps[p].cellID
		for j := g.cellInLo[cid]; j < g.cellInLo[cid+1]; j++ {
			g.fanLo[g.cellIn[j]+1]++
		}
	}
	for n := 0; n < g.numNets; n++ {
		g.fanLo[n+1] += g.fanLo[n]
	}
	g.fanOp = make([]int32, g.fanLo[g.numNets])
	cursor := make([]int32, g.numNets)
	copy(cursor, g.fanLo[:g.numNets])
	for p := range g.combOps {
		cid := g.combOps[p].cellID
		for j := g.cellInLo[cid]; j < g.cellInLo[cid+1]; j++ {
			n := g.cellIn[j]
			g.fanOp[cursor[n]] = int32(p)
			cursor[n]++
		}
	}
	return g
}

// The graph cache keys compiled timing graphs by netlist identity, the
// same contract as engine's program cache: netlists are immutable after
// Build, so pointer identity is sound, and the cache is a bounded LRU —
// transient instrumented netlists cycle through the cold end while the
// module netlists every sweep revisits stay resident. Eviction only
// costs a recompile, never correctness.
const graphCacheCap = 512

var graphCache = struct {
	sync.Mutex
	c *lru.Cache[*netlist.Netlist, *TimingGraph]
}{c: lru.New[*netlist.Netlist, *TimingGraph](graphCacheCap)}

// CachedGraph returns the compiled timing graph for nl, compiling and
// memoizing it on first use. Safe for concurrent use; the returned graph
// is shared and read-only.
func CachedGraph(nl *netlist.Netlist) *TimingGraph {
	graphCache.Lock()
	defer graphCache.Unlock()
	if g, ok := graphCache.c.Get(nl); ok {
		return g
	}
	g := CompileGraph(nl)
	graphCache.c.Add(nl, g)
	return g
}

// GraphCacheSize reports the number of memoized graphs (for tests).
func GraphCacheSize() int {
	graphCache.Lock()
	defer graphCache.Unlock()
	return graphCache.c.Len()
}

// GraphCacheStats snapshots the graph cache's hit/miss/eviction
// counters.
func GraphCacheStats() lru.Stats {
	graphCache.Lock()
	defer graphCache.Unlock()
	return graphCache.c.Stats()
}
