package sta

import (
	"context"
	"fmt"
	"math"
	"sync"

	"repro/internal/aging"
	"repro/internal/cell"
	"repro/internal/netlist"
	"repro/internal/par"
	"repro/internal/sim"
)

// The batched arrays use IEEE infinities as untimed sentinels where the
// scalar pass uses ±math.MaxFloat64. Adding a finite delay to an IEEE
// infinity saturates, so the propagation and pruning loops need no
// sentinel guards — and no timed lane changes: a timed arrival is the
// same finite sum in the same association order under either sentinel,
// and untimed lanes are only ever tested against the sentinel, never
// reported.
var (
	negInf = math.Inf(-1)
	posInf = math.Inf(1)
)

// This file is the evaluation half of the batched STA engine: arrival
// times for K aging corners are propagated simultaneously in
// structure-of-arrays form over one CachedGraph traversal, then the
// violating paths are enumerated by a multi-corner explicit-stack walker
// — one DFS per (endpoint, check) shared by every corner that flagged it
// — fanned out over a par.Map pool and merged deterministically in the
// scalar analysis's endpoint order. The scalar Analyze stays as the
// differential baseline: AnalyzeCorners is required to reproduce its
// Results bit for bit at every corner and Parallelism
// (TestBatchedMatchesScalar, FuzzBatchedVsScalar).

// Corner is one point of a multi-corner analysis: an assumed lifetime
// (Years <= 0 means fresh) and an optional operating-temperature
// override in Kelvin (zero keeps the model's TempK).
type Corner struct {
	Years float64
	TempK float64
}

// BatchConfig parameterizes one multi-corner STA run. PeriodPs, Scale,
// MaxPaths and PerEndpoint mean exactly what they do in Config and apply
// to every corner.
type BatchConfig struct {
	PeriodPs float64
	Scale    float64
	// Base is the nominal library; aged libraries for every corner are
	// derived from it through one aging.NewCornerGrid characterization.
	Base *cell.Library
	// Model is the aging model; required when any corner has Years > 0.
	Model *aging.Model
	// Profile supplies per-net signal probabilities; required when any
	// corner has Years > 0.
	Profile *sim.Profile
	// Libs, when non-nil, supplies the per-corner aged libraries directly
	// and skips the aging.NewCornerGrid characterization — the reuse seam
	// the fleet daemon's content-addressed store plugs into, so repeated
	// submissions of one netlist pay the grid once (see CornerLibraries).
	// Must be exactly one entry per corner, nil entries marking fresh
	// corners, and must have been built from the same Base/Model/Profile
	// this config carries or the results are silently wrong. A stale Libs
	// also binds Incremental.SetCorners to the same corner count.
	Libs        []*aging.Library
	MaxPaths    int
	PerEndpoint int
	// Parallelism bounds the path-enumeration fan-out (0 = all CPUs).
	// Results are byte-identical at every setting.
	Parallelism int
}

// AnalyzeCorners runs the timing analysis at every corner in one batched
// pass and returns one Result per corner, each bit-identical to what
// Analyze would produce for that corner alone.
func AnalyzeCorners(nl *netlist.Netlist, cfg BatchConfig, corners []Corner) []*Result {
	K := len(corners)
	if K == 0 {
		return nil
	}
	scale := cfg.Scale
	if scale == 0 {
		scale = 1
	}

	g := CachedGraph(nl)
	libs := cornerLibs(nl.Name, cfg, corners)

	st := newBatchState(g, K)
	st.computeDelays(cfg, libs, scale)
	st.computeClockArrivals()
	st.propagate()
	results := checkAndEnumerate(g, st, cfg, corners, libs, st.factorC, nil)
	st.release() // walks are done; Results hold no views into the slab
	return results
}

// CornerLibraries precomputes the per-corner aged libraries that
// AnalyzeCorners would derive internally, for callers that reuse one
// corner grid across many analyses of the same netlist via
// BatchConfig.Libs. The returned slice is read-only and position-matched
// to corners; cfg.Libs itself is ignored here.
func CornerLibraries(name string, cfg BatchConfig, corners []Corner) []*aging.Library {
	cfg.Libs = nil
	return cornerLibs(name, cfg, corners)
}

// cornerLibs derives every corner's aged library through one
// aging.NewCornerGrid characterization (nil entries mark fresh corners),
// or hands back the precomputed cfg.Libs when the caller supplied them.
// Shared by the batched one-shot pass and the incremental engine.
func cornerLibs(name string, cfg BatchConfig, corners []Corner) []*aging.Library {
	if cfg.Libs != nil {
		if len(cfg.Libs) != len(corners) {
			panic(fmt.Sprintf("sta: %s: BatchConfig.Libs has %d entries for %d corners",
				name, len(cfg.Libs), len(corners)))
		}
		return cfg.Libs
	}
	K := len(corners)
	libs := make([]*aging.Library, K)
	anyAged := false
	for _, c := range corners {
		if c.Years > 0 {
			anyAged = true
		}
	}
	if anyAged {
		if cfg.Model == nil || cfg.Profile == nil {
			panic(fmt.Sprintf("sta: AnalyzeCorners on %s: aged corners need Model and Profile", name))
		}
		specs := make([]aging.CornerSpec, K)
		for i, c := range corners {
			specs[i] = aging.CornerSpec{Years: c.Years, TempK: c.TempK}
		}
		grid := aging.NewCornerGrid(cfg.Base, cfg.Model, specs)
		for i := range corners {
			libs[i] = grid.Library(i)
		}
	}
	return libs
}

// clockArrivalMaps builds one endpoint->clock-arrival map per corner
// from the state's current clock lanes. The incremental engine caches
// the returned maps across updates that leave the clock network's
// delays untouched.
func clockArrivalMaps(g *TimingGraph, st *batchState) []map[netlist.CellID]float64 {
	maps := make([]map[netlist.CellID]float64, st.K)
	// Fill each corner's map in its own pass so one map stays hot per
	// loop instead of round-robining K maps per endpoint.
	for k := 0; k < st.K; k++ {
		m := make(map[netlist.CellID]float64, len(g.endpoints))
		for ei := range g.endpoints {
			e := &g.endpoints[ei]
			m[e.cellID] = st.clk[int(e.clk)*st.K+k]
		}
		maps[k] = m
	}
	return maps
}

// checkAndEnumerate is the reporting half of a batched run: scan every
// endpoint's slacks, enumerate the violating cones, and merge into one
// Result per corner — without touching the propagation state, so the
// incremental engine can call it repeatedly over a persistent state. The
// factor columns to embed are passed in (the one-shot pass hands over
// its own, the incremental engine hands fresh copies so later updates
// cannot mutate escaped Results); clockMaps, when non-nil, supplies
// prebuilt per-corner clock-arrival maps to share instead of building.
func checkAndEnumerate(g *TimingGraph, st *batchState, cfg BatchConfig, corners []Corner,
	libs []*aging.Library, factorC [][]float64, clockMaps []map[netlist.CellID]float64) []*Result {

	K := len(corners)
	maxPaths := cfg.MaxPaths
	if maxPaths == 0 {
		maxPaths = 200000
	}
	perEndpoint := cfg.PerEndpoint
	if perEndpoint == 0 {
		perEndpoint = 400
	}
	if clockMaps == nil {
		clockMaps = clockArrivalMaps(g, st)
	}

	results := make([]*Result, K)
	for k := 0; k < K; k++ {
		rcfg := Config{
			PeriodPs:    cfg.PeriodPs,
			Scale:       cfg.Scale,
			MaxPaths:    maxPaths,
			PerEndpoint: perEndpoint,
		}
		if libs[k] != nil {
			rcfg.Aged = libs[k]
			rcfg.Profile = cfg.Profile
		} else {
			rcfg.Base = cfg.Base
		}
		results[k] = &Result{
			Config:       rcfg,
			WNSSetup:     inf,
			WNSHold:      inf,
			Factor:       factorC[k],
			ClockArrival: clockMaps[k],
		}
	}

	// Scan endpoints in the scalar analysis's order (cell order, setup
	// before hold), collecting per-corner WNS and one enumeration job per
	// violating (endpoint, check) — shared by every corner that flags it.
	// perCorner[k] lists that corner's (job, lane) records in exactly the
	// scalar enumeration order, for the sequential merge below.
	var jobs []enumJob
	perCorner := make([][]cornerRef, K)
	for ei := range g.endpoints {
		e := &g.endpoints[ei]
		db, kb := int(e.d)*K, int(e.clk)*K
		var sCor, hCor []int32
		var sReq, hReq []float64
		for k := 0; k < K; k++ {
			clkArr := st.clk[kb+k]
			res := results[k]

			if am := st.arrMax[db+k]; am > negInf {
				required := cfg.PeriodPs + clkArr - st.setup
				slack := required - am
				if slack < res.WNSSetup {
					res.WNSSetup = slack
				}
				if slack < 0 {
					sCor = append(sCor, int32(k))
					sReq = append(sReq, required)
				}
			}
			if an := st.arrMin[db+k]; an < posInf {
				required := clkArr + st.hold
				slack := an - required
				if slack < res.WNSHold {
					res.WNSHold = slack
				}
				if slack < 0 {
					hCor = append(hCor, int32(k))
					hReq = append(hReq, required)
				}
			}
		}
		if len(sCor) > 0 {
			for pos, k := range sCor {
				perCorner[k] = append(perCorner[k], cornerRef{job: int32(len(jobs)), lane: int32(pos)})
			}
			jobs = append(jobs, enumJob{ep: ei, typ: Setup, corners: sCor, required: sReq})
		}
		if len(hCor) > 0 {
			for pos, k := range hCor {
				perCorner[k] = append(perCorner[k], cornerRef{job: int32(len(jobs)), lane: int32(pos)})
			}
			jobs = append(jobs, enumJob{ep: ei, typ: Hold, corners: hCor, required: hReq})
		}
	}

	// Enumerate all violating (endpoint, check) cones in parallel. Each
	// job walks every requesting corner in one pass, recording up to the
	// per-endpoint cap of hits per corner; the global MaxPaths budget
	// cannot be applied here without ordering, so jobs over-enumerate to
	// the per-endpoint cap and the sequential merge below trims to the
	// budget.
	records, err := par.Map(context.Background(), len(jobs), cfg.Parallelism,
		func(_ context.Context, ji int) ([]enumRecord, error) {
			return g.walkViolations(st, &jobs[ji], perEndpoint), nil
		})
	if err != nil {
		panic(err) // only a recovered worker panic can land here
	}

	// Merge per corner in scan order — endpoint order, setup before hold
	// — applying each corner's global budget exactly as the scalar
	// analysis does, so counts, truncation and pair summaries match it
	// bit for bit regardless of how the pool interleaved the walks.
	for k := 0; k < K; k++ {
		res := results[k]
		budget := maxPaths
		pm := make(map[pairKey]*PairSummary)
		for _, ref := range perCorner[k] {
			j := &jobs[ref.job]
			rec := &records[ref.job][ref.lane]
			allowed := budget
			if perEndpoint < allowed {
				allowed = perEndpoint
			}
			found := len(rec.hits)
			take := found
			if take > allowed {
				take = allowed
			}
			// The scalar DFS reports truncation iff it is entered with its
			// budget exhausted: that happens when more hits exist than
			// allowed, or when the allowed-th hit was found and any walk step
			// followed it.
			if found > allowed || (found == allowed && rec.more) {
				res.Truncated = true
			}
			if j.typ == Setup {
				res.NumSetupViolations += take
			} else {
				res.NumHoldViolations += take
			}
			budget -= take

			end := g.endpoints[j.ep].cellID
			for _, h := range rec.hits[:take] {
				key := pairKey{Pair: Pair{Start: h.start, End: end}, Type: j.typ}
				s, ok := pm[key]
				if !ok {
					s = &PairSummary{Pair: key.Pair, Type: j.typ, WorstSlack: h.slack}
					pm[key] = s
				}
				s.Paths++
				if h.slack < s.WorstSlack {
					s.WorstSlack = h.slack
				}
			}
		}
		for _, p := range pm {
			res.Pairs = append(res.Pairs, *p)
		}
		sortPairs(res.Pairs)
	}
	return results
}

// enumJob is one (endpoint, check) enumeration task, carrying the lanes
// — corners that flagged a violation here — and each lane's required
// time. Lanes are in ascending corner order.
type enumJob struct {
	ep       int // index into TimingGraph.endpoints
	typ      PathType
	corners  []int32
	required []float64
}

// cornerRef locates one corner's enumeration record: lane `lane` of job
// `job`.
type cornerRef struct {
	job  int32
	lane int32
}

// pathHit is one violating path in DFS discovery order.
type pathHit struct {
	start netlist.CellID
	slack float64
}

// enumRecord is the outcome of one corner's walk: up to the per-endpoint
// cap of hits, plus whether any walk step followed the final hit (the
// signal the merge needs to reproduce the scalar truncation flag for
// budgets that land exactly on the hit count).
type enumRecord struct {
	hits []pathHit
	more bool
}

// walkFrame is one node of the shared multi-corner DFS. Its live lanes
// and their path suffixes sit at [off, off+cnt) of the walk's lane
// buffers; all children of a node share one span, since a lane's child
// suffix (suffix + driver delay) is the same for every input pin.
//
// A frame with cnt == soloCnt is a demoted single-lane node: off holds
// the lane index and suffix the lane's path suffix, with no span behind
// it. Deep in post-onset cones pruning thins most spans to one survivor,
// and carrying the span machinery (append-filtered lane buffers, span
// truncation, per-lane bookkeeping loops) for a single lane roughly
// doubles the per-node cost over the scalar walk — demotion makes the
// thinned tail of the DFS cost what walkSolo costs.
type walkFrame struct {
	n      netlist.NetID
	off    int32
	cnt    int32
	suffix float64 // solo frames only
}

// soloCnt marks a demoted single-lane walkFrame.
const soloCnt int32 = -1

// walkViolations enumerates the violating paths into a job's endpoint
// for every requesting corner in a single DFS. The traversal order is
// structural — children are pushed in reverse pin order so pops replay
// the recursive scalar DFS — and identical for every corner, so each
// lane's hits land in exactly the order its solo scalar enumeration
// would record them. A lane participates in a node iff it survived the
// parent's arrival-based pruning, which is precisely the scalar walk's
// descend condition; restricting a DFS preorder to such an
// ancestor-closed subset with unchanged child order yields that subset's
// own DFS preorder, so per-lane bit-identity holds. Lanes that fill the
// per-endpoint cap set their truncation signal on their next entry and
// drop out; the walk stops when every lane is done.
func (g *TimingGraph) walkViolations(st *batchState, j *enumJob, limit int) []enumRecord {
	if len(j.corners) == 1 {
		return g.walkSolo(st, j, limit)
	}
	K := st.K
	C := len(j.corners)
	setup := j.typ == Setup
	arr, delay := st.arrMax, st.dmax
	if !setup {
		arr, delay = st.arrMin, st.dmin
	}
	clk := st.clk

	recs := make([]enumRecord, C)
	// Per-lane walk state, kept as packed int32s: delta counts entries
	// since the lane's last hit (the scalar truncation flag for a lane
	// that never reached its cap is exactly "some entry followed the
	// final hit", i.e. delta > 0), nHits is the lane's hit count for the
	// cap test — cheaper than re-deriving it from the record's slice
	// header on every node.
	delta := make([]int32, C)
	nHits := make([]int32, C)
	done := make([]bool, C)
	active := C
	limit32 := int32(limit)

	laneC := make([]int32, C, 16*C)   // lane index (position in j.corners)
	laneS := make([]float64, C, 16*C) // that lane's suffix at this node
	for p := range laneC {
		laneC[p] = int32(p)
	}
	stack := make([]walkFrame, 1, 64)
	stack[0] = walkFrame{n: g.endpoints[j.ep].d, off: 0, cnt: int32(C)}

	for len(stack) > 0 && active > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if f.cnt == soloCnt {
			// Demoted single-lane node: walkSolo's body, against this
			// lane's slice of the batched state. Same entry accounting,
			// prune and hit conditions as the span path, so the lane's
			// record is unchanged — only the bookkeeping is cheaper.
			p := f.off
			if done[p] {
				continue
			}
			if nHits[p] >= limit32 {
				recs[p].more = true
				done[p] = true
				active--
				continue
			}
			delta[p]++
			d := g.driver[f.n]
			cls := classStop
			if d != netlist.NoCell {
				cls = g.class[d]
			}
			if cls == classStop {
				continue
			}
			k := int(j.corners[p])
			a := arr[int(f.n)*K+k]
			if setup {
				if a+f.suffix <= j.required[p] {
					continue
				}
			} else {
				if a+f.suffix >= j.required[p] {
					continue
				}
			}
			if cls == classDFF {
				total := clk[int(g.clkNet[d])*K+k] + delay[int(d)*K+k] + f.suffix
				var slack float64
				if setup {
					slack = j.required[p] - total
				} else {
					slack = total - j.required[p]
				}
				if slack < 0 {
					recs[p].hits = append(recs[p].hits, pathHit{start: d, slack: slack})
					delta[p] = 0
					nHits[p]++
				}
				continue
			}
			child := f.suffix + delay[int(d)*K+k]
			lo, hi := g.cellInLo[d], g.cellInLo[d+1]
			for jx := hi - 1; jx >= lo; jx-- {
				stack = append(stack, walkFrame{n: g.cellIn[jx], off: p, cnt: soloCnt, suffix: child})
			}
			continue
		}
		lc := laneC[f.off : f.off+f.cnt]
		ls := laneS[f.off : f.off+f.cnt]
		ls = ls[:len(lc)] // bounds-check elimination for ls[li]
		// Every span above this frame's belongs to an already-finished
		// subtree (spans are allocated in DFS order and the stack is LIFO:
		// the remaining frames are this node's siblings and its ancestors'
		// siblings, whose spans all end at or below f.off+f.cnt). Reclaim
		// that space so the buffers stay O(depth·lanes) instead of growing
		// with every visited node.
		laneC = laneC[:f.off+f.cnt]
		laneS = laneS[:f.off+f.cnt]

		d := g.driver[f.n]
		cls := classStop
		if d != netlist.NoCell {
			cls = g.class[d]
		}
		if cls == classStop {
			// Entry accounting only: the scalar DFS counts the entry (and
			// flags truncation if its cap is already met) before discovering
			// there is nothing to descend into.
			for _, p := range lc {
				if done[p] {
					continue
				}
				if nHits[p] >= limit32 {
					recs[p].more = true
					done[p] = true
					active--
					continue
				}
				delta[p]++
			}
			continue
		}

		ab := int(f.n) * K
		if cls == classDFF {
			cb, ckb := int(d)*K, int(g.clkNet[d])*K
			for li, p := range lc {
				if done[p] {
					continue
				}
				if nHits[p] >= limit32 {
					recs[p].more = true
					done[p] = true
					active--
					continue
				}
				delta[p]++
				k := int(j.corners[p])
				a, suffix := arr[ab+k], ls[li]
				// Untimed lanes hold an IEEE infinity, which saturates the sum
				// onto the prune side — no sentinel check needed.
				if setup {
					if a+suffix <= j.required[p] {
						continue
					}
				} else {
					if a+suffix >= j.required[p] {
						continue
					}
				}
				total := clk[ckb+k] + delay[cb+k] + suffix
				var slack float64
				if setup {
					slack = j.required[p] - total
				} else {
					slack = total - j.required[p]
				}
				if slack >= 0 {
					continue
				}
				recs[p].hits = append(recs[p].hits, pathHit{start: d, slack: slack})
				delta[p] = 0
				nHits[p]++
			}
			continue
		}

		// Combinational driver: prune each lane, and push the survivors'
		// span once for all input pins.
		cb := int(d) * K
		sOff := int32(len(laneC))
		for li, p := range lc {
			if done[p] {
				continue
			}
			if nHits[p] >= limit32 {
				recs[p].more = true
				done[p] = true
				active--
				continue
			}
			delta[p]++
			k := int(j.corners[p])
			a, suffix := arr[ab+k], ls[li]
			if setup {
				if a+suffix <= j.required[p] {
					continue
				}
			} else {
				if a+suffix >= j.required[p] {
					continue
				}
			}
			laneC = append(laneC, p)
			laneS = append(laneS, suffix+delay[cb+k])
		}
		cnt := int32(len(laneC)) - sOff
		if cnt == 0 {
			continue
		}
		lo, hi := g.cellInLo[d], g.cellInLo[d+1]
		if cnt == 1 {
			// One survivor: demote the subtree to solo frames and give
			// the span back — solo frames never touch the lane buffers.
			p, child := laneC[sOff], laneS[sOff]
			laneC = laneC[:sOff]
			laneS = laneS[:sOff]
			for jx := hi - 1; jx >= lo; jx-- {
				stack = append(stack, walkFrame{n: g.cellIn[jx], off: p, cnt: soloCnt, suffix: child})
			}
			continue
		}
		for jx := hi - 1; jx >= lo; jx-- {
			stack = append(stack, walkFrame{n: g.cellIn[jx], off: sOff, cnt: cnt})
		}
	}
	for p := range recs {
		if !done[p] {
			recs[p].more = delta[p] > 0
		}
	}
	return recs
}

// walkSolo is walkViolations for a single requesting corner: the same
// structural DFS with the suffix carried in the frame, no lane spans and
// no per-lane state — the common case for sparse violations, where the
// multi-lane machinery would be pure overhead. Reaching the cap stops
// the walk outright, exactly like the scalar DFS whose every subsequent
// entry would return at the budget check.
func (g *TimingGraph) walkSolo(st *batchState, j *enumJob, limit int) []enumRecord {
	K := st.K
	setup := j.typ == Setup
	arr, delay := st.arrMax, st.dmax
	if !setup {
		arr, delay = st.arrMin, st.dmin
	}
	clk := st.clk
	k := int(j.corners[0])
	req := j.required[0]

	var rec enumRecord
	var delta int32
	nHits := 0

	type soloFrame struct {
		n      netlist.NetID
		suffix float64
	}
	stack := make([]soloFrame, 1, 64)
	stack[0] = soloFrame{n: g.endpoints[j.ep].d}

	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if nHits >= limit {
			rec.more = true
			break
		}
		delta++
		d := g.driver[f.n]
		cls := classStop
		if d != netlist.NoCell {
			cls = g.class[d]
		}
		if cls == classStop {
			continue
		}
		a := arr[int(f.n)*K+k]
		if setup {
			if a+f.suffix <= req {
				continue
			}
		} else {
			if a+f.suffix >= req {
				continue
			}
		}
		if cls == classDFF {
			total := clk[int(g.clkNet[d])*K+k] + delay[int(d)*K+k] + f.suffix
			var slack float64
			if setup {
				slack = req - total
			} else {
				slack = total - req
			}
			if slack < 0 {
				rec.hits = append(rec.hits, pathHit{start: d, slack: slack})
				delta = 0
				nHits++
			}
			continue
		}
		child := f.suffix + delay[int(d)*K+k]
		lo, hi := g.cellInLo[d], g.cellInLo[d+1]
		for jx := hi - 1; jx >= lo; jx-- {
			stack = append(stack, soloFrame{n: g.cellIn[jx], suffix: child})
		}
	}
	if !rec.more {
		rec.more = delta > 0
	}
	return []enumRecord{rec}
}

// batchState is the mutable evaluation state of one AnalyzeCorners run:
// structure-of-arrays timing data, corner-contiguous per net/cell
// (index*K+k), so a node's K corner values share a cache line. The
// factor layer alone is corner-major (factorC), because Result.Factor
// exposes it per corner; consecutive cells of one corner stride K
// parallel cache-line streams, which prefetches fine for small K.
type batchState struct {
	g *TimingGraph
	K int

	setup, hold float64

	slab []float64 // pooled backing store of the layers below

	// SoA layers, [index*K + k].
	dmin, dmax     []float64 // per cell
	clk            []float64 // per net: clock arrival
	arrMax, arrMin []float64 // per net: data arrival
	hiS, loS       []float64 // propagate scratch

	factorC    [][]float64 // per-corner factors for Result.Factor (escapes)
	factorFlat []float64   // factorC's backing store, corner-major
}

// slabPool recycles evaluation slabs across AnalyzeCorners calls. Every
// lane of a recycled slab is either rewritten before it is read —
// computeDelays covers all cells, propagate covers every driven net and
// sentinel-fills g.untimed, computeClockArrivals zeroes g.clkRoots and
// writes every driven clock net — or never read at all, so no clearing
// sweep is needed. In a sweep loop this removes the dominant allocation:
// megabytes of zeroing plus the GC pressure of churning them.
var slabPool sync.Pool

func getSlab(n int) []float64 {
	if p, _ := slabPool.Get().(*[]float64); p != nil && cap(*p) >= n {
		return (*p)[:n]
	}
	return make([]float64, n)
}

func putSlab(s []float64) { slabPool.Put(&s) }

func newBatchState(g *TimingGraph, K int) *batchState {
	st := &batchState{g: g, K: K}
	cellN, netN := g.numCells*K, g.numNets*K
	st.slab = getSlab(2*cellN + 3*netN + 2*K)
	slab := st.slab
	st.dmin, slab = slab[:cellN:cellN], slab[cellN:]
	st.dmax, slab = slab[:cellN:cellN], slab[cellN:]
	st.clk, slab = slab[:netN:netN], slab[netN:]
	st.arrMax, slab = slab[:netN:netN], slab[netN:]
	st.arrMin, slab = slab[:netN:netN], slab[netN:]
	st.hiS, slab = slab[:K:K], slab[K:]
	st.loS = slab[:K:K]

	// The factor columns escape into Results, so they are allocated
	// fresh, never pooled.
	st.factorFlat = make([]float64, K*g.numCells)
	st.factorC = make([][]float64, K)
	for k := range st.factorC {
		st.factorC[k] = st.factorFlat[k*g.numCells : (k+1)*g.numCells : (k+1)*g.numCells]
	}
	return st
}

// release returns the pooled slab; the state must not be used after.
func (st *batchState) release() {
	putSlab(st.slab)
	st.slab = nil
}

// computeDelays fills the aged+scaled delay vectors for every corner.
// Factors go through the same Library.Factor interpolation the scalar
// analysis uses — not the separable shortcut — because bit-identity is
// the contract, and interpolating tabulated 1+x values is not bitwise
// the same as 1 + interpolating x. The grid position and interpolation
// weights depend only on the cell's SP, so they are hoisted out of the
// corner loop and applied to each corner's factor row directly.
func (st *batchState) computeDelays(cfg BatchConfig, libs []*aging.Library, scale float64) {
	g, K := st.g, st.K

	// Re-lay the characterization grid corner-contiguous: gridSoA[kind]
	// holds that kind's tabulated rows as [point*K + k], so the per-cell
	// interpolation below reads two contiguous K-runs instead of K
	// scattered per-corner rows. Values are copied verbatim — the
	// interpolation expression stays row[i0]*omf + row[i0+1]*frac.
	anyAged := false
	aged := make([]bool, K)
	points := 0
	for k, lib := range libs {
		if lib != nil {
			anyAged = true
			aged[k] = true
			points = len(lib.FactorRow(0))
		}
	}
	fC := st.factorC
	if !anyAged {
		// x*1.0 is bitwise x, so the fresh factor folds away.
		for k := range fC {
			col := fC[k]
			for i := range col {
				col[i] = 1
			}
		}
		for i := 0; i < g.numCells; i++ {
			t := cfg.Base.Timing[g.kind[i]]
			base := i * K
			dn := st.dmin[base : base+K : base+K]
			dx := st.dmax[base : base+K : base+K]
			for k := range dn {
				dn[k] = t.DelayMin * scale
				dx[k] = t.DelayMax * scale
			}
		}
		dff := cfg.Base.Timing[cell.DFF]
		st.setup = dff.Setup * scale
		st.hold = dff.Hold * scale
		return
	}

	// Fresh lanes are fixed up after the unconditional interpolation
	// below: an exact factor of 1 is not representable as a grid interp
	// (omf+frac need not round back to 1), and a per-lane branch in the
	// hot loop costs more than re-writing the handful of fresh lanes.
	var freshLanes []int
	for k, a := range aged {
		if !a {
			freshLanes = append(freshLanes, k)
		}
	}

	// Only the kinds the netlist instantiates get grid rows; the other
	// rows' slots stay dirty in the pooled slab and are never read (the
	// per-cell loop below indexes gridSoA by instantiated kinds only).
	gridFlat := getSlab(cell.NumKinds * points * K)
	var gridSoA [cell.NumKinds][]float64
	for _, kd := range g.usedKinds {
		gridSoA[kd] = gridFlat[int(kd)*points*K : (int(kd)+1)*points*K : (int(kd)+1)*points*K]
	}
	for k, lib := range libs {
		if lib == nil {
			// Keep the pooled slab's fresh-lane slots deterministic; the
			// interpolated value is discarded by the fixup either way.
			for _, kd := range g.usedKinds {
				dst := gridSoA[kd]
				for i := 0; i < points; i++ {
					dst[i*K+k] = 1
				}
			}
			continue
		}
		for _, kd := range g.usedKinds {
			dst := gridSoA[kd]
			for i, v := range lib.FactorRow(kd) {
				dst[i*K+k] = v
			}
		}
	}
	last := points - 1

	// Result.Factor columns are corner-major; stores walk their shared
	// backing store with a strength-reduced flat index (one column apart
	// per lane).
	fFlat := st.factorFlat

	for i := 0; i < g.numCells; i++ {
		t := cfg.Base.Timing[g.kind[i]]
		base := i * K
		dn := st.dmin[base : base+K : base+K]
		dx := st.dmax[base : base+K : base+K]
		var sp float64
		if cfg.Profile != nil {
			sp = cfg.Profile.SP[g.outNet[i]]
		}
		grid := gridSoA[g.kind[i]]
		var s0, s1 []float64
		var omf, frac float64
		if sp <= 0 || sp >= 1 {
			ci := 0
			if sp >= 1 {
				ci = last
			}
			s0 = grid[ci*K : ci*K+K]
			s1 = s0
			omf, frac = 1, 0
		} else {
			pos := sp * float64(last)
			i0 := int(pos)
			frac = pos - float64(i0)
			omf = 1 - frac
			s0 = grid[i0*K : i0*K+K]
			s1 = grid[(i0+1)*K : (i0+1)*K+K]
		}
		idx := i
		for k := range dn {
			f := s0[k]*omf + s1[k]*frac
			fFlat[idx] = f
			dn[k] = t.DelayMin * f * scale
			dx[k] = t.DelayMax * f * scale
			idx += g.numCells
		}
		for _, k := range freshLanes {
			fFlat[k*g.numCells+i] = 1
			dn[k] = t.DelayMin * scale
			dx[k] = t.DelayMax * scale
		}
	}
	putSlab(gridFlat)
	dff := cfg.Base.Timing[cell.DFF]
	st.setup = dff.Setup * scale
	st.hold = dff.Hold * scale
}

// computeClockArrivals propagates clock arrivals down the tree for every
// corner at once: clock cells appear in topo order, so one forward pass
// over the slice memo replaces the scalar recursion — per corner, the
// same root-to-leaf sum in the same association order.
func (st *batchState) computeClockArrivals() {
	g, K := st.g, st.K
	for _, n := range g.clkRoots {
		b := int(n) * K
		dst := st.clk[b : b+K : b+K]
		for k := range dst {
			dst[k] = 0
		}
	}
	for i := range g.clockOps {
		op := &g.clockOps[i]
		src := st.clk[int(op.in)*K : int(op.in)*K+K]
		dst := st.clk[int(op.out)*K : int(op.out)*K+K : int(op.out)*K+K]
		d := st.dmax[int(op.cellID)*K : int(op.cellID)*K+K]
		for k := range dst {
			dst[k] = src[k] + d[k]
		}
	}
}

// propagate runs the forward block-based arrival pass for every corner
// in one topo traversal. Untimed nets hold IEEE infinities, so there are
// no sentinel guards anywhere: the max/min over a cell's inputs treats
// an untimed lane as the identity, and adding the delay saturates an
// all-untimed result back onto the sentinel. Only the nets the pass
// never writes (g.untimed) need sentinel-filling up front; every comb
// output and flip-flop output is overwritten unconditionally. One- and
// two-input cells — the bulk of a real netlist — skip the scratch
// reduction entirely.
func (st *batchState) propagate() {
	g, K := st.g, st.K
	for _, n := range g.untimed {
		b := int(n) * K
		am := st.arrMax[b : b+K : b+K]
		an := st.arrMin[b : b+K : b+K]
		for k := range am {
			am[k] = negInf
			an[k] = posInf
		}
	}
	for i := range g.endpoints {
		e := &g.endpoints[i]
		qb, cb, kb := int(e.q)*K, int(e.cellID)*K, int(e.clk)*K
		am := st.arrMax[qb : qb+K : qb+K]
		an := st.arrMin[qb : qb+K : qb+K]
		ck := st.clk[kb : kb+K]
		dx := st.dmax[cb : cb+K]
		dn := st.dmin[cb : cb+K]
		for k := range am {
			am[k] = ck[k] + dx[k]
			an[k] = ck[k] + dn[k]
		}
	}
	for i := range g.combOps {
		st.propOp(i)
	}
}

// propOp re-evaluates one combinational op's output arrivals from its
// current input arrivals and delay lanes. It is the single propagation
// kernel: the full pass above calls it for every op in topo order, and
// the incremental worklist (incremental.go) calls it for exactly the
// dirty cone — same code, so re-evaluated lanes are bitwise what a full
// pass would write.
func (st *batchState) propOp(i int) {
	g, K := st.g, st.K
	hiS, loS := st.hiS, st.loS
	op := &g.combOps[i]
	lo, hi := g.cellInLo[op.cellID], g.cellInLo[op.cellID+1]
	ob, cb := int(op.out)*K, int(op.cellID)*K
	om := st.arrMax[ob : ob+K : ob+K]
	on := st.arrMin[ob : ob+K : ob+K]
	dx := st.dmax[cb : cb+K]
	dn := st.dmin[cb : cb+K]
	ab := int(g.cellIn[lo]) * K
	am := st.arrMax[ab : ab+K]
	an := st.arrMin[ab : ab+K]
	switch hi - lo {
	case 1:
		for k := range om {
			om[k] = am[k] + dx[k]
			on[k] = an[k] + dn[k]
		}
	case 2:
		bb := int(g.cellIn[lo+1]) * K
		bm := st.arrMax[bb : bb+K]
		bn := st.arrMin[bb : bb+K]
		// The builtin max/min lower to branchless MAXSD/MINSD here.
		// On this loop's domain (finite non-negative sums and the
		// ±Inf sentinels, never NaN or −0) they agree bit-for-bit
		// with the scalar engine's compare-and-assign.
		for k := range om {
			om[k] = max(am[k], bm[k]) + dx[k]
			on[k] = min(an[k], bn[k]) + dn[k]
		}
	default:
		copy(hiS, am)
		copy(loS, an)
		for j := lo + 1; j < hi; j++ {
			ib := int(g.cellIn[j]) * K
			im := st.arrMax[ib : ib+K]
			in := st.arrMin[ib : ib+K]
			for k, v := range im {
				hiS[k] = max(hiS[k], v)
			}
			for k, v := range in {
				loS[k] = min(loS[k], v)
			}
		}
		for k := range om {
			om[k] = hiS[k] + dx[k]
			on[k] = loS[k] + dn[k]
		}
	}
}

// delaysForCell recomputes one cell's factor and delay lanes — the
// incremental engine's per-cell form of computeDelays. It must mirror
// computeDelays bitwise: same interpolation expression over the same
// tabulated values in the same order (the grid SoA re-layout copies
// values verbatim, so reading the library rows directly interpolates the
// identical operands). The differential tests and FuzzIncrementalSTA
// hold the two to byte-identical Results.
func (st *batchState) delaysForCell(cfg BatchConfig, libs []*aging.Library, scale float64, anyAged bool, i int) {
	g, K := st.g, st.K
	t := cfg.Base.Timing[g.kind[i]]
	base := i * K
	dn := st.dmin[base : base+K : base+K]
	dx := st.dmax[base : base+K : base+K]
	if !anyAged {
		for k := range dn {
			st.factorFlat[k*g.numCells+i] = 1
			dn[k] = t.DelayMin * scale
			dx[k] = t.DelayMax * scale
		}
		return
	}
	var sp float64
	if cfg.Profile != nil {
		sp = cfg.Profile.SP[g.outNet[i]]
	}
	for k, lib := range libs {
		if lib == nil {
			st.factorFlat[k*g.numCells+i] = 1
			dn[k] = t.DelayMin * scale
			dx[k] = t.DelayMax * scale
			continue
		}
		row := lib.FactorRow(g.kind[i])
		last := len(row) - 1
		var s0, s1, omf, frac float64
		if sp <= 0 || sp >= 1 {
			ci := 0
			if sp >= 1 {
				ci = last
			}
			s0, s1 = row[ci], row[ci]
			omf, frac = 1, 0
		} else {
			pos := sp * float64(last)
			i0 := int(pos)
			frac = pos - float64(i0)
			omf = 1 - frac
			s0, s1 = row[i0], row[i0+1]
		}
		f := s0*omf + s1*frac
		st.factorFlat[k*g.numCells+i] = f
		dn[k] = t.DelayMin * f * scale
		dx[k] = t.DelayMax * f * scale
	}
}
