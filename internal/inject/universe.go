package inject

import (
	"math/rand"

	"repro/internal/fault"
	"repro/internal/module"
	"repro/internal/sta"
)

// SampleUniverse draws nPerClass injection specs per fault class from a
// seed — the campaign's fault universes. Stuck-at and multi-fault sites
// are drawn from the module's full DFF-pair space *excluding* the STA
// violation census (the pairs the lifting pipeline already targets), so
// the campaign measures what the suite catches beyond its design goal.
// The draw is fully determined by (module, excluded, nPerClass, seed).
func SampleUniverse(m *module.Module, excluded []sta.PairSummary, nPerClass int, seed uint64) []Spec {
	rng := rand.New(rand.NewSource(int64(seed)))
	dffs := m.Netlist.DFFs()
	excl := make(map[sta.Pair]bool, len(excluded))
	for _, p := range excluded {
		excl[p.Pair] = true
	}

	samplePair := func(used map[sta.Pair]bool) (sta.Pair, bool) {
		// Rejection-sample an off-path pair; the DFF-pair space is vastly
		// larger than any realistic exclusion census, so the bound is
		// only a safety net against a degenerate netlist.
		for try := 0; try < 64*len(dffs); try++ {
			p := sta.Pair{Start: dffs[rng.Intn(len(dffs))], End: dffs[rng.Intn(len(dffs))]}
			if p.Start == p.End || excl[p] || used[p] {
				continue
			}
			used[p] = true
			return p, true
		}
		return sta.Pair{}, false
	}
	randFault := func(used map[sta.Pair]bool) (fault.Spec, bool) {
		p, ok := samplePair(used)
		if !ok {
			return fault.Spec{}, false
		}
		ty := sta.Setup
		if rng.Intn(2) == 1 {
			ty = sta.Hold
		}
		return fault.Spec{
			Type:  ty,
			Start: p.Start,
			End:   p.End,
			C:     fault.CValue(rng.Intn(3)),
			Edge:  fault.AnyChange,
		}, true
	}

	var specs []Spec
	used := make(map[sta.Pair]bool)
	for i := 0; i < nPerClass; i++ {
		if f, ok := randFault(used); ok {
			specs = append(specs, Spec{Class: StuckAt, Unit: m.Name, Faults: []fault.Spec{f}})
		}
	}
	for i := 0; i < nPerClass; i++ {
		specs = append(specs, Spec{
			Class:   Transient,
			Unit:    m.Name,
			OpIndex: uint32(rng.Intn(64)),
			Bit:     uint8(rng.Intn(32)),
		})
	}
	for i := 0; i < nPerClass; i++ {
		specs = append(specs, Spec{
			Class:  Intermittent,
			Unit:   m.Name,
			Bit:    uint8(rng.Intn(32)),
			Seed:   uint16(1 + rng.Intn(0xFFFF)),
			Period: uint16(2 + rng.Intn(31)),
		})
	}
	for i := 0; i < nPerClass; i++ {
		// Two independent sites; distinct endpoints are guaranteed by
		// the shared dedup map (a pair is never drawn twice) plus a
		// local endpoint check.
		f1, ok1 := randFault(used)
		if !ok1 {
			break
		}
		var f2 fault.Spec
		ok2 := false
		for try := 0; try < 16 && !ok2; try++ {
			f2, ok2 = randFault(used)
			if ok2 && f2.End == f1.End {
				ok2 = false
			}
		}
		if !ok2 {
			break
		}
		specs = append(specs, Spec{Class: MultiFault, Unit: m.Name, Faults: []fault.Spec{f1, f2}})
	}
	return specs
}
