package inject

import (
	"bytes"
	"context"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/alu"
	"repro/internal/chaos"
	"repro/internal/embench"
	"repro/internal/fpu"
	"repro/internal/guard"
	"repro/internal/integrate"
	"repro/internal/lift"
	"repro/internal/module"
	"repro/internal/profile"
)

func runReport(t *testing.T, cfg Config) *Report {
	t.Helper()
	rep, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// diffGuardedCampaign runs one campaign unguarded and guarded (packed
// and scalar) and checks the guard contract:
//
//   - guarded packed == guarded scalar, byte-identical (the packed
//     differential extends to guarded campaigns);
//   - guarded vs unguarded reports differ ONLY by SDCEscape->Detected
//     reclassifications where a guard fired, plus the added guard
//     fields — every other field of every result is bit-equal, because
//     guards are observe-only.
//
// Returns (combos covered, escapes reclassified).
func diffGuardedCampaign(t *testing.T, m *module.Module, suiteCases int, suiteSeed int64, perClass int, seed uint64) (int, int) {
	t.Helper()
	suite := lift.RandomSuite(m, suiteCases, suiteSeed)
	img, err := suite.Image()
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Module:    m,
		Image:     img,
		Specs:     SampleUniverse(m, nil, perClass, seed),
		Seed:      seed,
		MemSize:   memSize,
		MaxCycles: 20_000_000,
	}
	return diffGuardedRun(t, m, cfg)
}

// diffGuardedRun is diffGuardedCampaign on a prepared config (Guards
// ignored): it owns the three runs and the comparisons.
func diffGuardedRun(t *testing.T, m *module.Module, cfg Config) (int, int) {
	t.Helper()
	cfg.Guards = nil
	unguarded := runReport(t, cfg)

	cfg.Guards = []string{"all"}
	cfg.Scalar = false
	guarded := runReport(t, cfg)
	gp, err := guarded.JSON()
	if err != nil {
		t.Fatal(err)
	}
	cfg.Scalar = true
	gs := runJSON(t, cfg)
	if !bytes.Equal(gp, gs) {
		t.Errorf("%s mode=%s seed=%d: guarded packed report differs from guarded scalar:\n--- scalar\n%s\n--- packed\n%s",
			m.Name, cfg.Mode, cfg.Seed, gs, gp)
	}

	return len(cfg.Specs), compareGuardedReports(t, m, unguarded, guarded)
}

// compareGuardedReports enforces the field-by-field delta contract
// between an unguarded report and its guarded twin and returns the
// number of SDCEscape->Detected moves.
func compareGuardedReports(t *testing.T, m *module.Module, ug, gd *Report) int {
	t.Helper()
	names := guard.Names(m.Name)
	if strings.Join(gd.Guards, ",") != strings.Join(names, ",") {
		t.Errorf("guarded report lists guards %v, want %v", gd.Guards, names)
	}
	if len(ug.Guards) != 0 {
		t.Errorf("unguarded report lists guards %v", ug.Guards)
	}
	if ug.Unit != gd.Unit || ug.Seed != gd.Seed || ug.MaxCycles != gd.MaxCycles ||
		ug.Total != gd.Total || ug.Completed != gd.Completed || len(ug.Results) != len(gd.Results) {
		t.Fatalf("report headers diverge: unguarded %d/%d results %d, guarded %d/%d results %d",
			ug.Completed, ug.Total, len(ug.Results), gd.Completed, gd.Total, len(gd.Results))
	}

	moved := map[string]int{}
	for i := range ug.Results {
		u, g := ug.Results[i], gd.Results[i]
		if u.Guard != "" || u.GuardOp != 0 {
			t.Fatalf("unguarded result %d carries guard fields: %+v", i, u)
		}
		// Everything except the outcome and the guard fields must be
		// bit-equal — guards may not perturb the replay.
		masked := g
		masked.Outcome, masked.Guard, masked.GuardOp = u.Outcome, "", 0
		if masked != u {
			t.Errorf("result %d differs beyond outcome/guard fields:\n unguarded %+v\n guarded   %+v", i, u, g)
			continue
		}
		if g.Guard != "" && g.GuardOp == 0 {
			t.Errorf("result %d: guard %q fired with zero op index", i, g.Guard)
		}
		switch {
		case g.Outcome == u.Outcome:
			// Fine; a guard may still have fired (e.g. on a masked run).
		case u.Outcome == SDCEscape.String() && g.Outcome == Detected.String() && g.Guard != "":
			moved[g.Class]++
		default:
			t.Errorf("result %d: illegal outcome move %q -> %q (guard %q)", i, u.Outcome, g.Outcome, g.Guard)
		}
		if g.Outcome == Detected.String() && g.Halt == "exit" && g.Guard == "" {
			t.Errorf("result %d: detected on a completed run without a guard fire", i)
		}
	}

	total := 0
	for i := range ug.Classes {
		uc, gc := ug.Classes[i], gd.Classes[i]
		mv := moved[uc.Class]
		total += mv
		if gc.Total != uc.Total || gc.Masked != uc.Masked || gc.StallCrash != uc.StallCrash {
			t.Errorf("class %s: guarded stats perturb untouched outcomes: %+v vs %+v", uc.Class, gc, uc)
		}
		if gc.Detected != uc.Detected+mv || gc.SDCEscape != uc.SDCEscape-mv {
			t.Errorf("class %s: detected %d->%d escape %d->%d, but %d reclassifications counted",
				uc.Class, uc.Detected, gc.Detected, uc.SDCEscape, gc.SDCEscape, mv)
		}
		if gc.GuardDetected != mv {
			t.Errorf("class %s: GuardDetected = %d, want %d", uc.Class, gc.GuardDetected, mv)
		}
		if gc.GuardFired < gc.GuardDetected {
			t.Errorf("class %s: GuardFired %d < GuardDetected %d", uc.Class, gc.GuardFired, gc.GuardDetected)
		}
		if uc.GuardDetected != 0 || uc.GuardFired != 0 {
			t.Errorf("class %s: unguarded stats carry guard counters: %+v", uc.Class, uc)
		}
	}
	return total
}

// TestGuardedMatchesUnguarded is the guard differential over the same
// netlist x spec x seed matrix as TestPackedMatchesScalar: with guards
// off the campaign is untouched; with guards on, the only permitted
// report delta is SDCEscape->Detected where the guard log fired.
func TestGuardedMatchesUnguarded(t *testing.T) {
	combos, moves := 0, 0
	aluSeeds := 10
	if testing.Short() {
		aluSeeds = 3
	}
	m := alu.Build()
	for s := 0; s < aluSeeds; s++ {
		c, mv := diffGuardedCampaign(t, m, 5, int64(100+s), 2, uint64(s+1))
		combos, moves = combos+c, moves+mv
	}
	if !testing.Short() {
		mf := fpu.Build()
		for s := 0; s < 4; s++ {
			c, mv := diffGuardedCampaign(t, mf, 3, int64(200+s), 1, uint64(s+1))
			combos, moves = combos+c, moves+mv
		}
		// The standalone suite self-checks, so escapes are rare there;
		// the embedded minver configuration is where the census found
		// the 100% escape hole, so it is where reclassifications must
		// actually happen.
		c, mv := diffGuardedRun(t, mf, minverCampaign(t, 1))
		combos, moves = combos+c, moves+mv
		if combos < 50 {
			t.Fatalf("only %d netlist x spec x seed combos covered, want >= 50", combos)
		}
		if moves == 0 {
			t.Error("no escape was ever reclassified across the full matrix — guards never detected anything")
		}
	}
	t.Logf("%d combos, %d escapes reclassified to detected", combos, moves)
}

// minverCampaign builds the reproducibility-contract campaign for the
// guard golden vectors: the FPU suite embedded into the minver workload
// (the configuration whose 100% transient/intermittent escape rate
// motivated the guards), universe seed 1.
func minverCampaign(t *testing.T, perClass int) Config {
	t.Helper()
	m := fpu.Build()
	suite := lift.RandomSuite(m, 3, 1)
	b, ok := embench.ByName("minver")
	if !ok {
		t.Fatal("minver workload missing")
	}
	app, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	prof := profile.Collect(app, memSize, 50_000_000)
	if prof == nil {
		t.Fatal("minver did not exit cleanly during profiling")
	}
	insts, err := suite.InstCount()
	if err != nil {
		t.Fatal(err)
	}
	site, err := integrate.ChooseSite(prof, insts, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	emb, err := integrate.Embed(app, suite, site)
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Module:    m,
		Image:     emb.Image,
		Mode:      "embedded",
		Specs:     SampleUniverse(m, nil, perClass, 1),
		Seed:      1,
		MemSize:   memSize,
		MaxCycles: 50_000_000,
		Guards:    []string{"all"},
	}
}

// TestGuardVerdictGoldenVectorsMinver pins the guard verdict stream on
// the minver embedded FPU campaign at seed 1 — the exact configuration
// EXPERIMENTS.md's escape tables regenerate. Each pin is
// "class outcome guard@op"; any change to guard evaluation order, the
// first-fire tie-break, or the campaign replay is a breaking change to
// the reproducibility contract and must show up here.
func TestGuardVerdictGoldenVectorsMinver(t *testing.T) {
	if testing.Short() {
		t.Skip("embedded campaign in -short mode")
	}
	cfg := minverCampaign(t, 2)
	rep := runReport(t, cfg)
	if rep.Partial {
		t.Fatalf("partial: %d/%d", rep.Completed, rep.Total)
	}
	want := []string{
		"stuck masked",
		"stuck masked",
		"transient detected addswap@9",
		"transient detected mulswap@7",
		"intermittent detected mulswap@20",
		"intermittent detected exprange@4",
		"multi masked",
		"multi detected mulswap@1",
	}
	var got []string
	for _, r := range rep.Results {
		pin := r.Class + " " + r.Outcome
		if r.Guard != "" {
			pin += " " + r.Guard + "@" + uitoa(r.GuardOp)
		}
		got = append(got, pin)
	}
	if len(got) != len(want) {
		t.Fatalf("verdict stream:\n%s", strings.Join(got, "\n"))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("verdict %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func uitoa(v uint64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// TestGuardedCheckpointRoundTrip: a guarded campaign writes the v2
// checkpoint schema carrying its guard list, and an interrupted guarded
// campaign resumes to the byte-identical report of an uninterrupted
// guarded run.
func TestGuardedCheckpointRoundTrip(t *testing.T) {
	cfg, _ := testCampaign(t, 2)
	cfg.Guards = []string{"all"}
	want := runJSON(t, cfg) // uninterrupted guarded reference

	cfg.CheckpointPath = filepath.Join(t.TempDir(), "campaign.json")
	cfg.CheckpointEvery = 3
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg.OnCheckpoint = func(done int) { cancel() }
	partial, err := Run(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !partial.Partial || partial.Completed == 0 || partial.Completed >= partial.Total {
		t.Fatalf("interrupted guarded campaign: completed %d/%d", partial.Completed, partial.Total)
	}

	cp, err := loadCheckpoint(chaos.OS{}, cfg.CheckpointPath)
	if err != nil {
		t.Fatal(err)
	}
	if cp.Version != checkpointVersion {
		t.Errorf("guarded checkpoint version = %d, want %d", cp.Version, checkpointVersion)
	}
	if want := guard.Names("ALU"); strings.Join(cp.Guards, ",") != strings.Join(want, ",") {
		t.Errorf("guarded checkpoint lists guards %v, want %v", cp.Guards, want)
	}

	cfg.OnCheckpoint = nil
	rep, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("resumed guarded report differs from uninterrupted run:\n%s\n---\n%s", got, want)
	}
}

// TestLegacyCheckpointGuardGate is the schema-compatibility contract
// for pre-guard checkpoints: a version-1 checkpoint written by an
// unguarded campaign (byte-identical to what pre-guard builds wrote)
// must resume verbatim when guards stay off, and must be cleanly
// rejected — naming both guard lists — when guards are turned on.
func TestLegacyCheckpointGuardGate(t *testing.T) {
	cfg, _ := testCampaign(t, 2)
	want := runJSON(t, cfg) // uninterrupted unguarded reference

	cfg.CheckpointPath = filepath.Join(t.TempDir(), "campaign.json")
	cfg.CheckpointEvery = 3
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg.OnCheckpoint = func(done int) { cancel() }
	partial, err := Run(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !partial.Partial || partial.Completed == 0 {
		t.Fatalf("interrupted campaign: completed %d/%d", partial.Completed, partial.Total)
	}
	cfg.OnCheckpoint = nil

	// Guards on: the unguarded results have no verdicts to reclassify
	// on, so mixing them with guarded classifications must be refused.
	gcfg := cfg
	gcfg.Guards = []string{"all"}
	_, err = Run(context.Background(), gcfg)
	if err == nil {
		t.Fatal("guarded campaign resumed an unguarded checkpoint")
	}
	if !strings.Contains(err.Error(), "without guards") {
		t.Errorf("rejection does not name the missing guards: %v", err)
	}

	// Guards off: resumes to the byte-identical unguarded report.
	rep, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatalf("legacy v1 checkpoint rejected with guards off: %v", err)
	}
	got, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("legacy resume differs from uninterrupted run:\n%s\n---\n%s", got, want)
	}
}

// TestGuardedCheckpointRejectedByMismatch: a guarded checkpoint must not
// be resumed by an unguarded campaign, nor by one running a different
// guard list.
func TestGuardedCheckpointRejectedByMismatch(t *testing.T) {
	cfg, _ := testCampaign(t, 1)
	cfg.Guards = []string{"all"}
	cfg.CheckpointPath = filepath.Join(t.TempDir(), "campaign.json")
	if _, err := Run(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}

	ucfg := cfg
	ucfg.Guards = nil
	_, err := Run(context.Background(), ucfg)
	if err == nil {
		t.Fatal("unguarded campaign resumed a guarded checkpoint")
	}
	if !strings.Contains(err.Error(), "guards") {
		t.Errorf("rejection does not mention guards: %v", err)
	}

	scfg := cfg
	scfg.Guards = []string{"res3"}
	_, err = Run(context.Background(), scfg)
	if err == nil {
		t.Fatal("campaign with a different guard list resumed the checkpoint")
	}
	if !strings.Contains(err.Error(), "res3") {
		t.Errorf("rejection does not name the requested guards: %v", err)
	}
}
