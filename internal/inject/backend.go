package inject

import (
	"fmt"

	"repro/internal/alu"
	"repro/internal/cell"
	"repro/internal/cpu"
	"repro/internal/fault"
	"repro/internal/fpu"
	"repro/internal/module"
)

// lfsr16 is a 16-bit Fibonacci LFSR (taps 16,14,13,11 — the same
// polynomial as the fault package's embedded hardware LFSR), stepped
// once per unit operation to gate intermittent flips.
type lfsr16 uint16

func (l *lfsr16) step() uint16 {
	s := uint16(*l)
	fb := (s>>15 ^ s>>13 ^ s>>12 ^ s>>10) & 1
	s = s<<1 | fb
	*l = lfsr16(s)
	return s
}

// flipper corrupts result bits of the golden model — the behavioural
// injector for the Transient and Intermittent classes. It is cheap:
// only the flip condition is evaluated per op, so these classes run at
// behavioural speed even inside a full embedded workload.
type flipper struct {
	golden func(op, a, b uint32) (result, flags uint32)
	bit    uint8

	transient bool
	opIndex   uint32
	n         uint32

	lfsr   lfsr16
	period uint32
}

func (f *flipper) exec(op, a, b uint32) (uint32, uint32, bool) {
	r, fl := f.golden(op, a, b)
	if f.transient {
		if f.n == f.opIndex {
			r ^= 1 << f.bit
		}
		f.n++
	} else if uint32(f.lfsr.step())%f.period == 0 {
		r ^= 1 << f.bit
	}
	return r, fl, true
}

type aluFlipper struct{ *flipper }

func (w aluFlipper) ExecALU(op alu.Op, a, b uint32) (uint32, uint32, bool) {
	return w.exec(uint32(op), a, b)
}

type fpuFlipper struct{ *flipper }

func (w fpuFlipper) ExecFPU(op fpu.Op, a, b uint32) (uint32, uint32, bool) {
	return w.exec(uint32(op), a, b)
}

// Attach builds the spec's faulty execution backend and installs it on
// the CPU's ALU or FPU seam. Netlist classes replace the unit with a
// gate-level failing netlist; behavioural classes wrap the golden model
// with a bit flipper.
func Attach(m *module.Module, c *cpu.CPU, s Spec) error {
	if s.Unit != m.Name {
		return fmt.Errorf("inject: spec targets %s but module is %s", s.Unit, m.Name)
	}
	var aluB cpu.ALUBackend
	var fpuB cpu.FPUBackend
	switch s.Class {
	case StuckAt, MultiFault:
		for _, f := range s.Faults {
			if err := checkSite(m, f); err != nil {
				return err
			}
		}
		var nl = m.Netlist
		if s.Class == StuckAt {
			nl = fault.FailingNetlist(m.Netlist, s.Faults[0])
		} else {
			var err error
			nl, err = fault.FailingNetlistMulti(m.Netlist, s.Faults...)
			if err != nil {
				return err
			}
		}
		if s.Unit == "ALU" {
			aluB = cpu.NewNetlistALU(m, nl)
		} else {
			fpuB = cpu.NewNetlistFPU(m, nl)
		}
	case Transient, Intermittent:
		fl := &flipper{golden: m.Golden, bit: s.Bit}
		if s.Class == Transient {
			fl.transient = true
			fl.opIndex = s.OpIndex
		} else {
			fl.lfsr = lfsr16(s.Seed)
			fl.period = uint32(s.Period)
		}
		if s.Unit == "ALU" {
			aluB = aluFlipper{fl}
		} else {
			fpuB = fpuFlipper{fl}
		}
	default:
		return fmt.Errorf("inject: unknown class %v", s.Class)
	}
	if aluB != nil {
		c.ALU = aluB
	}
	if fpuB != nil {
		c.FPU = fpuB
	}
	return nil
}

// checkSite bounds-checks a failure site against the module's netlist:
// both cells must exist and be flip-flops, or FailingNetlist would
// instrument garbage (or panic on an out-of-range ID).
func checkSite(m *module.Module, f fault.Spec) error {
	nl := m.Netlist
	for _, id := range []int{int(f.Start), int(f.End)} {
		if id < 0 || id >= len(nl.Cells) {
			return fmt.Errorf("inject: cell %d out of range for %s (%d cells)", id, m.Name, len(nl.Cells))
		}
		if nl.Cells[id].Kind != cell.DFF {
			return fmt.Errorf("inject: cell %d (%s) is not a flip-flop", id, nl.Cells[id].Name)
		}
	}
	return nil
}
