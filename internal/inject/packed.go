package inject

import (
	"context"
	"fmt"
	"math/bits"

	"repro/internal/alu"
	"repro/internal/cpu"
	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/fpu"
	"repro/internal/module"
	"repro/internal/netlist"
	"repro/internal/sta"
)

// This file is the packed campaign path: classic concurrent fault
// simulation over the execution-unit seam. Up to 63 netlist-class
// injections (stuck-at, multi-fault) share ONE gate-level run — the
// engine's 64-lane FaultedPacked evaluator carries the golden circuit
// in lane 0 and one failure model per other lane — instead of 63
// full scalar golden-vs-faulty replays. The protocol per wave:
//
//  1. Run the image once on a CPU whose unit backend drives the packed
//     evaluator with module.Driver.Exec's exact present/wait protocol.
//     Lane 0's responses are cross-checked against the behavioural
//     golden model every op (any disagreement voids the wave and falls
//     back to the scalar baseline).
//  2. A fault lane retires at its first physically divergent response:
//     a different result/flags word bit, out_valid high early, or
//     out_valid still low when the golden lane's result rose. At
//     retirement the lane's full netlist state (plus overlay history
//     and LFSR state) is snapshotted.
//  3. A retired lane finishes on a scalar continuation: golden
//     responses up to the divergence op (the lane was bit-identical to
//     golden until then), then a fault.FailingNetlist simulation seeded
//     from the snapshot — byte-identical, by construction and by the
//     TestPackedMatchesScalar differential, to the scalar replay.
//  4. A lane that never retires ran the whole image without any
//     observable difference: classified Masked for free.
//
// Behavioural classes (transient, intermittent) are not packed — they
// already run at behavioural speed — but get a shortcut: a flip whose
// firing op lies beyond the golden run's unit-op count can never fire,
// so the injection is Masked without a replay.

// goldenInfo caches what every injection is compared against: the
// golden run's state digest, cycle count, and unit-operation count.
type goldenInfo struct {
	digest uint64
	cycles uint64
	ops    uint64 // unit (backend) operations the golden run executes
}

// countALU / countFPU are golden-model backends that count operations —
// behaviourally identical to the nil backend.
type countALU struct{ n *uint64 }

func (c countALU) ExecALU(op alu.Op, a, b uint32) (uint32, uint32, bool) {
	*c.n++
	return alu.Eval(op, a, b), alu.Flags(a, b), true
}

type countFPU struct{ n *uint64 }

func (c countFPU) ExecFPU(op fpu.Op, a, b uint32) (uint32, uint32, bool) {
	*c.n++
	r, f := fpu.Eval(op, a, b)
	return r, f, true
}

// goldenRun executes the fault-free image and captures the oracle. When
// guards are configured it also runs them over the golden execution and
// fails the campaign if any fires: a guard that flags a fault-free run
// violates the zero-false-positive contract, and every downstream
// Escape-to-Detected reclassification would be meaningless.
func goldenRun(cfg *Config) (*goldenInfo, error) {
	g := &goldenInfo{}
	c := cpu.New(cfg.MemSize)
	if cfg.Module.Name == "ALU" {
		c.ALU = countALU{&g.ops}
	} else {
		c.FPU = countFPU{&g.ops}
	}
	log := attachGuards(cfg, c)
	c.Load(cfg.Image)
	if halt := c.Run(cfg.MaxCycles); halt != cpu.HaltExit || c.ExitCode != 0 {
		return nil, fmt.Errorf("inject: golden run failed (halt=%v exit=%d)", halt, c.ExitCode)
	}
	if log != nil && log.Fired() {
		return nil, fmt.Errorf("inject: guard %s fired on the fault-free golden run (op %d of %d) — "+
			"false positive, refusing to classify with it", log.First, log.FirstOp, log.Ops)
	}
	g.digest = digest(c)
	g.cycles = c.Cycles
	return g, nil
}

// diverge records the first unit operation whose response (result,
// flags, ok) differs from the golden model — the divergence-cycle
// oracle. The scalar baseline and the packed continuations share this
// wrapper, so both paths report identical DivergedAt values.
type diverge struct {
	golden func(op, a, b uint32) (uint32, uint32)
	c      *cpu.CPU
	at     uint64
	hit    bool
}

func (d *diverge) observe(op, a, b, r, f uint32, ok bool) {
	if d.hit {
		return
	}
	gr, gf := d.golden(op, a, b)
	if !ok || r != gr || f != gf {
		d.hit = true
		d.at = d.c.Cycles
	}
}

type trackALU struct {
	inner cpu.ALUBackend
	d     *diverge
}

func (t trackALU) ExecALU(op alu.Op, a, b uint32) (uint32, uint32, bool) {
	r, f, ok := t.inner.ExecALU(op, a, b)
	t.d.observe(uint32(op), a, b, r, f, ok)
	return r, f, ok
}

type trackFPU struct {
	inner cpu.FPUBackend
	d     *diverge
}

func (t trackFPU) ExecFPU(op fpu.Op, a, b uint32) (uint32, uint32, bool) {
	r, f, ok := t.inner.ExecFPU(op, a, b)
	t.d.observe(uint32(op), a, b, r, f, ok)
	return r, f, ok
}

// track wraps whichever unit backend is installed on c with the
// divergence recorder.
func track(m *module.Module, c *cpu.CPU) *diverge {
	d := &diverge{golden: m.Golden, c: c}
	if c.ALU != nil {
		c.ALU = trackALU{c.ALU, d}
	}
	if c.FPU != nil {
		c.FPU = trackFPU{c.FPU, d}
	}
	return d
}

// overlayFor translates one fault site into the engine's lane-masked
// overlay form (the engine cannot import internal/fault).
func overlayFor(f fault.Spec, lanes uint64) engine.Overlay {
	o := engine.Overlay{
		Lanes: lanes,
		Start: f.Start,
		End:   f.End,
		C:     engine.OverlayC(f.C),
		Edge:  engine.OverlayEdge(f.Edge),
	}
	if f.Type == sta.Hold {
		o.Check = engine.OverlayHold
	}
	return o
}

// retKind says how a lane's physical divergence presented.
type retKind uint8

const (
	// retReturned: out_valid rose with a divergent result/flags value
	// (or rose early) — the response the CPU would have consumed is
	// recorded in the retirement.
	retReturned retKind = iota
	// retWait: out_valid was still low when the golden lane's response
	// rose — the continuation resumes the driver's wait loop.
	retWait
)

// retirement is one retired lane: where it diverged and the full lane
// state snapshot its continuation is seeded from.
type retirement struct {
	lane  int // wave lane (1..63)
	kind  retKind
	op    uint64 // 0-based unit-op index of the physical divergence
	wait  int    // retWait: driver wait-loop index at which golden rose
	r, f  uint32 // retReturned: the lane's response
	snap  []bool // per original net: lane value at the snapshot settle
	hists []bool // per fault site: overlay history-register value
	lfsr  uint16 // shared CRandom LFSR state
}

// packedBackend implements the unit backend over a FaultedPacked
// evaluator for one wave. Lane 0 recomputes the golden run (verified
// against the behavioural model op by op); fault lanes retire at their
// first divergent response.
type packedBackend struct {
	m      *module.Module
	pe     *engine.FaultedPacked
	siteLo []int // per lane: first overlay site index
	siteHi []int // per lane: one past the last overlay site index

	live     uint64 // fault lanes still bit-identical to lane 0
	ops      uint64
	rets     []*retirement
	fellBack bool

	ovNet   netlist.NetID
	resBits netlist.Bus
	flgBits netlist.Bus
}

func (b *packedBackend) exec(op, a, bb uint32) (uint32, uint32, bool) {
	gr, gf := b.m.Golden(op, a, bb)
	k := b.ops
	b.ops++
	if b.fellBack {
		return gr, gf, true
	}
	pe := b.pe
	pe.SetInput(module.PortInValid, 1)
	pe.SetInput(module.PortOp, uint64(op))
	pe.SetInput(module.PortA, uint64(a))
	pe.SetInput(module.PortB, uint64(bb))
	pe.Step()
	pe.SetInput(module.PortInValid, 0)
	// The wait loop mirrors module.Driver.Exec: check the settled
	// out_valid, step on miss, for Latency+StallLimit iterations.
	i0 := -1
	bound := b.m.Latency + module.StallLimit
	for i := 0; i < bound; i++ {
		pe.Settle()
		ov := pe.Word(b.ovNet)
		if ov&1 == 1 {
			i0 = i
			break
		}
		// Lanes whose out_valid rose before the golden lane's diverge
		// by timing; their (early) response is what Exec would return.
		if early := ov & b.live; early != 0 {
			b.retireValues(early, k)
		}
		pe.Edge()
	}
	if i0 < 0 {
		// The golden lane stalled: the netlist disagrees with the
		// behavioural model. Void the wave; the driver falls back to
		// the scalar baseline.
		b.fellBack = true
		return gr, gf, true
	}
	r0, f0, mism := b.readOutputs()
	if r0 != gr || f0 != gf {
		b.fellBack = true
		return gr, gf, true
	}
	if late := ^pe.Word(b.ovNet) & b.live; late != 0 {
		b.retireWait(late, k, i0)
	}
	// After the late lanes retired, every live lane has out_valid high;
	// those with a mismatching result/flags bit diverge by value.
	if val := mism & b.live; val != 0 {
		b.retireValues(val, k)
	}
	return r0, f0, true
}

// readOutputs extracts lane 0's result and flags and accumulates a
// which-lanes-differ mask: for each output bit net, a lane's bit is set
// in mism iff it differs from lane 0's bit.
func (b *packedBackend) readOutputs() (r0, f0 uint32, mism uint64) {
	for i, n := range b.resBits {
		w := b.pe.Word(n)
		bit := w & 1
		r0 |= uint32(bit) << uint(i)
		mism |= w ^ (0 - bit)
	}
	for i, n := range b.flgBits {
		w := b.pe.Word(n)
		bit := w & 1
		f0 |= uint32(bit) << uint(i)
		mism |= w ^ (0 - bit)
	}
	return r0, f0, mism
}

func (b *packedBackend) retireValues(mask uint64, k uint64) {
	for m := mask; m != 0; m &= m - 1 {
		lane := bits.TrailingZeros64(m)
		var r, f uint32
		for i, n := range b.resBits {
			if b.pe.Lane(n, lane) {
				r |= 1 << uint(i)
			}
		}
		for i, n := range b.flgBits {
			if b.pe.Lane(n, lane) {
				f |= 1 << uint(i)
			}
		}
		b.rets = append(b.rets, b.snapshot(lane, retReturned, k, 0, r, f))
	}
	b.live &^= mask
	b.pe.Retire(mask)
}

func (b *packedBackend) retireWait(mask uint64, k uint64, i0 int) {
	for m := mask; m != 0; m &= m - 1 {
		lane := bits.TrailingZeros64(m)
		b.rets = append(b.rets, b.snapshot(lane, retWait, k, i0, 0, 0))
	}
	b.live &^= mask
	b.pe.Retire(mask)
}

// snapshot captures a retiring lane at the current settled state:
// original-net values, overlay history registers, LFSR. The snapshot is
// taken before the clock edge of the check iteration — exactly the
// state a scalar driver holds when its wait-loop check runs.
func (b *packedBackend) snapshot(lane int, kind retKind, k uint64, i0 int, r, f uint32) *retirement {
	ret := &retirement{
		lane: lane, kind: kind, op: k, wait: i0, r: r, f: f,
		snap: make([]bool, b.m.Netlist.NumNets),
		lfsr: b.pe.LFSR(),
	}
	b.pe.ExtractLane(lane, ret.snap)
	lo, hi := b.siteLo[lane], b.siteHi[lane]
	ret.hists = make([]bool, hi-lo)
	for si := lo; si < hi; si++ {
		ret.hists[si-lo] = b.pe.HistLane(si, lane)
	}
	return ret
}

type aluPacked struct{ *packedBackend }

func (w aluPacked) ExecALU(op alu.Op, a, b uint32) (uint32, uint32, bool) {
	return w.exec(uint32(op), a, b)
}

type fpuPacked struct{ *packedBackend }

func (w fpuPacked) ExecFPU(op fpu.Op, a, b uint32) (uint32, uint32, bool) {
	return w.exec(uint32(op), a, b)
}

// faultLane is the lane a continuation's single failure model runs in
// (lane 0 is reserved for the golden circuit).
const faultLane = 1

// resumeBackend finishes one retired lane: golden responses up to the
// divergence op (the lane was bit-identical to the golden circuit until
// then), the recorded divergent response (or the rest of the wait loop)
// at the divergence op, then a single-lane faulted evaluation seeded
// from the snapshot for every later op. Running the suffix on a
// FaultedPacked — rather than a freshly instrumented failing netlist —
// reuses the module's cached compiled Program: a continuation costs
// only its overlay compilation, not a netlist build plus engine
// compile per retired lane.
type resumeBackend struct {
	m    *module.Module
	spec Spec
	ret  *retirement
	n    uint64
	err  error

	pe      *engine.FaultedPacked
	ovNet   netlist.NetID
	resBits netlist.Bus
	flgBits netlist.Bus
}

func (b *resumeBackend) exec(op, a, bb uint32) (uint32, uint32, bool) {
	n := b.n
	b.n++
	if n < b.ret.op {
		r, f := b.m.Golden(op, a, bb)
		return r, f, true
	}
	if n == b.ret.op {
		if err := b.seed(); err != nil {
			b.err = err
			return 0, 0, false
		}
		if b.ret.kind == retReturned {
			return b.ret.r, b.ret.f, true
		}
		// retWait: the packed check at iteration `wait` saw this lane's
		// out_valid still low. Resume Driver.Exec's wait loop from the
		// next iteration: the Step of the failed check first, then
		// check-step until the response rises or the stall bound hits.
		b.pe.Step()
		for i := b.ret.wait + 1; i < b.m.Latency+module.StallLimit; i++ {
			b.pe.Settle()
			if r, f, ok := b.read(); ok {
				return r, f, true
			}
			b.pe.Edge()
		}
		return 0, 0, false
	}
	return b.execFaulted(op, a, bb)
}

// execFaulted mirrors module.Driver.Exec over the seeded evaluator.
func (b *resumeBackend) execFaulted(op, a, bb uint32) (uint32, uint32, bool) {
	pe := b.pe
	pe.SetInput(module.PortInValid, 1)
	pe.SetInput(module.PortOp, uint64(op))
	pe.SetInput(module.PortA, uint64(a))
	pe.SetInput(module.PortB, uint64(bb))
	pe.Step()
	pe.SetInput(module.PortInValid, 0)
	for i := 0; i < b.m.Latency+module.StallLimit; i++ {
		pe.Settle()
		if r, f, ok := b.read(); ok {
			return r, f, true
		}
		pe.Edge()
	}
	return 0, 0, false
}

// read returns the fault lane's settled response, ok=false while
// out_valid is low.
func (b *resumeBackend) read() (uint32, uint32, bool) {
	if !b.pe.Lane(b.ovNet, faultLane) {
		return 0, 0, false
	}
	var r, f uint32
	for i, n := range b.resBits {
		if b.pe.Lane(n, faultLane) {
			r |= 1 << uint(i)
		}
	}
	for i, n := range b.flgBits {
		if b.pe.Lane(n, faultLane) {
			f |= 1 << uint(i)
		}
	}
	return r, f, true
}

// seed compiles the spec's overlays into a fresh single-lane evaluator
// and forces it into the snapshotted state: every net's value
// broadcast, the overlay history registers (site order matches fault
// order on both sides), and the shared LFSR.
func (b *resumeBackend) seed() error {
	overlays := make([]engine.Overlay, len(b.spec.Faults))
	for i, f := range b.spec.Faults {
		overlays[i] = overlayFor(f, 1<<faultLane)
	}
	fp, err := engine.CompileFaulted(engine.Cached(b.m.Netlist), overlays)
	if err != nil {
		return fmt.Errorf("inject: continuation for %s: %w", b.spec.String(), err)
	}
	pe := engine.NewFaultedPacked(fp)
	for n, v := range b.ret.snap {
		var w uint64
		if v {
			w = ^uint64(0)
		}
		pe.SetWord(netlist.NetID(n), w)
	}
	for si, v := range b.ret.hists {
		var w uint64
		if v {
			w = ^uint64(0)
		}
		pe.SetHist(si, w)
	}
	pe.SetLFSR(b.ret.lfsr)
	b.pe = pe

	nl := b.m.Netlist
	ovPort, _ := nl.FindOutput(module.PortOutValid)
	resPort, _ := nl.FindOutput(module.PortResult)
	flgPort, _ := nl.FindOutput(module.PortFlags)
	b.ovNet = ovPort.Bits[0]
	b.resBits = resPort.Bits
	b.flgBits = flgPort.Bits
	return nil
}

type aluResume struct{ *resumeBackend }

func (w aluResume) ExecALU(op alu.Op, a, b uint32) (uint32, uint32, bool) {
	return w.exec(uint32(op), a, b)
}

type fpuResume struct{ *resumeBackend }

func (w fpuResume) ExecFPU(op fpu.Op, a, b uint32) (uint32, uint32, bool) {
	return w.exec(uint32(op), a, b)
}

// runContinuation classifies one retired lane by running the image on a
// fresh CPU with the resume backend. ok=false means ctx interrupted the
// run — the injection stays pending.
func runContinuation(ctx context.Context, cfg *Config, g *goldenInfo, idx int, ret *retirement) (Result, bool, error) {
	s := cfg.Specs[idx]
	c := cpu.New(cfg.MemSize)
	rb := &resumeBackend{m: cfg.Module, spec: s, ret: ret}
	if s.Unit == "ALU" {
		c.ALU = aluResume{rb}
	} else {
		c.FPU = fpuResume{rb}
	}
	d := track(cfg.Module, c)
	log := attachGuards(cfg, c)
	c.Load(cfg.Image)
	halt := c.RunCtx(ctx, cfg.MaxCycles)
	if halt == cpu.HaltInterrupted {
		return Result{}, false, nil
	}
	if rb.err != nil {
		return Result{}, false, fmt.Errorf("injection %d (%s): %w", idx, s.String(), rb.err)
	}
	return finish(cfg, idx, c, halt, g, d, log), true, nil
}

// waveAcct is one unit's contribution to the campaign's PackedStats.
type waveAcct struct {
	waves, lanesUsed, retired, masked, fallbacks int
	savedOps                                     uint64
	behShortcut, behReplayed                     int
}

// runPackedWave runs one packed wave of up to engine.Lanes-1
// netlist-class injections. Returned slices are indexed like idxs;
// done[i]=false means injection idxs[i] stays pending (interrupted).
func runPackedWave(ctx context.Context, cfg *Config, g *goldenInfo, idxs []int) ([]Result, []bool, waveAcct, error) {
	results := make([]Result, len(idxs))
	done := make([]bool, len(idxs))
	var acct waveAcct

	var overlays []engine.Overlay
	siteLo := make([]int, len(idxs)+1)
	siteHi := make([]int, len(idxs)+1)
	for i, idx := range idxs {
		lane := i + 1
		siteLo[lane] = len(overlays)
		for _, f := range cfg.Specs[idx].Faults {
			if err := checkSite(cfg.Module, f); err != nil {
				return nil, nil, acct, fmt.Errorf("injection %d (%s): %w", idx, cfg.Specs[idx].String(), err)
			}
			overlays = append(overlays, overlayFor(f, uint64(1)<<uint(lane)))
		}
		siteHi[lane] = len(overlays)
	}
	fp, err := engine.CompileFaulted(engine.Cached(cfg.Module.Netlist), overlays)
	if err != nil {
		return nil, nil, acct, fmt.Errorf("inject: packed wave: %w", err)
	}
	nl := cfg.Module.Netlist
	ovPort, _ := nl.FindOutput(module.PortOutValid)
	resPort, _ := nl.FindOutput(module.PortResult)
	flgPort, _ := nl.FindOutput(module.PortFlags)
	pb := &packedBackend{
		m: cfg.Module, pe: engine.NewFaultedPacked(fp),
		siteLo: siteLo, siteHi: siteHi,
		live:  (uint64(1)<<uint(len(idxs)+1) - 1) &^ 1,
		ovNet: ovPort.Bits[0], resBits: resPort.Bits, flgBits: flgPort.Bits,
	}
	c := cpu.New(cfg.MemSize)
	if cfg.Module.Name == "ALU" {
		c.ALU = aluPacked{pb}
	} else {
		c.FPU = fpuPacked{pb}
	}
	c.Load(cfg.Image)
	halt := c.RunCtx(ctx, cfg.MaxCycles)
	if halt == cpu.HaltInterrupted {
		return results, done, acct, nil // whole wave stays pending
	}
	if pb.fellBack || halt != cpu.HaltExit || c.ExitCode != 0 || digest(c) != g.digest {
		// The gate-level golden lane disagreed with the behavioural
		// model, so lane comparisons prove nothing. Replay the whole
		// wave on the scalar baseline.
		acct.fallbacks = len(idxs)
		for i, idx := range idxs {
			if ctx.Err() != nil {
				break
			}
			r, ok, err := runOne(ctx, cfg, idx, g)
			if err != nil {
				return results, done, acct, err
			}
			if ok {
				results[i], done[i] = r, true
			}
		}
		return results, done, acct, nil
	}
	acct.waves = 1
	acct.lanesUsed = len(idxs)
	acct.retired = len(pb.rets)
	for _, ret := range pb.rets {
		acct.savedOps += g.ops - (ret.op + 1)
	}
	// Lanes that never retired were bit-identical to the golden lane for
	// the entire run: Masked, with the golden run's cycles and digest,
	// no replay needed.
	for i, idx := range idxs {
		if pb.live>>uint(i+1)&1 == 1 {
			s := cfg.Specs[idx]
			results[i] = Result{
				Index: idx, Spec: s.String(), Class: s.Class.String(),
				Outcome: Masked.String(), Halt: cpu.HaltExit.String(),
				Cycles: g.cycles, Digest: g.digest,
			}
			done[i] = true
			acct.masked++
		}
	}
	for _, ret := range pb.rets {
		if ctx.Err() != nil {
			break
		}
		i := ret.lane - 1
		r, ok, err := runContinuation(ctx, cfg, g, idxs[i], ret)
		if err != nil {
			return results, done, acct, err
		}
		if ok {
			results[i], done[i] = r, true
		}
	}
	return results, done, acct, nil
}

// flipFires reports whether a behavioural injection's flip condition
// fires within the golden run's unit-op count. A flip that never fires
// leaves the run bit-identical to golden.
func flipFires(s Spec, ops uint64) bool {
	switch s.Class {
	case Transient:
		return uint64(s.OpIndex) < ops
	case Intermittent:
		l := lfsr16(s.Seed)
		p := uint32(s.Period)
		for i := uint64(0); i < ops; i++ {
			if uint32(l.step())%p == 0 {
				return true
			}
		}
		return false
	}
	return true
}

// runBehavioural classifies one behavioural-class injection: Masked for
// free when the flip cannot fire within the golden run, a full scalar
// replay otherwise. replayed=false marks the shortcut.
func runBehavioural(ctx context.Context, cfg *Config, g *goldenInfo, idx int) (r Result, ok, replayed bool, err error) {
	s := cfg.Specs[idx]
	if !flipFires(s, g.ops) {
		return Result{
			Index: idx, Spec: s.String(), Class: s.Class.String(),
			Outcome: Masked.String(), Halt: cpu.HaltExit.String(),
			Cycles: g.cycles, Digest: g.digest,
		}, true, false, nil
	}
	r, ok, err = runOne(ctx, cfg, idx, g)
	return r, ok, true, err
}

// PackedClassStats is one fault class's packed-path accounting.
type PackedClassStats struct {
	Class string

	// Netlist classes (stuck, multi): wave packing and retirement.
	Waves        int    // packed waves run
	LaneSlots    int    // Waves x 63 — available fault lanes
	LanesUsed    int    // injections carried in those lanes
	Retired      int    // lanes that physically diverged -> continuations
	MaskedInWave int    // lanes classified Masked with no scalar work
	Fallbacks    int    // injections replayed scalar after a wave was voided
	SavedLaneOps uint64 // unit ops not simulated thanks to early retirement

	// Behavioural classes (transient, intermittent): shortcut accounting.
	Shortcut int // classified Masked analytically (flip cannot fire)
	Replayed int // full behavioural replays
}

// Occupancy is LanesUsed / LaneSlots — how full the packed waves were.
func (s *PackedClassStats) Occupancy() float64 {
	if s.LaneSlots == 0 {
		return 0
	}
	return float64(s.LanesUsed) / float64(s.LaneSlots)
}

// PackedStats reports what the packed campaign path did and skipped,
// per fault universe. It is computed fresh per Run (not persisted in
// checkpoints, so resumed campaigns report only their own work).
type PackedStats struct {
	// GoldenOps is the golden run's unit-operation count — the per-lane
	// cost baseline the savings are measured against.
	GoldenOps uint64
	Classes   []PackedClassStats
}

// Savings is the fraction of retired lanes' unit ops that early
// retirement skipped, over the packed lanes of class stats row s.
func Savings(goldenOps uint64, s *PackedClassStats) float64 {
	total := uint64(s.LanesUsed) * goldenOps
	if total == 0 {
		return 0
	}
	return float64(s.SavedLaneOps) / float64(total)
}

// TotalSavings aggregates Savings over every class: the fraction of
// per-lane unit-op work (LanesUsed x GoldenOps) that wave sharing and
// early retirement avoided replaying.
func (s *PackedStats) TotalSavings() float64 {
	var saved, total uint64
	for i := range s.Classes {
		saved += s.Classes[i].SavedLaneOps
		total += uint64(s.Classes[i].LanesUsed) * s.GoldenOps
	}
	if total == 0 {
		return 0
	}
	return float64(saved) / float64(total)
}

func newPackedStats(g *goldenInfo) *PackedStats {
	ps := &PackedStats{GoldenOps: g.ops}
	for _, cl := range Classes() {
		ps.Classes = append(ps.Classes, PackedClassStats{Class: cl.String()})
	}
	return ps
}

func (ps *PackedStats) merge(cl Class, a waveAcct) {
	for i := range ps.Classes {
		if ps.Classes[i].Class != cl.String() {
			continue
		}
		s := &ps.Classes[i]
		s.Waves += a.waves
		s.LaneSlots += a.waves * (engine.Lanes - 1)
		s.LanesUsed += a.lanesUsed
		s.Retired += a.retired
		s.MaskedInWave += a.masked
		s.Fallbacks += a.fallbacks
		s.SavedLaneOps += a.savedOps
		s.Shortcut += a.behShortcut
		s.Replayed += a.behReplayed
	}
}
