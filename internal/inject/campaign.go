package inject

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"os"

	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/lift"
	"repro/internal/module"
	"repro/internal/par"
)

// Outcome classifies one injection run against the golden execution.
type Outcome int

// Injection outcomes.
const (
	// Detected: the suite trapped (ebreak) — the built-in detection
	// mechanism caught the fault.
	Detected Outcome = iota
	// Masked: the program ran to completion with an architectural state
	// identical to the golden run; the fault had no effect.
	Masked
	// SDCEscape: the program ran to completion but its final state
	// differs from golden — a silent data corruption the suite missed.
	SDCEscape
	// StallCrash: the program hung (handshake stall, cycle-budget
	// exhaustion) or faulted (bad memory access, undecodable fetch) —
	// loud failures an OS-level watchdog would catch.
	StallCrash
)

func (o Outcome) String() string {
	switch o {
	case Detected:
		return "detected"
	case Masked:
		return "masked"
	case SDCEscape:
		return "sdc-escape"
	case StallCrash:
		return "stall-crash"
	}
	return fmt.Sprintf("outcome(%d)", int(o))
}

// classify maps a finished (non-interrupted) halt reason to an outcome.
// The golden run is known to HaltExit within the same cycle budget, so
// HaltLimit on the faulty run means the fault made the program hang.
func classify(halt cpu.HaltReason, digestEqual bool) Outcome {
	switch halt {
	case cpu.HaltBreak:
		return Detected
	case cpu.HaltExit:
		if digestEqual {
			return Masked
		}
		return SDCEscape
	default: // HaltStalled, HaltFault, HaltLimit
		return StallCrash
	}
}

// Config tunes one injection campaign.
type Config struct {
	Module *module.Module
	// Image is the program every injection runs: the standalone lifted
	// suite, or an embedded application carrying the suite.
	Image *isa.Image
	// Mode labels the image ("standalone" or "embedded") in the report
	// and checkpoint.
	Mode string
	// Specs is the injection universe (see SampleUniverse).
	Specs []Spec
	// Seed is recorded in the report/checkpoint and validated on resume.
	Seed uint64

	MemSize int
	// MaxCycles is the per-injection cycle budget; the golden run must
	// exit within it.
	MaxCycles uint64
	// Parallelism bounds the par.Map fan-out (0 = all CPUs). The report
	// is byte-identical at every setting.
	Parallelism int

	// CheckpointPath, when set, persists completed injections after
	// every wave via an atomic rename, and resumes from the file if it
	// exists. A resumed campaign produces the identical final report.
	CheckpointPath string
	// CheckpointEvery is the wave size between checkpoints (default 64).
	CheckpointEvery int
	// OnCheckpoint, when set, observes every checkpoint write with the
	// number of completed injections — the deterministic interruption
	// hook the resume tests use.
	OnCheckpoint func(done int)
}

func (c *Config) fill() {
	if c.MemSize == 0 {
		c.MemSize = 1 << 20
	}
	if c.MaxCycles == 0 {
		c.MaxCycles = 50_000_000
	}
	if c.CheckpointEvery == 0 {
		c.CheckpointEvery = 64
	}
	if c.Mode == "" {
		c.Mode = "standalone"
	}
}

// Result is one classified injection.
type Result struct {
	Index   int
	Spec    string
	Class   string
	Outcome string
	Halt    string
	Cycles  uint64
	// Case is the suite case that trapped (meaningful when detected in
	// standalone mode).
	Case int `json:",omitempty"`
}

// ClassStats aggregates outcomes per fault class over the completed
// injections.
type ClassStats struct {
	Class      string
	Total      int
	Detected   int
	Masked     int
	SDCEscape  int
	StallCrash int
	// EscapeRate is SDCEscape/Total — the headline robustness metric:
	// the fraction of this class that silently corrupts state without
	// the suite (or a watchdog) noticing.
	EscapeRate float64
}

// Report is the campaign's outcome. With a deadline or cancellation it
// may be Partial: Classes then covers only the Completed injections —
// coverage so far, not the full universe.
type Report struct {
	Unit      string
	Mode      string
	Seed      uint64
	MaxCycles uint64
	Total     int
	Completed int
	Partial   bool
	Classes   []ClassStats
	Results   []Result
}

// JSON renders the report deterministically (stable field order, sorted
// by injection index).
func (r *Report) JSON() ([]byte, error) { return json.MarshalIndent(r, "", "  ") }

// checkpoint is the persisted campaign state: identity plus every
// completed result.
type checkpoint struct {
	Unit      string
	Mode      string
	Seed      uint64
	MaxCycles uint64
	Specs     []string
	Results   []Result
}

// Run executes the campaign: one golden run, then every injection
// fanned out via par.Map in checkpointed waves. Cancel or expire ctx to
// get a graceful partial report instead of an error; injections that
// were mid-flight resume from the checkpoint on the next Run.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	cfg.fill()
	if len(cfg.Specs) == 0 {
		return nil, errors.New("inject: empty injection universe")
	}
	for _, s := range cfg.Specs {
		if s.Unit != cfg.Module.Name {
			return nil, fmt.Errorf("inject: spec %q does not target module %s", s.String(), cfg.Module.Name)
		}
	}

	// Golden run: fault-free behavioural execution of the same image
	// under the same budget. Its digest is the Masked/SDCEscape oracle.
	golden := cpu.New(cfg.MemSize)
	golden.Load(cfg.Image)
	if halt := golden.Run(cfg.MaxCycles); halt != cpu.HaltExit || golden.ExitCode != 0 {
		return nil, fmt.Errorf("inject: golden run failed (halt=%v exit=%d)", halt, golden.ExitCode)
	}
	goldenDigest := digest(golden)

	results := make([]Result, len(cfg.Specs))
	done := make([]bool, len(cfg.Specs))

	if cfg.CheckpointPath != "" {
		cp, err := loadCheckpoint(cfg.CheckpointPath)
		if err != nil {
			return nil, err
		}
		if cp != nil {
			if err := validateCheckpoint(cp, &cfg); err != nil {
				return nil, err
			}
			for _, r := range cp.Results {
				results[r.Index] = r
				done[r.Index] = true
			}
		}
	}

	var pending []int
	for i := range cfg.Specs {
		if !done[i] {
			pending = append(pending, i)
		}
	}

	for len(pending) > 0 && ctx.Err() == nil {
		wave := pending
		if len(wave) > cfg.CheckpointEvery {
			wave = wave[:cfg.CheckpointEvery]
		}
		pending = pending[len(wave):]

		type taskOut struct {
			r  Result
			ok bool
		}
		outs, err := par.Map(ctx, len(wave), cfg.Parallelism, func(ctx context.Context, i int) (taskOut, error) {
			idx := wave[i]
			r, ok, err := runOne(ctx, &cfg, idx, goldenDigest)
			return taskOut{r, ok}, err
		})
		for i, o := range outs {
			if o.ok {
				results[wave[i]] = o.r
				done[wave[i]] = true
			}
		}
		if err != nil && !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
			return nil, err
		}
		if err := persist(&cfg, results, done); err != nil {
			return nil, err
		}
	}

	rep := buildReport(&cfg, results, done)
	return rep, nil
}

// runOne executes one injection. ok=false means the run was interrupted
// by ctx before finishing — the injection stays pending for resume.
func runOne(ctx context.Context, cfg *Config, idx int, goldenDigest uint64) (Result, bool, error) {
	s := cfg.Specs[idx]
	c := cpu.New(cfg.MemSize)
	if err := Attach(cfg.Module, c, s); err != nil {
		return Result{}, false, fmt.Errorf("injection %d (%s): %w", idx, s.String(), err)
	}
	c.Load(cfg.Image)
	halt := c.RunCtx(ctx, cfg.MaxCycles)
	if halt == cpu.HaltInterrupted {
		return Result{}, false, nil
	}
	eq := halt == cpu.HaltExit && digest(c) == goldenDigest
	r := Result{
		Index:   idx,
		Spec:    s.String(),
		Class:   s.Class.String(),
		Outcome: classify(halt, eq).String(),
		Halt:    halt.String(),
		Cycles:  c.Cycles,
	}
	if halt == cpu.HaltBreak {
		r.Case = lift.FailedCase(c.X[9])
	}
	return r, true, nil
}

// digest folds the full architectural state (registers, FP state, exit
// code, memory) into one FNV-1a hash — the golden-comparison oracle.
func digest(c *cpu.CPU) uint64 {
	h := fnv.New64a()
	var w [4]byte
	word := func(v uint32) {
		w[0], w[1], w[2], w[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
		h.Write(w[:])
	}
	word(c.ExitCode)
	word(c.FFlags)
	for _, v := range c.X {
		word(v)
	}
	for _, v := range c.F {
		word(v)
	}
	h.Write(c.Mem)
	return h.Sum64()
}

func persist(cfg *Config, results []Result, done []bool) error {
	if cfg.CheckpointPath == "" {
		if cfg.OnCheckpoint != nil {
			cfg.OnCheckpoint(countDone(done))
		}
		return nil
	}
	cp := checkpoint{
		Unit:      cfg.Module.Name,
		Mode:      cfg.Mode,
		Seed:      cfg.Seed,
		MaxCycles: cfg.MaxCycles,
	}
	for _, s := range cfg.Specs {
		cp.Specs = append(cp.Specs, s.String())
	}
	for i, ok := range done {
		if ok {
			cp.Results = append(cp.Results, results[i])
		}
	}
	data, err := json.MarshalIndent(&cp, "", "  ")
	if err != nil {
		return err
	}
	// Atomic replace: a reader (or a resumed campaign after a crash)
	// sees either the previous checkpoint or the new one, never a torn
	// write.
	tmp := cfg.CheckpointPath + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("inject: checkpoint: %w", err)
	}
	if err := os.Rename(tmp, cfg.CheckpointPath); err != nil {
		return fmt.Errorf("inject: checkpoint: %w", err)
	}
	if cfg.OnCheckpoint != nil {
		cfg.OnCheckpoint(countDone(done))
	}
	return nil
}

func loadCheckpoint(path string) (*checkpoint, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("inject: checkpoint: %w", err)
	}
	var cp checkpoint
	if err := json.Unmarshal(data, &cp); err != nil {
		return nil, fmt.Errorf("inject: checkpoint %s corrupt: %w", path, err)
	}
	return &cp, nil
}

// validateCheckpoint rejects a checkpoint written by a different
// campaign: resuming it would silently mix incompatible results.
func validateCheckpoint(cp *checkpoint, cfg *Config) error {
	if cp.Unit != cfg.Module.Name || cp.Mode != cfg.Mode ||
		cp.Seed != cfg.Seed || cp.MaxCycles != cfg.MaxCycles || len(cp.Specs) != len(cfg.Specs) {
		return fmt.Errorf("inject: checkpoint %s belongs to a different campaign "+
			"(unit=%s mode=%s seed=%d cycles=%d n=%d)",
			cfg.CheckpointPath, cp.Unit, cp.Mode, cp.Seed, cp.MaxCycles, len(cp.Specs))
	}
	for i, s := range cfg.Specs {
		if cp.Specs[i] != s.String() {
			return fmt.Errorf("inject: checkpoint %s spec %d mismatch: %q vs %q",
				cfg.CheckpointPath, i, cp.Specs[i], s.String())
		}
	}
	for _, r := range cp.Results {
		if r.Index < 0 || r.Index >= len(cfg.Specs) {
			return fmt.Errorf("inject: checkpoint %s result index %d out of range", cfg.CheckpointPath, r.Index)
		}
	}
	return nil
}

func countDone(done []bool) int {
	n := 0
	for _, d := range done {
		if d {
			n++
		}
	}
	return n
}

func buildReport(cfg *Config, results []Result, done []bool) *Report {
	rep := &Report{
		Unit:      cfg.Module.Name,
		Mode:      cfg.Mode,
		Seed:      cfg.Seed,
		MaxCycles: cfg.MaxCycles,
		Total:     len(cfg.Specs),
	}
	byClass := make(map[string]*ClassStats)
	var order []string
	for _, cl := range Classes() {
		cs := &ClassStats{Class: cl.String()}
		byClass[cl.String()] = cs
		order = append(order, cl.String())
	}
	for i, r := range results {
		if !done[i] {
			continue
		}
		rep.Completed++
		rep.Results = append(rep.Results, r)
		cs := byClass[r.Class]
		cs.Total++
		switch r.Outcome {
		case Detected.String():
			cs.Detected++
		case Masked.String():
			cs.Masked++
		case SDCEscape.String():
			cs.SDCEscape++
		case StallCrash.String():
			cs.StallCrash++
		}
	}
	rep.Partial = rep.Completed < rep.Total
	for _, name := range order {
		cs := byClass[name]
		if cs.Total > 0 {
			cs.EscapeRate = float64(cs.SDCEscape) / float64(cs.Total)
		}
		rep.Classes = append(rep.Classes, *cs)
	}
	return rep
}
