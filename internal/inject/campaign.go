package inject

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"strings"

	"repro/internal/chaos"
	"repro/internal/cpu"
	"repro/internal/engine"
	"repro/internal/guard"
	"repro/internal/isa"
	"repro/internal/lift"
	"repro/internal/module"
	"repro/internal/par"
)

// Outcome classifies one injection run against the golden execution.
type Outcome int

// Injection outcomes.
const (
	// Detected: the suite trapped (ebreak) — the built-in detection
	// mechanism caught the fault.
	Detected Outcome = iota
	// Masked: the program ran to completion with an architectural state
	// identical to the golden run; the fault had no effect.
	Masked
	// SDCEscape: the program ran to completion but its final state
	// differs from golden — a silent data corruption the suite missed.
	SDCEscape
	// StallCrash: the program hung (handshake stall, cycle-budget
	// exhaustion) or faulted (bad memory access, undecodable fetch) —
	// loud failures an OS-level watchdog would catch.
	StallCrash
)

func (o Outcome) String() string {
	switch o {
	case Detected:
		return "detected"
	case Masked:
		return "masked"
	case SDCEscape:
		return "sdc-escape"
	case StallCrash:
		return "stall-crash"
	}
	return fmt.Sprintf("outcome(%d)", int(o))
}

// classify maps a finished (non-interrupted) halt reason to an outcome.
// The golden run is known to HaltExit within the same cycle budget, so
// HaltLimit on the faulty run means the fault made the program hang.
func classify(halt cpu.HaltReason, digestEqual bool) Outcome {
	switch halt {
	case cpu.HaltBreak:
		return Detected
	case cpu.HaltExit:
		if digestEqual {
			return Masked
		}
		return SDCEscape
	default: // HaltStalled, HaltFault, HaltLimit
		return StallCrash
	}
}

// Config tunes one injection campaign.
type Config struct {
	Module *module.Module
	// Image is the program every injection runs: the standalone lifted
	// suite, or an embedded application carrying the suite.
	Image *isa.Image
	// Mode labels the image ("standalone" or "embedded") in the report
	// and checkpoint.
	Mode string
	// Specs is the injection universe (see SampleUniverse).
	Specs []Spec
	// Seed is recorded in the report/checkpoint and validated on resume.
	Seed uint64

	MemSize int
	// MaxCycles is the per-injection cycle budget; the golden run must
	// exit within it.
	MaxCycles uint64
	// Parallelism bounds the par.Map fan-out (0 = all CPUs). The report
	// is byte-identical at every setting.
	Parallelism int

	// CheckpointPath, when set, persists completed injections after
	// every wave via an atomic rename, and resumes from the file if it
	// exists. A resumed campaign produces the identical final report.
	CheckpointPath string
	// CheckpointEvery is the wave size between checkpoints (default 64).
	CheckpointEvery int
	// OnCheckpoint, when set, observes every checkpoint write with the
	// number of completed injections — the deterministic interruption
	// hook the resume tests use.
	OnCheckpoint func(done int)

	// Scalar forces the one-replay-per-injection baseline path instead of
	// the packed concurrent fault simulation. The report is byte-identical
	// either way (TestPackedMatchesScalar); the scalar path exists as the
	// differential oracle and for debugging.
	Scalar bool

	// FS is the filesystem seam checkpoint I/O goes through (nil: the
	// real filesystem). Tests inject chaos.Plan faults here to prove the
	// checkpoint discipline survives torn writes, bit flips and crashes
	// at every I/O step.
	FS chaos.FS

	// Guards names the always-on runtime guards (see internal/guard) to
	// attach to the unit seam during every injection: "all", or a subset
	// of guard.Names for the module's unit. Guards are observe-only — a
	// guarded campaign replays bit-identically to an unguarded one — but
	// their verdicts become a detection source: a completed run whose
	// state diverged from golden AND whose guard log fired is Detected
	// instead of SDCEscape. Empty disables guards; the report and
	// checkpoint are then byte-identical to pre-guard campaigns.
	Guards []string

	// guardSet is Guards resolved against the module's registry, in
	// canonical order (filled by RunWithStats).
	guardSet []guard.Guard
}

func (c *Config) fill() {
	if c.MemSize == 0 {
		c.MemSize = 1 << 20
	}
	if c.MaxCycles == 0 {
		c.MaxCycles = 50_000_000
	}
	if c.CheckpointEvery == 0 {
		c.CheckpointEvery = 64
	}
	if c.Mode == "" {
		c.Mode = "standalone"
	}
	if c.FS == nil {
		c.FS = chaos.OS{}
	}
}

// Result is one classified injection.
type Result struct {
	Index   int
	Spec    string
	Class   string
	Outcome string
	Halt    string
	Cycles  uint64
	// Digest is the final architectural-state hash (equal to the golden
	// digest exactly for masked runs). Zero only in results resumed from
	// a pre-versioning checkpoint.
	Digest uint64 `json:",omitempty"`
	// DivergedAt is 1 + the CPU cycle count at the first unit operation
	// whose response (result, flags, ok) differed from the golden model;
	// 0 if no response ever diverged. Timing-only netlist divergences
	// that produce the correct value do not count — they are
	// architecturally invisible.
	DivergedAt uint64 `json:",omitempty"`
	// Case is the suite case that trapped (meaningful when detected in
	// standalone mode).
	Case int `json:",omitempty"`
	// Guard is the first runtime guard that fired during the run (empty
	// when guards were off or never fired); GuardOp is the 1-based unit-op
	// index of that first fire. Guards record on every outcome — a masked
	// run can carry a guard fire when a corrupted intermediate result was
	// later overwritten — but only reclassify SDCEscape to Detected.
	Guard   string `json:",omitempty"`
	GuardOp uint64 `json:",omitempty"`
}

// ClassStats aggregates outcomes per fault class over the completed
// injections.
type ClassStats struct {
	Class      string
	Total      int
	Detected   int
	Masked     int
	SDCEscape  int
	StallCrash int
	// EscapeRate is SDCEscape/Total — the headline robustness metric:
	// the fraction of this class that silently corrupts state without
	// the suite (or a watchdog) noticing.
	EscapeRate float64
	// GuardDetected counts the Detected results this class owes to the
	// runtime guards: completed runs with a divergent digest that only
	// the guard log flagged (halt "exit" + outcome "detected" can arise
	// no other way). Omitted when guards are off.
	GuardDetected int `json:",omitempty"`
	// GuardFired counts every result in this class whose guard log fired,
	// including masked and stalled runs. Omitted when guards are off.
	GuardFired int `json:",omitempty"`
}

// Report is the campaign's outcome. With a deadline or cancellation it
// may be Partial: Classes then covers only the Completed injections —
// coverage so far, not the full universe.
type Report struct {
	Unit      string
	Mode      string
	Seed      uint64
	MaxCycles uint64
	// Guards lists the attached runtime guards in canonical order;
	// omitted (and absent from the JSON) when the campaign ran unguarded.
	Guards    []string `json:",omitempty"`
	Total     int
	Completed int
	Partial   bool
	Classes   []ClassStats
	Results   []Result
}

// JSON renders the report deterministically (stable field order, sorted
// by injection index).
func (r *Report) JSON() ([]byte, error) { return json.MarshalIndent(r, "", "  ") }

// checkpointVersion is the current checkpoint schema version. Version 1
// added the Version field itself plus the per-result Digest/DivergedAt
// fields; version 2 added the Guards list and the per-result Guard
// fields. An UNGUARDED campaign still writes version 1 — byte-identical
// to pre-guard builds — so only guard-enabled campaigns require the new
// schema. Files without a Version (the pre-packed-path schema, version
// 0) are still accepted when guards are off — their results carry zero
// Digest/DivergedAt — while files from a NEWER schema are rejected as
// stale tooling.
const checkpointVersion = 2

// checkpoint is the persisted campaign state: identity plus every
// completed result.
type checkpoint struct {
	Version   int
	Unit      string
	Mode      string
	Seed      uint64
	MaxCycles uint64
	Guards    []string `json:",omitempty"`
	Specs     []string
	Results   []Result
}

// Run executes the campaign: one golden run, then every injection
// classified — by packed concurrent fault simulation by default, or by
// one scalar replay per injection with cfg.Scalar — in checkpointed
// batches. Cancel or expire ctx to get a graceful partial report
// instead of an error; injections that were mid-flight resume from the
// checkpoint on the next Run.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	rep, _, err := RunWithStats(ctx, cfg)
	return rep, err
}

// RunWithStats is Run plus the packed-path accounting (wave occupancy,
// lane retirement, replay savings). The stats cover only the work this
// call performed — injections restored from a checkpoint contribute
// nothing.
func RunWithStats(ctx context.Context, cfg Config) (*Report, *PackedStats, error) {
	cfg.fill()
	if len(cfg.Specs) == 0 {
		return nil, nil, errors.New("inject: empty injection universe")
	}
	for _, s := range cfg.Specs {
		if s.Unit != cfg.Module.Name {
			return nil, nil, fmt.Errorf("inject: spec %q does not target module %s", s.String(), cfg.Module.Name)
		}
	}
	if len(cfg.Guards) > 0 {
		gs, err := guard.Select(cfg.Module.Name, cfg.Guards)
		if err != nil {
			return nil, nil, err
		}
		cfg.guardSet = gs
	}

	// Golden run: fault-free behavioural execution of the same image
	// under the same budget. Its digest is the Masked/SDCEscape oracle;
	// its unit-op count drives the packed path's retirement accounting
	// and the behavioural no-fire shortcut.
	g, err := goldenRun(&cfg)
	if err != nil {
		return nil, nil, err
	}

	results := make([]Result, len(cfg.Specs))
	done := make([]bool, len(cfg.Specs))

	if cfg.CheckpointPath != "" {
		cp, err := loadCheckpoint(cfg.FS, cfg.CheckpointPath)
		if err != nil {
			return nil, nil, err
		}
		if cp != nil {
			if err := validateCheckpoint(cp, &cfg); err != nil {
				return nil, nil, err
			}
			for _, r := range cp.Results {
				results[r.Index] = r
				done[r.Index] = true
			}
		}
	}

	var pending []int
	for i := range cfg.Specs {
		if !done[i] {
			pending = append(pending, i)
		}
	}

	// An injection result is a pure function of its spec (the campaign
	// seed only drives universe sampling, and intermittent LFSR phases
	// live inside the spec), so identical specs share one run. Duplicates
	// are common when SampleUniverse draws N larger than a small
	// universe — the embedded transient window, for instance — and the
	// shared run keeps the report byte-identical to evaluating each copy.
	rep := make(map[string]int, len(cfg.Specs))
	for i := range results {
		if done[i] {
			rep[results[i].Spec] = i
		}
	}
	dup := make(map[int]int)
	unique := pending[:0]
	for _, idx := range pending {
		key := cfg.Specs[idx].String()
		if ri, ok := rep[key]; ok {
			dup[idx] = ri
			continue
		}
		rep[key] = idx
		unique = append(unique, idx)
	}
	pending = unique

	var stats *PackedStats
	if cfg.Scalar {
		err = runScalar(ctx, &cfg, g, pending, results, done)
	} else {
		stats = newPackedStats(g)
		err = runPacked(ctx, &cfg, g, stats, pending, results, done)
	}
	if err != nil {
		return nil, nil, err
	}
	if len(dup) > 0 {
		for idx, ri := range dup {
			if done[ri] && !done[idx] {
				r := results[ri]
				r.Index = idx
				results[idx] = r
				done[idx] = true
			}
		}
		if err := persist(&cfg, results, done); err != nil {
			return nil, nil, err
		}
	}
	return buildReport(&cfg, results, done), stats, nil
}

// runScalar is the baseline campaign loop: every pending injection is
// one independent full replay, fanned out via par.Map in waves of
// CheckpointEvery.
func runScalar(ctx context.Context, cfg *Config, g *goldenInfo, pending []int, results []Result, done []bool) error {
	for len(pending) > 0 && ctx.Err() == nil {
		wave := pending
		if len(wave) > cfg.CheckpointEvery {
			wave = wave[:cfg.CheckpointEvery]
		}
		pending = pending[len(wave):]

		type taskOut struct {
			r  Result
			ok bool
		}
		outs, err := par.Map(ctx, len(wave), cfg.Parallelism, func(ctx context.Context, i int) (taskOut, error) {
			idx := wave[i]
			r, ok, err := runOne(ctx, cfg, idx, g)
			return taskOut{r, ok}, err
		})
		for i, o := range outs {
			if o.ok {
				results[wave[i]] = o.r
				done[wave[i]] = true
			}
		}
		if err != nil && !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
			return err
		}
		if err := persist(cfg, results, done); err != nil {
			return err
		}
	}
	return nil
}

// unit is one packed work item: a run of same-class pending injections.
// Netlist classes fill the 63 fault lanes of one wave; behavioural
// classes are grouped only for checkpoint granularity.
type unit struct {
	class Class
	idxs  []int
}

// partitionUnits splits the pending injections, per class and in index
// order, into packed work units.
func partitionUnits(cfg *Config, pending []int) []unit {
	byClass := make(map[Class][]int)
	for _, idx := range pending {
		cl := cfg.Specs[idx].Class
		byClass[cl] = append(byClass[cl], idx)
	}
	var units []unit
	for _, cl := range Classes() {
		idxs := byClass[cl]
		size := engine.Lanes - 1
		if cl == Transient || cl == Intermittent {
			size = cfg.CheckpointEvery
		}
		for len(idxs) > 0 {
			n := min(size, len(idxs))
			units = append(units, unit{class: cl, idxs: idxs[:n]})
			idxs = idxs[n:]
		}
	}
	return units
}

// runPacked is the packed campaign loop: pending injections are
// partitioned into per-class units (one wave, or one behavioural
// batch), processed par.N at a time, checkpointing after every batch.
func runPacked(ctx context.Context, cfg *Config, g *goldenInfo, stats *PackedStats, pending []int, results []Result, done []bool) error {
	units := partitionUnits(cfg, pending)
	batch := par.N(cfg.Parallelism)
	for len(units) > 0 && ctx.Err() == nil {
		n := min(batch, len(units))
		cur := units[:n]
		units = units[n:]

		type unitOut struct {
			rs   []Result
			ok   []bool
			acct waveAcct
		}
		outs, err := par.Map(ctx, len(cur), cfg.Parallelism, func(ctx context.Context, i int) (unitOut, error) {
			rs, ok, acct, err := runUnit(ctx, cfg, g, cur[i])
			return unitOut{rs, ok, acct}, err
		})
		for i, o := range outs {
			if o.rs == nil {
				continue // unit aborted before producing results
			}
			for j, idx := range cur[i].idxs {
				if o.ok[j] {
					results[idx] = o.rs[j]
					done[idx] = true
				}
			}
			stats.merge(cur[i].class, o.acct)
		}
		if err != nil && !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
			return err
		}
		if err := persist(cfg, results, done); err != nil {
			return err
		}
	}
	return nil
}

// runUnit dispatches one work unit: a packed wave for netlist classes,
// a shortcut-or-replay sweep for behavioural classes.
func runUnit(ctx context.Context, cfg *Config, g *goldenInfo, u unit) ([]Result, []bool, waveAcct, error) {
	if u.class == StuckAt || u.class == MultiFault {
		return runPackedWave(ctx, cfg, g, u.idxs)
	}
	results := make([]Result, len(u.idxs))
	done := make([]bool, len(u.idxs))
	var acct waveAcct
	for i, idx := range u.idxs {
		if ctx.Err() != nil {
			break
		}
		r, ok, replayed, err := runBehavioural(ctx, cfg, g, idx)
		if err != nil {
			return results, done, acct, err
		}
		if ok {
			results[i], done[i] = r, true
			if replayed {
				acct.behReplayed++
			} else {
				acct.behShortcut++
			}
		}
	}
	return results, done, acct, nil
}

// runOne executes one injection as a full scalar replay. ok=false means
// the run was interrupted by ctx before finishing — the injection stays
// pending for resume.
func runOne(ctx context.Context, cfg *Config, idx int, g *goldenInfo) (Result, bool, error) {
	s := cfg.Specs[idx]
	c := cpu.New(cfg.MemSize)
	if err := Attach(cfg.Module, c, s); err != nil {
		return Result{}, false, fmt.Errorf("injection %d (%s): %w", idx, s.String(), err)
	}
	d := track(cfg.Module, c)
	log := attachGuards(cfg, c)
	c.Load(cfg.Image)
	halt := c.RunCtx(ctx, cfg.MaxCycles)
	if halt == cpu.HaltInterrupted {
		return Result{}, false, nil
	}
	return finish(cfg, idx, c, halt, g, d, log), true, nil
}

// finish classifies a completed (non-interrupted) injection run. Shared
// by the scalar baseline and the packed path's continuations so both
// produce byte-identical results. The state digest (an FNV pass over
// all of memory) is computed only for runs that completed: a trapped or
// hung run's state is never compared against the golden digest, and
// skipping the hash there is a large fraction of the campaign cost.
//
// A non-nil guard log adds the runtime-guard detection source: the
// first fire is recorded on every outcome, and a completed run whose
// state diverged from golden (SDCEscape) is reclassified Detected when
// the guards flagged it — the corruption was loud at the moment it
// happened, no scheduled test window required. Masked runs keep their
// outcome even when a guard fired (the fault was real but ultimately
// harmless), so a guarded report differs from an unguarded one only in
// Escape-to-Detected moves plus the added guard fields.
func finish(cfg *Config, idx int, c *cpu.CPU, halt cpu.HaltReason, g *goldenInfo, d *diverge, log *guard.Log) Result {
	s := cfg.Specs[idx]
	var dig uint64
	eq := false
	if halt == cpu.HaltExit {
		dig = digest(c)
		eq = dig == g.digest
	}
	out := classify(halt, eq)
	r := Result{
		Index:  idx,
		Spec:   s.String(),
		Class:  s.Class.String(),
		Halt:   halt.String(),
		Cycles: c.Cycles,
		Digest: dig,
	}
	if log != nil && log.Fired() {
		r.Guard = log.First
		r.GuardOp = log.FirstOp
		if out == SDCEscape {
			out = Detected
		}
	}
	r.Outcome = out.String()
	if d.hit {
		r.DivergedAt = d.at + 1
	}
	if halt == cpu.HaltBreak {
		r.Case = lift.FailedCase(c.X[9])
	}
	return r
}

// digest folds the full architectural state (registers, FP state, exit
// code, memory) into one hash — the golden-comparison oracle. The mix
// is FNV-1a lifted to 64-bit words: hashing memory one word at a time
// instead of byte-at-a-time makes the digest ~10x cheaper, and with a
// megabyte-scale arena per injection the digest is a first-order cost
// of the whole campaign. Any change to the word stream changes the
// hash; both the scalar and packed paths share this function, so the
// cross-path byte-identity contract is unaffected by the exact mix.
func digest(c *cpu.CPU) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	mix := func(v uint64) {
		h ^= v
		h *= prime
	}
	mix(uint64(c.ExitCode))
	mix(uint64(c.FFlags))
	for _, v := range c.X {
		mix(uint64(v))
	}
	for _, v := range c.F {
		mix(uint64(v))
	}
	mem := c.Mem
	for len(mem) >= 8 {
		mix(binary.LittleEndian.Uint64(mem))
		mem = mem[8:]
	}
	var tail uint64
	for i, b := range mem {
		tail |= uint64(b) << (8 * uint(i))
	}
	mix(tail)
	mix(uint64(len(c.Mem)))
	return h
}

func persist(cfg *Config, results []Result, done []bool) error {
	if cfg.CheckpointPath == "" {
		if cfg.OnCheckpoint != nil {
			cfg.OnCheckpoint(countDone(done))
		}
		return nil
	}
	cp := checkpoint{
		Version:   1,
		Unit:      cfg.Module.Name,
		Mode:      cfg.Mode,
		Seed:      cfg.Seed,
		MaxCycles: cfg.MaxCycles,
	}
	if len(cfg.guardSet) > 0 {
		cp.Version = checkpointVersion
		cp.Guards = guardNames(cfg.guardSet)
	}
	for _, s := range cfg.Specs {
		cp.Specs = append(cp.Specs, s.String())
	}
	for i, ok := range done {
		if ok {
			cp.Results = append(cp.Results, results[i])
		}
	}
	data, err := json.MarshalIndent(&cp, "", "  ")
	if err != nil {
		return err
	}
	// Sealed atomic replace: the envelope checksum detects silent
	// corruption at the next load, and WriteAtomic's tmp-write -> fsync
	// -> rename -> dir-fsync sequence guarantees a reader (or a resumed
	// campaign after a crash, including power loss) sees either the
	// previous checkpoint or the new one, never a torn write.
	if err := chaos.WriteAtomic(cfg.FS, cfg.CheckpointPath, chaos.Seal(data), 0o644); err != nil {
		return fmt.Errorf("inject: checkpoint: %w", err)
	}
	if cfg.OnCheckpoint != nil {
		cfg.OnCheckpoint(countDone(done))
	}
	return nil
}

// loadCheckpoint reads and unseals a checkpoint. A missing file means a
// fresh campaign. A corrupt file — failed envelope check (flipped bit,
// torn tail) or unparsable JSON — is quarantined next to the state it
// failed to load as, and the campaign restarts from scratch: the
// deterministic engine re-derives every result, so graceful degradation
// costs recompute, never correctness. Legacy un-sealed (v1/v2 era)
// checkpoints load verbatim.
func loadCheckpoint(fs chaos.FS, path string) (*checkpoint, error) {
	data, err := fs.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("inject: checkpoint: %w", err)
	}
	payload, _, err := chaos.Open(data)
	if errors.Is(err, chaos.ErrNewerVersion) {
		return nil, fmt.Errorf("inject: checkpoint %s: %w", path, err)
	}
	if err == nil {
		var cp checkpoint
		if jerr := json.Unmarshal(payload, &cp); jerr == nil {
			return &cp, nil
		} else {
			err = jerr
		}
	}
	if _, qerr := chaos.Quarantine(fs, path); qerr != nil {
		return nil, fmt.Errorf("inject: checkpoint %s corrupt (%v) and quarantine failed: %w", path, err, qerr)
	}
	return nil, nil
}

// validateCheckpoint rejects a checkpoint written by a different
// campaign (resuming it would silently mix incompatible results) or by
// a newer schema than this binary understands. Version 0 — the
// pre-versioning schema — is accepted for unguarded campaigns: its
// results simply lack the Digest/DivergedAt fields, and the remaining
// injections resume onto the current (packed) path with identical
// classifications. Guard-enabled campaigns additionally require a
// version >= 2 checkpoint carrying the same guard list: results written
// without guards have no verdicts to reclassify on, so mixing them with
// guarded results would silently understate detection.
func validateCheckpoint(cp *checkpoint, cfg *Config) error {
	if cp.Version < 0 || cp.Version > checkpointVersion {
		return fmt.Errorf("inject: checkpoint %s has schema version %d, this build understands <= %d — "+
			"refusing a stale resume", cfg.CheckpointPath, cp.Version, checkpointVersion)
	}
	if len(cfg.guardSet) > 0 {
		want := guardNames(cfg.guardSet)
		if cp.Version < 2 || !equalStrings(cp.Guards, want) {
			return fmt.Errorf("inject: checkpoint %s was written %s but this campaign runs guards %s — "+
				"resuming would mix unguarded and guarded classifications; delete the checkpoint or drop the guards",
				cfg.CheckpointPath, describeGuards(cp.Guards), strings.Join(want, ","))
		}
	} else if len(cp.Guards) > 0 {
		return fmt.Errorf("inject: checkpoint %s was written with guards %s but this campaign runs none — "+
			"delete the checkpoint or pass the same guard list",
			cfg.CheckpointPath, strings.Join(cp.Guards, ","))
	}
	if cp.Unit != cfg.Module.Name || cp.Mode != cfg.Mode ||
		cp.Seed != cfg.Seed || cp.MaxCycles != cfg.MaxCycles || len(cp.Specs) != len(cfg.Specs) {
		return fmt.Errorf("inject: checkpoint %s belongs to a different campaign "+
			"(unit=%s mode=%s seed=%d cycles=%d n=%d)",
			cfg.CheckpointPath, cp.Unit, cp.Mode, cp.Seed, cp.MaxCycles, len(cp.Specs))
	}
	for i, s := range cfg.Specs {
		if cp.Specs[i] != s.String() {
			return fmt.Errorf("inject: checkpoint %s spec %d mismatch: %q vs %q",
				cfg.CheckpointPath, i, cp.Specs[i], s.String())
		}
	}
	for _, r := range cp.Results {
		if r.Index < 0 || r.Index >= len(cfg.Specs) {
			return fmt.Errorf("inject: checkpoint %s result index %d out of range", cfg.CheckpointPath, r.Index)
		}
	}
	return nil
}

func countDone(done []bool) int {
	n := 0
	for _, d := range done {
		if d {
			n++
		}
	}
	return n
}

func buildReport(cfg *Config, results []Result, done []bool) *Report {
	rep := &Report{
		Unit:      cfg.Module.Name,
		Mode:      cfg.Mode,
		Seed:      cfg.Seed,
		MaxCycles: cfg.MaxCycles,
		Total:     len(cfg.Specs),
	}
	if len(cfg.guardSet) > 0 {
		rep.Guards = guardNames(cfg.guardSet)
	}
	byClass := make(map[string]*ClassStats)
	var order []string
	for _, cl := range Classes() {
		cs := &ClassStats{Class: cl.String()}
		byClass[cl.String()] = cs
		order = append(order, cl.String())
	}
	for i, r := range results {
		if !done[i] {
			continue
		}
		rep.Completed++
		rep.Results = append(rep.Results, r)
		cs := byClass[r.Class]
		cs.Total++
		switch r.Outcome {
		case Detected.String():
			cs.Detected++
			if r.Halt == cpu.HaltExit.String() {
				// A completed run can only be Detected via the guard
				// log — the built-in suite detection traps (HaltBreak).
				cs.GuardDetected++
			}
		case Masked.String():
			cs.Masked++
		case SDCEscape.String():
			cs.SDCEscape++
		case StallCrash.String():
			cs.StallCrash++
		}
		if r.Guard != "" {
			cs.GuardFired++
		}
	}
	rep.Partial = rep.Completed < rep.Total
	for _, name := range order {
		cs := byClass[name]
		if cs.Total > 0 {
			cs.EscapeRate = float64(cs.SDCEscape) / float64(cs.Total)
		}
		rep.Classes = append(rep.Classes, *cs)
	}
	return rep
}
