package inject

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/chaos"
)

// TestLegacyCheckpointResumes: checkpoints written by pre-envelope
// builds are plain JSON. A campaign resumed over one must consume it
// (not restart from zero) and still produce the byte-identical final
// report.
func TestLegacyCheckpointResumes(t *testing.T) {
	cfg, _ := testCampaign(t, 2)
	want := runJSON(t, cfg)

	dir := t.TempDir()
	cfg.CheckpointPath = filepath.Join(dir, "campaign.json")
	cfg.CheckpointEvery = 3
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg.OnCheckpoint = func(done int) { cancel() }
	partial, err := Run(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !partial.Partial || partial.Completed == 0 {
		t.Fatalf("interruption did not leave progress behind: %d/%d", partial.Completed, partial.Total)
	}

	// Strip the envelope: rewrite the checkpoint exactly as a
	// pre-envelope build would have written it.
	data, err := os.ReadFile(cfg.CheckpointPath)
	if err != nil {
		t.Fatal(err)
	}
	payload, sealed, err := chaos.Open(data)
	if err != nil || !sealed {
		t.Fatalf("fresh checkpoint not sealed (sealed=%v err=%v)", sealed, err)
	}
	if err := os.WriteFile(cfg.CheckpointPath, payload, 0o644); err != nil {
		t.Fatal(err)
	}

	cfg.OnCheckpoint = nil
	rep, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatalf("resume over legacy checkpoint: %v", err)
	}
	got, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("report resumed from legacy checkpoint diverges from uninterrupted run")
	}
}

// TestCorruptCheckpointQuarantinedAndRecomputed: one silently flipped
// bit in a sealed checkpoint must be detected by the envelope CRC, the
// file quarantined, and the campaign recomputed from scratch — same
// final bytes, corruption never consumed.
func TestCorruptCheckpointQuarantinedAndRecomputed(t *testing.T) {
	cfg, _ := testCampaign(t, 2)
	dir := t.TempDir()
	cfg.CheckpointPath = filepath.Join(dir, "campaign.json")
	cfg.CheckpointEvery = 3
	want := runJSON(t, cfg) // completes; checkpoint left on disk

	data, err := os.ReadFile(cfg.CheckpointPath)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x20
	if err := os.WriteFile(cfg.CheckpointPath, data, 0o644); err != nil {
		t.Fatal(err)
	}

	rep, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatalf("corrupt checkpoint should quarantine, not error: %v", err)
	}
	got, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("report after corrupt-checkpoint recompute diverges")
	}
	qdir := filepath.Join(dir, chaos.QuarantineDirName)
	if ents, err := os.ReadDir(qdir); err != nil || len(ents) != 1 {
		t.Errorf("corrupt checkpoint not quarantined under %s (err %v)", qdir, err)
	}
}

// TestSilentFlipDuringCheckpointWrite injects the paper's failure mode
// into the campaign's own persistence: the filesystem silently flips
// one bit while the final checkpoint wave is written. The write
// succeeds — nothing notices at write time — but the next load must
// catch it via the envelope checksum and recompute rather than resume
// corrupted state.
func TestSilentFlipDuringCheckpointWrite(t *testing.T) {
	cfg, _ := testCampaign(t, 2)
	dir := t.TempDir()
	cfg.CheckpointPath = filepath.Join(dir, "campaign.json")
	cfg.CheckpointEvery = 3
	// Calibrate: count the clean run's I/O steps so the flip can be
	// aimed at the final WriteAtomic's payload write (its last 4 steps
	// are write, fsync, rename, dir-fsync).
	count := chaos.NewInjected(chaos.OS{}, chaos.Plan{})
	cfg.FS = count
	want, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, err := want.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(cfg.CheckpointPath); err != nil {
		t.Fatal(err)
	}

	cfg.FS = chaos.NewInjected(chaos.OS{}, chaos.Plan{Faults: []chaos.Fault{
		{Step: count.Steps() - 3, Kind: chaos.Flip, Arg: 100},
	}})
	rep, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatalf("campaign with silent flip failed loudly at write time: %v", err)
	}
	if data, jerr := rep.JSON(); jerr != nil || !bytes.Equal(data, wantJSON) {
		t.Fatalf("in-memory report affected by an on-disk flip (err %v)", jerr)
	}

	// The flip landed in the committed checkpoint: prove it is there,
	// then prove the next run refuses to consume it.
	data, err := os.ReadFile(cfg.CheckpointPath)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := chaos.Open(data); err == nil {
		t.Fatal("flipped checkpoint still passes its envelope check — flip not injected where expected")
	}

	cfg.FS = nil
	rep2, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatalf("recompute over flipped checkpoint: %v", err)
	}
	if data, jerr := rep2.JSON(); jerr != nil || !bytes.Equal(data, wantJSON) {
		t.Errorf("recomputed report diverges after silent flip (err %v)", jerr)
	}
	if ents, err := os.ReadDir(filepath.Join(dir, chaos.QuarantineDirName)); err != nil || len(ents) != 1 {
		t.Errorf("flipped checkpoint not quarantined (err %v)", err)
	}
}

// TestTornCheckpointWriteKeepsPreviousWave: a write torn mid-payload
// (power loss between write and rename) must never reach the committed
// checkpoint path — the atomic-replace discipline confines the tear to
// the .tmp file, and a resume picks up the previous intact wave.
func TestTornCheckpointWriteKeepsPreviousWave(t *testing.T) {
	cfg, _ := testCampaign(t, 2)
	want := runJSON(t, cfg)
	dir := t.TempDir()
	cfg.CheckpointPath = filepath.Join(dir, "campaign.json")
	cfg.CheckpointEvery = 3

	// Tear the SECOND persist's payload write (step 6: load=1, first
	// persist=2..5, second starts at 6) halfway through.
	cfg.FS = chaos.NewInjected(chaos.OS{}, chaos.Plan{Faults: []chaos.Fault{
		{Step: 6, Kind: chaos.Torn, Arg: 40},
	}})
	if _, err := Run(context.Background(), cfg); err == nil {
		t.Fatal("campaign survived a filesystem that died mid-write")
	}

	// The committed checkpoint must be the intact first wave; the torn
	// bytes exist only as .tmp debris.
	data, err := os.ReadFile(cfg.CheckpointPath)
	if err != nil {
		t.Fatalf("committed checkpoint lost to a torn tmp write: %v", err)
	}
	if _, sealed, err := chaos.Open(data); err != nil || !sealed {
		t.Fatalf("committed checkpoint damaged (sealed=%v err=%v)", sealed, err)
	}

	cfg.FS = nil
	rep, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("resume after torn write diverges from uninterrupted run")
	}
}
