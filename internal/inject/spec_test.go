package inject

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/sta"
)

func TestSpecCodecRoundTrip(t *testing.T) {
	specs := []Spec{
		{Class: StuckAt, Unit: "ALU", Faults: []fault.Spec{
			{Type: sta.Setup, Start: 12, End: 45, C: fault.C1, Edge: fault.AnyChange}}},
		{Class: StuckAt, Unit: "FPU", Faults: []fault.Spec{
			{Type: sta.Hold, Start: 3, End: 9, C: fault.CRandom, Edge: fault.RisingEdge}}},
		{Class: MultiFault, Unit: "ALU", Faults: []fault.Spec{
			{Type: sta.Setup, Start: 12, End: 45, C: fault.C0, Edge: fault.AnyChange},
			{Type: sta.Hold, Start: 3, End: 9, C: fault.CRandom, Edge: fault.FallingEdge}}},
		{Class: Transient, Unit: "ALU", OpIndex: 37, Bit: 12},
		{Class: Intermittent, Unit: "FPU", Bit: 5, Seed: 44193, Period: 7},
	}
	for _, want := range specs {
		str := want.String()
		got, err := ParseSpec(str)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", str, err)
		}
		if got.String() != str {
			t.Errorf("round trip %q -> %q", str, got.String())
		}
	}
}

func TestParseSpecRejects(t *testing.T) {
	bad := []string{
		"",
		"stuck",
		"laser:ALU:s,1,2,0,any",                    // unknown class
		"stuck:GPU:s,1,2,0,any",                    // unknown unit
		"stuck:ALU:x,1,2,0,any",                    // unknown check type
		"stuck:ALU:s,1,2,7,any",                    // unknown C
		"stuck:ALU:s,1,2,0,sometimes",              // unknown edge
		"stuck:ALU:s,1,2,0,any;s,3,4,0,any",        // stuck with two sites
		"multi:ALU:s,1,2,0,any",                    // multi with one site
		"multi:ALU:s,1,2,0,any;s,3,2,0,any",        // duplicate endpoint
		"transient:ALU:5",                          // missing bit
		"transient:ALU:5,40",                       // bit out of range
		"intermittent:ALU:5,0,7",                   // zero LFSR seed
		"intermittent:ALU:5,44193,1",               // degenerate period
		"intermittent:ALU:5,44193,7,9",             // extra field
		"stuck:ALU:s,99999999999999999999,2,0,any", // overflow
	}
	for _, s := range bad {
		if _, err := ParseSpec(s); err == nil {
			t.Errorf("ParseSpec(%q) accepted", s)
		}
	}
}

// FuzzSpecCodec checks that every accepted spec string survives a
// String/Parse round trip unchanged — the property the checkpoint
// format depends on.
func FuzzSpecCodec(f *testing.F) {
	f.Add("stuck:ALU:s,12,45,1,any")
	f.Add("multi:FPU:s,12,45,0,any;h,3,9,R,rise")
	f.Add("transient:ALU:37,12")
	f.Add("intermittent:ALU:5,44193,7")
	f.Add("stuck:FPU:h,0,1,R,fall")
	f.Fuzz(func(t *testing.T, in string) {
		s, err := ParseSpec(in)
		if err != nil {
			return
		}
		str := s.String()
		s2, err := ParseSpec(str)
		if err != nil {
			t.Fatalf("re-parse of %q (from %q): %v", str, in, err)
		}
		if s2.String() != str {
			t.Fatalf("unstable round trip: %q -> %q", str, s2.String())
		}
	})
}
