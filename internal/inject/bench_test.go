package inject

import (
	"context"
	"testing"

	"repro/internal/alu"
	"repro/internal/fpu"
	"repro/internal/lift"
	"repro/internal/module"
)

// benchCampaign runs one campaign per iteration on the configured path.
// The suite image (data segment at 256 KiB) fits in half the default
// 1 MiB arena; oversizing memory makes the per-injection state digest
// (a hash over all of memory) dominate and mask the simulation cost
// the benchmark is measuring.
func benchCampaign(b *testing.B, m *module.Module, cases int, perClass int, scalar bool) {
	suite := lift.RandomSuite(m, cases, 7)
	img, err := suite.Image()
	if err != nil {
		b.Fatal(err)
	}
	cfg := Config{
		Module:      m,
		Image:       img,
		Mode:        "standalone",
		Specs:       SampleUniverse(m, nil, perClass, 42),
		Seed:        42,
		MemSize:     1 << 19,
		MaxCycles:   20_000_000,
		Parallelism: 1,
		Scalar:      scalar,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := Run(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(rep.Completed), "injections")
	}
}

// BenchmarkCampaign measures a tiny standalone ALU campaign end to end
// (golden run + 4 classes x 2 injections, sequential) on the default
// packed path — the CI bench smoke for the injection plane.
func BenchmarkCampaign(b *testing.B) { benchCampaign(b, alu.Build(), 6, 2, false) }

// BenchmarkPackedCampaign measures a full-occupancy FPU campaign — 63
// injections per class fill the stuck and multi waves completely — on
// the packed concurrent-fault-simulation path. The FPU is the unit
// where the packed path earns its keep: the netlist is ~6x the ALU's,
// so the scalar baseline's per-injection instrumented rebuild, compile,
// and gate-level replay are all ~6x heavier, while the packed path
// amortizes one compiled wave across 63 faults and retires diverging
// lanes early. Compare against BenchmarkScalarCampaign (identical
// universe, one replay per injection) for the speedup recorded in
// BENCH_inject.json.
func BenchmarkPackedCampaign(b *testing.B) { benchCampaign(b, fpu.Build(), 6, 63, false) }

// BenchmarkScalarCampaign is BenchmarkPackedCampaign's baseline: the
// identical 252-injection universe classified by the scalar path.
func BenchmarkScalarCampaign(b *testing.B) { benchCampaign(b, fpu.Build(), 6, 63, true) }
