package inject

import (
	"context"
	"testing"
)

// BenchmarkCampaign measures a tiny standalone ALU campaign end to end
// (golden run + 4 classes x 2 injections, sequential) — the CI bench
// smoke for the injection plane.
func BenchmarkCampaign(b *testing.B) {
	cfg, _ := testCampaign(b, 2)
	cfg.Parallelism = 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := Run(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(rep.Completed), "injections")
	}
}
