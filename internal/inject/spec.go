// Package inject is the fault-injection plane and campaign engine: it
// stress-tests a lifted test suite against fault universes the Vega
// pipeline did NOT target. The lifting pipeline (internal/lift) proves
// detection for the STA-predicted aging-prone pairs; this package asks
// the complementary robustness question — what happens on silicon whose
// defects fall outside that prediction? Four fault classes are modeled:
//
//   - StuckAt: a timing-violation failure model on an arbitrary DFF pair
//     *outside* the STA violation set (fault.FailingNetlist).
//   - Transient: a single-cycle bit flip on one execution-unit result
//     (an SEU on the output latch), injected behaviourally.
//   - Intermittent: LFSR-gated recurring bit flips on unit results
//     (marginal silicon that fails sporadically).
//   - MultiFault: two independent stuck-at sites active at once
//     (fault.FailingNetlistMulti).
//
// Every injection is identified by a Spec with a stable string codec so
// campaigns can be checkpointed, resumed, and fuzzed.
package inject

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/fault"
	"repro/internal/netlist"
	"repro/internal/sta"
)

// Class is the injected fault's universe.
type Class int

// Fault classes.
const (
	StuckAt Class = iota
	Transient
	Intermittent
	MultiFault
)

func (c Class) String() string {
	switch c {
	case StuckAt:
		return "stuck"
	case Transient:
		return "transient"
	case Intermittent:
		return "intermittent"
	case MultiFault:
		return "multi"
	}
	return fmt.Sprintf("class(%d)", int(c))
}

// Classes lists every fault class in report order.
func Classes() []Class { return []Class{StuckAt, Transient, Intermittent, MultiFault} }

// Spec identifies one injection. Which fields are meaningful depends on
// Class: netlist classes (StuckAt, MultiFault) carry failure-model
// specs; behavioural classes (Transient, Intermittent) carry the flip
// parameters.
type Spec struct {
	Class Class
	Unit  string // "ALU" or "FPU"

	// Faults are the netlist failure sites: exactly 1 for StuckAt, >= 2
	// with pairwise-distinct endpoints for MultiFault.
	Faults []fault.Spec

	// OpIndex is the zero-based unit-operation count at which a
	// Transient injection flips Bit of the result.
	OpIndex uint32
	// Bit is the flipped result bit (Transient and Intermittent).
	Bit uint8
	// Seed is the Intermittent gating LFSR's nonzero 16-bit seed.
	Seed uint16
	// Period gates Intermittent flips: the flip fires on the ops where
	// lfsr_state mod Period == 0.
	Period uint16
}

// String renders the stable campaign identifier, e.g.
//
//	stuck:ALU:s,12,45,1,any
//	multi:FPU:s,12,45,0,any;h,3,9,R,rise
//	transient:ALU:37,12
//	intermittent:ALU:5,44193,7
func (s Spec) String() string {
	switch s.Class {
	case StuckAt, MultiFault:
		parts := make([]string, len(s.Faults))
		for i, f := range s.Faults {
			parts[i] = faultString(f)
		}
		return fmt.Sprintf("%s:%s:%s", s.Class, s.Unit, strings.Join(parts, ";"))
	case Transient:
		return fmt.Sprintf("%s:%s:%d,%d", s.Class, s.Unit, s.OpIndex, s.Bit)
	case Intermittent:
		return fmt.Sprintf("%s:%s:%d,%d,%d", s.Class, s.Unit, s.Bit, s.Seed, s.Period)
	}
	return fmt.Sprintf("invalid:%s", s.Unit)
}

func faultString(f fault.Spec) string {
	ty := "s"
	if f.Type == sta.Hold {
		ty = "h"
	}
	return fmt.Sprintf("%s,%d,%d,%s,%s", ty, f.Start, f.End, f.C, f.Edge)
}

// ParseSpec decodes a Spec from its String form, validating structure
// (netlist bounds are checked later, at Attach time, against the actual
// module).
func ParseSpec(str string) (Spec, error) {
	parts := strings.SplitN(str, ":", 3)
	if len(parts) != 3 {
		return Spec{}, fmt.Errorf("inject: spec %q: want class:unit:params", str)
	}
	var s Spec
	switch parts[0] {
	case "stuck":
		s.Class = StuckAt
	case "transient":
		s.Class = Transient
	case "intermittent":
		s.Class = Intermittent
	case "multi":
		s.Class = MultiFault
	default:
		return Spec{}, fmt.Errorf("inject: spec %q: unknown class %q", str, parts[0])
	}
	s.Unit = parts[1]
	if s.Unit != "ALU" && s.Unit != "FPU" {
		return Spec{}, fmt.Errorf("inject: spec %q: unknown unit %q", str, s.Unit)
	}

	switch s.Class {
	case StuckAt, MultiFault:
		for _, fs := range strings.Split(parts[2], ";") {
			f, err := parseFault(fs)
			if err != nil {
				return Spec{}, fmt.Errorf("inject: spec %q: %w", str, err)
			}
			s.Faults = append(s.Faults, f)
		}
		if s.Class == StuckAt && len(s.Faults) != 1 {
			return Spec{}, fmt.Errorf("inject: spec %q: stuck wants exactly one fault site", str)
		}
		if s.Class == MultiFault {
			if len(s.Faults) < 2 {
				return Spec{}, fmt.Errorf("inject: spec %q: multi wants >= 2 fault sites", str)
			}
			seen := make(map[netlist.CellID]bool)
			for _, f := range s.Faults {
				if seen[f.End] {
					return Spec{}, fmt.Errorf("inject: spec %q: duplicate endpoint %d", str, f.End)
				}
				seen[f.End] = true
			}
		}
	case Transient:
		fields, err := uintFields(parts[2], 2)
		if err != nil {
			return Spec{}, fmt.Errorf("inject: spec %q: %w", str, err)
		}
		if fields[0] > 1<<30 || fields[1] > 31 {
			return Spec{}, fmt.Errorf("inject: spec %q: op index or bit out of range", str)
		}
		s.OpIndex, s.Bit = uint32(fields[0]), uint8(fields[1])
	case Intermittent:
		fields, err := uintFields(parts[2], 3)
		if err != nil {
			return Spec{}, fmt.Errorf("inject: spec %q: %w", str, err)
		}
		if fields[0] > 31 || fields[1] == 0 || fields[1] > 0xFFFF || fields[2] < 2 || fields[2] > 0xFFFF {
			return Spec{}, fmt.Errorf("inject: spec %q: bit/seed/period out of range", str)
		}
		s.Bit, s.Seed, s.Period = uint8(fields[0]), uint16(fields[1]), uint16(fields[2])
	}
	return s, nil
}

func parseFault(str string) (fault.Spec, error) {
	p := strings.Split(str, ",")
	if len(p) != 5 {
		return fault.Spec{}, fmt.Errorf("fault site %q: want type,start,end,C,edge", str)
	}
	var f fault.Spec
	switch p[0] {
	case "s":
		f.Type = sta.Setup
	case "h":
		f.Type = sta.Hold
	default:
		return fault.Spec{}, fmt.Errorf("fault site %q: unknown check type %q", str, p[0])
	}
	start, err1 := strconv.ParseUint(p[1], 10, 31)
	end, err2 := strconv.ParseUint(p[2], 10, 31)
	if err1 != nil || err2 != nil {
		return fault.Spec{}, fmt.Errorf("fault site %q: bad cell id", str)
	}
	f.Start, f.End = netlist.CellID(start), netlist.CellID(end)
	switch p[3] {
	case "0":
		f.C = fault.C0
	case "1":
		f.C = fault.C1
	case "R":
		f.C = fault.CRandom
	default:
		return fault.Spec{}, fmt.Errorf("fault site %q: unknown C %q", str, p[3])
	}
	switch p[4] {
	case "any":
		f.Edge = fault.AnyChange
	case "rise":
		f.Edge = fault.RisingEdge
	case "fall":
		f.Edge = fault.FallingEdge
	default:
		return fault.Spec{}, fmt.Errorf("fault site %q: unknown edge %q", str, p[4])
	}
	return f, nil
}

func uintFields(str string, n int) ([]uint64, error) {
	p := strings.Split(str, ",")
	if len(p) != n {
		return nil, fmt.Errorf("params %q: want %d comma-separated integers", str, n)
	}
	out := make([]uint64, n)
	for i, s := range p {
		v, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("params %q: %v", str, err)
		}
		out[i] = v
	}
	return out, nil
}
