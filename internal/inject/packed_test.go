package inject

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/alu"
	"repro/internal/chaos"
	"repro/internal/fault"
	"repro/internal/fpu"
	"repro/internal/lift"
	"repro/internal/module"
	"repro/internal/netlist"
	"repro/internal/sta"
)

// diffCampaign runs one campaign on both paths and requires
// byte-identical reports. Returns the number of (image, spec) combos
// covered.
func diffCampaign(t *testing.T, m *module.Module, suiteCases int, suiteSeed int64, perClass int, seed uint64) int {
	t.Helper()
	suite := lift.RandomSuite(m, suiteCases, suiteSeed)
	img, err := suite.Image()
	if err != nil {
		t.Fatal(err)
	}
	specs := SampleUniverse(m, nil, perClass, seed)
	cfg := Config{
		Module:    m,
		Image:     img,
		Specs:     specs,
		Seed:      seed,
		MemSize:   memSize,
		MaxCycles: 20_000_000,
	}
	cfg.Scalar = true
	scalar := runJSON(t, cfg)
	cfg.Scalar = false
	packed := runJSON(t, cfg)
	if !bytes.Equal(scalar, packed) {
		t.Errorf("%s suiteSeed=%d seed=%d: packed report differs from scalar:\n--- scalar\n%s\n--- packed\n%s",
			m.Name, suiteSeed, seed, scalar, packed)
	}
	return len(specs)
}

// TestPackedMatchesScalar is the headline differential: over random
// suite-image x fault-universe combos on both units, the packed
// concurrent fault simulation must classify every injection exactly
// like the scalar one-replay-per-injection baseline — same outcome
// class, same cycle count, same state digest, same divergence cycle —
// down to byte-identical report JSON.
func TestPackedMatchesScalar(t *testing.T) {
	combos := 0
	aluSeeds := 10
	if testing.Short() {
		aluSeeds = 3
	}
	m := alu.Build()
	for s := 0; s < aluSeeds; s++ {
		combos += diffCampaign(t, m, 5, int64(100+s), 2, uint64(s+1))
	}
	if !testing.Short() {
		mf := fpu.Build()
		for s := 0; s < 4; s++ {
			combos += diffCampaign(t, mf, 3, int64(200+s), 1, uint64(s+1))
		}
		if combos < 50 {
			t.Fatalf("only %d netlist x spec x seed combos covered, want >= 50", combos)
		}
	}
}

// fuzzSpec derives one valid injection spec from fuzz bytes; ok=false
// when the bytes do not encode a well-formed spec (e.g. a multi-fault
// with colliding endpoints).
func fuzzSpec(dffs []netlist.CellID, class, p0, p1, p2, p3 byte, w uint16) (Spec, bool) {
	site := func(sel, start, end byte) fault.Spec {
		f := fault.Spec{
			Start: dffs[int(start)%len(dffs)],
			End:   dffs[int(end)%len(dffs)],
			C:     fault.CValue(sel % 3),
			Edge:  fault.EdgeFilter(sel / 3 % 3),
		}
		if sel&64 != 0 {
			f.Type = sta.Hold
		}
		return f
	}
	switch class % 4 {
	case 0:
		return Spec{Class: StuckAt, Unit: "ALU", Faults: []fault.Spec{site(p0, p1, p2)}}, true
	case 1:
		return Spec{Class: Transient, Unit: "ALU", OpIndex: uint32(w), Bit: p1 % 32}, true
	case 2:
		if w == 0 {
			return Spec{}, false
		}
		return Spec{Class: Intermittent, Unit: "ALU", Bit: p1 % 32, Seed: w, Period: 2 + uint16(p2)%31}, true
	default:
		f1 := site(p0, p1, p2)
		f2 := site(p3, p2, p1)
		if f1.End == f2.End {
			return Spec{}, false
		}
		return Spec{Class: MultiFault, Unit: "ALU", Faults: []fault.Spec{f1, f2}}, true
	}
}

// FuzzPackedFaultVsScalar fuzzes the differential over the spec space:
// any spec the campaign accepts must classify identically on the packed
// and scalar paths.
func FuzzPackedFaultVsScalar(f *testing.F) {
	m := alu.Build()
	suite := lift.RandomSuite(m, 4, 11)
	img, err := suite.Image()
	if err != nil {
		f.Fatal(err)
	}
	dffs := m.Netlist.DFFs()

	f.Add(byte(0), byte(0), byte(3), byte(7), byte(1), uint16(0))     // stuck, C0 any setup
	f.Add(byte(0), byte(65), byte(9), byte(9), byte(0), uint16(0))    // stuck, same-DFF hold
	f.Add(byte(0), byte(2), byte(20), byte(40), byte(0), uint16(0))   // stuck, CRandom
	f.Add(byte(1), byte(0), byte(12), byte(0), byte(0), uint16(3))    // transient
	f.Add(byte(2), byte(0), byte(5), byte(4), byte(0), uint16(44193)) // intermittent
	f.Add(byte(3), byte(4), byte(1), byte(8), byte(68), uint16(0))    // multi

	f.Fuzz(func(t *testing.T, class, p0, p1, p2, p3 byte, w uint16) {
		spec, ok := fuzzSpec(dffs, class, p0, p1, p2, p3, w)
		if !ok {
			return
		}
		cfg := Config{
			Module:    m,
			Image:     img,
			Specs:     []Spec{spec},
			MemSize:   memSize,
			MaxCycles: 5_000_000,
		}
		cfg.Scalar = true
		scalarRep, err := Run(context.Background(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Scalar = false
		packedRep, err := Run(context.Background(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		sj, _ := scalarRep.JSON()
		pj, _ := packedRep.JSON()
		if !bytes.Equal(sj, pj) {
			t.Errorf("spec %s: packed differs from scalar:\n--- scalar\n%s\n--- packed\n%s",
				spec.String(), sj, pj)
		}
	})
}

// TestSampleUniverseGoldenVectors pins the universe draw: the first
// specs per class at seed 1 are part of the reproducibility contract
// (EXPERIMENTS.md regen commands reference these exact universes), so
// any change to the sampler's draw order is a breaking change that must
// show up here.
func TestSampleUniverseGoldenVectors(t *testing.T) {
	golden := map[string][]string{
		"ALU": {
			"stuck:ALU:h,63,1660,R,any",
			"stuck:ALU:h,1664,40,R,any",
			"stuck:ALU:s,68,37,1,any",
			"transient:ALU:34,17",
			"transient:ALU:24,26",
			"transient:ALU:11,21",
			"intermittent:ALU:5,42972,28",
			"intermittent:ALU:26,7029,27",
			"intermittent:ALU:31,62258,6",
			"multi:ALU:h,35,82,1,any;h,25,84,0,any",
			"multi:ALU:h,63,64,0,any;s,1669,35,1,any",
			"multi:ALU:h,85,35,1,any;h,26,56,0,any",
		},
		"FPU": {
			"stuck:FPU:h,173,9090,R,any",
			"stuck:FPU:h,141,9099,R,any",
			"stuck:FPU:s,9118,9090,1,any",
			"transient:FPU:34,17",
			"transient:FPU:24,26",
			"transient:FPU:11,21",
			"intermittent:FPU:5,42972,28",
			"intermittent:FPU:26,7029,27",
			"intermittent:FPU:31,62258,6",
			"multi:FPU:h,180,9097,1,any;h,172,9110,0,any",
			"multi:FPU:h,152,184,0,any;s,9110,9109,1,any",
			"multi:FPU:h,168,160,1,any;h,9114,180,0,any",
		},
	}
	for _, m := range []*module.Module{alu.Build(), fpu.Build()} {
		want := golden[m.Name]
		specs := SampleUniverse(m, nil, 3, 1)
		if len(specs) != len(want) {
			t.Fatalf("%s: sampled %d specs, want %d", m.Name, len(specs), len(want))
		}
		for i, s := range specs {
			if got := s.String(); got != want[i] {
				t.Errorf("%s spec %d = %q, want %q", m.Name, i, got, want[i])
			}
		}
	}
}

// TestCheckpointRejectsNewerVersion: a checkpoint written by a future
// schema must be refused, not silently misread.
func TestCheckpointRejectsNewerVersion(t *testing.T) {
	cfg, _ := testCampaign(t, 1)
	cfg.CheckpointPath = filepath.Join(t.TempDir(), "campaign.json")
	if _, err := Run(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(cfg.CheckpointPath)
	if err != nil {
		t.Fatal(err)
	}
	payload, sealed, err := chaos.Open(data)
	if err != nil || !sealed {
		t.Fatalf("checkpoint not sealed in the record envelope: sealed=%v err=%v", sealed, err)
	}
	var cp checkpoint
	if err := json.Unmarshal(payload, &cp); err != nil {
		t.Fatal(err)
	}
	// Unguarded campaigns stay on the version-1 schema so their
	// checkpoints remain byte-identical to pre-guard builds; only
	// guard-enabled campaigns write the current version.
	if cp.Version != 1 {
		t.Fatalf("fresh unguarded checkpoint version = %d, want 1", cp.Version)
	}
	cp.Version = checkpointVersion + 1
	data, err = json.Marshal(&cp)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(cfg.CheckpointPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = Run(context.Background(), cfg)
	if err == nil {
		t.Fatal("checkpoint from a newer schema accepted")
	}
	if !strings.Contains(err.Error(), "version") {
		t.Errorf("rejection does not name the version: %v", err)
	}
}

// TestLegacyCheckpointAccepted: a pre-versioning (version-0) checkpoint
// — no Version key, results without Digest/DivergedAt — still resumes,
// with its completed results preserved verbatim and the remaining
// injections classified on the packed path.
func TestLegacyCheckpointAccepted(t *testing.T) {
	cfg, _ := testCampaign(t, 1)

	full, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}

	legacy := full.Results[0]
	legacy.Digest = 0
	legacy.DivergedAt = 0
	v0 := struct {
		Unit      string
		Mode      string
		Seed      uint64
		MaxCycles uint64
		Specs     []string
		Results   []Result
	}{
		Unit: cfg.Module.Name, Mode: cfg.Mode, Seed: cfg.Seed, MaxCycles: cfg.MaxCycles,
		Results: []Result{legacy},
	}
	for _, s := range cfg.Specs {
		v0.Specs = append(v0.Specs, s.String())
	}
	data, err := json.Marshal(&v0)
	if err != nil {
		t.Fatal(err)
	}
	cfg.CheckpointPath = filepath.Join(t.TempDir(), "campaign.json")
	if err := os.WriteFile(cfg.CheckpointPath, data, 0o644); err != nil {
		t.Fatal(err)
	}

	rep, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatalf("legacy checkpoint rejected: %v", err)
	}
	if rep.Partial || rep.Completed != rep.Total {
		t.Fatalf("resumed campaign incomplete: %d/%d", rep.Completed, rep.Total)
	}
	if rep.Results[0] != legacy {
		t.Errorf("legacy result not preserved verbatim: %+v vs %+v", rep.Results[0], legacy)
	}
	// Outcomes must agree with the fresh run even though the legacy
	// result lacks the new fields.
	for i := range rep.Results {
		if rep.Results[i].Outcome != full.Results[i].Outcome {
			t.Errorf("injection %d outcome %q after legacy resume, want %q",
				i, rep.Results[i].Outcome, full.Results[i].Outcome)
		}
	}
}

// TestScalarCheckpointResumesPackedByteIdentical is the cross-path
// resume contract: a campaign checkpointed mid-flight by the scalar
// baseline, resumed on the packed path, produces the byte-identical
// final report of a pure packed run — including resuming into the
// middle of what the packed path would treat as one wave.
func TestScalarCheckpointResumesPackedByteIdentical(t *testing.T) {
	cfg, _ := testCampaign(t, 2)
	cfg.Parallelism = 1

	want := runJSON(t, cfg) // pure packed reference

	cfg.CheckpointPath = filepath.Join(t.TempDir(), "campaign.json")
	cfg.CheckpointEvery = 3 // splits the 8-spec universe mid-class
	cfg.Scalar = true
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg.OnCheckpoint = func(done int) { cancel() }
	partial, err := Run(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !partial.Partial || partial.Completed == 0 || partial.Completed >= partial.Total {
		t.Fatalf("interrupted scalar campaign: completed %d/%d", partial.Completed, partial.Total)
	}

	cfg.Scalar = false
	cfg.OnCheckpoint = nil
	rep, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("scalar-checkpoint -> packed resume differs from pure packed run:\n%s\n---\n%s", got, want)
	}
}

// TestPackedStatsAccounting sanity-checks RunWithStats: every
// netlist-class injection is accounted as a wave lane (or fallback),
// every behavioural one as shortcut or replay, and occupancy/savings
// stay in range.
func TestPackedStatsAccounting(t *testing.T) {
	cfg, _ := testCampaign(t, 3)
	rep, stats, err := RunWithStats(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Partial {
		t.Fatal("partial")
	}
	if stats.GoldenOps == 0 {
		t.Error("golden op count not recorded")
	}
	for i := range stats.Classes {
		c := &stats.Classes[i]
		switch c.Class {
		case "stuck", "multi":
			if c.LanesUsed+c.Fallbacks != 3 {
				t.Errorf("%s: %d lanes + %d fallbacks, want 3 injections", c.Class, c.LanesUsed, c.Fallbacks)
			}
			if c.Waves < 1 || c.LaneSlots != c.Waves*63 {
				t.Errorf("%s: waves=%d slots=%d", c.Class, c.Waves, c.LaneSlots)
			}
			if c.Retired+c.MaskedInWave != c.LanesUsed {
				t.Errorf("%s: retired %d + masked %d != lanes %d", c.Class, c.Retired, c.MaskedInWave, c.LanesUsed)
			}
			if occ := c.Occupancy(); occ < 0 || occ > 1 {
				t.Errorf("%s: occupancy %v", c.Class, occ)
			}
			if sv := Savings(stats.GoldenOps, c); sv < 0 || sv > 1 {
				t.Errorf("%s: savings %v", c.Class, sv)
			}
		case "transient", "intermittent":
			if c.Shortcut+c.Replayed != 3 {
				t.Errorf("%s: shortcut %d + replayed %d, want 3", c.Class, c.Shortcut, c.Replayed)
			}
		}
	}
}
