package inject

import (
	"bytes"
	"context"
	"path/filepath"
	"testing"

	"repro/internal/alu"
	"repro/internal/cell"
	"repro/internal/cpu"
	"repro/internal/fault"
	"repro/internal/isa"
	"repro/internal/lift"
	"repro/internal/module"
	"repro/internal/netlist"
	"repro/internal/sta"
)

const memSize = 1 << 20

// testCampaign builds a small deterministic ALU campaign: a random
// suite image (behavioural-golden, no BMC needed) and a sampled
// universe with no exclusions.
func testCampaign(t testing.TB, perClass int) (Config, *module.Module) {
	t.Helper()
	m := alu.Build()
	suite := lift.RandomSuite(m, 6, 7)
	img, err := suite.Image()
	if err != nil {
		t.Fatal(err)
	}
	specs := SampleUniverse(m, nil, perClass, 42)
	if len(specs) != 4*perClass {
		t.Fatalf("sampled %d specs, want %d", len(specs), 4*perClass)
	}
	return Config{
		Module:    m,
		Image:     img,
		Mode:      "standalone",
		Specs:     specs,
		Seed:      42,
		MemSize:   memSize,
		MaxCycles: 20_000_000,
	}, m
}

func runJSON(t *testing.T, cfg Config) []byte {
	t.Helper()
	rep, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	data, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestCampaignDeterminism pins the campaign's core contract: the same
// seed yields a byte-identical report at every parallelism setting.
func TestCampaignDeterminism(t *testing.T) {
	cfg, _ := testCampaign(t, 2)
	cfg.Parallelism = 1
	j1 := runJSON(t, cfg)
	cfg.Parallelism = 8
	j8 := runJSON(t, cfg)
	if !bytes.Equal(j1, j8) {
		t.Errorf("reports differ between -j1 and -j8:\n%s\n---\n%s", j1, j8)
	}
}

// TestCampaignCompletes checks the straight-through path: everything
// classified, nothing partial, sane per-class bookkeeping.
func TestCampaignCompletes(t *testing.T) {
	cfg, _ := testCampaign(t, 2)
	rep, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Partial || rep.Completed != rep.Total || rep.Total != len(cfg.Specs) {
		t.Fatalf("completed %d/%d partial=%v", rep.Completed, rep.Total, rep.Partial)
	}
	if len(rep.Results) != rep.Total {
		t.Fatalf("%d results for %d injections", len(rep.Results), rep.Total)
	}
	classTotal := 0
	for _, cs := range rep.Classes {
		classTotal += cs.Total
		if n := cs.Detected + cs.Masked + cs.SDCEscape + cs.StallCrash; n != cs.Total {
			t.Errorf("class %s: outcomes %d != total %d", cs.Class, n, cs.Total)
		}
	}
	if classTotal != rep.Total {
		t.Errorf("class totals %d != %d", classTotal, rep.Total)
	}
}

// TestCampaignDuplicateSpecsShareResults: a result is a pure function
// of its spec, so duplicated specs (SampleUniverse drawing more than a
// small universe holds) are evaluated once and the copies inherit the
// run byte-for-byte — same outcome, digest, cycles, divergence — with
// only the index rewritten. Packed and scalar must agree on the whole
// report with duplicates present.
func TestCampaignDuplicateSpecsShareResults(t *testing.T) {
	cfg, _ := testCampaign(t, 2)
	cfg.Specs = append(cfg.Specs, cfg.Specs[0], cfg.Specs[3], cfg.Specs[5])
	cfg.Parallelism = 1
	rep, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed != len(cfg.Specs) {
		t.Fatalf("completed %d/%d", rep.Completed, len(cfg.Specs))
	}
	byIdx := make(map[int]Result)
	for _, r := range rep.Results {
		byIdx[r.Index] = r
	}
	for want, got := range map[int]int{0: 8, 3: 9, 5: 10} {
		w, g := byIdx[want], byIdx[got]
		if g.Index != got {
			t.Fatalf("duplicate of %d has index %d, want %d", want, g.Index, got)
		}
		w.Index = g.Index
		if w != g {
			t.Errorf("duplicate of spec %d diverges:\n %+v\n %+v", want, w, g)
		}
	}
	cfg.Scalar = true
	j := runJSON(t, cfg)
	cfg.Scalar = false
	if p := runJSON(t, cfg); !bytes.Equal(j, p) {
		t.Errorf("packed and scalar reports differ with duplicate specs:\n%s\n---\n%s", p, j)
	}
}

// TestCampaignInterruptAndResume is the checkpoint/resume contract: a
// campaign cancelled mid-flight leaves a checkpoint from which a second
// Run produces the byte-identical final report of an uninterrupted run.
func TestCampaignInterruptAndResume(t *testing.T) {
	cfg, _ := testCampaign(t, 2)
	cfg.Parallelism = 2

	want := runJSON(t, cfg) // uninterrupted reference

	dir := t.TempDir()
	cfg.CheckpointPath = filepath.Join(dir, "campaign.json")
	cfg.CheckpointEvery = 3

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg.OnCheckpoint = func(done int) { cancel() } // die after the first wave
	partial, err := Run(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !partial.Partial || partial.Completed == 0 || partial.Completed >= partial.Total {
		t.Fatalf("interrupted campaign: completed %d/%d partial=%v",
			partial.Completed, partial.Total, partial.Partial)
	}

	cfg.OnCheckpoint = nil
	rep, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("resumed report differs from uninterrupted run:\n%s\n---\n%s", got, want)
	}
}

// TestCampaignDeadlinePartial: an already-expired context degrades to a
// partial report (coverage so far: nothing) rather than an error.
func TestCampaignDeadlinePartial(t *testing.T) {
	cfg, _ := testCampaign(t, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err := Run(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Partial || rep.Completed != 0 {
		t.Fatalf("completed %d partial=%v under expired deadline", rep.Completed, rep.Partial)
	}
}

// TestCampaignRejectsForeignCheckpoint: a checkpoint from a different
// seed must not be silently merged.
func TestCampaignRejectsForeignCheckpoint(t *testing.T) {
	cfg, _ := testCampaign(t, 1)
	cfg.CheckpointPath = filepath.Join(t.TempDir(), "campaign.json")
	if _, err := Run(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	cfg.Seed = 43
	if _, err := Run(context.Background(), cfg); err == nil {
		t.Fatal("foreign checkpoint accepted")
	}
}

// TestClassifyTaxonomy pins the halt-reason -> outcome mapping.
func TestClassifyTaxonomy(t *testing.T) {
	cases := []struct {
		halt cpu.HaltReason
		eq   bool
		want Outcome
	}{
		{cpu.HaltBreak, false, Detected},
		{cpu.HaltExit, true, Masked},
		{cpu.HaltExit, false, SDCEscape},
		{cpu.HaltStalled, false, StallCrash},
		{cpu.HaltFault, false, StallCrash},
		{cpu.HaltLimit, false, StallCrash},
	}
	for _, tc := range cases {
		if got := classify(tc.halt, tc.eq); got != tc.want {
			t.Errorf("classify(%v, %v) = %v, want %v", tc.halt, tc.eq, got, tc.want)
		}
	}
}

// TestTransientFlipCausesEscapeOrDetection: a transient flip on an op
// the program actually executes must not be classified Masked — the
// corrupted result either trips a suite check or escapes into state.
func TestTransientFlipCausesVisibleOutcome(t *testing.T) {
	m := alu.Build()
	// A program whose single ALU op result is the exit code: flipping
	// bit 0 of op 0 must turn exit 7 into exit 6 -> SDC escape.
	a := isa.NewAsm()
	a.Li(isa.T0, 3)
	a.Li(isa.T1, 4)
	a.Add(isa.A0, isa.T0, isa.T1)
	a.Ecall()
	img, err := a.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Module:    m,
		Image:     img,
		Specs:     []Spec{{Class: Transient, Unit: "ALU", OpIndex: 0, Bit: 0}},
		MemSize:   memSize,
		MaxCycles: 1000,
	}
	// The golden run exits 7, not 0 — run the campaign pieces directly.
	c := cpu.New(memSize)
	if err := Attach(m, c, cfg.Specs[0]); err != nil {
		t.Fatal(err)
	}
	c.Load(img)
	if halt := c.RunCtx(context.Background(), 1000); halt != cpu.HaltExit {
		t.Fatalf("halt = %v", halt)
	}
	if c.ExitCode != 6 {
		t.Errorf("flipped exit = %d, want 6", c.ExitCode)
	}
}

// TestIntermittentFlipperGates: the LFSR gate must fire on some but not
// all ops for a sane period.
func TestIntermittentFlipperGates(t *testing.T) {
	m := alu.Build()
	fl := &flipper{golden: m.Golden, bit: 0, lfsr: lfsr16(0xACE1), period: 3}
	flips := 0
	const n = 3000
	for i := 0; i < n; i++ {
		r, _, _ := fl.exec(0 /* ADD */, 0, 0)
		if r != 0 {
			flips++
		}
	}
	if flips == 0 || flips == n {
		t.Fatalf("intermittent flipper fired %d/%d times", flips, n)
	}
}

// TestAttachRejectsBadSites: out-of-range or non-DFF cells must be
// rejected before they reach the netlist instrumentation.
func TestAttachRejectsBadSites(t *testing.T) {
	m := alu.Build()
	c := cpu.New(memSize)
	dffs := m.Netlist.DFFs()
	// Find a combinational (non-DFF) cell for the kind check.
	nonDFF := netlist.CellID(-1)
	for i := range m.Netlist.Cells {
		if m.Netlist.Cells[i].Kind != cell.DFF {
			nonDFF = netlist.CellID(i)
			break
		}
	}
	if nonDFF < 0 {
		t.Fatal("no combinational cell in ALU netlist")
	}
	site := func(start, end netlist.CellID) []fault.Spec {
		return []fault.Spec{{Type: sta.Setup, Start: start, End: end, C: fault.C1, Edge: fault.AnyChange}}
	}
	bad := []Spec{
		{Class: StuckAt, Unit: "FPU", Faults: site(dffs[0], dffs[1])}, // wrong unit
		{Class: StuckAt, Unit: "ALU", Faults: site(1<<30, dffs[0])},   // out of range
		{Class: StuckAt, Unit: "ALU", Faults: site(nonDFF, dffs[0])},  // not a flip-flop
	}
	for i, s := range bad {
		if err := Attach(m, c, s); err == nil {
			t.Errorf("bad spec %d accepted", i)
		}
	}
}
