package inject

import (
	"strings"

	"repro/internal/cpu"
	"repro/internal/guard"
)

// attachGuards wraps whichever unit backend is installed on c with the
// observe-only guard recorder and returns the verdict log, or nil when
// the campaign runs unguarded. The wrapper goes outermost — outside the
// divergence tracker — so it sees exactly the responses the CPU
// consumes; since both wrappers are observe-only the order is
// behaviour-neutral.
func attachGuards(cfg *Config, c *cpu.CPU) *guard.Log {
	if len(cfg.guardSet) == 0 {
		return nil
	}
	log := guard.NewLog(cfg.guardSet)
	if c.ALU != nil {
		c.ALU = &guard.GuardedALU{Inner: c.ALU, Log: log}
	}
	if c.FPU != nil {
		c.FPU = &guard.GuardedFPU{Inner: c.FPU, Log: log}
	}
	return log
}

// guardNames renders a resolved guard set as its canonical name list.
func guardNames(set []guard.Guard) []string {
	out := make([]string, len(set))
	for i, g := range set {
		out[i] = g.Name
	}
	return out
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func describeGuards(names []string) string {
	if len(names) == 0 {
		return "without guards"
	}
	return "with guards " + strings.Join(names, ",")
}
