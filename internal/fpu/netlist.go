package fpu

import (
	"repro/internal/module"
	"repro/internal/netlist"
	"repro/internal/synth"
)

// PeriodPs is the FPU's target clock period: 250 MHz, matching the
// paper's synthesis target for the CV32E40P FPU.
const PeriodPs = 4000.0

// fpDec is the gate-level operand decode shared by every datapath.
type fpDec struct {
	raw    synth.Bus // the 32 input bits
	sign   netlist.NetID
	exp    synth.Bus // 8
	man    synth.Bus // 23
	expNZ  netlist.NetID
	expOne netlist.NetID // exponent all ones
	manNZ  netlist.NetID
	isZero netlist.NetID
	isSub  netlist.NetID
	isInf  netlist.NetID
	isNaN  netlist.NetID
	isSNaN netlist.NetID
	isNorm netlist.NetID
	eAdj   synth.Bus // 8: max(exp, 1) — the decode frame of the softfloat model
	sig24  synth.Bus // mantissa with hidden bit for normals
}

func decodeFP(c *synth.C, f synth.Bus) fpDec {
	d := fpDec{raw: f, sign: f[31], exp: f[23:31], man: f[0:23]}
	d.expNZ = c.OrReduce(d.exp)
	d.expOne = c.AndReduce(d.exp)
	d.manNZ = c.OrReduce(d.man)
	d.isNaN = c.And(d.expOne, d.manNZ)
	d.isSNaN = c.And(d.isNaN, c.Not(d.man[22]))
	d.isInf = c.And(d.expOne, c.Not(d.manNZ))
	d.isZero = c.And(c.Not(d.expNZ), c.Not(d.manNZ))
	d.isSub = c.And(c.Not(d.expNZ), d.manNZ)
	d.isNorm = c.And(d.expNZ, c.Not(d.expOne))
	d.eAdj = c.MuxBus(d.expNZ, c.Const(8, 1), d.exp)
	d.sig24 = append(append(synth.Bus{}, d.man...), d.expNZ)
	return d
}

// roundPackGate implements the softfloat roundPack function in gates:
// normalize, gradual underflow, RNE rounding, overflow, and packing.
// exp is an 11-bit two's-complement bus; sig28 carries the significand
// with 3 GRS bits and an optional carry at bit 27. Returned flags are
// [NX, UF, OF, DZ, NV] with DZ/NV always 0.
func roundPackGate(c *synth.C, sign netlist.NetID, exp, sig28 synth.Bus) (synth.Bus, synth.Bus) {
	// Carry normalization: one jamming right shift if bit 27 is set.
	c27 := sig28[27]
	shifted := make(synth.Bus, 27)
	for i := 1; i < 27; i++ {
		shifted[i] = sig28[i+1]
	}
	shifted[0] = c.Or(sig28[1], sig28[0])
	sigA := c.MuxBus(c27, sig28[0:27], shifted)
	expA, _ := c.Adder(exp, c.Const(11, 0), c27)

	// Left-normalization amount, bounded by the exponent.
	lz, _ := c.LZC(sigA) // 5 bits, 0..27
	lz11 := c.ZeroExtend(lz, 11)
	expAm1, _ := c.Sub(expA, c.Const(11, 1))
	expNeg := expAm1[10] // expA < 1
	limited := c.LtS(expAm1, lz11)
	inner := c.MuxBus(expNeg, synth.Bus(expAm1[0:5]), c.Const(5, 0))
	shiftL := c.MuxBus(limited, lz, inner)
	sigL := c.ShiftLeft(sigA, shiftL)
	expOut, _ := c.Sub(expA, c.ZeroExtend(shiftL, 11))

	// Right denormalization when the exponent is below the subnormal
	// frame (expA < 1): shift by 1-expA with jamming, or reduce to pure
	// sticky when the shift exceeds the significand width.
	r11 := c.Neg(expAm1)
	rGe28 := c.Not(c.LtS(r11, c.Const(11, 28)))
	sigR := c.ShiftRightJam(sigL, synth.Bus(r11[0:5]))
	allSticky := c.Const(27, 0)
	allSticky[0] = c.OrReduce(sigA)
	sigDen := c.MuxBus(rGe28, sigR, allSticky)
	sigB := c.MuxBus(expNeg, sigL, sigDen)
	expFin := c.MuxBus(expNeg, expOut, c.Const(11, 1))

	// Round to nearest even.
	g, r, s := sigB[2], sigB[1], sigB[0]
	mant24 := sigB[3:27]
	inexact := c.Or(g, c.Or(r, s))
	roundUp := c.And(g, c.Or(c.Or(r, s), mant24[0]))
	mantR, _ := c.Adder(c.ZeroExtend(mant24, 25), c.Const(25, 0), roundUp)
	carry := mantR[24]
	hidden := mantR[23]
	tiny := c.And(c.Not(carry), c.Not(hidden))
	uf := c.And(inexact, tiny)
	expR, _ := c.Adder(expFin, c.Const(11, 0), carry)
	of := c.Not(c.LtS(expR, c.Const(11, 255)))

	eField := c.MuxBus(tiny, synth.Bus(expR[0:8]), c.Const(8, 0))
	packed := make(synth.Bus, 32)
	copy(packed[0:23], mantR[0:23])
	copy(packed[23:31], eField)
	packed[31] = sign

	infBits := make(synth.Bus, 32)
	copy(infBits, c.Const(32, 0x7f800000))
	infBits[31] = sign
	res := c.MuxBus(of, packed, infBits)

	flags := c.Const(5, 0)
	flags[0] = c.Or(inexact, of) // NX
	flags[1] = uf                // UF
	flags[2] = of                // OF
	return res, flags
}

// addPath implements FADD/FSUB.
func addPath(c *synth.C, da, db fpDec, effSub netlist.NetID) (synth.Bus, synth.Bus) {
	sbEff := c.Xor(db.sign, effSub)

	// Operand swap so H has the larger (adjusted) exponent.
	swap := c.LtU(da.eAdj, db.eAdj)
	eH := c.MuxBus(swap, da.eAdj, db.eAdj)
	eL := c.MuxBus(swap, db.eAdj, da.eAdj)
	sigH := c.MuxBus(swap, da.sig24, db.sig24)
	sigL := c.MuxBus(swap, db.sig24, da.sig24)
	signH := c.Mux(swap, da.sign, sbEff)
	signL := c.Mux(swap, sbEff, da.sign)

	d8, _ := c.Sub(eH, eL)
	xH := append(c.Const(3, 0), sigH...) // sig << 3, 27 bits
	xL := append(c.Const(3, 0), sigL...)
	dBig := c.OrReduce(d8[5:8])
	xLbarrel := c.ShiftRightJam(xL, synth.Bus(d8[0:5]))
	xLjam := c.Const(27, 0)
	xLjam[0] = c.OrReduce(xL)
	xLs := c.MuxBus(dBig, xLbarrel, xLjam)

	sameSign := c.Xnor(signH, signL)
	sum28, _ := c.Adder(c.ZeroExtend(xH, 28), c.ZeroExtend(xLs, 28), c.Zero())
	t27, noBorrow := c.Sub(xH, xLs)
	mag27 := c.MuxBus(noBorrow, c.Neg(t27), t27)
	cancel := c.And(c.Not(sameSign), c.IsZero(mag27))
	signDiff := c.Mux(noBorrow, signL, signH)
	signRaw := c.Mux(sameSign, signDiff, signH)
	signOut := c.And(signRaw, c.Not(cancel))
	sig28 := c.MuxBus(sameSign, c.ZeroExtend(mag27, 28), sum28)

	packed, f5 := roundPackGate(c, signOut, c.ZeroExtend(eH, 11), sig28)

	// Special cases: NaN and infinity.
	anyNaN := c.Or(da.isNaN, db.isNaN)
	snan := c.Or(da.isSNaN, db.isSNaN)
	infInf := c.And(c.And(da.isInf, db.isInf), c.Xor(da.sign, sbEff))
	anyInf := c.Or(da.isInf, db.isInf)
	bEff := append(append(synth.Bus{}, db.raw[0:31]...), sbEff)
	infRes := c.MuxBus(da.isInf, bEff, da.raw)
	nanOut := c.Or(anyNaN, infInf)
	special := c.MuxBus(nanOut, infRes, c.Const(32, uint64(QNaN)))
	isSpecial := c.Or(anyNaN, anyInf)
	res := c.MuxBus(isSpecial, packed, special)
	nv := c.Or(snan, infInf)
	fSpecial := c.Const(5, 0)
	fSpecial[4] = nv
	flags := c.MuxBus(isSpecial, f5, fSpecial)
	return res, flags
}

// mulPath implements FMUL.
func mulPath(c *synth.C, da, db fpDec) (synth.Bus, synth.Bus) {
	sign := c.Xor(da.sign, db.sign)

	lza, _ := c.LZC(da.sig24)
	lzb, _ := c.LZC(db.sig24)
	sigNa := c.ShiftLeft(da.sig24, lza)
	sigNb := c.ShiftLeft(db.sig24, lzb)
	expNa, _ := c.Sub(c.ZeroExtend(da.eAdj, 11), c.ZeroExtend(lza, 11))
	expNb, _ := c.Sub(c.ZeroExtend(db.eAdj, 11), c.ZeroExtend(lzb, 11))

	prod := c.Mul(sigNa, sigNb) // 48 bits, leading 1 at 46 or 47
	expSum, _ := c.Adder(expNa, expNb, c.Zero())
	expP, _ := c.Sub(expSum, c.Const(11, 127))

	sticky := c.OrReduce(prod[0:20])
	sig28 := append(synth.Bus{}, prod[20:48]...)
	sig28[0] = c.Or(sig28[0], sticky)

	packed, f5 := roundPackGate(c, sign, expP, sig28)

	anyNaN := c.Or(da.isNaN, db.isNaN)
	snan := c.Or(da.isSNaN, db.isSNaN)
	anyInf := c.Or(da.isInf, db.isInf)
	anyZero := c.Or(da.isZero, db.isZero)
	infZero := c.Or(c.And(da.isInf, db.isZero), c.And(db.isInf, da.isZero))
	nanOut := c.Or(anyNaN, infZero)

	infBits := make(synth.Bus, 32)
	copy(infBits, c.Const(32, 0x7f800000))
	infBits[31] = sign
	zeroBits := c.Const(32, 0)
	zeroBits[31] = sign
	nonNaN := c.MuxBus(anyInf, zeroBits, infBits)
	special := c.MuxBus(nanOut, nonNaN, c.Const(32, uint64(QNaN)))
	isSpecial := c.Or(c.Or(anyNaN, anyInf), anyZero)
	res := c.MuxBus(isSpecial, packed, special)
	nv := c.Or(snan, infZero)
	fSpecial := c.Const(5, 0)
	fSpecial[4] = nv
	flags := c.MuxBus(isSpecial, f5, fSpecial)
	return res, flags
}

// comparePrimitives computes the shared ordering predicates.
type comparePrims struct {
	flt, feq               netlist.NetID // IEEE < and == for non-NaN inputs
	bothZero, anyNaN, snan netlist.NetID
}

func comparePath(c *synth.C, da, db fpDec) comparePrims {
	var p comparePrims
	p.bothZero = c.And(da.isZero, db.isZero)
	p.anyNaN = c.Or(da.isNaN, db.isNaN)
	p.snan = c.Or(da.isSNaN, db.isSNaN)
	magA := da.raw[0:31]
	magB := db.raw[0:31]
	magLt := c.LtU(magA, magB)
	magGt := c.LtU(magB, magA)
	sa, sb := da.sign, db.sign
	t1 := c.And(sa, c.Not(sb))
	t2 := c.And(c.And(sa, sb), magGt)
	t3 := c.And(c.And(c.Not(sa), c.Not(sb)), magLt)
	p.flt = c.And(c.Not(p.bothZero), c.Or(t1, c.Or(t2, t3)))
	p.feq = c.Or(c.EqualBus(da.raw, db.raw), p.bothZero)
	return p
}

// Build synthesizes the FPU into a gate-level netlist with the same
// pipeline/handshake structure as the ALU, plus the FPU-specific
// clock-gated status registers (out_valid, busy, active) whose short
// launch paths from the valid pipeline make them the hold-violation
// candidates after clock-tree aging.
func Build() *module.Module { return build(nil) }

// GuardNames lists the gate-level runtime checkers this unit can emit,
// in canonical order (mirrored by the guard package's FPU registry).
var GuardNames = []string{"sign", "exprange", "nanprop", "addswap", "mulswap"}

// BuildGuarded is Build plus synthesized always-on checker cells for the
// named guards (see internal/guard). Checkers tap the stage-2
// combinational datapath (decoded operands in, result/flag muxes out)
// and latch violations into sticky g_<name>_q alarm registers clocked
// with the result registers; the swap guards instantiate a full second
// add/multiply path with commuted operands. Checker cells and the
// "g_<name>"/"guard_fire" outputs are appended after the base netlist,
// which stays a bit-identical prefix — fault universes sampled on
// Build() remain valid. Used for costing (cell count, timing) and
// gate-level false-positive proofs; campaigns attach behavioural guards
// at the backend seam.
func BuildGuarded(guards ...string) *module.Module { return build(guards) }

func build(guards []string) *module.Module {
	b := netlist.NewBuilder("fpu")
	c := synth.NewC(b)

	clk := b.Clock("clk")
	inValid := b.Input(module.PortInValid)
	op := b.InputBus(module.PortOp, OpWidth)
	a := b.InputBus(module.PortA, 32)
	bo := b.InputBus(module.PortB, 32)

	// Depth-4 clock tree (16 leaves) with six levels of local buffering
	// under every leaf — nominally balanced, so skew appears only when
	// the rarely-enabled subtrees age. Leaf 0 is ungated (valid
	// pipeline); leaves 1-9 are gated by in_valid (operand isolation);
	// leaves 10-12 are gated by valid_q (result registers, rewired
	// below); leaves 13-15 gate the status registers on their own
	// activity.
	opts := []synth.ClockTreeOption{synth.WithLeafChain(6)}
	for leaf := 1; leaf <= 15; leaf++ {
		opts = append(opts, synth.WithLeafGate(leaf, inValid))
	}
	tree := c.BuildClockTree(clk, 4, opts...)

	validQ := b.AddDFFNamed("valid_q", inValid, tree.Leaves[0], false)

	aq := append(append(
		c.RegisterBus(a[0:11], tree.Leaves[1], 0),
		c.RegisterBus(a[11:22], tree.Leaves[2], 0)...),
		c.RegisterBus(a[22:32], tree.Leaves[3], 0)...)
	bq := append(append(
		c.RegisterBus(bo[0:11], tree.Leaves[4], 0),
		c.RegisterBus(bo[11:22], tree.Leaves[5], 0)...),
		c.RegisterBus(bo[22:32], tree.Leaves[6], 0)...)
	opq := c.RegisterBus(op, tree.Leaves[9], 0)

	// Datapath.
	da := decodeFP(c, aq)
	db := decodeFP(c, bq)
	onehot := c.Decoder(opq)

	addRes, addFlags := addPath(c, da, db, onehot[OpFsub])
	mulRes, mulFlags := mulPath(c, da, db)
	prims := comparePath(c, da, db)

	// FMIN/FMAX.
	isMax := onehot[OpFmax]
	aLess := c.Or(prims.flt, c.And(prims.bothZero, da.sign))
	takeA := c.Xor(aLess, isMax)
	ordered := c.MuxBus(takeA, bq, aq)
	bothNaN := c.And(da.isNaN, db.isNaN)
	oneNaN := c.MuxBus(da.isNaN, c.MuxBus(db.isNaN, ordered, aq), bq)
	mmRes := c.MuxBus(bothNaN, oneNaN, c.Const(32, uint64(QNaN)))
	mmFlags := c.Const(5, 0)
	mmFlags[4] = prims.snan

	// FLE/FLT/FEQ.
	le := c.Or(prims.flt, prims.feq)
	cmpSel := c.Select1H(synth.Bus{onehot[OpFle], onehot[OpFlt], onehot[OpFeq]},
		[]synth.Bus{{le}, {prims.flt}, {prims.feq}})
	cmpBit := c.And(cmpSel[0], c.Not(prims.anyNaN))
	cmpRes := c.ZeroExtend(synth.Bus{cmpBit}, 32)
	sigCmp := c.Or(onehot[OpFle], onehot[OpFlt])
	nvCmp := c.Or(c.And(sigCmp, prims.anyNaN), c.And(onehot[OpFeq], prims.snan))
	cmpFlags := c.Const(5, 0)
	cmpFlags[4] = nvCmp

	// FSGNJ/FSGNJN/FSGNJX.
	sgnjSign := c.Select1H(synth.Bus{onehot[OpFsgnj], onehot[OpFsgnjn], onehot[OpFsgnjx]},
		[]synth.Bus{{db.sign}, {c.Not(db.sign)}, {c.Xor(da.sign, db.sign)}})
	sgnjRes := append(append(synth.Bus{}, aq[0:31]...), sgnjSign[0])

	// FCLASS.
	classBits := synth.Bus{
		c.And(da.sign, da.isInf),
		c.And(da.sign, da.isNorm),
		c.And(da.sign, da.isSub),
		c.And(da.sign, da.isZero),
		c.And(c.Not(da.sign), da.isZero),
		c.And(c.Not(da.sign), da.isSub),
		c.And(c.Not(da.sign), da.isNorm),
		c.And(c.Not(da.sign), da.isInf),
		da.isSNaN,
		c.And(da.isNaN, c.Not(da.isSNaN)),
	}
	classRes := c.ZeroExtend(classBits, 32)

	zero5 := c.Const(5, 0)
	result := c.Select1H(onehot[0:NumOps], []synth.Bus{
		addRes, addRes, mulRes, mmRes, mmRes,
		cmpRes, cmpRes, cmpRes, sgnjRes, sgnjRes, sgnjRes, classRes,
	})
	flags := c.Select1H(onehot[0:NumOps], []synth.Bus{
		addFlags, addFlags, mulFlags, mmFlags, mmFlags,
		cmpFlags, cmpFlags, cmpFlags, zero5, zero5, zero5, zero5,
	})

	// Result registers (gated by valid_q).
	resultQ := append(append(
		c.RegisterBus(result[0:11], tree.Leaves[10], 0),
		c.RegisterBus(result[11:22], tree.Leaves[11], 0)...),
		c.RegisterBus(result[22:32], tree.Leaves[12], 0)...)
	flagsQ := c.RegisterBus(flags, tree.Leaves[10], 0)
	for _, leaf := range []int{10, 11, 12} {
		b.RewireInput(tree.GateCell[leaf], 1, validQ)
	}

	// Status registers on activity-gated leaves. Each samples the valid
	// pipeline (leaf 0, ungated) directly, over the shortest
	// register-to-register paths in the unit, into a rarely-clocked,
	// heavily-aged subtree: out_valid is the downstream handshake, fwe_q
	// strobes the architectural fflags accumulation, and busy_q reports
	// stage-2 occupancy. These are the unit's hold-violation candidates
	// once the clock tree ages (§3.2.2).
	outValid := b.AddDFFNamed("out_valid_q", validQ, tree.Leaves[15], false)
	b.RewireInput(tree.GateCell[15], 1, c.Or(validQ, outValid))

	fweQ := b.AddDFFNamed("fwe_q", validQ, tree.Leaves[14], false)
	b.RewireInput(tree.GateCell[14], 1, c.Or(validQ, fweQ))

	busyQ := b.AddDFFNamed("busy_q", validQ, tree.Leaves[13], false)
	b.RewireInput(tree.GateCell[13], 1, c.Or(validQ, busyQ))

	b.OutputBus(module.PortResult, resultQ)
	b.OutputBus(module.PortFlags, flagsQ)
	b.Output(module.PortOutValid, outValid)
	b.Output("flags_valid", fweQ)
	b.Output("busy", busyQ)

	// Guard checkers: stage-2 taps, sticky alarms on the result leaf.
	if len(guards) > 0 {
		synthFPUGuards(b, c, guards, fpuGuardTaps{
			da: da, db: db, onehot: onehot, aq: aq, bq: bq,
			result: result, flags: flags, clk: tree.Leaves[10],
		})
	}

	return &module.Module{
		Name:        "FPU",
		Netlist:     b.MustBuild(),
		Tree:        tree,
		Latency:     2,
		OpWidth:     OpWidth,
		FlagWidth:   FlagWidth,
		PeriodPs:    PeriodPs,
		SynthMargin: 0.012,
		Golden: func(op, a, b uint32) (uint32, uint32) {
			return Eval(Op(op), a, b)
		},
		OpValid:     func(op uint32) bool { return Op(op).Valid() },
		StickyFlags: true,
	}
}
