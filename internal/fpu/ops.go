package fpu

import "fmt"

// Op is an FPU operation selector.
type Op uint32

// The operation set is the RV32F subset that FPNew's add/mul and
// non-computational paths serve (divide/sqrt live in a separate iterative
// unit that the paper does not analyze).
const (
	OpFadd   Op = 0
	OpFsub   Op = 1
	OpFmul   Op = 2
	OpFmin   Op = 3
	OpFmax   Op = 4
	OpFle    Op = 5
	OpFlt    Op = 6
	OpFeq    Op = 7
	OpFsgnj  Op = 8
	OpFsgnjn Op = 9
	OpFsgnjx Op = 10
	OpFclass Op = 11
	NumOps      = 12
)

var opNames = [...]string{
	"FADD", "FSUB", "FMUL", "FMIN", "FMAX", "FLE", "FLT", "FEQ",
	"FSGNJ", "FSGNJN", "FSGNJX", "FCLASS",
}

func (op Op) String() string {
	if int(op) < len(opNames) {
		return opNames[op]
	}
	return fmt.Sprintf("FPUOP(%d)", uint32(op))
}

// Valid reports whether op is a legal encoding.
func (op Op) Valid() bool { return op < NumOps }

// OpWidth is the width of the op input port.
const OpWidth = 4

// FlagWidth is the width of the flags output port (the five fflags bits).
const FlagWidth = 5

// Eval is the behavioural golden model dispatcher.
func Eval(op Op, a, b uint32) (result uint32, flags uint32) {
	switch op {
	case OpFadd:
		return Add(a, b, false)
	case OpFsub:
		return Add(a, b, true)
	case OpFmul:
		return Mul(a, b)
	case OpFmin:
		return MinMax(a, b, false)
	case OpFmax:
		return MinMax(a, b, true)
	case OpFle:
		return Cmp(a, b, 0)
	case OpFlt:
		return Cmp(a, b, 1)
	case OpFeq:
		return Cmp(a, b, 2)
	case OpFsgnj:
		return SignInject(a, b, 0), 0
	case OpFsgnjn:
		return SignInject(a, b, 1), 0
	case OpFsgnjx:
		return SignInject(a, b, 2), 0
	case OpFclass:
		return Classify(a), 0
	}
	panic("fpu: invalid op " + op.String())
}
