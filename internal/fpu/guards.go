package fpu

import (
	"repro/internal/netlist"
	"repro/internal/synth"
)

// fpuGuardTaps carries the stage-2 nets the synthesized runtime
// checkers observe: the decoded operands, the op decode, the raw
// operand registers, the result/flag muxes feeding the output
// registers, and the valid_q-gated clock leaf the alarms latch on.
type fpuGuardTaps struct {
	da, db fpDec
	onehot synth.Bus
	aq, bq synth.Bus
	result synth.Bus
	flags  synth.Bus
	clk    netlist.NetID
}

// synthFPUGuards appends checker cells for the named guards (see
// internal/guard for the invariant derivations — the gate
// implementations here mirror the behavioural predicates exactly).
// Every guard produces a sticky alarm output "g_<name>"; "guard_fire"
// is their OR.
func synthFPUGuards(b *netlist.Builder, c *synth.C, guards []string, t fpuGuardTaps) {
	da, db, onehot, result, flags := t.da, t.db, t.onehot, t.result, t.flags

	// Shared predicates (cheap; recomputed once for all guards).
	sbEff := c.Xor(db.sign, onehot[OpFsub])
	isAddSub := c.Or(onehot[OpFadd], onehot[OpFsub])
	isArith := c.Or(isAddSub, onehot[OpFmul])
	resExpOne := c.AndReduce(result[23:31])
	resManNZ := c.OrReduce(result[0:23])
	resNaN := c.And(resExpOne, resManNZ)
	resInf := c.And(resExpOne, c.Not(resManNZ))
	anyNaN := c.Or(da.isNaN, db.isNaN)
	anyInf := c.Or(da.isInf, db.isInf)
	anyZero := c.Or(da.isZero, db.isZero)
	noNaN := c.Not(anyNaN)
	sameSign := c.And(c.Xnor(da.sign, sbEff), noNaN)
	qnanBits := c.Const(32, uint64(QNaN))

	var alarms synth.Bus
	alarm := func(name string, fire netlist.NetID) {
		q := c.StickyAlarm("g_"+name+"_q", fire, t.clk)
		b.Output("g_"+name, q)
		alarms = append(alarms, q)
	}

	for _, name := range guards {
		switch name {
		case "sign":
			// FMUL sign algebra, same-sign add keeps its sign, min/max
			// results are operands or QNaN, boolean compares, FSGNJ
			// recompute, FCLASS one-hot.
			mulBad := c.And(onehot[OpFmul], c.And(c.Not(resNaN),
				c.Xor(result[31], c.Xor(da.sign, db.sign))))
			addBad := c.And(isAddSub, c.And(sameSign,
				c.Or(resNaN, c.Xor(result[31], da.sign))))
			isMM := c.Or(onehot[OpFmin], onehot[OpFmax])
			mmBad := c.And(isMM, c.Not(c.OrReduce(synth.Bus{
				c.EqualBus(result, t.aq),
				c.EqualBus(result, t.bq),
				c.EqualBus(result, qnanBits),
			})))
			isCmp := c.OrReduce(synth.Bus{onehot[OpFle], onehot[OpFlt], onehot[OpFeq]})
			cmpBad := c.And(isCmp, c.OrReduce(result[1:32]))
			sgnjSel := synth.Bus{onehot[OpFsgnj], onehot[OpFsgnjn], onehot[OpFsgnjx]}
			isSgnj := c.OrReduce(sgnjSel)
			wantSign := c.Select1H(sgnjSel, []synth.Bus{
				{db.sign}, {c.Not(db.sign)}, {c.Xor(da.sign, db.sign)}})
			sgnjBad := c.And(isSgnj, c.Or(
				c.OrReduce(c.XorBus(result[0:31], t.aq[0:31])),
				c.Xor(result[31], wantSign[0])))
			ones := c.ZeroExtend(c.OnesCount(synth.Bus(result[0:10])), 5)
			classBad := c.And(onehot[OpFclass], c.Not(c.And(
				c.EqualBus(ones, c.Const(5, 1)),
				c.Not(c.OrReduce(result[10:32])))))
			alarm(name, c.OrReduce(synth.Bus{
				mulBad, addBad, mmBad, cmpBad, sgnjBad, classBad}))

		case "exprange":
			// FADD/FSUB: decode-frame exponent bounds (≤ max+2; no
			// cancellation below max for same-effective-sign sums).
			bothFinite := c.Nor(da.expOne, db.expOne)
			bothZero := c.And(da.isZero, db.isZero)
			er := synth.Bus(result[23:31])
			erNZ := c.OrReduce(er)
			emax := c.MuxBus(c.LtU(da.eAdj, db.eAdj), da.eAdj, db.eAdj)
			bound10, _ := c.Adder(c.ZeroExtend(emax, 10), c.Const(10, 2), c.Zero())
			upperBad := c.And(erNZ, c.LtU(bound10, c.ZeroExtend(er, 10)))
			eAdjR := c.MuxBus(erNZ, c.Const(8, 1), er)
			lowerBad := c.And(c.And(sameSign, c.Nor(da.isZero, db.isZero)),
				c.LtU(c.ZeroExtend(eAdjR, 10), c.ZeroExtend(emax, 10)))
			addNZBad := c.Or(upperBad, lowerBad)
			addZBad := c.OrReduce(result[0:31])
			addBad := c.And(c.And(isAddSub, bothFinite),
				c.Mux(bothZero, addNZBad, addZBad))

			// FMUL: fully-normalized exponents via LZC, pre-round
			// exponent e = ea'+eb'-127, result in [e, e+2] with the
			// subnormal/overflow thresholds.
			lza, _ := c.LZC(da.sig24)
			lzb, _ := c.LZC(db.sig24)
			eNa, _ := c.Sub(c.ZeroExtend(da.eAdj, 11), c.ZeroExtend(lza, 11))
			eNb, _ := c.Sub(c.ZeroExtend(db.eAdj, 11), c.ZeroExtend(lzb, 11))
			eSum, _ := c.Adder(eNa, eNb, c.Zero())
			e11, _ := c.Sub(eSum, c.Const(11, 127))
			eP2, _ := c.Adder(e11, c.Const(11, 2), c.Zero())
			er11 := c.ZeroExtend(er, 11)
			normBad := c.And(c.And(erNZ, c.Not(resExpOne)),
				c.Or(c.LtS(er11, e11), c.LtS(eP2, er11)))
			subBad := c.And(c.Not(erNZ), c.LtS(c.Const(11, 0), e11))
			infBad := c.And(resInf, c.LtS(e11, c.Const(11, 253)))
			mulNZBad := c.OrReduce(synth.Bus{resNaN, normBad, subBad, infBad})
			mulBad := c.And(c.And(onehot[OpFmul], bothFinite),
				c.Mux(anyZero, mulNZBad, c.OrReduce(result[0:31])))

			alarm(name, c.Or(addBad, mulBad))

		case "nanprop":
			// NaN in ⇒ canonical QNaN out; invalid combos ⇒ QNaN;
			// otherwise never NaN and infinities propagate exactly;
			// plus the flag-bit implications.
			eqQ := c.EqualBus(result, qnanBits)
			infInf := c.And(c.And(da.isInf, db.isInf), c.Xor(da.sign, sbEff))
			infZero := c.Or(c.And(da.isInf, db.isZero), c.And(db.isInf, da.isZero))
			inv := c.Or(c.And(isAddSub, infInf), c.And(onehot[OpFmul], infZero))
			clean := c.And(noNaN, c.Not(inv))
			f1 := c.And(c.And(isArith, anyNaN), c.Not(eqQ))
			f2 := c.And(c.And(isArith, inv), c.Not(eqQ))
			f3 := c.And(c.And(isArith, clean), resNaN)
			expMulInf := append(append(synth.Bus{}, c.Const(31, 0x7f800000)...),
				c.Xor(da.sign, db.sign))
			f4 := c.And(c.And(onehot[OpFmul], c.And(anyInf, clean)),
				c.Not(c.EqualBus(result, expMulInf)))
			bEff := append(append(synth.Bus{}, t.bq[0:31]...), sbEff)
			expAddInf := c.MuxBus(da.isInf, bEff, t.aq)
			f5 := c.And(c.And(isAddSub, c.And(anyInf, clean)),
				c.Not(c.EqualBus(result, expAddInf)))
			f6 := flags[3] // DZ is never raised by this unit
			f7 := c.And(flags[1], c.Not(flags[0]))
			f8 := c.And(flags[2], c.Not(flags[0]))
			special := c.Or(c.And(isAddSub, c.Or(anyNaN, anyInf)),
				c.And(onehot[OpFmul], c.OrReduce(synth.Bus{anyNaN, anyInf, anyZero})))
			f9 := c.And(special, c.OrReduce(flags[0:3]))
			f10 := c.And(c.And(isArith, inv), c.Not(flags[4]))
			f11 := c.And(c.And(isArith, c.And(anyInf, clean)), flags[4])
			alarm(name, c.OrReduce(synth.Bus{
				f1, f2, f3, f4, f5, f6, f7, f8, f9, f10, f11}))

		case "addswap":
			// A full second add path with commuted operands:
			// a+b ≡ b+a, a−b ≡ (−b)+a, bit-exact including flags.
			bNeg := append(append(synth.Bus{}, t.bq[0:31]...),
				c.Xor(t.bq[31], onehot[OpFsub]))
			dbEff := decodeFP(c, bNeg)
			res2, fl2 := addPath(c, dbEff, da, c.Zero())
			alarm(name, c.And(isAddSub, c.Or(
				c.Not(c.EqualBus(result, res2)),
				c.Not(c.EqualBus(flags, fl2)))))

		case "mulswap":
			// A full second multiplier with commuted operands.
			res2, fl2 := mulPath(c, db, da)
			alarm(name, c.And(onehot[OpFmul], c.Or(
				c.Not(c.EqualBus(result, res2)),
				c.Not(c.EqualBus(flags, fl2)))))

		default:
			panic("fpu: unknown guard " + name)
		}
	}
	b.Output("guard_fire", c.OrReduce(alarms))
}
