// Package fpu implements the FPNew-style floating-point unit the paper
// analyzes: an IEEE-754 binary32 datapath (add, sub, mul, min/max,
// compares, sign injection, classify) with RISC-V flag semantics, in two
// forms that must agree bit-exactly — a behavioural softfloat golden
// model and a synthesized gate-level netlist.
//
// Rounding is round-to-nearest-even (the only mode the synthesized unit
// implements; FPNew instantiates all five, but the analysis only needs a
// deterministic reference). Subnormals are fully supported. NaN results
// are canonicalized to 0x7fc00000 as RISC-V requires.
package fpu

// RISC-V fflags bit positions.
const (
	FlagNX uint32 = 1 << 0 // inexact
	FlagUF uint32 = 1 << 1 // underflow
	FlagOF uint32 = 1 << 2 // overflow
	FlagDZ uint32 = 1 << 3 // divide by zero (never raised by this unit)
	FlagNV uint32 = 1 << 4 // invalid operation
)

// QNaN is the RISC-V canonical quiet NaN.
const QNaN uint32 = 0x7fc00000

func signOf(x uint32) uint32 { return x >> 31 }
func expOf(x uint32) uint32  { return x >> 23 & 0xff }
func manOf(x uint32) uint32  { return x & 0x7fffff }

func isNaN(x uint32) bool  { return expOf(x) == 0xff && manOf(x) != 0 }
func isSNaN(x uint32) bool { return isNaN(x) && x&0x400000 == 0 }
func isInf(x uint32) bool  { return expOf(x) == 0xff && manOf(x) == 0 }
func isZero(x uint32) bool { return x&0x7fffffff == 0 }

// decode returns (sign, unbiased-ish exponent, 24-bit significand) for a
// finite input, normalizing subnormals into the same fixed-point frame:
// the significand is m with the hidden bit at position 23 for normals;
// subnormals use exp=1 with no hidden bit.
func decode(x uint32) (sign uint32, exp int32, sig uint32) {
	sign = signOf(x)
	e := expOf(x)
	m := manOf(x)
	if e == 0 {
		return sign, 1, m
	}
	return sign, int32(e), m | 0x800000
}

// roundPack assembles a result from sign, exponent and a significand with
// 3 extra GRS bits (sig28 holds the significand left-shifted by 3, with
// the leading 1 — if any — at bit 26). exp is the biased exponent that
// bit 26 corresponds to. It performs RNE rounding, gradual underflow and
// overflow, and returns the packed float and flags.
func roundPack(sign uint32, exp int32, sig28 uint32) (uint32, uint32) {
	var flags uint32

	if sig28 == 0 {
		return sign << 31, 0
	}

	// Normalize left: bring the MSB to bit 26 while exp allows.
	for sig28 < 1<<26 && exp > 1 {
		sig28 <<= 1
		exp--
	}
	// Normalize right (cannot happen after the left pass unless caller
	// passed a carry-out at bit 27).
	for sig28 >= 1<<27 {
		sticky := sig28 & 1
		sig28 = sig28>>1 | sticky
		exp++
	}

	subnormal := sig28 < 1<<26 // exp==1 and no hidden bit: subnormal frame

	// Denormalize if the exponent underflowed below the subnormal frame.
	if exp < 1 {
		shift := uint32(1 - exp)
		var sticky uint32
		if shift >= 28 {
			sticky = b2u(sig28 != 0)
			sig28 = 0
		} else {
			if sig28&(1<<shift-1) != 0 {
				sticky = 1
			}
			sig28 >>= shift
		}
		sig28 |= sticky
		exp = 1
		subnormal = true
	}

	grs := sig28 & 7
	mant := sig28 >> 3 // up to 24 bits
	inexact := grs != 0
	// Round to nearest even.
	if grs > 4 || (grs == 4 && mant&1 == 1) {
		mant++
	}
	if mant >= 1<<24 { // rounding carried out of the significand
		mant >>= 1
		exp++
		subnormal = false
	}
	if subnormal && mant >= 1<<23 {
		// Rounded up from the subnormal frame into the smallest normal.
		subnormal = false
	}

	if inexact {
		flags |= FlagNX
		if subnormal {
			flags |= FlagUF // tiny and inexact
		}
	}

	if exp >= 0xff {
		// Overflow: RNE rounds to infinity.
		return sign<<31 | 0xff<<23, flags | FlagOF | FlagNX
	}

	var e uint32
	if mant < 1<<23 {
		e = 0 // subnormal (or zero)
	} else {
		e = uint32(exp)
		mant &= 0x7fffff
	}
	return sign<<31 | e<<23 | mant, flags
}

func b2u(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

// Add computes a+b (effectiveSub flips b's sign for FSUB) with RNE
// rounding, returning the result bits and raised fflags.
func Add(a, b uint32, effectiveSub bool) (uint32, uint32) {
	if effectiveSub {
		b ^= 1 << 31
	}
	var flags uint32
	if isSNaN(a) || isSNaN(b) {
		flags |= FlagNV
	}
	if isNaN(a) || isNaN(b) {
		return QNaN, flags
	}
	switch {
	case isInf(a) && isInf(b):
		if signOf(a) != signOf(b) {
			return QNaN, flags | FlagNV
		}
		return a, flags
	case isInf(a):
		return a, flags
	case isInf(b):
		return b, flags
	}
	if isZero(a) && isZero(b) {
		// +0 + -0 = +0 under RNE; equal signs keep the sign.
		if signOf(a) == signOf(b) {
			return a, flags
		}
		return 0, flags
	}

	sa, ea, ma := decode(a)
	sb, eb, mb := decode(b)
	// Work with 3 GRS bits.
	xa := uint64(ma) << 3
	xb := uint64(mb) << 3
	exp := ea
	if ea < eb {
		sa, sb = sb, sa
		ea, eb = eb, ea
		xa, xb = xb, xa
		exp = ea
	}
	// Align xb down by the exponent difference, keeping a sticky bit.
	d := uint32(ea - eb)
	if d > 0 {
		if d >= 28 {
			if xb != 0 {
				xb = 1
			}
		} else {
			sticky := uint64(0)
			if xb&(1<<d-1) != 0 {
				sticky = 1
			}
			xb = xb>>d | sticky
		}
	}

	var sign uint32
	var sum uint64
	if sa == sb {
		sign = sa
		sum = xa + xb
	} else {
		if xa >= xb {
			sign = sa
			sum = xa - xb
		} else {
			sign = sb
			sum = xb - xa
		}
		if sum == 0 {
			return 0, flags // exact cancellation: +0 under RNE
		}
	}
	res, f := roundPack(sign, exp, uint32(sum))
	return res, flags | f
}

// Mul computes a*b with RNE rounding.
func Mul(a, b uint32) (uint32, uint32) {
	var flags uint32
	if isSNaN(a) || isSNaN(b) {
		flags |= FlagNV
	}
	if isNaN(a) || isNaN(b) {
		return QNaN, flags
	}
	sign := signOf(a) ^ signOf(b)
	switch {
	case isInf(a) || isInf(b):
		if isZero(a) || isZero(b) {
			return QNaN, flags | FlagNV
		}
		return sign<<31 | 0xff<<23, flags
	case isZero(a) || isZero(b):
		return sign << 31, flags
	}

	_, ea, ma := decode(a)
	_, eb, mb := decode(b)
	// Normalize subnormal inputs so the product frame is fixed.
	for ma < 1<<23 {
		ma <<= 1
		ea--
	}
	for mb < 1<<23 {
		mb <<= 1
		eb--
	}
	prod := uint64(ma) * uint64(mb) // in [2^46, 2^48)
	exp := ea + eb - 127

	// Reduce the 48-bit product to a 27-bit frame (24 significand bits +
	// GRS): shift right by 20, collecting sticky.
	sticky := uint64(0)
	if prod&(1<<20-1) != 0 {
		sticky = 1
	}
	sig := uint32(prod>>20) | uint32(sticky) // leading 1 at bit 26 or 27
	res, f := roundPack(sign, exp, sig)
	return res, flags | f
}

// MinMax computes FMIN.S / FMAX.S with RISC-V semantics: NaNs lose, both
// NaN gives the canonical NaN, sNaN raises NV, and -0 orders below +0.
func MinMax(a, b uint32, max bool) (uint32, uint32) {
	var flags uint32
	if isSNaN(a) || isSNaN(b) {
		flags |= FlagNV
	}
	switch {
	case isNaN(a) && isNaN(b):
		return QNaN, flags
	case isNaN(a):
		return b, flags
	case isNaN(b):
		return a, flags
	}
	aLess := fltRaw(a, b) || (isZero(a) && isZero(b) && signOf(a) == 1)
	if aLess != max {
		return a, flags
	}
	return b, flags
}

// fltRaw is float less-than for non-NaN inputs.
func fltRaw(a, b uint32) bool {
	sa, sb := signOf(a), signOf(b)
	if isZero(a) && isZero(b) {
		return false
	}
	switch {
	case sa == 1 && sb == 0:
		return true
	case sa == 0 && sb == 1:
		return false
	case sa == 0:
		return a&0x7fffffff < b&0x7fffffff
	default:
		return a&0x7fffffff > b&0x7fffffff
	}
}

// Cmp computes FEQ/FLT/FLE. kind: 0=FLE, 1=FLT, 2=FEQ (matching the op
// encodings OpFle..OpFeq minus OpFle). The result is 0 or 1.
func Cmp(a, b uint32, kind int) (uint32, uint32) {
	var flags uint32
	anyNaN := isNaN(a) || isNaN(b)
	switch kind {
	case 2: // FEQ: quiet predicate, NV only on sNaN
		if isSNaN(a) || isSNaN(b) {
			flags |= FlagNV
		}
		if anyNaN {
			return 0, flags
		}
		if a == b || (isZero(a) && isZero(b)) {
			return 1, flags
		}
		return 0, flags
	case 1: // FLT: signaling predicate
		if anyNaN {
			return 0, flags | FlagNV
		}
		return b2u(fltRaw(a, b)), flags
	default: // FLE
		if anyNaN {
			return 0, flags | FlagNV
		}
		eq := a == b || (isZero(a) && isZero(b))
		return b2u(eq || fltRaw(a, b)), flags
	}
}

// SignInject computes FSGNJ (mode 0), FSGNJN (mode 1), FSGNJX (mode 2).
func SignInject(a, b uint32, mode int) uint32 {
	mag := a & 0x7fffffff
	sb := signOf(b)
	switch mode {
	case 1:
		sb ^= 1
	case 2:
		sb ^= signOf(a)
	}
	return sb<<31 | mag
}

// Classify computes the RISC-V FCLASS.S 10-bit result mask.
func Classify(a uint32) uint32 {
	s := signOf(a)
	e := expOf(a)
	m := manOf(a)
	switch {
	case e == 0xff && m != 0:
		if a&0x400000 == 0 {
			return 1 << 8 // signaling NaN
		}
		return 1 << 9 // quiet NaN
	case e == 0xff:
		if s == 1 {
			return 1 << 0 // -inf
		}
		return 1 << 7 // +inf
	case e == 0 && m == 0:
		if s == 1 {
			return 1 << 3 // -0
		}
		return 1 << 4 // +0
	case e == 0:
		if s == 1 {
			return 1 << 2 // negative subnormal
		}
		return 1 << 5 // positive subnormal
	default:
		if s == 1 {
			return 1 << 1 // negative normal
		}
		return 1 << 6 // positive normal
	}
}
