package fpu

import (
	"math/rand"
	"testing"

	"repro/internal/module"
)

func TestNetlistMatchesGoldenArith(t *testing.T) {
	m := Build()
	d := module.NewDriver(m)
	rng := rand.New(rand.NewSource(21))
	arithOps := []Op{OpFadd, OpFsub, OpFmul}
	for i := 0; i < 3000; i++ {
		op := arithOps[rng.Intn(len(arithOps))]
		a, b := randOperand(rng), randOperand(rng)
		res, flags, ok := d.Exec(uint32(op), a, b)
		if !ok {
			t.Fatalf("FPU stalled on %v(%08x, %08x)", op, a, b)
		}
		wantRes, wantFlags := Eval(op, a, b)
		if res != wantRes || flags != wantFlags {
			t.Fatalf("%v(%08x, %08x) = %08x/%05b, want %08x/%05b",
				op, a, b, res, flags, wantRes, wantFlags)
		}
	}
}

func TestNetlistMatchesGoldenNonArith(t *testing.T) {
	m := Build()
	d := module.NewDriver(m)
	rng := rand.New(rand.NewSource(22))
	ops := []Op{OpFmin, OpFmax, OpFle, OpFlt, OpFeq, OpFsgnj, OpFsgnjn, OpFsgnjx, OpFclass}
	for i := 0; i < 1500; i++ {
		op := ops[rng.Intn(len(ops))]
		a, b := randOperand(rng), randOperand(rng)
		res, flags, ok := d.Exec(uint32(op), a, b)
		if !ok {
			t.Fatalf("FPU stalled on %v(%08x, %08x)", op, a, b)
		}
		wantRes, wantFlags := Eval(op, a, b)
		if res != wantRes || flags != wantFlags {
			t.Fatalf("%v(%08x, %08x) = %08x/%05b, want %08x/%05b",
				op, a, b, res, flags, wantRes, wantFlags)
		}
	}
}

func TestNetlistSpecialPairs(t *testing.T) {
	m := Build()
	d := module.NewDriver(m)
	// Every pair of interesting operands through add/sub/mul — the full
	// special-case matrix at gate level.
	for _, op := range []Op{OpFadd, OpFsub, OpFmul, OpFmin, OpFle} {
		for _, a := range interestingBits {
			for _, b := range interestingBits {
				res, flags, ok := d.Exec(uint32(op), a, b)
				if !ok {
					t.Fatalf("stall on %v(%08x, %08x)", op, a, b)
				}
				wantRes, wantFlags := Eval(op, a, b)
				if res != wantRes || flags != wantFlags {
					t.Fatalf("%v(%08x, %08x) = %08x/%05b, want %08x/%05b",
						op, a, b, res, flags, wantRes, wantFlags)
				}
			}
		}
	}
}

func TestNetlistPipelined(t *testing.T) {
	m := Build()
	d := module.NewDriver(m)
	rng := rand.New(rand.NewSource(23))
	n := 60
	ops := make([]uint32, n)
	as := make([]uint32, n)
	bs := make([]uint32, n)
	for i := range ops {
		ops[i] = uint32(rng.Intn(NumOps))
		as[i] = randOperand(rng)
		bs[i] = randOperand(rng)
	}
	results, flags, ok := d.ExecPipelined(ops, as, bs)
	if !ok {
		t.Fatal("pipeline did not drain")
	}
	for i := range ops {
		wantRes, wantFlags := Eval(Op(ops[i]), as[i], bs[i])
		if results[i] != wantRes || flags[i] != wantFlags {
			t.Fatalf("op %d %v: got %08x/%05b want %08x/%05b",
				i, Op(ops[i]), results[i], flags[i], wantRes, wantFlags)
		}
	}
}

func TestStatusOutputs(t *testing.T) {
	m := Build()
	d := module.NewDriver(m)
	s := d.Sim
	if s.Output("busy") != 0 {
		t.Error("busy at reset")
	}
	s.SetInput(module.PortInValid, 1)
	s.SetInput(module.PortOp, uint64(OpFadd))
	s.SetInput(module.PortA, 0x3f800000)
	s.SetInput(module.PortB, 0x3f800000)
	s.Step()
	s.SetInput(module.PortInValid, 0)
	s.Step()
	if s.Output(module.PortOutValid) != 1 {
		t.Error("out_valid not raised at latency 2")
	}
	if s.Output("busy") != 1 || s.Output("flags_valid") != 1 {
		t.Error("status strobes not raised with out_valid")
	}
	if s.Output(module.PortResult) != 0x40000000 {
		t.Errorf("1+1 = %08x", s.Output(module.PortResult))
	}
	s.Step()
	if s.Output(module.PortOutValid) != 0 {
		t.Error("out_valid stuck")
	}
	s.Step()
	s.Step()
	if s.Output("busy") != 0 || s.Output("flags_valid") != 0 {
		t.Error("status bits stuck after drain")
	}
}

func TestModuleMetadata(t *testing.T) {
	m := Build()
	if m.Latency != 2 || m.OpWidth != OpWidth || m.FlagWidth != FlagWidth {
		t.Errorf("metadata wrong")
	}
	if f := m.FrequencyMHz(); f != 250 {
		t.Errorf("frequency = %v, want 250", f)
	}
	if !m.StickyFlags {
		t.Error("FPU flags should be architecturally sticky")
	}
	st := m.Netlist.Stats()
	t.Logf("FPU netlist: %+v", st)
	if st.Comb < 5000 {
		t.Errorf("FPU datapath suspiciously small: %d comb cells", st.Comb)
	}
}
