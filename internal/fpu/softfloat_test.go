package fpu

import (
	"math"
	"math/rand"
	"testing"
)

// goWant computes the reference result using Go's float32 arithmetic
// (which the Go spec requires to be correctly rounded) with NaN results
// canonicalized the way RISC-V mandates.
func goWant(op func(a, b float32) float32, a, b uint32) uint32 {
	r := op(math.Float32frombits(a), math.Float32frombits(b))
	bits := math.Float32bits(r)
	if bits&0x7fffffff > 0x7f800000 {
		return QNaN
	}
	return bits
}

// interestingBits are operands that exercise every special case:
// zeros, subnormals, normals, infinities, NaNs, and boundaries.
var interestingBits = []uint32{
	0x00000000, 0x80000000, // +-0
	0x00000001, 0x80000001, // smallest subnormals
	0x007fffff, 0x807fffff, // largest subnormals
	0x00800000, 0x80800000, // smallest normals
	0x3f800000, 0xbf800000, // +-1
	0x3f800001, 0x34000000, // 1+ulp, 2^-23
	0x7f7fffff, 0xff7fffff, // +-max normal
	0x7f800000, 0xff800000, // +-inf
	0x7fc00000, 0xffc00000, // quiet NaNs
	0x7f800001, 0x7fbfffff, // signaling NaNs
	0x40490fdb, 0xc0490fdb, // +-pi
	0x4b800000, 0x4b800001, // 2^24 region (integer-valued)
	0x00000002, 0x00400000, // tiny subnormals
	0x3effffff, 0x3f000000, // just under/at 0.5
}

func randOperand(rng *rand.Rand) uint32 {
	switch rng.Intn(4) {
	case 0:
		return interestingBits[rng.Intn(len(interestingBits))]
	case 1:
		// Random with small exponent spread (stress alignment/cancel).
		e := uint32(120 + rng.Intn(16))
		return uint32(rng.Intn(2))<<31 | e<<23 | uint32(rng.Intn(1<<23))
	default:
		return rng.Uint32()
	}
}

func TestAddAgainstGo(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	add := func(a, b float32) float32 { return a + b }
	for i := 0; i < 200000; i++ {
		a, b := randOperand(rng), randOperand(rng)
		got, _ := Add(a, b, false)
		want := goWant(add, a, b)
		if got != want {
			t.Fatalf("Add(%08x, %08x) = %08x, want %08x", a, b, got, want)
		}
	}
}

func TestSubAgainstGo(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	sub := func(a, b float32) float32 { return a - b }
	for i := 0; i < 200000; i++ {
		a, b := randOperand(rng), randOperand(rng)
		got, _ := Add(a, b, true)
		want := goWant(sub, a, b)
		if got != want {
			t.Fatalf("Sub(%08x, %08x) = %08x, want %08x", a, b, got, want)
		}
	}
}

func TestMulAgainstGo(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	mul := func(a, b float32) float32 { return a * b }
	for i := 0; i < 200000; i++ {
		a, b := randOperand(rng), randOperand(rng)
		got, _ := Mul(a, b)
		want := goWant(mul, a, b)
		if got != want {
			t.Fatalf("Mul(%08x, %08x) = %08x, want %08x", a, b, got, want)
		}
	}
}

func TestExhaustiveSpecialPairs(t *testing.T) {
	add := func(a, b float32) float32 { return a + b }
	sub := func(a, b float32) float32 { return a - b }
	mul := func(a, b float32) float32 { return a * b }
	for _, a := range interestingBits {
		for _, b := range interestingBits {
			if got, want := first(Add(a, b, false)), goWant(add, a, b); got != want {
				t.Errorf("Add(%08x, %08x) = %08x, want %08x", a, b, got, want)
			}
			if got, want := first(Add(a, b, true)), goWant(sub, a, b); got != want {
				t.Errorf("Sub(%08x, %08x) = %08x, want %08x", a, b, got, want)
			}
			if got, want := first(Mul(a, b)), goWant(mul, a, b); got != want {
				t.Errorf("Mul(%08x, %08x) = %08x, want %08x", a, b, got, want)
			}
		}
	}
}

func first(a, _ uint32) uint32 { return a }

func TestAddFlags(t *testing.T) {
	// inf - inf: invalid.
	if _, f := Add(0x7f800000, 0x7f800000, true); f&FlagNV == 0 {
		t.Error("inf-inf should raise NV")
	}
	// sNaN input: invalid.
	if _, f := Add(0x7f800001, 0x3f800000, false); f&FlagNV == 0 {
		t.Error("sNaN should raise NV")
	}
	// qNaN input: no NV.
	if _, f := Add(QNaN, 0x3f800000, false); f != 0 {
		t.Error("qNaN should not raise flags")
	}
	// max + max: overflow + inexact.
	if r, f := Add(0x7f7fffff, 0x7f7fffff, false); r != 0x7f800000 || f&FlagOF == 0 || f&FlagNX == 0 {
		t.Errorf("max+max = %08x flags %05b", r, f)
	}
	// 1 + 2^-24: inexact, no overflow/underflow.
	if _, f := Add(0x3f800000, 0x33800000, false); f != FlagNX {
		t.Errorf("1+2^-24 flags = %05b, want NX only", f)
	}
	// Exact addition: no flags.
	if _, f := Add(0x3f800000, 0x3f800000, false); f != 0 {
		t.Errorf("1+1 flags = %05b, want none", f)
	}
}

func TestMulFlags(t *testing.T) {
	// 0 * inf: invalid.
	if r, f := Mul(0, 0x7f800000); r != QNaN || f&FlagNV == 0 {
		t.Error("0*inf should be NaN with NV")
	}
	// Overflow.
	if r, f := Mul(0x7f7fffff, 0x7f7fffff); r != 0x7f800000 || f&FlagOF == 0 {
		t.Errorf("max*max = %08x flags %05b", r, f)
	}
	// Underflow: two tiny normals.
	if _, f := Mul(0x00800001, 0x3e800000); f&FlagUF == 0 || f&FlagNX == 0 {
		t.Errorf("tiny product flags = %05b, want UF|NX", f)
	}
	// Exact small product: subnormal result but exact, no UF.
	// 2^-100 * 2^-50 = 2^-150? Too small; use 2^-126 * 2^-10 = 2^-136 exact subnormal? 2^-136 < 2^-149 min subnormal... use 2^-130 = subnormal, exact.
	a := uint32((127 - 100) << 23) // 2^-100
	b := uint32((127 - 30) << 23)  // 2^-30
	if r, f := Mul(a, b); f != 0 || r != 1<<(149-130) {
		t.Errorf("2^-100*2^-30 = %08x flags %05b, want exact subnormal", r, f)
	}
}

func TestMinMax(t *testing.T) {
	one := uint32(0x3f800000)
	two := uint32(0x40000000)
	negZero := uint32(0x80000000)
	posZero := uint32(0)
	if r, _ := MinMax(one, two, false); r != one {
		t.Error("min(1,2)")
	}
	if r, _ := MinMax(one, two, true); r != two {
		t.Error("max(1,2)")
	}
	if r, _ := MinMax(negZero, posZero, false); r != negZero {
		t.Error("min(-0,+0) should be -0")
	}
	if r, _ := MinMax(negZero, posZero, true); r != posZero {
		t.Error("max(-0,+0) should be +0")
	}
	if r, f := MinMax(QNaN, one, false); r != one || f != 0 {
		t.Error("min(qNaN,1) should be 1 with no flags")
	}
	if r, f := MinMax(0x7f800001, one, false); r != one || f&FlagNV == 0 {
		t.Error("min(sNaN,1) should be 1 with NV")
	}
	if r, _ := MinMax(QNaN, QNaN, true); r != QNaN {
		t.Error("max(NaN,NaN) should be canonical NaN")
	}
}

func TestCmp(t *testing.T) {
	one := uint32(0x3f800000)
	two := uint32(0x40000000)
	if r, _ := Cmp(one, two, 1); r != 1 {
		t.Error("1 < 2")
	}
	if r, _ := Cmp(two, one, 1); r != 0 {
		t.Error("!(2 < 1)")
	}
	if r, _ := Cmp(one, one, 0); r != 1 {
		t.Error("1 <= 1")
	}
	if r, _ := Cmp(one, one, 2); r != 1 {
		t.Error("1 == 1")
	}
	if r, _ := Cmp(0, 0x80000000, 2); r != 1 {
		t.Error("+0 == -0")
	}
	// FLT with qNaN: result 0, NV raised (signaling predicate).
	if r, f := Cmp(QNaN, one, 1); r != 0 || f&FlagNV == 0 {
		t.Error("FLT(NaN, 1)")
	}
	// FEQ with qNaN: result 0, no NV.
	if r, f := Cmp(QNaN, one, 2); r != 0 || f != 0 {
		t.Error("FEQ(qNaN, 1)")
	}
	// FEQ with sNaN: NV.
	if _, f := Cmp(0x7f800001, one, 2); f&FlagNV == 0 {
		t.Error("FEQ(sNaN, 1) should raise NV")
	}
	// Negative compares.
	if r, _ := Cmp(0xbf800000, 0xc0000000, 1); r != 0 {
		t.Error("!(-1 < -2)")
	}
	if r, _ := Cmp(0xc0000000, 0xbf800000, 1); r != 1 {
		t.Error("-2 < -1")
	}
}

func TestSignInject(t *testing.T) {
	one := uint32(0x3f800000)
	negTwo := uint32(0xc0000000)
	if SignInject(one, negTwo, 0) != 0xbf800000 {
		t.Error("FSGNJ")
	}
	if SignInject(one, negTwo, 1) != one {
		t.Error("FSGNJN")
	}
	if SignInject(negTwo, negTwo, 2) != 0x40000000 {
		t.Error("FSGNJX(-2,-2) should be +2")
	}
}

func TestClassify(t *testing.T) {
	cases := map[uint32]uint32{
		0xff800000: 1 << 0, // -inf
		0xbf800000: 1 << 1, // -normal
		0x80000001: 1 << 2, // -subnormal
		0x80000000: 1 << 3, // -0
		0x00000000: 1 << 4, // +0
		0x00000001: 1 << 5, // +subnormal
		0x3f800000: 1 << 6, // +normal
		0x7f800000: 1 << 7, // +inf
		0x7f800001: 1 << 8, // sNaN
		0x7fc00000: 1 << 9, // qNaN
	}
	for in, want := range cases {
		if got := Classify(in); got != want {
			t.Errorf("Classify(%08x) = %010b, want %010b", in, got, want)
		}
	}
}

func TestAddCancellationToZero(t *testing.T) {
	// x - x = +0 under RNE, for every finite x.
	rng := rand.New(rand.NewSource(14))
	for i := 0; i < 1000; i++ {
		a := randOperand(rng)
		if isNaN(a) || isInf(a) {
			continue
		}
		if r, _ := Add(a, a, true); r != 0 {
			t.Fatalf("%08x - itself = %08x, want +0", a, r)
		}
	}
}
