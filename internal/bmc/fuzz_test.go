package bmc

import (
	"testing"

	"repro/internal/fault"
)

// FuzzIncrementalCover lets the fuzzer pick a random sequential netlist
// (via seed) and a random fault spec over its flip-flops (via raw
// bytes), then cross-checks the incremental engine against the
// from-scratch single-shot path: identical verdicts, both traces must
// replay, and the incremental depth can never exceed the single-shot
// bound. Same differential contract as TestIncrementalMatchesScratch,
// with the fuzzer steering the corpus.
func FuzzIncrementalCover(f *testing.F) {
	f.Add(int64(1), byte(0), byte(1), byte(0), byte(0))
	f.Add(int64(7), byte(3), byte(3), byte(1), byte(0))
	f.Add(int64(42), byte(9), byte(4), byte(2), byte(1))
	f.Add(int64(99), byte(0), byte(0), byte(3), byte(2))
	f.Fuzz(func(t *testing.T, seed int64, b0, b1, b2, b3 byte) {
		nl := randomSequentialNetlist(seed % 2048)
		spec := specFromBytes(nl, b0, b1, b2, b3)
		inst := fault.ShadowReplica(nl, spec)
		cfg := Config{MaxDepth: 5, MaxConflicts: 500000}

		inc := Cover(inst.Netlist, inst.Covers, cfg)
		scr := CoverSingleShot(inst.Netlist, inst.Covers, cfg)
		if inc.Verdict != scr.Verdict {
			t.Fatalf("%s: incremental=%v scratch=%v", spec.Name(nl), inc.Verdict, scr.Verdict)
		}
		if inc.Verdict != Covered {
			return
		}
		if inc.Depth > scr.Depth {
			t.Fatalf("%s: incremental depth %d exceeds scratch depth %d",
				spec.Name(nl), inc.Depth, scr.Depth)
		}
		if inc.Depth != inc.Trace.CoverCycle+1 || inc.Trace.Cycles != inc.Depth {
			t.Fatalf("%s: depth %d inconsistent with trace (cover cycle %d, cycles %d)",
				spec.Name(nl), inc.Depth, inc.Trace.CoverCycle, inc.Trace.Cycles)
		}
		if !Replay(inst.Netlist, inc.Trace) {
			t.Fatalf("%s: incremental trace does not replay", spec.Name(nl))
		}
		if !Replay(inst.Netlist, scr.Trace) {
			t.Fatalf("%s: scratch trace does not replay", spec.Name(nl))
		}
	})
}
