// Package bmc implements bounded model checking over netlists: it unrolls
// the synchronous circuit cycle by cycle into CNF (Tseitin encoding), adds
// the caller's assume-constraints on input ports, and asks the CDCL solver
// (internal/sat) for an input sequence satisfying a cover property — the
// same `cover property (o != o_s)` query the paper hands to JasperGold in
// its Trace Generation step (§3.3.3).
//
// Cover solves incrementally: one solver per fault spec. The transition
// relation is encoded frame by frame as the bound deepens, each depth's
// cover disjunction is guarded by a fresh activation literal and asserted
// via assumptions, and a refuted window is retired by adding the
// activation literal's negation as a unit clause. Learnt clauses survive
// across all depths, and with the default stride of 1 the reported depth
// is the provably minimal cover depth — shorter traces mean fewer RISC-V
// instructions per embedded test. CoverSingleShot retains the
// from-scratch single-solve path as the differential-testing and
// benchmarking baseline.
//
// Verdicts map to the paper's Table 4 outcomes: Covered (a trace exists —
// "S" once instruction construction succeeds), Unreachable (the property
// is UNSAT through the unroll bound, which exceeds the sequential depth
// of these feed-forward pipeline modules — "UR"), and Timeout (the
// solver's conflict budget ran out — "FF").
package bmc

import (
	"fmt"

	"repro/internal/cell"
	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/netlist"
	"repro/internal/sat"
	"repro/internal/sim"
)

// Config parameterizes a cover query.
type Config struct {
	// MaxDepth is the unroll bound in cycles (default 8). The modules
	// under analysis are two-stage pipelines whose architectural state is
	// fully input-controlled within three cycles, so the default bound
	// exceeds their sequential diameter and an UNSAT verdict is a proof.
	MaxDepth int
	// MaxConflicts is a shared solver-effort budget spread across the
	// whole deepening schedule (default 2,000,000 conflicts in total);
	// exhausting it yields Timeout — the paper's "FF" outcome.
	MaxConflicts int64
	// Stride is the iterative-deepening step (default 1): each query
	// extends the unroll by Stride cycles and asks about divergence in
	// the newly added window only. With Stride 1, Result.Depth is the
	// provably minimal cover depth; larger strides trade that resolution
	// for fewer solver calls (minimality then holds only up to the
	// stride, via the witness cycle of the model found).
	Stride int
	// Assume restricts input-port values per cycle (the paper's
	// assume-property input restrictions).
	Assume []PortConstraint
	// FixedPulse, when set, pins a 1-bit input port to a strict cadence:
	// high exactly when the cycle index is a multiple of Period. This
	// encodes how the surrounding in-order CPU actually drives the
	// module — one operation every issue slot, the unit idle in between
	// — so that every produced trace is directly realizable as an
	// instruction sequence (§3.3.3's microarchitectural restrictions).
	FixedPulse *Pulse
	// ValidPort, when set, names the 1-bit handshake output gating
	// architectural observability. A divergence on a data output then
	// only counts when the faulty (shadow) machine asserts the
	// handshake; a divergence on the handshake bit itself always counts
	// (the software-visible symptom is a stall). This is the
	// microarchitecture-aware restriction of §3.3.3 that keeps traces
	// convertible to instructions.
	ValidPort string
}

func (cfg *Config) fill() {
	if cfg.MaxDepth == 0 {
		cfg.MaxDepth = 8
	}
	if cfg.MaxConflicts == 0 {
		cfg.MaxConflicts = 2000000
	}
	if cfg.Stride <= 0 {
		cfg.Stride = 1
	}
}

// PortConstraint requires an input port to take one of the allowed
// values on every cycle.
type PortConstraint struct {
	Port    string
	Allowed []uint64
}

// Pulse pins a 1-bit port high exactly every Period cycles (see
// Config.FixedPulse).
type Pulse struct {
	Port   string
	Period int
}

// Verdict is the outcome of a cover query.
type Verdict int

// Outcomes.
const (
	Covered Verdict = iota
	Unreachable
	Timeout
)

func (v Verdict) String() string {
	switch v {
	case Covered:
		return "covered"
	case Unreachable:
		return "unreachable"
	}
	return "timeout"
}

// Trace is a cycle-accurate module-level input sequence (the paper's
// Table 2 artifact), plus which cover point fired and when. Traces are
// truncated to the cover cycle: Cycles == CoverCycle+1.
type Trace struct {
	Cycles     int
	Inputs     map[string][]uint64 // port -> per-cycle value
	CoverCycle int
	CoverPoint fault.CoverPoint
}

// Stats summarizes the formal effort behind one cover query: the CNF
// size, how many incremental Solve calls the deepening schedule issued,
// and the CDCL counters accumulated across all of them (learnt clauses
// are shared between the calls — that sharing is the point).
type Stats struct {
	Solves  int // incremental Solve calls issued
	Vars    int // CNF variables allocated
	Clauses int // problem clauses held (excl. learnt)
	Solver  sat.Stats
}

// Add returns the field-wise sum of two snapshots, for aggregation
// across queries.
func (a Stats) Add(b Stats) Stats {
	return Stats{
		Solves:  a.Solves + b.Solves,
		Vars:    a.Vars + b.Vars,
		Clauses: a.Clauses + b.Clauses,
		Solver:  a.Solver.Add(b.Solver),
	}
}

// Result bundles the verdict with the trace (when covered) and the
// solver effort behind the query.
type Result struct {
	Verdict Verdict
	Trace   *Trace
	// Depth is the unroll depth at which the verdict was reached. For
	// Covered with the default Stride of 1 it is the provably minimal
	// cover depth (== Trace.CoverCycle+1): every shallower depth was
	// refuted on the way up.
	Depth int
	Stats Stats
}

// Cover searches for an input sequence that makes any of the cover
// points differ from its shadow, by true iterative deepening on a single
// incremental solver: depth d's transition frames extend the running
// CNF, depth d's cover window is asserted under an activation-literal
// assumption, and a refuted window is retired with a unit clause so
// everything learnt keeps pruning all later depths.
func Cover(nl *netlist.Netlist, covers []fault.CoverPoint, cfg Config) *Result {
	cfg.fill()
	if len(covers) == 0 {
		return &Result{Verdict: Unreachable, Depth: 0}
	}
	u := newUnroller(engine.Cached(nl), cfg)
	for prev := 0; prev < cfg.MaxDepth; {
		depth := prev + cfg.Stride
		if depth > cfg.MaxDepth {
			depth = cfg.MaxDepth
		}
		u.extendTo(depth)
		switch u.solveWindow(covers, prev, depth) {
		case sat.Sat:
			tr := u.extract(covers)
			return &Result{Verdict: Covered, Trace: tr, Depth: tr.Cycles, Stats: u.stats()}
		case sat.Unknown:
			return &Result{Verdict: Timeout, Depth: depth, Stats: u.stats()}
		}
		prev = depth
	}
	return &Result{Verdict: Unreachable, Depth: cfg.MaxDepth, Stats: u.stats()}
}

// CoverSingleShot is the retained from-scratch baseline: a fresh solver,
// the full MaxDepth-cycle CNF encoded in one pass, the cover disjunction
// over every cycle added as a plain clause, and a single Solve call. It
// exists for differential testing and benchmarking against the
// incremental path; Depth is always MaxDepth (the single-shot bound
// proves nothing about shallower depths).
func CoverSingleShot(nl *netlist.Netlist, covers []fault.CoverPoint, cfg Config) *Result {
	cfg.fill()
	if len(covers) == 0 {
		return &Result{Verdict: Unreachable, Depth: 0}
	}
	u := newUnroller(engine.Cached(nl), cfg)
	u.extendTo(cfg.MaxDepth)
	st := u.solveFinal(covers)
	res := &Result{Depth: cfg.MaxDepth, Stats: u.stats()}
	switch st {
	case sat.Sat:
		res.Verdict = Covered
		res.Trace = u.extract(covers)
	case sat.Unsat:
		res.Verdict = Unreachable
	default:
		res.Verdict = Timeout
	}
	return res
}

// Replay simulates the instrumented netlist under the trace's inputs and
// reports whether the cover point actually diverges at the reported
// cycle — the soundness check that every BMC result in this repository
// is validated against (DESIGN.md invariants).
func Replay(nl *netlist.Netlist, tr *Trace) bool {
	s := sim.New(nl)
	for t := 0; t < tr.Cycles; t++ {
		for port, vals := range tr.Inputs {
			s.SetInput(port, vals[t])
		}
		if t == tr.CoverCycle {
			return s.Net(tr.CoverPoint.Orig) != s.Net(tr.CoverPoint.Shadow)
		}
		s.Step()
	}
	return false
}

// unroller owns the incremental CNF: one solver whose formula grows one
// transition frame at a time. vars[t][net] is the solver variable of a
// net at cycle t (-1 if not yet allocated); frames once encoded are
// never re-encoded.
type unroller struct {
	nl   *netlist.Netlist
	prog *engine.Program
	cfg  Config
	s    *sat.Solver

	vars [][]int

	constTrue  int
	constFalse int

	budget int64 // remaining shared conflict budget
	solves int
}

func newUnroller(prog *engine.Program, cfg Config) *unroller {
	u := &unroller{nl: prog.Netlist, prog: prog, cfg: cfg, s: sat.New(), budget: cfg.MaxConflicts}
	u.constTrue = u.s.NewVar()
	u.constFalse = u.s.NewVar()
	u.s.AddClause(sat.MkLit(u.constTrue, false))
	u.s.AddClause(sat.MkLit(u.constFalse, true))
	return u
}

func (u *unroller) lit(t int, n netlist.NetID, neg bool) sat.Lit {
	return sat.MkLit(u.vars[t][n], neg)
}

// extendTo appends transition frames until the unroll spans depth
// cycles. Everything already encoded — frames, retired cover windows,
// learnt clauses — is untouched.
func (u *unroller) extendTo(depth int) {
	for t := len(u.vars); t < depth; t++ {
		u.pushFrame(t)
	}
}

// pushFrame encodes cycle t: fresh input and state variables, the
// transition from frame t-1 (or the reset state for frame 0), the
// combinational logic by walking the compiled program — the flattened
// instruction stream supplies the cells in dependency order, the same
// order the evaluators use — and the per-cycle input restrictions.
func (u *unroller) pushFrame(t int) {
	nl, prog := u.nl, u.prog

	frame := make([]int, nl.NumNets)
	for i := range frame {
		frame[i] = -1
	}
	u.vars = append(u.vars, frame)

	if nl.ClockRoot != netlist.NoNet {
		frame[nl.ClockRoot] = u.constTrue // root clock always enabled
	}
	for _, p := range nl.Inputs {
		for _, n := range p.Bits {
			frame[n] = u.s.NewVar()
		}
	}
	for i := range prog.DFFs {
		frame[prog.DFFs[i].Out] = u.s.NewVar()
	}

	if t == 0 {
		// Initial state: reset values.
		for i := range prog.DFFs {
			f := &prog.DFFs[i]
			u.s.AddClause(sat.MkLit(frame[f.Out], !f.Init))
		}
	} else {
		// next = clk ? D : cur (clock nets carry the enable); frame t-1
		// is fully encoded, so its D nets already have variables.
		for i := range prog.DFFs {
			f := &prog.DFFs[i]
			u.encodeMux(frame[f.Out], u.vars[t-1][f.Out], u.vars[t-1][f.D], u.vars[t-1][f.Clk])
		}
	}

	for i := range prog.Ops {
		u.encodeOp(t, &prog.Ops[i])
	}
	u.encodeAssumes(t)

	if fp := u.cfg.FixedPulse; fp != nil {
		p, ok := nl.FindInput(fp.Port)
		if !ok || len(p.Bits) != 1 {
			panic(fmt.Sprintf("bmc: FixedPulse port %q is not a 1-bit input", fp.Port))
		}
		high := t%fp.Period == 0
		u.s.AddClause(sat.MkLit(frame[p.Bits[0]], !high))
	}
}

// encodeAssumes adds the per-cycle input restrictions.
func (u *unroller) encodeAssumes(t int) {
	for _, pc := range u.cfg.Assume {
		p, ok := u.nl.FindInput(pc.Port)
		if !ok {
			panic(fmt.Sprintf("bmc: assume on unknown port %q", pc.Port))
		}
		var sel []sat.Lit
		for _, v := range pc.Allowed {
			// aux -> bits match v
			aux := u.s.NewVar()
			for i, n := range p.Bits {
				bitSet := v>>uint(i)&1 == 1
				u.s.AddClause(sat.MkLit(aux, true), u.lit(t, n, !bitSet))
			}
			sel = append(sel, sat.MkLit(aux, false))
		}
		u.s.AddClause(sel...)
	}
}

// fresh allocates the output variable of a combinational cell.
func (u *unroller) out(t int, n netlist.NetID) int {
	if u.vars[t][n] == -1 {
		u.vars[t][n] = u.s.NewVar()
	}
	return u.vars[t][n]
}

func (u *unroller) encodeOp(t int, op *engine.Op) {
	s := u.s
	switch op.Kind {
	case cell.TIE0:
		u.vars[t][op.Out] = u.constFalse
	case cell.TIE1:
		u.vars[t][op.Out] = u.constTrue
	case cell.BUF, cell.CLKBUF:
		u.vars[t][op.Out] = u.vars[t][op.In[0]]
	case cell.INV:
		y := u.out(t, netlist.NetID(op.Out))
		a := u.vars[t][op.In[0]]
		s.AddClause(sat.MkLit(y, false), sat.MkLit(a, false))
		s.AddClause(sat.MkLit(y, true), sat.MkLit(a, true))
	case cell.AND2, cell.CLKGATE:
		u.encodeAnd(u.out(t, netlist.NetID(op.Out)), u.vars[t][op.In[0]], u.vars[t][op.In[1]], false)
	case cell.NAND2:
		u.encodeAnd(u.out(t, netlist.NetID(op.Out)), u.vars[t][op.In[0]], u.vars[t][op.In[1]], true)
	case cell.OR2:
		u.encodeOr(u.out(t, netlist.NetID(op.Out)), u.vars[t][op.In[0]], u.vars[t][op.In[1]], false)
	case cell.NOR2:
		u.encodeOr(u.out(t, netlist.NetID(op.Out)), u.vars[t][op.In[0]], u.vars[t][op.In[1]], true)
	case cell.XOR2:
		u.encodeXor(u.out(t, netlist.NetID(op.Out)), u.vars[t][op.In[0]], u.vars[t][op.In[1]], false)
	case cell.XNOR2:
		u.encodeXor(u.out(t, netlist.NetID(op.Out)), u.vars[t][op.In[0]], u.vars[t][op.In[1]], true)
	case cell.MUX2:
		u.encodeMux(u.out(t, netlist.NetID(op.Out)), u.vars[t][op.In[0]], u.vars[t][op.In[1]], u.vars[t][op.In[2]])
	case cell.AOI21:
		// y = !((a&b)|c): tmp = a&b; y = !(tmp|c).
		tmp := u.s.NewVar()
		u.encodeAnd(tmp, u.vars[t][op.In[0]], u.vars[t][op.In[1]], false)
		u.encodeOr(u.out(t, netlist.NetID(op.Out)), tmp, u.vars[t][op.In[2]], true)
	case cell.OAI21:
		tmp := u.s.NewVar()
		u.encodeOr(tmp, u.vars[t][op.In[0]], u.vars[t][op.In[1]], false)
		u.encodeAnd(u.out(t, netlist.NetID(op.Out)), tmp, u.vars[t][op.In[2]], true)
	default:
		panic("bmc: cannot encode " + op.Kind.String())
	}
}

// encodeAnd emits y = a&b (or y = !(a&b) when neg). With MkLit(v, true)
// denoting ¬v, AND is (y ∨ ¬a ∨ ¬b)(¬y ∨ a)(¬y ∨ b); neg flips y's
// polarity throughout.
func (u *unroller) encodeAnd(y, a, b int, neg bool) {
	s := u.s
	s.AddClause(sat.MkLit(y, neg), sat.MkLit(a, true), sat.MkLit(b, true))
	s.AddClause(sat.MkLit(y, !neg), sat.MkLit(a, false))
	s.AddClause(sat.MkLit(y, !neg), sat.MkLit(b, false))
}

// encodeOr emits y = a|b (or the negation): (¬y ∨ a ∨ b)(y ∨ ¬a)(y ∨ ¬b).
func (u *unroller) encodeOr(y, a, b int, neg bool) {
	s := u.s
	s.AddClause(sat.MkLit(y, !neg), sat.MkLit(a, false), sat.MkLit(b, false))
	s.AddClause(sat.MkLit(y, neg), sat.MkLit(a, true))
	s.AddClause(sat.MkLit(y, neg), sat.MkLit(b, true))
}

// encodeXor emits y = a^b (or xnor when neg):
// (¬y ∨ a ∨ b)(¬y ∨ ¬a ∨ ¬b)(y ∨ ¬a ∨ b)(y ∨ a ∨ ¬b).
func (u *unroller) encodeXor(y, a, b int, neg bool) {
	s := u.s
	s.AddClause(sat.MkLit(y, !neg), sat.MkLit(a, false), sat.MkLit(b, false))
	s.AddClause(sat.MkLit(y, !neg), sat.MkLit(a, true), sat.MkLit(b, true))
	s.AddClause(sat.MkLit(y, neg), sat.MkLit(a, true), sat.MkLit(b, false))
	s.AddClause(sat.MkLit(y, neg), sat.MkLit(a, false), sat.MkLit(b, true))
}

// encodeMux emits y = s ? b : a:
// (¬s ∨ ¬b ∨ y)(¬s ∨ b ∨ ¬y)(s ∨ ¬a ∨ y)(s ∨ a ∨ ¬y).
func (u *unroller) encodeMux(y, a, b, sel int) {
	s := u.s
	s.AddClause(sat.MkLit(sel, true), sat.MkLit(b, true), sat.MkLit(y, false))
	s.AddClause(sat.MkLit(sel, true), sat.MkLit(b, false), sat.MkLit(y, true))
	s.AddClause(sat.MkLit(sel, false), sat.MkLit(a, true), sat.MkLit(y, false))
	s.AddClause(sat.MkLit(sel, false), sat.MkLit(a, false), sat.MkLit(y, true))
}

// validNets resolves the observability handshake: the original and
// shadow-machine valid bits (equal when the handshake is outside the
// fault cone), or NoNet when no ValidPort is configured.
func (u *unroller) validNets(covers []fault.CoverPoint) (validOrig, validShadow netlist.NetID) {
	validOrig, validShadow = netlist.NoNet, netlist.NoNet
	if u.cfg.ValidPort == "" {
		return
	}
	p, ok := u.nl.FindOutput(u.cfg.ValidPort)
	if !ok || len(p.Bits) != 1 {
		panic(fmt.Sprintf("bmc: ValidPort %q is not a 1-bit output", u.cfg.ValidPort))
	}
	validOrig, validShadow = p.Bits[0], p.Bits[0]
	for _, cp := range covers {
		if cp.Orig == validOrig {
			validShadow = cp.Shadow
		}
	}
	return
}

// coverTargets builds the observable-divergence literals of one cycle:
// for each cover point an XOR of original and shadow bit, gated by the
// shadow machine's handshake when one is configured.
func (u *unroller) coverTargets(covers []fault.CoverPoint, t int) []sat.Lit {
	validOrig, validShadow := u.validNets(covers)
	var targets []sat.Lit
	for _, cp := range covers {
		d := u.s.NewVar()
		u.encodeXor(d, u.vars[t][cp.Orig], u.vars[t][cp.Shadow], false)
		if validOrig == netlist.NoNet || cp.Orig == validOrig {
			targets = append(targets, sat.MkLit(d, false))
			continue
		}
		// obs = d & valid_s
		obs := u.s.NewVar()
		u.encodeAnd(obs, d, u.vars[t][validShadow], false)
		targets = append(targets, sat.MkLit(obs, false))
	}
	return targets
}

// solveWindow asks whether any cover point diverges in cycles [lo, hi).
// The window's disjunction is guarded by a fresh activation literal and
// asserted as an assumption, so an UNSAT answer refutes only the window:
// the guard is then retired by adding its negation as a unit clause
// (permanently satisfying the guarded clause, and root-simplifying any
// learnt clause that mentions it), while every learnt clause — which the
// solver derives from the formula alone, never from assumptions — keeps
// pruning all deeper windows.
func (u *unroller) solveWindow(covers []fault.CoverPoint, lo, hi int) sat.Status {
	act := u.s.NewVar()
	lits := []sat.Lit{sat.MkLit(act, true)}
	for t := lo; t < hi; t++ {
		lits = append(lits, u.coverTargets(covers, t)...)
	}
	u.s.AddClause(lits...)
	st := u.solveBudgeted(sat.MkLit(act, false))
	if st == sat.Unsat {
		u.s.AddClause(sat.MkLit(act, true))
	}
	return st
}

// solveFinal is the single-shot variant: the cover disjunction over
// every encoded cycle as a plain (unguarded) clause, one Solve call.
func (u *unroller) solveFinal(covers []fault.CoverPoint) sat.Status {
	var lits []sat.Lit
	for t := 0; t < len(u.vars); t++ {
		lits = append(lits, u.coverTargets(covers, t)...)
	}
	u.s.AddClause(lits...)
	return u.solveBudgeted()
}

// solveBudgeted issues one Solve call against the remaining shared
// conflict budget and charges what the call consumed.
func (u *unroller) solveBudgeted(assumptions ...sat.Lit) sat.Status {
	if u.budget <= 0 {
		return sat.Unknown
	}
	u.s.MaxConflicts = u.budget
	before := u.s.Conflicts
	st := u.s.Solve(assumptions...)
	u.budget -= u.s.Conflicts - before
	u.solves++
	return st
}

func (u *unroller) stats() Stats {
	return Stats{Solves: u.solves, Vars: u.s.NumVars(), Clauses: u.s.NumClauses(), Solver: u.s.Stats()}
}

// extract reads the model back into a Trace, truncated to the earliest
// diverging cycle: cycles past the cover add nothing to the replay and
// would only lengthen the lifted instruction sequence.
func (u *unroller) extract(covers []fault.CoverPoint) *Trace {
	depth := len(u.vars)
	tr := &Trace{Inputs: make(map[string][]uint64), CoverCycle: -1}
	validOrig, validShadow := u.validNets(covers)
	for t := 0; t < depth && tr.CoverCycle == -1; t++ {
		for _, cp := range covers {
			if u.s.Value(u.vars[t][cp.Orig]) == u.s.Value(u.vars[t][cp.Shadow]) {
				continue
			}
			if validOrig != netlist.NoNet && cp.Orig != validOrig && !u.s.Value(u.vars[t][validShadow]) {
				continue // divergence the software never observes
			}
			tr.CoverCycle = t
			tr.CoverPoint = cp
			break
		}
	}
	tr.Cycles = tr.CoverCycle + 1
	if tr.CoverCycle == -1 {
		tr.Cycles = depth // defensive: a Sat model must diverge somewhere
	}
	for _, p := range u.nl.Inputs {
		vals := make([]uint64, tr.Cycles)
		for t := 0; t < tr.Cycles; t++ {
			var v uint64
			for i, n := range p.Bits {
				if u.s.Value(u.vars[t][n]) {
					v |= 1 << uint(i)
				}
			}
			vals[t] = v
		}
		tr.Inputs[p.Name] = vals
	}
	return tr
}
