// Package bmc implements bounded model checking over netlists: it unrolls
// the synchronous circuit k cycles into CNF (Tseitin encoding), adds the
// caller's assume-constraints on input ports, and asks the CDCL solver
// (internal/sat) for an input sequence satisfying a cover property — the
// same `cover property (o != o_s)` query the paper hands to JasperGold in
// its Trace Generation step (§3.3.3).
//
// Verdicts map to the paper's Table 4 outcomes: Covered (a trace exists —
// "S" once instruction construction succeeds), Unreachable (the property
// is UNSAT through the unroll bound, which exceeds the sequential depth
// of these feed-forward pipeline modules — "UR"), and Timeout (the
// solver's conflict budget ran out — "FF").
package bmc

import (
	"fmt"

	"repro/internal/cell"
	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/netlist"
	"repro/internal/sat"
	"repro/internal/sim"
)

// Config parameterizes a cover query.
type Config struct {
	// MaxDepth is the unroll bound in cycles (default 8). The modules
	// under analysis are two-stage pipelines whose architectural state is
	// fully input-controlled within three cycles, so the default bound
	// exceeds their sequential diameter and an UNSAT verdict is a proof.
	MaxDepth int
	// MaxConflicts bounds solver effort per depth (default 2,000,000);
	// exceeding it yields Timeout — the paper's "FF" outcome.
	MaxConflicts int64
	// Assume restricts input-port values per cycle (the paper's
	// assume-property input restrictions).
	Assume []PortConstraint
	// FixedPulse, when set, pins a 1-bit input port to a strict cadence:
	// high exactly when the cycle index is a multiple of Period. This
	// encodes how the surrounding in-order CPU actually drives the
	// module — one operation every issue slot, the unit idle in between
	// — so that every produced trace is directly realizable as an
	// instruction sequence (§3.3.3's microarchitectural restrictions).
	FixedPulse *Pulse
	// ValidPort, when set, names the 1-bit handshake output gating
	// architectural observability. A divergence on a data output then
	// only counts when the faulty (shadow) machine asserts the
	// handshake; a divergence on the handshake bit itself always counts
	// (the software-visible symptom is a stall). This is the
	// microarchitecture-aware restriction of §3.3.3 that keeps traces
	// convertible to instructions.
	ValidPort string
}

// PortConstraint requires an input port to take one of the allowed
// values on every cycle.
type PortConstraint struct {
	Port    string
	Allowed []uint64
}

// Pulse pins a 1-bit port high exactly every Period cycles (see
// Config.FixedPulse).
type Pulse struct {
	Port   string
	Period int
}

// Verdict is the outcome of a cover query.
type Verdict int

// Outcomes.
const (
	Covered Verdict = iota
	Unreachable
	Timeout
)

func (v Verdict) String() string {
	switch v {
	case Covered:
		return "covered"
	case Unreachable:
		return "unreachable"
	}
	return "timeout"
}

// Trace is a cycle-accurate module-level input sequence (the paper's
// Table 2 artifact), plus which cover point fired and when.
type Trace struct {
	Cycles     int
	Inputs     map[string][]uint64 // port -> per-cycle value
	CoverCycle int
	CoverPoint fault.CoverPoint
}

// Result bundles the verdict with the trace (when covered).
type Result struct {
	Verdict Verdict
	Trace   *Trace
	Depth   int // unroll depth at which the verdict was reached
}

// Cover searches for an input sequence that makes any of the cover
// points differ from its shadow, using iterative deepening up to
// MaxDepth.
func Cover(nl *netlist.Netlist, covers []fault.CoverPoint, cfg Config) *Result {
	if cfg.MaxDepth == 0 {
		cfg.MaxDepth = 8
	}
	if cfg.MaxConflicts == 0 {
		cfg.MaxConflicts = 2000000
	}
	if len(covers) == 0 {
		return &Result{Verdict: Unreachable, Depth: 0}
	}
	// Compile (or fetch) the program once: both deepening passes walk
	// the same flattened instruction stream and precomputed DFF list
	// instead of re-deriving cell order from the netlist per depth.
	prog := engine.Cached(nl)
	// Two-step deepening: a shallow unroll catches the common case
	// cheaply; the full-bound unroll both finds deep traces and, when
	// UNSAT, constitutes the unreachability proof (the bound exceeds the
	// modules' sequential diameter).
	depths := []int{4, cfg.MaxDepth}
	if cfg.MaxDepth <= 4 {
		depths = []int{cfg.MaxDepth}
	}
	for _, depth := range depths {
		u := newUnroller(prog, depth, cfg)
		st := u.solveCover(covers)
		switch st {
		case sat.Sat:
			return &Result{Verdict: Covered, Trace: u.extract(covers), Depth: depth}
		case sat.Unknown:
			return &Result{Verdict: Timeout, Depth: depth}
		}
	}
	return &Result{Verdict: Unreachable, Depth: cfg.MaxDepth}
}

// Replay simulates the instrumented netlist under the trace's inputs and
// reports whether the cover point actually diverges at the reported
// cycle — the soundness check that every BMC result in this repository
// is validated against (DESIGN.md invariants).
func Replay(nl *netlist.Netlist, tr *Trace) bool {
	s := sim.New(nl)
	for t := 0; t < tr.Cycles; t++ {
		for port, vals := range tr.Inputs {
			s.SetInput(port, vals[t])
		}
		if t == tr.CoverCycle {
			return s.Net(tr.CoverPoint.Orig) != s.Net(tr.CoverPoint.Shadow)
		}
		s.Step()
	}
	return false
}

type unroller struct {
	nl    *netlist.Netlist
	prog  *engine.Program
	depth int
	cfg   Config
	s     *sat.Solver

	// vars[t][net] is the solver variable of a net at cycle t; -1 if not
	// yet allocated.
	vars [][]int

	constTrue  int
	constFalse int
}

func newUnroller(prog *engine.Program, depth int, cfg Config) *unroller {
	nl := prog.Netlist
	u := &unroller{nl: nl, prog: prog, depth: depth, cfg: cfg, s: sat.New()}
	u.s.MaxConflicts = cfg.MaxConflicts
	u.vars = make([][]int, depth)
	for t := range u.vars {
		u.vars[t] = make([]int, nl.NumNets)
		for i := range u.vars[t] {
			u.vars[t][i] = -1
		}
	}
	u.constTrue = u.s.NewVar()
	u.constFalse = u.s.NewVar()
	u.s.AddClause(sat.MkLit(u.constTrue, false))
	u.s.AddClause(sat.MkLit(u.constFalse, true))
	u.encode()
	return u
}

func (u *unroller) lit(t int, n netlist.NetID, neg bool) sat.Lit {
	return sat.MkLit(u.vars[t][n], neg)
}

// encode builds the full k-cycle CNF by walking the compiled program:
// the flattened instruction stream supplies the combinational cells in
// dependency order (the same order the evaluators use), and the
// precomputed DFF list replaces the per-depth scans over all cells.
func (u *unroller) encode() {
	nl, prog := u.nl, u.prog

	// Allocate input and state variables for every cycle.
	for t := 0; t < u.depth; t++ {
		if nl.ClockRoot != netlist.NoNet {
			u.vars[t][nl.ClockRoot] = u.constTrue // root clock always enabled
		}
		for _, p := range nl.Inputs {
			for _, n := range p.Bits {
				u.vars[t][n] = u.s.NewVar()
			}
		}
		for i := range prog.DFFs {
			u.vars[t][prog.DFFs[i].Out] = u.s.NewVar()
		}
	}

	// Initial state: reset values.
	for i := range prog.DFFs {
		f := &prog.DFFs[i]
		u.s.AddClause(sat.MkLit(u.vars[0][f.Out], !f.Init))
	}

	// Combinational logic per cycle, then transitions.
	for t := 0; t < u.depth; t++ {
		for i := range prog.Ops {
			u.encodeOp(t, &prog.Ops[i])
		}
		if t+1 < u.depth {
			for i := range prog.DFFs {
				f := &prog.DFFs[i]
				// next = clk ? D : cur  (clock nets carry the enable).
				next := u.vars[t+1][f.Out]
				u.encodeMux(next, u.vars[t][f.Out], u.vars[t][f.D], u.vars[t][f.Clk])
			}
		}
		u.encodeAssumes(t)
	}

	if fp := u.cfg.FixedPulse; fp != nil {
		p, ok := nl.FindInput(fp.Port)
		if !ok || len(p.Bits) != 1 {
			panic(fmt.Sprintf("bmc: FixedPulse port %q is not a 1-bit input", fp.Port))
		}
		for t := 0; t < u.depth; t++ {
			high := t%fp.Period == 0
			u.s.AddClause(sat.MkLit(u.vars[t][p.Bits[0]], !high))
		}
	}
}

// encodeAssumes adds the per-cycle input restrictions.
func (u *unroller) encodeAssumes(t int) {
	for _, pc := range u.cfg.Assume {
		p, ok := u.nl.FindInput(pc.Port)
		if !ok {
			panic(fmt.Sprintf("bmc: assume on unknown port %q", pc.Port))
		}
		var sel []sat.Lit
		for _, v := range pc.Allowed {
			// aux -> bits match v
			aux := u.s.NewVar()
			for i, n := range p.Bits {
				bitSet := v>>uint(i)&1 == 1
				u.s.AddClause(sat.MkLit(aux, true), u.lit(t, n, !bitSet))
			}
			sel = append(sel, sat.MkLit(aux, false))
		}
		u.s.AddClause(sel...)
	}
}

// fresh allocates the output variable of a combinational cell.
func (u *unroller) out(t int, n netlist.NetID) int {
	if u.vars[t][n] == -1 {
		u.vars[t][n] = u.s.NewVar()
	}
	return u.vars[t][n]
}

func (u *unroller) encodeOp(t int, op *engine.Op) {
	s := u.s
	switch op.Kind {
	case cell.TIE0:
		u.vars[t][op.Out] = u.constFalse
	case cell.TIE1:
		u.vars[t][op.Out] = u.constTrue
	case cell.BUF, cell.CLKBUF:
		u.vars[t][op.Out] = u.vars[t][op.In[0]]
	case cell.INV:
		y := u.out(t, netlist.NetID(op.Out))
		a := u.vars[t][op.In[0]]
		s.AddClause(sat.MkLit(y, false), sat.MkLit(a, false))
		s.AddClause(sat.MkLit(y, true), sat.MkLit(a, true))
	case cell.AND2, cell.CLKGATE:
		u.encodeAnd(u.out(t, netlist.NetID(op.Out)), u.vars[t][op.In[0]], u.vars[t][op.In[1]], false)
	case cell.NAND2:
		u.encodeAnd(u.out(t, netlist.NetID(op.Out)), u.vars[t][op.In[0]], u.vars[t][op.In[1]], true)
	case cell.OR2:
		u.encodeOr(u.out(t, netlist.NetID(op.Out)), u.vars[t][op.In[0]], u.vars[t][op.In[1]], false)
	case cell.NOR2:
		u.encodeOr(u.out(t, netlist.NetID(op.Out)), u.vars[t][op.In[0]], u.vars[t][op.In[1]], true)
	case cell.XOR2:
		u.encodeXor(u.out(t, netlist.NetID(op.Out)), u.vars[t][op.In[0]], u.vars[t][op.In[1]], false)
	case cell.XNOR2:
		u.encodeXor(u.out(t, netlist.NetID(op.Out)), u.vars[t][op.In[0]], u.vars[t][op.In[1]], true)
	case cell.MUX2:
		u.encodeMux(u.out(t, netlist.NetID(op.Out)), u.vars[t][op.In[0]], u.vars[t][op.In[1]], u.vars[t][op.In[2]])
	case cell.AOI21:
		// y = !((a&b)|c): tmp = a&b; y = !(tmp|c).
		tmp := u.s.NewVar()
		u.encodeAnd(tmp, u.vars[t][op.In[0]], u.vars[t][op.In[1]], false)
		u.encodeOr(u.out(t, netlist.NetID(op.Out)), tmp, u.vars[t][op.In[2]], true)
	case cell.OAI21:
		tmp := u.s.NewVar()
		u.encodeOr(tmp, u.vars[t][op.In[0]], u.vars[t][op.In[1]], false)
		u.encodeAnd(u.out(t, netlist.NetID(op.Out)), tmp, u.vars[t][op.In[2]], true)
	default:
		panic("bmc: cannot encode " + op.Kind.String())
	}
}

// encodeAnd emits y = a&b (or y = !(a&b) when neg). With MkLit(v, true)
// denoting ¬v, AND is (y ∨ ¬a ∨ ¬b)(¬y ∨ a)(¬y ∨ b); neg flips y's
// polarity throughout.
func (u *unroller) encodeAnd(y, a, b int, neg bool) {
	s := u.s
	s.AddClause(sat.MkLit(y, neg), sat.MkLit(a, true), sat.MkLit(b, true))
	s.AddClause(sat.MkLit(y, !neg), sat.MkLit(a, false))
	s.AddClause(sat.MkLit(y, !neg), sat.MkLit(b, false))
}

// encodeOr emits y = a|b (or the negation): (¬y ∨ a ∨ b)(y ∨ ¬a)(y ∨ ¬b).
func (u *unroller) encodeOr(y, a, b int, neg bool) {
	s := u.s
	s.AddClause(sat.MkLit(y, !neg), sat.MkLit(a, false), sat.MkLit(b, false))
	s.AddClause(sat.MkLit(y, neg), sat.MkLit(a, true))
	s.AddClause(sat.MkLit(y, neg), sat.MkLit(b, true))
}

// encodeXor emits y = a^b (or xnor when neg):
// (¬y ∨ a ∨ b)(¬y ∨ ¬a ∨ ¬b)(y ∨ ¬a ∨ b)(y ∨ a ∨ ¬b).
func (u *unroller) encodeXor(y, a, b int, neg bool) {
	s := u.s
	s.AddClause(sat.MkLit(y, !neg), sat.MkLit(a, false), sat.MkLit(b, false))
	s.AddClause(sat.MkLit(y, !neg), sat.MkLit(a, true), sat.MkLit(b, true))
	s.AddClause(sat.MkLit(y, neg), sat.MkLit(a, true), sat.MkLit(b, false))
	s.AddClause(sat.MkLit(y, neg), sat.MkLit(a, false), sat.MkLit(b, true))
}

// encodeMux emits y = s ? b : a:
// (¬s ∨ ¬b ∨ y)(¬s ∨ b ∨ ¬y)(s ∨ ¬a ∨ y)(s ∨ a ∨ ¬y).
func (u *unroller) encodeMux(y, a, b, sel int) {
	s := u.s
	s.AddClause(sat.MkLit(sel, true), sat.MkLit(b, true), sat.MkLit(y, false))
	s.AddClause(sat.MkLit(sel, true), sat.MkLit(b, false), sat.MkLit(y, true))
	s.AddClause(sat.MkLit(sel, false), sat.MkLit(a, true), sat.MkLit(y, false))
	s.AddClause(sat.MkLit(sel, false), sat.MkLit(a, false), sat.MkLit(y, true))
}

// validNets resolves the observability handshake: the original and
// shadow-machine valid bits (equal when the handshake is outside the
// fault cone), or NoNet when no ValidPort is configured.
func (u *unroller) validNets(covers []fault.CoverPoint) (validOrig, validShadow netlist.NetID) {
	validOrig, validShadow = netlist.NoNet, netlist.NoNet
	if u.cfg.ValidPort == "" {
		return
	}
	p, ok := u.nl.FindOutput(u.cfg.ValidPort)
	if !ok || len(p.Bits) != 1 {
		panic(fmt.Sprintf("bmc: ValidPort %q is not a 1-bit output", u.cfg.ValidPort))
	}
	validOrig, validShadow = p.Bits[0], p.Bits[0]
	for _, cp := range covers {
		if cp.Orig == validOrig {
			validShadow = cp.Shadow
		}
	}
	return
}

// solveCover adds the cover disjunction and solves.
func (u *unroller) solveCover(covers []fault.CoverPoint) sat.Status {
	validOrig, validShadow := u.validNets(covers)
	var targets []sat.Lit
	for t := 0; t < u.depth; t++ {
		for _, cp := range covers {
			d := u.s.NewVar()
			u.encodeXor(d, u.vars[t][cp.Orig], u.vars[t][cp.Shadow], false)
			if validOrig == netlist.NoNet || cp.Orig == validOrig {
				targets = append(targets, sat.MkLit(d, false))
				continue
			}
			// obs = d & valid_s
			obs := u.s.NewVar()
			u.encodeAnd(obs, d, u.vars[t][validShadow], false)
			targets = append(targets, sat.MkLit(obs, false))
		}
	}
	u.s.AddClause(targets...)
	return u.s.Solve()
}

// extract reads the model back into a Trace.
func (u *unroller) extract(covers []fault.CoverPoint) *Trace {
	tr := &Trace{Cycles: u.depth, Inputs: make(map[string][]uint64), CoverCycle: -1}
	for _, p := range u.nl.Inputs {
		vals := make([]uint64, u.depth)
		for t := 0; t < u.depth; t++ {
			var v uint64
			for i, n := range p.Bits {
				if u.s.Value(u.vars[t][n]) {
					v |= 1 << uint(i)
				}
			}
			vals[t] = v
		}
		tr.Inputs[p.Name] = vals
	}
	validOrig, validShadow := u.validNets(covers)
	for t := 0; t < u.depth && tr.CoverCycle == -1; t++ {
		for _, cp := range covers {
			if u.s.Value(u.vars[t][cp.Orig]) == u.s.Value(u.vars[t][cp.Shadow]) {
				continue
			}
			if validOrig != netlist.NoNet && cp.Orig != validOrig && !u.s.Value(u.vars[t][validShadow]) {
				continue // divergence the software never observes
			}
			tr.CoverCycle = t
			tr.CoverPoint = cp
			break
		}
	}
	return tr
}
