package bmc

import (
	"testing"

	"repro/internal/alu"
	"repro/internal/cell"
	"repro/internal/demo"
	"repro/internal/fault"
	"repro/internal/module"
	"repro/internal/netlist"
	"repro/internal/sta"
)

func adderSpec(nl *netlist.Netlist, c fault.CValue) fault.Spec {
	return fault.Spec{
		Type:  sta.Setup,
		Start: demo.CellIDByName(nl, "DFF$4"),
		End:   demo.CellIDByName(nl, "DFF$10"),
		C:     c,
	}
}

func TestCoverAdderSetupFault(t *testing.T) {
	orig := demo.Adder2()
	for _, c := range []fault.CValue{fault.C0, fault.C1} {
		inst := fault.ShadowReplica(orig, adderSpec(orig, c))
		res := Cover(inst.Netlist, inst.Covers, Config{})
		if res.Verdict != Covered {
			t.Fatalf("C=%v: verdict %v, want covered", c, res.Verdict)
		}
		if res.Trace.CoverCycle < 0 {
			t.Fatal("no cover cycle recorded")
		}
		if !Replay(inst.Netlist, res.Trace) {
			t.Fatalf("C=%v: trace does not replay", c)
		}
	}
}

func TestCoverHoldFault(t *testing.T) {
	orig := demo.Adder2()
	spec := fault.Spec{
		Type:  sta.Hold,
		Start: demo.CellIDByName(orig, "DFF$1"),
		End:   demo.CellIDByName(orig, "DFF$9"),
		C:     fault.C1,
	}
	inst := fault.ShadowReplica(orig, spec)
	res := Cover(inst.Netlist, inst.Covers, Config{})
	if res.Verdict != Covered {
		t.Fatalf("verdict %v, want covered", res.Verdict)
	}
	if !Replay(inst.Netlist, res.Trace) {
		t.Fatal("hold trace does not replay")
	}
}

func TestUnreachableWhenMasked(t *testing.T) {
	// Y's output is masked to zero before the module output: no input
	// sequence can make the fault observable, and BMC must prove it
	// (the paper's "UR" outcome).
	b := netlist.NewBuilder("masked")
	clk := b.Clock("clk")
	d := b.Input("d")
	x := b.AddDFFNamed("x", d, clk, false)
	y := b.AddDFFNamed("y", x, clk, false)
	zero := b.Add(cell.TIE0)
	out := b.Add(cell.AND2, y, zero)
	b.Output("o", out)
	nl := b.MustBuild()
	spec := fault.Spec{
		Type:  sta.Setup,
		Start: demo.CellIDByName(nl, "x"),
		End:   demo.CellIDByName(nl, "y"),
		C:     fault.C1,
	}
	inst := fault.ShadowReplica(nl, spec)
	res := Cover(inst.Netlist, inst.Covers, Config{MaxDepth: 6})
	if res.Verdict != Unreachable {
		t.Fatalf("verdict %v, want unreachable", res.Verdict)
	}
}

func TestEdgeMitigationTracesDiffer(t *testing.T) {
	// Rising- and falling-filtered variants must both be coverable, with
	// valid replays (§3.3.4 generates both).
	orig := demo.Adder2()
	for _, e := range []fault.EdgeFilter{fault.RisingEdge, fault.FallingEdge} {
		spec := adderSpec(orig, fault.C1)
		spec.Edge = e
		inst := fault.ShadowReplica(orig, spec)
		res := Cover(inst.Netlist, inst.Covers, Config{})
		if res.Verdict != Covered {
			t.Fatalf("edge %v: verdict %v", e, res.Verdict)
		}
		if !Replay(inst.Netlist, res.Trace) {
			t.Fatalf("edge %v: trace does not replay", e)
		}
	}
}

func TestAssumeConstraintsRespected(t *testing.T) {
	orig := demo.Adder2()
	inst := fault.ShadowReplica(orig, adderSpec(orig, fault.C1))
	// Restrict a to 0: the fault on the b-path is still coverable, and
	// every cycle of the trace must honor the restriction.
	res := Cover(inst.Netlist, inst.Covers, Config{
		Assume: []PortConstraint{{Port: "a", Allowed: []uint64{0}}},
	})
	if res.Verdict != Covered {
		t.Fatalf("verdict %v, want covered", res.Verdict)
	}
	for t2, v := range res.Trace.Inputs["a"] {
		if v != 0 {
			t.Fatalf("cycle %d: a=%d violates assume", t2, v)
		}
	}
	if !Replay(inst.Netlist, res.Trace) {
		t.Fatal("constrained trace does not replay")
	}
}

func TestAssumeCanForceUnreachable(t *testing.T) {
	orig := demo.Adder2()
	inst := fault.ShadowReplica(orig, adderSpec(orig, fault.C1))
	// Freeze both inputs to constants: X never changes, the setup fault
	// never activates.
	res := Cover(inst.Netlist, inst.Covers, Config{
		MaxDepth: 5,
		Assume: []PortConstraint{
			{Port: "a", Allowed: []uint64{0}},
			{Port: "b", Allowed: []uint64{0}},
		},
	})
	if res.Verdict != Unreachable {
		t.Fatalf("verdict %v, want unreachable under frozen inputs", res.Verdict)
	}
}

func TestALUFaultEndToEnd(t *testing.T) {
	// The full pipeline on the real ALU: pick the adder's top result bit
	// register as the endpoint and one of the operand registers as the
	// start, instrument, cover with op-validity assumes, replay.
	m := alu.Build()
	nl := m.Netlist
	// Find a result register (drives result[31]) and an operand register
	// (a_q[31]): realistic setup-violating pair through the adder.
	out, _ := nl.FindOutput(module.PortResult)
	end := nl.Driver(out.Bits[31])
	inPort, _ := nl.FindInput(module.PortA)
	var start netlist.CellID = netlist.NoCell
	readers := nl.Readers()
	for _, cid := range readers[inPort.Bits[31]] {
		if nl.Cells[cid].Kind == cell.DFF {
			start = cid
		}
	}
	if start == netlist.NoCell || end == netlist.NoCell {
		t.Fatal("could not locate DFF pair")
	}
	spec := fault.Spec{Type: sta.Setup, Start: start, End: end, C: fault.C1}
	inst := fault.ShadowReplica(nl, spec)
	res := Cover(inst.Netlist, inst.Covers, Config{
		MaxDepth: 6,
		Assume: []PortConstraint{
			{Port: module.PortOp, Allowed: opRange(alu.NumOps)},
			{Port: module.PortInValid, Allowed: []uint64{0, 1}},
		},
		ValidPort: module.PortOutValid,
	})
	if res.Verdict != Covered {
		t.Fatalf("ALU fault verdict %v, want covered (depth %d)", res.Verdict, res.Depth)
	}
	if !Replay(inst.Netlist, res.Trace) {
		t.Fatal("ALU trace does not replay")
	}
	// The trace must only use legal ops.
	for _, op := range res.Trace.Inputs[module.PortOp] {
		if op >= alu.NumOps {
			t.Fatalf("trace uses illegal op %d", op)
		}
	}
	t.Logf("ALU fault covered at depth %d, cycle %d, cover point %s",
		res.Depth, res.Trace.CoverCycle, res.Trace.CoverPoint.Name)
}

func opRange(n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = uint64(i)
	}
	return out
}

func TestVerdictString(t *testing.T) {
	if Covered.String() != "covered" || Unreachable.String() != "unreachable" || Timeout.String() != "timeout" {
		t.Error("verdict strings wrong")
	}
}
