package bmc_test

import (
	"testing"

	"repro/internal/alu"
	"repro/internal/bmc"
	"repro/internal/cell"
	"repro/internal/fault"
	"repro/internal/fpu"
	"repro/internal/lift"
	"repro/internal/module"
	"repro/internal/netlist"
	"repro/internal/sta"
)

// benchSpec picks the same realistic setup-violating pair the end-to-end
// test uses: the top result-bit register as the endpoint and the operand
// register latching a[msb] as the start.
func benchSpec(m *module.Module) fault.Spec {
	nl := m.Netlist
	out, _ := nl.FindOutput(module.PortResult)
	end := nl.Driver(out.Bits[len(out.Bits)-1])
	inPort, _ := nl.FindInput(module.PortA)
	start := netlist.NoCell
	for _, cid := range nl.Readers()[inPort.Bits[len(inPort.Bits)-1]] {
		if nl.Cells[cid].Kind == cell.DFF {
			start = cid
		}
	}
	if start == netlist.NoCell || end == netlist.NoCell {
		panic("bench: could not locate DFF pair")
	}
	return fault.Spec{Type: sta.Setup, Start: start, End: end, C: fault.C1}
}

// BenchmarkCover compares the incremental engine against the retained
// from-scratch single-shot baseline on the shadow replicas of the real
// ALU and FPU at the default bound of 8 cycles, under the full
// assume-environment Error Lifting uses (legal ops, issue cadence,
// handshake observability). The acceptance bar recorded in
// BENCH_bmc.json requires the incremental path to be at least 2x faster
// on the ALU.
func BenchmarkCover(b *testing.B) {
	for _, unit := range []struct {
		name  string
		build func() *module.Module
	}{
		{"ALU", alu.Build},
		{"FPU", fpu.Build},
	} {
		m := unit.build()
		inst := fault.ShadowReplica(m.Netlist, benchSpec(m))
		cfg := lift.BMCConfig(m, lift.Config{MaxDepth: 8})
		b.Run(unit.name+"/incremental", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := bmc.Cover(inst.Netlist, inst.Covers, cfg)
				if res.Verdict != bmc.Covered {
					b.Fatalf("verdict %v", res.Verdict)
				}
			}
		})
		b.Run(unit.name+"/scratch", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := bmc.CoverSingleShot(inst.Netlist, inst.Covers, cfg)
				if res.Verdict != bmc.Covered {
					b.Fatalf("verdict %v", res.Verdict)
				}
			}
		})
	}
}
