package bmc

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/cell"
	"repro/internal/demo"
	"repro/internal/fault"
	"repro/internal/netlist"
	"repro/internal/sta"
)

// randomSequentialNetlist builds a random synchronous DAG with at least
// two flip-flops and a handful of exposed outputs, so that random fault
// specs have DFF pairs to target and the fault cone usually reaches an
// observable bit. Cells only read already-driven nets, so the result
// always validates.
func randomSequentialNetlist(seed int64) *netlist.Netlist {
	rng := rand.New(rand.NewSource(seed))
	b := netlist.NewBuilder(fmt.Sprintf("rnd%d", seed))
	clk := b.Clock("clk")
	nIn := 2 + rng.Intn(4)
	in := b.InputBus("x", nIn)
	pool := append(netlist.Bus{}, in...)
	kinds := []cell.Kind{
		cell.BUF, cell.INV, cell.AND2, cell.OR2, cell.NAND2,
		cell.NOR2, cell.XOR2, cell.XNOR2, cell.MUX2, cell.AOI21, cell.OAI21,
	}
	// Two guaranteed flip-flops so every spec has a pair to pick from.
	pool = append(pool, b.AddDFF(pool[rng.Intn(len(pool))], clk, rng.Intn(2) == 0))
	pool = append(pool, b.AddDFF(pool[rng.Intn(len(pool))], clk, rng.Intn(2) == 0))
	nCells := 5 + rng.Intn(30)
	for i := 0; i < nCells; i++ {
		if rng.Intn(4) == 0 {
			d := pool[rng.Intn(len(pool))]
			pool = append(pool, b.AddDFF(d, clk, rng.Intn(2) == 0))
			continue
		}
		k := kinds[rng.Intn(len(kinds))]
		ins := make([]netlist.NetID, k.NumInputs())
		for j := range ins {
			ins[j] = pool[rng.Intn(len(pool))]
		}
		pool = append(pool, b.Add(k, ins...))
	}
	// Expose the tail of the pool: several observation points, so fault
	// cones terminate at module outputs more often than a single bit
	// would allow.
	nOut := 3
	if nOut > len(pool) {
		nOut = len(pool)
	}
	for i := 0; i < nOut; i++ {
		b.Output(fmt.Sprintf("y%d", i), pool[len(pool)-1-i])
	}
	return b.MustBuild()
}

// dffCells lists the flip-flop cells of a netlist (fault specs may only
// name DFFs as start/end points).
func dffCells(nl *netlist.Netlist) []netlist.CellID {
	var out []netlist.CellID
	for i, c := range nl.Cells {
		if c.Kind == cell.DFF {
			out = append(out, netlist.CellID(i))
		}
	}
	return out
}

// specFromBytes derives a fault spec over nl's flip-flops from four
// fuzz-controlled bytes. Start==End (the same-flip-flop metastable case)
// is deliberately reachable.
func specFromBytes(nl *netlist.Netlist, b0, b1, b2, b3 byte) fault.Spec {
	dffs := dffCells(nl)
	spec := fault.Spec{
		Start: dffs[int(b0)%len(dffs)],
		End:   dffs[int(b1)%len(dffs)],
	}
	if b2&1 == 1 {
		spec.Type = sta.Hold
	} else {
		spec.Type = sta.Setup
	}
	if b2&2 == 2 {
		spec.C = fault.C1
	} else {
		spec.C = fault.C0
	}
	spec.Edge = fault.EdgeFilter(int(b3) % 3)
	return spec
}

// checkEquivalence runs the incremental Cover and the from-scratch
// CoverSingleShot on one instrumented netlist and cross-checks the two:
// identical verdicts, replayable traces on both paths, and an
// incremental depth no deeper than the single-shot bound.
func checkEquivalence(t *testing.T, name string, inst *fault.Instrumented, cfg Config) {
	t.Helper()
	inc := Cover(inst.Netlist, inst.Covers, cfg)
	scr := CoverSingleShot(inst.Netlist, inst.Covers, cfg)
	if inc.Verdict != scr.Verdict {
		t.Fatalf("%s: incremental=%v scratch=%v", name, inc.Verdict, scr.Verdict)
	}
	if inc.Verdict != Covered {
		return
	}
	if inc.Depth > scr.Depth {
		t.Fatalf("%s: incremental depth %d exceeds scratch depth %d", name, inc.Depth, scr.Depth)
	}
	if inc.Depth != inc.Trace.CoverCycle+1 || inc.Trace.Cycles != inc.Depth {
		t.Fatalf("%s: depth %d inconsistent with trace (cover cycle %d, cycles %d)",
			name, inc.Depth, inc.Trace.CoverCycle, inc.Trace.Cycles)
	}
	if !Replay(inst.Netlist, inc.Trace) {
		t.Fatalf("%s: incremental trace does not replay", name)
	}
	if !Replay(inst.Netlist, scr.Trace) {
		t.Fatalf("%s: scratch trace does not replay", name)
	}
}

// TestIncrementalMatchesScratch is the differential layer proving the
// incremental engine equivalent to the retained single-shot path, over
// a corpus of hand-built modules, every adder spec variant, and a sweep
// of random netlists with random fault specs.
func TestIncrementalMatchesScratch(t *testing.T) {
	adder := demo.Adder2()
	for _, typ := range []sta.PathType{sta.Setup, sta.Hold} {
		for _, c := range []fault.CValue{fault.C0, fault.C1} {
			for _, e := range []fault.EdgeFilter{fault.AnyChange, fault.RisingEdge, fault.FallingEdge} {
				spec := adderSpec(adder, c)
				spec.Type = typ
				spec.Edge = e
				inst := fault.ShadowReplica(adder, spec)
				checkEquivalence(t, "adder/"+spec.Name(adder), inst, Config{})
			}
		}
	}

	// The masked netlist: both engines must prove unreachability.
	masked := maskedNetlist()
	spec := fault.Spec{
		Type:  sta.Setup,
		Start: demo.CellIDByName(masked, "x"),
		End:   demo.CellIDByName(masked, "y"),
		C:     fault.C1,
	}
	checkEquivalence(t, "masked", fault.ShadowReplica(masked, spec), Config{MaxDepth: 6})

	// The delay chain: the case where incremental depth < scratch depth.
	chain := delayChainNetlist()
	checkEquivalence(t, "chain", fault.ShadowReplica(chain, delayChainSpec(chain)), Config{})

	nRandom := 60
	if testing.Short() {
		nRandom = 12
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < nRandom; i++ {
		nl := randomSequentialNetlist(int64(i))
		spec := specFromBytes(nl, byte(rng.Intn(256)), byte(rng.Intn(256)),
			byte(rng.Intn(256)), byte(rng.Intn(256)))
		inst := fault.ShadowReplica(nl, spec)
		checkEquivalence(t, fmt.Sprintf("rnd%d/%s", i, spec.Name(nl)), inst,
			Config{MaxDepth: 5})
	}
}

// maskedNetlist reproduces TestUnreachableWhenMasked's circuit: the
// faulty flip-flop's output is ANDed with constant zero before the
// module output, so no input sequence observes the fault.
func maskedNetlist() *netlist.Netlist {
	b := netlist.NewBuilder("masked")
	clk := b.Clock("clk")
	d := b.Input("d")
	x := b.AddDFFNamed("x", d, clk, false)
	y := b.AddDFFNamed("y", x, clk, false)
	zero := b.Add(cell.TIE0)
	out := b.Add(cell.AND2, y, zero)
	b.Output("o", out)
	return b.MustBuild()
}

// delayChainNetlist builds d -> X -> Y -> c1 -> o: a fault on the X->Y
// path needs two cycles to activate with the right polarity, one cycle
// to capture, and one more to ripple through c1 — the cover is first
// observable at cycle 4, i.e. minimal depth 5.
func delayChainNetlist() *netlist.Netlist {
	b := netlist.NewBuilder("chain")
	clk := b.Clock("clk")
	d := b.Input("d")
	x := b.AddDFFNamed("x", d, clk, false)
	y := b.AddDFFNamed("y", x, clk, false)
	c1 := b.AddDFFNamed("c1", y, clk, false)
	b.Output("o", c1)
	return b.MustBuild()
}

func delayChainSpec(nl *netlist.Netlist) fault.Spec {
	return fault.Spec{
		Type:  sta.Setup,
		Start: demo.CellIDByName(nl, "x"),
		End:   demo.CellIDByName(nl, "y"),
		C:     fault.C1,
	}
}

// TestMinimalDepthReported is the regression for the depth bug: the old
// {4, MaxDepth} schedule reported Depth == MaxDepth for any cover deeper
// than 4 cycles. The delay chain's fault is first observable at cycle 4,
// so Cover with MaxDepth 8 must report the minimal depth 5 — not 8 —
// and MaxDepth 4 must prove it unreachable within the bound.
func TestMinimalDepthReported(t *testing.T) {
	nl := delayChainNetlist()
	inst := fault.ShadowReplica(nl, delayChainSpec(nl))

	res := Cover(inst.Netlist, inst.Covers, Config{MaxDepth: 8})
	if res.Verdict != Covered {
		t.Fatalf("verdict %v, want covered", res.Verdict)
	}
	if res.Depth != 5 {
		t.Fatalf("Depth = %d, want minimal depth 5", res.Depth)
	}
	if res.Trace.CoverCycle != 4 || res.Trace.Cycles != 5 {
		t.Fatalf("trace cover cycle %d / cycles %d, want 4 / 5",
			res.Trace.CoverCycle, res.Trace.Cycles)
	}
	if !Replay(inst.Netlist, res.Trace) {
		t.Fatal("minimal-depth trace does not replay")
	}

	// Minimality cross-check: one cycle shallower is a proof of absence.
	shallow := Cover(inst.Netlist, inst.Covers, Config{MaxDepth: 4})
	if shallow.Verdict != Unreachable {
		t.Fatalf("MaxDepth 4 verdict %v, want unreachable", shallow.Verdict)
	}
}

// TestStrideCoarsensDepth documents the stride trade-off: with Stride 4
// the chain's cover is found inside the second window [4,8), the
// reported depth comes from whichever witness cycle the model happens
// to diverge at first — minimal only up to the stride — and the refuted
// first window still bounds it from below.
func TestStrideCoarsensDepth(t *testing.T) {
	nl := delayChainNetlist()
	inst := fault.ShadowReplica(nl, delayChainSpec(nl))
	res := Cover(inst.Netlist, inst.Covers, Config{MaxDepth: 8, Stride: 4})
	if res.Verdict != Covered {
		t.Fatalf("verdict %v, want covered", res.Verdict)
	}
	if res.Depth < 5 || res.Depth > 8 {
		t.Fatalf("Depth = %d, want within (4,8]: the 0-3 window was refuted", res.Depth)
	}
	if !Replay(inst.Netlist, res.Trace) {
		t.Fatal("stride-4 trace does not replay")
	}
}

// TestCoverStatsAccounting checks that the per-result stats reflect the
// iterative-deepening schedule: one Solve per window, nonzero CNF size,
// and budget-limited runs surface as Timeout.
func TestCoverStatsAccounting(t *testing.T) {
	nl := delayChainNetlist()
	inst := fault.ShadowReplica(nl, delayChainSpec(nl))

	res := Cover(inst.Netlist, inst.Covers, Config{MaxDepth: 8})
	if res.Stats.Solves != 5 {
		t.Errorf("Solves = %d, want 5 (windows 1..5)", res.Stats.Solves)
	}
	if res.Stats.Vars == 0 || res.Stats.Clauses == 0 {
		t.Errorf("empty CNF stats: %+v", res.Stats)
	}

	unreach := Cover(inst.Netlist, inst.Covers, Config{MaxDepth: 4})
	if unreach.Stats.Solves != 4 {
		t.Errorf("unreachable Solves = %d, want 4", unreach.Stats.Solves)
	}

	// An exhausted shared budget must yield Timeout, not a bogus proof.
	// MaxConflicts can't be 0 (that means "default"), so give a budget
	// too small for the hard ALU-sized instance instead: the adder with
	// one conflict of budget. If even that solves conflict-free, the
	// check is vacuous but harmless.
	adder := demo.Adder2()
	ainst := fault.ShadowReplica(adder, adderSpec(adder, fault.C1))
	tiny := Cover(ainst.Netlist, ainst.Covers, Config{MaxDepth: 8, MaxConflicts: 1})
	if tiny.Verdict == Unreachable {
		t.Errorf("budget-starved run claimed a proof: %+v", tiny)
	}
}
