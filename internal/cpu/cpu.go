// Package cpu implements an in-order RV32IM+F(subset) CPU simulator in
// the style of the CV32E40P, with pluggable execution units: the ALU and
// FPU can run behaviourally (golden models — fast, used for workload
// profiling and the overhead experiments) or netlist-backed (the
// synthesized or failure-instrumented gate-level module is simulated for
// every offloaded instruction — the Verilator setup of §5.1, where only
// the unit under test runs at gate level).
//
// ABI: ecall halts with the exit code in a0; ebreak halts with
// HaltBreak (the lifted test cases use it as the failure trap). A
// backend that never raises out_valid halts the CPU with HaltStalled —
// the watchdog-observable stall of Table 6's "S" outcome.
package cpu

import (
	"context"
	"fmt"

	"repro/internal/alu"
	"repro/internal/fpu"
	"repro/internal/isa"
)

// HaltReason describes why execution stopped.
type HaltReason int

// Halt reasons.
const (
	Running HaltReason = iota
	HaltExit
	HaltBreak
	HaltStalled
	HaltFault
	HaltLimit
	// HaltInterrupted means RunCtx's context was cancelled mid-run; the
	// architectural state is valid but the program is unfinished.
	HaltInterrupted
)

func (h HaltReason) String() string {
	switch h {
	case Running:
		return "running"
	case HaltExit:
		return "exit"
	case HaltBreak:
		return "break"
	case HaltStalled:
		return "stalled"
	case HaltFault:
		return "fault"
	case HaltInterrupted:
		return "interrupted"
	}
	return "limit"
}

// ALUBackend executes one integer operation. ok=false signals a hung
// unit.
type ALUBackend interface {
	ExecALU(op alu.Op, a, b uint32) (result, flags uint32, ok bool)
}

// FPUBackend executes one floating-point operation.
type FPUBackend interface {
	ExecFPU(op fpu.Op, a, b uint32) (result, flags uint32, ok bool)
}

// Default cycle costs, loosely calibrated to the CV32E40P's in-order
// 4-stage pipeline. Only relative costs matter for the overhead
// experiments.
const (
	cycleBase       = 1
	cycleLoadExtra  = 1
	cycleTakenExtra = 2 // taken branch / jal / jalr pipeline flush
	cycleDivExtra   = 34
	cycleFPUExtra   = 1 // 2-stage FPU, blocking
	cycleFDivExtra  = 10
)

// CPU is one simulated hart plus its memory.
type CPU struct {
	PC      uint32
	X       [32]uint32
	F       [32]uint32 // raw float bits
	FFlags  uint32     // fcsr.fflags, sticky
	Mem     []byte
	Cycles  uint64
	Instret uint64

	Halt     HaltReason
	ExitCode uint32
	FaultMsg string

	// ALU/FPU are the execution-unit backends; nil selects the golden
	// behavioural model.
	ALU ALUBackend
	FPU FPUBackend

	// InstHook, when set, observes every retired instruction (used by
	// the basic-block profiler).
	InstHook func(pc uint32, inst isa.Inst)

	decodeCache map[uint32]isa.Inst
}

// New creates a CPU with the given memory size.
func New(memSize int) *CPU {
	return &CPU{Mem: make([]byte, memSize), decodeCache: make(map[uint32]isa.Inst)}
}

// Load copies an assembled image into memory and points the PC at its
// base. Architectural state other than the PC is preserved (so test
// cases can be spliced after a workload).
func (c *CPU) Load(img *isa.Image) {
	for i, w := range img.Words {
		c.storeWord(img.Base+4*uint32(i), w)
	}
	copy(c.Mem[img.DataBase:], img.Data)
	c.PC = img.Base
	c.Halt = Running
	c.decodeCache = make(map[uint32]isa.Inst)
	// A stack at the top of memory.
	c.X[isa.SP] = uint32(len(c.Mem) - 16)
}

func (c *CPU) fault(format string, args ...any) {
	c.Halt = HaltFault
	c.FaultMsg = fmt.Sprintf(format, args...)
}

func (c *CPU) loadWord(addr uint32) (uint32, bool) {
	if int(addr)+4 > len(c.Mem) {
		c.fault("load out of range at %#x", addr)
		return 0, false
	}
	return uint32(c.Mem[addr]) | uint32(c.Mem[addr+1])<<8 |
		uint32(c.Mem[addr+2])<<16 | uint32(c.Mem[addr+3])<<24, true
}

func (c *CPU) storeWord(addr uint32, v uint32) bool {
	if int(addr)+4 > len(c.Mem) {
		c.fault("store out of range at %#x", addr)
		return false
	}
	c.Mem[addr] = byte(v)
	c.Mem[addr+1] = byte(v >> 8)
	c.Mem[addr+2] = byte(v >> 16)
	c.Mem[addr+3] = byte(v >> 24)
	return true
}

// execALU routes an integer operation through the backend (or the golden
// model).
func (c *CPU) execALU(op alu.Op, a, b uint32) (uint32, uint32) {
	if c.ALU == nil {
		return alu.Eval(op, a, b), alu.Flags(a, b)
	}
	r, f, ok := c.ALU.ExecALU(op, a, b)
	if !ok {
		c.Halt = HaltStalled
		c.FaultMsg = fmt.Sprintf("ALU hung on %v", op)
	}
	return r, f
}

func (c *CPU) execFPU(op fpu.Op, a, b uint32) (uint32, uint32) {
	if c.FPU == nil {
		return fpu.Eval(op, a, b)
	}
	r, f, ok := c.FPU.ExecFPU(op, a, b)
	if !ok {
		c.Halt = HaltStalled
		c.FaultMsg = fmt.Sprintf("FPU hung on %v", op)
	}
	return r, f
}

func (c *CPU) csr(addr uint32) uint32 {
	switch addr {
	case isa.CSRFflags:
		return c.FFlags
	case isa.CSRFrm:
		return 0 // RNE
	case isa.CSRFcsr:
		return c.FFlags
	case isa.CSRCycle:
		return uint32(c.Cycles)
	case isa.CSRInstret:
		return uint32(c.Instret)
	}
	return 0
}

func (c *CPU) setCSR(addr, v uint32) {
	switch addr {
	case isa.CSRFflags, isa.CSRFcsr:
		c.FFlags = v & 0x1f
	}
}

// Step executes one instruction.
func (c *CPU) Step() {
	if c.Halt != Running {
		return
	}
	inst, ok := c.decodeCache[c.PC]
	if !ok {
		w, wok := c.loadWord(c.PC)
		if !wok {
			return
		}
		var err error
		inst, err = isa.Decode(w)
		if err != nil {
			c.fault("decode at %#x: %v", c.PC, err)
			return
		}
		c.decodeCache[c.PC] = inst
	}
	if c.InstHook != nil {
		c.InstHook(c.PC, inst)
	}
	c.execute(inst)
	c.X[0] = 0
	c.Instret++
}

func (c *CPU) execute(i isa.Inst) {
	pc := c.PC
	next := pc + 4
	cycles := uint64(cycleBase)
	rs1 := c.X[i.Rs1]
	rs2 := c.X[i.Rs2]

	switch i.Op {
	case isa.LUI:
		c.X[i.Rd] = uint32(i.Imm)
	case isa.AUIPC:
		c.X[i.Rd] = pc + uint32(i.Imm)
	case isa.JAL:
		c.X[i.Rd] = pc + 4
		next = pc + uint32(i.Imm)
		cycles += cycleTakenExtra
	case isa.JALR:
		c.X[i.Rd] = pc + 4
		next = (rs1 + uint32(i.Imm)) &^ 1
		cycles += cycleTakenExtra

	case isa.BEQ, isa.BNE, isa.BLT, isa.BGE, isa.BLTU, isa.BGEU:
		// Branch resolution uses the ALU's comparison flags (the
		// CV32E40P resolves branches in the ALU).
		_, flags := c.execALU(alu.OpSub, rs1, rs2)
		eq := flags&1 != 0
		lt := flags&2 != 0
		ltu := flags&4 != 0
		var taken bool
		switch i.Op {
		case isa.BEQ:
			taken = eq
		case isa.BNE:
			taken = !eq
		case isa.BLT:
			taken = lt
		case isa.BGE:
			taken = !lt
		case isa.BLTU:
			taken = ltu
		case isa.BGEU:
			taken = !ltu
		}
		if taken {
			next = pc + uint32(i.Imm)
			cycles += cycleTakenExtra
		}

	case isa.LB, isa.LH, isa.LW, isa.LBU, isa.LHU:
		addr := rs1 + uint32(i.Imm)
		cycles += cycleLoadExtra
		switch i.Op {
		case isa.LW:
			v, ok := c.loadWord(addr)
			if !ok {
				return
			}
			c.X[i.Rd] = v
		case isa.LB, isa.LBU:
			if int(addr) >= len(c.Mem) {
				c.fault("load out of range at %#x", addr)
				return
			}
			v := uint32(c.Mem[addr])
			if i.Op == isa.LB {
				v = uint32(int32(v<<24) >> 24)
			}
			c.X[i.Rd] = v
		case isa.LH, isa.LHU:
			if int(addr)+2 > len(c.Mem) {
				c.fault("load out of range at %#x", addr)
				return
			}
			v := uint32(c.Mem[addr]) | uint32(c.Mem[addr+1])<<8
			if i.Op == isa.LH {
				v = uint32(int32(v<<16) >> 16)
			}
			c.X[i.Rd] = v
		}

	case isa.SB, isa.SH, isa.SW:
		addr := rs1 + uint32(i.Imm)
		switch i.Op {
		case isa.SW:
			if !c.storeWord(addr, rs2) {
				return
			}
		case isa.SB:
			if int(addr) >= len(c.Mem) {
				c.fault("store out of range at %#x", addr)
				return
			}
			c.Mem[addr] = byte(rs2)
		case isa.SH:
			if int(addr)+2 > len(c.Mem) {
				c.fault("store out of range at %#x", addr)
				return
			}
			c.Mem[addr] = byte(rs2)
			c.Mem[addr+1] = byte(rs2 >> 8)
		}

	case isa.ADDI, isa.SLTI, isa.SLTIU, isa.XORI, isa.ORI, isa.ANDI,
		isa.SLLI, isa.SRLI, isa.SRAI:
		ops := map[isa.Op]alu.Op{
			isa.ADDI: alu.OpAdd, isa.SLTI: alu.OpSlt, isa.SLTIU: alu.OpSltu,
			isa.XORI: alu.OpXor, isa.ORI: alu.OpOr, isa.ANDI: alu.OpAnd,
			isa.SLLI: alu.OpSll, isa.SRLI: alu.OpSrl, isa.SRAI: alu.OpSra,
		}
		r, _ := c.execALU(ops[i.Op], rs1, uint32(i.Imm))
		c.X[i.Rd] = r

	case isa.ADD, isa.SUB, isa.SLL, isa.SLT, isa.SLTU, isa.XOR,
		isa.SRL, isa.SRA, isa.OR, isa.AND:
		ops := map[isa.Op]alu.Op{
			isa.ADD: alu.OpAdd, isa.SUB: alu.OpSub, isa.SLL: alu.OpSll,
			isa.SLT: alu.OpSlt, isa.SLTU: alu.OpSltu, isa.XOR: alu.OpXor,
			isa.SRL: alu.OpSrl, isa.SRA: alu.OpSra, isa.OR: alu.OpOr,
			isa.AND: alu.OpAnd,
		}
		r, _ := c.execALU(ops[i.Op], rs1, rs2)
		c.X[i.Rd] = r

	case isa.MUL:
		c.X[i.Rd] = rs1 * rs2
	case isa.MULH:
		c.X[i.Rd] = uint32(uint64(int64(int32(rs1))*int64(int32(rs2))) >> 32)
	case isa.MULHSU:
		c.X[i.Rd] = uint32(uint64(int64(int32(rs1))*int64(rs2)) >> 32)
	case isa.MULHU:
		c.X[i.Rd] = uint32(uint64(rs1) * uint64(rs2) >> 32)
	case isa.DIV:
		cycles += cycleDivExtra
		switch {
		case rs2 == 0:
			c.X[i.Rd] = 0xffffffff
		case rs1 == 0x80000000 && rs2 == 0xffffffff:
			c.X[i.Rd] = 0x80000000
		default:
			c.X[i.Rd] = uint32(int32(rs1) / int32(rs2))
		}
	case isa.DIVU:
		cycles += cycleDivExtra
		if rs2 == 0 {
			c.X[i.Rd] = 0xffffffff
		} else {
			c.X[i.Rd] = rs1 / rs2
		}
	case isa.REM:
		cycles += cycleDivExtra
		switch {
		case rs2 == 0:
			c.X[i.Rd] = rs1
		case rs1 == 0x80000000 && rs2 == 0xffffffff:
			c.X[i.Rd] = 0
		default:
			c.X[i.Rd] = uint32(int32(rs1) % int32(rs2))
		}
	case isa.REMU:
		cycles += cycleDivExtra
		if rs2 == 0 {
			c.X[i.Rd] = rs1
		} else {
			c.X[i.Rd] = rs1 % rs2
		}

	case isa.ECALL:
		c.Halt = HaltExit
		c.ExitCode = c.X[isa.A0]
	case isa.EBREAK:
		c.Halt = HaltBreak
	case isa.CSRRW, isa.CSRRS, isa.CSRRC:
		addr := uint32(i.Imm)
		old := c.csr(addr)
		switch i.Op {
		case isa.CSRRW:
			c.setCSR(addr, rs1)
		case isa.CSRRS:
			if i.Rs1 != isa.Zero {
				c.setCSR(addr, old|rs1)
			}
		case isa.CSRRC:
			if i.Rs1 != isa.Zero {
				c.setCSR(addr, old&^rs1)
			}
		}
		c.X[i.Rd] = old

	case isa.FLW:
		addr := rs1 + uint32(i.Imm)
		cycles += cycleLoadExtra
		v, ok := c.loadWord(addr)
		if !ok {
			return
		}
		c.F[i.Rd] = v
	case isa.FSW:
		addr := rs1 + uint32(i.Imm)
		if !c.storeWord(addr, c.F[i.Rs2]) {
			return
		}

	case isa.FADDS, isa.FSUBS, isa.FMULS, isa.FMINS, isa.FMAXS,
		isa.FSGNJS, isa.FSGNJNS, isa.FSGNJXS:
		ops := map[isa.Op]fpu.Op{
			isa.FADDS: fpu.OpFadd, isa.FSUBS: fpu.OpFsub, isa.FMULS: fpu.OpFmul,
			isa.FMINS: fpu.OpFmin, isa.FMAXS: fpu.OpFmax,
			isa.FSGNJS: fpu.OpFsgnj, isa.FSGNJNS: fpu.OpFsgnjn, isa.FSGNJXS: fpu.OpFsgnjx,
		}
		cycles += cycleFPUExtra
		r, f := c.execFPU(ops[i.Op], c.F[i.Rs1], c.F[i.Rs2])
		c.F[i.Rd] = r
		c.FFlags |= f
	case isa.FEQS, isa.FLTS, isa.FLES:
		ops := map[isa.Op]fpu.Op{isa.FEQS: fpu.OpFeq, isa.FLTS: fpu.OpFlt, isa.FLES: fpu.OpFle}
		cycles += cycleFPUExtra
		r, f := c.execFPU(ops[i.Op], c.F[i.Rs1], c.F[i.Rs2])
		c.X[i.Rd] = r
		c.FFlags |= f
	case isa.FCLASSS:
		cycles += cycleFPUExtra
		r, _ := c.execFPU(fpu.OpFclass, c.F[i.Rs1], 0)
		c.X[i.Rd] = r
	case isa.FMVXW:
		c.X[i.Rd] = c.F[i.Rs1]
	case isa.FMVWX:
		c.F[i.Rd] = rs1
	case isa.FDIVS:
		// The divider is a separate iterative unit in FPNew; always
		// behavioural here (documented substitution).
		cycles += cycleFDivExtra
		r, f := fdiv(c.F[i.Rs1], c.F[i.Rs2])
		c.F[i.Rd] = r
		c.FFlags |= f
	case isa.FCVTWS, isa.FCVTWUS:
		cycles += cycleFPUExtra
		r, f := fcvtToInt(c.F[i.Rs1], i.Op == isa.FCVTWUS)
		c.X[i.Rd] = r
		c.FFlags |= f
	case isa.FCVTSW, isa.FCVTSWU:
		cycles += cycleFPUExtra
		r, f := fcvtFromInt(rs1, i.Op == isa.FCVTSWU)
		c.F[i.Rd] = r
		c.FFlags |= f

	default:
		c.fault("unimplemented op %v at %#x", i.Op, pc)
		return
	}

	if c.Halt == Running || c.Halt == HaltExit || c.Halt == HaltBreak {
		c.Cycles += cycles
	}
	if c.Halt == Running {
		c.PC = next
	}
}

// Run executes until halt or the cycle limit.
func (c *CPU) Run(maxCycles uint64) HaltReason {
	for c.Halt == Running {
		if c.Cycles >= maxCycles {
			c.Halt = HaltLimit
			break
		}
		c.Step()
	}
	return c.Halt
}

// ctxCheckSteps is how many instructions RunCtx retires between context
// polls. A select on ctx.Done() costs ~tens of ns; amortized over 4096
// steps it is invisible even for behavioural-speed emulation, while
// keeping cancellation latency well under a millisecond of wall time.
const ctxCheckSteps = 4096

// RunCtx is Run with cooperative cancellation: the context is polled
// every ctxCheckSteps retired instructions, and a cancelled context halts
// the CPU with HaltInterrupted. Long campaign runs (and the suite-replay
// experiments) go through here so a wall-clock deadline can stop an
// emulation that is deep inside a hung or runaway program. An
// interrupted CPU is resumable: calling RunCtx again (with a live
// context) continues from the interrupted state.
func (c *CPU) RunCtx(ctx context.Context, maxCycles uint64) HaltReason {
	if c.Halt == HaltInterrupted {
		c.Halt = Running
	}
	if ctx.Done() == nil {
		return c.Run(maxCycles)
	}
	for c.Halt == Running {
		select {
		case <-ctx.Done():
			c.Halt = HaltInterrupted
			return c.Halt
		default:
		}
		for i := 0; i < ctxCheckSteps && c.Halt == Running; i++ {
			if c.Cycles >= maxCycles {
				c.Halt = HaltLimit
				return c.Halt
			}
			c.Step()
		}
	}
	return c.Halt
}
