package cpu

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/fpu"
)

func TestFdivAgainstGo(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for i := 0; i < 100000; i++ {
		a, b := rng.Uint32(), rng.Uint32()
		got, _ := fdiv(a, b)
		r := math.Float32frombits(a) / math.Float32frombits(b)
		want := math.Float32bits(r)
		if want&0x7fffffff > 0x7f800000 {
			want = fpu.QNaN
		}
		if got != want {
			t.Fatalf("fdiv(%08x, %08x) = %08x, want %08x", a, b, got, want)
		}
	}
}

func TestFdivFlags(t *testing.T) {
	// 1/0: divide-by-zero.
	if _, f := fdiv(0x3f800000, 0); f&fpu.FlagDZ == 0 {
		t.Error("1/0 should raise DZ")
	}
	// 0/0: invalid.
	if r, f := fdiv(0, 0); r != fpu.QNaN || f&fpu.FlagNV == 0 {
		t.Error("0/0 should be NaN with NV")
	}
	// inf/inf: invalid.
	if _, f := fdiv(0x7f800000, 0x7f800000); f&fpu.FlagNV == 0 {
		t.Error("inf/inf should raise NV")
	}
	// 1/3: inexact.
	if _, f := fdiv(0x3f800000, 0x40400000); f&fpu.FlagNX == 0 {
		t.Error("1/3 should be inexact")
	}
	// 1/2: exact.
	if _, f := fdiv(0x3f800000, 0x40000000); f&fpu.FlagNX != 0 {
		t.Error("1/2 should be exact")
	}
}

func TestFcvtToIntSemantics(t *testing.T) {
	cases := []struct {
		bits     uint32
		unsigned bool
		want     uint32
		nv       bool
	}{
		{math.Float32bits(7.5), false, 8, false}, // RNE
		{math.Float32bits(6.5), false, 6, false}, // ties to even
		{math.Float32bits(-7.5), false, 0xfffffff8, false},
		{math.Float32bits(-1), true, 0, true}, // negative to unsigned
		{0x7fc00000, false, 0x7fffffff, true}, // NaN
		{0x7f800000, false, 0x7fffffff, true}, // +inf clamps
		{0xff800000, false, 0x80000000, true}, // -inf clamps
		{math.Float32bits(3e9), false, 0x7fffffff, true},
		{math.Float32bits(3e9), true, 3000000000, false},
	}
	for _, c := range cases {
		got, f := fcvtToInt(c.bits, c.unsigned)
		if got != c.want {
			t.Errorf("fcvt(%08x,u=%v) = %d, want %d", c.bits, c.unsigned, got, c.want)
		}
		if (f&fpu.FlagNV != 0) != c.nv {
			t.Errorf("fcvt(%08x,u=%v) NV = %v, want %v", c.bits, c.unsigned, f&fpu.FlagNV != 0, c.nv)
		}
	}
}

func TestFcvtFromIntAgainstGo(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	for i := 0; i < 100000; i++ {
		v := rng.Uint32()
		got, _ := fcvtFromInt(v, true)
		if got != math.Float32bits(float32(v)) {
			t.Fatalf("fcvt.s.wu(%d) = %08x", v, got)
		}
		got, _ = fcvtFromInt(v, false)
		if got != math.Float32bits(float32(int32(v))) {
			t.Fatalf("fcvt.s.w(%d) = %08x", int32(v), got)
		}
	}
	// Exactness flag: 2^24+1 is inexact, 2^24 exact.
	if _, f := fcvtFromInt(1<<24+1, true); f&fpu.FlagNX == 0 {
		t.Error("2^24+1 conversion should be inexact")
	}
	if _, f := fcvtFromInt(1<<24, true); f&fpu.FlagNX != 0 {
		t.Error("2^24 conversion should be exact")
	}
}
