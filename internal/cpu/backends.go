package cpu

import (
	"repro/internal/alu"
	"repro/internal/fpu"
	"repro/internal/module"
	"repro/internal/netlist"
)

// NetlistALU executes ALU operations on a gate-level netlist through the
// module handshake — either the healthy synthesized unit or a failing
// netlist produced by failure-model instrumentation.
type NetlistALU struct {
	d *module.Driver
}

// NewNetlistALU wires the given netlist (sharing m's port protocol) as
// the CPU's ALU.
func NewNetlistALU(m *module.Module, nl *netlist.Netlist) *NetlistALU {
	return &NetlistALU{d: module.NewDriverOn(m, nl)}
}

// ExecALU implements ALUBackend.
func (n *NetlistALU) ExecALU(op alu.Op, a, b uint32) (uint32, uint32, bool) {
	return n.d.Exec(uint32(op), a, b)
}

// NetlistFPU executes FPU operations on a gate-level netlist.
type NetlistFPU struct {
	d *module.Driver
}

// NewNetlistFPU wires the given netlist as the CPU's FPU.
func NewNetlistFPU(m *module.Module, nl *netlist.Netlist) *NetlistFPU {
	return &NetlistFPU{d: module.NewDriverOn(m, nl)}
}

// ExecFPU implements FPUBackend.
func (n *NetlistFPU) ExecFPU(op fpu.Op, a, b uint32) (uint32, uint32, bool) {
	return n.d.Exec(uint32(op), a, b)
}

// OpRecord is one execution-unit operation observed during a workload
// run; recorded traces are replayed through the gate-level module during
// Signal Probability Simulation.
type OpRecord struct {
	Op   uint32
	A, B uint32
}

// RecordingALU wraps a backend (or the golden model when inner is nil)
// and records every operation.
type RecordingALU struct {
	Inner ALUBackend
	Trace []OpRecord
}

// ExecALU implements ALUBackend.
func (r *RecordingALU) ExecALU(op alu.Op, a, b uint32) (uint32, uint32, bool) {
	r.Trace = append(r.Trace, OpRecord{uint32(op), a, b})
	if r.Inner == nil {
		return alu.Eval(op, a, b), alu.Flags(a, b), true
	}
	return r.Inner.ExecALU(op, a, b)
}

// RecordingFPU wraps an FPU backend and records every operation.
type RecordingFPU struct {
	Inner FPUBackend
	Trace []OpRecord
}

// ExecFPU implements FPUBackend.
func (r *RecordingFPU) ExecFPU(op fpu.Op, a, b uint32) (uint32, uint32, bool) {
	r.Trace = append(r.Trace, OpRecord{uint32(op), a, b})
	if r.Inner == nil {
		res, f := fpu.Eval(op, a, b)
		return res, f, true
	}
	return r.Inner.ExecFPU(op, a, b)
}
