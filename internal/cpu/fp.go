package cpu

import (
	"math"

	"repro/internal/fpu"
)

// fdiv implements FDIV.S behaviourally (the divider is a separate
// iterative unit outside the analyzed FPU datapath). Go's float32
// division is correctly rounded; flags follow RISC-V semantics.
func fdiv(a, b uint32) (uint32, uint32) {
	fa := math.Float32frombits(a)
	fb := math.Float32frombits(b)
	var flags uint32
	isNaN := func(x uint32) bool { return x&0x7fffffff > 0x7f800000 }
	isSNaN := func(x uint32) bool { return isNaN(x) && x&0x400000 == 0 }
	isInf := func(x uint32) bool { return x&0x7fffffff == 0x7f800000 }
	isZero := func(x uint32) bool { return x&0x7fffffff == 0 }
	if isSNaN(a) || isSNaN(b) {
		flags |= fpu.FlagNV
	}
	switch {
	case isNaN(a) || isNaN(b):
		return fpu.QNaN, flags
	case isZero(a) && isZero(b), isInf(a) && isInf(b):
		return fpu.QNaN, flags | fpu.FlagNV
	case isZero(b):
		flags |= fpu.FlagDZ
	}
	r := fa / fb
	bits := math.Float32bits(r)
	if bits&0x7fffffff > 0x7f800000 {
		bits = fpu.QNaN
	}
	// Inexact detection: exact iff r*b == a with no rounding. A float64
	// check suffices for binary32 operands.
	if !isZero(b) && !isInf(a) && !isInf(b) {
		if float64(r)*float64(fb) != float64(fa) {
			flags |= fpu.FlagNX
		}
		if r != 0 && math.Abs(float64(r)) < math.Ldexp(1, -126) {
			flags |= fpu.FlagUF
		}
		if math.IsInf(float64(r), 0) {
			flags |= fpu.FlagOF | fpu.FlagNX
		}
	}
	return bits, flags
}

// fcvtToInt implements FCVT.W.S / FCVT.WU.S with RNE rounding and RISC-V
// clamping semantics.
func fcvtToInt(a uint32, unsigned bool) (uint32, uint32) {
	f := float64(math.Float32frombits(a))
	if math.IsNaN(f) {
		if unsigned {
			return 0xffffffff, fpu.FlagNV
		}
		return 0x7fffffff, fpu.FlagNV
	}
	r := math.RoundToEven(f)
	var flags uint32
	if r != f {
		flags = fpu.FlagNX
	}
	if unsigned {
		switch {
		case r < 0:
			return 0, fpu.FlagNV
		case r > float64(math.MaxUint32):
			return 0xffffffff, fpu.FlagNV
		}
		return uint32(r), flags
	}
	switch {
	case r < math.MinInt32:
		return 0x80000000, fpu.FlagNV
	case r > math.MaxInt32:
		return 0x7fffffff, fpu.FlagNV
	}
	return uint32(int32(r)), flags
}

// fcvtFromInt implements FCVT.S.W / FCVT.S.WU.
func fcvtFromInt(v uint32, unsigned bool) (uint32, uint32) {
	var f float32
	var exact bool
	if unsigned {
		f = float32(v) // Go converts with RNE
		exact = float64(f) == float64(v)
	} else {
		iv := int32(v)
		f = float32(iv)
		exact = float64(f) == float64(iv)
	}
	var flags uint32
	if !exact {
		flags = fpu.FlagNX
	}
	return math.Float32bits(f), flags
}
