package cpu

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"repro/internal/alu"
	"repro/internal/fault"
	"repro/internal/fpu"
	"repro/internal/isa"
	"repro/internal/module"
	"repro/internal/sta"
)

const memSize = 1 << 20

func mustAsm(t testing.TB, a *isa.Asm) *isa.Image {
	t.Helper()
	img, err := a.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	return img
}

func runImage(t *testing.T, img *isa.Image) *CPU {
	t.Helper()
	c := New(memSize)
	c.Load(img)
	if got := c.Run(50_000_000); got != HaltExit {
		t.Fatalf("halt = %v (%s), pc=%#x", got, c.FaultMsg, c.PC)
	}
	return c
}

func TestArithmeticLoop(t *testing.T) {
	// Sum 1..100 = 5050.
	a := isa.NewAsm()
	a.Li(isa.T0, 0) // sum
	a.Li(isa.T1, 1) // i
	a.Li(isa.T2, 101)
	a.Label("loop")
	a.Add(isa.T0, isa.T0, isa.T1)
	a.Addi(isa.T1, isa.T1, 1)
	a.Bne(isa.T1, isa.T2, "loop")
	a.Mv(isa.A0, isa.T0)
	a.Ecall()
	c := runImage(t, mustAsm(t, a))
	if c.ExitCode != 5050 {
		t.Errorf("exit = %d, want 5050", c.ExitCode)
	}
}

func TestMemoryAndCalls(t *testing.T) {
	// Fibonacci via a recursive call using the stack.
	a := isa.NewAsm()
	a.Li(isa.A0, 10)
	a.Call("fib")
	a.Ecall()
	a.Label("fib")
	a.Li(isa.T0, 2)
	a.Blt(isa.A0, isa.T0, "base")
	a.Addi(isa.SP, isa.SP, -12)
	a.Sw(isa.RA, 0, isa.SP)
	a.Sw(isa.A0, 4, isa.SP)
	a.Addi(isa.A0, isa.A0, -1)
	a.Call("fib")
	a.Sw(isa.A0, 8, isa.SP) // fib(n-1)
	a.Lw(isa.A0, 4, isa.SP)
	a.Addi(isa.A0, isa.A0, -2)
	a.Call("fib")
	a.Lw(isa.T1, 8, isa.SP)
	a.Add(isa.A0, isa.A0, isa.T1)
	a.Lw(isa.RA, 0, isa.SP)
	a.Addi(isa.SP, isa.SP, 12)
	a.Ret()
	a.Label("base")
	a.Ret()
	c := runImage(t, mustAsm(t, a))
	if c.ExitCode != 55 {
		t.Errorf("fib(10) = %d, want 55", c.ExitCode)
	}
}

func TestLoadStoreVariants(t *testing.T) {
	a := isa.NewAsm()
	a.Word("buf", 0)
	a.La(isa.T0, "buf")
	a.Li(isa.T1, 0x80)
	a.Sb(isa.T1, 0, isa.T0)
	a.Lb(isa.T2, 0, isa.T0)  // sign-extended: 0xffffff80
	a.Lbu(isa.T3, 0, isa.T0) // 0x80
	a.Li(isa.T1, 0x8000)
	a.Sh(isa.T1, 0, isa.T0)
	a.Lh(isa.T4, 0, isa.T0)  // 0xffff8000
	a.Lhu(isa.T5, 0, isa.T0) // 0x8000
	a.Add(isa.A0, isa.T2, isa.T3)
	a.Add(isa.A0, isa.A0, isa.T4)
	a.Add(isa.A0, isa.A0, isa.T5)
	a.Ecall()
	c := runImage(t, mustAsm(t, a))
	var want uint32
	for _, v := range []uint32{0xffffff80, 0x80, 0xffff8000, 0x8000} {
		want += v
	}
	if c.ExitCode != want {
		t.Errorf("exit = %#x, want %#x", c.ExitCode, want)
	}
}

func TestMulDiv(t *testing.T) {
	a := isa.NewAsm()
	a.Li(isa.T0, 0xfffffff9) // -7
	a.Li(isa.T1, 3)
	a.Mul(isa.T2, isa.T0, isa.T1)  // -21
	a.Div(isa.T3, isa.T2, isa.T1)  // -7
	a.Rem(isa.T4, isa.T0, isa.T1)  // -1
	a.Divu(isa.T5, isa.T0, isa.T1) // huge
	a.Li(isa.T1, 0)
	a.Div(isa.T6, isa.T0, isa.T1) // div by zero: -1
	a.Add(isa.A0, isa.T3, isa.T4)
	a.Add(isa.A0, isa.A0, isa.T6)
	a.Ecall()
	c := runImage(t, mustAsm(t, a))
	var want uint32
	for _, v := range []uint32{0xfffffff9, 0xffffffff, 0xffffffff} {
		want += v
	}
	if c.ExitCode != want {
		t.Errorf("exit = %#x, want %#x", c.ExitCode, want)
	}
}

func TestMulhVariants(t *testing.T) {
	a := isa.NewAsm()
	a.Li(isa.T0, 0x80000000)
	a.Li(isa.T1, 2)
	a.Mulh(isa.T2, isa.T0, isa.T1)   // (-2^31 * 2) >> 32 = -1
	a.Mulhu(isa.T3, isa.T0, isa.T1)  // (2^31 * 2) >> 32 = 1
	a.Mulhsu(isa.T4, isa.T0, isa.T1) // signed * unsigned = -1
	a.Add(isa.A0, isa.T2, isa.T3)
	a.Add(isa.A0, isa.A0, isa.T4)
	a.Ecall()
	c := runImage(t, mustAsm(t, a))
	if c.ExitCode != 0xffffffff {
		t.Errorf("exit = %#x", c.ExitCode)
	}
}

func TestFloatProgram(t *testing.T) {
	// (1.5 + 2.25) * 2 = 7.5, converted to int with RNE -> 8.
	a := isa.NewAsm()
	a.FliBits(1, math.Float32bits(1.5), isa.T0)
	a.FliBits(2, math.Float32bits(2.25), isa.T0)
	a.FliBits(3, math.Float32bits(2.0), isa.T0)
	a.Fadd(4, 1, 2)
	a.Fmul(5, 4, 3)
	a.FcvtWS(isa.A0, 5)
	a.Ecall()
	c := runImage(t, mustAsm(t, a))
	if c.ExitCode != 8 {
		t.Errorf("exit = %d, want 8", c.ExitCode)
	}
	if c.FFlags&fpu.FlagNX == 0 {
		t.Error("7.5 -> 8 conversion must raise NX")
	}
}

func TestFflagsStickyAndCSR(t *testing.T) {
	a := isa.NewAsm()
	// 1 + 2^-24 is inexact; fflags must accumulate and be readable.
	a.FliBits(1, 0x3f800000, isa.T0)
	a.FliBits(2, 0x33800000, isa.T0)
	a.Fadd(3, 1, 2)
	a.Csrrs(isa.A0, isa.CSRFflags, isa.Zero)
	a.Ecall()
	c := runImage(t, mustAsm(t, a))
	if c.ExitCode&uint32(fpu.FlagNX) == 0 {
		t.Errorf("fflags = %#x, want NX set", c.ExitCode)
	}
}

func TestEbreakHalts(t *testing.T) {
	a := isa.NewAsm()
	a.Ebreak()
	img := mustAsm(t, a)
	c := New(memSize)
	c.Load(img)
	if got := c.Run(1000); got != HaltBreak {
		t.Fatalf("halt = %v, want break", got)
	}
}

func TestDecodeFaultHalts(t *testing.T) {
	c := New(memSize)
	img := mustAsm(t, isa.NewAsm())
	c.Load(img) // empty program: PC reads zeroed memory
	if got := c.Run(1000); got != HaltFault {
		t.Fatalf("halt = %v, want fault", got)
	}
}

func TestCycleLimit(t *testing.T) {
	a := isa.NewAsm()
	a.Label("spin")
	a.J("spin")
	c := New(memSize)
	c.Load(mustAsm(t, a))
	if got := c.Run(100); got != HaltLimit {
		t.Fatalf("halt = %v, want limit", got)
	}
}

// randomALUProgram builds a program chaining random ALU operations and
// returning a checksum.
func randomALUProgram(t testing.TB, seed int64, n int) (*isa.Image, uint32) {
	rng := rand.New(rand.NewSource(seed))
	a := isa.NewAsm()
	ops := []func(rd, rs1, rs2 isa.Reg){
		a.Add, a.Sub, a.Sll, a.Slt, a.Sltu, a.Xor, a.Srl, a.Sra, a.Or, a.And,
	}
	goldenOps := []alu.Op{alu.OpAdd, alu.OpSub, alu.OpSll, alu.OpSlt, alu.OpSltu,
		alu.OpXor, alu.OpSrl, alu.OpSra, alu.OpOr, alu.OpAnd}
	x5, x6 := rng.Uint32(), rng.Uint32()
	a.Li(isa.T0, x5)
	a.Li(isa.T1, x6)
	sum := uint32(0)
	v5, v6 := x5, x6
	for i := 0; i < n; i++ {
		k := rng.Intn(len(ops))
		ops[k](isa.T2, isa.T0, isa.T1)
		res := alu.Eval(goldenOps[k], v5, v6)
		a.Add(isa.T0, isa.T0, isa.T2)
		v5 += res
		a.Xor(isa.T1, isa.T1, isa.T0)
		v6 ^= v5
		sum = v6
	}
	a.Mv(isa.A0, isa.T1)
	a.Ecall()
	return mustAsm(t, a), sum
}

func TestNetlistALUMatchesBehavioral(t *testing.T) {
	img, want := randomALUProgram(t, 9, 60)
	m := alu.Build()
	c := New(memSize)
	c.ALU = NewNetlistALU(m, m.Netlist)
	c.Load(img)
	if got := c.Run(10_000_000); got != HaltExit {
		t.Fatalf("halt = %v (%s)", got, c.FaultMsg)
	}
	if c.ExitCode != want {
		t.Errorf("netlist-backed exit = %#x, want %#x", c.ExitCode, want)
	}
}

func TestNetlistFPUMatchesBehavioral(t *testing.T) {
	m := fpu.Build()
	a := isa.NewAsm()
	a.FliBits(1, math.Float32bits(3.25), isa.T0)
	a.FliBits(2, math.Float32bits(-1.75), isa.T0)
	a.Fadd(3, 1, 2) // 1.5
	a.Fmul(4, 3, 3) // 2.25
	a.Fsub(5, 4, 1) // -1.0
	a.Fmax(6, 5, 3) // 1.5
	a.Feq(isa.T1, 6, 3)
	a.FmvXW(isa.T2, 4)
	a.Add(isa.A0, isa.T1, isa.T2)
	a.Ecall()
	img := mustAsm(t, a)

	ref := New(memSize)
	ref.Load(img)
	ref.Run(1_000_000)

	c := New(memSize)
	c.FPU = NewNetlistFPU(m, m.Netlist)
	c.Load(img)
	if got := c.Run(10_000_000); got != HaltExit {
		t.Fatalf("halt = %v (%s)", got, c.FaultMsg)
	}
	if c.ExitCode != ref.ExitCode || c.FFlags != ref.FFlags {
		t.Errorf("netlist FPU: exit %#x/%#x vs behavioral %#x/%#x",
			c.ExitCode, c.FFlags, ref.ExitCode, ref.FFlags)
	}
}

func TestFailingNetlistCorruptsProgram(t *testing.T) {
	// Run the random ALU program on a failing ALU whose fault endpoint
	// is a result register: the checksum must differ (or the CPU stall).
	img, want := randomALUProgram(t, 10, 60)
	m := alu.Build()
	out, _ := m.Netlist.FindOutput(module.PortResult)
	end := m.Netlist.Driver(out.Bits[0])
	in, _ := m.Netlist.FindInput(module.PortA)
	var start = end
	for _, cid := range m.Netlist.Readers()[in.Bits[0]] {
		if m.Netlist.Cells[cid].Kind.IsSequential() {
			start = cid
		}
	}
	failing := fault.FailingNetlist(m.Netlist, fault.Spec{
		Type: sta.Setup, Start: start, End: end, C: fault.C1,
	})
	c := New(memSize)
	c.ALU = NewNetlistALU(m, failing)
	c.Load(img)
	halt := c.Run(10_000_000)
	if halt == HaltExit && c.ExitCode == want {
		t.Error("failing netlist produced the correct checksum")
	}
}

func TestRecordingBackends(t *testing.T) {
	img, _ := randomALUProgram(t, 11, 20)
	rec := &RecordingALU{}
	c := New(memSize)
	c.ALU = rec
	c.Load(img)
	c.Run(1_000_000)
	if len(rec.Trace) == 0 {
		t.Fatal("no ALU operations recorded")
	}
	// Every recorded op is a valid ALU op.
	for _, r := range rec.Trace {
		if !alu.Op(r.Op).Valid() {
			t.Fatalf("recorded invalid op %d", r.Op)
		}
	}
}

func TestInstHook(t *testing.T) {
	a := isa.NewAsm()
	a.Li(isa.A0, 0)
	a.Ecall()
	c := New(memSize)
	count := 0
	c.InstHook = func(pc uint32, inst isa.Inst) { count++ }
	c.Load(mustAsm(t, a))
	c.Run(1000)
	if count != 2 {
		t.Errorf("hook saw %d instructions, want 2", count)
	}
}

func TestCyclesAccumulate(t *testing.T) {
	a := isa.NewAsm()
	a.Li(isa.T0, 5)
	a.Label("l")
	a.Addi(isa.T0, isa.T0, -1)
	a.Bnez(isa.T0, "l")
	a.Ecall()
	c := New(memSize)
	c.Load(mustAsm(t, a))
	c.Run(10_000)
	if c.Cycles <= c.Instret {
		t.Errorf("cycles %d should exceed instret %d (taken branches)", c.Cycles, c.Instret)
	}
}

// --- RunCtx and halt-classification regressions ---------------------

func TestRunCtxCancelledMidRun(t *testing.T) {
	a := isa.NewAsm()
	a.Label("spin")
	a.J("spin")
	c := New(memSize)
	c.Load(mustAsm(t, a))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if got := c.RunCtx(ctx, 1<<40); got != HaltInterrupted {
		t.Fatalf("halt = %v, want interrupted", got)
	}
	// The architectural state stays valid: resuming with a fresh
	// context continues the run.
	if got := c.RunCtx(context.Background(), 100); got != HaltLimit {
		t.Fatalf("resumed halt = %v, want limit", got)
	}
}

func TestRunCtxBackgroundMatchesRun(t *testing.T) {
	// context.Background has a nil Done channel: RunCtx must take the
	// plain Run fast path and behave identically.
	prog := func() *isa.Image {
		a := isa.NewAsm()
		a.Li(isa.T0, 100)
		a.Label("l")
		a.Addi(isa.T0, isa.T0, -1)
		a.Bnez(isa.T0, "l")
		a.Mv(isa.A0, isa.T0)
		a.Ecall()
		return mustAsm(t, a)
	}
	c1, c2 := New(memSize), New(memSize)
	c1.Load(prog())
	c2.Load(prog())
	h1 := c1.Run(10_000)
	h2 := c2.RunCtx(context.Background(), 10_000)
	if h1 != h2 || c1.Cycles != c2.Cycles || c1.ExitCode != c2.ExitCode {
		t.Fatalf("Run (%v, %d cycles) != RunCtx (%v, %d cycles)", h1, c1.Cycles, h2, c2.Cycles)
	}
}

func TestRunCtxHonoursCycleLimit(t *testing.T) {
	a := isa.NewAsm()
	a.Label("spin")
	a.J("spin")
	c := New(memSize)
	c.Load(mustAsm(t, a))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if got := c.RunCtx(ctx, 1000); got != HaltLimit {
		t.Fatalf("halt = %v, want limit", got)
	}
}

func TestHaltFaultMisalignedStoreAtMemoryTop(t *testing.T) {
	// A misaligned word store straddling the top of memory must fault,
	// not wrap or partially commit.
	a := isa.NewAsm()
	a.Li(isa.T0, memSize-2)
	a.Sw(isa.T1, 0, isa.T0)
	c := New(memSize)
	c.Load(mustAsm(t, a))
	if got := c.Run(1000); got != HaltFault {
		t.Fatalf("halt = %v (%s), want fault", got, c.FaultMsg)
	}
}

func TestHaltFaultOutOfBoundsLoad(t *testing.T) {
	a := isa.NewAsm()
	a.Li(isa.T0, memSize)
	a.Lw(isa.T1, 0, isa.T0)
	c := New(memSize)
	c.Load(mustAsm(t, a))
	if got := c.Run(1000); got != HaltFault {
		t.Fatalf("halt = %v (%s), want fault", got, c.FaultMsg)
	}
}

// hungALU is a backend whose handshake never completes (ok=false), like
// a gate-level unit that never raises out_valid within the stall limit.
type hungALU struct{}

func (hungALU) ExecALU(op alu.Op, a, b uint32) (uint32, uint32, bool) { return 0, 0, false }

type hungFPU struct{}

func (hungFPU) ExecFPU(op fpu.Op, a, b uint32) (uint32, uint32, bool) { return 0, 0, false }

func TestHaltStalledOnHungALUHandshake(t *testing.T) {
	a := isa.NewAsm()
	a.Li(isa.T0, 1)
	a.Add(isa.T1, isa.T0, isa.T0)
	a.Ecall()
	c := New(memSize)
	c.ALU = hungALU{}
	c.Load(mustAsm(t, a))
	if got := c.Run(1000); got != HaltStalled {
		t.Fatalf("halt = %v, want stalled", got)
	}
}

func TestHaltStalledOnHungFPUHandshake(t *testing.T) {
	a := isa.NewAsm()
	a.FliBits(1, math.Float32bits(1.5), isa.T0)
	a.Fadd(2, 1, 1)
	a.Ecall()
	c := New(memSize)
	c.FPU = hungFPU{}
	c.Load(mustAsm(t, a))
	if got := c.Run(1000); got != HaltStalled {
		t.Fatalf("halt = %v, want stalled", got)
	}
}
