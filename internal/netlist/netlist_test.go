package netlist

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/cell"
)

// buildDemoAdder replicates the Figure 3 adder locally (the demo package
// depends on netlist, so tests here cannot import it).
func buildDemoAdder(t *testing.T) *Netlist {
	t.Helper()
	b := NewBuilder("adder")
	clk := b.Clock("clk")
	a := b.InputBus("a", 2)
	bb := b.InputBus("b", 2)
	aq0 := b.AddDFFNamed("DFF$1", a[0], clk, false)
	bq0 := b.AddDFFNamed("DFF$2", bb[0], clk, false)
	aq1 := b.AddDFFNamed("DFF$3", a[1], clk, false)
	bq1 := b.AddDFFNamed("DFF$4", bb[1], clk, false)
	s0 := b.AddNamed(cell.XOR2, "XOR$5", aq0, bq0)
	c0 := b.AddNamed(cell.AND2, "AND$6", aq0, bq0)
	x1 := b.AddNamed(cell.XOR2, "XOR$7", aq1, bq1)
	s1 := b.AddNamed(cell.XOR2, "XOR$8", x1, c0)
	o0 := b.AddDFFNamed("DFF$9", s0, clk, false)
	o1 := b.AddDFFNamed("DFF$10", s1, clk, false)
	b.OutputBus("o", Bus{o0, o1})
	nl, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return nl
}

func TestBuildAdder(t *testing.T) {
	nl := buildDemoAdder(t)
	st := nl.Stats()
	if st.DFFs != 6 || st.Comb != 4 {
		t.Fatalf("stats = %+v, want 6 DFFs and 4 comb cells", st)
	}
	if len(nl.Topo()) != 4 {
		t.Fatalf("topo has %d cells, want 4", len(nl.Topo()))
	}
	// XOR$8 must come after XOR$7 and AND$6 in topological order.
	pos := map[string]int{}
	for i, cid := range nl.Topo() {
		pos[nl.Cells[cid].Name] = i
	}
	if pos["XOR$8"] < pos["XOR$7"] || pos["XOR$8"] < pos["AND$6"] {
		t.Errorf("topo order wrong: %v", pos)
	}
}

func TestDriverAndNames(t *testing.T) {
	nl := buildDemoAdder(t)
	in, ok := nl.FindInput("a")
	if !ok || len(in.Bits) != 2 {
		t.Fatal("input a missing")
	}
	if nl.Driver(in.Bits[0]) != NoCell {
		t.Error("primary input has a driver")
	}
	out, ok := nl.FindOutput("o")
	if !ok {
		t.Fatal("output o missing")
	}
	d := nl.Driver(out.Bits[1])
	if d == NoCell || nl.Cells[d].Name != "DFF$10" {
		t.Errorf("o[1] driver = %v, want DFF$10", d)
	}
	if got := nl.NetName(out.Bits[0]); got != "o[0]" {
		t.Errorf("NetName(o[0]) = %q", got)
	}
}

func TestMultipleDriversRejected(t *testing.T) {
	b := NewBuilder("bad")
	x := b.Input("x")
	y := b.Add(cell.INV, x)
	b.cells = append(b.cells, Cell{Kind: cell.BUF, Name: "dup", In: []NetID{x}, Clk: NoNet, Out: y})
	b.Output("y", y)
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "multiply driven") {
		t.Fatalf("want multiply-driven error, got %v", err)
	}
}

func TestUndrivenNetRejected(t *testing.T) {
	b := NewBuilder("bad")
	x := b.Input("x")
	dangling := b.Net()
	y := b.Add(cell.AND2, x, dangling)
	b.Output("y", y)
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "never driven") {
		t.Fatalf("want undriven error, got %v", err)
	}
}

func TestCombinationalLoopRejected(t *testing.T) {
	b := NewBuilder("loop")
	x := b.Input("x")
	fb := b.Net()
	y := b.Add(cell.AND2, x, fb)
	z := b.Add(cell.OR2, y, x)
	// Close the loop by forcing cell z's output to feed the AND input.
	b.cells[0].In[1] = z
	_ = fb
	b.Output("y", y)
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "cycle") {
		// fb is now undriven; rewire cleanly instead.
		t.Fatalf("want cycle error, got %v", err)
	}
}

func TestWrongArityRejected(t *testing.T) {
	b := NewBuilder("bad")
	x := b.Input("x")
	b.Add(cell.AND2, x) // one input to a 2-input gate
	if _, err := b.Build(); err == nil {
		t.Fatal("want arity error")
	}
}

// TestOversizedFanInRejected proves Build rejects cells whose fan-in
// exceeds the evaluation engine's cell.MaxArity cap. The old simulator
// silently truncated such cells at its settle buffer (`var inBuf
// [3]bool`); now they cannot reach any evaluator at all. AddRaw is the
// only constructor that skips per-kind arity checks, so it is the route
// an oversized cell could have slipped through.
func TestOversizedFanInRejected(t *testing.T) {
	b := NewBuilder("bad")
	ins := make([]NetID, cell.MaxArity+1)
	for i := range ins {
		ins[i] = b.Input(fmt.Sprintf("x%d", i))
	}
	y := b.Net()
	b.AddRaw(cell.AND2, "wide", ins, NoNet, y, false)
	b.Output("y", y)
	_, err := b.Build()
	if err == nil || !strings.Contains(err.Error(), "at most") {
		t.Fatalf("want engine-arity error, got %v", err)
	}
	if !strings.Contains(err.Error(), "wide") {
		t.Errorf("error should name the offending cell: %v", err)
	}
}

func TestFanoutCone(t *testing.T) {
	nl := buildDemoAdder(t)
	// Cone from XOR$7's output: XOR$8 then DFF$10.
	var x7 CellID = -1
	for i, c := range nl.Cells {
		if c.Name == "XOR$7" {
			x7 = CellID(i)
		}
	}
	cone := nl.FanoutCone([]NetID{nl.Cells[x7].Out})
	names := map[string]bool{}
	for _, cid := range cone {
		names[nl.Cells[cid].Name] = true
	}
	if !names["XOR$8"] || !names["DFF$10"] || len(names) != 2 {
		t.Errorf("cone = %v, want {XOR$8, DFF$10}", names)
	}
}

func TestFanoutConeStopsAtClockPins(t *testing.T) {
	b := NewBuilder("clkcone")
	clk := b.Clock("clk")
	en := b.Input("en")
	g := b.Add(cell.CLKGATE, clk, en)
	d := b.Input("d")
	q := b.AddDFF(d, g, false)
	b.Output("q", q)
	nl, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	// The cone from the gated clock net must not include the DFF: it is
	// reached only through its clock pin.
	cone := nl.FanoutCone([]NetID{g})
	for _, cid := range cone {
		if nl.Cells[cid].Kind == cell.DFF {
			t.Error("cone followed a clock pin into a DFF")
		}
	}
	// But the cone from en includes the clock gate itself.
	cone = nl.FanoutCone([]NetID{en})
	found := false
	for _, cid := range cone {
		if nl.Cells[cid].Kind == cell.CLKGATE {
			found = true
		}
	}
	if !found {
		t.Error("cone from EN missed the clock gate")
	}
}

func TestCloneIsIndependent(t *testing.T) {
	nl := buildDemoAdder(t)
	cp := nl.Clone()
	cp.Cells[0].Name = "mutated"
	cp.Cells[4].In[0] = 0
	if nl.Cells[0].Name == "mutated" {
		t.Error("clone shares cell slice")
	}
	if nl.Cells[4].In[0] == 0 && cp.Cells[4].In[0] == 0 && &nl.Cells[4].In[0] == &cp.Cells[4].In[0] {
		t.Error("clone shares input slices")
	}
}

func TestNewBuilderFromPreservesIDs(t *testing.T) {
	nl := buildDemoAdder(t)
	b := NewBuilderFrom(nl)
	// Add an inverter on o[0]'s driver output, re-expose outputs.
	out, _ := nl.FindOutput("o")
	inv := b.Add(cell.INV, out.Bits[0])
	b.OutputBus("o", Bus{out.Bits[0], out.Bits[1]})
	b.Output("o0_inv", inv)
	nl2, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if nl2.NumNets <= nl.NumNets {
		t.Error("extension did not allocate new nets")
	}
	if len(nl2.Cells) != len(nl.Cells)+1 {
		t.Errorf("cells = %d, want %d", len(nl2.Cells), len(nl.Cells)+1)
	}
	// Original cells keep their IDs and names.
	for i := range nl.Cells {
		if nl2.Cells[i].Name != nl.Cells[i].Name {
			t.Fatalf("cell %d renamed: %s vs %s", i, nl2.Cells[i].Name, nl.Cells[i].Name)
		}
	}
}

func TestVerilogExport(t *testing.T) {
	nl := buildDemoAdder(t)
	v := nl.Verilog()
	for _, want := range []string{"module adder", "input wire [1:0] a", "output wire [1:0] o", "dff", "endmodule"} {
		if !strings.Contains(v, want) {
			t.Errorf("Verilog output missing %q:\n%s", want, v)
		}
	}
}

func TestDOTExport(t *testing.T) {
	nl := buildDemoAdder(t)
	d := nl.DOT()
	if !strings.Contains(d, "digraph adder") || !strings.Contains(d, "XOR$8") {
		t.Error("DOT output malformed")
	}
}

func TestReaders(t *testing.T) {
	nl := buildDemoAdder(t)
	readers := nl.Readers()
	// aq0 (DFF$1 out) is read by XOR$5 and AND$6.
	var dff1 CellID
	for i, c := range nl.Cells {
		if c.Name == "DFF$1" {
			dff1 = CellID(i)
		}
	}
	if got := len(readers[nl.Cells[dff1].Out]); got != 2 {
		t.Errorf("aq0 has %d readers, want 2", got)
	}
	// The clock is read by all 6 DFFs.
	if got := len(readers[nl.ClockRoot]); got != 6 {
		t.Errorf("clk has %d readers, want 6", got)
	}
}
