package netlist

import (
	"bytes"
	"fmt"
	"io"
	"strings"
	"testing"

	"repro/internal/cell"
)

// gateZoo builds a netlist exercising every cell kind and both clock-cell
// comment markers.
func gateZoo(t *testing.T) *Netlist {
	t.Helper()
	b := NewBuilder("zoo")
	clk := b.Clock("clk")
	x := b.Input("x")
	y := b.Input("y")
	s := b.Input("s")
	cb := b.Add(cell.CLKBUF, clk)
	g := b.Add(cell.CLKGATE, cb, s)
	outs := Bus{
		b.Add(cell.AND2, x, y), b.Add(cell.OR2, x, y), b.Add(cell.XOR2, x, y),
		b.Add(cell.NAND2, x, y), b.Add(cell.NOR2, x, y), b.Add(cell.XNOR2, x, y),
		b.Add(cell.INV, x), b.Add(cell.BUF, y),
		b.Add(cell.MUX2, x, y, s),
		b.Add(cell.AOI21, x, y, s), b.Add(cell.OAI21, x, y, s),
		b.Add(cell.TIE0), b.Add(cell.TIE1),
		b.AddDFFNamed("st", x, g, true),
	}
	b.OutputBus("o", outs)
	return b.MustBuild()
}

// signature captures everything parse-order-sensitive about a netlist.
func signature(nl *Netlist) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s nets=%d clk=%d\n", nl.Name, nl.NumNets, nl.ClockRoot)
	for _, c := range nl.Cells {
		fmt.Fprintf(&sb, "%v %s in=%v clk=%d out=%d init=%v\n", c.Kind, c.Name, c.In, c.Clk, c.Out, c.Init)
	}
	for _, p := range nl.Inputs {
		fmt.Fprintf(&sb, "in %s %v\n", p.Name, p.Bits)
	}
	for _, p := range nl.Outputs {
		fmt.Fprintf(&sb, "out %s %v\n", p.Name, p.Bits)
	}
	return sb.String()
}

// TestParseDeterminism is the regression test for the old map-ranged
// operator matching: parse results and error messages must be stable
// across repeated runs (map iteration order used to make both flicker).
func TestParseDeterminism(t *testing.T) {
	src := gateZoo(t).Verilog()
	want := ""
	for i := 0; i < 50; i++ {
		nl, err := ParseVerilog(src)
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		sig := signature(nl)
		if i == 0 {
			want = sig
		} else if sig != want {
			t.Fatalf("run %d: parse result differs from run 0:\n%s\nvs\n%s", i, sig, want)
		}
	}

	bad := []string{
		"module x (a);\nassign n[0] = n[1] & n[2] & n[3];\nendmodule\n",
		"module x (a);\nassign n[0] = n[1] | n[2] ^ n[3];\nendmodule\n",
		"module x (a);\nassign n[0] = ~(n[1] @ n[2]);\nendmodule\n",
		"module x (a);\nassign n[0] = ~((n[1]&n[2])|x);\nendmodule\n",
		"module x (a);\nassign n[0] = n[1] ? wat : n[2];\nendmodule\n",
		"module x (a);\nassign n[0] = ~zzz;\nendmodule\n",
		"module x (a);\nwat;\nendmodule\n",
		"module x (a);\nassign wat = n[0];\nendmodule\n",
		"module x (a);\ninput wire [99999:0] a;\nendmodule\n",
	}
	for _, src := range bad {
		_, err := ParseVerilog(src)
		if err == nil {
			t.Errorf("accepted %q", src)
			continue
		}
		for i := 0; i < 20; i++ {
			_, err2 := ParseVerilog(src)
			if err2 == nil || err2.Error() != err.Error() {
				t.Fatalf("error message unstable for %q:\n%v\nvs\n%v", src, err, err2)
			}
		}
	}
}

// TestParseVerilogReader checks the streaming entry point against the
// string one, including under adversarially small reads.
func TestParseVerilogReader(t *testing.T) {
	nl := gateZoo(t)
	src := nl.Verilog()
	want := signature(mustParse(t, src))

	chunked := &chunkReader{data: []byte(src), chunk: 7}
	got, err := ParseVerilogReader(chunked)
	if err != nil {
		t.Fatalf("ParseVerilogReader: %v", err)
	}
	if signature(got) != want {
		t.Error("streaming parse differs from string parse")
	}
}

func mustParse(t *testing.T, src string) *Netlist {
	t.Helper()
	nl, err := ParseVerilog(src)
	if err != nil {
		t.Fatalf("ParseVerilog: %v", err)
	}
	return nl
}

type chunkReader struct {
	data  []byte
	chunk int
}

func (r *chunkReader) Read(p []byte) (int, error) {
	if len(r.data) == 0 {
		return 0, io.EOF
	}
	n := r.chunk
	if n > len(r.data) {
		n = len(r.data)
	}
	n = copy(p[:min(n, len(p))], r.data)
	r.data = r.data[n:]
	return n, nil
}

// TestWriteVerilogMatchesVerilog pins the streaming exporter to the
// string exporter byte for byte.
func TestWriteVerilogMatchesVerilog(t *testing.T) {
	nl := gateZoo(t)
	var buf bytes.Buffer
	if err := nl.WriteVerilog(&buf); err != nil {
		t.Fatalf("WriteVerilog: %v", err)
	}
	if buf.String() != nl.Verilog() {
		t.Error("WriteVerilog and Verilog outputs differ")
	}
}

// TestParseAllocsLinear guards the parse hot path: steady-state
// allocations must stay a small constant per cell (arena slabs, interned
// names, no per-line garbage).
func TestParseAllocsLinear(t *testing.T) {
	b := NewBuilder("wide")
	clk := b.Clock("clk")
	x := b.Input("x")
	y := b.Input("y")
	prev := b.Add(cell.XOR2, x, y)
	for i := 0; i < 4000; i++ {
		prev = b.Add(cell.Kind(int(cell.AND2)+i%6), prev, x)
	}
	q := b.AddDFF(prev, clk, false)
	b.Output("o", q)
	nl := b.MustBuild()
	src := nl.Verilog()

	per := testing.AllocsPerRun(5, func() {
		if _, err := ParseVerilog(src); err != nil {
			t.Fatal(err)
		}
	})
	// Floor is ~1 alloc/cell: every unique instance name must be
	// materialized as a string. Everything else (pins, net table, line
	// buffers) amortizes into slabs.
	cells := float64(len(nl.Cells))
	if perCell := per / cells; perCell > 1.5 {
		t.Errorf("parse allocates %.2f allocs/cell (%.0f total for %.0f cells); want <= 1.5",
			perCell, per, cells)
	}
}
