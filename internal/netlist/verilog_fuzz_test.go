package netlist_test

// External test package so the fuzz corpus can be seeded with the real
// ALU and FPU netlists (those packages import netlist, so an internal
// test would be an import cycle).

import (
	"testing"

	"repro/internal/alu"
	"repro/internal/cell"
	"repro/internal/fpu"
	"repro/internal/netlist"
)

// FuzzVerilogRoundTrip checks the two contracts of the failing-netlist
// interchange format (§3.3.2 deliverables):
//
//  1. ParseVerilog never panics, whatever bytes it is fed — failing
//     netlists cross tool boundaries, so corrupt files must come back
//     as errors, not crashes.
//  2. Anything it accepts re-exports losslessly: the re-parsed module
//     preserves every cell (per kind), port shape, DFF init, and clock,
//     and after one normalizing round trip the Verilog text is an exact
//     fixed point of Verilog(ParseVerilog(·)).
func FuzzVerilogRoundTrip(f *testing.F) {
	// The FPU export (~460 KB) starves the mutation engine when used as
	// a seed, so it is exercised by TestVerilogRoundTripFPU below and
	// only the ALU export seeds the fuzzer.
	f.Add(alu.Build().Netlist.Verilog())
	f.Add("module m (clk, a, o);\n" +
		"  input wire clk;\n" +
		"  input wire [1:0] a;\n" +
		"  output wire [0:0] o;\n" +
		"  wire [5:0] n;\n" +
		"  assign n[0] = clk;\n" +
		"  assign n[1] = a[0];\n" +
		"  assign n[2] = a[1];\n" +
		"  assign n[3] = n[1] ^ n[2]; // x\n" +
		"  dff #(.INIT(1'b1)) q (.clk(n[0]), .d(n[3]), .q(n[4]));\n" +
		"  assign o[0] = n[4];\n" +
		"endmodule\n")
	f.Add("module empty ();\nendmodule\n")
	f.Add("module bad (a);\n  input wire [999999999:0] a;\nendmodule\n")
	f.Add("not verilog at all")

	f.Fuzz(func(t *testing.T, src string) { checkRoundTrip(t, src) })
}

// TestVerilogRoundTripFPU runs the fuzz property once over the largest
// netlist in the repository (too big to be a productive fuzz seed).
func TestVerilogRoundTripFPU(t *testing.T) {
	checkRoundTrip(t, fpu.Build().Netlist.Verilog())
}

func checkRoundTrip(t *testing.T, src string) {
	t.Helper()
	nl, err := netlist.ParseVerilog(src) // contract 1: no panic
	if err != nil {
		return
	}
	v1 := nl.Verilog()
	nl2, err := netlist.ParseVerilog(v1)
	if err != nil {
		t.Fatalf("re-parse of own export failed: %v\nexport:\n%s", err, v1)
	}

	// Contract 2a: structure survives the round trip.
	if len(nl2.Cells) != len(nl.Cells) {
		t.Fatalf("cell count %d -> %d after round trip", len(nl.Cells), len(nl2.Cells))
	}
	for k := cell.Kind(0); int(k) < cell.NumKinds; k++ {
		if nl.CountKind(k) != nl2.CountKind(k) {
			t.Fatalf("kind %v: %d -> %d after round trip", k, nl.CountKind(k), nl2.CountKind(k))
		}
	}
	if len(nl2.Inputs) != len(nl.Inputs) || len(nl2.Outputs) != len(nl.Outputs) {
		t.Fatalf("port counts changed: in %d->%d out %d->%d",
			len(nl.Inputs), len(nl2.Inputs), len(nl.Outputs), len(nl2.Outputs))
	}
	for i, p := range nl.Inputs {
		if len(nl2.Inputs[i].Bits) != len(p.Bits) {
			t.Fatalf("input %s width %d -> %d", p.Name, len(p.Bits), len(nl2.Inputs[i].Bits))
		}
	}
	for i, p := range nl.Outputs {
		if len(nl2.Outputs[i].Bits) != len(p.Bits) {
			t.Fatalf("output %s width %d -> %d", p.Name, len(p.Bits), len(nl2.Outputs[i].Bits))
		}
	}
	if (nl.ClockRoot == netlist.NoNet) != (nl2.ClockRoot == netlist.NoNet) {
		t.Fatal("clock root presence changed across round trip")
	}

	// Contract 2b: the export is a textual fixed point once the
	// netlist has been through one parse (which canonicalizes net
	// numbering to first-appearance order).
	v2 := nl2.Verilog()
	nl3, err := netlist.ParseVerilog(v2)
	if err != nil {
		t.Fatalf("third parse failed: %v\nexport:\n%s", err, v2)
	}
	if v3 := nl3.Verilog(); v3 != v2 {
		t.Fatalf("export is not a fixed point:\nsecond:\n%s\nthird:\n%s", v2, v3)
	}
}
