package netlist

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/cell"
)

// Verilog renders the netlist as a structural Verilog-2001 module. The
// output is what the paper calls a "failing netlist" deliverable when the
// netlist carries an instrumented failure model: a simulatable,
// synthesizable gate-level description.
func (nl *Netlist) Verilog() string {
	var b strings.Builder
	var portNames []string
	if nl.ClockRoot != NoNet {
		portNames = append(portNames, nl.NetName(nl.ClockRoot))
	}
	for _, p := range nl.Inputs {
		portNames = append(portNames, p.Name)
	}
	for _, p := range nl.Outputs {
		portNames = append(portNames, p.Name)
	}
	fmt.Fprintf(&b, "module %s (%s);\n", sanitize(nl.Name), strings.Join(portNames, ", "))
	if nl.ClockRoot != NoNet {
		fmt.Fprintf(&b, "  input wire %s;\n", nl.NetName(nl.ClockRoot))
	}
	for _, p := range nl.Inputs {
		fmt.Fprintf(&b, "  input wire %s %s;\n", rangeDecl(len(p.Bits)), p.Name)
	}
	for _, p := range nl.Outputs {
		fmt.Fprintf(&b, "  output wire %s %s;\n", rangeDecl(len(p.Bits)), p.Name)
	}
	if nl.NumNets > 0 {
		fmt.Fprintf(&b, "  wire [%d:0] n;\n", nl.NumNets-1)
	}
	// Tie port nets to the flat wire vector.
	if nl.ClockRoot != NoNet {
		fmt.Fprintf(&b, "  assign n[%d] = %s;\n", nl.ClockRoot, nl.NetName(nl.ClockRoot))
	}
	for _, p := range nl.Inputs {
		for i, net := range p.Bits {
			fmt.Fprintf(&b, "  assign n[%d] = %s[%d];\n", net, p.Name, i)
		}
	}
	for _, p := range nl.Outputs {
		for i, net := range p.Bits {
			fmt.Fprintf(&b, "  assign %s[%d] = n[%d];\n", p.Name, i, net)
		}
	}
	for _, c := range nl.Cells {
		b.WriteString("  ")
		b.WriteString(cellVerilog(c))
		b.WriteByte('\n')
	}
	b.WriteString("endmodule\n")
	return b.String()
}

func rangeDecl(width int) string {
	return fmt.Sprintf("[%d:0]", width-1)
}

func sanitize(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			return r
		default:
			return '_'
		}
	}, s)
}

func cellVerilog(c Cell) string {
	n := func(id NetID) string { return fmt.Sprintf("n[%d]", id) }
	switch c.Kind {
	case cell.TIE0:
		return fmt.Sprintf("assign %s = 1'b0; // %s", n(c.Out), c.Name)
	case cell.TIE1:
		return fmt.Sprintf("assign %s = 1'b1; // %s", n(c.Out), c.Name)
	case cell.BUF:
		return fmt.Sprintf("assign %s = %s; // %s", n(c.Out), n(c.In[0]), c.Name)
	case cell.INV:
		return fmt.Sprintf("assign %s = ~%s; // %s", n(c.Out), n(c.In[0]), c.Name)
	case cell.AND2:
		return fmt.Sprintf("assign %s = %s & %s; // %s", n(c.Out), n(c.In[0]), n(c.In[1]), c.Name)
	case cell.OR2:
		return fmt.Sprintf("assign %s = %s | %s; // %s", n(c.Out), n(c.In[0]), n(c.In[1]), c.Name)
	case cell.NAND2:
		return fmt.Sprintf("assign %s = ~(%s & %s); // %s", n(c.Out), n(c.In[0]), n(c.In[1]), c.Name)
	case cell.NOR2:
		return fmt.Sprintf("assign %s = ~(%s | %s); // %s", n(c.Out), n(c.In[0]), n(c.In[1]), c.Name)
	case cell.XOR2:
		return fmt.Sprintf("assign %s = %s ^ %s; // %s", n(c.Out), n(c.In[0]), n(c.In[1]), c.Name)
	case cell.XNOR2:
		return fmt.Sprintf("assign %s = ~(%s ^ %s); // %s", n(c.Out), n(c.In[0]), n(c.In[1]), c.Name)
	case cell.MUX2:
		return fmt.Sprintf("assign %s = %s ? %s : %s; // %s", n(c.Out), n(c.In[2]), n(c.In[1]), n(c.In[0]), c.Name)
	case cell.AOI21:
		return fmt.Sprintf("assign %s = ~((%s & %s) | %s); // %s", n(c.Out), n(c.In[0]), n(c.In[1]), n(c.In[2]), c.Name)
	case cell.OAI21:
		return fmt.Sprintf("assign %s = ~((%s | %s) & %s); // %s", n(c.Out), n(c.In[0]), n(c.In[1]), n(c.In[2]), c.Name)
	case cell.DFF:
		init := "1'b0"
		if c.Init {
			init = "1'b1"
		}
		return fmt.Sprintf("dff #(.INIT(%s)) %s (.clk(%s), .d(%s), .q(%s));",
			init, sanitize(c.Name), n(c.Clk), n(c.In[0]), n(c.Out))
	case cell.CLKBUF:
		return fmt.Sprintf("assign %s = %s; // clkbuf %s", n(c.Out), n(c.In[0]), c.Name)
	case cell.CLKGATE:
		return fmt.Sprintf("assign %s = %s & %s; // clkgate %s", n(c.Out), n(c.In[0]), n(c.In[1]), c.Name)
	}
	return "// unknown cell " + c.Name
}

// DOT renders the netlist in Graphviz dot format for visual debugging.
func (nl *Netlist) DOT() string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %s {\n  rankdir=LR;\n", sanitize(nl.Name))
	for i, c := range nl.Cells {
		shape := "box"
		if c.Kind.IsSequential() {
			shape = "Msquare"
		} else if c.Kind.IsClock() {
			shape = "triangle"
		}
		fmt.Fprintf(&b, "  c%d [label=%q shape=%s];\n", i, c.Name, shape)
	}
	readers := nl.Readers()
	for n := 0; n < nl.NumNets; n++ {
		d := nl.driver[n]
		if d == NoCell {
			continue
		}
		rs := append([]CellID(nil), readers[n]...)
		sort.Slice(rs, func(i, j int) bool { return rs[i] < rs[j] })
		for _, r := range rs {
			fmt.Fprintf(&b, "  c%d -> c%d [label=%q];\n", d, r, nl.NetName(NetID(n)))
		}
	}
	b.WriteString("}\n")
	return b.String()
}
