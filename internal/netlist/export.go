package netlist

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/cell"
)

// Verilog renders the netlist as a structural Verilog-2001 module. The
// output is what the paper calls a "failing netlist" deliverable when the
// netlist carries an instrumented failure model: a simulatable,
// synthesizable gate-level description.
func (nl *Netlist) Verilog() string {
	var b strings.Builder
	if err := nl.WriteVerilog(&b); err != nil {
		// strings.Builder writes cannot fail.
		panic(err)
	}
	return b.String()
}

// WriteVerilog is the streaming form of Verilog: it emits the module
// straight to w without materializing the whole text, so a million-cell
// netlist exports in one buffered pass with constant memory.
func (nl *Netlist) WriteVerilog(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 64*1024)
	bw.WriteString("module ")
	bw.WriteString(sanitize(nl.Name))
	bw.WriteString(" (")
	first := true
	port := func(name string) {
		if !first {
			bw.WriteString(", ")
		}
		first = false
		bw.WriteString(name)
	}
	if nl.ClockRoot != NoNet {
		port(nl.NetName(nl.ClockRoot))
	}
	for _, p := range nl.Inputs {
		port(p.Name)
	}
	for _, p := range nl.Outputs {
		port(p.Name)
	}
	bw.WriteString(");\n")
	if nl.ClockRoot != NoNet {
		fmt.Fprintf(bw, "  input wire %s;\n", nl.NetName(nl.ClockRoot))
	}
	for _, p := range nl.Inputs {
		fmt.Fprintf(bw, "  input wire [%d:0] %s;\n", len(p.Bits)-1, p.Name)
	}
	for _, p := range nl.Outputs {
		fmt.Fprintf(bw, "  output wire [%d:0] %s;\n", len(p.Bits)-1, p.Name)
	}
	if nl.NumNets > 0 {
		fmt.Fprintf(bw, "  wire [%d:0] n;\n", nl.NumNets-1)
	}
	// Tie port nets to the flat wire vector.
	if nl.ClockRoot != NoNet {
		fmt.Fprintf(bw, "  assign n[%d] = %s;\n", nl.ClockRoot, nl.NetName(nl.ClockRoot))
	}
	for _, p := range nl.Inputs {
		for i, net := range p.Bits {
			fmt.Fprintf(bw, "  assign n[%d] = %s[%d];\n", net, p.Name, i)
		}
	}
	for _, p := range nl.Outputs {
		for i, net := range p.Bits {
			fmt.Fprintf(bw, "  assign %s[%d] = n[%d];\n", p.Name, i, net)
		}
	}
	var scratch []byte
	for i := range nl.Cells {
		bw.WriteString("  ")
		scratch = writeCellVerilog(bw, &nl.Cells[i], scratch)
		bw.WriteByte('\n')
	}
	bw.WriteString("endmodule\n")
	return bw.Flush()
}

func sanitize(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			return r
		default:
			return '_'
		}
	}, s)
}

// writeCellVerilog emits one cell line without per-cell allocation (the
// scratch buffer is threaded through for net-reference formatting). The
// textual forms are load-bearing: ParseVerilog matches them exactly, and
// the round-trip fuzz contract requires a textual fixed point.
func writeCellVerilog(bw *bufio.Writer, c *Cell, scratch []byte) []byte {
	n := func(id NetID) {
		scratch = append(scratch[:0], 'n', '[')
		scratch = strconv.AppendInt(scratch, int64(id), 10)
		scratch = append(scratch, ']')
		bw.Write(scratch)
	}
	binary := func(op string) {
		bw.WriteString("assign ")
		n(c.Out)
		bw.WriteString(" = ")
		n(c.In[0])
		bw.WriteString(op)
		n(c.In[1])
	}
	negBinary := func(op string) {
		bw.WriteString("assign ")
		n(c.Out)
		bw.WriteString(" = ~(")
		n(c.In[0])
		bw.WriteString(op)
		n(c.In[1])
		bw.WriteString(")")
	}
	comment := func(prefix string) {
		bw.WriteString("; // ")
		bw.WriteString(prefix)
		bw.WriteString(c.Name)
	}
	switch c.Kind {
	case cell.TIE0:
		bw.WriteString("assign ")
		n(c.Out)
		bw.WriteString(" = 1'b0")
		comment("")
	case cell.TIE1:
		bw.WriteString("assign ")
		n(c.Out)
		bw.WriteString(" = 1'b1")
		comment("")
	case cell.BUF, cell.CLKBUF:
		bw.WriteString("assign ")
		n(c.Out)
		bw.WriteString(" = ")
		n(c.In[0])
		if c.Kind == cell.CLKBUF {
			comment("clkbuf ")
		} else {
			comment("")
		}
	case cell.INV:
		bw.WriteString("assign ")
		n(c.Out)
		bw.WriteString(" = ~")
		n(c.In[0])
		comment("")
	case cell.AND2:
		binary(" & ")
		comment("")
	case cell.OR2:
		binary(" | ")
		comment("")
	case cell.XOR2:
		binary(" ^ ")
		comment("")
	case cell.NAND2:
		negBinary(" & ")
		comment("")
	case cell.NOR2:
		negBinary(" | ")
		comment("")
	case cell.XNOR2:
		negBinary(" ^ ")
		comment("")
	case cell.MUX2:
		bw.WriteString("assign ")
		n(c.Out)
		bw.WriteString(" = ")
		n(c.In[2])
		bw.WriteString(" ? ")
		n(c.In[1])
		bw.WriteString(" : ")
		n(c.In[0])
		comment("")
	case cell.AOI21:
		bw.WriteString("assign ")
		n(c.Out)
		bw.WriteString(" = ~((")
		n(c.In[0])
		bw.WriteString(" & ")
		n(c.In[1])
		bw.WriteString(") | ")
		n(c.In[2])
		bw.WriteString(")")
		comment("")
	case cell.CLKGATE:
		binary(" & ")
		comment("clkgate ")
	case cell.OAI21:
		bw.WriteString("assign ")
		n(c.Out)
		bw.WriteString(" = ~((")
		n(c.In[0])
		bw.WriteString(" | ")
		n(c.In[1])
		bw.WriteString(") & ")
		n(c.In[2])
		bw.WriteString(")")
		comment("")
	case cell.DFF:
		bw.WriteString("dff #(.INIT(1'b")
		if c.Init {
			bw.WriteByte('1')
		} else {
			bw.WriteByte('0')
		}
		bw.WriteString(")) ")
		bw.WriteString(sanitize(c.Name))
		bw.WriteString(" (.clk(")
		n(c.Clk)
		bw.WriteString("), .d(")
		n(c.In[0])
		bw.WriteString("), .q(")
		n(c.Out)
		bw.WriteString("));")
	default:
		bw.WriteString("// unknown cell ")
		bw.WriteString(c.Name)
	}
	return scratch
}

// DOT renders the netlist in Graphviz dot format for visual debugging.
func (nl *Netlist) DOT() string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %s {\n  rankdir=LR;\n", sanitize(nl.Name))
	for i, c := range nl.Cells {
		shape := "box"
		if c.Kind.IsSequential() {
			shape = "Msquare"
		} else if c.Kind.IsClock() {
			shape = "triangle"
		}
		fmt.Fprintf(&b, "  c%d [label=%q shape=%s];\n", i, c.Name, shape)
	}
	readers := nl.Readers()
	for n := 0; n < nl.NumNets; n++ {
		d := nl.driver[n]
		if d == NoCell {
			continue
		}
		rs := append([]CellID(nil), readers[n]...)
		sort.Slice(rs, func(i, j int) bool { return rs[i] < rs[j] })
		for _, r := range rs {
			fmt.Fprintf(&b, "  c%d -> c%d [label=%q];\n", d, r, nl.NetName(NetID(n)))
		}
	}
	b.WriteString("}\n")
	return b.String()
}
