// Package netlist provides the gate-level netlist representation shared by
// every phase of the workflow: a directed graph of standard cells (see
// internal/cell) connected by nets, with named port buses and an explicit
// clock network. It is the Go equivalent of the synthesized, post
// place-and-route netlist that the paper's toolchain produces.
package netlist

import (
	"fmt"
	"sort"

	"repro/internal/cell"
)

// NetID identifies a single-bit net. Nets are dense indices starting at 0.
type NetID int32

// CellID identifies a cell instance within one netlist.
type CellID int32

// NoNet marks an unconnected optional pin (e.g. the Clk pin of a
// combinational cell).
const NoNet NetID = -1

// NoCell marks the absence of a driving cell (primary inputs, clock root).
const NoCell CellID = -1

// Bus is an ordered group of nets; index 0 is the least-significant bit.
type Bus []NetID

// Cell is one instantiated standard cell. For clock cells the clock input
// is In[0] (and EN is In[1] for CLKGATE). For DFF cells In[0] is the D pin
// and Clk is the clock net; Init is the value Q takes at reset.
type Cell struct {
	Kind cell.Kind
	Name string
	In   []NetID
	Clk  NetID // DFF only; NoNet otherwise
	Out  NetID
	Init bool // DFF only: reset value of Q
}

// Port is a named bus on the module boundary.
type Port struct {
	Name string
	Bits Bus
}

// Netlist is an immutable, validated gate-level module. Construct one with
// a Builder; instrumentation passes work on Clone()d copies.
type Netlist struct {
	Name      string
	Cells     []Cell
	NumNets   int
	Inputs    []Port
	Outputs   []Port
	ClockRoot NetID // the primary clock pin; NoNet for pure-combinational modules

	driver   []CellID // per net: driving cell, or NoCell
	topo     []CellID // combinational + clock cells in dependency order
	netNames map[NetID]string
}

// Driver returns the cell driving net n, or NoCell if n is a primary
// input or the clock root.
func (nl *Netlist) Driver(n NetID) CellID { return nl.driver[n] }

// Topo returns the combinational and clock cells in an order where every
// cell appears after all cells driving its inputs. DFFs are excluded:
// their outputs are state, available at the start of a cycle.
func (nl *Netlist) Topo() []CellID { return nl.topo }

// NetName returns the declared name of a net ("a[3]", "o_s[1]") or a
// positional fallback.
func (nl *Netlist) NetName(n NetID) string {
	if s, ok := nl.netNames[n]; ok {
		return s
	}
	if d := nl.driver[n]; d != NoCell {
		return nl.Cells[d].Name + ".Y"
	}
	return fmt.Sprintf("n%d", n)
}

// FindInput returns the input port with the given name.
func (nl *Netlist) FindInput(name string) (Port, bool) { return findPort(nl.Inputs, name) }

// FindOutput returns the output port with the given name.
func (nl *Netlist) FindOutput(name string) (Port, bool) { return findPort(nl.Outputs, name) }

func findPort(ports []Port, name string) (Port, bool) {
	for _, p := range ports {
		if p.Name == name {
			return p, true
		}
	}
	return Port{}, false
}

// DFFs returns the IDs of all flip-flops, in cell order.
func (nl *Netlist) DFFs() []CellID {
	n := 0
	for i := range nl.Cells {
		if nl.Cells[i].Kind == cell.DFF {
			n++
		}
	}
	out := make([]CellID, 0, n)
	for i := range nl.Cells {
		if nl.Cells[i].Kind == cell.DFF {
			out = append(out, CellID(i))
		}
	}
	return out
}

// CountKind returns the number of cells of the given kind.
func (nl *Netlist) CountKind(k cell.Kind) int {
	n := 0
	for _, c := range nl.Cells {
		if c.Kind == k {
			n++
		}
	}
	return n
}

// Readers returns, for every net, the cells that read it (through any
// input pin, including DFF D and clock pins).
func (nl *Netlist) Readers() [][]CellID {
	r := make([][]CellID, nl.NumNets)
	for i, c := range nl.Cells {
		for _, in := range c.In {
			r[in] = append(r[in], CellID(i))
		}
		if c.Clk != NoNet {
			r[c.Clk] = append(r[c.Clk], CellID(i))
		}
	}
	return r
}

// FanoutCone returns the set of cells transitively reachable from the
// given seed nets, following data pins through both combinational cells
// and flip-flops (a DFF is in the cone if its D input is; the traversal
// then continues from its Q output). Clock pins are not followed. The
// result is sorted by CellID.
func (nl *Netlist) FanoutCone(seeds []NetID) []CellID {
	readers := nl.Readers()
	inCone := make([]bool, len(nl.Cells))
	var stack []NetID
	seen := make([]bool, nl.NumNets)
	for _, s := range seeds {
		if !seen[s] {
			seen[s] = true
			stack = append(stack, s)
		}
	}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, cid := range readers[n] {
			c := &nl.Cells[cid]
			if c.Clk == n && !contains(c.In, n) {
				continue // reached through the clock pin only
			}
			if inCone[cid] {
				continue
			}
			inCone[cid] = true
			if !seen[c.Out] {
				seen[c.Out] = true
				stack = append(stack, c.Out)
			}
		}
	}
	var out []CellID
	for i, in := range inCone {
		if in {
			out = append(out, CellID(i))
		}
	}
	return out
}

func contains(nets []NetID, n NetID) bool {
	for _, x := range nets {
		if x == n {
			return true
		}
	}
	return false
}

// Clone returns a deep structural copy that can be mutated by
// instrumentation passes without affecting the original. All input-pin
// slices of the copy share one backing slab, so cloning a million-cell
// netlist costs a handful of allocations, not one per cell.
func (nl *Netlist) Clone() *Netlist {
	c := &Netlist{
		Name:      nl.Name,
		Cells:     make([]Cell, len(nl.Cells)),
		NumNets:   nl.NumNets,
		Inputs:    clonePorts(nl.Inputs),
		Outputs:   clonePorts(nl.Outputs),
		ClockRoot: nl.ClockRoot,
		driver:    append([]CellID(nil), nl.driver...),
		topo:      append([]CellID(nil), nl.topo...),
		netNames:  make(map[NetID]string, len(nl.netNames)),
	}
	total := 0
	for i := range nl.Cells {
		total += len(nl.Cells[i].In)
	}
	slab := make([]NetID, 0, total)
	for i, cc := range nl.Cells {
		if len(cc.In) > 0 {
			lo := len(slab)
			slab = append(slab, cc.In...)
			cc.In = slab[lo:len(slab):len(slab)]
		}
		c.Cells[i] = cc
	}
	for k, v := range nl.netNames {
		c.netNames[k] = v
	}
	return c
}

func clonePorts(ps []Port) []Port {
	out := make([]Port, len(ps))
	for i, p := range ps {
		out[i] = Port{Name: p.Name, Bits: append(Bus(nil), p.Bits...)}
	}
	return out
}

// Stats summarizes a netlist for reports.
type Stats struct {
	Cells      int
	DFFs       int
	ClockCells int
	Comb       int
	Nets       int
}

// Stats computes summary counts.
func (nl *Netlist) Stats() Stats {
	s := Stats{Cells: len(nl.Cells), Nets: nl.NumNets}
	for i := range nl.Cells {
		switch k := nl.Cells[i].Kind; {
		case k.IsSequential():
			s.DFFs++
		case k.IsClock():
			s.ClockCells++
		default:
			s.Comb++
		}
	}
	return s
}

// String renders the stats in the one-line form used by the cmds.
func (s Stats) String() string {
	return fmt.Sprintf("%d cells (%d dff, %d clock, %d comb), %d nets",
		s.Cells, s.DFFs, s.ClockCells, s.Comb, s.Nets)
}

// sortCells orders cell IDs ascending (used to make traversal output
// deterministic).
func sortCells(ids []CellID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}
