package netlist

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"repro/internal/cell"
)

// ParseVerilog reads back a structural module in the dialect produced by
// (*Netlist).Verilog — the format this repository ships failing netlists
// in — and reconstructs the netlist. Together with Verilog() it gives a
// lossless round trip for every cell kind, port, clock connection and
// DFF reset value, so failure models exported as circuit-level artifacts
// (§3.3.2) can be reloaded and simulated.
func ParseVerilog(src string) (*Netlist, error) {
	return ParseVerilogReader(strings.NewReader(src))
}

// maxLineBytes bounds a single source line. The dialect never produces
// lines anywhere near this long (the widest is the module header, one
// name per port); the cap keeps a hostile unstructured blob from being
// buffered wholesale.
const maxLineBytes = 1 << 20

// ParseVerilogReader is the streaming form of ParseVerilog: one pass
// over the input with a line scanner, no whole-file string splitting,
// and hand-rolled line matching (no regexp). Memory scales with the
// netlist, not with transient parse state — cells go straight into the
// Builder's arena, and the flat `wire [N:0] n;` declaration pre-sizes
// the net table and builder so a million-cell import does not pay for
// incremental growth.
func ParseVerilogReader(r io.Reader) (*Netlist, error) {
	p := &vparser{b: NewBuilder("")}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), maxLineBytes)
	ln := 0
	for sc.Scan() {
		ln++
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 || bytes.HasPrefix(line, litComment) {
			continue
		}
		if err := p.line(line); err != nil {
			return nil, fmt.Errorf("line %d: %w", ln, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("line %d: %w", ln+1, err)
	}
	if !p.done {
		return nil, fmt.Errorf("missing endmodule")
	}
	if p.name == "" {
		return nil, fmt.Errorf("missing module header")
	}
	return p.finish()
}

type vparser struct {
	b    *Builder
	name string
	done bool

	// netsLo maps flat "n[i]" indices below its length to builder nets
	// (NoNet = not yet allocated); it grows geometrically up to the
	// declared wire-vector width (declNets) as indices are referenced,
	// so the common dense case is a single array whose cost is always
	// justified by actual references, never by the declaration alone.
	// netsHi catches sparse indices beyond the declaration.
	netsLo   []NetID
	declNets int
	netsHi   map[int]NetID

	// port bit nets by "name[i]" (or scalar "name").
	portBits map[string]NetID
	inputs   []parsedPort
	outputs  []parsedPort

	// output-side assigns: port bit -> flat net (resolved at finish).
	outAssigns map[string]int

	cells int

	// scratch buffers reused across lines (zero steady-state alloc).
	stripBuf []byte
	nameBuf  []byte
}

type parsedPort struct {
	name  string
	width int
}

// maxPortWidth bounds declared port widths. The widest real port in this
// repository is 32 bits; the cap keeps a hostile/corrupt declaration like
// `input wire [999999999:0]` from allocating gigabytes before Build can
// reject the module.
const maxPortWidth = 4096

// maxEagerNets bounds the dense net table (and with it what a hostile
// wire declaration can make the parser allocate); indices beyond it
// still work through the sparse overflow map. eagerNetSeed is what the
// declaration alone may pre-allocate — one short line must not cost more
// than the netlist that justifies it, so the rest of the table grows
// geometrically as real references appear.
const (
	maxEagerNets = 1 << 22
	eagerNetSeed = 1 << 16
)

// Literal fragments of the dialect, hoisted so the hot per-line matchers
// never rebuild them.
var (
	litComment   = []byte("//")
	litModule    = []byte("module")
	litWireVec   = []byte("wire [")
	litInputDecl = []byte("input wire ")
	litOutDecl   = []byte("output wire ")
	litDFFHead   = []byte("dff #(.INIT(1'b")
	litDFFName   = []byte(")) ")
	litDFFClk    = []byte(" (.clk(n[")
	litDFFD      = []byte("]), .d(n[")
	litDFFQ      = []byte("]), .q(n[")
	litDFFTail   = []byte("]));")
	litAssign    = []byte("assign ")
	litEq        = []byte(" = ")
	litNetOpen   = []byte("n[")
	litNotPar2   = []byte("~((")
	litNotPar    = []byte("~(")
	litClkbuf    = []byte("clkbuf")
	litClkgate   = []byte("clkgate")
	litClkbufSp  = []byte("clkbuf ")
	litClkgateSp = []byte("clkgate ")
)

// Ordered operator tables. These replace map-ranged matching (whose
// iteration order is random) so that parse results and error messages
// are deterministic across runs.
var negOps = [...]struct {
	op   byte
	kind cell.Kind
}{{'&', cell.NAND2}, {'|', cell.NOR2}, {'^', cell.XNOR2}}

var binOps = [...]struct {
	op   byte
	kind cell.Kind
}{{'&', cell.AND2}, {'|', cell.OR2}, {'^', cell.XOR2}}

func isWordB(c byte) bool {
	return c == '_' || c >= '0' && c <= '9' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func isSpaceB(c byte) bool {
	switch c {
	case ' ', '\t', '\n', '\f', '\r':
		return true
	}
	return false
}

// cutUint consumes a leading ASCII digit run. Values that overflow int
// clamp to MaxInt with over=true; callers that mirror the strict paths
// reject over, the lenient paths accept the clamp.
func cutUint(b []byte) (v int, rest []byte, ok, over bool) {
	i := 0
	for i < len(b) && b[i] >= '0' && b[i] <= '9' {
		if v > (math.MaxInt-9)/10 {
			over = true
		} else {
			v = v*10 + int(b[i]-'0')
		}
		i++
	}
	if i == 0 {
		return 0, b, false, false
	}
	if over {
		v = math.MaxInt
	}
	return v, b[i:], true, over
}

// netRef matches `n[<digits>]` exactly.
func netRef(b []byte) (idx int, over, ok bool) {
	r, k := bytes.CutPrefix(b, litNetOpen)
	if !k {
		return 0, false, false
	}
	v, rest, k2, ov := cutUint(r)
	if !k2 || len(rest) != 1 || rest[0] != ']' {
		return 0, false, false
	}
	return v, ov, true
}

// portRefOK matches `<word>[<digits>]` exactly (the shape of an output
// port bit reference; the key is the raw string, so only shape matters).
func portRefOK(b []byte) bool {
	j := 0
	for j < len(b) && isWordB(b[j]) {
		j++
	}
	if j == 0 || j >= len(b) || b[j] != '[' {
		return false
	}
	_, rest, ok, _ := cutUint(b[j+1:])
	return ok && len(rest) == 1 && rest[0] == ']'
}

func (p *vparser) net(idx int) NetID {
	if idx >= 0 && idx < p.declNets {
		if idx >= len(p.netsLo) {
			// Grow the dense table geometrically toward the declared
			// width: amortized O(1) per reference, memory bounded by
			// 2x the highest index actually referenced.
			want := 2 * len(p.netsLo)
			if want <= idx {
				want = idx + 1
			}
			if want > p.declNets {
				want = p.declNets
			}
			grown := make([]NetID, want)
			copy(grown, p.netsLo)
			for i := len(p.netsLo); i < want; i++ {
				grown[i] = NoNet
			}
			p.netsLo = grown
		}
		if n := p.netsLo[idx]; n != NoNet {
			return n
		}
		n := p.b.Net()
		p.netsLo[idx] = n
		return n
	}
	if p.netsHi == nil {
		p.netsHi = make(map[int]NetID)
	}
	if n, ok := p.netsHi[idx]; ok {
		return n
	}
	n := p.b.Net()
	p.netsHi[idx] = n
	return n
}

// presize is the declaration-count prepass hook: Verilog() emits the
// flat `wire [N:0] n;` declaration before any cell line, so its width
// bounds the net count (and, to within port ties, the cell count) of
// the whole module before a single cell is built. Only a small seed is
// allocated up front; net() grows the dense table toward the declared
// width as references appear.
func (p *vparser) presize(width int) {
	if p.declNets != 0 || width <= 0 {
		return
	}
	if width > maxEagerNets {
		width = maxEagerNets
	}
	p.declNets = width
	seed := width
	if seed > eagerNetSeed {
		seed = eagerNetSeed
	}
	p.netsLo = make([]NetID, seed)
	for i := range p.netsLo {
		p.netsLo[i] = NoNet
	}
	p.b.Reserve(seed, 2*seed)
}

func (p *vparser) line(line []byte) error {
	if nm, ok := matchModule(line); ok {
		p.name = string(nm)
		return nil
	}
	if string(line) == "endmodule" {
		p.done = true
		return nil
	}
	if w, ok := matchWireDecl(line); ok {
		p.presize(w)
		return nil
	}
	if nm, dig, matched := matchPortDecl(line, litInputDecl); matched {
		width, err := portWidthB(dig, nm)
		if err != nil {
			return err
		}
		p.inputs = append(p.inputs, parsedPort{string(nm), width})
		return nil
	}
	if nm, dig, matched := matchPortDecl(line, litOutDecl); matched {
		width, err := portWidthB(dig, nm)
		if err != nil {
			return err
		}
		p.outputs = append(p.outputs, parsedPort{string(nm), width})
		return nil
	}
	if p.tryDFF(line) {
		return nil
	}
	if lhs, rhs, comment, ok := splitAssign(line); ok {
		return p.assign(lhs, rhs, comment)
	}
	return fmt.Errorf("unrecognized construct %q", line)
}

// matchModule matches `module <name> (` as a line prefix.
func matchModule(line []byte) ([]byte, bool) {
	rest, ok := bytes.CutPrefix(line, litModule)
	if !ok {
		return nil, false
	}
	i := 0
	for i < len(rest) && isSpaceB(rest[i]) {
		i++
	}
	if i == 0 {
		return nil, false
	}
	j := i
	for j < len(rest) && isWordB(rest[j]) {
		j++
	}
	if j == i {
		return nil, false
	}
	k := j
	for k < len(rest) && isSpaceB(rest[k]) {
		k++
	}
	if k >= len(rest) || rest[k] != '(' {
		return nil, false
	}
	return rest[i:j], true
}

// matchWireDecl matches `wire [<digits>:0] n;` exactly and returns the
// declared width.
func matchWireDecl(line []byte) (int, bool) {
	rest, ok := bytes.CutPrefix(line, litWireVec)
	if !ok {
		return 0, false
	}
	hi, rest, ok, over := cutUint(rest)
	if !ok || string(rest) != ":0] n;" {
		return 0, false
	}
	if over || hi == math.MaxInt {
		return math.MaxInt, true
	}
	return hi + 1, true
}

// matchPortDecl matches `<prefix>[<digits>:0] <word>;` with the range
// optional; on a match it returns the port name and the raw width digits
// (nil for a scalar port). A line whose prefix matches but whose shape
// does not simply fails to match, like the regexp-based matcher did.
func matchPortDecl(line, prefix []byte) (name, dig []byte, matched bool) {
	rest, ok := bytes.CutPrefix(line, prefix)
	if !ok {
		return nil, nil, false
	}
	if len(rest) > 0 && rest[0] == '[' {
		r2 := rest[1:]
		_, r3, ok3, _ := cutUint(r2)
		if !ok3 {
			return nil, nil, false
		}
		r4, ok4 := bytes.CutPrefix(r3, []byte(":0] "))
		if !ok4 {
			return nil, nil, false
		}
		dig = r2[:len(r2)-len(r3)]
		rest = r4
	}
	j := 0
	for j < len(rest) && isWordB(rest[j]) {
		j++
	}
	if j == 0 || string(rest[j:]) != ";" {
		return nil, nil, false
	}
	return rest[:j], dig, true
}

func portWidthB(dig, portName []byte) (int, error) {
	if string(portName) == "n" {
		// "n" is the flat wire vector Verilog() emits; a port with that
		// name would alias it and break the round trip.
		return 0, fmt.Errorf("port name %q is reserved", portName)
	}
	if dig == nil {
		return 1, nil
	}
	hi, _, _, over := cutUint(dig)
	if over || hi < 0 || hi >= maxPortWidth {
		return 0, fmt.Errorf("port %s: width %s out of range [1,%d]", portName, dig, maxPortWidth)
	}
	return hi + 1, nil
}

// tryDFF matches `dff #(.INIT(1'bX)) <name> (.clk(n[a]), .d(n[b]), .q(n[c]));`
// exactly, adding the flip-flop on success.
func (p *vparser) tryDFF(line []byte) bool {
	rest, ok := bytes.CutPrefix(line, litDFFHead)
	if !ok {
		return false
	}
	if len(rest) == 0 || (rest[0] != '0' && rest[0] != '1') {
		return false
	}
	init := rest[0] == '1'
	rest, ok = bytes.CutPrefix(rest[1:], litDFFName)
	if !ok {
		return false
	}
	j := 0
	for j < len(rest) && isWordB(rest[j]) {
		j++
	}
	if j == 0 {
		return false
	}
	nameB := rest[:j]
	rest, ok = bytes.CutPrefix(rest[j:], litDFFClk)
	if !ok {
		return false
	}
	clk, rest, ok, _ := cutUint(rest)
	if !ok {
		return false
	}
	rest, ok = bytes.CutPrefix(rest, litDFFD)
	if !ok {
		return false
	}
	d, rest, ok, _ := cutUint(rest)
	if !ok {
		return false
	}
	rest, ok = bytes.CutPrefix(rest, litDFFQ)
	if !ok {
		return false
	}
	q, rest, ok, _ := cutUint(rest)
	if !ok || string(rest) != "]));" {
		return false
	}
	p.b.addDFFRaw(p.b.intern(nameB), p.net(d), p.net(clk), p.net(q), init)
	p.cells++
	return true
}

// splitAssign matches `assign <lhs> = <rhs>; [// <comment>]` with the
// same lazy semantics as the old regexp: the first ` = ` with a
// non-empty lhs splits the sides, and the first `;` (with a non-empty
// rhs) whose tail is empty or a // comment ends the statement.
func splitAssign(line []byte) (lhs, rhs, comment []byte, ok bool) {
	rest, k := bytes.CutPrefix(line, litAssign)
	if !k {
		return nil, nil, nil, false
	}
	i := -1
	if len(rest) > 1 {
		if j := bytes.Index(rest[1:], litEq); j >= 0 {
			i = j + 1
		}
	}
	if i < 0 {
		return nil, nil, nil, false
	}
	lhs = bytes.TrimSpace(rest[:i])
	after := rest[i+3:]
	pos := 0
	for {
		j := bytes.IndexByte(after[pos:], ';')
		if j < 0 {
			return nil, nil, nil, false
		}
		s := pos + j
		pos = s + 1
		if s < 1 {
			continue // rhs must be non-empty
		}
		tail := after[s+1:]
		for len(tail) > 0 && isSpaceB(tail[0]) {
			tail = tail[1:]
		}
		if len(tail) == 0 {
			return lhs, bytes.TrimSpace(after[:s]), nil, true
		}
		if bytes.HasPrefix(tail, litComment) {
			return lhs, bytes.TrimSpace(after[:s]), bytes.TrimSpace(tail[2:]), true
		}
	}
}

// stripped returns b with every space removed, reusing a scratch buffer.
func (p *vparser) stripped(b []byte) []byte {
	buf := p.stripBuf[:0]
	for _, ch := range b {
		if ch != ' ' {
			buf = append(buf, ch)
		}
	}
	p.stripBuf = buf
	return buf
}

// cur is a cursor over a space-stripped expression.
type cur struct {
	b []byte
	i int
}

func (c *cur) lit(s string) bool {
	if len(c.b)-c.i < len(s) || string(c.b[c.i:c.i+len(s)]) != s {
		return false
	}
	c.i += len(s)
	return true
}

func (c *cur) num() (int, bool) {
	v, rest, ok, over := cutUint(c.b[c.i:])
	if !ok || over {
		return 0, false
	}
	c.i = len(c.b) - len(rest)
	return v, true
}

func (c *cur) end() bool { return c.i == len(c.b) }

// parseMux matches `n[s]?n[b]:n[a]` on a space-stripped expression.
func (p *vparser) parseMux(rhs []byte) (s, b, a int, ok bool) {
	c := cur{b: p.stripped(rhs)}
	if !c.lit("n[") {
		return
	}
	if s, ok = c.num(); !ok {
		return 0, 0, 0, false
	}
	if !c.lit("]?n[") {
		return 0, 0, 0, false
	}
	if b, ok = c.num(); !ok {
		return 0, 0, 0, false
	}
	if !c.lit("]:n[") {
		return 0, 0, 0, false
	}
	if a, ok = c.num(); !ok {
		return 0, 0, 0, false
	}
	if !c.lit("]") || !c.end() {
		return 0, 0, 0, false
	}
	return s, b, a, true
}

// parseAOI matches `~((n[a]&n[b])|n[c])` (AOI21) or `~((n[a]|n[b])&n[c])`
// (OAI21) on a space-stripped expression.
func (p *vparser) parseAOI(rhs []byte) (a, b, c3 int, kind cell.Kind, ok bool) {
	s := p.stripped(rhs)
	for _, alt := range [...]struct {
		inner, outer string
		kind         cell.Kind
	}{{"&", "|", cell.AOI21}, {"|", "&", cell.OAI21}} {
		c := cur{b: s}
		if !c.lit("~((n[") {
			continue
		}
		a2, k := c.num()
		if !k || !c.lit("]"+alt.inner+"n[") {
			continue
		}
		b2, k := c.num()
		if !k || !c.lit("])"+alt.outer+"n[") {
			continue
		}
		c2, k := c.num()
		if !k || !c.lit("])") || !c.end() {
			continue
		}
		return a2, b2, c2, alt.kind, true
	}
	return 0, 0, 0, 0, false
}

// operand parses a (possibly space-padded) `n[i]` gate operand; strict
// about overflow, like the old strconv.Atoi-based path.
func operand(b []byte) (int, error) {
	idx, over, ok := netRef(bytes.TrimSpace(b))
	if !ok || over {
		return 0, fmt.Errorf("operand %q", b)
	}
	return idx, nil
}

// splitBin splits `lhs <op> rhs` when op occurs exactly once and both
// sides are net references.
func splitBin(b []byte, op byte) (int, int, bool) {
	i := bytes.IndexByte(b, op)
	if i < 0 || bytes.IndexByte(b[i+1:], op) >= 0 {
		return 0, 0, false
	}
	a, e1 := operand(b[:i])
	c, e2 := operand(b[i+1:])
	if e1 != nil || e2 != nil {
		return 0, 0, false
	}
	return a, c, true
}

// assign handles both the port-tie assigns and the combinational cells.
func (p *vparser) assign(lhs, rhs, comment []byte) error {
	outIdx, _, isNet := netRef(lhs)
	if !isNet {
		// Output tie: name[i] = n[k].
		if portRefOK(lhs) {
			idx, _, rOK := netRef(rhs)
			if !rOK {
				return fmt.Errorf("output assign rhs %q", rhs)
			}
			if p.outAssigns == nil {
				p.outAssigns = make(map[string]int)
			}
			p.outAssigns[string(lhs)] = idx
			return nil
		}
		return fmt.Errorf("assign lhs %q", lhs)
	}

	// Input tie: n[k] = portname or portname[i].
	if !bytes.ContainsAny(rhs, "&|^~?'") {
		if in, _, k := netRef(rhs); k {
			// n[a] = n[b]: a BUF or CLKBUF (comment disambiguates).
			kind := cell.BUF
			if bytes.HasPrefix(comment, litClkbuf) {
				kind = cell.CLKBUF
			}
			p.addComb(kind, comment, outIdx, in)
			return nil
		}
		// Port bit (or scalar port, e.g. the clock).
		if p.portBits == nil {
			p.portBits = make(map[string]NetID)
		}
		p.portBits[string(rhs)] = p.net(outIdx)
		return nil
	}

	switch {
	case string(rhs) == "1'b0":
		p.b.AddRaw(cell.TIE0, p.cellName(comment), nil, NoNet, p.net(outIdx), false)
	case string(rhs) == "1'b1":
		p.b.AddRaw(cell.TIE1, p.cellName(comment), nil, NoNet, p.net(outIdx), false)
	case bytes.IndexByte(rhs, '?') >= 0:
		// s ? b : a
		s, bb, aa, ok := p.parseMux(rhs)
		if !ok {
			return fmt.Errorf("mux %q", rhs)
		}
		p.addComb(cell.MUX2, comment, outIdx, aa, bb, s)
	case bytes.HasPrefix(rhs, litNotPar2) && bytes.IndexByte(rhs, '&') >= 0 && bytes.IndexByte(rhs, '|') >= 0:
		a, b2, c, kind, ok := p.parseAOI(rhs)
		if !ok {
			return fmt.Errorf("aoi/oai %q", rhs)
		}
		p.addComb(kind, comment, outIdx, a, b2, c)
	case bytes.HasPrefix(rhs, litNotPar):
		inner := bytes.TrimSuffix(bytes.TrimPrefix(rhs, litNotPar), []byte{')'})
		for _, e := range negOps {
			if a, b2, ok := splitBin(inner, e.op); ok {
				p.addComb(e.kind, comment, outIdx, a, b2)
				return nil
			}
		}
		return fmt.Errorf("negated gate %q", rhs)
	case rhs[0] == '~':
		a, err := operand(rhs[1:])
		if err != nil {
			return err
		}
		p.addComb(cell.INV, comment, outIdx, a)
	default:
		for _, e := range binOps {
			if a, b2, ok := splitBin(rhs, e.op); ok {
				kind := e.kind
				if kind == cell.AND2 && bytes.HasPrefix(comment, litClkgate) {
					kind = cell.CLKGATE
				}
				p.addComb(kind, comment, outIdx, a, b2)
				return nil
			}
		}
		return fmt.Errorf("gate %q", rhs)
	}
	return nil
}

// cellName resolves a cell's instance name from its `// name` comment.
func (p *vparser) cellName(comment []byte) string {
	c := bytes.TrimSpace(comment)
	// Strip clock-cell markers until none remain so that naming is
	// idempotent across export/parse round trips: Verilog() re-prefixes
	// the marker, and a single trim would leave a residual prefix that
	// shifts the name on every round.
	for {
		s := bytes.TrimPrefix(bytes.TrimPrefix(c, litClkbufSp), litClkgateSp)
		if len(s) == len(c) {
			break
		}
		c = s
	}
	if len(c) == 0 {
		p.nameBuf = append(p.nameBuf[:0], "cell$"...)
		p.nameBuf = strconv.AppendInt(p.nameBuf, int64(p.cells), 10)
		return string(p.nameBuf)
	}
	return p.b.intern(c)
}

func (p *vparser) addComb(kind cell.Kind, comment []byte, out int, ins ...int) {
	var pins [cell.MaxArity]NetID
	for i, n := range ins {
		pins[i] = p.net(n)
	}
	p.b.addCombRaw(kind, p.cellName(comment), pins, len(ins), p.net(out))
	p.cells++
}

// finish wires ports and validates.
func (p *vparser) finish() (*Netlist, error) {
	// The first scalar input is the clock by convention of Verilog().
	declared := func(name string, width int) Bus {
		bus := make(Bus, width)
		for i := range bus {
			key := fmt.Sprintf("%s[%d]", name, i)
			if width == 1 {
				if n, ok := p.portBits[name]; ok {
					bus[i] = n
					continue
				}
			}
			n, ok := p.portBits[key]
			if !ok {
				// Unreferenced input bit: allocate a dangling net.
				n = p.b.Net()
			}
			bus[i] = n
		}
		return bus
	}

	clockDone := false
	for _, in := range p.inputs {
		if !clockDone && in.width == 1 && (in.name == "clk" || p.clockIsh(in.name)) {
			// Clock: the net tied from it is the clock root.
			n, ok := p.portBits[in.name]
			if !ok {
				n = p.b.Net()
			}
			p.b.declareClock(in.name, n)
			clockDone = true
			continue
		}
		p.b.declareInput(in.name, declared(in.name, in.width))
	}
	for _, out := range p.outputs {
		bus := make(Bus, out.width)
		for i := range bus {
			key := fmt.Sprintf("%s[%d]", out.name, i)
			idx, ok := p.outAssigns[key]
			if !ok {
				return nil, fmt.Errorf("output bit %s never assigned", key)
			}
			bus[i] = p.net(idx)
		}
		p.b.OutputBus(out.name, bus)
	}
	nl, err := p.b.Build()
	if err != nil {
		return nil, err
	}
	nl.Name = p.name
	return nl, nil
}

// clockIsh heuristically treats a 1-bit input named like a clock as the
// clock root.
func (p *vparser) clockIsh(portName string) bool {
	return strings.Contains(portName, "clk") || strings.Contains(portName, "clock")
}
