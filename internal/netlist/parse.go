package netlist

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"

	"repro/internal/cell"
)

// ParseVerilog reads back a structural module in the dialect produced by
// (*Netlist).Verilog — the format this repository ships failing netlists
// in — and reconstructs the netlist. Together with Verilog() it gives a
// lossless round trip for every cell kind, port, clock connection and
// DFF reset value, so failure models exported as circuit-level artifacts
// (§3.3.2) can be reloaded and simulated.
func ParseVerilog(src string) (*Netlist, error) {
	p := &vparser{b: NewBuilder("")}
	for ln, raw := range strings.Split(src, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "//") {
			continue
		}
		if err := p.line(line); err != nil {
			return nil, fmt.Errorf("line %d: %w", ln+1, err)
		}
	}
	if !p.done {
		return nil, fmt.Errorf("missing endmodule")
	}
	if p.name == "" {
		return nil, fmt.Errorf("missing module header")
	}
	return p.finish()
}

type vparser struct {
	b    *Builder
	name string
	done bool

	// netOf maps "n[i]" indices to builder nets (allocated on first use).
	nets map[int]NetID
	// port bit nets by "name[i]".
	portBits map[string]NetID
	inputs   []parsedPort
	outputs  []parsedPort
	clock    string

	// output-side assigns: port bit -> flat net (resolved at finish).
	outAssigns map[string]int

	cells int
}

type parsedPort struct {
	name  string
	width int
}

// maxPortWidth bounds declared port widths. The widest real port in this
// repository is 32 bits; the cap keeps a hostile/corrupt declaration like
// `input wire [999999999:0]` from allocating gigabytes before Build can
// reject the module.
const maxPortWidth = 4096

func portWidth(hiStr, portName string) (int, error) {
	if portName == "n" {
		// "n" is the flat wire vector Verilog() emits; a port with that
		// name would alias it and break the round trip.
		return 0, fmt.Errorf("port name %q is reserved", portName)
	}
	if hiStr == "" {
		return 1, nil
	}
	hi, err := strconv.Atoi(hiStr)
	if err != nil || hi < 0 || hi >= maxPortWidth {
		return 0, fmt.Errorf("port %s: width %s out of range [1,%d]", portName, hiStr, maxPortWidth)
	}
	return hi + 1, nil
}

var (
	reModule  = regexp.MustCompile(`^module\s+(\w+)\s*\(`)
	reInput   = regexp.MustCompile(`^input wire (?:\[(\d+):0\] )?(\w+);$`)
	reOutput  = regexp.MustCompile(`^output wire (?:\[(\d+):0\] )?(\w+);$`)
	reWire    = regexp.MustCompile(`^wire \[(\d+):0\] n;$`)
	reAssign  = regexp.MustCompile(`^assign (.+?) = (.+?);(?:\s*//\s*(.*))?$`)
	reDFF     = regexp.MustCompile(`^dff #\(\.INIT\(1'b([01])\)\) (\w+) \(\.clk\(n\[(\d+)\]\), \.d\(n\[(\d+)\]\), \.q\(n\[(\d+)\]\)\);$`)
	reNetRef  = regexp.MustCompile(`^n\[(\d+)\]$`)
	rePortRef = regexp.MustCompile(`^(\w+)\[(\d+)\]$`)
)

func (p *vparser) net(idx int) NetID {
	if p.nets == nil {
		p.nets = make(map[int]NetID)
	}
	if n, ok := p.nets[idx]; ok {
		return n
	}
	n := p.b.Net()
	p.nets[idx] = n
	return n
}

func (p *vparser) line(line string) error {
	switch {
	case reModule.MatchString(line):
		p.name = reModule.FindStringSubmatch(line)[1]
		return nil
	case line == "endmodule":
		p.done = true
		return nil
	case reWire.MatchString(line):
		return nil // flat wire vector declaration; nets allocated lazily
	}
	if m := reInput.FindStringSubmatch(line); m != nil {
		width, err := portWidth(m[1], m[2])
		if err != nil {
			return err
		}
		p.inputs = append(p.inputs, parsedPort{m[2], width})
		return nil
	}
	if m := reOutput.FindStringSubmatch(line); m != nil {
		width, err := portWidth(m[1], m[2])
		if err != nil {
			return err
		}
		p.outputs = append(p.outputs, parsedPort{m[2], width})
		return nil
	}
	if m := reDFF.FindStringSubmatch(line); m != nil {
		init := m[1] == "1"
		clk, _ := strconv.Atoi(m[3])
		d, _ := strconv.Atoi(m[4])
		q, _ := strconv.Atoi(m[5])
		p.b.AddRaw(cell.DFF, m[2], []NetID{p.net(d)}, p.net(clk), p.net(q), init)
		p.cells++
		return nil
	}
	if m := reAssign.FindStringSubmatch(line); m != nil {
		return p.assign(strings.TrimSpace(m[1]), strings.TrimSpace(m[2]), strings.TrimSpace(m[3]))
	}
	return fmt.Errorf("unrecognized construct %q", line)
}

// assign handles both the port-tie assigns and the combinational cells.
func (p *vparser) assign(lhs, rhs, comment string) error {
	nm := reNetRef.FindStringSubmatch(lhs)
	if nm == nil {
		// Output tie: name[i] = n[k].
		if pm := rePortRef.FindStringSubmatch(lhs); pm != nil {
			rm := reNetRef.FindStringSubmatch(rhs)
			if rm == nil {
				return fmt.Errorf("output assign rhs %q", rhs)
			}
			if p.outAssigns == nil {
				p.outAssigns = make(map[string]int)
			}
			idx, _ := strconv.Atoi(rm[1])
			p.outAssigns[lhs] = idx
			return nil
		}
		return fmt.Errorf("assign lhs %q", lhs)
	}
	outIdx, _ := strconv.Atoi(nm[1])

	// Input tie: n[k] = portname or portname[i].
	if !strings.ContainsAny(rhs, "&|^~?'") {
		if reNetRef.MatchString(rhs) {
			// n[a] = n[b]: a BUF or CLKBUF (comment disambiguates).
			in, _ := strconv.Atoi(reNetRef.FindStringSubmatch(rhs)[1])
			kind := cell.BUF
			if strings.HasPrefix(comment, "clkbuf") {
				kind = cell.CLKBUF
			}
			p.addComb(kind, comment, outIdx, in)
			return nil
		}
		// Port bit (or scalar port, e.g. the clock).
		if p.portBits == nil {
			p.portBits = make(map[string]NetID)
		}
		p.portBits[rhs] = p.net(outIdx)
		return nil
	}

	in := func(s string) (int, error) {
		m := reNetRef.FindStringSubmatch(strings.TrimSpace(s))
		if m == nil {
			return 0, fmt.Errorf("operand %q", s)
		}
		return strconv.Atoi(m[1])
	}

	switch {
	case rhs == "1'b0":
		p.b.AddRaw(cell.TIE0, name(comment, p.cells), nil, NoNet, p.net(outIdx), false)
	case rhs == "1'b1":
		p.b.AddRaw(cell.TIE1, name(comment, p.cells), nil, NoNet, p.net(outIdx), false)
	case strings.Contains(rhs, "?"):
		// s ? b : a
		var s, bb, aa int
		if _, err := fmt.Sscanf(strings.ReplaceAll(rhs, " ", ""), "n[%d]?n[%d]:n[%d]", &s, &bb, &aa); err != nil {
			return fmt.Errorf("mux %q: %w", rhs, err)
		}
		p.addComb(cell.MUX2, comment, outIdx, aa, bb, s)
	case strings.HasPrefix(rhs, "~((") && strings.Contains(rhs, "&") && strings.Contains(rhs, "|"):
		var a, b2, c int
		clean := strings.ReplaceAll(rhs, " ", "")
		if _, err := fmt.Sscanf(clean, "~((n[%d]&n[%d])|n[%d])", &a, &b2, &c); err == nil {
			p.addComb(cell.AOI21, comment, outIdx, a, b2, c)
		} else if _, err := fmt.Sscanf(clean, "~((n[%d]|n[%d])&n[%d])", &a, &b2, &c); err == nil {
			p.addComb(cell.OAI21, comment, outIdx, a, b2, c)
		} else {
			return fmt.Errorf("aoi/oai %q", rhs)
		}
	case strings.HasPrefix(rhs, "~("):
		inner := strings.TrimSuffix(strings.TrimPrefix(rhs, "~("), ")")
		for opStr, kind := range map[string]cell.Kind{"&": cell.NAND2, "|": cell.NOR2, "^": cell.XNOR2} {
			parts := strings.Split(inner, opStr)
			if len(parts) == 2 {
				a, err1 := in(parts[0])
				b2, err2 := in(parts[1])
				if err1 == nil && err2 == nil {
					p.addComb(kind, comment, outIdx, a, b2)
					return nil
				}
			}
		}
		return fmt.Errorf("negated gate %q", rhs)
	case strings.HasPrefix(rhs, "~"):
		a, err := in(rhs[1:])
		if err != nil {
			return err
		}
		p.addComb(cell.INV, comment, outIdx, a)
	default:
		for opStr, kind := range map[string]cell.Kind{"&": cell.AND2, "|": cell.OR2, "^": cell.XOR2} {
			parts := strings.Split(rhs, opStr)
			if len(parts) == 2 {
				a, err1 := in(parts[0])
				b2, err2 := in(parts[1])
				if err1 == nil && err2 == nil {
					kind2 := kind
					if kind == cell.AND2 && strings.HasPrefix(comment, "clkgate") {
						kind2 = cell.CLKGATE
					}
					p.addComb(kind2, comment, outIdx, a, b2)
					return nil
				}
			}
		}
		return fmt.Errorf("gate %q", rhs)
	}
	return nil
}

func name(comment string, seq int) string {
	c := strings.TrimSpace(comment)
	// Strip clock-cell markers until none remain so that naming is
	// idempotent across export/parse round trips: Verilog() re-prefixes
	// the marker, and a single trim would leave a residual prefix that
	// shifts the name on every round.
	for {
		stripped := c
		for _, prefix := range []string{"clkbuf ", "clkgate "} {
			stripped = strings.TrimPrefix(stripped, prefix)
		}
		if stripped == c {
			break
		}
		c = stripped
	}
	if c == "" {
		return fmt.Sprintf("cell$%d", seq)
	}
	return c
}

func (p *vparser) addComb(kind cell.Kind, comment string, out int, ins ...int) {
	nets := make([]NetID, len(ins))
	for i, n := range ins {
		nets[i] = p.net(n)
	}
	p.b.AddRaw(kind, name(comment, p.cells), nets, NoNet, p.net(out), false)
	p.cells++
}

// finish wires ports and validates.
func (p *vparser) finish() (*Netlist, error) {
	// The first scalar input is the clock by convention of Verilog().
	declared := func(name string, width int) (Bus, error) {
		bus := make(Bus, width)
		for i := range bus {
			key := fmt.Sprintf("%s[%d]", name, i)
			if width == 1 {
				if n, ok := p.portBits[name]; ok {
					bus[i] = n
					continue
				}
			}
			n, ok := p.portBits[key]
			if !ok {
				// Unreferenced input bit: allocate a dangling net.
				n = p.b.Net()
			}
			bus[i] = n
		}
		return bus, nil
	}

	clockDone := false
	for _, in := range p.inputs {
		if !clockDone && in.width == 1 && (in.name == "clk" || p.clockIsh(in.name)) {
			// Clock: the net tied from it is the clock root.
			n, ok := p.portBits[in.name]
			if !ok {
				n = p.b.Net()
			}
			p.b.declareClock(in.name, n)
			clockDone = true
			continue
		}
		bus, err := declared(in.name, in.width)
		if err != nil {
			return nil, err
		}
		p.b.declareInput(in.name, bus)
	}
	for _, out := range p.outputs {
		bus := make(Bus, out.width)
		for i := range bus {
			key := fmt.Sprintf("%s[%d]", out.name, i)
			idx, ok := p.outAssigns[key]
			if !ok {
				return nil, fmt.Errorf("output bit %s never assigned", key)
			}
			bus[i] = p.net(idx)
		}
		p.b.OutputBus(out.name, bus)
	}
	nl, err := p.b.Build()
	if err != nil {
		return nil, err
	}
	nl.Name = p.name
	return nl, nil
}

// clockIsh heuristically treats a 1-bit input read only by clock cells
// and DFF clock pins as the clock.
func (p *vparser) clockIsh(portName string) bool {
	return strings.Contains(portName, "clk") || strings.Contains(portName, "clock")
}
