package netlist

import (
	"errors"
	"fmt"
	"strconv"

	"repro/internal/cell"
)

// Builder constructs (or extends) a Netlist. All errors are deferred to
// Build so circuit-construction code can stay free of error plumbing.
//
// Cell construction is arena-backed for million-cell netlists: cells live
// in one growing []Cell, and every cell's input-pin slice is carved out of
// chunked []NetID slabs (inArena) instead of being its own heap object.
// Chunks are never reallocated once handed out, so the slices stay valid
// as the builder grows; a netlist with 10^6 two-input cells costs a few
// dozen slab allocations instead of 10^6.
type Builder struct {
	name      string
	cells     []Cell
	numNets   int
	inputs    []Port
	outputs   []Port
	clockRoot NetID
	netNames  map[NetID]string
	errs      []error
	kindSeq   [cell.NumKinds]int

	// inArena is the active input-pin slab. When a cell's pins don't fit
	// in the remaining capacity a fresh chunk replaces it; earlier chunks
	// stay alive through the cell slices that point into them.
	inArena []NetID

	// interned dedupes instance-name strings (bounded; see intern). Built
	// lazily — most programmatic construction never repeats a name.
	interned map[string]string

	// nameBuf backs autoName formatting so the per-cell cost is one
	// string allocation, not a fmt.Sprintf round trip.
	nameBuf []byte
}

// arenaChunk is the input-pin slab granularity. Large enough that slab
// bookkeeping vanishes against million-cell imports, small enough that a
// tiny netlist doesn't hold megabytes.
const arenaChunk = 1 << 16

// internCap bounds the interning table. Repeated names (hierarchical
// prefixes, re-imported tool output) dedupe; once the table is full,
// further unique names are stored without an extra index entry, so the
// table can never grow past a fixed footprint.
const internCap = 4096

// NewBuilder returns an empty builder for a module with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{name: name, clockRoot: NoNet, netNames: make(map[NetID]string)}
}

// NewBuilderFrom returns a builder pre-populated with an existing
// netlist's contents. Net and cell IDs are preserved, so instrumentation
// passes can reference nets of the original design directly. Output ports
// start out cleared: instrumentation usually rewires them.
func NewBuilderFrom(nl *Netlist) *Builder {
	b := NewBuilder(nl.Name)
	b.numNets = nl.NumNets
	b.clockRoot = nl.ClockRoot
	b.inputs = clonePorts(nl.Inputs)
	b.cells = make([]Cell, len(nl.Cells))
	// One slab holds every copied pin list; per-cell slices index into it.
	total := 0
	for i := range nl.Cells {
		total += len(nl.Cells[i].In)
	}
	slab := make([]NetID, 0, total)
	for i, c := range nl.Cells {
		if len(c.In) > 0 {
			lo := len(slab)
			slab = append(slab, c.In...)
			c.In = slab[lo:len(slab):len(slab)]
		}
		b.cells[i] = c
	}
	for k, v := range nl.netNames {
		b.netNames[k] = v
	}
	for _, c := range nl.Cells {
		b.kindSeq[c.Kind]++
	}
	return b
}

// Reserve pre-sizes the builder for a netlist of roughly the given cell
// count and total input-pin count, so construction at scale never pays
// for incremental table growth. Callers that know the counts up front
// (the streaming Verilog importer learns them from the wire declaration;
// generators can compute them) call it once; calling it late or with
// small values is harmless.
func (b *Builder) Reserve(cells, totalInputs int) {
	if cap(b.cells)-len(b.cells) < cells {
		grown := make([]Cell, len(b.cells), len(b.cells)+cells)
		copy(grown, b.cells)
		b.cells = grown
	}
	if totalInputs > arenaChunk && cap(b.inArena)-len(b.inArena) < totalInputs {
		b.inArena = make([]NetID, 0, totalInputs)
	}
}

// arenaIn copies an input-pin list into the active slab and returns the
// stable full-capacity slice. Empty lists return nil, matching the
// pre-arena behaviour of append([]NetID(nil), in...).
func (b *Builder) arenaIn(in []NetID) []NetID {
	n := len(in)
	if n == 0 {
		return nil
	}
	if cap(b.inArena)-len(b.inArena) < n {
		sz := arenaChunk
		if n > sz {
			sz = n
		}
		b.inArena = make([]NetID, 0, sz)
	}
	lo := len(b.inArena)
	b.inArena = append(b.inArena, in...)
	return b.inArena[lo : lo+n : lo+n]
}

// intern returns a string for the byte slice, deduping repeated names
// through a bounded table. The map lookup on the fast path does not
// allocate (the compiler recognizes the m[string(b)] idiom).
func (b *Builder) intern(s []byte) string {
	if len(s) == 0 {
		return ""
	}
	if b.interned == nil {
		b.interned = make(map[string]string)
	}
	if v, ok := b.interned[string(s)]; ok {
		return v
	}
	v := string(s)
	if len(b.interned) < internCap {
		b.interned[v] = v
	}
	return v
}

func (b *Builder) errf(format string, args ...any) {
	b.errs = append(b.errs, fmt.Errorf(format, args...))
}

// Net allocates a fresh unnamed net.
func (b *Builder) Net() NetID {
	n := NetID(b.numNets)
	b.numNets++
	return n
}

// NamedNet allocates a fresh net with a debug name.
func (b *Builder) NamedNet(name string) NetID {
	n := b.Net()
	b.netNames[n] = name
	return n
}

// NewBus allocates width fresh nets.
func (b *Builder) NewBus(width int) Bus {
	bus := make(Bus, width)
	for i := range bus {
		bus[i] = b.Net()
	}
	return bus
}

// Input declares a 1-bit input port and returns its net.
func (b *Builder) Input(name string) NetID {
	n := b.NamedNet(name)
	b.inputs = append(b.inputs, Port{Name: name, Bits: Bus{n}})
	return n
}

// InputBus declares a multi-bit input port and returns its nets (LSB
// first).
func (b *Builder) InputBus(name string, width int) Bus {
	bus := make(Bus, width)
	for i := range bus {
		bus[i] = b.NamedNet(fmt.Sprintf("%s[%d]", name, i))
	}
	b.inputs = append(b.inputs, Port{Name: name, Bits: bus})
	return bus
}

// Output declares a 1-bit output port driving from net n.
func (b *Builder) Output(name string, n NetID) {
	b.outputs = append(b.outputs, Port{Name: name, Bits: Bus{n}})
	if _, named := b.netNames[n]; !named {
		b.netNames[n] = name
	}
}

// OutputBus declares a multi-bit output port.
func (b *Builder) OutputBus(name string, bits Bus) {
	b.outputs = append(b.outputs, Port{Name: name, Bits: append(Bus(nil), bits...)})
	for i, n := range bits {
		if _, named := b.netNames[n]; !named {
			b.netNames[n] = fmt.Sprintf("%s[%d]", name, i)
		}
	}
}

// Clock declares the primary clock pin and returns its net. At most one
// clock root may be declared.
func (b *Builder) Clock(name string) NetID {
	if b.clockRoot != NoNet {
		b.errf("clock root already declared")
		return b.clockRoot
	}
	b.clockRoot = b.NamedNet(name)
	return b.clockRoot
}

func (b *Builder) autoName(k cell.Kind) string {
	b.kindSeq[k]++
	b.nameBuf = append(b.nameBuf[:0], k.String()...)
	b.nameBuf = append(b.nameBuf, '$')
	b.nameBuf = strconv.AppendInt(b.nameBuf, int64(b.kindSeq[k]), 10)
	return string(b.nameBuf)
}

// Add instantiates a combinational or clock cell with the given inputs and
// returns its (freshly allocated) output net.
func (b *Builder) Add(k cell.Kind, in ...NetID) NetID {
	return b.AddNamed(k, b.autoName(k), in...)
}

// AddNamed is Add with an explicit instance name.
func (b *Builder) AddNamed(k cell.Kind, name string, in ...NetID) NetID {
	if k.IsSequential() {
		b.errf("cell %s: use AddDFF for flip-flops", name)
		return b.Net()
	}
	if len(in) != k.NumInputs() {
		b.errf("cell %s (%s): got %d inputs, want %d", name, k, len(in), k.NumInputs())
	}
	out := b.Net()
	b.cells = append(b.cells, Cell{Kind: k, Name: name, In: b.arenaIn(in), Clk: NoNet, Out: out})
	return out
}

// AddDFF instantiates a flip-flop sampling d on the rising edge of clk,
// with the given reset value, and returns its Q net.
func (b *Builder) AddDFF(d, clk NetID, init bool) NetID {
	return b.AddDFFNamed(b.autoName(cell.DFF), d, clk, init)
}

// AddDFFNamed is AddDFF with an explicit instance name.
func (b *Builder) AddDFFNamed(name string, d, clk NetID, init bool) NetID {
	out := b.Net()
	b.cells = append(b.cells, Cell{Kind: cell.DFF, Name: name, In: b.arenaIn([]NetID{d}), Clk: clk, Out: out, Init: init})
	return out
}

// AddRaw instantiates a cell with a caller-chosen output net (which must
// have been allocated with Net and not be driven elsewhere). It exists
// for instrumentation passes that pre-allocate nets to wire mutually
// recursive shadow logic; Build validates the result like any other cell.
func (b *Builder) AddRaw(k cell.Kind, name string, in []NetID, clk, out NetID, init bool) {
	b.cells = append(b.cells, Cell{
		Kind: k, Name: name,
		In:  b.arenaIn(in),
		Clk: clk, Out: out, Init: init,
	})
}

// addDFFRaw is AddRaw for the streaming parser's DFF lines: the D pin
// goes straight into the arena without a caller-side temporary slice.
func (b *Builder) addDFFRaw(name string, d, clk, out NetID, init bool) {
	if cap(b.inArena)-len(b.inArena) < 1 {
		b.inArena = make([]NetID, 0, arenaChunk)
	}
	lo := len(b.inArena)
	b.inArena = append(b.inArena, d)
	b.cells = append(b.cells, Cell{
		Kind: cell.DFF, Name: name,
		In:  b.inArena[lo : lo+1 : lo+1],
		Clk: clk, Out: out, Init: init,
	})
}

// addCombRaw is AddRaw for the streaming parser's combinational lines:
// up to cell.MaxArity pins copied from a fixed-size array, no temporary
// slice allocation.
func (b *Builder) addCombRaw(k cell.Kind, name string, in [cell.MaxArity]NetID, nIn int, out NetID) {
	if cap(b.inArena)-len(b.inArena) < nIn {
		b.inArena = make([]NetID, 0, arenaChunk)
	}
	lo := len(b.inArena)
	b.inArena = append(b.inArena, in[:nIn]...)
	var pins []NetID
	if nIn > 0 {
		pins = b.inArena[lo : lo+nIn : lo+nIn]
	}
	b.cells = append(b.cells, Cell{Kind: k, Name: name, In: pins, Clk: NoNet, Out: out})
}

// RewireInput repoints input pin `pin` of cell cid to read from net n.
// Used by instrumentation passes on imported netlists.
func (b *Builder) RewireInput(cid CellID, pin int, n NetID) {
	if int(cid) >= len(b.cells) || pin >= len(b.cells[cid].In) {
		b.errf("RewireInput(%d,%d): out of range", cid, pin)
		return
	}
	b.cells[cid].In[pin] = n
}

// CellOut returns the output net of cell cid as currently built.
func (b *Builder) CellOut(cid CellID) NetID { return b.cells[cid].Out }

// Cell returns a copy of cell cid as currently built.
func (b *Builder) Cell(cid CellID) Cell {
	c := b.cells[cid]
	c.In = append([]NetID(nil), c.In...)
	return c
}

// NumCells reports the number of cells added so far.
func (b *Builder) NumCells() int { return len(b.cells) }

// Build validates the netlist and computes the derived structures
// (drivers, topological order). It returns an error if any net is
// multiply driven or undriven, if a port references an invalid net, or if
// the combinational logic contains a cycle.
func (b *Builder) Build() (*Netlist, error) {
	if len(b.errs) > 0 {
		return nil, errors.Join(b.errs...)
	}
	nl := &Netlist{
		Name:      b.name,
		Cells:     b.cells,
		NumNets:   b.numNets,
		Inputs:    b.inputs,
		Outputs:   b.outputs,
		ClockRoot: b.clockRoot,
		netNames:  b.netNames,
	}
	if err := nl.rebuild(); err != nil {
		return nil, err
	}
	return nl, nil
}

// MustBuild is Build but panics on error; for circuit constructors whose
// input space is fully controlled by this repository.
func (b *Builder) MustBuild() *Netlist {
	nl, err := b.Build()
	if err != nil {
		panic(fmt.Sprintf("netlist %s: %v", b.name, err))
	}
	return nl
}

// rebuild recomputes drivers and the topological order, validating
// structural invariants. Every derived table is sized with a counting
// prepass — the levelization builds a CSR of ordering edges instead of
// per-net reader slices, so a million-cell Build costs a handful of
// large allocations rather than one small slice per net.
func (nl *Netlist) rebuild() error {
	driver := make([]CellID, nl.NumNets)
	for i := range driver {
		driver[i] = NoCell
	}
	nl.driver = driver // NetName (used in error messages below) needs it
	external := make([]bool, nl.NumNets)
	for _, p := range nl.Inputs {
		for _, n := range p.Bits {
			if n < 0 || int(n) >= nl.NumNets {
				return fmt.Errorf("input port %s references invalid net %d", p.Name, n)
			}
			external[n] = true
		}
	}
	if nl.ClockRoot != NoNet {
		external[nl.ClockRoot] = true
	}
	for i := range nl.Cells {
		c := &nl.Cells[i]
		if c.Out < 0 || int(c.Out) >= nl.NumNets {
			return fmt.Errorf("cell %s drives invalid net %d", c.Name, c.Out)
		}
		if driver[c.Out] != NoCell {
			return fmt.Errorf("net %s multiply driven by %s and %s",
				nl.NetName(c.Out), nl.Cells[driver[c.Out]].Name, c.Name)
		}
		if external[c.Out] {
			return fmt.Errorf("cell %s drives primary input net %s", c.Name, nl.NetName(c.Out))
		}
		driver[c.Out] = CellID(i)
	}
	used := make([]bool, nl.NumNets)
	for i := range nl.Cells {
		c := &nl.Cells[i]
		// The evaluation engine flattens input lists into fixed
		// cell.MaxArity-wide arrays (and the old interpreter's settle
		// buffer had the same silent cap); reject oversized fan-in here so
		// it can never silently drop an input downstream.
		if len(c.In) > cell.MaxArity {
			return fmt.Errorf("cell %s (%s) has %d inputs; the evaluation engine supports at most %d",
				c.Name, c.Kind, len(c.In), cell.MaxArity)
		}
		for _, in := range c.In {
			if in < 0 || int(in) >= nl.NumNets {
				return fmt.Errorf("cell %s reads invalid net %d", c.Name, in)
			}
			used[in] = true
		}
		if c.Clk != NoNet {
			used[c.Clk] = true
		}
	}
	for _, p := range nl.Outputs {
		for _, n := range p.Bits {
			if n < 0 || int(n) >= nl.NumNets {
				return fmt.Errorf("output port %s references invalid net %d", p.Name, n)
			}
			used[n] = true
		}
	}
	for n := 0; n < nl.NumNets; n++ {
		if used[n] && driver[NetID(n)] == NoCell && !external[n] {
			return fmt.Errorf("net %s is read but never driven", nl.NetName(NetID(n)))
		}
	}
	nl.driver = driver

	// Levelize combinational + clock cells with Kahn's algorithm over a
	// CSR of ordering edges. A cell depends on the drivers of its input
	// pins (and, for clock cells, the clock pin is In[0] so it is
	// covered); DFF outputs and primary inputs are sources. The edge
	// order — per net, reader cells in ascending cell order — and the
	// FIFO processing reproduce exactly the order the per-net reader
	// slices produced, so downstream compiled artifacts (engine op
	// streams, CNF variable order) are byte-identical.
	indeg := make([]int32, len(nl.Cells))
	edgeCnt := make([]int32, nl.NumNets+1)
	want := 0
	for i := range nl.Cells {
		c := &nl.Cells[i]
		if c.Kind.IsSequential() {
			continue
		}
		want++
		deg := int32(0)
		for _, in := range c.In {
			if d := driver[in]; d != NoCell && !nl.Cells[d].Kind.IsSequential() {
				deg++
				edgeCnt[in+1]++
			}
		}
		indeg[i] = deg
	}
	for n := 0; n < nl.NumNets; n++ {
		edgeCnt[n+1] += edgeCnt[n]
	}
	edges := make([]CellID, edgeCnt[nl.NumNets])
	cursor := make([]int32, nl.NumNets)
	for n := range cursor {
		cursor[n] = edgeCnt[n]
	}
	for i := range nl.Cells {
		c := &nl.Cells[i]
		if c.Kind.IsSequential() {
			continue
		}
		for _, in := range c.In {
			if d := driver[in]; d != NoCell && !nl.Cells[d].Kind.IsSequential() {
				edges[cursor[in]] = CellID(i)
				cursor[in]++
			}
		}
	}
	topo := make([]CellID, 0, want)
	for i := range nl.Cells {
		if !nl.Cells[i].Kind.IsSequential() && indeg[i] == 0 {
			topo = append(topo, CellID(i))
		}
	}
	for head := 0; head < len(topo); head++ {
		out := nl.Cells[topo[head]].Out
		for _, r := range edges[edgeCnt[out]:edgeCnt[out+1]] {
			indeg[r]--
			if indeg[r] == 0 {
				topo = append(topo, r)
			}
		}
	}
	if len(topo) != want {
		var stuck []string
		for i, d := range indeg {
			if d > 0 && !nl.Cells[i].Kind.IsSequential() {
				stuck = append(stuck, nl.Cells[i].Name)
				if len(stuck) >= 8 {
					break
				}
			}
		}
		return fmt.Errorf("combinational cycle involving %v", stuck)
	}
	nl.topo = topo
	return nil
}

// declareInput registers pre-allocated nets as an input port (used by
// the Verilog parser, which discovers nets before ports).
func (b *Builder) declareInput(name string, bits Bus) {
	for i, n := range bits {
		if _, named := b.netNames[n]; !named {
			b.netNames[n] = fmt.Sprintf("%s[%d]", name, i)
		}
	}
	b.inputs = append(b.inputs, Port{Name: name, Bits: append(Bus(nil), bits...)})
}

// declareClock registers a pre-allocated net as the clock root.
func (b *Builder) declareClock(name string, n NetID) {
	if _, named := b.netNames[n]; !named {
		b.netNames[n] = name
	}
	b.clockRoot = n
}
