package netlist

import (
	"errors"
	"fmt"

	"repro/internal/cell"
)

// Builder constructs (or extends) a Netlist. All errors are deferred to
// Build so circuit-construction code can stay free of error plumbing.
type Builder struct {
	name      string
	cells     []Cell
	numNets   int
	inputs    []Port
	outputs   []Port
	clockRoot NetID
	netNames  map[NetID]string
	errs      []error
	kindSeq   [cell.NumKinds]int
}

// NewBuilder returns an empty builder for a module with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{name: name, clockRoot: NoNet, netNames: make(map[NetID]string)}
}

// NewBuilderFrom returns a builder pre-populated with an existing
// netlist's contents. Net and cell IDs are preserved, so instrumentation
// passes can reference nets of the original design directly. Output ports
// start out cleared: instrumentation usually rewires them.
func NewBuilderFrom(nl *Netlist) *Builder {
	b := NewBuilder(nl.Name)
	b.numNets = nl.NumNets
	b.clockRoot = nl.ClockRoot
	b.inputs = clonePorts(nl.Inputs)
	b.cells = make([]Cell, len(nl.Cells))
	for i, c := range nl.Cells {
		c.In = append([]NetID(nil), c.In...)
		b.cells[i] = c
	}
	for k, v := range nl.netNames {
		b.netNames[k] = v
	}
	for _, c := range nl.Cells {
		b.kindSeq[c.Kind]++
	}
	return b
}

func (b *Builder) errf(format string, args ...any) {
	b.errs = append(b.errs, fmt.Errorf(format, args...))
}

// Net allocates a fresh unnamed net.
func (b *Builder) Net() NetID {
	n := NetID(b.numNets)
	b.numNets++
	return n
}

// NamedNet allocates a fresh net with a debug name.
func (b *Builder) NamedNet(name string) NetID {
	n := b.Net()
	b.netNames[n] = name
	return n
}

// NewBus allocates width fresh nets.
func (b *Builder) NewBus(width int) Bus {
	bus := make(Bus, width)
	for i := range bus {
		bus[i] = b.Net()
	}
	return bus
}

// Input declares a 1-bit input port and returns its net.
func (b *Builder) Input(name string) NetID {
	n := b.NamedNet(name)
	b.inputs = append(b.inputs, Port{Name: name, Bits: Bus{n}})
	return n
}

// InputBus declares a multi-bit input port and returns its nets (LSB
// first).
func (b *Builder) InputBus(name string, width int) Bus {
	bus := make(Bus, width)
	for i := range bus {
		bus[i] = b.NamedNet(fmt.Sprintf("%s[%d]", name, i))
	}
	b.inputs = append(b.inputs, Port{Name: name, Bits: bus})
	return bus
}

// Output declares a 1-bit output port driving from net n.
func (b *Builder) Output(name string, n NetID) {
	b.outputs = append(b.outputs, Port{Name: name, Bits: Bus{n}})
	if _, named := b.netNames[n]; !named {
		b.netNames[n] = name
	}
}

// OutputBus declares a multi-bit output port.
func (b *Builder) OutputBus(name string, bits Bus) {
	b.outputs = append(b.outputs, Port{Name: name, Bits: append(Bus(nil), bits...)})
	for i, n := range bits {
		if _, named := b.netNames[n]; !named {
			b.netNames[n] = fmt.Sprintf("%s[%d]", name, i)
		}
	}
}

// Clock declares the primary clock pin and returns its net. At most one
// clock root may be declared.
func (b *Builder) Clock(name string) NetID {
	if b.clockRoot != NoNet {
		b.errf("clock root already declared")
		return b.clockRoot
	}
	b.clockRoot = b.NamedNet(name)
	return b.clockRoot
}

func (b *Builder) autoName(k cell.Kind) string {
	b.kindSeq[k]++
	return fmt.Sprintf("%s$%d", k, b.kindSeq[k])
}

// Add instantiates a combinational or clock cell with the given inputs and
// returns its (freshly allocated) output net.
func (b *Builder) Add(k cell.Kind, in ...NetID) NetID {
	return b.AddNamed(k, b.autoName(k), in...)
}

// AddNamed is Add with an explicit instance name.
func (b *Builder) AddNamed(k cell.Kind, name string, in ...NetID) NetID {
	if k.IsSequential() {
		b.errf("cell %s: use AddDFF for flip-flops", name)
		return b.Net()
	}
	if len(in) != k.NumInputs() {
		b.errf("cell %s (%s): got %d inputs, want %d", name, k, len(in), k.NumInputs())
	}
	out := b.Net()
	b.cells = append(b.cells, Cell{Kind: k, Name: name, In: append([]NetID(nil), in...), Clk: NoNet, Out: out})
	return out
}

// AddDFF instantiates a flip-flop sampling d on the rising edge of clk,
// with the given reset value, and returns its Q net.
func (b *Builder) AddDFF(d, clk NetID, init bool) NetID {
	return b.AddDFFNamed(b.autoName(cell.DFF), d, clk, init)
}

// AddDFFNamed is AddDFF with an explicit instance name.
func (b *Builder) AddDFFNamed(name string, d, clk NetID, init bool) NetID {
	out := b.Net()
	b.cells = append(b.cells, Cell{Kind: cell.DFF, Name: name, In: []NetID{d}, Clk: clk, Out: out, Init: init})
	return out
}

// AddRaw instantiates a cell with a caller-chosen output net (which must
// have been allocated with Net and not be driven elsewhere). It exists
// for instrumentation passes that pre-allocate nets to wire mutually
// recursive shadow logic; Build validates the result like any other cell.
func (b *Builder) AddRaw(k cell.Kind, name string, in []NetID, clk, out NetID, init bool) {
	b.cells = append(b.cells, Cell{
		Kind: k, Name: name,
		In:  append([]NetID(nil), in...),
		Clk: clk, Out: out, Init: init,
	})
}

// RewireInput repoints input pin `pin` of cell cid to read from net n.
// Used by instrumentation passes on imported netlists.
func (b *Builder) RewireInput(cid CellID, pin int, n NetID) {
	if int(cid) >= len(b.cells) || pin >= len(b.cells[cid].In) {
		b.errf("RewireInput(%d,%d): out of range", cid, pin)
		return
	}
	b.cells[cid].In[pin] = n
}

// CellOut returns the output net of cell cid as currently built.
func (b *Builder) CellOut(cid CellID) NetID { return b.cells[cid].Out }

// Cell returns a copy of cell cid as currently built.
func (b *Builder) Cell(cid CellID) Cell {
	c := b.cells[cid]
	c.In = append([]NetID(nil), c.In...)
	return c
}

// NumCells reports the number of cells added so far.
func (b *Builder) NumCells() int { return len(b.cells) }

// Build validates the netlist and computes the derived structures
// (drivers, topological order). It returns an error if any net is
// multiply driven or undriven, if a port references an invalid net, or if
// the combinational logic contains a cycle.
func (b *Builder) Build() (*Netlist, error) {
	if len(b.errs) > 0 {
		return nil, errors.Join(b.errs...)
	}
	nl := &Netlist{
		Name:      b.name,
		Cells:     b.cells,
		NumNets:   b.numNets,
		Inputs:    b.inputs,
		Outputs:   b.outputs,
		ClockRoot: b.clockRoot,
		netNames:  b.netNames,
	}
	if err := nl.rebuild(); err != nil {
		return nil, err
	}
	return nl, nil
}

// MustBuild is Build but panics on error; for circuit constructors whose
// input space is fully controlled by this repository.
func (b *Builder) MustBuild() *Netlist {
	nl, err := b.Build()
	if err != nil {
		panic(fmt.Sprintf("netlist %s: %v", b.name, err))
	}
	return nl
}

// rebuild recomputes drivers and the topological order, validating
// structural invariants.
func (nl *Netlist) rebuild() error {
	driver := make([]CellID, nl.NumNets)
	for i := range driver {
		driver[i] = NoCell
	}
	nl.driver = driver // NetName (used in error messages below) needs it
	external := make([]bool, nl.NumNets)
	for _, p := range nl.Inputs {
		for _, n := range p.Bits {
			if n < 0 || int(n) >= nl.NumNets {
				return fmt.Errorf("input port %s references invalid net %d", p.Name, n)
			}
			external[n] = true
		}
	}
	if nl.ClockRoot != NoNet {
		external[nl.ClockRoot] = true
	}
	for i, c := range nl.Cells {
		if c.Out < 0 || int(c.Out) >= nl.NumNets {
			return fmt.Errorf("cell %s drives invalid net %d", c.Name, c.Out)
		}
		if driver[c.Out] != NoCell {
			return fmt.Errorf("net %s multiply driven by %s and %s",
				nl.NetName(c.Out), nl.Cells[driver[c.Out]].Name, c.Name)
		}
		if external[c.Out] {
			return fmt.Errorf("cell %s drives primary input net %s", c.Name, nl.NetName(c.Out))
		}
		driver[c.Out] = CellID(i)
	}
	used := make([]bool, nl.NumNets)
	for _, c := range nl.Cells {
		// The evaluation engine flattens input lists into fixed
		// cell.MaxArity-wide arrays (and the old interpreter's settle
		// buffer had the same silent cap); reject oversized fan-in here so
		// it can never silently drop an input downstream.
		if len(c.In) > cell.MaxArity {
			return fmt.Errorf("cell %s (%s) has %d inputs; the evaluation engine supports at most %d",
				c.Name, c.Kind, len(c.In), cell.MaxArity)
		}
		for _, in := range c.In {
			if in < 0 || int(in) >= nl.NumNets {
				return fmt.Errorf("cell %s reads invalid net %d", c.Name, in)
			}
			used[in] = true
		}
		if c.Clk != NoNet {
			used[c.Clk] = true
		}
	}
	for _, p := range nl.Outputs {
		for _, n := range p.Bits {
			if n < 0 || int(n) >= nl.NumNets {
				return fmt.Errorf("output port %s references invalid net %d", p.Name, n)
			}
			used[n] = true
		}
	}
	for n := 0; n < nl.NumNets; n++ {
		if used[n] && driver[NetID(n)] == NoCell && !external[n] {
			return fmt.Errorf("net %s is read but never driven", nl.NetName(NetID(n)))
		}
	}
	nl.driver = driver

	// Levelize combinational + clock cells with Kahn's algorithm. A cell
	// depends on the drivers of its input pins (and, for clock cells, the
	// clock pin is In[0] so it is covered); DFF outputs and primary inputs
	// are sources.
	indeg := make([]int, len(nl.Cells))
	readers := make([][]CellID, nl.NumNets) // only pins that create ordering edges
	queue := make([]CellID, 0, len(nl.Cells))
	for i, c := range nl.Cells {
		if c.Kind.IsSequential() {
			continue
		}
		deg := 0
		for _, in := range c.In {
			if d := driver[in]; d != NoCell && !nl.Cells[d].Kind.IsSequential() {
				deg++
				readers[in] = append(readers[in], CellID(i))
			}
		}
		indeg[i] = deg
		if deg == 0 {
			queue = append(queue, CellID(i))
		}
	}
	var topo []CellID
	for len(queue) > 0 {
		cid := queue[0]
		queue = queue[1:]
		topo = append(topo, cid)
		for _, r := range readers[nl.Cells[cid].Out] {
			indeg[r]--
			if indeg[r] == 0 {
				queue = append(queue, r)
			}
		}
	}
	want := 0
	for _, c := range nl.Cells {
		if !c.Kind.IsSequential() {
			want++
		}
	}
	if len(topo) != want {
		var stuck []string
		for i, d := range indeg {
			if d > 0 && !nl.Cells[i].Kind.IsSequential() {
				stuck = append(stuck, nl.Cells[i].Name)
				if len(stuck) >= 8 {
					break
				}
			}
		}
		return fmt.Errorf("combinational cycle involving %v", stuck)
	}
	nl.topo = topo
	return nil
}

// declareInput registers pre-allocated nets as an input port (used by
// the Verilog parser, which discovers nets before ports).
func (b *Builder) declareInput(name string, bits Bus) {
	for i, n := range bits {
		if _, named := b.netNames[n]; !named {
			b.netNames[n] = fmt.Sprintf("%s[%d]", name, i)
		}
	}
	b.inputs = append(b.inputs, Port{Name: name, Bits: append(Bus(nil), bits...)})
}

// declareClock registers a pre-allocated net as the clock root.
func (b *Builder) declareClock(name string, n NetID) {
	if _, named := b.netNames[n]; !named {
		b.netNames[n] = name
	}
	b.clockRoot = n
}
