package netlist

import (
	"testing"

	"repro/internal/cell"
)

// roundTrip exports nl to Verilog, parses it back, and structurally
// compares cell-kind counts and port shapes.
func roundTrip(t *testing.T, nl *Netlist) *Netlist {
	t.Helper()
	src := nl.Verilog()
	back, err := ParseVerilog(src)
	if err != nil {
		t.Fatalf("ParseVerilog: %v\n%s", err, src)
	}
	for k := cell.Kind(0); int(k) < cell.NumKinds; k++ {
		if nl.CountKind(k) != back.CountKind(k) {
			t.Errorf("kind %v: %d cells exported, %d parsed", k, nl.CountKind(k), back.CountKind(k))
		}
	}
	if len(back.Inputs) != len(nl.Inputs) || len(back.Outputs) != len(nl.Outputs) {
		t.Errorf("port counts differ: in %d/%d out %d/%d",
			len(back.Inputs), len(nl.Inputs), len(back.Outputs), len(nl.Outputs))
	}
	if (nl.ClockRoot == NoNet) != (back.ClockRoot == NoNet) {
		t.Error("clock root presence differs")
	}
	return back
}

func TestParseRoundTripAdder(t *testing.T) {
	roundTrip(t, buildDemoAdder(t))
}

func TestParseRoundTripGatesAndMux(t *testing.T) {
	b := NewBuilder("gates")
	clk := b.Clock("clk")
	x := b.Input("x")
	y := b.Input("y")
	s := b.Input("s")
	outs := Bus{
		b.Add(cell.AND2, x, y), b.Add(cell.OR2, x, y), b.Add(cell.XOR2, x, y),
		b.Add(cell.NAND2, x, y), b.Add(cell.NOR2, x, y), b.Add(cell.XNOR2, x, y),
		b.Add(cell.INV, x), b.Add(cell.BUF, y),
		b.Add(cell.MUX2, x, y, s),
		b.Add(cell.AOI21, x, y, s), b.Add(cell.OAI21, x, y, s),
		b.Add(cell.TIE0), b.Add(cell.TIE1),
	}
	g := b.Add(cell.CLKGATE, clk, s)
	q := b.AddDFFNamed("state", outs[0], g, true)
	outs = append(outs, q)
	b.OutputBus("o", outs)
	nl := b.MustBuild()
	back := roundTrip(t, nl)
	// DFF init preserved.
	for _, c := range back.Cells {
		if c.Kind == cell.DFF && !c.Init {
			t.Error("DFF reset value lost")
		}
	}
}

func TestParseRoundTripBehaviour(t *testing.T) {
	// Functional equivalence under simulation is checked in the sim
	// package tests (import cycle here); structurally compare the wiring
	// instead: every parsed cell must have in-range nets and the netlist
	// must levelize (Build already guarantees both).
	nl := buildDemoAdder(t)
	back := roundTrip(t, nl)
	if len(back.Topo()) != len(nl.Topo()) {
		t.Errorf("topo sizes differ: %d vs %d", len(back.Topo()), len(nl.Topo()))
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	if _, err := ParseVerilog("module x (a);\nwat;\nendmodule\n"); err == nil {
		t.Error("garbage line accepted")
	}
	if _, err := ParseVerilog("module x (a);\n"); err == nil {
		t.Error("missing endmodule accepted")
	}
}
