package sat

import (
	"math/rand"
	"testing"
)

func TestTrivial(t *testing.T) {
	s := New()
	a := s.NewVar()
	s.AddClause(MkLit(a, false))
	if s.Solve() != Sat || !s.Value(a) {
		t.Fatal("x must be SAT with x=true")
	}
}

func TestContradiction(t *testing.T) {
	s := New()
	a := s.NewVar()
	s.AddClause(MkLit(a, false))
	s.AddClause(MkLit(a, true))
	if s.Solve() != Unsat {
		t.Fatal("x & !x must be UNSAT")
	}
}

func TestSimpleImplications(t *testing.T) {
	// (a -> b) & (b -> c) & a & !c is UNSAT.
	s := New()
	a, b, c := s.NewVar(), s.NewVar(), s.NewVar()
	s.AddClause(MkLit(a, true), MkLit(b, false))
	s.AddClause(MkLit(b, true), MkLit(c, false))
	s.AddClause(MkLit(a, false))
	s.AddClause(MkLit(c, true))
	if s.Solve() != Unsat {
		t.Fatal("implication chain must be UNSAT")
	}
}

func TestXorChainSat(t *testing.T) {
	// x0 ^ x1 ^ ... ^ x9 = 1 encoded via intermediate variables.
	s := New()
	xs := make([]int, 10)
	for i := range xs {
		xs[i] = s.NewVar()
	}
	acc := xs[0]
	for i := 1; i < len(xs); i++ {
		out := s.NewVar()
		addXor(s, acc, xs[i], out)
		acc = out
	}
	s.AddClause(MkLit(acc, false))
	if s.Solve() != Sat {
		t.Fatal("xor chain must be SAT")
	}
	parity := false
	for _, x := range xs {
		parity = parity != s.Value(x)
	}
	if !parity {
		t.Fatal("model does not satisfy the xor constraint")
	}
}

// addXor encodes out = a ^ b.
func addXor(s *Solver, a, b, out int) {
	s.AddClause(MkLit(a, true), MkLit(b, true), MkLit(out, true))
	s.AddClause(MkLit(a, false), MkLit(b, false), MkLit(out, true))
	s.AddClause(MkLit(a, true), MkLit(b, false), MkLit(out, false))
	s.AddClause(MkLit(a, false), MkLit(b, true), MkLit(out, false))
}

func TestPigeonholeUnsat(t *testing.T) {
	// 5 pigeons in 4 holes: classic hard UNSAT instance for resolution.
	const pigeons, holes = 5, 4
	s := New()
	v := func(p, h int) int { return p*holes + h }
	for i := 0; i < pigeons*holes; i++ {
		s.NewVar()
	}
	for p := 0; p < pigeons; p++ {
		lits := make([]Lit, holes)
		for h := 0; h < holes; h++ {
			lits[h] = MkLit(v(p, h), false)
		}
		s.AddClause(lits...)
	}
	for h := 0; h < holes; h++ {
		for p1 := 0; p1 < pigeons; p1++ {
			for p2 := p1 + 1; p2 < pigeons; p2++ {
				s.AddClause(MkLit(v(p1, h), true), MkLit(v(p2, h), true))
			}
		}
	}
	if s.Solve() != Unsat {
		t.Fatal("pigeonhole must be UNSAT")
	}
}

func TestRandom3SATModelsAreValid(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for iter := 0; iter < 40; iter++ {
		nVars := 30 + rng.Intn(30)
		nClauses := int(float64(nVars) * (2.0 + rng.Float64()*2.5))
		s := New()
		for i := 0; i < nVars; i++ {
			s.NewVar()
		}
		type cl [3]Lit
		var clauses []cl
		for i := 0; i < nClauses; i++ {
			var c cl
			for j := range c {
				c[j] = MkLit(rng.Intn(nVars), rng.Intn(2) == 0)
			}
			clauses = append(clauses, c)
			s.AddClause(c[0], c[1], c[2])
		}
		if s.Solve() != Sat {
			continue // UNSAT instances are fine; we check model validity
		}
		for _, c := range clauses {
			ok := false
			for _, l := range c {
				if s.Value(l.Var()) != l.Neg() {
					ok = true
				}
			}
			if !ok {
				t.Fatalf("model violates clause %v", c)
			}
		}
	}
}

func TestAssumptions(t *testing.T) {
	s := New()
	a, b := s.NewVar(), s.NewVar()
	s.AddClause(MkLit(a, true), MkLit(b, false)) // a -> b
	// Assume a: b must be true.
	if s.Solve(MkLit(a, false)) != Sat {
		t.Fatal("SAT under assumption a")
	}
	if !s.Value(a) || !s.Value(b) {
		t.Fatal("model must have a, b true")
	}
	// Assume a & !b: contradiction.
	if s.Solve(MkLit(a, false), MkLit(b, true)) != Unsat {
		t.Fatal("a & !b must be UNSAT")
	}
	// Solver remains usable: assume !a.
	if s.Solve(MkLit(a, true)) != Sat {
		t.Fatal("SAT under assumption !a")
	}
	if s.Value(a) {
		t.Fatal("a must be false")
	}
}

func TestIncrementalAddAfterSolve(t *testing.T) {
	s := New()
	a, b := s.NewVar(), s.NewVar()
	s.AddClause(MkLit(a, false), MkLit(b, false))
	if s.Solve() != Sat {
		t.Fatal("initial SAT")
	}
	s.AddClause(MkLit(a, true))
	s.AddClause(MkLit(b, true))
	if s.Solve() != Unsat {
		t.Fatal("after strengthening must be UNSAT")
	}
}

func TestConflictBudget(t *testing.T) {
	// A pigeonhole instance large enough to exceed a tiny budget.
	const pigeons, holes = 8, 7
	s := New()
	s.MaxConflicts = 10
	v := func(p, h int) int { return p*holes + h }
	for i := 0; i < pigeons*holes; i++ {
		s.NewVar()
	}
	for p := 0; p < pigeons; p++ {
		lits := make([]Lit, holes)
		for h := 0; h < holes; h++ {
			lits[h] = MkLit(v(p, h), false)
		}
		s.AddClause(lits...)
	}
	for h := 0; h < holes; h++ {
		for p1 := 0; p1 < pigeons; p1++ {
			for p2 := p1 + 1; p2 < pigeons; p2++ {
				s.AddClause(MkLit(v(p1, h), true), MkLit(v(p2, h), true))
			}
		}
	}
	if got := s.Solve(); got != Unknown {
		t.Fatalf("budgeted solve = %v, want Unknown", got)
	}
}

func TestGraphColoring(t *testing.T) {
	// A 5-cycle is 3-colorable but not 2-colorable.
	color := func(k int) Status {
		s := New()
		n := 5
		v := func(node, c int) int { return node*k + c }
		for i := 0; i < n*k; i++ {
			s.NewVar()
		}
		for node := 0; node < n; node++ {
			lits := make([]Lit, k)
			for c := 0; c < k; c++ {
				lits[c] = MkLit(v(node, c), false)
			}
			s.AddClause(lits...)
		}
		for node := 0; node < n; node++ {
			next := (node + 1) % n
			for c := 0; c < k; c++ {
				s.AddClause(MkLit(v(node, c), true), MkLit(v(next, c), true))
			}
		}
		return s.Solve()
	}
	if color(2) != Unsat {
		t.Error("C5 must not be 2-colorable")
	}
	if color(3) != Sat {
		t.Error("C5 must be 3-colorable")
	}
}

func TestLitHelpers(t *testing.T) {
	l := MkLit(7, true)
	if l.Var() != 7 || !l.Neg() {
		t.Error("MkLit fields wrong")
	}
	if l.Not().Neg() || l.Not().Var() != 7 {
		t.Error("Not wrong")
	}
	if Sat.String() != "SAT" || Unsat.String() != "UNSAT" || Unknown.String() != "UNKNOWN" {
		t.Error("Status strings wrong")
	}
}

func TestDuplicateAndTautology(t *testing.T) {
	s := New()
	a, b := s.NewVar(), s.NewVar()
	// Tautology is dropped silently.
	s.AddClause(MkLit(a, false), MkLit(a, true))
	// Duplicate literals are collapsed.
	s.AddClause(MkLit(b, false), MkLit(b, false))
	if s.Solve() != Sat || !s.Value(b) {
		t.Fatal("b must be forced true")
	}
}

func TestReduceDBKeepsSoundness(t *testing.T) {
	// A larger pigeonhole instance forces many conflicts; with an
	// artificially low reduce threshold the solver must still prove
	// UNSAT.
	const pigeons, holes = 7, 6
	s := New()
	v := func(p, h int) int { return p*holes + h }
	for i := 0; i < pigeons*holes; i++ {
		s.NewVar()
	}
	for p := 0; p < pigeons; p++ {
		lits := make([]Lit, holes)
		for h := 0; h < holes; h++ {
			lits[h] = MkLit(v(p, h), false)
		}
		s.AddClause(lits...)
	}
	for h := 0; h < holes; h++ {
		for p1 := 0; p1 < pigeons; p1++ {
			for p2 := p1 + 1; p2 < pigeons; p2++ {
				s.AddClause(MkLit(v(p1, h), true), MkLit(v(p2, h), true))
			}
		}
	}
	if s.Solve() != Unsat {
		t.Fatal("php(7,6) must be UNSAT")
	}
	if s.Conflicts == 0 {
		t.Error("expected a nontrivial proof")
	}
}

func TestQuickSelect(t *testing.T) {
	a := []float64{5, 1, 4, 2, 3}
	if got := quickSelect(append([]float64(nil), a...), 2); got != 3 {
		t.Errorf("median = %v", got)
	}
	if got := quickSelect(append([]float64(nil), a...), 0); got != 1 {
		t.Errorf("min = %v", got)
	}
	if got := quickSelect(append([]float64(nil), a...), 4); got != 5 {
		t.Errorf("max = %v", got)
	}
	if quickSelect(nil, 0) != 0 {
		t.Error("empty input")
	}
}
