package sat

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestSolveClearsStaleTrail is the regression for the incremental-use
// bug this PR fixes: a second Solve call used to inherit the first
// call's decision trail, so its assumptions were indexed against stale
// decision levels and could be skipped entirely.
func TestSolveClearsStaleTrail(t *testing.T) {
	s := New()
	a, b := s.NewVar(), s.NewVar()
	s.AddClause(MkLit(a, false), MkLit(b, false)) // a | b
	if s.Solve() != Sat {
		t.Fatal("a|b must be SAT")
	}
	// Under !a & !b the clause is falsified; the old solver returned Sat
	// here because the leftover trail masked the assumptions.
	if s.Solve(MkLit(a, true), MkLit(b, true)) != Unsat {
		t.Fatal("a|b under assumptions !a,!b must be UNSAT")
	}
	// And the solver must remain usable with consistent assumptions.
	if s.Solve(MkLit(a, true)) != Sat || s.Value(a) || !s.Value(b) {
		t.Fatal("a|b under !a must be SAT with b=true")
	}
}

// threeCNF builds a random 3-CNF over nVars variables in s and returns
// the clause list (also added to s).
func threeCNF(s *Solver, rng *rand.Rand, nVars, nClauses int) [][3]Lit {
	for i := 0; i < nVars; i++ {
		s.NewVar()
	}
	out := make([][3]Lit, 0, nClauses)
	for i := 0; i < nClauses; i++ {
		var c [3]Lit
		for j := range c {
			c[j] = MkLit(rng.Intn(nVars), rng.Intn(2) == 0)
		}
		out = append(out, c)
		s.AddClause(c[0], c[1], c[2])
	}
	return out
}

// TestAssumptionsEqualUnits is the defining property of assumption-based
// solving: Solve(a...) on formula F must agree with Solve() on
// F ∪ {unit(a) for a in assumptions}, for random 3-CNF and random
// assumption sets.
func TestAssumptionsEqualUnits(t *testing.T) {
	check := func(seed int64, nAssume uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		nVars := 15 + rng.Intn(25)
		nClauses := int(float64(nVars) * (2.0 + rng.Float64()*2.5))

		assumed := New()
		clauses := threeCNF(assumed, rng, nVars, nClauses)
		var assumptions []Lit
		for i := 0; i < int(nAssume)%6; i++ {
			assumptions = append(assumptions, MkLit(rng.Intn(nVars), rng.Intn(2) == 0))
		}

		united := New()
		for i := 0; i < nVars; i++ {
			united.NewVar()
		}
		for _, c := range clauses {
			united.AddClause(c[0], c[1], c[2])
		}
		for _, a := range assumptions {
			united.AddClause(a)
		}

		got, want := assumed.Solve(assumptions...), united.Solve()
		if got != want {
			t.Logf("seed %d assume %v: Solve(a...)=%v, Solve() on F∪units=%v", seed, assumptions, got, want)
			return false
		}
		if got != Sat {
			return true
		}
		// The assumed model must honor every assumption and clause.
		for _, a := range assumptions {
			if assumed.Value(a.Var()) == a.Neg() {
				t.Logf("seed %d: model violates assumption %v", seed, a)
				return false
			}
		}
		for _, c := range clauses {
			ok := false
			for _, l := range c {
				if assumed.Value(l.Var()) != l.Neg() {
					ok = true
				}
			}
			if !ok {
				t.Logf("seed %d: model violates clause %v", seed, c)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestRepeatedSolveWithVarGrowth drives one solver through rounds of
// variable growth, clause additions, and changing assumptions — the
// exact access pattern of the incremental BMC unroller — and checks
// every verdict against a from-scratch solver on the same formula with
// the assumptions added as units.
func TestRepeatedSolveWithVarGrowth(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		inc := New()
		var all [][3]Lit
		nVars := 0
		for round := 0; round < 6; round++ {
			grow := 5 + rng.Intn(10)
			for i := 0; i < grow; i++ {
				inc.NewVar()
			}
			nVars += grow
			nClauses := 2 + rng.Intn(3*grow)
			for i := 0; i < nClauses; i++ {
				var c [3]Lit
				for j := range c {
					c[j] = MkLit(rng.Intn(nVars), rng.Intn(2) == 0)
				}
				all = append(all, c)
				inc.AddClause(c[0], c[1], c[2])
			}
			var assumptions []Lit
			for i := 0; i < rng.Intn(4); i++ {
				assumptions = append(assumptions, MkLit(rng.Intn(nVars), rng.Intn(2) == 0))
			}

			scratch := New()
			for i := 0; i < nVars; i++ {
				scratch.NewVar()
			}
			for _, c := range all {
				scratch.AddClause(c[0], c[1], c[2])
			}
			for _, a := range assumptions {
				scratch.AddClause(a)
			}
			got, want := inc.Solve(assumptions...), scratch.Solve()
			if got != want {
				t.Fatalf("seed %d round %d: incremental=%v scratch=%v (assume %v)",
					seed, round, got, want, assumptions)
			}
			if want == Unsat && len(assumptions) == 0 {
				break // formula itself is dead; nothing more to vary
			}
		}
	}
}

// TestUnitLearntSurvivesRestartUnderAssumptions pins the unit-learnt
// fix: a root-level fact learnt while assumptions are active must land
// at decision level 0, not at an assumption level where the next
// restart would silently erase it.
func TestUnitLearntSurvivesRestartUnderAssumptions(t *testing.T) {
	// Build an instance whose refutation forces unit learnts: a chain
	// x0 -> x1 -> ... -> xn plus !xn, queried under an unrelated
	// assumption. Repeated solves must stay consistent.
	s := New()
	const n = 12
	xs := make([]int, n)
	for i := range xs {
		xs[i] = s.NewVar()
	}
	free := s.NewVar()
	for i := 0; i+1 < n; i++ {
		s.AddClause(MkLit(xs[i], true), MkLit(xs[i+1], false))
	}
	s.AddClause(MkLit(xs[n-1], true))
	if s.Solve(MkLit(free, false), MkLit(xs[0], false)) != Unsat {
		t.Fatal("x0 with chain to !xn must be UNSAT under the assumption")
	}
	if s.Solve(MkLit(free, false)) != Sat {
		t.Fatal("dropping the contradictory assumption must be SAT")
	}
	if s.Value(xs[0]) {
		t.Fatal("x0 must be false in every model")
	}
	if s.Solve(MkLit(xs[0], false)) != Unsat {
		t.Fatal("assuming x0 must stay UNSAT on the reused solver")
	}
}

// TestStatsSnapshot checks the Stats accessor and its aggregation.
func TestStatsSnapshot(t *testing.T) {
	s := New()
	const pigeons, holes = 6, 5
	v := func(p, h int) int { return p*holes + h }
	for i := 0; i < pigeons*holes; i++ {
		s.NewVar()
	}
	for p := 0; p < pigeons; p++ {
		lits := make([]Lit, holes)
		for h := 0; h < holes; h++ {
			lits[h] = MkLit(v(p, h), false)
		}
		s.AddClause(lits...)
	}
	for h := 0; h < holes; h++ {
		for p1 := 0; p1 < pigeons; p1++ {
			for p2 := p1 + 1; p2 < pigeons; p2++ {
				s.AddClause(MkLit(v(p1, h), true), MkLit(v(p2, h), true))
			}
		}
	}
	if s.Solve() != Unsat {
		t.Fatal("php(6,5) must be UNSAT")
	}
	st := s.Stats()
	if st.Conflicts == 0 || st.Propagations == 0 || st.Decisions == 0 {
		t.Errorf("expected nontrivial search counters, got %+v", st)
	}
	if st.Learnts == 0 {
		t.Error("refuting php(6,5) must record learnt clauses")
	}
	if st.Conflicts != s.Conflicts || st.Restarts != s.Restarts {
		t.Error("Stats snapshot disagrees with exported counters")
	}
	sum := st.Add(st)
	if sum.Conflicts != 2*st.Conflicts || sum.Learnts != 2*st.Learnts || sum.Restarts != 2*st.Restarts {
		t.Errorf("Add is not field-wise: %+v", sum)
	}
	if s.NumClauses() == 0 {
		t.Error("problem clauses must be counted")
	}
}
