// Package sat implements a CDCL (conflict-driven clause learning) SAT
// solver: two-watched-literal propagation, 1UIP conflict analysis with
// clause learning, VSIDS-style activity decision heuristics, phase
// saving, and Luby-sequence restarts. It is the decision engine behind
// the bounded model checker (internal/bmc), standing in for the formal
// verification tool (JasperGold) of the paper's Error Lifting phase.
package sat

// Lit is a literal: variable index shifted left once, with the low bit
// set for negation. Variables are dense indices starting at 0.
type Lit int32

// MkLit builds a literal from a variable index and a sign.
func MkLit(v int, neg bool) Lit {
	l := Lit(v << 1)
	if neg {
		l |= 1
	}
	return l
}

// Var returns the literal's variable index.
func (l Lit) Var() int { return int(l >> 1) }

// Neg reports whether the literal is negated.
func (l Lit) Neg() bool { return l&1 == 1 }

// Not returns the complementary literal.
func (l Lit) Not() Lit { return l ^ 1 }

type lbool int8

const (
	lUndef lbool = iota
	lTrue
	lFalse
)

func (b lbool) not() lbool {
	switch b {
	case lTrue:
		return lFalse
	case lFalse:
		return lTrue
	}
	return lUndef
}

// Stats is a snapshot of the solver's cumulative search counters. All
// fields are monotonic across Solve calls on one solver, so incremental
// callers can report the total effort behind a sequence of queries (and
// difference two snapshots for per-query effort).
type Stats struct {
	Conflicts    int64
	Decisions    int64
	Propagations int64
	Restarts     int64
	Learnts      int64 // learnt clauses recorded (cumulative, incl. later-reduced ones)
}

// Add returns the field-wise sum of two snapshots, for aggregation
// across solvers.
func (a Stats) Add(b Stats) Stats {
	return Stats{
		Conflicts:    a.Conflicts + b.Conflicts,
		Decisions:    a.Decisions + b.Decisions,
		Propagations: a.Propagations + b.Propagations,
		Restarts:     a.Restarts + b.Restarts,
		Learnts:      a.Learnts + b.Learnts,
	}
}

// Status is a solver verdict.
type Status int

// Solve outcomes.
const (
	Unknown Status = iota
	Sat
	Unsat
)

func (s Status) String() string {
	switch s {
	case Sat:
		return "SAT"
	case Unsat:
		return "UNSAT"
	}
	return "UNKNOWN"
}

type clause struct {
	lits   []Lit
	learnt bool
	act    float64
}

// Solver is a CDCL SAT solver instance. Zero value is not usable; create
// with New.
type Solver struct {
	clauses []*clause
	learnts []*clause

	watches [][]*clause // literal -> clauses watching it

	assign  []lbool // per variable
	level   []int32 // decision level of assignment
	reason  []*clause
	phase   []bool // saved phase
	trail   []Lit
	trailLm []int32 // decision-level marks into trail

	activity []float64
	varInc   float64
	claInc   float64
	order    *varHeap

	propHead int

	// Conflict analysis scratch.
	seen []bool

	// Stats
	Conflicts    int64
	Decisions    int64
	Propagations int64
	Restarts     int64
	learntTotal  int64 // learnt clauses ever recorded (monotonic)

	// MaxConflicts bounds the search; exceeded -> Unknown (the paper's
	// "FF" formal-tool-timeout outcome). 0 means unbounded.
	MaxConflicts int64

	unsatisfiable bool // empty clause added
}

// New creates an empty solver.
func New() *Solver {
	s := &Solver{varInc: 1, claInc: 1}
	s.order = &varHeap{s: s}
	return s
}

// NewVar allocates a fresh variable and returns its index.
func (s *Solver) NewVar() int {
	v := len(s.assign)
	s.assign = append(s.assign, lUndef)
	s.level = append(s.level, 0)
	s.reason = append(s.reason, nil)
	s.phase = append(s.phase, false)
	s.activity = append(s.activity, 0)
	s.seen = append(s.seen, false)
	s.watches = append(s.watches, nil, nil)
	s.order.push(v)
	return v
}

// NumVars reports the number of allocated variables.
func (s *Solver) NumVars() int { return len(s.assign) }

func (s *Solver) value(l Lit) lbool {
	v := s.assign[l.Var()]
	if l.Neg() {
		return v.not()
	}
	return v
}

// AddClause adds a clause (a disjunction of literals). It returns false
// if the formula is already trivially unsatisfiable. Clauses may be
// added between Solve calls: the solver first rewinds to decision level
// 0, so the clause is judged against root-level facts only — never
// against leftover decisions of a previous model.
func (s *Solver) AddClause(lits ...Lit) bool {
	if s.unsatisfiable {
		return false
	}
	s.cancelUntil(0)
	// Simplify: drop duplicate/false literals, detect tautologies.
	out := lits[:0:0]
	for _, l := range lits {
		if s.value(l) == lTrue && s.level[l.Var()] == 0 {
			return true // satisfied at top level
		}
		if s.value(l) == lFalse && s.level[l.Var()] == 0 {
			continue // always-false literal
		}
		dup := false
		for _, o := range out {
			if o == l {
				dup = true
			}
			if o == l.Not() {
				return true // tautology
			}
		}
		if !dup {
			out = append(out, l)
		}
	}
	switch len(out) {
	case 0:
		s.unsatisfiable = true
		return false
	case 1:
		if !s.enqueue(out[0], nil) {
			s.unsatisfiable = true
			return false
		}
		return s.propagate() == nil || !s.markUnsat()
	}
	c := &clause{lits: out}
	s.clauses = append(s.clauses, c)
	s.watch(c)
	return true
}

func (s *Solver) markUnsat() bool {
	s.unsatisfiable = true
	return true
}

func (s *Solver) watch(c *clause) {
	s.watches[c.lits[0].Not()] = append(s.watches[c.lits[0].Not()], c)
	s.watches[c.lits[1].Not()] = append(s.watches[c.lits[1].Not()], c)
}

func (s *Solver) enqueue(l Lit, from *clause) bool {
	switch s.value(l) {
	case lTrue:
		return true
	case lFalse:
		return false
	}
	v := l.Var()
	if l.Neg() {
		s.assign[v] = lFalse
	} else {
		s.assign[v] = lTrue
	}
	s.level[v] = int32(len(s.trailLm))
	s.reason[v] = from
	s.phase[v] = !l.Neg()
	s.trail = append(s.trail, l)
	return true
}

// propagate performs unit propagation; returns the conflicting clause or
// nil.
func (s *Solver) propagate() *clause {
	for s.propHead < len(s.trail) {
		p := s.trail[s.propHead]
		s.propHead++
		s.Propagations++
		ws := s.watches[p]
		kept := ws[:0]
		for i := 0; i < len(ws); i++ {
			c := ws[i]
			// Ensure the false literal is at position 1.
			if c.lits[0] == p.Not() {
				c.lits[0], c.lits[1] = c.lits[1], c.lits[0]
			}
			if s.value(c.lits[0]) == lTrue {
				kept = append(kept, c)
				continue
			}
			// Find a new watch.
			found := false
			for k := 2; k < len(c.lits); k++ {
				if s.value(c.lits[k]) != lFalse {
					c.lits[1], c.lits[k] = c.lits[k], c.lits[1]
					s.watches[c.lits[1].Not()] = append(s.watches[c.lits[1].Not()], c)
					found = true
					break
				}
			}
			if found {
				continue
			}
			// Unit or conflicting.
			kept = append(kept, c)
			if !s.enqueue(c.lits[0], c) {
				// Conflict: keep remaining watches and bail.
				kept = append(kept, ws[i+1:]...)
				s.watches[p] = kept
				return c
			}
		}
		s.watches[p] = kept
	}
	return nil
}

func (s *Solver) decisionLevel() int { return len(s.trailLm) }

func (s *Solver) newDecisionLevel() {
	s.trailLm = append(s.trailLm, int32(len(s.trail)))
}

func (s *Solver) cancelUntil(lvl int) {
	if s.decisionLevel() <= lvl {
		return
	}
	bound := s.trailLm[lvl]
	for i := len(s.trail) - 1; i >= int(bound); i-- {
		v := s.trail[i].Var()
		s.assign[v] = lUndef
		s.reason[v] = nil
		s.order.pushIfAbsent(v)
	}
	s.trail = s.trail[:bound]
	s.trailLm = s.trailLm[:lvl]
	s.propHead = len(s.trail)
}

func (s *Solver) bumpVar(v int) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
	s.order.update(v)
}

// analyze performs 1UIP conflict analysis; returns the learnt clause
// (asserting literal first) and the backtrack level.
func (s *Solver) analyze(confl *clause) ([]Lit, int) {
	learnt := []Lit{0} // slot for the asserting literal
	counter := 0
	var p Lit = -1
	idx := len(s.trail) - 1

	for {
		s.bumpClause(confl)
		for _, q := range confl.lits {
			if p != -1 && q == p {
				continue
			}
			v := q.Var()
			if !s.seen[v] && s.level[v] > 0 {
				s.seen[v] = true
				s.bumpVar(v)
				if int(s.level[v]) >= s.decisionLevel() {
					counter++
				} else {
					learnt = append(learnt, q)
				}
			}
		}
		// Find the next marked literal on the trail.
		for !s.seen[s.trail[idx].Var()] {
			idx--
		}
		p = s.trail[idx]
		idx--
		v := p.Var()
		s.seen[v] = false
		counter--
		if counter == 0 {
			learnt[0] = p.Not()
			break
		}
		confl = s.reason[v]
	}

	// Compute the backtrack level (max level among the other literals).
	btLevel := 0
	for i := 1; i < len(learnt); i++ {
		if int(s.level[learnt[i].Var()]) > btLevel {
			btLevel = int(s.level[learnt[i].Var()])
		}
	}
	for _, l := range learnt {
		s.seen[l.Var()] = false
	}
	return learnt, btLevel
}

func (s *Solver) record(learnt []Lit) {
	s.learntTotal++
	if len(learnt) == 1 {
		s.enqueue(learnt[0], nil)
		return
	}
	c := &clause{lits: learnt, learnt: true, act: s.claInc}
	// Watch the asserting literal and the highest-level other literal.
	best := 1
	for i := 2; i < len(learnt); i++ {
		if s.level[learnt[i].Var()] > s.level[learnt[best].Var()] {
			best = i
		}
	}
	c.lits[1], c.lits[best] = c.lits[best], c.lits[1]
	s.learnts = append(s.learnts, c)
	s.watch(c)
	s.enqueue(learnt[0], c)
}

// luby computes the Luby restart sequence.
func luby(i int64) int64 {
	for k := int64(1); ; k++ {
		if i == (1<<uint(k))-1 {
			return 1 << uint(k-1)
		}
		if i >= 1<<uint(k-1) && i < (1<<uint(k))-1 {
			return luby(i - (1 << uint(k-1)) + 1)
		}
	}
}

// Solve searches for a model under the given assumptions. It returns Sat
// with the model available via Value, Unsat if no model exists under the
// assumptions (the formula itself may still be satisfiable), or Unknown
// if MaxConflicts was exceeded.
//
// Solve may be called repeatedly on one solver, with clauses and
// variables added and assumptions changed between calls; every call
// first rewinds to decision level 0, so no decision or pseudo-decision
// from an earlier call leaks into the new query. Learnt clauses are
// always implied by the clause database alone — never by assumptions —
// so everything learnt in one call remains sound for all later calls.
func (s *Solver) Solve(assumptions ...Lit) Status {
	if s.unsatisfiable {
		return Unsat
	}
	// Rewind any trail left by a previous Solve call: its decisions (and
	// its assumptions' pseudo-decisions) are not facts, and the new
	// assumption levels must start at the root.
	s.cancelUntil(0)
	if confl := s.propagate(); confl != nil {
		s.unsatisfiable = true
		return Unsat
	}

	restart := int64(1)
	baseInterval := int64(100)
	conflictsAtStart := s.Conflicts

	for {
		limit := baseInterval * luby(restart)
		st := s.search(assumptions, limit)
		if st != Unknown {
			return st
		}
		if s.MaxConflicts > 0 && s.Conflicts-conflictsAtStart >= s.MaxConflicts {
			s.cancelUntil(0)
			return Unknown
		}
		s.Restarts++
		restart++
	}
}

// Stats snapshots the cumulative search counters.
func (s *Solver) Stats() Stats {
	return Stats{
		Conflicts:    s.Conflicts,
		Decisions:    s.Decisions,
		Propagations: s.Propagations,
		Restarts:     s.Restarts,
		Learnts:      s.learntTotal,
	}
}

// NumClauses reports the number of problem (non-learnt) clauses held.
func (s *Solver) NumClauses() int { return len(s.clauses) }

// NumLearnts reports the number of learnt clauses currently held (after
// any database reductions).
func (s *Solver) NumLearnts() int { return len(s.learnts) }

// search runs CDCL until a verdict, a restart (conflict budget reached),
// or the global conflict cap. Unknown means "restart or cap".
func (s *Solver) search(assumptions []Lit, conflictBudget int64) Status {
	conflicts := int64(0)
	for {
		confl := s.propagate()
		if confl != nil {
			s.Conflicts++
			conflicts++
			if s.decisionLevel() == 0 {
				s.unsatisfiable = true
				return Unsat
			}
			// If the conflict is at or below the assumption levels, the
			// assumptions are inconsistent with the formula.
			learnt, btLevel := s.analyze(confl)
			if s.decisionLevel() <= len(assumptions) {
				s.cancelUntil(0)
				return Unsat
			}
			if len(learnt) == 1 {
				// A unit learnt is a root-level fact: backtrack below the
				// assumption pseudo-decisions so it is enqueued at level 0
				// and survives restarts and later Solve calls (the search
				// loop re-applies the assumptions afterwards).
				s.cancelUntil(0)
			} else {
				// Never undo assumption pseudo-decisions for an ordinary
				// learnt: backtrack at most to the last assumption level.
				if btLevel < len(assumptions) {
					btLevel = len(assumptions)
				}
				s.cancelUntil(btLevel)
			}
			s.record(learnt)
			s.varInc /= 0.95
			s.claInc /= 0.999
			if len(s.learnts) > 20000+int(s.Conflicts/10) {
				s.reduceDB()
			}
			continue
		}

		if conflicts >= conflictBudget {
			s.cancelUntil(0)
			return Unknown
		}
		if s.MaxConflicts > 0 && s.Conflicts >= s.MaxConflicts {
			s.cancelUntil(0)
			return Unknown
		}

		// Apply assumptions as pseudo-decisions first.
		if s.decisionLevel() < len(assumptions) {
			a := assumptions[s.decisionLevel()]
			switch s.value(a) {
			case lTrue:
				s.newDecisionLevel() // already satisfied; placeholder level
				continue
			case lFalse:
				s.cancelUntil(0)
				return Unsat
			}
			s.newDecisionLevel()
			s.enqueue(a, nil)
			continue
		}

		// Pick a branching variable.
		v := -1
		for s.order.len() > 0 {
			cand := s.order.pop()
			if s.assign[cand] == lUndef {
				v = cand
				break
			}
		}
		if v == -1 {
			return Sat // all variables assigned
		}
		s.Decisions++
		s.newDecisionLevel()
		s.enqueue(MkLit(v, !s.phase[v]), nil)
	}
}

// Value returns the model value of variable v after a Sat verdict.
func (s *Solver) Value(v int) bool { return s.assign[v] == lTrue }

// varHeap is a max-heap on variable activity.
type varHeap struct {
	s       *Solver
	heap    []int
	indices map[int]int
}

func (h *varHeap) len() int { return len(h.heap) }

func (h *varHeap) less(a, b int) bool {
	return h.s.activity[h.heap[a]] > h.s.activity[h.heap[b]]
}

func (h *varHeap) swap(a, b int) {
	h.heap[a], h.heap[b] = h.heap[b], h.heap[a]
	h.indices[h.heap[a]] = a
	h.indices[h.heap[b]] = b
}

func (h *varHeap) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !h.less(i, p) {
			break
		}
		h.swap(i, p)
		i = p
	}
}

func (h *varHeap) down(i int) {
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(h.heap) && h.less(l, smallest) {
			smallest = l
		}
		if r < len(h.heap) && h.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		h.swap(i, smallest)
		i = smallest
	}
}

func (h *varHeap) push(v int) {
	if h.indices == nil {
		h.indices = make(map[int]int)
	}
	if _, ok := h.indices[v]; ok {
		return
	}
	h.heap = append(h.heap, v)
	h.indices[v] = len(h.heap) - 1
	h.up(len(h.heap) - 1)
}

func (h *varHeap) pushIfAbsent(v int) { h.push(v) }

func (h *varHeap) pop() int {
	v := h.heap[0]
	last := len(h.heap) - 1
	h.swap(0, last)
	h.heap = h.heap[:last]
	delete(h.indices, v)
	if len(h.heap) > 0 {
		h.down(0)
	}
	return v
}

func (h *varHeap) update(v int) {
	if i, ok := h.indices[v]; ok {
		h.up(i)
	}
}

// bumpClause raises a learnt clause's activity when it participates in
// conflict analysis.
func (s *Solver) bumpClause(c *clause) {
	if !c.learnt {
		return
	}
	c.act += s.claInc
	if c.act > 1e100 {
		for _, l := range s.learnts {
			l.act *= 1e-100
		}
		s.claInc *= 1e-100
	}
}

// reduceDB discards the less active half of the learnt clauses (keeping
// binary clauses and current reasons), bounding memory on long UNSAT
// proofs.
func (s *Solver) reduceDB() {
	isReason := map[*clause]bool{}
	for _, l := range s.trail {
		if r := s.reason[l.Var()]; r != nil {
			isReason[r] = true
		}
	}
	// Median activity by sampling-free selection: sort a copy of the
	// activities.
	acts := make([]float64, 0, len(s.learnts))
	for _, c := range s.learnts {
		acts = append(acts, c.act)
	}
	median := quickSelect(acts, len(acts)/2)
	kept := s.learnts[:0]
	for _, c := range s.learnts {
		if len(c.lits) <= 2 || isReason[c] || c.act >= median {
			kept = append(kept, c)
			continue
		}
		s.unwatch(c)
	}
	s.learnts = kept
}

// unwatch removes a clause from its two watcher lists.
func (s *Solver) unwatch(c *clause) {
	for _, w := range []Lit{c.lits[0].Not(), c.lits[1].Not()} {
		ws := s.watches[w]
		for i, cc := range ws {
			if cc == c {
				ws[i] = ws[len(ws)-1]
				s.watches[w] = ws[:len(ws)-1]
				break
			}
		}
	}
}

// quickSelect returns the k-th smallest element (destructive).
func quickSelect(a []float64, k int) float64 {
	if len(a) == 0 {
		return 0
	}
	lo, hi := 0, len(a)-1
	for lo < hi {
		pivot := a[(lo+hi)/2]
		i, j := lo, hi
		for i <= j {
			for a[i] < pivot {
				i++
			}
			for a[j] > pivot {
				j--
			}
			if i <= j {
				a[i], a[j] = a[j], a[i]
				i++
				j--
			}
		}
		if k <= j {
			hi = j
		} else if k >= i {
			lo = i
		} else {
			break
		}
	}
	return a[k]
}
