package core

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/lift"
	"repro/internal/netlist"
	"repro/internal/sta"
)

func mkResult(start, end netlist.CellID, c fault.CValue, o lift.Outcome) lift.Result {
	return lift.Result{
		Spec:    fault.Spec{Start: start, End: end, C: c},
		Outcome: o,
	}
}

func TestTable4PairAggregation(t *testing.T) {
	results := []lift.Result{
		// Pair (1,2): one success, one UR -> S.
		mkResult(1, 2, fault.C0, lift.Success),
		mkResult(1, 2, fault.C1, lift.Unreachable),
		// Pair (3,4): both UR -> UR.
		mkResult(3, 4, fault.C0, lift.Unreachable),
		mkResult(3, 4, fault.C1, lift.Unreachable),
		// Pair (5,6): FC beats UR in the ranking.
		mkResult(5, 6, fault.C0, lift.ConvFail),
		mkResult(5, 6, fault.C1, lift.Unreachable),
		// Pair (7,8): FF.
		mkResult(7, 8, fault.C0, lift.FormalTimeout),
		mkResult(7, 8, fault.C1, lift.Unreachable),
	}
	row := Table4("ALU", false, results)
	if row.Total != 4 || row.S != 1 || row.UR != 1 || row.FC != 1 || row.FF != 1 {
		t.Errorf("tally = %+v", row)
	}
	if row.Pct(row.S) != 25 {
		t.Errorf("Pct = %v", row.Pct(row.S))
	}
	empty := Table4("ALU", false, nil)
	if empty.Pct(1) != 0 {
		t.Error("empty tally Pct must be 0")
	}
}

func TestQualityRowPct(t *testing.T) {
	r := QualityRow{Total: 8, Detected: 6}
	if r.Pct(r.Detected) != 75 {
		t.Errorf("Pct = %v", r.Pct(r.Detected))
	}
	var zero QualityRow
	if zero.Pct(3) != 0 {
		t.Error("zero-total Pct must be 0")
	}
}

func TestSortedResultsStable(t *testing.T) {
	rs := []lift.Result{
		mkResult(5, 1, fault.C0, lift.Success),
		mkResult(1, 9, fault.C0, lift.Success),
		mkResult(1, 2, fault.C0, lift.Success),
	}
	out := SortedResults(rs)
	if out[0].Spec.Start != 1 || out[0].Spec.End != 2 || out[2].Spec.Start != 5 {
		t.Errorf("sort order wrong: %+v", out)
	}
	// Original untouched.
	if rs[0].Spec.Start != 5 {
		t.Error("SortedResults mutated input")
	}
}

func TestShuffledSuiteDeterministic(t *testing.T) {
	s := &lift.Suite{Unit: "ALU"}
	for i := 0; i < 10; i++ {
		s.Cases = append(s.Cases, &lift.TestCase{Name: string(rune('a' + i))})
	}
	a := ShuffledSuite(s, 1)
	b := ShuffledSuite(s, 1)
	c := ShuffledSuite(s, 2)
	if len(a.Cases) != 10 {
		t.Fatal("shuffle lost cases")
	}
	sameAsA, sameAsOrig := true, true
	for i := range a.Cases {
		if a.Cases[i].Name != b.Cases[i].Name {
			sameAsA = false
		}
		if a.Cases[i].Name != s.Cases[i].Name {
			// expected to differ somewhere
		} else {
			continue
		}
		sameAsOrig = false
	}
	if !sameAsA {
		t.Error("same seed must give same order")
	}
	_ = sameAsOrig
	diff := false
	for i := range a.Cases {
		if a.Cases[i].Name != c.Cases[i].Name {
			diff = true
		}
	}
	if !diff {
		t.Error("different seeds should differ")
	}
}

func TestMergeSuites(t *testing.T) {
	s1 := &lift.Suite{Unit: "ALU", Cases: []*lift.TestCase{{Name: "a"}, {Name: "b"}}}
	s2 := &lift.Suite{Unit: "FPU", Cases: []*lift.TestCase{{Name: "c"}}}
	m := MergeSuites(s1, s2)
	if m.Unit != "ALL" || len(m.Cases) != 3 {
		t.Errorf("merge = %+v", m)
	}
}

func TestWorkloadSelection(t *testing.T) {
	w := NewALU(Config{Workloads: []string{"crc32"}})
	if err := w.ProfileWorkloads(); err != nil {
		t.Fatal(err)
	}
	if w.OpDensity <= 0 || w.SPProfile == nil {
		t.Error("profiling produced no data")
	}
	bad := NewALU(Config{Workloads: []string{"nope"}})
	if err := bad.ProfileWorkloads(); err == nil {
		t.Error("unknown workload must fail")
	}
}

func TestFigure8Bins(t *testing.T) {
	w := NewALU(Config{Workloads: []string{"crc32"}})
	if _, err := w.AgingAnalysis(); err != nil {
		t.Fatal(err)
	}
	bins := w.Figure8(10)
	if len(bins) != 10 {
		t.Fatalf("got %d bins", len(bins))
	}
	total := 0.0
	for _, b := range bins {
		total += b.Frac
		if b.HiPct <= b.LoPct {
			t.Error("bin bounds inverted")
		}
	}
	if total < 0.999 || total > 1.001 {
		t.Errorf("fractions sum to %v", total)
	}
}

func TestSuitePairsFirstIndex(t *testing.T) {
	s := &lift.Suite{Unit: "ALU", Cases: []*lift.TestCase{
		{Spec: fault.Spec{Type: sta.Setup, Start: 1, End: 2, C: fault.C0}},
		{Spec: fault.Spec{Type: sta.Setup, Start: 1, End: 2, C: fault.C1}},
		{Spec: fault.Spec{Type: sta.Setup, Start: 3, End: 4, C: fault.C0}},
	}}
	pairs := suitePairs(s)
	if len(pairs) != 2 {
		t.Fatalf("got %d pairs", len(pairs))
	}
	if pairs[0].OwnIdx != 0 || pairs[1].OwnIdx != 2 {
		t.Errorf("own indices wrong: %+v", pairs)
	}
}

func TestLifetimeSweepMonotonic(t *testing.T) {
	w := NewALU(Config{Workloads: []string{"crc32", "minver"}})
	years := []float64{0, 2, 4, 6, 8, 10}
	pts, err := w.LifetimeSweep(years)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != len(years) {
		t.Fatalf("got %d points", len(pts))
	}
	// Fresh design meets timing.
	if pts[0].SetupViolations != 0 || pts[0].WNSSetup <= 0 {
		t.Errorf("fresh design violates: %+v", pts[0])
	}
	// WNS is nonincreasing with age.
	for i := 1; i < len(pts); i++ {
		if pts[i].WNSSetup > pts[i-1].WNSSetup+1e-9 {
			t.Errorf("WNS improved with age: %v -> %v", pts[i-1], pts[i])
		}
	}
	// Violations appear before the 10-year horizon and onset is after 0.
	onset := FailureOnsetYears(pts)
	if onset <= 0 || onset > 10 {
		t.Errorf("onset = %v, want within (0, 10]", onset)
	}
	t.Logf("ALU failure onset: %.0f years (WNS@10y %.1fps)", onset, pts[len(pts)-1].WNSSetup)
}

func TestOnsetBisectMatchesSweep(t *testing.T) {
	w := NewALU(Config{Workloads: []string{"crc32", "minver"}})
	onset, err := w.OnsetBisect(10, 0.125)
	if err != nil {
		t.Fatal(err)
	}
	if onset <= 0 || onset > 10 {
		t.Fatalf("bisected onset = %v, want within (0, 10]", onset)
	}
	// The bisected onset must land inside the bracket a fine grid sweep
	// establishes: the last surviving grid point below it, the first
	// violating grid point at or above it.
	years := make([]float64, 0, 81)
	for y := 0.0; y <= 10.0001; y += 0.125 {
		years = append(years, y)
	}
	pts, err := w.LifetimeSweep(years)
	if err != nil {
		t.Fatal(err)
	}
	gridOnset := FailureOnsetYears(pts)
	if gridOnset <= 0 {
		t.Fatalf("grid sweep found no onset")
	}
	if diff := onset - gridOnset; diff < -0.125-1e-9 || diff > 0.125+1e-9 {
		t.Errorf("bisected onset %.4f vs grid onset %.4f: disagree beyond one grid step", onset, gridOnset)
	}
	t.Logf("onset: bisect %.3f years, grid %.3f years", onset, gridOnset)
}

func TestOnsetBisectSurvivor(t *testing.T) {
	// A horizon before the ALU's onset must report survival as -1.
	w := NewALU(Config{Workloads: []string{"crc32"}})
	onset, err := w.OnsetBisect(0.01, 0.005)
	if err != nil {
		t.Fatal(err)
	}
	if onset != -1 {
		t.Errorf("onset = %v at a 0.01-year horizon, want -1 (survives)", onset)
	}
}

func TestTemperatureSweep(t *testing.T) {
	w := NewALU(Config{Workloads: []string{"crc32"}, Years: 10})
	pts, err := w.TemperatureSweep([]float64{55, 85, 125})
	if err != nil {
		t.Fatal(err)
	}
	// Hotter parts age more: WNS must be nonincreasing in temperature.
	for i := 1; i < len(pts); i++ {
		if pts[i].WNSSetup > pts[i-1].WNSSetup+1e-9 {
			t.Errorf("WNS improved with heat: %+v -> %+v", pts[i-1], pts[i])
		}
	}
	// The cool corner should shed some of the signoff-corner violations
	// (the paper's false-positive discussion, §6.2).
	if pts[0].SetupViolations > pts[2].SetupViolations {
		t.Errorf("cooler corner has more violations: %+v", pts)
	}
	t.Logf("55C: WNS %.1f (%d paths); 125C: WNS %.1f (%d paths)",
		pts[0].WNSSetup, pts[0].SetupViolations, pts[2].WNSSetup, pts[2].SetupViolations)
}
