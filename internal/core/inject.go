package core

import (
	"context"
	"fmt"

	"repro/internal/chaos"
	"repro/internal/embench"
	"repro/internal/inject"
	"repro/internal/integrate"
	"repro/internal/isa"
	"repro/internal/profile"
)

// InjectOptions tunes Workflow.InjectionCampaign.
type InjectOptions struct {
	// Seed determines the sampled fault universe (and is recorded in
	// the report and checkpoint).
	Seed uint64
	// PerClass is how many injections to draw per fault class.
	PerClass int
	// Mode selects the program under injection: "standalone" runs the
	// lifted suite image by itself; "embedded" runs a benchmark carrying
	// the suite via profile-guided integration.
	Mode string
	// Workload is the embedded-mode benchmark (default "crc32").
	Workload string
	// Budget is the embedded-mode integration overhead budget
	// (default 0.01).
	Budget float64
	// MaxCycles is the per-injection cycle budget (default: the
	// campaign engine's default).
	MaxCycles uint64
	// CheckpointPath enables checkpoint/resume.
	CheckpointPath string
	// CheckpointEvery overrides the wave size between checkpoints.
	CheckpointEvery int
	// OnCheckpoint, when set, observes every checkpoint write with the
	// number of completed injections (see inject.Config.OnCheckpoint) —
	// the progress hook the fleet daemon surfaces on GET /jobs/{id}.
	OnCheckpoint func(done int)
	// FS is the filesystem seam checkpoint I/O goes through (nil: the
	// real filesystem) — see inject.Config.FS and internal/chaos.
	FS chaos.FS
	// Scalar forces the one-replay-per-injection baseline path instead
	// of packed concurrent fault simulation (differential debugging).
	Scalar bool
	// Guards names the always-on runtime guards to attach during every
	// injection ("all" or a subset of guard.Names for the unit); empty
	// runs unguarded. See inject.Config.Guards.
	Guards []string
}

// InjectionCampaign stress-tests the lifted suite against fault
// universes the pipeline did not target (see internal/inject): it
// samples the universes seeded from opts.Seed — excluding the STA
// violation census the suite was built for — and classifies every
// injection against a golden run. Cancel or expire ctx for a graceful
// partial report.
func (w *Workflow) InjectionCampaign(ctx context.Context, opts InjectOptions) (*inject.Report, error) {
	rep, _, err := w.InjectionCampaignStats(ctx, opts)
	return rep, err
}

// InjectionCampaignStats is InjectionCampaign plus the packed
// simulation accounting (wave occupancy, lane retirement, replay
// savings). Stats are nil when opts.Scalar forces the baseline path.
func (w *Workflow) InjectionCampaignStats(ctx context.Context, opts InjectOptions) (*inject.Report, *inject.PackedStats, error) {
	if w.Results == nil {
		if _, err := w.ErrorLifting(); err != nil {
			return nil, nil, err
		}
	}
	if opts.PerClass == 0 {
		opts.PerClass = 25
	}
	if opts.Mode == "" {
		opts.Mode = "standalone"
	}
	suite := w.Suite()

	var img *isa.Image
	switch opts.Mode {
	case "standalone":
		var err error
		img, err = suite.Image()
		if err != nil {
			return nil, nil, err
		}
	case "embedded":
		if opts.Workload == "" {
			opts.Workload = "crc32"
		}
		if opts.Budget == 0 {
			opts.Budget = 0.01
		}
		b, ok := embench.ByName(opts.Workload)
		if !ok {
			return nil, nil, fmt.Errorf("core: unknown workload %q", opts.Workload)
		}
		app, err := b.Build()
		if err != nil {
			return nil, nil, err
		}
		prof := profile.Collect(app, MemSize, MaxCycles)
		if prof == nil {
			return nil, nil, fmt.Errorf("core: %s did not exit cleanly during profiling", opts.Workload)
		}
		insts, err := suite.InstCount()
		if err != nil {
			return nil, nil, err
		}
		site, err := integrate.ChooseSite(prof, insts, opts.Budget)
		if err != nil {
			return nil, nil, err
		}
		emb, err := integrate.Embed(app, suite, site)
		if err != nil {
			return nil, nil, err
		}
		img = emb.Image
	default:
		return nil, nil, fmt.Errorf("core: unknown injection mode %q", opts.Mode)
	}

	specs := inject.SampleUniverse(w.Module, w.STA.Pairs, opts.PerClass, opts.Seed)
	return inject.RunWithStats(ctx, inject.Config{
		Module:          w.Module,
		Image:           img,
		Mode:            opts.Mode,
		Specs:           specs,
		Seed:            opts.Seed,
		MemSize:         MemSize,
		MaxCycles:       opts.MaxCycles,
		Parallelism:     w.Config.Parallelism,
		CheckpointPath:  opts.CheckpointPath,
		CheckpointEvery: opts.CheckpointEvery,
		OnCheckpoint:    opts.OnCheckpoint,
		FS:              opts.FS,
		Scalar:          opts.Scalar,
		Guards:          opts.Guards,
	})
}
