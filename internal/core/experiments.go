package core

import (
	"context"
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/cpu"
	"repro/internal/embench"
	"repro/internal/fault"
	"repro/internal/integrate"
	"repro/internal/isa"
	"repro/internal/lift"
	"repro/internal/par"
	"repro/internal/sta"
)

// ---- Table 3: STA result with aging-aware timing libraries ----

// Table3Row summarizes one unit's aged STA.
type Table3Row struct {
	Unit        string
	WNSSetupPs  float64
	SetupPaths  int
	WNSHoldPs   float64
	HoldPaths   int
	UniquePairs int
}

// Table3 extracts the row from a completed aging analysis.
func (w *Workflow) Table3() Table3Row {
	r := Table3Row{Unit: w.Module.Name, UniquePairs: len(w.STA.Pairs)}
	r.SetupPaths = w.STA.NumSetupViolations
	r.HoldPaths = w.STA.NumHoldViolations
	if r.SetupPaths > 0 {
		r.WNSSetupPs = w.STA.WNSSetup
	}
	if r.HoldPaths > 0 {
		r.WNSHoldPs = w.STA.WNSHold
	}
	return r
}

// ---- Figure 8: distribution of aging-induced delay increase ----

// HistogramBin is one bar of the Figure 8 histogram.
type HistogramBin struct {
	LoPct, HiPct float64
	Count        int
	Frac         float64
}

// Figure8 bins the per-cell delay-increase percentages of the logic
// cells (clock network and ties excluded, as in the paper's figure).
func (w *Workflow) Figure8(bins int) []HistogramBin {
	var pcts []float64
	for i, f := range w.STA.Factor {
		k := w.Module.Netlist.Cells[i].Kind
		if k.IsClock() || k.NumInputs() == 0 {
			continue
		}
		pcts = append(pcts, (f-1)*100)
	}
	if len(pcts) == 0 {
		return nil
	}
	lo, hi := pcts[0], pcts[0]
	for _, p := range pcts {
		if p < lo {
			lo = p
		}
		if p > hi {
			hi = p
		}
	}
	if hi == lo {
		hi = lo + 1e-9
	}
	out := make([]HistogramBin, bins)
	for i := range out {
		out[i].LoPct = lo + (hi-lo)*float64(i)/float64(bins)
		out[i].HiPct = lo + (hi-lo)*float64(i+1)/float64(bins)
	}
	for _, p := range pcts {
		i := int((p - lo) / (hi - lo) * float64(bins))
		if i >= bins {
			i = bins - 1
		}
		out[i].Count++
	}
	for i := range out {
		out[i].Frac = float64(out[i].Count) / float64(len(pcts))
	}
	return out
}

// ---- Table 4: result of test-case construction ----

// Table4Row tallies construction outcomes for one unit/config.
type Table4Row struct {
	Unit          string
	Mitigation    bool
	Total         int
	S, UR, FF, FC int
}

// Pct returns the percentage of outcome o.
func (r Table4Row) Pct(n int) float64 {
	if r.Total == 0 {
		return 0
	}
	return 100 * float64(n) / float64(r.Total)
}

// Table4 tallies per-pair outcomes: a pair counts as "S" if any of its
// variants produced a test case, as the paper tallies pairs rather than
// variants.
func Table4(unit string, mitigation bool, results []lift.Result) Table4Row {
	type key struct{ s, e int32 }
	byPair := map[key][]lift.Result{}
	for _, r := range results {
		k := key{int32(r.Spec.Start), int32(r.Spec.End)}
		byPair[k] = append(byPair[k], r)
	}
	row := Table4Row{Unit: unit, Mitigation: mitigation, Total: len(byPair)}
	for _, rs := range byPair {
		best := lift.Unreachable
		seen := map[lift.Outcome]bool{}
		for _, r := range rs {
			seen[r.Outcome] = true
		}
		switch {
		case seen[lift.Success]:
			best = lift.Success
		case seen[lift.ConvFail]:
			best = lift.ConvFail
		case seen[lift.FormalTimeout]:
			best = lift.FormalTimeout
		default:
			best = lift.Unreachable
		}
		switch best {
		case lift.Success:
			row.S++
		case lift.Unreachable:
			row.UR++
		case lift.FormalTimeout:
			row.FF++
		case lift.ConvFail:
			row.FC++
		}
	}
	return row
}

// ---- Table 5: suite size and cycle cost ----

// Table5Row reports the suite's size and one-pass cycle cost.
type Table5Row struct {
	Unit       string
	Mitigation bool
	TestCases  int
	Cycles     uint64
}

// Table5 measures the assembled suite.
func Table5(unit string, mitigation bool, s *lift.Suite) (Table5Row, error) {
	cyc, err := SuiteCycles(s)
	return Table5Row{Unit: unit, Mitigation: mitigation, TestCases: len(s.Cases), Cycles: cyc}, err
}

// ---- Table 6: detection quality against failing netlists ----

// Detection classifies one failing netlist's fate under a suite run.
type Detection int

// Detection outcomes (Table 6 columns).
const (
	DetectedOwn    Detection = iota // detected by its own (first matching) test case
	DetectedBefore                  // "B": an earlier case caught it
	DetectedLater                   // "L": missed by its own case, caught later
	DetectedStall                   // "S": the CPU stalled
	Missed
)

// QualityRow aggregates Table 6 for one failure mode.
type QualityRow struct {
	Unit     string
	FM       fault.CValue
	Total    int
	Detected int // any detection, including stalls
	Before   int
	Later    int
	Stall    int
}

// Pct expresses n as a percentage of the row total.
func (r QualityRow) Pct(n int) float64 {
	if r.Total == 0 {
		return 0
	}
	return 100 * float64(n) / float64(r.Total)
}

// suitePairs lists the unique pairs that have at least one test case,
// with the index of their first case in the suite.
func suitePairs(s *lift.Suite) []struct {
	Pair   sta.Pair
	Type   sta.PathType
	OwnIdx int
} {
	type key struct{ s, e int32 }
	seen := map[key]bool{}
	var out []struct {
		Pair   sta.Pair
		Type   sta.PathType
		OwnIdx int
	}
	for i, tc := range s.Cases {
		k := key{int32(tc.Spec.Start), int32(tc.Spec.End)}
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, struct {
			Pair   sta.Pair
			Type   sta.PathType
			OwnIdx int
		}{sta.Pair{Start: tc.Spec.Start, End: tc.Spec.End}, tc.Spec.Type, i})
	}
	return out
}

// runSuiteAgainst executes the suite image on a CPU whose unit is the
// given failing netlist and classifies the outcome relative to ownIdx.
// The context is polled during emulation (cpu.RunCtx), so a cancelled
// replay experiment stops mid-run instead of finishing the image.
func (w *Workflow) runSuiteAgainst(ctx context.Context, img *isa.Image, spec fault.Spec, ownIdx int) Detection {
	failing := fault.FailingNetlist(w.Module.Netlist, spec)
	c := cpu.New(MemSize)
	if w.Module.Name == "ALU" {
		c.ALU = cpu.NewNetlistALU(w.Module, failing)
	} else {
		c.FPU = cpu.NewNetlistFPU(w.Module, failing)
	}
	c.Load(img)
	switch c.RunCtx(ctx, MaxCycles) {
	case cpu.HaltBreak:
		caught := lift.FailedCase(c.X[isa.S1])
		switch {
		case caught == ownIdx:
			return DetectedOwn
		case caught < ownIdx:
			return DetectedBefore
		default:
			return DetectedLater
		}
	case cpu.HaltStalled, cpu.HaltFault:
		// A hung handshake or a corrupted address that faults are both
		// software-visible symptoms (the paper's "S" category: the
		// application stops progressing).
		return DetectedStall
	default:
		return Missed
	}
}

// TestQuality runs the paper's Table 6 experiment for the given suite:
// for every unique pair with a test case, emulate the aged silicon with
// the corresponding failing netlist in each failure mode (C=0, C=1,
// random) and run the whole suite against it. A failed replay task (or a
// cancelled pool) is an error, not a silently zero-tallied detection.
func (w *Workflow) TestQuality(s *lift.Suite) ([]QualityRow, error) {
	img, err := s.Image()
	if err != nil {
		return nil, err
	}
	pairs := suitePairs(s)
	modes := []fault.CValue{fault.C0, fault.C1, fault.CRandom}

	// One task per (failure mode, failing netlist): every task builds
	// its own failing netlist and CPU, so the pool shares only the
	// read-only suite image and module. Outcomes are collected in task
	// order and tallied sequentially below — identical to the nested
	// sequential loops at any parallelism.
	dets, err := par.Map(context.Background(), len(modes)*len(pairs), w.Config.Parallelism,
		func(ctx context.Context, i int) (Detection, error) {
			mode := modes[i/len(pairs)]
			p := pairs[i%len(pairs)]
			spec := fault.Spec{Type: p.Type, Start: p.Pair.Start, End: p.Pair.End, C: mode}
			return w.runSuiteAgainst(ctx, img, spec, p.OwnIdx), nil
		})
	if err != nil {
		return nil, err
	}

	var rows []QualityRow
	for mi, mode := range modes {
		row := QualityRow{Unit: w.Module.Name, FM: mode, Total: len(pairs)}
		for pi := range pairs {
			switch dets[mi*len(pairs)+pi] {
			case DetectedOwn:
				row.Detected++
			case DetectedBefore:
				row.Detected++
				row.Before++
			case DetectedLater:
				row.Detected++
				row.Later++
			case DetectedStall:
				row.Detected++
				row.Stall++
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// ---- Table 7: Vega vs random test suites ----

// VsRandomRow compares detection rates for one failure mode.
type VsRandomRow struct {
	Unit      string
	FM        fault.CValue
	VegaPct   float64
	RandomPct float64 // averaged over seeds
}

// VsRandom runs the Table 7 comparison: the Vega suite against random
// suites of the same size, averaged over the given number of seeds. A
// failed replay task (or a cancelled pool) is an error, not a silently
// zero-tallied detection.
func (w *Workflow) VsRandom(s *lift.Suite, seeds int) ([]VsRandomRow, error) {
	img, err := s.Image()
	if err != nil {
		return nil, err
	}
	pairs := suitePairs(s)
	modes := []fault.CValue{fault.C0, fault.C1, fault.CRandom}

	// Random suites are deterministic functions of their seed (the seed
	// is derived from the suite index, never a shared rand.Rand), so the
	// images can be built once up front and shared read-only by every
	// replay task.
	rImgs := make([]*isa.Image, seeds)
	for seed := range rImgs {
		rImgs[seed], err = lift.RandomSuite(w.Module, len(s.Cases), int64(1000+seed)).Image()
		if err != nil {
			return nil, err
		}
	}

	// One task per (mode, pair, suite): suite index 0 is the Vega suite,
	// 1..seeds are the random suites. Detection booleans are collected
	// in task order and reduced sequentially, so percentages accumulate
	// in the same order as the nested sequential loops.
	perPair := 1 + seeds
	detected, err := par.Map(context.Background(), len(modes)*len(pairs)*perPair, w.Config.Parallelism,
		func(ctx context.Context, i int) (bool, error) {
			mode := modes[i/(len(pairs)*perPair)]
			rem := i % (len(pairs) * perPair)
			p := pairs[rem/perPair]
			k := rem % perPair
			spec := fault.Spec{Type: p.Type, Start: p.Pair.Start, End: p.Pair.End, C: mode}
			if k == 0 {
				return w.runSuiteAgainst(ctx, img, spec, p.OwnIdx) != Missed, nil
			}
			return w.runSuiteAgainst(ctx, rImgs[k-1], spec, -1) != Missed, nil
		})
	if err != nil {
		return nil, err
	}

	at := func(mi, pi, k int) bool { return detected[(mi*len(pairs)+pi)*perPair+k] }
	var rows []VsRandomRow
	for mi, mode := range modes {
		row := VsRandomRow{Unit: w.Module.Name, FM: mode}
		vega := 0
		for pi := range pairs {
			if at(mi, pi, 0) {
				vega++
			}
		}
		row.VegaPct = 100 * float64(vega) / float64(len(pairs))

		var randTotal float64
		for seed := 0; seed < seeds; seed++ {
			n := 0
			for pi := range pairs {
				if at(mi, pi, 1+seed) {
					n++
				}
			}
			randTotal += 100 * float64(n) / float64(len(pairs))
		}
		row.RandomPct = randTotal / float64(seeds)
		rows = append(rows, row)
	}
	return rows, nil
}

// ---- Figure 9: integration overhead on embench ----

// Figure9Row is one (benchmark, suite-config) overhead bar.
type Figure9Row struct {
	App         string
	Config      string // "-N" or "-M"
	OverheadPct float64
	Period      int
}

// Figure9 measures the profile-guided integration overhead of the given
// suite over every embench workload.
func Figure9(suite *lift.Suite, config string, budget float64) ([]Figure9Row, error) {
	var rows []Figure9Row
	for _, b := range embench.All {
		app, err := b.Build()
		if err != nil {
			return nil, err
		}
		o, err := integrate.MeasureOverhead(b.Name, app, suite, budget, MemSize, MaxCycles)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Figure9Row{
			App:         b.Name,
			Config:      config,
			OverheadPct: o.Fraction * 100,
			Period:      o.Site.Period,
		})
	}
	return rows, nil
}

// MeanOverheadPct averages Figure 9 rows.
func MeanOverheadPct(rows []Figure9Row) float64 {
	if len(rows) == 0 {
		return 0
	}
	var sum float64
	for _, r := range rows {
		sum += r.OverheadPct
	}
	return sum / float64(len(rows))
}

// ---- shared helpers ----

// SortedResults orders lifting results by pair for stable reports.
func SortedResults(rs []lift.Result) []lift.Result {
	out := append([]lift.Result(nil), rs...)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Spec.Start != out[j].Spec.Start {
			return out[i].Spec.Start < out[j].Spec.Start
		}
		return out[i].Spec.End < out[j].Spec.End
	})
	return out
}

// ShuffledSuite returns a copy of the suite with its cases in a
// deterministic pseudo-random order (the random scheduling mode of the
// aging library, §3.4.1).
func ShuffledSuite(s *lift.Suite, seed int64) *lift.Suite {
	out := &lift.Suite{Unit: s.Unit, Cases: append([]*lift.TestCase(nil), s.Cases...)}
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(out.Cases), func(i, j int) {
		out.Cases[i], out.Cases[j] = out.Cases[j], out.Cases[i]
	})
	return out
}

// Describe renders a one-line workflow summary.
func (w *Workflow) Describe() string {
	return fmt.Sprintf("%s @ %.0f MHz (scale %.3f, margin %.2f%%)",
		w.Module.Name, w.Module.FrequencyMHz(), w.Scale, 100*w.Module.SynthMargin)
}
