package core

import (
	"context"

	"repro/internal/engine"
	"repro/internal/netlist"
	"repro/internal/par"
	"repro/internal/sim"
)

// randomSPChunks is the fixed partition width of the packed
// random-stimulus SP profile. Like profileChunks it is a constant — not
// Config.Parallelism — because chunk boundaries define where the
// evaluator's state resets and where the per-chunk stimulus seeds
// rebase, and both must be independent of the worker count for the
// profile to be byte-identical at every Parallelism setting.
const randomSPChunks = 16

// RandomSP collects a synthetic signal-probability profile of a netlist
// under uniform random stimulus through the engine's 64-lane packed
// evaluator: each packed cycle advances 64 independent random stimulus
// streams, with residency accumulated exactly via popcount. `cycles`
// counts packed cycles, so the profile covers cycles x 64 lane-cycles of
// observation.
//
// This is the profile-free screening mode: when no representative
// workload exists (or a pessimism-free baseline is wanted), random
// stimulus approximates the SP ~ 0.5 equilibrium that an unknown
// workload mix drives most data nets toward, and the aging STA can run
// on it directly. The workload-driven profile in ProfileWorkloads
// remains the paper-faithful path and is byte-identical to the scalar
// replay; RandomSP is an additional, packed-native workload.
//
// Work is partitioned into fixed chunks; chunk ci derives its stimulus
// seed as par.Seed(seed, ci) and starts from reset, so the merged
// profile is a function of (netlist, cycles, seed) alone — never of
// parallelism or scheduling.
func RandomSP(nl *netlist.Netlist, cycles int, seed int64, parallelism int) (*sim.Profile, error) {
	if cycles <= 0 {
		return &sim.Profile{}, nil
	}
	prog := engine.Cached(nl)
	chunks := randomSPChunks
	if cycles < chunks {
		chunks = cycles
	}
	parts, err := par.Map(context.Background(), chunks, parallelism,
		func(_ context.Context, ci int) (*sim.Profile, error) {
			lo := ci * cycles / chunks
			hi := (ci + 1) * cycles / chunks
			return engine.RandomProfile(prog, hi-lo, par.Seed(seed, ci)), nil
		})
	if err != nil {
		return nil, err
	}
	return sim.MergeProfiles(parts...), nil
}

// RandomSPProfile runs RandomSP over the workflow's module and installs
// the result as the workflow's SP profile, so a subsequent AgingAnalysis
// consumes synthetic random-stimulus SPs instead of workload-driven
// ones.
func (w *Workflow) RandomSPProfile(cycles int, seed int64) (*sim.Profile, error) {
	p, err := RandomSP(w.Module.Netlist, cycles, seed, w.Config.Parallelism)
	if err != nil {
		return nil, err
	}
	w.SPProfile = p
	return p, nil
}
