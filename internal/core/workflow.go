// Package core orchestrates the three-phase Vega workflow end to end:
// representative-workload signal-probability profiling, aging-aware
// static timing analysis, error lifting (failure-model instrumentation +
// bounded model checking + instruction construction), and suite
// assembly. The root vega package and the cmd/ binaries are thin shells
// over this package.
package core

import (
	"context"
	"fmt"

	"repro/internal/aging"
	"repro/internal/alu"
	"repro/internal/cell"
	"repro/internal/cpu"
	"repro/internal/embench"
	"repro/internal/fpu"
	"repro/internal/lift"
	"repro/internal/module"
	"repro/internal/par"
	"repro/internal/sim"
	"repro/internal/sta"
)

// MemSize is the simulated memory size used throughout the workflow.
const MemSize = 1 << 20

// MaxCycles bounds every workload run.
const MaxCycles = 500_000_000

// Config tunes a workflow run.
type Config struct {
	// Years is the assumed lifetime for the aging analysis (default 10,
	// the mission-critical standard of §3.2.2).
	Years float64
	// SPBudgetCycles bounds the gate-level signal-probability
	// simulation (default 20000 module cycles per unit).
	SPBudgetCycles int
	// MaxSampledOps bounds how many recorded operations are replayed at
	// gate level (default 400).
	MaxSampledOps int
	// Workloads selects the representative benchmarks (default: all of
	// embench).
	Workloads []string
	// Parallelism bounds the worker fan-out of every embarrassingly
	// parallel phase (error lifting, workload profiling, suite replay,
	// sweeps). 0 selects runtime.NumCPU(); 1 runs the plain sequential
	// loops. Results are identical at every setting — parallel phases
	// collect in task-index order and each task derives its own state
	// (clones, simulators, seeds) from its index alone.
	Parallelism int
	// Lift tunes the error-lifting phase.
	Lift lift.Config
}

func (c *Config) fill() {
	if c.Years == 0 {
		c.Years = 10
	}
	if c.SPBudgetCycles == 0 {
		c.SPBudgetCycles = 20000
	}
	if c.MaxSampledOps == 0 {
		c.MaxSampledOps = 400
	}
}

// Workflow carries the state of one unit's analysis.
type Workflow struct {
	Config Config
	Module *module.Module
	Lib    *cell.Library
	Model  *aging.Model
	Scale  float64

	// Filled by ProfileWorkloads:
	OpTrace    []cpu.OpRecord // sampled unit operations
	OpDensity  float64        // unit ops per retired instruction
	SPProfile  *sim.Profile
	TotalInsts uint64

	// Filled by AgingAnalysis:
	STA *sta.Result

	// Filled by ErrorLifting:
	Results []lift.Result // all variants over all unique pairs
}

// NewALU creates a workflow for the ALU.
func NewALU(cfg Config) *Workflow { return newWorkflow(alu.Build(), cfg) }

// NewFPU creates a workflow for the FPU.
func NewFPU(cfg Config) *Workflow { return newWorkflow(fpu.Build(), cfg) }

func newWorkflow(m *module.Module, cfg Config) *Workflow {
	cfg.fill()
	lib := cell.Lib28()
	return &Workflow{
		Config: cfg,
		Module: m,
		Lib:    lib,
		Model:  aging.Default(),
		Scale:  sta.Calibrate(m.Netlist, lib, m.PeriodPs, m.SynthMargin),
	}
}

// ProfileWorkloads runs the representative workloads on the behavioural
// CPU, recording every operation offloaded to the unit, then replays a
// sample of the trace through the synthesized netlist with
// representative idle gaps to collect the signal-probability profile
// (§3.2.1). The idle-to-active ratio is what exposes the gated clock
// subtrees of a rarely-used unit to BTI stress.
func (w *Workflow) ProfileWorkloads() error {
	benches := embench.All
	if len(w.Config.Workloads) > 0 {
		benches = benches[:0:0]
		for _, name := range w.Config.Workloads {
			b, ok := embench.ByName(name)
			if !ok {
				return fmt.Errorf("core: unknown workload %q", name)
			}
			benches = append(benches, b)
		}
	}
	ctx := context.Background()

	// Stage 1 — one task per workload: run the behavioural CPU and
	// record the unit's operation trace. Traces are concatenated at the
	// barrier in workload order, so the merged trace is identical to the
	// one a sequential loop over benches would build.
	type workloadRun struct {
		trace   []cpu.OpRecord
		instret uint64
	}
	runs, err := par.Map(ctx, len(benches), w.Config.Parallelism, func(_ context.Context, i int) (workloadRun, error) {
		b := benches[i]
		img, err := b.Build()
		if err != nil {
			return workloadRun{}, fmt.Errorf("core: workload %s: %w", b.Name, err)
		}
		c := cpu.New(MemSize)
		recALU := &cpu.RecordingALU{}
		recFPU := &cpu.RecordingFPU{}
		c.ALU = recALU
		c.FPU = recFPU
		c.Load(img)
		if halt := c.Run(MaxCycles); halt != cpu.HaltExit || c.ExitCode != 0 {
			return workloadRun{}, fmt.Errorf("core: workload %s failed (halt=%v exit=%d)", b.Name, halt, c.ExitCode)
		}
		out := workloadRun{instret: c.Instret}
		if w.Module.Name == "ALU" {
			out.trace = recALU.Trace
		} else {
			out.trace = recFPU.Trace
		}
		return out, nil
	})
	if err != nil {
		return err
	}
	var trace []cpu.OpRecord
	var totalInsts uint64
	for _, r := range runs {
		trace = append(trace, r.trace...)
		totalInsts += r.instret
	}
	if len(trace) == 0 {
		return fmt.Errorf("core: workloads issued no %s operations", w.Module.Name)
	}
	w.TotalInsts = totalInsts
	w.OpDensity = float64(len(trace)) / float64(totalInsts)

	// Sample ops evenly and derive the idle gap that preserves the
	// unit's duty cycle, bounded by the simulation budget.
	n := len(trace)
	sampleN := w.Config.MaxSampledOps
	if n < sampleN {
		sampleN = n
	}
	sampled := make([]cpu.OpRecord, 0, sampleN)
	for i := 0; i < sampleN; i++ {
		sampled = append(sampled, trace[i*n/sampleN])
	}
	w.OpTrace = sampled

	period := w.Module.Latency + 1
	idealGap := int(1/w.OpDensity) - period
	maxGap := (w.Config.SPBudgetCycles - sampleN*period) / sampleN
	gap := idealGap
	if gap > maxGap {
		gap = maxGap
	}
	if gap < 0 {
		gap = 0
	}

	// Stage 2 — replay the sampled ops at gate level in fixed chunks,
	// one simulator per chunk, and merge the partial SP profiles at the
	// barrier. Chunk boundaries depend only on sampleN (never on
	// Parallelism), each chunk's simulator starts from the same reset
	// state, and the raw residency counters merge exactly (multiples of
	// 0.5 summed in chunk order), so the profile is byte-identical at
	// every Parallelism setting.
	chunks := profileChunks
	if sampleN < chunks {
		chunks = sampleN
	}
	parts, err := par.Map(ctx, chunks, w.Config.Parallelism, func(_ context.Context, ci int) (*sim.Profile, error) {
		lo := ci * sampleN / chunks
		hi := (ci + 1) * sampleN / chunks
		d := module.NewDriver(w.Module)
		d.Sim.EnableSP()
		for _, op := range sampled[lo:hi] {
			d.Exec(op.Op, op.A, op.B)
			d.Sim.SetInput(module.PortInValid, 0)
			d.Sim.Run(gap)
		}
		return d.Sim.Profile(), nil
	})
	if err != nil {
		return err
	}
	w.SPProfile = sim.MergeProfiles(parts...)
	return nil
}

// profileChunks is the fixed partition width of the gate-level SP
// replay. It is a constant — not Config.Parallelism — because the chunk
// boundaries define where the replayed unit's state resets, and that
// must not change with the worker count or the profile would too.
const profileChunks = 16

// batchConfig assembles the workflow's standing parameters for the
// batched multi-corner STA engine. The per-endpoint report bound is the
// signoff-style 40-worst-paths window used by every aged analysis.
func (w *Workflow) batchConfig() sta.BatchConfig {
	return sta.BatchConfig{
		PeriodPs:    w.Module.PeriodPs,
		Scale:       w.Scale,
		Base:        w.Lib,
		Model:       w.Model,
		Profile:     w.SPProfile,
		PerEndpoint: 40,
		Parallelism: w.Config.Parallelism,
	}
}

// AgingAnalysis runs the aging-aware STA (§3.2.2) over the SP profile.
func (w *Workflow) AgingAnalysis() (*sta.Result, error) {
	if w.SPProfile == nil {
		if err := w.ProfileWorkloads(); err != nil {
			return nil, err
		}
	}
	res := sta.AnalyzeCorners(w.Module.Netlist, w.batchConfig(),
		[]sta.Corner{{Years: w.Config.Years}})
	w.STA = res[0]
	return w.STA, nil
}

// FreshAnalysis runs the nominal (unaged) STA for signoff comparison.
func (w *Workflow) FreshAnalysis() *sta.Result {
	cfg := w.batchConfig()
	// Fresh signoff keeps the scalar default nworst window (400), like
	// the standalone fresh Analyze it replaced.
	cfg.PerEndpoint = 0
	return sta.AnalyzeCorners(w.Module.Netlist, cfg, []sta.Corner{{}})[0]
}

// ErrorLifting runs failure-model instrumentation, trace generation and
// instruction construction for every unique aging-prone pair (§3.3).
// Pairs are lifted in parallel — each task instruments its own
// structural clone and runs its own BMC/SAT instance — and the results
// are flattened in pair order, so the output matches the sequential loop
// exactly.
func (w *Workflow) ErrorLifting() ([]lift.Result, error) {
	if w.STA == nil {
		if _, err := w.AgingAnalysis(); err != nil {
			return nil, err
		}
	}
	perPair, err := par.Map(context.Background(), len(w.STA.Pairs), w.Config.Parallelism,
		func(_ context.Context, i int) ([]lift.Result, error) {
			p := w.STA.Pairs[i]
			return lift.Construct(w.Module, p.Pair, p.Type, w.Config.Lift), nil
		})
	if err != nil {
		return nil, err
	}
	var all []lift.Result
	for _, rs := range perPair {
		all = append(all, rs...)
	}
	w.Results = all
	return all, nil
}

// LiftStats aggregates the BMC solver effort of the completed error
// lifting per outcome (minimal depths, conflicts, propagations,
// restarts, learnt clauses).
func (w *Workflow) LiftStats() []lift.OutcomeStats {
	return lift.StatsByOutcome(w.Results)
}

// Suite assembles every successfully constructed test case, in pair
// order.
func (w *Workflow) Suite() *lift.Suite {
	s := &lift.Suite{Unit: w.Module.Name}
	for _, r := range w.Results {
		if r.Outcome == lift.Success {
			s.Cases = append(s.Cases, r.Case)
		}
	}
	return s
}

// SuiteCycles measures the cycle cost of running the whole suite once on
// the (healthy, behavioural) CPU — the paper's Table 5 metric.
func SuiteCycles(s *lift.Suite) (uint64, error) {
	if len(s.Cases) == 0 {
		return 0, nil
	}
	img, err := s.Image()
	if err != nil {
		return 0, err
	}
	c := cpu.New(MemSize)
	c.Load(img)
	if halt := c.Run(MaxCycles); halt != cpu.HaltExit || c.ExitCode != 0 {
		return 0, fmt.Errorf("core: suite failed on healthy CPU (halt=%v exit=%d case=%d)",
			halt, c.ExitCode, c.X[9])
	}
	return c.Cycles, nil
}

// MergeSuites concatenates per-unit suites into one integration payload.
func MergeSuites(suites ...*lift.Suite) *lift.Suite {
	out := &lift.Suite{Unit: "ALL"}
	for _, s := range suites {
		out.Cases = append(out.Cases, s.Cases...)
	}
	return out
}

// OnsetPoint is one sample of a lifetime sweep.
type OnsetPoint struct {
	Years           float64
	WNSSetup        float64
	WNSHold         float64
	SetupViolations int
	HoldViolations  int
}

// LifetimeSweep re-runs the aging-aware STA across a range of assumed
// lifetimes, answering the deployment question behind the paper's
// motivation (§2.1): *when* does this unit start violating timing? The
// SP profile is collected once and reused, and all sweep points run as
// one batched multi-corner pass: one timing-graph traversal fills every
// point's arrivals, so dense sweeps cost little more than one Analyze.
// (Fresh points now share the aged points' 40-worst-paths report bound;
// a calibrated fresh design has no violations, so the census is
// unchanged.)
func (w *Workflow) LifetimeSweep(years []float64) ([]OnsetPoint, error) {
	if w.SPProfile == nil {
		if err := w.ProfileWorkloads(); err != nil {
			return nil, err
		}
	}
	corners := make([]sta.Corner, len(years))
	for i, yr := range years {
		corners[i] = sta.Corner{Years: yr}
	}
	results := sta.AnalyzeCorners(w.Module.Netlist, w.batchConfig(), corners)
	points := make([]OnsetPoint, len(years))
	for i, res := range results {
		points[i] = OnsetPoint{
			Years:           years[i],
			WNSSetup:        res.WNSSetup,
			WNSHold:         res.WNSHold,
			SetupViolations: res.NumSetupViolations,
			HoldViolations:  res.NumHoldViolations,
		}
	}
	return points, nil
}

// FailureOnsetYears returns the first swept lifetime with any violation,
// or -1 if the unit survives the whole sweep.
func FailureOnsetYears(points []OnsetPoint) float64 {
	for _, p := range points {
		if p.SetupViolations > 0 || p.HoldViolations > 0 {
			return p.Years
		}
	}
	return -1
}

// OnsetBisect resolves the failure-onset lifetime to within tol years by
// bisecting over (0, maxYears]. Where LifetimeSweep answers the question
// with a dense grid in one batched pass, the bisection holds a single
// persistent sta.Incremental and moves its live corner between probes:
// adjacent lifetimes produce bitwise-identical aged delays for most
// cells (ties, saturated SP bins, cells far from their factor-grid
// breakpoints), so each probe re-times only the cones that actually
// shifted instead of re-running a full analysis. Returns the smallest
// probed lifetime with a violation, or -1 if the unit survives maxYears.
func (w *Workflow) OnsetBisect(maxYears, tol float64) (float64, error) {
	if w.SPProfile == nil {
		if err := w.ProfileWorkloads(); err != nil {
			return 0, err
		}
	}
	if maxYears <= 0 {
		return 0, fmt.Errorf("core: OnsetBisect needs maxYears > 0, got %v", maxYears)
	}
	if tol <= 0 {
		tol = maxYears / 128
	}
	violates := func(rs []*sta.Result) bool {
		return rs[0].NumSetupViolations > 0 || rs[0].NumHoldViolations > 0
	}
	inc := sta.NewIncremental(w.Module.Netlist, w.batchConfig(),
		[]sta.Corner{{Years: maxYears}})
	defer inc.Close()
	if !violates(inc.Results()) {
		return -1, nil
	}
	lo, hi := 0.0, maxYears // lo: meets timing (calibrated fresh); hi: violates
	for hi-lo > tol {
		mid := (lo + hi) / 2
		if violates(inc.SetCorners([]sta.Corner{{Years: mid}})) {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, nil
}

// TempPoint is one sample of a temperature sweep.
type TempPoint struct {
	TempC           float64
	WNSSetup        float64
	SetupViolations int
}

// TemperatureSweep re-runs the 10-year aging-aware STA across operating
// temperatures — the §6.2 environmental-noise question: how much of the
// violation census survives at cooler corners? Aging accelerates with
// temperature (Arrhenius), so the signoff-corner analysis is the
// conservative envelope.
func (w *Workflow) TemperatureSweep(tempsC []float64) ([]TempPoint, error) {
	if w.SPProfile == nil {
		if err := w.ProfileWorkloads(); err != nil {
			return nil, err
		}
	}
	// One batched pass over per-temperature corners; the corner grid
	// clones the aging model per TempK override, so the shared model
	// stays read-only.
	corners := make([]sta.Corner, len(tempsC))
	for i, tc := range tempsC {
		corners[i] = sta.Corner{Years: w.Config.Years, TempK: tc + 273.15}
	}
	results := sta.AnalyzeCorners(w.Module.Netlist, w.batchConfig(), corners)
	points := make([]TempPoint, len(tempsC))
	for i, res := range results {
		points[i] = TempPoint{
			TempC:           tempsC[i],
			WNSSetup:        res.WNSSetup,
			SetupViolations: res.NumSetupViolations,
		}
	}
	return points, nil
}
