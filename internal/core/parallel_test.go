package core

import (
	"bytes"
	"context"
	"reflect"
	"testing"

	"repro/internal/aging"
	"repro/internal/alu"
	"repro/internal/cell"
	"repro/internal/inject"
	"repro/internal/lift"
	"repro/internal/par"
	"repro/internal/sta"
)

// liftedALU runs the full pipeline (profile → aged STA → error lifting)
// at the given parallelism on a fast workload subset.
func liftedALU(t *testing.T, parallelism int) *Workflow {
	t.Helper()
	w := NewALU(Config{Workloads: []string{"crc32", "minver"}, Parallelism: parallelism})
	if _, err := w.ErrorLifting(); err != nil {
		t.Fatal(err)
	}
	return w
}

// TestParallelismDeterminism is the load-bearing test for the parallel
// workflow: every phase run at Parallelism=8 must produce results
// deep-equal to Parallelism=1. This holds because tasks are pure
// functions of their index, results are collected in index order, and
// the SP replay partitions on fixed chunk boundaries.
func TestParallelismDeterminism(t *testing.T) {
	w1 := liftedALU(t, 1)
	w8 := liftedALU(t, 8)

	if !reflect.DeepEqual(w1.SPProfile, w8.SPProfile) {
		t.Error("SP profiles differ between Parallelism=1 and Parallelism=8")
	}
	if w1.OpDensity != w8.OpDensity || w1.TotalInsts != w8.TotalInsts {
		t.Errorf("profiling stats differ: (%v,%v) vs (%v,%v)",
			w1.OpDensity, w1.TotalInsts, w8.OpDensity, w8.TotalInsts)
	}
	if !reflect.DeepEqual(w1.OpTrace, w8.OpTrace) {
		t.Error("sampled op traces differ")
	}
	if !reflect.DeepEqual(w1.STA.Pairs, w8.STA.Pairs) {
		t.Error("aging-prone pair censuses differ")
	}
	if len(w1.Results) == 0 || !reflect.DeepEqual(w1.Results, w8.Results) {
		t.Errorf("lifting results differ (or empty): %d vs %d results",
			len(w1.Results), len(w8.Results))
	}

	s1, s8 := w1.Suite(), w8.Suite()
	if !reflect.DeepEqual(s1, s8) {
		t.Fatal("assembled suites differ")
	}
	q1, err := w1.TestQuality(s1)
	if err != nil {
		t.Fatal(err)
	}
	q8, err := w8.TestQuality(s8)
	if err != nil {
		t.Fatal(err)
	}
	if len(q1) == 0 || !reflect.DeepEqual(q1, q8) {
		t.Errorf("TestQuality rows differ:\n  j=1: %+v\n  j=8: %+v", q1, q8)
	}
}

// TestParallelismDeterminismSweeps covers the remaining fan-out sites:
// the lifetime and temperature sweeps and the Vega-vs-random replay.
func TestParallelismDeterminismSweeps(t *testing.T) {
	w1 := liftedALU(t, 1)
	w8 := liftedALU(t, 8)

	years := []float64{0, 2, 5, 10}
	p1, err := w1.LifetimeSweep(years)
	if err != nil {
		t.Fatal(err)
	}
	p8, err := w8.LifetimeSweep(years)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p1, p8) {
		t.Errorf("lifetime sweeps differ: %+v vs %+v", p1, p8)
	}

	temps := []float64{55, 125}
	tp1, err := w1.TemperatureSweep(temps)
	if err != nil {
		t.Fatal(err)
	}
	tp8, err := w8.TemperatureSweep(temps)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tp1, tp8) {
		t.Errorf("temperature sweeps differ: %+v vs %+v", tp1, tp8)
	}

	v1, err := w1.VsRandom(w1.Suite(), 2)
	if err != nil {
		t.Fatal(err)
	}
	v8, err := w8.VsRandom(w8.Suite(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(v1, v8) {
		t.Errorf("VsRandom rows differ: %+v vs %+v", v1, v8)
	}
}

// TestRandomSPDeterminism extends the determinism regression to the
// packed evaluator: the 64-lane random-stimulus profile must be
// byte-identical at every Parallelism setting (chunk boundaries and
// per-chunk seeds depend only on cycles and chunk index), and must
// change when the seed does.
func TestRandomSPDeterminism(t *testing.T) {
	nl := alu.Build().Netlist
	p1, err := RandomSP(nl, 200, 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	p8, err := RandomSP(nl, 200, 7, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p1, p8) {
		t.Error("packed random-SP profiles differ between Parallelism=1 and Parallelism=8")
	}
	if p1.Cycles != 200*64 {
		t.Errorf("profile covers %d lane-cycles, want %d", p1.Cycles, 200*64)
	}
	other, err := RandomSP(nl, 200, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(p1, other) {
		t.Error("different seeds produced identical random-SP profiles")
	}
}

// TestConcurrentWorkflowsSharedLibrary hammers the concurrency
// invariants directly: several workflows running whole phases at once
// while sharing one cell.Library and one aging.Model, which must be
// treated as read-only by every phase. Run under -race this flushes out
// any write to shared state; instrumentation works on builder copies
// (and Module.Clone provides hard isolation), so none should exist.
func TestConcurrentWorkflowsSharedLibrary(t *testing.T) {
	sharedLib := cell.Lib28()
	sharedModel := aging.Default()

	err := par.ForEach(context.Background(), 4, 4, func(_ context.Context, i int) error {
		w := NewALU(Config{Workloads: []string{"crc32"}, Parallelism: 2})
		w.Lib = sharedLib
		w.Model = sharedModel
		if _, err := w.AgingAnalysis(); err != nil {
			return err
		}
		// Lift a few pairs on a cloned module while sibling goroutines
		// lift from their own workflows concurrently.
		m := w.Module.Clone()
		for _, p := range w.STA.Pairs[:min(3, len(w.STA.Pairs))] {
			for _, r := range lift.Construct(m, p.Pair, p.Type, w.Config.Lift) {
				_ = r
			}
		}
		// And exercise a sweep, which reads the shared model per task.
		if _, err := w.TemperatureSweep([]float64{85, 125}); err != nil {
			return err
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestInjectionCampaignDeterminism wires the campaign through the full
// workflow (lift -> sample universe excluding the STA census -> inject)
// and pins the j=1 vs j=8 byte-identical-report contract at this level
// too.
func TestInjectionCampaignDeterminism(t *testing.T) {
	w1 := liftedALU(t, 1)
	w8 := liftedALU(t, 8)
	opts := InjectOptions{Seed: 5, PerClass: 2, MaxCycles: 20_000_000}
	r1, err := w1.InjectionCampaign(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	r8, err := w8.InjectionCampaign(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	j1, err1 := r1.JSON()
	j8, err8 := r8.JSON()
	if err1 != nil || err8 != nil {
		t.Fatal(err1, err8)
	}
	if !bytes.Equal(j1, j8) {
		t.Errorf("campaign reports differ between j=1 and j=8:\n%s\n---\n%s", j1, j8)
	}
	if r1.Completed != r1.Total || r1.Total != 8 {
		t.Errorf("campaign completed %d/%d, want 8/8", r1.Completed, r1.Total)
	}
	// The sampled universe must exclude every STA-census pair: the
	// campaign measures robustness beyond the suite's design target.
	excl := make(map[sta.Pair]bool)
	for _, p := range w1.STA.Pairs {
		excl[p.Pair] = true
	}
	for _, s := range inject.SampleUniverse(w1.Module, w1.STA.Pairs, 5, 5) {
		for _, f := range s.Faults {
			if excl[sta.Pair{Start: f.Start, End: f.End}] {
				t.Errorf("sampled spec %s hits an STA-census pair", s.String())
			}
		}
	}
}
