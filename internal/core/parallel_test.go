package core

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/aging"
	"repro/internal/alu"
	"repro/internal/cell"
	"repro/internal/lift"
	"repro/internal/par"
)

// liftedALU runs the full pipeline (profile → aged STA → error lifting)
// at the given parallelism on a fast workload subset.
func liftedALU(t *testing.T, parallelism int) *Workflow {
	t.Helper()
	w := NewALU(Config{Workloads: []string{"crc32", "minver"}, Parallelism: parallelism})
	if _, err := w.ErrorLifting(); err != nil {
		t.Fatal(err)
	}
	return w
}

// TestParallelismDeterminism is the load-bearing test for the parallel
// workflow: every phase run at Parallelism=8 must produce results
// deep-equal to Parallelism=1. This holds because tasks are pure
// functions of their index, results are collected in index order, and
// the SP replay partitions on fixed chunk boundaries.
func TestParallelismDeterminism(t *testing.T) {
	w1 := liftedALU(t, 1)
	w8 := liftedALU(t, 8)

	if !reflect.DeepEqual(w1.SPProfile, w8.SPProfile) {
		t.Error("SP profiles differ between Parallelism=1 and Parallelism=8")
	}
	if w1.OpDensity != w8.OpDensity || w1.TotalInsts != w8.TotalInsts {
		t.Errorf("profiling stats differ: (%v,%v) vs (%v,%v)",
			w1.OpDensity, w1.TotalInsts, w8.OpDensity, w8.TotalInsts)
	}
	if !reflect.DeepEqual(w1.OpTrace, w8.OpTrace) {
		t.Error("sampled op traces differ")
	}
	if !reflect.DeepEqual(w1.STA.Pairs, w8.STA.Pairs) {
		t.Error("aging-prone pair censuses differ")
	}
	if len(w1.Results) == 0 || !reflect.DeepEqual(w1.Results, w8.Results) {
		t.Errorf("lifting results differ (or empty): %d vs %d results",
			len(w1.Results), len(w8.Results))
	}

	s1, s8 := w1.Suite(), w8.Suite()
	if !reflect.DeepEqual(s1, s8) {
		t.Fatal("assembled suites differ")
	}
	q1 := w1.TestQuality(s1)
	q8 := w8.TestQuality(s8)
	if len(q1) == 0 || !reflect.DeepEqual(q1, q8) {
		t.Errorf("TestQuality rows differ:\n  j=1: %+v\n  j=8: %+v", q1, q8)
	}
}

// TestParallelismDeterminismSweeps covers the remaining fan-out sites:
// the lifetime and temperature sweeps and the Vega-vs-random replay.
func TestParallelismDeterminismSweeps(t *testing.T) {
	w1 := liftedALU(t, 1)
	w8 := liftedALU(t, 8)

	years := []float64{0, 2, 5, 10}
	p1, err := w1.LifetimeSweep(years)
	if err != nil {
		t.Fatal(err)
	}
	p8, err := w8.LifetimeSweep(years)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p1, p8) {
		t.Errorf("lifetime sweeps differ: %+v vs %+v", p1, p8)
	}

	temps := []float64{55, 125}
	tp1, err := w1.TemperatureSweep(temps)
	if err != nil {
		t.Fatal(err)
	}
	tp8, err := w8.TemperatureSweep(temps)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tp1, tp8) {
		t.Errorf("temperature sweeps differ: %+v vs %+v", tp1, tp8)
	}

	v1 := w1.VsRandom(w1.Suite(), 2)
	v8 := w8.VsRandom(w8.Suite(), 2)
	if !reflect.DeepEqual(v1, v8) {
		t.Errorf("VsRandom rows differ: %+v vs %+v", v1, v8)
	}
}

// TestRandomSPDeterminism extends the determinism regression to the
// packed evaluator: the 64-lane random-stimulus profile must be
// byte-identical at every Parallelism setting (chunk boundaries and
// per-chunk seeds depend only on cycles and chunk index), and must
// change when the seed does.
func TestRandomSPDeterminism(t *testing.T) {
	nl := alu.Build().Netlist
	p1, err := RandomSP(nl, 200, 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	p8, err := RandomSP(nl, 200, 7, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p1, p8) {
		t.Error("packed random-SP profiles differ between Parallelism=1 and Parallelism=8")
	}
	if p1.Cycles != 200*64 {
		t.Errorf("profile covers %d lane-cycles, want %d", p1.Cycles, 200*64)
	}
	other, err := RandomSP(nl, 200, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(p1, other) {
		t.Error("different seeds produced identical random-SP profiles")
	}
}

// TestConcurrentWorkflowsSharedLibrary hammers the concurrency
// invariants directly: several workflows running whole phases at once
// while sharing one cell.Library and one aging.Model, which must be
// treated as read-only by every phase. Run under -race this flushes out
// any write to shared state; instrumentation works on builder copies
// (and Module.Clone provides hard isolation), so none should exist.
func TestConcurrentWorkflowsSharedLibrary(t *testing.T) {
	sharedLib := cell.Lib28()
	sharedModel := aging.Default()

	err := par.ForEach(context.Background(), 4, 4, func(_ context.Context, i int) error {
		w := NewALU(Config{Workloads: []string{"crc32"}, Parallelism: 2})
		w.Lib = sharedLib
		w.Model = sharedModel
		if _, err := w.AgingAnalysis(); err != nil {
			return err
		}
		// Lift a few pairs on a cloned module while sibling goroutines
		// lift from their own workflows concurrently.
		m := w.Module.Clone()
		for _, p := range w.STA.Pairs[:min(3, len(w.STA.Pairs))] {
			for _, r := range lift.Construct(m, p.Pair, p.Type, w.Config.Lift) {
				_ = r
			}
		}
		// And exercise a sweep, which reads the shared model per task.
		if _, err := w.TemperatureSweep([]float64{85, 125}); err != nil {
			return err
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
