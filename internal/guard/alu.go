package guard

import (
	"math/bits"

	"repro/internal/alu"
)

// aluRes3 is the classic mod-3 residue code on the adder/subtractor.
// Because 2^32 ≡ 1 (mod 3), the wraparound carry/borrow contributes
// exactly one residue unit. The carry/borrow is derived from the
// operands — modelling a hardware checker that taps the adder's
// carry-out wire rather than inferring it from the (possibly corrupt)
// result:
//
//	ADD: a+b = r + c·2^32 with c = carry-out  ⇒  r ≡ a + b − c (mod 3)
//	SUB: a−b = r − w·2^32 with w = (a < b)    ⇒  r ≡ a − b + w (mod 3)
//
// Every single-bit flip of r changes r mod 3 (2^i mod 3 ∈ {1,2}), so
// residue coverage of single flips on ADD/SUB results is total.
func aluRes3(op, a, b, r, _ uint32) bool {
	switch alu.Op(op) {
	case alu.OpAdd:
		c := b2u(a+b < a) // carry-out tap
		return (a%3+b%3+3-c)%3 == r%3
	case alu.OpSub:
		w := b2u(a < b) // borrow tap
		return (a%3+3-b%3+w)%3 == r%3
	}
	return true
}

// aluParity checks parity(a^b) == parity(a)^parity(b) on XOR — again
// total coverage of single-bit result flips.
func aluParity(op, a, b, r, _ uint32) bool {
	if alu.Op(op) != alu.OpXor {
		return true
	}
	return bits.OnesCount32(r)&1 == (bits.OnesCount32(a)+bits.OnesCount32(b))&1
}

// aluBounds checks cheap bit-domain invariants on the logic and shift
// ops. These are deliberately partial (one inequality direction each):
// they model the kind of low-cost plausibility checkers a designer would
// afford, not full duplication.
func aluBounds(op, a, b, r, _ uint32) bool {
	switch alu.Op(op) {
	case alu.OpAnd:
		return r&^a == 0 && r&^b == 0 // no bit set that either operand lacks
	case alu.OpOr:
		return (a|b)&^r == 0 // no operand bit dropped
	case alu.OpSll:
		s := b & 31
		return s == 0 || r&(1<<s-1) == 0 // zero fill from the right
	case alu.OpSrl:
		s := b & 31
		return s == 0 || r>>(32-s) == 0 // zero fill from the left
	case alu.OpSra:
		s := b & 31
		if s == 0 {
			return true
		}
		fill := uint32(int32(a) >> 31) // 0x00000000 or 0xffffffff
		return r>>(32-s) == fill>>(32-s) // sign fill from the left
	case alu.OpSlt, alu.OpSltu:
		return r <= 1
	}
	return true
}

// aluFlagRules checks the comparison flag triple (eq, lt, ltu) for
// internal consistency on every op, and that SLT/SLTU results agree with
// the corresponding flag bit. eq excludes both orders; when the operand
// signs agree the signed and unsigned orders coincide, and when they
// differ they are exact opposites.
func aluFlagRules(op, a, b, r, f uint32) bool {
	if f>>alu.FlagWidth != 0 {
		return false
	}
	eq, lt, ltu := f&1 != 0, f&2 != 0, f&4 != 0
	if eq && (lt || ltu) {
		return false
	}
	if a>>31 == b>>31 {
		if lt != ltu {
			return false
		}
	} else if lt == ltu {
		return false
	}
	switch alu.Op(op) {
	case alu.OpSlt:
		return r == b2u(lt)
	case alu.OpSltu:
		return r == b2u(ltu)
	}
	return true
}
