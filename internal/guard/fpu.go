package guard

import (
	"math/bits"

	"repro/internal/fpu"
)

func signOf(x uint32) uint32 { return x >> 31 }
func expOf(x uint32) uint32  { return x >> 23 & 0xff }
func manOf(x uint32) uint32  { return x & 0x7fffff }
func isNaN(x uint32) bool    { return expOf(x) == 0xff && manOf(x) != 0 }
func isInf(x uint32) bool    { return expOf(x) == 0xff && manOf(x) == 0 }
func isZero(x uint32) bool   { return x&0x7fffffff == 0 }
func isFinite(x uint32) bool { return expOf(x) != 0xff }

// eAdj is the operand exponent in the softfloat decode frame: the biased
// exponent for normals, 1 for subnormals and zeros (fpu.decode).
func eAdj(x uint32) int32 {
	if e := expOf(x); e != 0 {
		return int32(e)
	}
	return 1
}

// eNorm is the fully-normalized biased exponent of a finite nonzero
// value: subnormal significands are shifted up until the hidden-bit
// position is occupied, decrementing the exponent below 1 (matching the
// normalization fpu.Mul applies before multiplying).
func eNorm(x uint32) int32 {
	e := eAdj(x)
	sig := manOf(x)
	if expOf(x) != 0 {
		sig |= 1 << 23
	}
	// Leading 1 belongs at bit 23; each missing position costs one
	// exponent step.
	return e - int32(23-(31-bits.LeadingZeros32(sig)))
}

// effSignB is b's sign with FSUB's negation applied.
func effSignB(op fpu.Op, b uint32) uint32 {
	s := signOf(b)
	if op == fpu.OpFsub {
		s ^= 1
	}
	return s
}

// fpuSign checks the sign algebra every op obeys:
//
//   - FMUL: a non-NaN product's sign is sa^sb (zeros, infinities and
//     rounded results alike).
//   - FADD/FSUB: adding two same-effective-sign non-NaN values can never
//     cancel, so the result is non-NaN and keeps that sign.
//   - FMIN/FMAX: the result is one of the operands or the canonical NaN.
//   - FLE/FLT/FEQ: boolean results.
//   - FSGNJ/FSGNJN/FSGNJX: full recompute — the op is pure bit algebra.
//   - FCLASS: the result is one-hot within 10 bits.
func fpuSign(op, a, b, r, _ uint32) bool {
	fop := fpu.Op(op)
	switch fop {
	case fpu.OpFmul:
		if isNaN(r) {
			return true
		}
		return signOf(r) == signOf(a)^signOf(b)
	case fpu.OpFadd, fpu.OpFsub:
		if isNaN(a) || isNaN(b) {
			return true
		}
		if sa := signOf(a); sa == effSignB(fop, b) {
			return !isNaN(r) && signOf(r) == sa
		}
		return true
	case fpu.OpFmin, fpu.OpFmax:
		return r == a || r == b || r == fpu.QNaN
	case fpu.OpFle, fpu.OpFlt, fpu.OpFeq:
		return r <= 1
	case fpu.OpFsgnj:
		return r == fpu.SignInject(a, b, 0)
	case fpu.OpFsgnjn:
		return r == fpu.SignInject(a, b, 1)
	case fpu.OpFsgnjx:
		return r == fpu.SignInject(a, b, 2)
	case fpu.OpFclass:
		return r != 0 && r&(r-1) == 0 && r < 1<<10
	}
	return true
}

// fpuExpRange bounds the result exponent of FADD/FSUB/FMUL by the
// decoded operand exponents. The bounds come from the shape of the
// datapath, not from recomputation:
//
// FMUL of finite nonzero operands: with fully-normalized exponents
// ea', eb', the pre-round exponent is e = ea'+eb'-127 and the product's
// leading 1 sits at most one position high, with at most one more carry
// from rounding — so a normal result's exponent lies in [e, e+2], a
// subnormal/zero result requires e ≤ 0, and overflow to infinity
// requires e ≥ 253.
//
// FADD/FSUB of finite operands (not both zero): the aligned sum carries
// at most one position plus one rounding carry, so the result exponent
// is at most max(ea,eb)+2; and a same-effective-sign sum is at least as
// large in magnitude as its larger operand, so its adjusted exponent is
// at least max(ea,eb).
func fpuExpRange(op, a, b, r, _ uint32) bool {
	fop := fpu.Op(op)
	switch fop {
	case fpu.OpFmul:
		if !isFinite(a) || !isFinite(b) {
			return true
		}
		if isZero(a) || isZero(b) {
			return isZero(r) // exact ±0
		}
		if isNaN(r) {
			return false // finite × finite is never NaN
		}
		e := eNorm(a) + eNorm(b) - 127
		switch {
		case isInf(r):
			return e >= 253
		case expOf(r) == 0: // subnormal or zero
			return e <= 0
		default:
			er := int32(expOf(r))
			return e <= er && er <= e+2
		}
	case fpu.OpFadd, fpu.OpFsub:
		if !isFinite(a) || !isFinite(b) {
			return true
		}
		if isZero(a) && isZero(b) {
			return isZero(r)
		}
		if isNaN(r) {
			return false
		}
		emax := eAdj(a)
		if eb := eAdj(b); eb > emax {
			emax = eb
		}
		// Upper bound, all sign combinations.
		if isInf(r) {
			if emax < 253 {
				return false
			}
		} else if expOf(r) != 0 && int32(expOf(r)) > emax+2 {
			return false
		}
		// Lower bound: no cancellation possible with equal effective signs.
		if signOf(a) == effSignB(fop, b) && !isZero(a) && !isZero(b) {
			er := int32(255)
			if !isInf(r) {
				er = eAdj(r)
			}
			if er < emax {
				return false
			}
		}
		return true
	}
	return true
}

// fpuNaNProp checks IEEE-754 special-value propagation for the
// computational ops, plus flag-bit implications the unit can never
// violate:
//
//   - Any NaN input to FADD/FSUB/FMUL yields exactly the canonical QNaN.
//   - The two invalid combinations (∞−∞, ∞×0) also yield QNaN.
//   - Otherwise the result is never NaN, and an infinity operand
//     propagates as an exactly-predictable infinity.
//   - Flags: only the five fflags bits exist, DZ is never raised by this
//     unit, UF and OF each imply NX, and special-path results (NaN or ∞
//     involved) never raise rounding flags.
func fpuNaNProp(op, a, b, r, f uint32) bool {
	if f>>fpu.FlagWidth != 0 || f&fpu.FlagDZ != 0 {
		return false
	}
	if f&fpu.FlagUF != 0 && f&fpu.FlagNX == 0 {
		return false
	}
	if f&fpu.FlagOF != 0 && f&fpu.FlagNX == 0 {
		return false
	}
	fop := fpu.Op(op)
	if fop != fpu.OpFadd && fop != fpu.OpFsub && fop != fpu.OpFmul {
		return true
	}
	if isNaN(a) || isNaN(b) {
		return r == fpu.QNaN && f&^fpu.FlagNV == 0
	}
	mul := fop == fpu.OpFmul
	invalid := false
	if mul {
		invalid = (isInf(a) && isZero(b)) || (isZero(a) && isInf(b))
	} else {
		invalid = isInf(a) && isInf(b) && signOf(a) != effSignB(fop, b)
	}
	if invalid {
		return r == fpu.QNaN && f == fpu.FlagNV
	}
	if isNaN(r) {
		return false
	}
	if isInf(a) || isInf(b) {
		if f != 0 {
			return false
		}
		if mul {
			return r == (signOf(a)^signOf(b))<<31|0xff<<23
		}
		if isInf(a) {
			return r == a
		}
		return r == b^uint32(b2u(fop == fpu.OpFsub))<<31
	}
	return true
}

// fpuAddSwap cross-checks FADD/FSUB against the softfloat reference with
// the operands commuted: a+b ≡ b+a and a−b ≡ (−b)+a, bit-exactly
// including flags. This is a full-recompute guard — total single-fault
// coverage on the add path at the cost of a second adder.
func fpuAddSwap(op, a, b, r, f uint32) bool {
	var r2, f2 uint32
	switch fpu.Op(op) {
	case fpu.OpFadd:
		r2, f2 = fpu.Add(b, a, false)
	case fpu.OpFsub:
		r2, f2 = fpu.Add(b^1<<31, a, false)
	default:
		return true
	}
	return r == r2 && f == f2
}

// fpuMulSwap cross-checks FMUL against the softfloat reference with the
// operands commuted: a×b ≡ b×a bit-exactly including flags.
func fpuMulSwap(op, a, b, r, f uint32) bool {
	if fpu.Op(op) != fpu.OpFmul {
		return true
	}
	r2, f2 := fpu.Mul(b, a)
	return r == r2 && f == f2
}
