package guard

import (
	"repro/internal/alu"
	"repro/internal/fpu"
)

// ALUBackend and FPUBackend are structurally identical to the cpu
// package's backend seams, redeclared here so guard does not import cpu
// (any cpu.ALUBackend/cpu.FPUBackend value converts implicitly).
type ALUBackend interface {
	ExecALU(op alu.Op, a, b uint32) (result, flags uint32, ok bool)
}

// FPUBackend mirrors cpu.FPUBackend.
type FPUBackend interface {
	ExecFPU(op fpu.Op, a, b uint32) (result, flags uint32, ok bool)
}

// Log accumulates guard verdicts over one run. Guards are observe-only:
// a Log never influences execution, so a guarded run's cycle counts,
// results, and state digests are bit-identical to an unguarded one.
type Log struct {
	Set      []Guard  // guards being checked, canonical order
	Ops      uint64   // architecturally-completed unit ops observed
	Fires    uint64   // total failed checks across all guards
	PerGuard []uint64 // failed checks per guard, parallel to Set
	First    string   // name of the guard that fired first
	FirstOp  uint64   // 1-based op index of the first fire; 0 = never
}

// NewLog prepares a verdict log for the guard set.
func NewLog(set []Guard) *Log {
	return &Log{Set: set, PerGuard: make([]uint64, len(set))}
}

// Fired reports whether any guard has fired.
func (l *Log) Fired() bool { return l.Fires > 0 }

// Observe checks one completed unit operation against every guard in
// the set. Ops that never complete (ok=false: a hung handshake, caught
// by the CPU's stall watchdog) carry no architectural result to check.
func (l *Log) Observe(op, a, b, r, f uint32, ok bool) {
	if !ok {
		return
	}
	l.Ops++
	for i := range l.Set {
		if !l.Set[i].Check(op, a, b, r, f) {
			l.Fires++
			l.PerGuard[i]++
			if l.FirstOp == 0 {
				l.First = l.Set[i].Name
				l.FirstOp = l.Ops
			}
		}
	}
}

// GuardedALU wraps an ALU backend (or the golden model when Inner is
// nil) and checks every operation against Log.Set. It satisfies
// cpu.ALUBackend.
type GuardedALU struct {
	Inner ALUBackend
	Log   *Log
}

// ExecALU implements the backend seam.
func (g *GuardedALU) ExecALU(op alu.Op, a, b uint32) (uint32, uint32, bool) {
	var r, f uint32
	ok := true
	if g.Inner == nil {
		r, f = alu.Eval(op, a, b), alu.Flags(a, b)
	} else {
		r, f, ok = g.Inner.ExecALU(op, a, b)
	}
	g.Log.Observe(uint32(op), a, b, r, f, ok)
	return r, f, ok
}

// GuardedFPU wraps an FPU backend (or the golden model when Inner is
// nil) and checks every operation against Log.Set. It satisfies
// cpu.FPUBackend.
type GuardedFPU struct {
	Inner FPUBackend
	Log   *Log
}

// ExecFPU implements the backend seam.
func (g *GuardedFPU) ExecFPU(op fpu.Op, a, b uint32) (uint32, uint32, bool) {
	var r, f uint32
	ok := true
	if g.Inner == nil {
		r, f = fpu.Eval(op, a, b)
	} else {
		r, f, ok = g.Inner.ExecFPU(op, a, b)
	}
	g.Log.Observe(uint32(op), a, b, r, f, ok)
	return r, f, ok
}
