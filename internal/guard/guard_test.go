package guard

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/alu"
	"repro/internal/cpu"
	"repro/internal/embench"
	"repro/internal/fpu"
)

// checkClean runs one architecturally-correct operation through every
// guard of the unit and fails on any fire — the zero-false-positive
// contract.
func checkCleanALU(t *testing.T, op alu.Op, a, b uint32) {
	t.Helper()
	r, f := alu.Eval(op, a, b), alu.Flags(a, b)
	for _, g := range All(UnitALU) {
		if !g.Check(uint32(op), a, b, r, f) {
			t.Fatalf("ALU guard %s fired on correct %v a=%#x b=%#x r=%#x f=%#x",
				g.Name, op, a, b, r, f)
		}
	}
}

func checkCleanFPU(t *testing.T, op fpu.Op, a, b uint32) {
	t.Helper()
	r, f := fpu.Eval(op, a, b)
	for _, g := range All(UnitFPU) {
		if !g.Check(uint32(op), a, b, r, f) {
			t.Fatalf("FPU guard %s fired on correct %v a=%#x b=%#x r=%#x f=%#x",
				g.Name, op, a, b, r, f)
		}
	}
}

// fpuSpecials is a directed operand set hitting every special-value
// category and the boundary neighborhoods where exponent-range and
// rounding-carry edge cases live.
var fpuSpecials = []uint32{
	0x00000000, 0x80000000, // ±0
	0x00000001, 0x80000001, // ±min subnormal
	0x007fffff, 0x807fffff, // ±max subnormal
	0x00800000, 0x80800000, // ±min normal
	0x7f7fffff, 0xff7fffff, // ±max normal
	0x3f800000, 0xbf800000, // ±1
	0x3f800001, 0xbf800001, // ±(1+ulp)
	0x34000000, 0xb4000000, // ±2^-23
	0x7f000000, 0xff000000, // ±2^127
	0x00ffffff, 0x80ffffff, // ± near double-subnormal sums
	0x7f800000, 0xff800000, // ±inf
	0x7fc00000, 0xffc00000, // ±canonical qNaN
	0x7fc00123, 0x7fffffff, // qNaN payloads
	0x7f800001, 0xff800001, // sNaN
	0x40490fdb, 0xc0490fdb, // ±pi
}

// TestGuardCleanDirected sweeps the full special-value cross product for
// every FPU op, and the boundary operand set for every ALU op.
func TestGuardCleanDirected(t *testing.T) {
	for op := fpu.Op(0); op < fpu.NumOps; op++ {
		for _, a := range fpuSpecials {
			for _, b := range fpuSpecials {
				checkCleanFPU(t, op, a, b)
			}
		}
	}
	aluSpecials := []uint32{0, 1, 2, 3, 31, 32, 33, 0x7fffffff, 0x80000000,
		0x80000001, 0xffffffff, 0xfffffffe, 0xaaaaaaaa, 0x55555555}
	for op := alu.Op(0); op < alu.NumOps; op++ {
		for _, a := range aluSpecials {
			for _, b := range aluSpecials {
				checkCleanALU(t, op, a, b)
			}
		}
	}
}

// TestGuardCleanRandomOps streams 100k random operand pairs per unit
// through every guard — the bulk statistical half of the
// false-positive-proof harness. Uniform uint32 operands hit NaN/Inf
// exponents with probability 2^-8 per operand, so the stream covers
// special paths thousands of times.
func TestGuardCleanRandomOps(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100000; i++ {
		a, b := rng.Uint32(), rng.Uint32()
		checkCleanFPU(t, fpu.Op(rng.Intn(fpu.NumOps)), a, b)
		checkCleanALU(t, alu.Op(rng.Intn(alu.NumOps)), a, b)
	}
}

// TestGuardCleanQuick re-states the contract as a testing/quick
// property per guard (rather than per operation), so a failure names
// the offending guard directly.
func TestGuardCleanQuick(t *testing.T) {
	cfg := &quick.Config{MaxCount: 2000}
	for _, g := range All(UnitFPU) {
		g := g
		prop := func(opRaw, a, b uint32) bool {
			op := fpu.Op(opRaw % fpu.NumOps)
			r, f := fpu.Eval(op, a, b)
			return g.Check(uint32(op), a, b, r, f)
		}
		if err := quick.Check(prop, cfg); err != nil {
			t.Errorf("FPU guard %s: %v", g.Name, err)
		}
	}
	for _, g := range All(UnitALU) {
		g := g
		prop := func(opRaw, a, b uint32) bool {
			op := alu.Op(opRaw % alu.NumOps)
			r, f := alu.Eval(op, a, b), alu.Flags(a, b)
			return g.Check(uint32(op), a, b, r, f)
		}
		if err := quick.Check(prop, cfg); err != nil {
			t.Errorf("ALU guard %s: %v", g.Name, err)
		}
	}
}

// TestGuardCleanEmbench executes every embench workload on a CPU whose
// backends are guarded golden models: zero guard fires over entire
// fault-free production runs, and the guarded run's architectural
// outcome is untouched.
func TestGuardCleanEmbench(t *testing.T) {
	for _, b := range embench.All {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			img, err := b.Build()
			if err != nil {
				t.Fatal(err)
			}
			aluLog := NewLog(All(UnitALU))
			fpuLog := NewLog(All(UnitFPU))
			c := cpu.New(1 << 20)
			c.ALU = &GuardedALU{Log: aluLog}
			c.FPU = &GuardedFPU{Log: fpuLog}
			c.Load(img)
			if halt := c.Run(200_000_000); halt != cpu.HaltExit || c.ExitCode != 0 {
				t.Fatalf("guarded %s: halt=%v exit=%d", b.Name, halt, c.ExitCode)
			}
			if aluLog.Fires != 0 || fpuLog.Fires != 0 {
				t.Fatalf("guards fired on fault-free %s: ALU %d (first %s@%d), FPU %d (first %s@%d)",
					b.Name, aluLog.Fires, aluLog.First, aluLog.FirstOp,
					fpuLog.Fires, fpuLog.First, fpuLog.FirstOp)
			}
			if aluLog.Ops == 0 {
				t.Fatalf("%s retired no ALU ops through the guard", b.Name)
			}
			if b.UsesFPU && fpuLog.Ops == 0 {
				t.Fatalf("%s is an FPU workload but retired no FPU ops through the guard", b.Name)
			}
		})
	}
}

// TestGuardFiresOnCorruption is the complement smoke check: a guard
// library that never fires on anything is also broken. Every
// full-coverage invariant must flag a single-bit result corruption on
// its covered ops.
func TestGuardFiresOnCorruption(t *testing.T) {
	aluSet := All(UnitALU)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 1000; i++ {
		a, b := rng.Uint32(), rng.Uint32()
		for _, op := range []alu.Op{alu.OpAdd, alu.OpSub, alu.OpXor} {
			r := alu.Eval(op, a, b) ^ 1<<uint(rng.Intn(32))
			f := alu.Flags(a, b)
			fired := false
			for _, g := range aluSet {
				if !g.Check(uint32(op), a, b, r, f) {
					fired = true
				}
			}
			if !fired {
				t.Fatalf("no ALU guard fired on corrupted %v a=%#x b=%#x r=%#x", op, a, b, r)
			}
		}
	}
	fpuSet := All(UnitFPU)
	for i := 0; i < 1000; i++ {
		a, b := rng.Uint32(), rng.Uint32()
		for _, op := range []fpu.Op{fpu.OpFadd, fpu.OpFsub, fpu.OpFmul} {
			r0, f := fpu.Eval(op, a, b)
			r := r0 ^ 1<<uint(rng.Intn(32))
			fired := false
			for _, g := range fpuSet {
				if !g.Check(uint32(op), a, b, r, f) {
					fired = true
				}
			}
			if !fired {
				t.Fatalf("no FPU guard fired on corrupted %v a=%#x b=%#x r=%#x (correct %#x)",
					op, a, b, r, r0)
			}
		}
	}
}

func TestSelect(t *testing.T) {
	set, err := Select(UnitFPU, []string{"mulswap", "sign"})
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 2 || set[0].Name != "sign" || set[1].Name != "mulswap" {
		t.Fatalf("Select did not canonicalize order: %v", set)
	}
	if _, err := Select(UnitALU, []string{"sign"}); err == nil ||
		!strings.Contains(err.Error(), "unknown") {
		t.Fatalf("cross-unit name accepted: %v", err)
	}
	if _, err := Select(UnitALU, []string{"res3", "res3"}); err == nil {
		t.Fatal("duplicate name accepted")
	}
	all, err := Select(UnitALU, []string{"all"})
	if err != nil || len(all) != len(All(UnitALU)) {
		t.Fatalf("all selector: %v %v", all, err)
	}
	none, err := Select(UnitFPU, nil)
	if err != nil || len(none) != 0 {
		t.Fatalf("empty selection: %v %v", none, err)
	}
}

// TestLogAccounting pins the Log bookkeeping: 1-based first-fire index,
// per-guard attribution, hung ops not counted.
func TestLogAccounting(t *testing.T) {
	l := NewLog(All(UnitALU))
	l.Observe(uint32(alu.OpAdd), 1, 2, 3, alu.Flags(1, 2), true) // clean
	l.Observe(uint32(alu.OpAdd), 1, 2, 4, alu.Flags(1, 2), true) // res3 violation
	l.Observe(uint32(alu.OpAdd), 1, 2, 4, alu.Flags(1, 2), false)
	if l.Ops != 2 {
		t.Fatalf("Ops = %d, want 2 (hung op must not count)", l.Ops)
	}
	if !l.Fired() || l.First != "res3" || l.FirstOp != 2 {
		t.Fatalf("first fire = %s@%d fires=%d", l.First, l.FirstOp, l.Fires)
	}
	if l.PerGuard[0] != 1 {
		t.Fatalf("res3 count = %d", l.PerGuard[0])
	}
}
