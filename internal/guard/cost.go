package guard

import (
	"fmt"

	"repro/internal/alu"
	"repro/internal/cell"
	"repro/internal/fpu"
	"repro/internal/module"
	"repro/internal/sta"
)

// GateCost is the synthesized silicon footprint of one gate-level
// checker: the marginal cell/register count it adds on top of the
// previously-enabled guards (canonical order, so shared decode
// predicates are attributed to the first guard that needs them) and the
// fresh setup-slack impact of the cumulative guarded netlist.
type GateCost struct {
	Unit  string `json:"unit"`
	Guard string `json:"guard"`
	// Marginal cells over the previous cumulative build.
	Cells int `json:"cells"`
	DFFs  int `json:"dffs"`
	// CellsPct is the marginal cell count relative to the base netlist.
	CellsPct float64 `json:"cells_pct"`
	// WNSSetupPs is the fresh (unaged) setup WNS of the cumulative
	// guarded netlist at the unit's period, using the base netlist's
	// calibrated scale so the numbers are comparable across builds.
	WNSSetupPs float64 `json:"wns_setup_ps"`
	// WNSDeltaPs is base WNS minus cumulative WNS: positive means the
	// checkers cost timing slack.
	WNSDeltaPs float64 `json:"wns_delta_ps"`
}

// unitBuilders maps a unit name to its base/guarded synthesis entry
// points and canonical guard list.
func unitBuilders(unit string) (func() *module.Module, func(...string) *module.Module, []string, error) {
	switch unit {
	case UnitALU:
		return alu.Build, alu.BuildGuarded, alu.GuardNames, nil
	case UnitFPU:
		return fpu.Build, fpu.BuildGuarded, fpu.GuardNames, nil
	}
	return nil, nil, nil, fmt.Errorf("guard: unknown unit %q", unit)
}

// UnitGateCosts synthesizes the unit once per guard (cumulatively, in
// canonical order) and diffs each build against the previous one,
// producing the per-guard area and timing overhead the campaign reports
// and BENCH_guard.json record. The base netlist's calibrated STA scale
// is reused for every build.
func UnitGateCosts(unit string) ([]GateCost, error) {
	build, buildGuarded, names, err := unitBuilders(unit)
	if err != nil {
		return nil, err
	}
	base := build()
	lib := cell.Lib28()
	scale := sta.Calibrate(base.Netlist, lib, base.PeriodPs, base.SynthMargin)
	cfg := sta.Config{PeriodPs: base.PeriodPs, Scale: scale, Base: lib}
	baseWNS := sta.Analyze(base.Netlist, cfg).WNSSetup
	baseStats := base.Netlist.Stats()

	prev := baseStats
	out := make([]GateCost, 0, len(names))
	for i := range names {
		m := buildGuarded(names[:i+1]...)
		st := m.Netlist.Stats()
		wns := sta.Analyze(m.Netlist, cfg).WNSSetup
		out = append(out, GateCost{
			Unit:       unit,
			Guard:      names[i],
			Cells:      st.Cells - prev.Cells,
			DFFs:       st.DFFs - prev.DFFs,
			CellsPct:   100 * float64(st.Cells-prev.Cells) / float64(baseStats.Cells),
			WNSSetupPs: wns,
			WNSDeltaPs: baseWNS - wns,
		})
		prev = st
	}
	return out, nil
}
