package guard

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/alu"
	"repro/internal/fpu"
)

// guardOpCeiling is the generous per-op ceiling the CI bench smoke
// asserts: even the softfloat swap cross-checks must stay well under a
// microsecond per observed operation, or the "always-on" premise —
// guards cost a fraction of the unit op they check — is broken.
const guardOpCeiling = 2 * time.Microsecond

type benchOp struct{ op, a, b, r, f uint32 }

// benchStream builds a fixed operand stream with architecturally
// correct results, so every Check call is on the clean (never-firing)
// fast path — exactly the production profile of an always-on guard.
func benchStream(unit string, n int) []benchOp {
	rng := rand.New(rand.NewSource(97))
	ops := make([]benchOp, n)
	for i := range ops {
		a, b := rng.Uint32(), rng.Uint32()
		if unit == UnitALU {
			op := alu.Op(rng.Intn(alu.NumOps))
			r := alu.Eval(op, a, b)
			ops[i] = benchOp{uint32(op), a, b, r, alu.Flags(a, b)}
		} else {
			op := fpu.Op(rng.Intn(fpu.NumOps))
			r, f := fpu.Eval(op, a, b)
			ops[i] = benchOp{uint32(op), a, b, r, f}
		}
	}
	return ops
}

// BenchmarkGuardOverhead measures each guard's behavioural per-op check
// cost on a clean operand stream, plus the full per-unit set behind one
// Log.Observe (the configuration the guarded campaigns run). The CI
// bench smoke runs this at -benchtime 1x; the ceiling assertion fires
// on any iterated run (b.N > 1) so `go test -bench` catches a guard
// that got accidentally expensive.
func BenchmarkGuardOverhead(b *testing.B) {
	for _, unit := range []string{UnitALU, UnitFPU} {
		stream := benchStream(unit, 4096)
		for _, g := range All(unit) {
			g := g
			b.Run(unit+"/"+g.Name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					v := &stream[i%len(stream)]
					if !g.Check(v.op, v.a, v.b, v.r, v.f) {
						b.Fatalf("guard %s false positive on %+v", g.Name, *v)
					}
				}
				assertCeiling(b)
			})
		}
		b.Run(unit+"/all-observed", func(b *testing.B) {
			log := NewLog(All(unit))
			for i := 0; i < b.N; i++ {
				v := &stream[i%len(stream)]
				log.Observe(v.op, v.a, v.b, v.r, v.f, true)
			}
			if log.Fired() {
				b.Fatalf("guard %s false positive (op %d)", log.First, log.FirstOp)
			}
			assertCeiling(b)
		})
	}
}

func assertCeiling(b *testing.B) {
	b.Helper()
	if b.N <= 1 {
		return // -benchtime 1x calibration run: no meaningful per-op time
	}
	if perOp := b.Elapsed() / time.Duration(b.N); perOp > guardOpCeiling {
		b.Fatalf("per-op guard cost %v exceeds ceiling %v", perOp, guardOpCeiling)
	}
}
