package guard

import (
	"testing"

	"repro/internal/alu"
	"repro/internal/fpu"
)

// FuzzGuardCleanRun fuzzes the zero-false-positive contract: for any
// operation the architecturally-correct response must satisfy every
// guard of both units. A counterexample here means a guard predicate is
// stronger than the arithmetic it claims to bound — the one failure
// mode an always-on production checker cannot have.
func FuzzGuardCleanRun(f *testing.F) {
	f.Add(uint32(0), uint32(0), uint32(0))
	f.Add(uint32(1), uint32(0x7f800001), uint32(0xff800000))   // sNaN vs -inf sub
	f.Add(uint32(2), uint32(0x00000001), uint32(0x00000001))   // subnormal product
	f.Add(uint32(2), uint32(0x7f7fffff), uint32(0x7f7fffff))   // overflow product
	f.Add(uint32(0), uint32(0x00ffffff), uint32(0x00ffffff))   // carry across frames
	f.Add(uint32(5), uint32(0x80000000), uint32(0x00000000))   // ±0 compare
	f.Add(uint32(9), uint32(0xffffffff), uint32(0x0000001f))   // full shift
	f.Fuzz(func(t *testing.T, opRaw, a, b uint32) {
		fop := fpu.Op(opRaw % fpu.NumOps)
		r, fl := fpu.Eval(fop, a, b)
		for _, g := range All(UnitFPU) {
			if !g.Check(uint32(fop), a, b, r, fl) {
				t.Fatalf("FPU guard %s fired on correct %v a=%#x b=%#x r=%#x f=%#x",
					g.Name, fop, a, b, r, fl)
			}
		}
		aop := alu.Op(opRaw % alu.NumOps)
		ar, af := alu.Eval(aop, a, b), alu.Flags(a, b)
		for _, g := range All(UnitALU) {
			if !g.Check(uint32(aop), a, b, ar, af) {
				t.Fatalf("ALU guard %s fired on correct %v a=%#x b=%#x r=%#x f=%#x",
					g.Name, aop, a, b, ar, af)
			}
		}
	})
}
