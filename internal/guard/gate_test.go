package guard

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/alu"
	"repro/internal/fpu"
	"repro/internal/module"
	"repro/internal/netlist"
)

// The gate-level checker lists must mirror the behavioural registry:
// same names, same canonical order.
func TestGateGuardNamesMatchRegistry(t *testing.T) {
	if got, want := alu.GuardNames, Names(UnitALU); !reflect.DeepEqual(got, want) {
		t.Errorf("alu.GuardNames = %v, registry has %v", got, want)
	}
	if got, want := fpu.GuardNames, Names(UnitFPU); !reflect.DeepEqual(got, want) {
		t.Errorf("fpu.GuardNames = %v, registry has %v", got, want)
	}
}

// checkBasePrefix asserts the guarded netlist is the base netlist plus
// appended checker cells and outputs — cell-for-cell identical up front,
// so fault universes sampled on the base build stay valid on the guarded
// one.
func checkBasePrefix(t *testing.T, base, g *netlist.Netlist, guards []string) {
	t.Helper()
	if len(g.Cells) <= len(base.Cells) {
		t.Fatalf("guarded netlist has %d cells, base %d — no checkers appended?",
			len(g.Cells), len(base.Cells))
	}
	for i := range base.Cells {
		if !reflect.DeepEqual(base.Cells[i], g.Cells[i]) {
			t.Fatalf("cell %d differs: base %+v, guarded %+v", i, base.Cells[i], g.Cells[i])
		}
	}
	if !reflect.DeepEqual(base.Inputs, g.Inputs) {
		t.Errorf("input ports differ")
	}
	if g.NumNets < base.NumNets {
		t.Errorf("guarded has fewer nets (%d) than base (%d)", g.NumNets, base.NumNets)
	}
	if g.ClockRoot != base.ClockRoot {
		t.Errorf("clock root moved: %d -> %d", base.ClockRoot, g.ClockRoot)
	}
	want := len(base.Outputs) + len(guards) + 1
	if len(g.Outputs) != want {
		t.Fatalf("guarded has %d outputs, want %d", len(g.Outputs), want)
	}
	for i := range base.Outputs {
		if !reflect.DeepEqual(base.Outputs[i], g.Outputs[i]) {
			t.Errorf("output %d (%s) differs", i, base.Outputs[i].Name)
		}
	}
	for i, name := range guards {
		if got := g.Outputs[len(base.Outputs)+i].Name; got != "g_"+name {
			t.Errorf("appended output %d = %q, want %q", i, got, "g_"+name)
		}
	}
	if got := g.Outputs[len(g.Outputs)-1].Name; got != "guard_fire" {
		t.Errorf("last output = %q, want guard_fire", got)
	}
}

func TestGuardedNetlistBasePrefixALU(t *testing.T) {
	checkBasePrefix(t, alu.Build().Netlist,
		alu.BuildGuarded(alu.GuardNames...).Netlist, alu.GuardNames)
}

func TestGuardedNetlistBasePrefixFPU(t *testing.T) {
	checkBasePrefix(t, fpu.Build().Netlist,
		fpu.BuildGuarded(fpu.GuardNames...).Netlist, fpu.GuardNames)
}

// assertSilent checks every per-guard alarm and the combined output
// after an exec. Alarms are sticky, so a single spurious fire poisons
// the rest of the run — first failure names the op that tripped it.
func assertSilent(t *testing.T, d *module.Driver, names []string, ctx string) {
	t.Helper()
	for _, name := range names {
		if d.Sim.Output("g_"+name) != 0 {
			t.Fatalf("gate guard %s fired on clean %s", name, ctx)
		}
	}
	if d.Sim.Output("guard_fire") != 0 {
		t.Fatalf("guard_fire raised on clean %s", ctx)
	}
}

// TestGateGuardsSilentALU drives the fully-guarded ALU netlist over
// boundary and random operands: results must match the golden model
// bit-for-bit (the checkers may not perturb the datapath) and no alarm
// may ever latch.
func TestGateGuardsSilentALU(t *testing.T) {
	m := alu.BuildGuarded(alu.GuardNames...)
	d := module.NewDriver(m)
	check := func(op alu.Op, a, b uint32) {
		t.Helper()
		res, flags, ok := d.Exec(uint32(op), a, b)
		if !ok {
			t.Fatalf("guarded ALU stalled on %v(%08x,%08x)", op, a, b)
		}
		if wantR, wantF := alu.Eval(op, a, b), alu.Flags(a, b); res != wantR || flags != wantF {
			t.Fatalf("guarded ALU %v(%08x,%08x) = %08x/%03b, want %08x/%03b",
				op, a, b, res, flags, wantR, wantF)
		}
		assertSilent(t, d, alu.GuardNames, "ALU op")
	}
	boundary := []uint32{0, 1, 2, 31, 32, 0x7fffffff, 0x80000000, 0xfffffffe, 0xffffffff, 0xaaaaaaaa, 0x55555555}
	for op := alu.Op(0); op.Valid(); op++ {
		for _, a := range boundary {
			for _, b := range boundary {
				check(op, a, b)
			}
		}
	}
	rng := rand.New(rand.NewSource(31))
	for i := 0; i < 1500; i++ {
		check(alu.Op(rng.Intn(alu.NumOps)), rng.Uint32(), rng.Uint32())
	}
}

// TestGateGuardsSilentFPU is the FPU counterpart: the full special-value
// matrix through the arithmetic ops (where the invariants have their
// corner cases) plus random operands through every op.
func TestGateGuardsSilentFPU(t *testing.T) {
	m := fpu.BuildGuarded(fpu.GuardNames...)
	d := module.NewDriver(m)
	check := func(op fpu.Op, a, b uint32) {
		t.Helper()
		res, flags, ok := d.Exec(uint32(op), a, b)
		if !ok {
			t.Fatalf("guarded FPU stalled on %v(%08x,%08x)", op, a, b)
		}
		if wantR, wantF := fpu.Eval(op, a, b); res != wantR || flags != wantF {
			t.Fatalf("guarded FPU %v(%08x,%08x) = %08x/%05b, want %08x/%05b",
				op, a, b, res, flags, wantR, wantF)
		}
		assertSilent(t, d, fpu.GuardNames, "FPU op")
	}
	for _, op := range []fpu.Op{fpu.OpFadd, fpu.OpFsub, fpu.OpFmul} {
		for _, a := range fpuSpecials {
			for _, b := range fpuSpecials {
				check(op, a, b)
			}
		}
	}
	rng := rand.New(rand.NewSource(32))
	for i := 0; i < 1200; i++ {
		check(fpu.Op(rng.Intn(fpu.NumOps)), rng.Uint32(), rng.Uint32())
	}
}

// TestUnitGateCosts exercises the costing path: every guard must cost a
// positive number of cells, the swap guards must dominate (they
// duplicate whole datapaths), and the unknown-unit error must surface.
func TestUnitGateCosts(t *testing.T) {
	if testing.Short() {
		t.Skip("STA costing in -short mode")
	}
	for _, unit := range []string{UnitALU, UnitFPU} {
		costs, err := UnitGateCosts(unit)
		if err != nil {
			t.Fatalf("UnitGateCosts(%s): %v", unit, err)
		}
		if len(costs) != len(Names(unit)) {
			t.Fatalf("%s: %d cost rows, want %d", unit, len(costs), len(Names(unit)))
		}
		byName := map[string]GateCost{}
		for _, gc := range costs {
			if gc.Cells <= 0 {
				t.Errorf("%s guard %s: non-positive marginal cell count %d", unit, gc.Guard, gc.Cells)
			}
			if gc.DFFs < 1 {
				t.Errorf("%s guard %s: expected at least the alarm DFF, got %d", unit, gc.Guard, gc.DFFs)
			}
			byName[gc.Guard] = gc
			t.Logf("%s/%s: +%d cells (%.1f%%), +%d dffs, WNS %.1fps (delta %.1fps)",
				unit, gc.Guard, gc.Cells, gc.CellsPct, gc.DFFs, gc.WNSSetupPs, gc.WNSDeltaPs)
		}
		if unit == UnitFPU {
			for _, cheap := range []string{"sign", "nanprop"} {
				if byName[cheap].Cells >= byName["mulswap"].Cells {
					t.Errorf("FPU %s (%d cells) should be cheaper than mulswap (%d)",
						cheap, byName[cheap].Cells, byName["mulswap"].Cells)
				}
			}
		}
	}
	if _, err := UnitGateCosts("DSP"); err == nil {
		t.Error("unknown unit accepted")
	}
}
