// Package guard implements cheap always-on runtime invariants derived
// from arithmetic algebra — the complementary detection layer to the
// paper's scheduled bottom-up tests. Scheduled tests only observe faults
// that strike inside the test window; the PR 5/6 escape census shows
// embedded FPU transients and intermittents escape at 100% for exactly
// that reason. Guards close the window: every in-flight production
// operation is checked against invariants that the correct unit provably
// satisfies (residue codes, sign/exponent algebra, NaN/Inf propagation,
// operand-swap symmetry), so a corrupted result is flagged on the cycle
// it is produced, regardless of when the fault struck.
//
// Guards exist at two levels:
//
//   - Behavioural: observe-only wrappers around the cpu.ALUBackend /
//     cpu.FPUBackend seam (see wrap.go). Wrappers never perturb results,
//     flags, handshakes, or cycle counts — they only record verdicts, so
//     a guarded campaign replays bit-identically to an unguarded one.
//   - Gate-level: checker cells synthesized alongside the unit netlist
//     (alu.BuildGuarded / fpu.BuildGuarded), so engine and sta can cost
//     the silicon the checkers would occupy (see cost.go).
//
// The contract every guard must honour is zero false positives: for any
// architecturally-correct (op, a, b) -> (result, flags), Check returns
// true. The property harness in guard_test.go and FuzzGuardCleanRun
// enforce this over all embench workloads, directed special values, and
// random operand streams.
package guard

import (
	"fmt"
	"sort"
	"strings"
)

// Unit names match module.Module.Name for the two guarded units.
const (
	UnitALU = "ALU"
	UnitFPU = "FPU"
)

// A Guard is a single named invariant over one unit's operations.
// Check receives an architecturally-visible operation — the op selector,
// both operands, and the unit's result and flags — and reports whether
// the invariant holds. Ops a guard does not cover must return true.
type Guard struct {
	Name string // stable identifier, e.g. "res3"
	Unit string // UnitALU or UnitFPU
	Doc  string // one-line description for reports
	// Full marks guards that recompute the op completely (operand-swap
	// cross-checks): total single-fault coverage at roughly the cost of
	// a second unit.
	Full  bool
	Check func(op, a, b, result, flags uint32) bool
}

// Registry order is canonical: selection, per-guard accounting, and the
// first-fire tie-break all use this order, so reports are deterministic
// regardless of how a caller spells the guard list.
var registry = []Guard{
	{Name: "res3", Unit: UnitALU, Doc: "mod-3 residue code on ADD/SUB with carry/borrow correction", Check: aluRes3},
	{Name: "parity", Unit: UnitALU, Doc: "XOR parity: parity(r) == parity(a)^parity(b)", Check: aluParity},
	{Name: "bounds", Unit: UnitALU, Doc: "bit-domain bounds: AND subset, OR superset, shift zero/sign fill, SLT/SLTU booleans", Check: aluBounds},
	{Name: "flags", Unit: UnitALU, Doc: "comparison-flag consistency (eq excludes lt/ltu, sign-split lt vs ltu, SLT/SLTU agree with flags)", Check: aluFlagRules},
	{Name: "sign", Unit: UnitFPU, Doc: "sign algebra: FMUL sign=sa^sb, same-sign add keeps sign, FSGNJ recompute, compare/class encodings", Check: fpuSign},
	{Name: "exprange", Unit: UnitFPU, Doc: "exponent range bounds for FADD/FSUB/FMUL from decoded operand exponents", Check: fpuExpRange},
	{Name: "nanprop", Unit: UnitFPU, Doc: "NaN/Inf propagation: canonical QNaN, finite ops never produce NaN, flag implications", Check: fpuNaNProp},
	{Name: "addswap", Unit: UnitFPU, Doc: "a+b vs b+a softfloat cross-check on FADD/FSUB", Full: true, Check: fpuAddSwap},
	{Name: "mulswap", Unit: UnitFPU, Doc: "a*b vs b*a softfloat cross-check on FMUL", Full: true, Check: fpuMulSwap},
}

// All returns every guard registered for the unit, in canonical order.
func All(unit string) []Guard {
	var out []Guard
	for _, g := range registry {
		if g.Unit == unit {
			out = append(out, g)
		}
	}
	return out
}

// Names returns the canonical name list for the unit.
func Names(unit string) []string {
	var out []string
	for _, g := range All(unit) {
		out = append(out, g.Name)
	}
	return out
}

// Select resolves a name list against the unit's registry. Names may be
// given in any order; the returned set is in canonical registry order.
// The single name "all" selects every guard for the unit. Unknown or
// duplicate names are errors; an empty list selects nothing.
func Select(unit string, names []string) ([]Guard, error) {
	if len(names) == 1 && names[0] == "all" {
		return All(unit), nil
	}
	want := make(map[string]bool, len(names))
	for _, n := range names {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		if want[n] {
			return nil, fmt.Errorf("guard: duplicate guard %q", n)
		}
		want[n] = true
	}
	var out []Guard
	for _, g := range All(unit) {
		if want[g.Name] {
			out = append(out, g)
			delete(want, g.Name)
		}
	}
	if len(want) > 0 {
		var missing []string
		for n := range want {
			missing = append(missing, n)
		}
		sort.Strings(missing)
		return nil, fmt.Errorf("guard: unknown %s guard(s) %s (have %s)",
			unit, strings.Join(missing, ","), strings.Join(Names(unit), ","))
	}
	return out, nil
}

func b2u(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}
