// Package chaos is the fault-injection seam for the fleet's own I/O.
//
// The rest of this repository proves robustness claims by injecting
// faults into the circuit under test and holding a differential oracle
// against the clean run. This package applies the same discipline to
// the infrastructure itself: every persistence path in the screening
// daemon (job records, campaign checkpoints, persisted results) goes
// through the FS interface below, so tests can interpose a seeded
// fault plan — torn writes, single-bit flips, ENOSPC/EIO, and crash
// points that kill the "process" at the Nth I/O step — and assert the
// recovery invariants (no accepted job lost, no corrupt record ever
// loaded, byte-identical final reports) across a restart.
//
// Three pieces:
//
//   - FS / OS: the primitive file operations the persistence layers
//     use, each one an observable "I/O step". OS is the real
//     implementation; WriteAtomic composes the primitives into the
//     durable tmp-write -> fsync -> rename -> dir-fsync sequence that
//     atomic-rename persistence actually requires (a rename without
//     the surrounding fsyncs is only atomic against crashes of the
//     process, not of the machine).
//   - Injected: an FS wrapper that executes a Plan. A crash point
//     leaves the filesystem in exactly the state the completed prefix
//     of steps produced and fails every later operation — the torture
//     harness then "reboots" by reopening the directory with a clean
//     OS and asserts recovery.
//   - Seal / Open (envelope.go): the versioned CRC32C record envelope
//     that turns silent on-disk corruption into a detected, quarantinable
//     load error.
package chaos

import (
	"errors"
	"os"
	"path/filepath"
)

// FS is the injectable filesystem seam. Each method is one I/O step
// from a fault plan's point of view.
type FS interface {
	// WriteFile creates or truncates name with data.
	WriteFile(name string, data []byte, perm os.FileMode) error
	// ReadFile reads the whole of name.
	ReadFile(name string) ([]byte, error)
	// ReadDir lists name.
	ReadDir(name string) ([]os.DirEntry, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes name.
	Remove(name string) error
	// MkdirAll creates name and missing parents.
	MkdirAll(name string, perm os.FileMode) error
	// SyncFile fsyncs name's contents to stable storage.
	SyncFile(name string) error
	// SyncDir fsyncs the directory name, making completed renames in it
	// durable.
	SyncDir(name string) error
}

// OS is the real filesystem.
type OS struct{}

func (OS) WriteFile(name string, data []byte, perm os.FileMode) error {
	return os.WriteFile(name, data, perm)
}
func (OS) ReadFile(name string) ([]byte, error)       { return os.ReadFile(name) }
func (OS) ReadDir(name string) ([]os.DirEntry, error) { return os.ReadDir(name) }
func (OS) Rename(oldpath, newpath string) error       { return os.Rename(oldpath, newpath) }
func (OS) Remove(name string) error                   { return os.Remove(name) }
func (OS) MkdirAll(name string, perm os.FileMode) error {
	return os.MkdirAll(name, perm)
}

func (OS) SyncFile(name string) error { return syncPath(name, os.O_RDWR) }
func (OS) SyncDir(name string) error  { return syncPath(name, os.O_RDONLY) }

func syncPath(name string, flag int) error {
	f, err := os.OpenFile(name, flag, 0)
	if err != nil {
		return err
	}
	serr := f.Sync()
	cerr := f.Close()
	if serr != nil {
		return serr
	}
	return cerr
}

// WriteAtomic durably replaces path with data: write to path+".tmp",
// fsync the tmp file, rename over path, fsync the parent directory. A
// crash at any step leaves either the previous content or the new
// content at path — never a tear — and once WriteAtomic returns, the
// new content survives power loss (the two fsyncs are what the bare
// write-then-rename idiom was missing).
func WriteAtomic(fs FS, path string, data []byte, perm os.FileMode) error {
	tmp := path + ".tmp"
	if err := fs.WriteFile(tmp, data, perm); err != nil {
		return err
	}
	if err := fs.SyncFile(tmp); err != nil {
		return err
	}
	if err := fs.Rename(tmp, path); err != nil {
		return err
	}
	return fs.SyncDir(filepath.Dir(path))
}

// QuarantineDirName is the subdirectory corrupt records are moved to,
// next to the records they failed to load as.
const QuarantineDirName = "quarantine"

// Quarantine moves path into a "quarantine" subdirectory of its parent
// and returns the new location. The move is the recovery policy for
// records that fail their envelope check: the daemon keeps the evidence
// for a post-mortem and keeps serving, instead of refusing to start.
func Quarantine(fs FS, path string) (string, error) {
	dir := filepath.Join(filepath.Dir(path), QuarantineDirName)
	if err := fs.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	dst := filepath.Join(dir, filepath.Base(path))
	if err := fs.Rename(path, dst); err != nil {
		return "", err
	}
	return dst, nil
}

// ErrCrashed is returned by every operation of an Injected filesystem
// after its crash point fired: from the persistence layer's point of
// view the process is dead, and only a restart (a fresh FS over the
// same directory) recovers.
var ErrCrashed = errors.New("chaos: filesystem crashed (injected fault)")
