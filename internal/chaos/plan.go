package chaos

import (
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
	"syscall"
)

// FaultKind enumerates the injectable I/O faults.
type FaultKind int

const (
	// Crash kills the filesystem BEFORE the step executes: the step and
	// everything after it fail with ErrCrashed, exactly as if the
	// process died between the previous step and this one.
	Crash FaultKind = iota
	// Torn applies to a WriteFile step: the first Arg bytes reach the
	// file, then the filesystem crashes — the classic power-loss tear
	// the envelope checksum must catch.
	Torn
	// Flip applies to a WriteFile (or ReadFile) step: bit Arg of the
	// payload is inverted and the operation otherwise succeeds — silent
	// corruption with no error anywhere.
	Flip
	// NoSpace fails the step with ENOSPC; the filesystem survives.
	NoSpace
	// IOErr fails the step with EIO; the filesystem survives.
	IOErr
)

func (k FaultKind) String() string {
	switch k {
	case Crash:
		return "crash"
	case Torn:
		return "torn"
	case Flip:
		return "flip"
	case NoSpace:
		return "enospc"
	case IOErr:
		return "eio"
	}
	return fmt.Sprintf("fault(%d)", int(k))
}

// Fault is one planned fault: Kind fires at the Step-th I/O operation
// (1-based, counting every FS call). Arg is the tear length for Torn
// and the bit index for Flip.
type Fault struct {
	Step int
	Kind FaultKind
	Arg  int
}

// Plan is a deterministic fault schedule keyed by I/O step.
type Plan struct {
	Faults []Fault
}

// ParsePlan parses the comma-separated textual plan the daemons accept
// on -chaos: "crash@17", "torn@5:12", "flip@7:3", "enospc@9", "eio@4".
func ParsePlan(s string) (Plan, error) {
	var p Plan
	if strings.TrimSpace(s) == "" {
		return p, nil
	}
	for _, tok := range strings.Split(s, ",") {
		tok = strings.TrimSpace(tok)
		kind, rest, ok := strings.Cut(tok, "@")
		if !ok {
			return Plan{}, fmt.Errorf("chaos: fault %q: want kind@step", tok)
		}
		f := Fault{}
		switch kind {
		case "crash":
			f.Kind = Crash
		case "torn":
			f.Kind = Torn
		case "flip":
			f.Kind = Flip
		case "enospc":
			f.Kind = NoSpace
		case "eio":
			f.Kind = IOErr
		default:
			return Plan{}, fmt.Errorf("chaos: unknown fault kind %q in %q", kind, tok)
		}
		var err error
		if f.Kind == Torn || f.Kind == Flip {
			if _, err = fmt.Sscanf(rest, "%d:%d", &f.Step, &f.Arg); err != nil {
				return Plan{}, fmt.Errorf("chaos: fault %q: want %s@step:arg", tok, kind)
			}
		} else if _, err = fmt.Sscanf(rest, "%d", &f.Step); err != nil {
			return Plan{}, fmt.Errorf("chaos: fault %q: want %s@step", tok, kind)
		}
		if f.Step < 1 {
			return Plan{}, fmt.Errorf("chaos: fault %q: steps are 1-based", tok)
		}
		p.Faults = append(p.Faults, f)
	}
	return p, nil
}

// String renders the plan in ParsePlan's syntax, sorted by step.
func (p Plan) String() string {
	fs := append([]Fault(nil), p.Faults...)
	sort.Slice(fs, func(a, b int) bool { return fs[a].Step < fs[b].Step })
	var parts []string
	for _, f := range fs {
		switch f.Kind {
		case Torn, Flip:
			parts = append(parts, fmt.Sprintf("%s@%d:%d", f.Kind, f.Step, f.Arg))
		default:
			parts = append(parts, fmt.Sprintf("%s@%d", f.Kind, f.Step))
		}
	}
	return strings.Join(parts, ",")
}

// Injected wraps an FS with a fault plan. Every operation counts one
// step; the plan decides what the step does. After a Crash or Torn
// fault fires, the filesystem is dead: every later operation returns
// ErrCrashed until a fresh FS is constructed over the directory — the
// restart the torture harness performs.
type Injected struct {
	under FS
	// ExitOnCrash upgrades crash faults from "fail every later
	// operation" to an actual os.Exit(137) — the mode the live daemons
	// use under -chaos so an external supervisor sees a real death.
	ExitOnCrash bool

	mu      sync.Mutex
	step    int
	crashed bool
	faults  map[int]Fault
}

// NewInjected wraps under with plan. An empty plan makes Injected a
// pure step counter (the torture harness's first pass).
func NewInjected(under FS, plan Plan) *Injected {
	f := &Injected{under: under, faults: make(map[int]Fault, len(plan.Faults))}
	for _, ft := range plan.Faults {
		f.faults[ft.Step] = ft
	}
	return f
}

// Steps returns how many I/O operations have been attempted so far.
func (f *Injected) Steps() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.step
}

// Crashed reports whether a crash-class fault has fired.
func (f *Injected) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// begin advances the step counter and resolves the fault for this
// operation. It returns an error the operation must propagate (crashed
// filesystem, Crash/NoSpace/IOErr fault) or the Fault to apply in-line
// (Torn, Flip).
func (f *Injected) begin() (Fault, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return Fault{}, ErrCrashed
	}
	f.step++
	ft, ok := f.faults[f.step]
	if !ok {
		return Fault{}, nil
	}
	switch ft.Kind {
	case Crash:
		f.die()
		return Fault{}, ErrCrashed
	case NoSpace:
		return Fault{}, &os.PathError{Op: "chaos", Err: syscall.ENOSPC}
	case IOErr:
		return Fault{}, &os.PathError{Op: "chaos", Err: syscall.EIO}
	}
	return ft, nil
}

// die marks the filesystem dead (caller holds mu).
func (f *Injected) die() {
	if f.ExitOnCrash {
		fmt.Fprintf(os.Stderr, "chaos: crash point at I/O step %d — aborting process\n", f.step)
		os.Exit(137)
	}
	f.crashed = true
}

// flipBit inverts bit number bit (wrapping over the payload) in a copy
// of data; empty payloads pass through.
func flipBit(data []byte, bit int) []byte {
	if len(data) == 0 {
		return data
	}
	out := append([]byte(nil), data...)
	i := (bit / 8) % len(out)
	out[i] ^= 1 << (bit % 8)
	return out
}

func (f *Injected) WriteFile(name string, data []byte, perm os.FileMode) error {
	ft, err := f.begin()
	if err != nil {
		return err
	}
	switch ft.Kind {
	case Torn:
		n := min(ft.Arg, len(data))
		_ = f.under.WriteFile(name, data[:n], perm)
		f.mu.Lock()
		f.die()
		f.mu.Unlock()
		return ErrCrashed
	case Flip:
		return f.under.WriteFile(name, flipBit(data, ft.Arg), perm)
	}
	return f.under.WriteFile(name, data, perm)
}

func (f *Injected) ReadFile(name string) ([]byte, error) {
	ft, err := f.begin()
	if err != nil {
		return nil, err
	}
	data, err := f.under.ReadFile(name)
	if err != nil {
		return nil, err
	}
	switch ft.Kind {
	case Torn:
		return data[:min(ft.Arg, len(data))], nil
	case Flip:
		return flipBit(data, ft.Arg), nil
	}
	return data, nil
}

func (f *Injected) ReadDir(name string) ([]os.DirEntry, error) {
	if _, err := f.begin(); err != nil {
		return nil, err
	}
	return f.under.ReadDir(name)
}

func (f *Injected) Rename(oldpath, newpath string) error {
	if _, err := f.begin(); err != nil {
		return err
	}
	return f.under.Rename(oldpath, newpath)
}

func (f *Injected) Remove(name string) error {
	if _, err := f.begin(); err != nil {
		return err
	}
	return f.under.Remove(name)
}

func (f *Injected) MkdirAll(name string, perm os.FileMode) error {
	if _, err := f.begin(); err != nil {
		return err
	}
	return f.under.MkdirAll(name, perm)
}

func (f *Injected) SyncFile(name string) error {
	if _, err := f.begin(); err != nil {
		return err
	}
	return f.under.SyncFile(name)
}

func (f *Injected) SyncDir(name string) error {
	if _, err := f.begin(); err != nil {
		return err
	}
	return f.under.SyncDir(name)
}
