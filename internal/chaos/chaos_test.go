package chaos

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
)

// TestEnvelopeRoundTrip: Seal then Open returns the payload with
// sealed=true; a legacy (plain JSON) record passes through verbatim.
func TestEnvelopeRoundTrip(t *testing.T) {
	for _, payload := range [][]byte{
		[]byte(`{"id":"j000001","status":"queued"}`),
		{},
		[]byte("not json at all \x00\xff"),
	} {
		got, sealed, err := Open(Seal(payload))
		if err != nil || !sealed || !bytes.Equal(got, payload) {
			t.Fatalf("round trip of %q: got %q sealed=%v err=%v", payload, got, sealed, err)
		}
	}
	legacy := []byte(`{"Version":1,"Unit":"ALU"}`)
	got, sealed, err := Open(legacy)
	if err != nil || sealed || !bytes.Equal(got, legacy) {
		t.Fatalf("legacy record: got %q sealed=%v err=%v", got, sealed, err)
	}
}

// TestEnvelopeDetectsEveryBitFlip: flipping ANY single bit of a sealed
// record must never make Open return a payload that differs from the
// original. (A flip in the header that leaves the CRC-verified payload
// intact — e.g. the version digit dropping to an older accepted
// version — may still open; what can never happen is silently serving
// different bytes.) This is the whole point of the envelope.
func TestEnvelopeDetectsEveryBitFlip(t *testing.T) {
	payload := []byte(`{"id":"j000042","spec":{"kind":"campaign","unit":"ALU"},"status":"done"}`)
	sealed := Seal(payload)
	for i := range sealed {
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte(nil), sealed...)
			mut[i] ^= 1 << bit
			got, wasSealed, err := Open(mut)
			if err != nil {
				continue // detected: good
			}
			if wasSealed {
				if !bytes.Equal(got, payload) {
					t.Fatalf("byte %d bit %d: corruption served a different payload %q", i, bit, got)
				}
				continue
			}
			// Flipping inside the magic can demote the record to
			// "legacy"; that is only acceptable if the result no longer
			// carries the magic at all (a legacy loader will then fail
			// JSON parsing — still detected, one layer up).
			if bytes.HasPrefix(mut, []byte(envelopeMagic)) {
				t.Fatalf("byte %d bit %d: still magic-prefixed but treated as legacy", i, bit)
			}
		}
	}
}

// TestEnvelopeRejectsTruncation: every proper prefix of a sealed record
// fails to open (torn-write detection).
func TestEnvelopeRejectsTruncation(t *testing.T) {
	sealed := Seal([]byte(`{"results":[1,2,3,4,5,6,7,8]}`))
	for n := 0; n < len(sealed); n++ {
		if _, wasSealed, err := Open(sealed[:n]); wasSealed && err == nil {
			t.Fatalf("truncation to %d bytes opened cleanly", n)
		}
	}
}

// TestEnvelopeRejectsNewerVersion: a record from future tooling is
// refused with a version message, not misparsed.
func TestEnvelopeRejectsNewerVersion(t *testing.T) {
	sealed := Seal([]byte("x"))
	future := bytes.Replace(sealed, []byte("v3"), []byte("v9"), 1)
	if _, _, err := Open(future); err == nil || !strings.Contains(err.Error(), "newer") {
		t.Fatalf("future-version record: err=%v", err)
	}
}

// TestPlanCodec: ParsePlan(String()) is the identity on every fault
// kind, and malformed plans are rejected.
func TestPlanCodec(t *testing.T) {
	p := Plan{Faults: []Fault{
		{Step: 17, Kind: Crash},
		{Step: 5, Kind: Torn, Arg: 12},
		{Step: 7, Kind: Flip, Arg: 3},
		{Step: 9, Kind: NoSpace},
		{Step: 4, Kind: IOErr},
	}}
	rt, err := ParsePlan(p.String())
	if err != nil {
		t.Fatal(err)
	}
	if rt.String() != p.String() {
		t.Fatalf("codec round trip: %q vs %q", rt.String(), p.String())
	}
	for _, bad := range []string{"crash", "crash@0", "torn@3", "zap@1", "flip@a:b"} {
		if _, err := ParsePlan(bad); err == nil {
			t.Errorf("plan %q accepted", bad)
		}
	}
}

// TestInjectedCrashPoint: the filesystem executes steps before the
// crash point, then fails that step and every later one with
// ErrCrashed.
func TestInjectedCrashPoint(t *testing.T) {
	dir := t.TempDir()
	fs := NewInjected(OS{}, Plan{Faults: []Fault{{Step: 2, Kind: Crash}}})
	if err := fs.WriteFile(filepath.Join(dir, "a"), []byte("one"), 0o644); err != nil {
		t.Fatalf("step 1 failed: %v", err)
	}
	if err := fs.WriteFile(filepath.Join(dir, "b"), []byte("two"), 0o644); !errors.Is(err, ErrCrashed) {
		t.Fatalf("step 2 (crash point): err=%v", err)
	}
	if _, err := fs.ReadFile(filepath.Join(dir, "a")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash read: err=%v", err)
	}
	if !fs.Crashed() {
		t.Error("Crashed() false after crash point")
	}
	if _, err := os.Stat(filepath.Join(dir, "b")); !errors.Is(err, os.ErrNotExist) {
		t.Error("crash point executed its own step")
	}
}

// TestInjectedTornWrite: a torn write persists exactly the prefix and
// then kills the filesystem.
func TestInjectedTornWrite(t *testing.T) {
	dir := t.TempDir()
	fs := NewInjected(OS{}, Plan{Faults: []Fault{{Step: 1, Kind: Torn, Arg: 4}}})
	path := filepath.Join(dir, "rec")
	if err := fs.WriteFile(path, []byte("0123456789"), 0o644); !errors.Is(err, ErrCrashed) {
		t.Fatalf("torn write: err=%v", err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "0123" {
		t.Fatalf("torn file holds %q (err %v), want prefix 0123", got, err)
	}
}

// TestInjectedFlipAndErrno: a flip silently corrupts one bit; ENOSPC
// and EIO fail the step without killing the filesystem.
func TestInjectedFlipAndErrno(t *testing.T) {
	dir := t.TempDir()
	fs := NewInjected(OS{}, Plan{Faults: []Fault{
		{Step: 1, Kind: Flip, Arg: 0},
		{Step: 2, Kind: NoSpace},
		{Step: 3, Kind: IOErr},
	}})
	path := filepath.Join(dir, "rec")
	if err := fs.WriteFile(path, []byte{0x00}, 0o644); err != nil {
		t.Fatalf("flip step errored: %v", err)
	}
	got, _ := os.ReadFile(path)
	if len(got) != 1 || got[0] != 0x01 {
		t.Fatalf("flip wrote %v, want [1]", got)
	}
	err := fs.WriteFile(path, []byte("x"), 0o644)
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("step 2: err=%v, want ENOSPC", err)
	}
	err = fs.WriteFile(path, []byte("x"), 0o644)
	if !errors.Is(err, syscall.EIO) {
		t.Fatalf("step 3: err=%v, want EIO", err)
	}
	if fs.Crashed() {
		t.Error("errno faults must not kill the filesystem")
	}
	if err := fs.WriteFile(path, []byte("ok"), 0o644); err != nil {
		t.Fatalf("step 4 after errno faults: %v", err)
	}
}

// TestWriteAtomicCrashMatrix: crash WriteAtomic at each of its four
// steps; the destination must hold either the old or the new sealed
// content — never a tear — and Open must succeed on whatever is there.
func TestWriteAtomicCrashMatrix(t *testing.T) {
	oldRec := Seal([]byte(`{"gen":"old"}`))
	newRec := Seal([]byte(`{"gen":"new"}`))
	for step := 1; step <= 4; step++ {
		dir := t.TempDir()
		path := filepath.Join(dir, "rec.json")
		if err := WriteAtomic(OS{}, path, oldRec, 0o644); err != nil {
			t.Fatal(err)
		}
		fs := NewInjected(OS{}, Plan{Faults: []Fault{{Step: step, Kind: Crash}}})
		if err := WriteAtomic(fs, path, newRec, 0o644); !errors.Is(err, ErrCrashed) {
			t.Fatalf("crash@%d: err=%v", step, err)
		}
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("crash@%d: record vanished: %v", step, err)
		}
		if !bytes.Equal(got, oldRec) && !bytes.Equal(got, newRec) {
			t.Fatalf("crash@%d: record torn: %q", step, got)
		}
		if _, _, err := Open(got); err != nil {
			t.Fatalf("crash@%d: surviving record does not open: %v", step, err)
		}
	}
	// Torn tmp write: the destination still holds the old record and the
	// tear is confined to the .tmp file the loader ignores.
	dir := t.TempDir()
	path := filepath.Join(dir, "rec.json")
	if err := WriteAtomic(OS{}, path, oldRec, 0o644); err != nil {
		t.Fatal(err)
	}
	fs := NewInjected(OS{}, Plan{Faults: []Fault{{Step: 1, Kind: Torn, Arg: 7}}})
	if err := WriteAtomic(fs, path, newRec, 0o644); !errors.Is(err, ErrCrashed) {
		t.Fatalf("torn tmp: err=%v", err)
	}
	if got, _ := os.ReadFile(path); !bytes.Equal(got, oldRec) {
		t.Fatalf("torn tmp write reached the destination: %q", got)
	}
}

// TestQuarantine moves a file aside and keeps its content.
func TestQuarantine(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(path, []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	dst, err := Quarantine(OS{}, path)
	if err != nil {
		t.Fatal(err)
	}
	if want := filepath.Join(dir, QuarantineDirName, "bad.json"); dst != want {
		t.Fatalf("quarantined to %s, want %s", dst, want)
	}
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Error("original still present after quarantine")
	}
	if got, _ := os.ReadFile(dst); string(got) != "junk" {
		t.Errorf("quarantined content %q", got)
	}
}

// FuzzEnvelope: for arbitrary bytes, Open never panics, a legacy
// verdict returns the input verbatim, and Seal->Open is the identity.
func FuzzEnvelope(f *testing.F) {
	f.Add([]byte(`{"id":"j000001"}`))
	f.Add([]byte(envelopeMagic + "v3 crc32c=00000000 len=0\n"))
	f.Add(Seal([]byte("payload")))
	f.Fuzz(func(t *testing.T, data []byte) {
		got, sealed, err := Open(data)
		if err == nil && !sealed && !bytes.Equal(got, data) {
			t.Fatalf("legacy record mutated: %q vs %q", got, data)
		}
		rt, sealed, err := Open(Seal(data))
		if err != nil || !sealed || !bytes.Equal(rt, data) {
			t.Fatalf("seal round trip: %q sealed=%v err=%v", rt, sealed, err)
		}
	})
}
