package chaos

import (
	"bytes"
	"errors"
	"fmt"
	"hash/crc32"
)

// ErrNewerVersion marks a record written by newer tooling than this
// build. Unlike corruption it must NOT be quarantined — the record is
// presumed valid, the binary is what's stale.
var ErrNewerVersion = errors.New("chaos: stale tooling")

// The self-verifying record envelope. Persisted records (fleet job
// records, injection checkpoints) are wrapped in a one-line header
//
//	vega-rec v3 crc32c=xxxxxxxx len=n\n
//
// followed by the payload bytes. The CRC32C (Castagnoli) checksum turns
// silent on-disk corruption — a flipped bit, a torn tail, a truncated
// write that still parses as JSON — into a detected load error the
// caller can quarantine, instead of state that is silently wrong or a
// record that bricks every restart.
//
// Versioning: records written before this envelope existed (the v1/v2
// era: plain JSON, no header) are still accepted verbatim — Open
// returns them unchanged with sealed=false, because JSON can never
// start with the magic. Records claiming a NEWER envelope version than
// this build understands are rejected as stale tooling rather than
// misparsed.

// EnvelopeVersion is the record-format generation this build writes.
// v1/v2 are the historical un-checksummed plain-JSON formats; v3 is the
// first sealed generation.
const EnvelopeVersion = 3

// envelopeMagic starts every sealed record. JSON payloads (the legacy
// format) can never begin with it.
const envelopeMagic = "vega-rec "

// crcTable is the Castagnoli polynomial, hardware-accelerated on
// amd64/arm64 — sealing is not allowed to become a persistence tax.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Seal wraps payload in the current envelope.
func Seal(payload []byte) []byte {
	out := make([]byte, 0, len(payload)+48)
	out = fmt.Appendf(out, "%sv%d crc32c=%08x len=%d\n",
		envelopeMagic, EnvelopeVersion, crc32.Checksum(payload, crcTable), len(payload))
	return append(out, payload...)
}

// Open unwraps a record. Sealed records are verified (version, length,
// checksum) and return their payload with sealed=true; anything not
// starting with the envelope magic is a legacy v1/v2 record and is
// returned verbatim with sealed=false. A sealed record that fails
// verification returns an error describing exactly what broke — the
// caller's cue to quarantine the file.
func Open(data []byte) (payload []byte, sealed bool, err error) {
	if !bytes.HasPrefix(data, []byte(envelopeMagic)) {
		return data, false, nil
	}
	nl := bytes.IndexByte(data, '\n')
	if nl < 0 {
		return nil, true, fmt.Errorf("chaos: sealed record corrupt: header line truncated")
	}
	var version int
	var sum uint32
	var n int
	if _, err := fmt.Sscanf(string(data[:nl]), envelopeMagic+"v%d crc32c=%x len=%d", &version, &sum, &n); err != nil {
		return nil, true, fmt.Errorf("chaos: sealed record corrupt: bad header %q", data[:nl])
	}
	if version > EnvelopeVersion {
		return nil, true, fmt.Errorf("%w: record envelope v%d is newer than this build understands (<= v%d)",
			ErrNewerVersion, version, EnvelopeVersion)
	}
	payload = data[nl+1:]
	if len(payload) != n {
		return nil, true, fmt.Errorf("chaos: sealed record corrupt: payload is %d bytes, header says %d",
			len(payload), n)
	}
	if got := crc32.Checksum(payload, crcTable); got != sum {
		return nil, true, fmt.Errorf("chaos: sealed record corrupt: crc32c %08x, header says %08x", got, sum)
	}
	return payload, true, nil
}
