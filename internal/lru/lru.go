// Package lru provides the small bounded LRU cache behind the compile
// memoizers (engine.Cached, sta.CachedGraph). Those caches used to wipe
// themselves wholesale at capacity, which made every long fault-injection
// or test-quality campaign pay a periodic recompile storm for its hottest
// netlists; a real least-recently-used policy keeps the working set warm
// and evicts only the one-shot entries. The counters exported through
// Stats are the groundwork for the ROADMAP's content-addressed artifact
// store: hit/miss/eviction rates are what decide whether an artifact is
// worth persisting.
//
// The cache is not internally locked — callers already serialize access
// with the mutex that guards their map, and double-locking here would
// just add contention on the compile fast path.
package lru

// Stats is a point-in-time snapshot of a cache's effectiveness counters.
type Stats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	Len       int
}

// entry is one node of the intrusive recency list. The list is circular
// with a sentinel root: root.next is the most recently used entry,
// root.prev the least.
type entry[K comparable, V any] struct {
	key        K
	val        V
	prev, next *entry[K, V]
}

// Cache is a fixed-capacity map with least-recently-used eviction.
// The zero value is not usable; construct with New.
type Cache[K comparable, V any] struct {
	capacity int
	m        map[K]*entry[K, V]
	root     entry[K, V] // sentinel of the circular recency list

	hits, misses, evictions uint64
}

// New returns an empty cache that holds at most capacity entries.
// capacity must be positive.
func New[K comparable, V any](capacity int) *Cache[K, V] {
	if capacity <= 0 {
		panic("lru: capacity must be positive")
	}
	c := &Cache[K, V]{
		capacity: capacity,
		m:        make(map[K]*entry[K, V], capacity),
	}
	c.root.prev = &c.root
	c.root.next = &c.root
	return c
}

func (c *Cache[K, V]) unlink(e *entry[K, V]) {
	e.prev.next = e.next
	e.next.prev = e.prev
}

func (c *Cache[K, V]) pushFront(e *entry[K, V]) {
	e.prev = &c.root
	e.next = c.root.next
	e.prev.next = e
	e.next.prev = e
}

// Get returns the value for k, promoting it to most recently used. The
// miss counter advances on lookup failure.
func (c *Cache[K, V]) Get(k K) (V, bool) {
	if e, ok := c.m[k]; ok {
		c.hits++
		c.unlink(e)
		c.pushFront(e)
		return e.val, true
	}
	c.misses++
	var zero V
	return zero, false
}

// Add inserts or updates k, making it the most recently used entry and
// evicting the least recently used one if the cache is over capacity.
func (c *Cache[K, V]) Add(k K, v V) {
	if e, ok := c.m[k]; ok {
		e.val = v
		c.unlink(e)
		c.pushFront(e)
		return
	}
	if len(c.m) >= c.capacity {
		lru := c.root.prev
		c.unlink(lru)
		delete(c.m, lru.key)
		c.evictions++
	}
	e := &entry[K, V]{key: k, val: v}
	c.m[k] = e
	c.pushFront(e)
}

// Len reports the number of cached entries.
func (c *Cache[K, V]) Len() int { return len(c.m) }

// Stats snapshots the effectiveness counters.
func (c *Cache[K, V]) Stats() Stats {
	return Stats{Hits: c.hits, Misses: c.misses, Evictions: c.evictions, Len: len(c.m)}
}
