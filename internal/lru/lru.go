// Package lru provides the small bounded LRU cache behind the compile
// memoizers (engine.Cached, sta.CachedGraph) and the fleet daemon's
// shared content-addressed artifact store (internal/store). Those caches
// used to wipe themselves wholesale at capacity, which made every long
// fault-injection or test-quality campaign pay a periodic recompile
// storm for its hottest netlists; a real least-recently-used policy
// keeps the working set warm and evicts only the one-shot entries. The
// counters exported through Stats are what decide whether an artifact
// is worth persisting.
//
// The cache is internally locked and safe for concurrent use. The
// compile memoizers still hold their own mutex across the
// get-miss-compile-add sequence (the lock here cannot make a compound
// sequence atomic), so for them the internal lock is an uncontended
// second acquire — nanoseconds against a compile. What the lock buys is
// that a caller without compound sequences, like the fleet store's
// eviction layer, cannot corrupt the recency list by racing Get
// promotions against Add evictions.
package lru

import "sync"

// Stats is a point-in-time snapshot of a cache's effectiveness counters.
type Stats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	Len       int
}

// entry is one node of the intrusive recency list. The list is circular
// with a sentinel root: root.next is the most recently used entry,
// root.prev the least.
type entry[K comparable, V any] struct {
	key        K
	val        V
	prev, next *entry[K, V]
}

// Cache is a fixed-capacity map with least-recently-used eviction,
// safe for concurrent use. The zero value is not usable; construct
// with New.
type Cache[K comparable, V any] struct {
	mu       sync.Mutex
	capacity int
	m        map[K]*entry[K, V]
	root     entry[K, V] // sentinel of the circular recency list

	hits, misses, evictions uint64
}

// New returns an empty cache that holds at most capacity entries.
// capacity must be positive.
func New[K comparable, V any](capacity int) *Cache[K, V] {
	if capacity <= 0 {
		panic("lru: capacity must be positive")
	}
	c := &Cache[K, V]{
		capacity: capacity,
		m:        make(map[K]*entry[K, V], capacity),
	}
	c.root.prev = &c.root
	c.root.next = &c.root
	return c
}

func (c *Cache[K, V]) unlink(e *entry[K, V]) {
	e.prev.next = e.next
	e.next.prev = e.prev
}

func (c *Cache[K, V]) pushFront(e *entry[K, V]) {
	e.prev = &c.root
	e.next = c.root.next
	e.prev.next = e
	e.next.prev = e
}

// Get returns the value for k, promoting it to most recently used. The
// miss counter advances on lookup failure.
func (c *Cache[K, V]) Get(k K) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.m[k]; ok {
		c.hits++
		c.unlink(e)
		c.pushFront(e)
		return e.val, true
	}
	c.misses++
	var zero V
	return zero, false
}

// Peek returns the value for k without promoting it and without
// touching the hit/miss counters — a residency probe, not a use.
func (c *Cache[K, V]) Peek(k K) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.m[k]; ok {
		return e.val, true
	}
	var zero V
	return zero, false
}

// Add inserts or updates k, making it the most recently used entry and
// evicting the least recently used one if the cache is over capacity.
func (c *Cache[K, V]) Add(k K, v V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.m[k]; ok {
		e.val = v
		c.unlink(e)
		c.pushFront(e)
		return
	}
	if len(c.m) >= c.capacity {
		lru := c.root.prev
		c.unlink(lru)
		delete(c.m, lru.key)
		c.evictions++
	}
	e := &entry[K, V]{key: k, val: v}
	c.m[k] = e
	c.pushFront(e)
}

// Len reports the number of cached entries.
func (c *Cache[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// Stats snapshots the effectiveness counters.
func (c *Cache[K, V]) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{Hits: c.hits, Misses: c.misses, Evictions: c.evictions, Len: len(c.m)}
}
