package lru

import (
	"sync"
	"testing"
)

func TestEvictsLeastRecentlyUsed(t *testing.T) {
	c := New[int, string](2)
	c.Add(1, "a")
	c.Add(2, "b")
	c.Add(3, "c") // evicts 1
	if _, ok := c.Get(1); ok {
		t.Error("1 survived eviction")
	}
	if v, ok := c.Get(2); !ok || v != "b" {
		t.Errorf("Get(2) = %q, %v", v, ok)
	}
	if v, ok := c.Get(3); !ok || v != "c" {
		t.Errorf("Get(3) = %q, %v", v, ok)
	}
}

func TestGetPromotes(t *testing.T) {
	c := New[int, int](2)
	c.Add(1, 10)
	c.Add(2, 20)
	c.Get(1)      // 2 is now LRU
	c.Add(3, 30)  // evicts 2
	if _, ok := c.Get(2); ok {
		t.Error("2 survived eviction despite 1 being promoted")
	}
	if _, ok := c.Get(1); !ok {
		t.Error("promoted entry 1 was evicted")
	}
}

func TestAddUpdatesAndPromotes(t *testing.T) {
	c := New[int, int](2)
	c.Add(1, 10)
	c.Add(2, 20)
	c.Add(1, 11) // update, promotes 1; 2 is LRU
	if c.Len() != 2 {
		t.Fatalf("Len = %d after update, want 2", c.Len())
	}
	c.Add(3, 30) // evicts 2
	if _, ok := c.Get(2); ok {
		t.Error("2 survived eviction after 1's update promoted it")
	}
	if v, ok := c.Get(1); !ok || v != 11 {
		t.Errorf("Get(1) = %d, %v; want updated value 11", v, ok)
	}
}

func TestStats(t *testing.T) {
	c := New[int, int](2)
	c.Add(1, 10)
	c.Get(1)
	c.Get(1)
	c.Get(9)
	c.Add(2, 20)
	c.Add(3, 30)
	s := c.Stats()
	want := Stats{Hits: 2, Misses: 1, Evictions: 1, Len: 2}
	if s != want {
		t.Errorf("Stats = %+v, want %+v", s, want)
	}
}

func TestCapacityOne(t *testing.T) {
	c := New[string, int](1)
	c.Add("a", 1)
	c.Add("b", 2)
	if _, ok := c.Get("a"); ok {
		t.Error("a survived in capacity-1 cache")
	}
	if v, ok := c.Get("b"); !ok || v != 2 {
		t.Errorf("Get(b) = %d, %v", v, ok)
	}
}

// TestConcurrentChurn hammers Get/Add/Len/Stats from 8 goroutines over
// a key space larger than the capacity, so promotions, insertions and
// evictions interleave constantly. Run under -race this is the
// concurrency-safety proof the shared content-addressed store
// (internal/store) builds on; the final structural sweep catches
// recency-list corruption that the race detector alone would miss.
func TestConcurrentChurn(t *testing.T) {
	const (
		goroutines = 8
		iters      = 5000
		keySpace   = 37
		capacity   = 16
	)
	c := New[int, int](capacity)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				k := (i*7 + g*13) % keySpace
				switch i % 4 {
				case 0:
					c.Add(k, g<<16|i)
				case 1:
					if v, ok := c.Get(k); ok && v>>16 >= goroutines {
						t.Errorf("Get(%d) returned mangled value %#x", k, v)
						return
					}
				case 2:
					if n := c.Len(); n < 0 || n > capacity {
						t.Errorf("Len = %d outside [0, %d]", n, capacity)
						return
					}
				default:
					s := c.Stats()
					if s.Len < 0 || s.Len > capacity {
						t.Errorf("Stats.Len = %d outside [0, %d]", s.Len, capacity)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()

	// The quiesced list and map must agree exactly.
	if n := c.Len(); n > capacity {
		t.Fatalf("cache grew past capacity: %d", n)
	}
	seen := 0
	for e := c.root.next; e != &c.root; e = e.next {
		if got, ok := c.m[e.key]; !ok || got != e {
			t.Fatalf("list entry %v not in map after churn", e.key)
		}
		seen++
	}
	if seen != len(c.m) {
		t.Fatalf("list has %d entries, map has %d", seen, len(c.m))
	}
}

func TestChurnKeepsListConsistent(t *testing.T) {
	c := New[int, int](8)
	for i := 0; i < 1000; i++ {
		c.Add(i%13, i)
		c.Get((i * 7) % 13)
		if c.Len() > 8 {
			t.Fatalf("cache grew past capacity: %d", c.Len())
		}
	}
	// Every entry the map holds must be reachable on the list and vice
	// versa.
	n := 0
	for e := c.root.next; e != &c.root; e = e.next {
		if got, ok := c.m[e.key]; !ok || got != e {
			t.Fatalf("list entry %v not in map", e.key)
		}
		n++
	}
	if n != c.Len() {
		t.Fatalf("list has %d entries, map has %d", n, c.Len())
	}
}
