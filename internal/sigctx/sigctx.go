// Package sigctx is the one place this repository turns SIGINT/SIGTERM
// into context cancellation. Every long-running binary — the fleet
// daemon's workers and the vega-inject / vega-sta / vega-lift CLIs —
// shares this path, so "operator hits Ctrl-C" and "fleetd drains a
// worker on shutdown" are the same event to the code underneath: the
// context cancels, checkpointed work flushes its current state (the
// injection engine persists completed waves and returns a graceful
// partial report), and the process exits with ExitInterrupted so
// wrappers can tell an interrupted run from a failed one.
//
// A second signal while shutting down bypasses the graceful path: Notify
// registers with signal.NotifyContext semantics, which restore default
// disposition once the context cancels, so the follow-up signal kills
// the process outright. An operator is never trapped behind a drain.
package sigctx

import (
	"context"
	"errors"
	"os"
	"os/signal"
	"syscall"
)

// ExitInterrupted is the process exit code for a run that was cut short
// by SIGINT/SIGTERM but shut down cleanly (checkpoint flushed, partial
// results reported). 130 = 128 + SIGINT, the shell convention.
const ExitInterrupted = 130

// Notify returns a copy of parent that is cancelled on SIGINT or
// SIGTERM. The returned stop releases the signal registration (and
// restores default disposition, making a later signal fatal again);
// call it as soon as the guarded work completes.
func Notify(parent context.Context) (context.Context, context.CancelFunc) {
	return signal.NotifyContext(parent, os.Interrupt, syscall.SIGTERM)
}

// Interrupted reports whether ctx was cancelled outright — the signal
// path — rather than expired. A deadline-bounded campaign that ran out
// of time returns DeadlineExceeded and is not "interrupted": it did all
// the work its budget allowed.
func Interrupted(ctx context.Context) bool {
	return errors.Is(ctx.Err(), context.Canceled)
}
