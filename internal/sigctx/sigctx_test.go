package sigctx

import (
	"context"
	"syscall"
	"testing"
	"time"
)

// TestSignalCancels delivers a real SIGINT to the process and asserts
// the notified context cancels. Safe under `go test`: Notify intercepts
// the signal before the default handler would kill the test binary.
func TestSignalCancels(t *testing.T) {
	ctx, stop := Notify(context.Background())
	defer stop()
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGINT); err != nil {
		t.Fatalf("self-signal: %v", err)
	}
	select {
	case <-ctx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("context not cancelled within 5s of SIGINT")
	}
	if !Interrupted(ctx) {
		t.Errorf("Interrupted = false after signal cancellation (err=%v)", ctx.Err())
	}
}

// TestDeadlineIsNotInterrupted pins the distinction the CLIs rely on:
// an expired -deadline reports a partial result with a zero exit, only
// a signal produces ExitInterrupted.
func TestDeadlineIsNotInterrupted(t *testing.T) {
	parent, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	ctx, stop := Notify(parent)
	defer stop()
	<-ctx.Done()
	if Interrupted(ctx) {
		t.Errorf("deadline expiry classified as interruption (err=%v)", ctx.Err())
	}
}

func TestStopReleasesRegistration(t *testing.T) {
	ctx, stop := Notify(context.Background())
	stop()
	if ctx.Err() == nil {
		// NotifyContext cancels on stop; either way the context must be
		// done so deferred cleanup paths run.
		t.Error("stop did not cancel the notified context")
	}
}
