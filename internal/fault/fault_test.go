package fault

import (
	"math/rand"
	"testing"

	"repro/internal/cell"
	"repro/internal/demo"
	"repro/internal/netlist"
	"repro/internal/sim"
	"repro/internal/sta"
)

func adderSpecSetup(nl *netlist.Netlist, c CValue, e EdgeFilter) Spec {
	return Spec{
		Type:  sta.Setup,
		Start: demo.CellIDByName(nl, "DFF$4"),
		End:   demo.CellIDByName(nl, "DFF$10"),
		C:     c,
		Edge:  e,
	}
}

func TestFailingNetlistQuietWhenPathIdle(t *testing.T) {
	// With X (= bq1, fed by b[1]) held constant, the setup failure never
	// activates and the failing netlist is indistinguishable from the
	// original.
	orig := demo.Adder2()
	fail := FailingNetlist(orig, adderSpecSetup(orig, C1, AnyChange))
	so, sf := sim.New(orig), sim.New(fail)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 300; i++ {
		a := uint64(rng.Intn(4))
		b := uint64(rng.Intn(2)) // b[1] stays 0
		so.SetInput("a", a)
		so.SetInput("b", b)
		sf.SetInput("a", a)
		sf.SetInput("b", b)
		if so.Output("o") != sf.Output("o") {
			t.Fatalf("cycle %d: failing netlist diverged with idle path", i)
		}
		so.Step()
		sf.Step()
	}
}

func TestFailingNetlistCorruptsOnChange(t *testing.T) {
	orig := demo.Adder2()
	fail := FailingNetlist(orig, adderSpecSetup(orig, C1, AnyChange))
	s := sim.New(fail)
	// Cycle 1: b[1] goes 0->1 (X changes at edge 1 relative to reset 0)
	// with a=0, b=2: the true sum is 2 (o[1]=1), so corruption to C=1 is
	// masked; use a=0,b=0 then b=2 so the corrupted bit differs.
	s.SetInput("a", 0)
	s.SetInput("b", 2) // b[1]=1: X will change at this edge
	s.Step()           // edge 1: bq1 0->1, X changed
	s.SetInput("b", 2)
	s.Step() // edge 2: X(1)=1 vs X(0)=0 -> Y samples C=1
	// o now shows the stage-2 result of cycle-1 inputs (aq=0,bq=2 ->
	// sum=2, o[1]=1), but corrupted Y forced o[1]=C=1: same. Continue to
	// a case where the true value is 0.
	s.SetInput("b", 0)
	s.Step() // edge 3: X 1->0 changed -> Y=C=1 while true sum (0+2)=2 -> o[1]=1 anyway
	s.Step() // edge 4: X stable 0 -> Y normal
	// Deterministic replay instead: check the paper's Table 2 trace below.
	_ = s
}

func TestShadowReplicaReproducesPaperTable2(t *testing.T) {
	// Table 2: a = 01,11,11 / b = 11,00,01 makes o[1] and o_s[1]
	// mismatch at cycle 3 with C=1.
	orig := demo.Adder2()
	inst := ShadowReplica(orig, adderSpecSetup(orig, C1, AnyChange))
	if inst.ConeCells != 1 {
		t.Errorf("cone of DFF$10 = %d cells, want 1", inst.ConeCells)
	}
	if len(inst.Covers) != 1 || inst.Covers[0].Name != "o[1]" {
		t.Fatalf("covers = %+v, want exactly o[1]", inst.Covers)
	}
	s := sim.New(inst.Netlist)
	as := []uint64{1, 3, 3}
	bs := []uint64{3, 0, 1}
	type row struct{ o1, os1 bool }
	var got []row
	for i := 0; i < 3; i++ {
		s.SetInput("a", as[i])
		s.SetInput("b", bs[i])
		got = append(got, row{s.Net(inst.Covers[0].Orig), s.Net(inst.Covers[0].Shadow)})
		s.Step()
	}
	want := []row{{false, false}, {false, false}, {false, true}}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("cycle %d: o[1]/o_s[1] = %v/%v, want %v/%v",
				i+1, got[i].o1, got[i].os1, want[i].o1, want[i].os1)
		}
	}
}

func TestShadowOriginalHalfUnchanged(t *testing.T) {
	// The original outputs of the instrumented netlist must track the
	// un-instrumented design cycle-for-cycle under random stimulus.
	orig := demo.Adder2()
	inst := ShadowReplica(orig, adderSpecSetup(orig, C0, AnyChange))
	so, si := sim.New(orig), sim.New(inst.Netlist)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 500; i++ {
		a, b := uint64(rng.Intn(4)), uint64(rng.Intn(4))
		so.SetInput("a", a)
		so.SetInput("b", b)
		si.SetInput("a", a)
		si.SetInput("b", b)
		if so.Output("o") != si.Output("o") {
			t.Fatalf("cycle %d: instrumentation perturbed the original half", i)
		}
		so.Step()
		si.Step()
	}
}

func TestHoldModelUsesNextValue(t *testing.T) {
	// Hold violation on $1 -> $5 -> $9 (X=$1=aq0, Y=$9): the failure
	// fires when X(t) != X(t+1), i.e. when a[0] (X's D input) differs
	// from aq0.
	orig := demo.Adder2()
	spec := Spec{
		Type:  sta.Hold,
		Start: demo.CellIDByName(orig, "DFF$1"),
		End:   demo.CellIDByName(orig, "DFF$9"),
		C:     C1,
		Edge:  AnyChange,
	}
	fail := FailingNetlist(orig, spec)
	s := sim.New(fail)
	// Keep a[0] at 0 for two cycles: no activation, o[0] correct (0).
	s.SetInput("a", 0)
	s.SetInput("b", 0)
	s.Step()
	s.Step()
	if s.Output("o")&1 != 0 {
		t.Fatal("idle hold path corrupted output")
	}
	// Now raise a[0]: during this cycle X(t)=0 but X(t+1)=1 -> Y samples
	// C=1 at the edge even though the true sum bit is 0.
	s.SetInput("a", 1)
	s.Step()
	if s.Output("o")&1 != 1 {
		t.Fatal("hold violation did not corrupt o[0]")
	}
}

func TestEdgeFilters(t *testing.T) {
	// With a=0 the healthy adder pipelines b straight through, so the
	// expected output at cycle i is b(i-2). Stimulus: b[1] rises during
	// the run and falls again. A rise-filtered fault (C=0) must corrupt
	// exactly the sample launched by the rising transition; a
	// fall-filtered fault (C=1) exactly the one launched by the falling
	// transition.
	orig := demo.Adder2()
	pattern := []uint64{0, 2, 2, 0, 0, 0}
	run := func(c CValue, e EdgeFilter) []uint64 {
		s := sim.New(FailingNetlist(orig, adderSpecSetup(orig, c, e)))
		var outs []uint64
		for _, b := range pattern {
			s.SetInput("a", 0)
			s.SetInput("b", b)
			outs = append(outs, s.Output("o"))
			s.Step()
		}
		return outs
	}
	healthy := []uint64{0, 0, 0, 2, 2, 0}
	// X (bq1) is visibly 1 during cycles 2-3: rising activation during
	// cycle 2 corrupts the edge-2 capture, visible at cycle 3.
	outsRise := run(C0, RisingEdge)
	wantRise := append([]uint64(nil), healthy...)
	wantRise[3] = 0 // o[1] forced to 0 instead of the true 1
	// Falling activation during cycle 4 corrupts the edge-4 capture,
	// visible at cycle 5.
	outsFall := run(C1, FallingEdge)
	wantFall := append([]uint64(nil), healthy...)
	wantFall[5] = 2 // o[1] forced to 1 instead of the true 0
	for i := range healthy {
		if outsRise[i] != wantRise[i] {
			t.Errorf("rise: cycle %d o=%d, want %d", i, outsRise[i], wantRise[i])
		}
		if outsFall[i] != wantFall[i] {
			t.Errorf("fall: cycle %d o=%d, want %d", i, outsFall[i], wantFall[i])
		}
	}
}

func TestSameFFMetastable(t *testing.T) {
	// Build a 1-bit toggle register (Q feeds back through an inverter
	// conceptually; here directly Q -> D) and fail the self-path: Y
	// always samples C.
	b := netlist.NewBuilder("self")
	clk := b.Clock("clk")
	d := b.Net()
	q := b.AddDFFNamed("ff", d, clk, false)
	inv := b.Add(cell.INV, q)
	b.RewireInput(0, 0, inv)
	_ = d
	b.Output("q", q)
	nl := b.MustBuild()
	ff := demo.CellIDByName(nl, "ff")
	fail := FailingNetlist(nl, Spec{Type: sta.Hold, Start: ff, End: ff, C: C0})
	s := sim.New(fail)
	for i := 0; i < 10; i++ {
		s.Step()
		if s.Output("q") != 0 {
			t.Fatal("self-path failure must pin Y to C")
		}
	}
}

func TestRandomCUsesLFSR(t *testing.T) {
	// Same-FF failure with C=R: the output replays the LFSR bit, which
	// must not be constant.
	b := netlist.NewBuilder("self")
	clk := b.Clock("clk")
	d := b.Net()
	q := b.AddDFFNamed("ff", d, clk, false)
	inv := b.Add(cell.INV, q)
	b.RewireInput(0, 0, inv)
	_ = d
	b.Output("q", q)
	nl := b.MustBuild()
	ff := demo.CellIDByName(nl, "ff")
	fail := FailingNetlist(nl, Spec{Type: sta.Hold, Start: ff, End: ff, C: CRandom})
	s := sim.New(fail)
	zeros, ones := 0, 0
	for i := 0; i < 200; i++ {
		s.Step()
		if s.Output("q") == 1 {
			ones++
		} else {
			zeros++
		}
	}
	if zeros < 40 || ones < 40 {
		t.Errorf("LFSR stream skewed: %d zeros, %d ones", zeros, ones)
	}
}

func TestInfluencedFollowsClockGateEnable(t *testing.T) {
	// Y drives a clock-gate enable; the flip-flop behind the gate must be
	// in Y's influence cone.
	b := netlist.NewBuilder("gated")
	clk := b.Clock("clk")
	d1 := b.Input("d1")
	d2 := b.Input("d2")
	y := b.AddDFFNamed("y", d1, clk, false)
	g := b.Add(cell.CLKGATE, clk, y)
	q2 := b.AddDFFNamed("victim", d2, g, false)
	b.Output("q", q2)
	b.Output("yq", y)
	nl := b.MustBuild()
	set := influenced(nl, demo.CellIDByName(nl, "y"))
	if !set[demo.CellIDByName(nl, "victim")] {
		t.Error("influence must propagate through clock-gate enables")
	}
}

func TestSpecName(t *testing.T) {
	nl := demo.Adder2()
	spec := adderSpecSetup(nl, C1, RisingEdge)
	got := spec.Name(nl)
	want := "setup:DFF$4->DFF$10,C=1,rise"
	if got != want {
		t.Errorf("Name = %q, want %q", got, want)
	}
}

func TestFailingNetlistMultiIndependentSites(t *testing.T) {
	// Two independent stuck-at sites (C=1 on o[1] via DFF$4->DFF$10 and
	// C=0 on o[0] via DFF$2->DFF$9): the multi-fault netlist must match
	// the single-fault netlists on stimuli that exercise only one site,
	// and must diverge from the healthy circuit.
	orig := demo.Adder2()
	s1 := adderSpecSetup(orig, C1, AnyChange)
	s2 := Spec{
		Type:  sta.Setup,
		Start: demo.CellIDByName(orig, "DFF$2"),
		End:   demo.CellIDByName(orig, "DFF$9"),
		C:     C0,
		Edge:  AnyChange,
	}
	multi, err := FailingNetlistMulti(orig, s1, s2)
	if err != nil {
		t.Fatal(err)
	}
	f1 := FailingNetlist(orig, s1)

	// Toggling only b[1] (site 1's X) must reproduce the single-fault
	// behaviour of f1 exactly: site 2's X (bq0, fed by b[0]) stays idle.
	sm, sf := sim.New(multi), sim.New(f1)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 300; i++ {
		a := uint64(rng.Intn(4))
		b := uint64(rng.Intn(2)) * 2 // b[0] stays 0
		sm.SetInput("a", a)
		sm.SetInput("b", b)
		sf.SetInput("a", a)
		sf.SetInput("b", b)
		if sm.Output("o") != sf.Output("o") {
			t.Fatalf("cycle %d: multi-fault diverged from single-fault with site 2 idle", i)
		}
		sm.Step()
		sf.Step()
	}

	// Random stimulus must eventually diverge from the healthy circuit.
	sm, so := sim.New(multi), sim.New(orig)
	diverged := false
	for i := 0; i < 300; i++ {
		a := uint64(rng.Intn(4))
		b := uint64(rng.Intn(4))
		sm.SetInput("a", a)
		sm.SetInput("b", b)
		so.SetInput("a", a)
		so.SetInput("b", b)
		if sm.Output("o") != so.Output("o") {
			diverged = true
		}
		sm.Step()
		so.Step()
	}
	if !diverged {
		t.Error("multi-fault netlist never diverged from the healthy circuit")
	}
}

func TestFailingNetlistMultiRejectsDuplicateEndpoint(t *testing.T) {
	orig := demo.Adder2()
	s := adderSpecSetup(orig, C1, AnyChange)
	if _, err := FailingNetlistMulti(orig, s, s); err == nil {
		t.Fatal("duplicate endpoint accepted")
	}
	if _, err := FailingNetlistMulti(orig); err == nil {
		t.Fatal("empty spec list accepted")
	}
}
