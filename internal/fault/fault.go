// Package fault implements the paper's Failure Model Instrumentation
// (§3.3.1-§3.3.2): it takes an aging-prone path X⇝Y between two
// flip-flops and produces either
//
//   - a failing netlist — a drop-in replacement for the module whose Y
//     flip-flop misbehaves per the logical timing-violation model
//     (Eq. 2 for setup, Eq. 3 for hold), used to emulate the aged
//     silicon when evaluating test quality; or
//
//   - a shadow-replica netlist — the original circuit plus a cloned copy
//     of everything Y can influence, with the failure model driving the
//     clone, and per-output cover points (o vs o_s) for the bounded
//     model checker to target.
package fault

import (
	"fmt"

	"repro/internal/cell"
	"repro/internal/netlist"
	"repro/internal/sta"
)

// CValue selects the wrong value C sampled on a violation (§3.3.1). For
// trace generation C must be a constant (0 or 1) to bound the formal
// search space; failing netlists additionally support a per-cycle
// pseudo-random C, implemented with an embedded LFSR.
type CValue int

// C settings.
const (
	C0 CValue = iota
	C1
	CRandom
)

func (c CValue) String() string {
	switch c {
	case C0:
		return "0"
	case C1:
		return "1"
	}
	return "R"
}

// EdgeFilter is the initial-value-dependency mitigation of §3.3.4: the
// failure activates only on a rising or falling transition of X, instead
// of on any change.
type EdgeFilter int

// Edge filters.
const (
	AnyChange EdgeFilter = iota
	RisingEdge
	FallingEdge
)

func (e EdgeFilter) String() string {
	switch e {
	case RisingEdge:
		return "rise"
	case FallingEdge:
		return "fall"
	}
	return "any"
}

// Spec identifies one modeled failure.
type Spec struct {
	Type  sta.PathType   // Setup or Hold
	Start netlist.CellID // X: the launching flip-flop
	End   netlist.CellID // Y: the capturing flip-flop
	C     CValue
	Edge  EdgeFilter
}

// Name renders a stable human-readable identifier.
func (s Spec) Name(nl *netlist.Netlist) string {
	return fmt.Sprintf("%s:%s->%s,C=%s,%s", s.Type,
		nl.Cells[s.Start].Name, nl.Cells[s.End].Name, s.C, s.Edge)
}

// activation builds the "violation fires this cycle" condition and the
// faulty-value net. It appends cells to b (which was seeded from the
// original netlist) and returns (active, cNet).
//
// For a setup violation the condition compares X(t) with X(t-1), held in
// an added history flip-flop (Figure 5's $12). For a hold violation it
// compares X(t) with X(t+1), which is simply X's current D input
// (Figure 6). xQ/xD let the caller redirect the comparison to shadow
// copies of X.
func activation(b *netlist.Builder, orig *netlist.Netlist, spec Spec, xQ, xD netlist.NetID) (active, cNet netlist.NetID) {
	x := orig.Cells[spec.Start]

	switch spec.C {
	case C0:
		cNet = b.Add(cell.TIE0)
	case C1:
		cNet = b.Add(cell.TIE1)
	case CRandom:
		cNet = addLFSR(b, orig.ClockRoot)
	}

	if spec.Start == spec.End {
		// Same-flip-flop path: Y is metastable and always samples C
		// (§3.3.1). Active unconditionally.
		return b.Add(cell.TIE1), cNet
	}

	var prev, cur netlist.NetID
	switch spec.Type {
	case sta.Setup:
		hist := b.AddDFFNamed(fmt.Sprintf("fault_hist_%s", orig.Cells[spec.Start].Name), xQ, x.Clk, x.Init)
		prev, cur = hist, xQ
	case sta.Hold:
		prev, cur = xQ, xD
	}

	switch spec.Edge {
	case AnyChange:
		active = b.Add(cell.XOR2, prev, cur)
	case RisingEdge:
		active = b.Add(cell.AND2, b.Add(cell.INV, prev), cur)
	case FallingEdge:
		active = b.Add(cell.AND2, prev, b.Add(cell.INV, cur))
	}
	return active, cNet
}

// addLFSR embeds a 16-bit Fibonacci LFSR (taps 16,14,13,11) clocked by
// the module's root clock and returns its output bit — the per-cycle
// pseudo-random C source for failing netlists.
func addLFSR(b *netlist.Builder, clk netlist.NetID) netlist.NetID {
	const seed = 0xACE1
	qs := make([]netlist.NetID, 16)
	ds := make([]netlist.NetID, 16)
	for i := range ds {
		ds[i] = b.Net()
	}
	for i := range qs {
		qs[i] = b.AddDFFNamed(fmt.Sprintf("fault_lfsr_%d", i), ds[i], clk, seed>>uint(i)&1 == 1)
	}
	fb := b.Add(cell.XOR2,
		b.Add(cell.XOR2, qs[15], qs[13]),
		b.Add(cell.XOR2, qs[12], qs[10]))
	// Shift register: bit0 <- feedback, bit i <- bit i-1.
	for i := 15; i >= 1; i-- {
		b.RewireInput(cellOfDFF(b, qs[i]), 0, qs[i-1])
	}
	b.RewireInput(cellOfDFF(b, qs[0]), 0, fb)
	_ = ds
	return qs[15]
}

// cellOfDFF finds the cell driving net q in the builder.
func cellOfDFF(b *netlist.Builder, q netlist.NetID) netlist.CellID {
	for i := 0; i < b.NumCells(); i++ {
		if b.CellOut(netlist.CellID(i)) == q {
			return netlist.CellID(i)
		}
	}
	panic("fault: net has no driver in builder")
}

// FailingNetlist produces the §3.3.2 "failing netlist": a clone of the
// module whose endpoint flip-flop Y misbehaves per the failure model.
// The result has the same ports as the original and can be dropped into
// the CPU simulation in place of the healthy unit.
func FailingNetlist(orig *netlist.Netlist, spec Spec) *netlist.Netlist {
	b := netlist.NewBuilderFrom(orig)
	instrument(b, orig, spec)
	for _, p := range orig.Outputs {
		b.OutputBus(p.Name, p.Bits)
	}
	nl := b.MustBuild()
	nl.Name = orig.Name + "_failing"
	return nl
}

// instrument adds one failure site to a builder seeded from orig: Y's D
// input becomes (active ? C : D_orig).
func instrument(b *netlist.Builder, orig *netlist.Netlist, spec Spec) {
	x := orig.Cells[spec.Start]
	y := orig.Cells[spec.End]
	active, cNet := activation(b, orig, spec, x.Out, x.In[0])
	faulty := b.AddNamed(cell.MUX2, fmt.Sprintf("fault_mux_%s", y.Name), y.In[0], cNet, active)
	b.RewireInput(spec.End, 0, faulty)
}

// FailingNetlistMulti produces a failing netlist with several
// independent failure sites active at once — the multi-fault silicon a
// test suite meets in the field, as opposed to the single-fault models
// the lifting pipeline targets. Each spec instruments its own capturing
// flip-flop against the *original* circuit, so the activation conditions
// are independent; endpoints must therefore be distinct (a second rewire
// of the same Y would silently drop the first fault's MUX).
func FailingNetlistMulti(orig *netlist.Netlist, specs ...Spec) (*netlist.Netlist, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("fault: FailingNetlistMulti needs at least one spec")
	}
	seen := make(map[netlist.CellID]bool, len(specs))
	b := netlist.NewBuilderFrom(orig)
	for _, spec := range specs {
		if seen[spec.End] {
			return nil, fmt.Errorf("fault: duplicate endpoint %s in multi-fault spec",
				orig.Cells[spec.End].Name)
		}
		seen[spec.End] = true
		instrument(b, orig, spec)
	}
	for _, p := range orig.Outputs {
		b.OutputBus(p.Name, p.Bits)
	}
	nl, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("fault: multi-fault netlist: %w", err)
	}
	nl.Name = orig.Name + "_failing_multi"
	return nl, nil
}
