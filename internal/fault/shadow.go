package fault

import (
	"fmt"

	"repro/internal/cell"
	"repro/internal/netlist"
)

// CoverPoint pairs a module output bit with its shadow-replica
// counterpart. The bounded model checker searches for an input sequence
// making the two differ — the paper's `cover property (o != o_s)`.
type CoverPoint struct {
	Name         string // e.g. "result[5]"
	Orig, Shadow netlist.NetID
}

// Instrumented is a shadow-replica netlist prepared for trace generation
// (Figure 7 of the paper).
type Instrumented struct {
	Netlist *netlist.Netlist
	Spec    Spec
	Covers  []CoverPoint
	// ConeCells is the number of original cells cloned into the shadow.
	ConeCells int
}

// influenced computes the set of cells transitively affected by Y's
// output, following both data pins and clock pins (a flip-flop whose
// gated clock enable is corrupted is affected too). Y itself is included
// (§3.3.2).
func influenced(nl *netlist.Netlist, y netlist.CellID) []bool {
	readers := nl.Readers()
	inSet := make([]bool, len(nl.Cells))
	inSet[y] = true
	work := []netlist.NetID{nl.Cells[y].Out}
	seenNet := make([]bool, nl.NumNets)
	seenNet[nl.Cells[y].Out] = true
	for len(work) > 0 {
		n := work[len(work)-1]
		work = work[:len(work)-1]
		for _, r := range readers[n] {
			if inSet[r] {
				continue
			}
			inSet[r] = true
			out := nl.Cells[r].Out
			if !seenNet[out] {
				seenNet[out] = true
				work = append(work, out)
			}
		}
	}
	return inSet
}

// ShadowReplica instruments a clone of the original netlist with a
// shadow copy of Y's influence cone driven by the failure model, and
// exposes cover points on every module output bit the fault can reach.
func ShadowReplica(orig *netlist.Netlist, spec Spec) *Instrumented {
	if spec.C == CRandom {
		panic("fault: trace generation requires a constant C (0 or 1)")
	}
	b := netlist.NewBuilderFrom(orig)
	inSet := influenced(orig, spec.End)

	// Pre-allocate shadow nets for every influenced cell's output so the
	// clone can be wired in one pass regardless of feedback.
	shadowNet := make(map[netlist.NetID]netlist.NetID)
	cone := 0
	for i, c := range orig.Cells {
		if inSet[i] {
			cone++
			shadowNet[c.Out] = b.NamedNet(orig.NetName(c.Out) + "_s")
		}
	}
	shadowOf := func(n netlist.NetID) netlist.NetID {
		if s, ok := shadowNet[n]; ok {
			return s
		}
		return n
	}

	x := orig.Cells[spec.Start]
	y := orig.Cells[spec.End]
	active, cNet := activation(b, orig, spec, shadowOf(x.Out), shadowOf(x.In[0]))
	faultyD := b.AddNamed(cell.MUX2, fmt.Sprintf("fault_mux_%s", y.Name),
		shadowOf(y.In[0]), cNet, active)

	for i, c := range orig.Cells {
		if !inSet[i] {
			continue
		}
		ins := make([]netlist.NetID, len(c.In))
		for k, in := range c.In {
			ins[k] = shadowOf(in)
		}
		clk := c.Clk
		if clk != netlist.NoNet {
			clk = shadowOf(clk)
		}
		if netlist.CellID(i) == spec.End {
			ins[0] = faultyD // the failure model drives shadow Y
		}
		b.AddRaw(c.Kind, c.Name+"_s", ins, clk, shadowNet[c.Out], c.Init)
	}

	inst := &Instrumented{Spec: spec, ConeCells: cone}
	for _, p := range orig.Outputs {
		b.OutputBus(p.Name, p.Bits)
		sBits := make(netlist.Bus, len(p.Bits))
		touched := false
		for i, n := range p.Bits {
			sBits[i] = shadowOf(n)
			if sBits[i] != n {
				touched = true
				inst.Covers = append(inst.Covers, CoverPoint{
					Name:   fmt.Sprintf("%s[%d]", p.Name, i),
					Orig:   n,
					Shadow: sBits[i],
				})
			}
		}
		if touched {
			b.OutputBus(p.Name+"_s", sBits)
		}
	}

	nl := b.MustBuild()
	nl.Name = orig.Name + "_shadow"
	inst.Netlist = nl
	return inst
}
