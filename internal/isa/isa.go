// Package isa implements the RV32IM+F subset that the CV32E40P executes
// in this reproduction: instruction representation, binary encoding and
// decoding, and an assembler with labels and the usual pseudo-
// instructions. The CPU simulator (internal/cpu) consumes decoded
// instructions; the instruction-construction phase (internal/lift) emits
// them; the embench-style workloads are written against the assembler.
package isa

import "fmt"

// Reg is a register index (x0..x31 for integer, f0..f31 for FP).
type Reg uint8

// ABI register names.
const (
	Zero Reg = 0
	RA   Reg = 1
	SP   Reg = 2
	GP   Reg = 3
	TP   Reg = 4
	T0   Reg = 5
	T1   Reg = 6
	T2   Reg = 7
	S0   Reg = 8
	S1   Reg = 9
	A0   Reg = 10
	A1   Reg = 11
	A2   Reg = 12
	A3   Reg = 13
	A4   Reg = 14
	A5   Reg = 15
	A6   Reg = 16
	A7   Reg = 17
	S2   Reg = 18
	S3   Reg = 19
	S4   Reg = 20
	S5   Reg = 21
	S6   Reg = 22
	S7   Reg = 23
	S8   Reg = 24
	S9   Reg = 25
	S10  Reg = 26
	S11  Reg = 27
	T3   Reg = 28
	T4   Reg = 29
	T5   Reg = 30
	T6   Reg = 31
)

var regNames = [...]string{
	"zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2",
	"s0", "s1", "a0", "a1", "a2", "a3", "a4", "a5",
	"a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7",
	"s8", "s9", "s10", "s11", "t3", "t4", "t5", "t6",
}

func (r Reg) String() string {
	if int(r) < len(regNames) {
		return regNames[r]
	}
	return fmt.Sprintf("x%d", uint8(r))
}

// FReg formats a register index as an FP register name.
func FReg(r Reg) string { return fmt.Sprintf("f%d", uint8(r)) }

// Op is an instruction mnemonic.
type Op uint8

// The implemented instruction set.
const (
	// RV32I
	LUI Op = iota
	AUIPC
	JAL
	JALR
	BEQ
	BNE
	BLT
	BGE
	BLTU
	BGEU
	LB
	LH
	LW
	LBU
	LHU
	SB
	SH
	SW
	ADDI
	SLTI
	SLTIU
	XORI
	ORI
	ANDI
	SLLI
	SRLI
	SRAI
	ADD
	SUB
	SLL
	SLT
	SLTU
	XOR
	SRL
	SRA
	OR
	AND
	ECALL
	EBREAK
	CSRRW
	CSRRS
	CSRRC
	// RV32M
	MUL
	MULH
	MULHSU
	MULHU
	DIV
	DIVU
	REM
	REMU
	// RV32F (subset; RNE rounding only)
	FLW
	FSW
	FADDS
	FSUBS
	FMULS
	FDIVS
	FSGNJS
	FSGNJNS
	FSGNJXS
	FMINS
	FMAXS
	FCVTWS
	FCVTWUS
	FMVXW
	FCLASSS
	FEQS
	FLTS
	FLES
	FCVTSW
	FCVTSWU
	FMVWX
	NumOps
)

var opNames = [...]string{
	"lui", "auipc", "jal", "jalr", "beq", "bne", "blt", "bge", "bltu", "bgeu",
	"lb", "lh", "lw", "lbu", "lhu", "sb", "sh", "sw",
	"addi", "slti", "sltiu", "xori", "ori", "andi", "slli", "srli", "srai",
	"add", "sub", "sll", "slt", "sltu", "xor", "srl", "sra", "or", "and",
	"ecall", "ebreak", "csrrw", "csrrs", "csrrc",
	"mul", "mulh", "mulhsu", "mulhu", "div", "divu", "rem", "remu",
	"flw", "fsw", "fadd.s", "fsub.s", "fmul.s", "fdiv.s",
	"fsgnj.s", "fsgnjn.s", "fsgnjx.s", "fmin.s", "fmax.s",
	"fcvt.w.s", "fcvt.wu.s", "fmv.x.w", "fclass.s",
	"feq.s", "flt.s", "fle.s", "fcvt.s.w", "fcvt.s.wu", "fmv.w.x",
}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op%d", uint8(o))
}

// Inst is a decoded instruction. Imm is sign-extended where the format
// calls for it. For CSR instructions Imm holds the CSR address.
type Inst struct {
	Op  Op
	Rd  Reg
	Rs1 Reg
	Rs2 Reg
	Imm int32
}

func (i Inst) String() string {
	switch {
	case i.Op == LUI || i.Op == AUIPC:
		return fmt.Sprintf("%s %s, %#x", i.Op, i.Rd, uint32(i.Imm)>>12)
	case i.Op == JAL:
		return fmt.Sprintf("%s %s, %d", i.Op, i.Rd, i.Imm)
	case i.Op >= BEQ && i.Op <= BGEU:
		return fmt.Sprintf("%s %s, %s, %d", i.Op, i.Rs1, i.Rs2, i.Imm)
	case i.Op >= LB && i.Op <= LHU || i.Op == FLW:
		return fmt.Sprintf("%s %s, %d(%s)", i.Op, i.Rd, i.Imm, i.Rs1)
	case i.Op >= SB && i.Op <= SW || i.Op == FSW:
		return fmt.Sprintf("%s %s, %d(%s)", i.Op, i.Rs2, i.Imm, i.Rs1)
	case i.Op >= ADDI && i.Op <= SRAI || i.Op == JALR:
		return fmt.Sprintf("%s %s, %s, %d", i.Op, i.Rd, i.Rs1, i.Imm)
	case i.Op == ECALL || i.Op == EBREAK:
		return i.Op.String()
	case i.Op >= CSRRW && i.Op <= CSRRC:
		return fmt.Sprintf("%s %s, %#x, %s", i.Op, i.Rd, uint32(i.Imm), i.Rs1)
	case i.Op >= FADDS:
		return fmt.Sprintf("%s f%d, f%d, f%d", i.Op, i.Rd, i.Rs1, i.Rs2)
	default:
		return fmt.Sprintf("%s %s, %s, %s", i.Op, i.Rd, i.Rs1, i.Rs2)
	}
}

// CSR addresses implemented by the CPU.
const (
	CSRFflags  = 0x001
	CSRFrm     = 0x002
	CSRFcsr    = 0x003
	CSRCycle   = 0xc00
	CSRInstret = 0xc02
)
