package isa

import "fmt"

// RISC-V base opcodes.
const (
	opcLUI    = 0b0110111
	opcAUIPC  = 0b0010111
	opcJAL    = 0b1101111
	opcJALR   = 0b1100111
	opcBranch = 0b1100011
	opcLoad   = 0b0000011
	opcStore  = 0b0100011
	opcOpImm  = 0b0010011
	opcOp     = 0b0110011
	opcSystem = 0b1110011
	opcFLW    = 0b0000111
	opcFSW    = 0b0100111
	opcOpFP   = 0b1010011
)

type enc struct {
	opcode uint32
	funct3 uint32
	funct7 uint32
}

var rEnc = map[Op]enc{
	ADD: {opcOp, 0, 0x00}, SUB: {opcOp, 0, 0x20},
	SLL: {opcOp, 1, 0x00}, SLT: {opcOp, 2, 0x00}, SLTU: {opcOp, 3, 0x00},
	XOR: {opcOp, 4, 0x00}, SRL: {opcOp, 5, 0x00}, SRA: {opcOp, 5, 0x20},
	OR: {opcOp, 6, 0x00}, AND: {opcOp, 7, 0x00},
	MUL: {opcOp, 0, 0x01}, MULH: {opcOp, 1, 0x01}, MULHSU: {opcOp, 2, 0x01},
	MULHU: {opcOp, 3, 0x01}, DIV: {opcOp, 4, 0x01}, DIVU: {opcOp, 5, 0x01},
	REM: {opcOp, 6, 0x01}, REMU: {opcOp, 7, 0x01},
}

var iEnc = map[Op]enc{
	ADDI: {opcOpImm, 0, 0}, SLTI: {opcOpImm, 2, 0}, SLTIU: {opcOpImm, 3, 0},
	XORI: {opcOpImm, 4, 0}, ORI: {opcOpImm, 6, 0}, ANDI: {opcOpImm, 7, 0},
	JALR: {opcJALR, 0, 0},
	LB:   {opcLoad, 0, 0}, LH: {opcLoad, 1, 0}, LW: {opcLoad, 2, 0},
	LBU: {opcLoad, 4, 0}, LHU: {opcLoad, 5, 0},
	FLW: {opcFLW, 2, 0},
}

var branchEnc = map[Op]uint32{
	BEQ: 0, BNE: 1, BLT: 4, BGE: 5, BLTU: 6, BGEU: 7,
}

// fpEnc maps FP R-type ops to (funct7, rm-or-funct3, rs2-override).
var fpEnc = map[Op]struct {
	funct7 uint32
	rm     uint32
	rs2    int32 // -1: use Inst.Rs2
}{
	FADDS:   {0x00, 0, -1},
	FSUBS:   {0x04, 0, -1},
	FMULS:   {0x08, 0, -1},
	FDIVS:   {0x0c, 0, -1},
	FSGNJS:  {0x10, 0, -1},
	FSGNJNS: {0x10, 1, -1},
	FSGNJXS: {0x10, 2, -1},
	FMINS:   {0x14, 0, -1},
	FMAXS:   {0x14, 1, -1},
	FCVTWS:  {0x60, 0, 0},
	FCVTWUS: {0x60, 0, 1},
	FMVXW:   {0x70, 0, 0},
	FCLASSS: {0x70, 1, 0},
	FEQS:    {0x50, 2, -1},
	FLTS:    {0x50, 1, -1},
	FLES:    {0x50, 0, -1},
	FCVTSW:  {0x68, 0, 0},
	FCVTSWU: {0x68, 0, 1},
	FMVWX:   {0x78, 0, 0},
}

// Encode renders the instruction as its RV32 binary word.
func Encode(i Inst) (uint32, error) {
	rd, rs1, rs2 := uint32(i.Rd), uint32(i.Rs1), uint32(i.Rs2)
	imm := uint32(i.Imm)
	switch {
	case i.Op == LUI:
		return imm&0xfffff000 | rd<<7 | opcLUI, nil
	case i.Op == AUIPC:
		return imm&0xfffff000 | rd<<7 | opcAUIPC, nil
	case i.Op == JAL:
		if i.Imm%2 != 0 || i.Imm < -(1<<20) || i.Imm >= 1<<20 {
			return 0, fmt.Errorf("jal offset %d out of range", i.Imm)
		}
		v := imm>>20&1<<31 | imm>>1&0x3ff<<21 | imm>>11&1<<20 | imm>>12&0xff<<12
		return v | rd<<7 | opcJAL, nil
	case branchEnc[i.Op] != 0 || i.Op == BEQ:
		if _, ok := branchEnc[i.Op]; !ok {
			break
		}
		if i.Imm%2 != 0 || i.Imm < -(1<<12) || i.Imm >= 1<<12 {
			return 0, fmt.Errorf("branch offset %d out of range", i.Imm)
		}
		f3 := branchEnc[i.Op]
		v := imm>>12&1<<31 | imm>>5&0x3f<<25 | imm>>1&0xf<<8 | imm>>11&1<<7
		return v | rs2<<20 | rs1<<15 | f3<<12 | opcBranch, nil
	case i.Op == SB || i.Op == SH || i.Op == SW || i.Op == FSW:
		if i.Imm < -2048 || i.Imm > 2047 {
			return 0, fmt.Errorf("store offset %d out of range", i.Imm)
		}
		f3 := map[Op]uint32{SB: 0, SH: 1, SW: 2, FSW: 2}[i.Op]
		opc := uint32(opcStore)
		if i.Op == FSW {
			opc = opcFSW
		}
		return imm>>5&0x7f<<25 | rs2<<20 | rs1<<15 | f3<<12 | imm&0x1f<<7 | opc, nil
	case i.Op == SLLI || i.Op == SRLI || i.Op == SRAI:
		if i.Imm < 0 || i.Imm > 31 {
			return 0, fmt.Errorf("shift amount %d out of range", i.Imm)
		}
		f3 := uint32(1)
		f7 := uint32(0)
		if i.Op != SLLI {
			f3 = 5
		}
		if i.Op == SRAI {
			f7 = 0x20
		}
		return f7<<25 | imm&0x1f<<20 | rs1<<15 | f3<<12 | rd<<7 | opcOpImm, nil
	case i.Op == ECALL:
		return opcSystem, nil
	case i.Op == EBREAK:
		return 1<<20 | opcSystem, nil
	case i.Op == CSRRW || i.Op == CSRRS || i.Op == CSRRC:
		f3 := map[Op]uint32{CSRRW: 1, CSRRS: 2, CSRRC: 3}[i.Op]
		return imm&0xfff<<20 | rs1<<15 | f3<<12 | rd<<7 | opcSystem, nil
	}
	if e, ok := rEnc[i.Op]; ok {
		return e.funct7<<25 | rs2<<20 | rs1<<15 | e.funct3<<12 | rd<<7 | e.opcode, nil
	}
	if e, ok := iEnc[i.Op]; ok {
		if i.Imm < -2048 || i.Imm > 2047 {
			return 0, fmt.Errorf("%v immediate %d out of range", i.Op, i.Imm)
		}
		return imm&0xfff<<20 | rs1<<15 | e.funct3<<12 | rd<<7 | e.opcode, nil
	}
	if e, ok := fpEnc[i.Op]; ok {
		r2 := rs2
		if e.rs2 >= 0 {
			r2 = uint32(e.rs2)
		}
		return e.funct7<<25 | r2<<20 | rs1<<15 | e.rm<<12 | rd<<7 | opcOpFP, nil
	}
	return 0, fmt.Errorf("cannot encode %v", i.Op)
}

// Decode parses an RV32 binary word.
func Decode(w uint32) (Inst, error) {
	opc := w & 0x7f
	rd := Reg(w >> 7 & 0x1f)
	f3 := w >> 12 & 7
	rs1 := Reg(w >> 15 & 0x1f)
	rs2 := Reg(w >> 20 & 0x1f)
	f7 := w >> 25

	immI := int32(w) >> 20
	immS := int32(w)>>25<<5 | int32(w>>7&0x1f)
	immB := int32(w)>>31<<12 | int32(w>>7&1)<<11 | int32(w>>25&0x3f)<<5 | int32(w>>8&0xf)<<1
	immU := int32(w & 0xfffff000)
	immJ := int32(w)>>31<<20 | int32(w>>12&0xff)<<12 | int32(w>>20&1)<<11 | int32(w>>21&0x3ff)<<1

	switch opc {
	case opcLUI:
		return Inst{Op: LUI, Rd: rd, Imm: immU}, nil
	case opcAUIPC:
		return Inst{Op: AUIPC, Rd: rd, Imm: immU}, nil
	case opcJAL:
		return Inst{Op: JAL, Rd: rd, Imm: immJ}, nil
	case opcJALR:
		return Inst{Op: JALR, Rd: rd, Rs1: rs1, Imm: immI}, nil
	case opcBranch:
		for op, bf3 := range branchEnc {
			if bf3 == f3 {
				return Inst{Op: op, Rs1: rs1, Rs2: rs2, Imm: immB}, nil
			}
		}
	case opcLoad:
		ops := map[uint32]Op{0: LB, 1: LH, 2: LW, 4: LBU, 5: LHU}
		if op, ok := ops[f3]; ok {
			return Inst{Op: op, Rd: rd, Rs1: rs1, Imm: immI}, nil
		}
	case opcFLW:
		if f3 == 2 {
			return Inst{Op: FLW, Rd: rd, Rs1: rs1, Imm: immI}, nil
		}
	case opcStore:
		ops := map[uint32]Op{0: SB, 1: SH, 2: SW}
		if op, ok := ops[f3]; ok {
			return Inst{Op: op, Rs1: rs1, Rs2: rs2, Imm: immS}, nil
		}
	case opcFSW:
		if f3 == 2 {
			return Inst{Op: FSW, Rs1: rs1, Rs2: rs2, Imm: immS}, nil
		}
	case opcOpImm:
		switch f3 {
		case 0:
			return Inst{Op: ADDI, Rd: rd, Rs1: rs1, Imm: immI}, nil
		case 1:
			return Inst{Op: SLLI, Rd: rd, Rs1: rs1, Imm: int32(rs2)}, nil
		case 2:
			return Inst{Op: SLTI, Rd: rd, Rs1: rs1, Imm: immI}, nil
		case 3:
			return Inst{Op: SLTIU, Rd: rd, Rs1: rs1, Imm: immI}, nil
		case 4:
			return Inst{Op: XORI, Rd: rd, Rs1: rs1, Imm: immI}, nil
		case 5:
			if f7 == 0x20 {
				return Inst{Op: SRAI, Rd: rd, Rs1: rs1, Imm: int32(rs2)}, nil
			}
			return Inst{Op: SRLI, Rd: rd, Rs1: rs1, Imm: int32(rs2)}, nil
		case 6:
			return Inst{Op: ORI, Rd: rd, Rs1: rs1, Imm: immI}, nil
		case 7:
			return Inst{Op: ANDI, Rd: rd, Rs1: rs1, Imm: immI}, nil
		}
	case opcOp:
		for op, e := range rEnc {
			if e.funct3 == f3 && e.funct7 == f7 {
				return Inst{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2}, nil
			}
		}
	case opcSystem:
		switch {
		case w == opcSystem:
			return Inst{Op: ECALL}, nil
		case w == 1<<20|opcSystem:
			return Inst{Op: EBREAK}, nil
		case f3 >= 1 && f3 <= 3:
			op := []Op{CSRRW, CSRRS, CSRRC}[f3-1]
			return Inst{Op: op, Rd: rd, Rs1: rs1, Imm: int32(w >> 20)}, nil
		}
	case opcOpFP:
		for op, e := range fpEnc {
			if e.funct7 != f7 {
				continue
			}
			switch f7 {
			case 0x10, 0x14, 0x50, 0x70:
				if e.rm != f3 {
					continue
				}
			case 0x60, 0x68, 0x70 | 0x100: // rs2-discriminated
			}
			if e.rs2 >= 0 {
				if uint32(e.rs2) != uint32(rs2) {
					continue
				}
				// The rs2 field is an encoding discriminator here, not a
				// register operand.
				return Inst{Op: op, Rd: rd, Rs1: rs1}, nil
			}
			return Inst{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2}, nil
		}
	}
	return Inst{}, fmt.Errorf("cannot decode %#08x", w)
}
