package isa

import (
	"fmt"
	"sort"
	"strings"
)

// DefaultBase is where assembled code is placed.
const DefaultBase uint32 = 0x1000

// DefaultDataBase is where the data segment is placed.
const DefaultDataBase uint32 = 0x40000

// Image is an assembled program ready to load into the CPU.
type Image struct {
	Base   uint32
	Words  []uint32 // encoded instructions
	Insts  []Inst   // decoded mirror (for disassembly and profiling)
	Labels map[string]uint32

	DataBase uint32
	Data     []byte
}

// Asm is an assembler with labels, forward references, a data segment,
// and the standard pseudo-instructions.
type Asm struct {
	insts  []Inst
	labels map[string]int
	fixups []fixup

	data       []byte
	dataLabels map[string]uint32

	base     uint32
	dataBase uint32
	errs     []error
}

type fixupKind int

const (
	fixBranch fixupKind = iota
	fixJal
	fixLaLui // LUI part of LA (absolute address of data label)
	fixLaLo  // ADDI part of LA
)

type fixup struct {
	index int
	label string
	kind  fixupKind
}

// NewAsm creates an assembler with the default memory layout.
func NewAsm() *Asm {
	return &Asm{
		labels:     make(map[string]int),
		dataLabels: make(map[string]uint32),
		base:       DefaultBase,
		dataBase:   DefaultDataBase,
	}
}

func (a *Asm) errf(format string, args ...any) {
	a.errs = append(a.errs, fmt.Errorf(format, args...))
}

func (a *Asm) emit(i Inst) { a.insts = append(a.insts, i) }

// Label defines a code label at the current position.
func (a *Asm) Label(name string) {
	if _, dup := a.labels[name]; dup {
		a.errf("duplicate label %q", name)
	}
	a.labels[name] = len(a.insts)
}

// PC returns the address the next emitted instruction will have.
func (a *Asm) PC() uint32 { return a.base + 4*uint32(len(a.insts)) }

// SetDataBase relocates the data segment (before any data is added);
// instrumentation blobs use it to pool their constants away from the
// host application's data.
func (a *Asm) SetDataBase(addr uint32) { a.dataBase = addr }

// DataLen reports the current data-segment size in bytes.
func (a *Asm) DataLen() int { return len(a.data) }

// --- data segment ---

// Word appends 32-bit little-endian values to the data segment, defining
// a data label at their start.
func (a *Asm) Word(label string, values ...uint32) {
	a.align(4)
	a.dataLabels[label] = a.dataBase + uint32(len(a.data))
	for _, v := range values {
		a.data = append(a.data, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
}

// Bytes appends raw bytes to the data segment under a label.
func (a *Asm) Bytes(label string, b []byte) {
	a.dataLabels[label] = a.dataBase + uint32(len(a.data))
	a.data = append(a.data, b...)
}

// Space reserves n zero bytes under a label.
func (a *Asm) Space(label string, n int) {
	a.align(4)
	a.dataLabels[label] = a.dataBase + uint32(len(a.data))
	a.data = append(a.data, make([]byte, n)...)
}

func (a *Asm) align(n int) {
	for len(a.data)%n != 0 {
		a.data = append(a.data, 0)
	}
}

// --- R-type ---

func (a *Asm) r(op Op, rd, rs1, rs2 Reg) { a.emit(Inst{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2}) }

// R emits an arbitrary R-type instruction; for callers that select the
// opcode programmatically (e.g. generated test cases).
func (a *Asm) R(op Op, rd, rs1, rs2 Reg) { a.r(op, rd, rs1, rs2) }

// Add emits add rd, rs1, rs2; the other R-type helpers follow suit.
func (a *Asm) Add(rd, rs1, rs2 Reg)    { a.r(ADD, rd, rs1, rs2) }
func (a *Asm) Sub(rd, rs1, rs2 Reg)    { a.r(SUB, rd, rs1, rs2) }
func (a *Asm) Sll(rd, rs1, rs2 Reg)    { a.r(SLL, rd, rs1, rs2) }
func (a *Asm) Slt(rd, rs1, rs2 Reg)    { a.r(SLT, rd, rs1, rs2) }
func (a *Asm) Sltu(rd, rs1, rs2 Reg)   { a.r(SLTU, rd, rs1, rs2) }
func (a *Asm) Xor(rd, rs1, rs2 Reg)    { a.r(XOR, rd, rs1, rs2) }
func (a *Asm) Srl(rd, rs1, rs2 Reg)    { a.r(SRL, rd, rs1, rs2) }
func (a *Asm) Sra(rd, rs1, rs2 Reg)    { a.r(SRA, rd, rs1, rs2) }
func (a *Asm) Or(rd, rs1, rs2 Reg)     { a.r(OR, rd, rs1, rs2) }
func (a *Asm) And(rd, rs1, rs2 Reg)    { a.r(AND, rd, rs1, rs2) }
func (a *Asm) Mul(rd, rs1, rs2 Reg)    { a.r(MUL, rd, rs1, rs2) }
func (a *Asm) Mulh(rd, rs1, rs2 Reg)   { a.r(MULH, rd, rs1, rs2) }
func (a *Asm) Mulhsu(rd, rs1, rs2 Reg) { a.r(MULHSU, rd, rs1, rs2) }
func (a *Asm) Mulhu(rd, rs1, rs2 Reg)  { a.r(MULHU, rd, rs1, rs2) }
func (a *Asm) Div(rd, rs1, rs2 Reg)    { a.r(DIV, rd, rs1, rs2) }
func (a *Asm) Divu(rd, rs1, rs2 Reg)   { a.r(DIVU, rd, rs1, rs2) }
func (a *Asm) Rem(rd, rs1, rs2 Reg)    { a.r(REM, rd, rs1, rs2) }
func (a *Asm) Remu(rd, rs1, rs2 Reg)   { a.r(REMU, rd, rs1, rs2) }

// --- I-type ---

func (a *Asm) i(op Op, rd, rs1 Reg, imm int32) { a.emit(Inst{Op: op, Rd: rd, Rs1: rs1, Imm: imm}) }

// Addi emits addi rd, rs1, imm; the other I-type helpers follow suit.
func (a *Asm) Addi(rd, rs1 Reg, imm int32)  { a.i(ADDI, rd, rs1, imm) }
func (a *Asm) Slti(rd, rs1 Reg, imm int32)  { a.i(SLTI, rd, rs1, imm) }
func (a *Asm) Sltiu(rd, rs1 Reg, imm int32) { a.i(SLTIU, rd, rs1, imm) }
func (a *Asm) Xori(rd, rs1 Reg, imm int32)  { a.i(XORI, rd, rs1, imm) }
func (a *Asm) Ori(rd, rs1 Reg, imm int32)   { a.i(ORI, rd, rs1, imm) }
func (a *Asm) Andi(rd, rs1 Reg, imm int32)  { a.i(ANDI, rd, rs1, imm) }
func (a *Asm) Slli(rd, rs1 Reg, sh int32)   { a.i(SLLI, rd, rs1, sh) }
func (a *Asm) Srli(rd, rs1 Reg, sh int32)   { a.i(SRLI, rd, rs1, sh) }
func (a *Asm) Srai(rd, rs1 Reg, sh int32)   { a.i(SRAI, rd, rs1, sh) }
func (a *Asm) Jalr(rd, rs1 Reg, imm int32)  { a.i(JALR, rd, rs1, imm) }

// Loads: rd, offset(rs1).
func (a *Asm) Lb(rd Reg, off int32, rs1 Reg)  { a.i(LB, rd, rs1, off) }
func (a *Asm) Lh(rd Reg, off int32, rs1 Reg)  { a.i(LH, rd, rs1, off) }
func (a *Asm) Lw(rd Reg, off int32, rs1 Reg)  { a.i(LW, rd, rs1, off) }
func (a *Asm) Lbu(rd Reg, off int32, rs1 Reg) { a.i(LBU, rd, rs1, off) }
func (a *Asm) Lhu(rd Reg, off int32, rs1 Reg) { a.i(LHU, rd, rs1, off) }
func (a *Asm) Flw(rd Reg, off int32, rs1 Reg) { a.i(FLW, rd, rs1, off) }

// Stores: rs2, offset(rs1).
func (a *Asm) Sb(rs2 Reg, off int32, rs1 Reg)  { a.emit(Inst{Op: SB, Rs1: rs1, Rs2: rs2, Imm: off}) }
func (a *Asm) Sh(rs2 Reg, off int32, rs1 Reg)  { a.emit(Inst{Op: SH, Rs1: rs1, Rs2: rs2, Imm: off}) }
func (a *Asm) Sw(rs2 Reg, off int32, rs1 Reg)  { a.emit(Inst{Op: SW, Rs1: rs1, Rs2: rs2, Imm: off}) }
func (a *Asm) Fsw(rs2 Reg, off int32, rs1 Reg) { a.emit(Inst{Op: FSW, Rs1: rs1, Rs2: rs2, Imm: off}) }

// --- U/J/B types ---

// Lui emits lui rd, imm (imm is the full 32-bit value whose low 12 bits
// are zero).
func (a *Asm) Lui(rd Reg, imm uint32) { a.emit(Inst{Op: LUI, Rd: rd, Imm: int32(imm)}) }

// Auipc emits auipc rd, imm.
func (a *Asm) Auipc(rd Reg, imm uint32) { a.emit(Inst{Op: AUIPC, Rd: rd, Imm: int32(imm)}) }

// Jal emits jal rd, label.
func (a *Asm) Jal(rd Reg, label string) {
	a.fixups = append(a.fixups, fixup{len(a.insts), label, fixJal})
	a.emit(Inst{Op: JAL, Rd: rd})
}

func (a *Asm) branch(op Op, rs1, rs2 Reg, label string) {
	a.fixups = append(a.fixups, fixup{len(a.insts), label, fixBranch})
	a.emit(Inst{Op: op, Rs1: rs1, Rs2: rs2})
}

// Beq emits beq rs1, rs2, label; the other branches follow suit.
func (a *Asm) Beq(rs1, rs2 Reg, label string)  { a.branch(BEQ, rs1, rs2, label) }
func (a *Asm) Bne(rs1, rs2 Reg, label string)  { a.branch(BNE, rs1, rs2, label) }
func (a *Asm) Blt(rs1, rs2 Reg, label string)  { a.branch(BLT, rs1, rs2, label) }
func (a *Asm) Bge(rs1, rs2 Reg, label string)  { a.branch(BGE, rs1, rs2, label) }
func (a *Asm) Bltu(rs1, rs2 Reg, label string) { a.branch(BLTU, rs1, rs2, label) }
func (a *Asm) Bgeu(rs1, rs2 Reg, label string) { a.branch(BGEU, rs1, rs2, label) }

// --- system ---

// Ecall emits ecall (program exit with code in a0, by this repo's ABI).
func (a *Asm) Ecall() { a.emit(Inst{Op: ECALL}) }

// Ebreak emits ebreak (test-case failure trap, by this repo's ABI).
func (a *Asm) Ebreak() { a.emit(Inst{Op: EBREAK}) }

// Csrrw/Csrrs/Csrrc emit CSR accesses; csr is the CSR address.
func (a *Asm) Csrrw(rd Reg, csr int32, rs1 Reg) { a.i(CSRRW, rd, rs1, csr) }
func (a *Asm) Csrrs(rd Reg, csr int32, rs1 Reg) { a.i(CSRRS, rd, rs1, csr) }
func (a *Asm) Csrrc(rd Reg, csr int32, rs1 Reg) { a.i(CSRRC, rd, rs1, csr) }

// --- floating point (register indices are f-registers) ---

// Fadd emits fadd.s rd, rs1, rs2; the other FP helpers follow suit.
func (a *Asm) Fadd(rd, rs1, rs2 Reg)   { a.r(FADDS, rd, rs1, rs2) }
func (a *Asm) Fsub(rd, rs1, rs2 Reg)   { a.r(FSUBS, rd, rs1, rs2) }
func (a *Asm) Fmul(rd, rs1, rs2 Reg)   { a.r(FMULS, rd, rs1, rs2) }
func (a *Asm) Fdiv(rd, rs1, rs2 Reg)   { a.r(FDIVS, rd, rs1, rs2) }
func (a *Asm) Fmin(rd, rs1, rs2 Reg)   { a.r(FMINS, rd, rs1, rs2) }
func (a *Asm) Fmax(rd, rs1, rs2 Reg)   { a.r(FMAXS, rd, rs1, rs2) }
func (a *Asm) Fsgnj(rd, rs1, rs2 Reg)  { a.r(FSGNJS, rd, rs1, rs2) }
func (a *Asm) Fsgnjn(rd, rs1, rs2 Reg) { a.r(FSGNJNS, rd, rs1, rs2) }
func (a *Asm) Fsgnjx(rd, rs1, rs2 Reg) { a.r(FSGNJXS, rd, rs1, rs2) }
func (a *Asm) Feq(rd, rs1, rs2 Reg)    { a.r(FEQS, rd, rs1, rs2) }
func (a *Asm) Flt(rd, rs1, rs2 Reg)    { a.r(FLTS, rd, rs1, rs2) }
func (a *Asm) Fle(rd, rs1, rs2 Reg)    { a.r(FLES, rd, rs1, rs2) }
func (a *Asm) Fclass(rd, rs1 Reg)      { a.r(FCLASSS, rd, rs1, 0) }
func (a *Asm) FmvXW(rd, rs1 Reg)       { a.r(FMVXW, rd, rs1, 0) }
func (a *Asm) FmvWX(rd, rs1 Reg)       { a.r(FMVWX, rd, rs1, 0) }
func (a *Asm) FcvtWS(rd, rs1 Reg)      { a.r(FCVTWS, rd, rs1, 0) }
func (a *Asm) FcvtWUS(rd, rs1 Reg)     { a.r(FCVTWUS, rd, rs1, 0) }
func (a *Asm) FcvtSW(rd, rs1 Reg)      { a.r(FCVTSW, rd, rs1, 0) }
func (a *Asm) FcvtSWU(rd, rs1 Reg)     { a.r(FCVTSWU, rd, rs1, 0) }

// --- pseudo-instructions ---

// Li loads a 32-bit constant with LUI+ADDI (or a single ADDI when it
// fits).
func (a *Asm) Li(rd Reg, v uint32) {
	lo := int32(v<<20) >> 20 // sign-extended low 12 bits
	hi := v - uint32(lo)
	if hi == 0 {
		a.Addi(rd, Zero, lo)
		return
	}
	a.Lui(rd, hi)
	if lo != 0 {
		a.Addi(rd, rd, lo)
	}
}

// La loads the address of a data label.
func (a *Asm) La(rd Reg, dataLabel string) {
	a.fixups = append(a.fixups, fixup{len(a.insts), dataLabel, fixLaLui})
	a.emit(Inst{Op: LUI, Rd: rd})
	a.fixups = append(a.fixups, fixup{len(a.insts), dataLabel, fixLaLo})
	a.emit(Inst{Op: ADDI, Rd: rd, Rs1: rd})
}

// LwGlobal loads the 32-bit word at a data label using LUI + a load
// with the low offset folded into the LW immediate. Unlike La+Lw, the
// sequence performs no ALU addition at all (address generation happens
// in the load unit), so a faulty ALU cannot corrupt the reference value
// or its address.
func (a *Asm) LwGlobal(rd Reg, dataLabel string) {
	a.fixups = append(a.fixups, fixup{len(a.insts), dataLabel, fixLaLui})
	a.emit(Inst{Op: LUI, Rd: rd})
	a.fixups = append(a.fixups, fixup{len(a.insts), dataLabel, fixLaLo})
	a.emit(Inst{Op: LW, Rd: rd, Rs1: rd})
}

// Mv copies a register.
func (a *Asm) Mv(rd, rs Reg) { a.Addi(rd, rs, 0) }

// Nop emits addi x0, x0, 0.
func (a *Asm) Nop() { a.Addi(Zero, Zero, 0) }

// J jumps unconditionally to a label.
func (a *Asm) J(label string) { a.Jal(Zero, label) }

// Call jumps to a label, saving the return address in ra.
func (a *Asm) Call(label string) { a.Jal(RA, label) }

// Ret returns via ra.
func (a *Asm) Ret() { a.Jalr(Zero, RA, 0) }

// Beqz/Bnez branch against zero.
func (a *Asm) Beqz(rs Reg, label string) { a.Beq(rs, Zero, label) }
func (a *Asm) Bnez(rs Reg, label string) { a.Bne(rs, Zero, label) }

// FliBits loads raw float bits into an f-register through a temp integer
// register.
func (a *Asm) FliBits(fd Reg, bits uint32, tmp Reg) {
	a.Li(tmp, bits)
	a.FmvWX(fd, tmp)
}

// Assemble resolves labels and encodes the program.
func (a *Asm) Assemble() (*Image, error) {
	for _, f := range a.fixups {
		switch f.kind {
		case fixBranch, fixJal:
			target, ok := a.labels[f.label]
			if !ok {
				a.errf("undefined label %q", f.label)
				continue
			}
			a.insts[f.index].Imm = int32(4 * (target - f.index))
		case fixLaLui, fixLaLo:
			addr, ok := a.dataLabels[f.label]
			if !ok {
				a.errf("undefined data label %q", f.label)
				continue
			}
			lo := int32(addr<<20) >> 20
			if f.kind == fixLaLui {
				a.insts[f.index].Imm = int32(addr - uint32(lo))
			} else {
				a.insts[f.index].Imm = lo
			}
		}
	}
	if len(a.errs) > 0 {
		return nil, a.errs[0]
	}
	img := &Image{
		Base:     a.base,
		Insts:    append([]Inst(nil), a.insts...),
		Labels:   make(map[string]uint32, len(a.labels)),
		DataBase: a.dataBase,
		Data:     append([]byte(nil), a.data...),
	}
	for name, idx := range a.labels {
		img.Labels[name] = a.base + 4*uint32(idx)
	}
	for name, addr := range a.dataLabels {
		img.Labels[name] = addr
	}
	img.Words = make([]uint32, len(a.insts))
	for i, inst := range a.insts {
		w, err := Encode(inst)
		if err != nil {
			return nil, fmt.Errorf("inst %d (%v): %w", i, inst, err)
		}
		img.Words[i] = w
	}
	return img, nil
}

// Disassemble renders the image as an address-annotated listing.
func (img *Image) Disassemble() string {
	var b strings.Builder
	byAddr := make(map[uint32][]string)
	for name, addr := range img.Labels {
		if addr >= img.Base && addr < img.Base+4*uint32(len(img.Insts)) {
			byAddr[addr] = append(byAddr[addr], name)
		}
	}
	for i, inst := range img.Insts {
		addr := img.Base + 4*uint32(i)
		names := byAddr[addr]
		sort.Strings(names)
		for _, n := range names {
			fmt.Fprintf(&b, "%s:\n", n)
		}
		fmt.Fprintf(&b, "  %06x:  %08x  %s\n", addr, img.Words[i], inst)
	}
	return b.String()
}
