package isa

import (
	"math/rand"
	"strings"
	"testing"
)

func TestKnownEncodings(t *testing.T) {
	cases := []struct {
		inst Inst
		want uint32
	}{
		{Inst{Op: ADDI, Rd: 1, Rs1: 0, Imm: 5}, 0x00500093},
		{Inst{Op: ADD, Rd: 3, Rs1: 1, Rs2: 2}, 0x002081b3},
		{Inst{Op: LUI, Rd: 5, Imm: 0x12345000}, 0x123452b7},
		{Inst{Op: ECALL}, 0x00000073},
		{Inst{Op: EBREAK}, 0x00100073},
		{Inst{Op: LW, Rd: 6, Rs1: 2, Imm: 16}, 0x01012303},
		{Inst{Op: SW, Rs1: 2, Rs2: 7, Imm: 20}, 0x00712a23},
		{Inst{Op: BEQ, Rs1: 1, Rs2: 2, Imm: 8}, 0x00208463},
		{Inst{Op: JAL, Rd: 1, Imm: 16}, 0x010000ef},
		{Inst{Op: SRAI, Rd: 4, Rs1: 4, Imm: 3}, 0x40325213},
		{Inst{Op: MUL, Rd: 10, Rs1: 11, Rs2: 12}, 0x02c58533},
		{Inst{Op: FADDS, Rd: 1, Rs1: 2, Rs2: 3}, 0x003100d3},
	}
	for _, c := range cases {
		got, err := Encode(c.inst)
		if err != nil {
			t.Fatalf("Encode(%v): %v", c.inst, err)
		}
		if got != c.want {
			t.Errorf("Encode(%v) = %#08x, want %#08x", c.inst, got, c.want)
		}
	}
}

// randInst generates a random valid instruction of each class.
func randInst(rng *rand.Rand) Inst {
	reg := func() Reg { return Reg(rng.Intn(32)) }
	imm12 := func() int32 { return int32(rng.Intn(4096) - 2048) }
	switch rng.Intn(10) {
	case 0:
		ops := []Op{ADD, SUB, SLL, SLT, SLTU, XOR, SRL, SRA, OR, AND,
			MUL, MULH, MULHSU, MULHU, DIV, DIVU, REM, REMU}
		return Inst{Op: ops[rng.Intn(len(ops))], Rd: reg(), Rs1: reg(), Rs2: reg()}
	case 1:
		ops := []Op{ADDI, SLTI, SLTIU, XORI, ORI, ANDI, JALR}
		return Inst{Op: ops[rng.Intn(len(ops))], Rd: reg(), Rs1: reg(), Imm: imm12()}
	case 2:
		ops := []Op{SLLI, SRLI, SRAI}
		return Inst{Op: ops[rng.Intn(len(ops))], Rd: reg(), Rs1: reg(), Imm: int32(rng.Intn(32))}
	case 3:
		ops := []Op{LB, LH, LW, LBU, LHU, FLW}
		return Inst{Op: ops[rng.Intn(len(ops))], Rd: reg(), Rs1: reg(), Imm: imm12()}
	case 4:
		ops := []Op{SB, SH, SW, FSW}
		return Inst{Op: ops[rng.Intn(len(ops))], Rs1: reg(), Rs2: reg(), Imm: imm12()}
	case 5:
		ops := []Op{BEQ, BNE, BLT, BGE, BLTU, BGEU}
		return Inst{Op: ops[rng.Intn(len(ops))], Rs1: reg(), Rs2: reg(),
			Imm: int32(rng.Intn(2048)-1024) * 2}
	case 6:
		return Inst{Op: []Op{LUI, AUIPC}[rng.Intn(2)], Rd: reg(),
			Imm: int32(rng.Uint32() & 0xfffff000)}
	case 7:
		return Inst{Op: JAL, Rd: reg(), Imm: int32(rng.Intn(1<<19)-(1<<18)) * 2}
	case 8:
		ops := []Op{FADDS, FSUBS, FMULS, FDIVS, FSGNJS, FSGNJNS, FSGNJXS,
			FMINS, FMAXS, FEQS, FLTS, FLES}
		return Inst{Op: ops[rng.Intn(len(ops))], Rd: reg(), Rs1: reg(), Rs2: reg()}
	default:
		ops := []Op{FCVTWS, FCVTWUS, FMVXW, FCLASSS, FCVTSW, FCVTSWU, FMVWX}
		return Inst{Op: ops[rng.Intn(len(ops))], Rd: reg(), Rs1: reg()}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 5000; i++ {
		inst := randInst(rng)
		w, err := Encode(inst)
		if err != nil {
			t.Fatalf("Encode(%v): %v", inst, err)
		}
		got, err := Decode(w)
		if err != nil {
			t.Fatalf("Decode(%#08x) [%v]: %v", w, inst, err)
		}
		// Normalize: R-type decode never sets Imm; stores don't set Rd.
		if got != inst {
			t.Fatalf("roundtrip %v -> %#08x -> %v", inst, w, got)
		}
	}
}

func TestCSRRoundTrip(t *testing.T) {
	for _, op := range []Op{CSRRW, CSRRS, CSRRC} {
		inst := Inst{Op: op, Rd: 10, Rs1: 5, Imm: CSRFflags}
		w, err := Encode(inst)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Decode(w)
		if err != nil || got != inst {
			t.Fatalf("CSR roundtrip: %v -> %v (%v)", inst, got, err)
		}
	}
}

func TestOutOfRangeImmediatesRejected(t *testing.T) {
	bad := []Inst{
		{Op: ADDI, Rd: 1, Imm: 5000},
		{Op: SW, Rs1: 1, Rs2: 2, Imm: -3000},
		{Op: SLLI, Rd: 1, Imm: 40},
		{Op: BEQ, Imm: 3},       // odd offset
		{Op: BEQ, Imm: 1 << 13}, // too far
		{Op: JAL, Imm: 1 << 21},
	}
	for _, i := range bad {
		if _, err := Encode(i); err == nil {
			t.Errorf("Encode(%v) should fail", i)
		}
	}
}

func mustAsm(t testing.TB, a *Asm) *Image {
	t.Helper()
	img, err := a.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	return img
}

func TestAssembleLabels(t *testing.T) {
	a := NewAsm()
	a.Li(T0, 0)
	a.Label("loop")
	a.Addi(T0, T0, 1)
	a.Li(T1, 10)
	a.Bne(T0, T1, "loop")
	a.Ecall()
	img := mustAsm(t, a)
	if len(img.Words) != 5 {
		t.Fatalf("got %d words", len(img.Words))
	}
	// The branch at index 3 must target index 1: offset -8.
	if img.Insts[3].Imm != -8 {
		t.Errorf("branch offset = %d, want -8", img.Insts[3].Imm)
	}
	if img.Labels["loop"] != img.Base+4 {
		t.Errorf("label addr = %#x", img.Labels["loop"])
	}
}

func TestAssembleDataAndLa(t *testing.T) {
	a := NewAsm()
	a.Word("tbl", 0xdeadbeef, 0x12345678)
	a.La(T0, "tbl")
	a.Lw(T1, 4, T0)
	a.Ecall()
	img := mustAsm(t, a)
	addr := img.Labels["tbl"]
	if addr != DefaultDataBase {
		t.Errorf("tbl at %#x", addr)
	}
	// LUI+ADDI must reconstruct the address.
	lui := img.Insts[0]
	addi := img.Insts[1]
	if got := uint32(lui.Imm) + uint32(addi.Imm); got != addr {
		t.Errorf("la reconstructs %#x, want %#x", got, addr)
	}
	if img.Data[0] != 0xef || img.Data[3] != 0xde {
		t.Error("data not little-endian")
	}
}

func TestLiVariants(t *testing.T) {
	cases := []uint32{0, 1, 2047, 2048, 0xfffff800, 0xffffffff, 0x12345678, 0x80000000, 0x800}
	for _, v := range cases {
		a := NewAsm()
		a.Li(T0, v)
		a.Ecall()
		img := mustAsm(t, a)
		// Emulate the 1-2 instruction sequence.
		var x uint32
		for _, inst := range img.Insts {
			switch inst.Op {
			case LUI:
				x = uint32(inst.Imm)
			case ADDI:
				x += uint32(inst.Imm)
			}
		}
		if x != v {
			t.Errorf("Li(%#x) loads %#x", v, x)
		}
	}
}

func TestUndefinedLabelFails(t *testing.T) {
	a := NewAsm()
	a.J("nowhere")
	if _, err := a.Assemble(); err == nil {
		t.Fatal("undefined label must fail")
	}
}

func TestInstString(t *testing.T) {
	if s := (Inst{Op: ADD, Rd: 3, Rs1: 1, Rs2: 2}).String(); s != "add gp, ra, sp" {
		t.Errorf("String = %q", s)
	}
	if s := (Inst{Op: LW, Rd: 6, Rs1: 2, Imm: 16}).String(); s != "lw t1, 16(sp)" {
		t.Errorf("String = %q", s)
	}
}

func TestDisassemble(t *testing.T) {
	a := NewAsm()
	a.Li(T0, 5)
	a.Label("loop")
	a.Addi(T0, T0, -1)
	a.Bnez(T0, "loop")
	a.Ecall()
	img := mustAsm(t, a)
	out := img.Disassemble()
	for _, want := range []string{"loop:", "addi t0, t0, -1", "ecall", "001000:"} {
		if !strings.Contains(out, want) {
			t.Errorf("disassembly missing %q:\n%s", want, out)
		}
	}
}
