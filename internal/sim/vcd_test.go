package sim

import (
	"strings"
	"testing"

	"repro/internal/demo"
)

func TestVCDExport(t *testing.T) {
	nl := demo.Adder2()
	s := New(nl)
	s.RecordPorts()
	s.SetInput("a", 1)
	s.SetInput("b", 3)
	s.Run(2)
	s.SetInput("a", 0)
	s.SetInput("b", 0)
	s.Run(2)
	vcd := s.VCD("1ns")
	for _, want := range []string{
		"$timescale 1ns $end", "$scope module adder $end",
		"$var wire 1", "a_0", "o_1", "$enddefinitions $end", "#0",
	} {
		if !strings.Contains(vcd, want) {
			t.Errorf("VCD missing %q:\n%s", want, vcd)
		}
	}
	// Initial values dumped at #0 for every recorded net.
	body := vcd[strings.Index(vcd, "#0"):]
	var initLines int
	for _, line := range strings.Split(body, "\n")[1:] {
		if strings.HasPrefix(line, "#") {
			break
		}
		if line != "" {
			initLines++
		}
	}
	if initLines < len(s.recordNets) {
		t.Errorf("initial dump has %d lines, want %d", initLines, len(s.recordNets))
	}
	// Value changes appear at later timestamps.
	if !strings.Contains(vcd, "#2") {
		t.Errorf("no change records:\n%s", vcd)
	}
}

func TestVCDIDsUnique(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 500; i++ {
		id := vcdID(i)
		if seen[id] {
			t.Fatalf("duplicate VCD id %q at %d", id, i)
		}
		seen[id] = true
	}
}
