package sim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cell"
	"repro/internal/demo"
	"repro/internal/netlist"
)

func TestAdderPipeline(t *testing.T) {
	nl := demo.Adder2()
	s := New(nl)
	// The adder is a 2-stage pipeline: inputs presented at cycle t appear
	// summed on o at cycle t+2.
	type vec struct{ a, b uint64 }
	seq := []vec{{1, 3}, {3, 0}, {3, 1}, {2, 2}, {0, 0}}
	var got []uint64
	for i := 0; i < len(seq)+2; i++ {
		if i < len(seq) {
			s.SetInput("a", seq[i].a)
			s.SetInput("b", seq[i].b)
		} else {
			s.SetInput("a", 0)
			s.SetInput("b", 0)
		}
		got = append(got, s.Output("o"))
		s.Step()
	}
	for i, v := range seq {
		want := (v.a + v.b) & 3
		if got[i+2] != want {
			t.Errorf("cycle %d: o = %d, want %d (a=%d b=%d)", i+2, got[i+2], want, v.a, v.b)
		}
	}
}

func TestAdderExhaustiveProperty(t *testing.T) {
	nl := demo.Adder2()
	s := New(nl)
	f := func(a, b uint8) bool {
		av, bv := uint64(a&3), uint64(b&3)
		s.Reset()
		s.SetInput("a", av)
		s.SetInput("b", bv)
		s.Step()
		s.Step()
		return s.Output("o") == (av+bv)&3
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSPProfileMatchesStimulus(t *testing.T) {
	nl := demo.Adder2()
	s := New(nl)
	s.EnableSP()
	// Drive a=3, b=3 forever: after the pipeline fills, aq/bq are all 1,
	// sum bits are 0 with carry 1.
	s.SetInput("a", 3)
	s.SetInput("b", 3)
	s.Run(1000)
	prof := s.Profile()
	sp := prof.CellSP(nl)
	get := func(name string) float64 { return sp[demo.CellIDByName(nl, name)] }
	// DFF$1 (aq0) is 1 from cycle 1 on: SP ~ 1.
	if v := get("DFF$1"); v < 0.99 {
		t.Errorf("DFF$1 SP = %v, want ~1", v)
	}
	// XOR$5 = aq0^bq0 = 0 once filled.
	if v := get("XOR$5"); v > 0.01 {
		t.Errorf("XOR$5 SP = %v, want ~0", v)
	}
	// AND$6 = carry = 1 once filled.
	if v := get("AND$6"); v < 0.99 {
		t.Errorf("AND$6 SP = %v, want ~1", v)
	}
	// Clock root SP is 0.5 (free-running).
	if v := prof.SP[nl.ClockRoot]; v != 0.5 {
		t.Errorf("clk SP = %v, want 0.5", v)
	}
}

func TestClockGatingHoldsState(t *testing.T) {
	b := netlist.NewBuilder("gated")
	clk := b.Clock("clk")
	en := b.Input("en")
	g := b.Add(cell.CLKGATE, clk, en)
	d := b.Input("d")
	q := b.AddDFF(d, g, false)
	b.Output("q", q)
	nl := b.MustBuild()
	s := New(nl)

	s.SetInput("en", 1)
	s.SetInput("d", 1)
	s.Step()
	if s.Output("q") != 1 {
		t.Fatal("enabled DFF did not capture")
	}
	s.SetInput("en", 0)
	s.SetInput("d", 0)
	s.Step()
	if s.Output("q") != 1 {
		t.Fatal("gated DFF lost state")
	}
	s.SetInput("en", 1)
	s.Step()
	if s.Output("q") != 0 {
		t.Fatal("re-enabled DFF did not capture")
	}
}

func TestGatedClockSPIsZeroWhenOff(t *testing.T) {
	b := netlist.NewBuilder("gated")
	clk := b.Clock("clk")
	en := b.Input("en")
	g := b.Add(cell.CLKGATE, clk, en)
	d := b.Input("d")
	q := b.AddDFF(d, g, false)
	b.Output("q", q)
	nl := b.MustBuild()
	s := New(nl)
	s.EnableSP()
	s.SetInput("en", 0)
	s.Run(100)
	if v := s.SP(g); v != 0 {
		t.Errorf("gated-off clock SP = %v, want 0", v)
	}
	// SP counters kept ticking (free-running counter clock): the enable
	// net itself was sampled for all 100 cycles.
	if s.Cycles() != 100 {
		t.Errorf("cycles = %d", s.Cycles())
	}
	s.SetInput("en", 1)
	s.Run(100)
	if v := s.SP(g); v < 0.24 || v > 0.26 {
		t.Errorf("half-enabled clock SP = %v, want ~0.25", v)
	}
}

func TestResetPreservesSPButClearsState(t *testing.T) {
	nl := demo.Adder2()
	s := New(nl)
	s.EnableSP()
	s.SetInput("a", 3)
	s.SetInput("b", 3)
	s.Run(10)
	s.Reset()
	if s.Cycles() != 0 {
		t.Error("Reset did not clear cycle count")
	}
	if s.Output("o") != 0 {
		t.Error("Reset did not clear DFF state")
	}
	s.ResetSP()
	s.Run(4)
	if v := s.SP(nl.ClockRoot); v != 0.5 {
		t.Errorf("clk SP after ResetSP = %v", v)
	}
}

func TestWaveformRecording(t *testing.T) {
	nl := demo.Adder2()
	out, _ := nl.FindOutput("o")
	s := New(nl)
	s.Record(out.Bits...)
	s.SetInput("a", 1)
	s.SetInput("b", 1)
	s.Run(3)
	w := s.Waves()
	if len(w) != 3 || len(w[0]) != 2 {
		t.Fatalf("waveform shape %dx%d", len(w), len(w[0]))
	}
	// Cycle 2 should show o = 2 (1+1).
	if w[2][1] != true || w[2][0] != false {
		t.Errorf("cycle-2 waveform = %v, want o=2", w[2])
	}
}

func TestRandomizedAdderAgainstGolden(t *testing.T) {
	nl := demo.Adder2()
	s := New(nl)
	rng := rand.New(rand.NewSource(7))
	// Continuous random stimulus through the pipeline, checked with a
	// 2-deep software model of the same pipeline.
	type stage struct{ a, b uint64 }
	var pipe [2]stage
	for i := 0; i < 500; i++ {
		a, b := uint64(rng.Intn(4)), uint64(rng.Intn(4))
		s.SetInput("a", a)
		s.SetInput("b", b)
		if i >= 2 {
			want := (pipe[0].a + pipe[0].b) & 3
			if got := s.Output("o"); got != want {
				t.Fatalf("cycle %d: o=%d want %d", i, got, want)
			}
		}
		pipe[0] = pipe[1]
		pipe[1] = stage{a, b}
		s.Step()
	}
}

func TestSetInputBits(t *testing.T) {
	nl := demo.Adder2()
	s := New(nl)
	s.SetInputBits("a", []bool{true, false})
	s.SetInputBits("b", []bool{false, true})
	s.Step()
	s.Step()
	if got := s.Output("o"); got != 3 {
		t.Errorf("o = %d, want 3", got)
	}
}

func TestUnknownPortPanics(t *testing.T) {
	nl := demo.Adder2()
	s := New(nl)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for unknown port")
		}
	}()
	s.SetInput("nope", 1)
}

func TestVerilogRoundTripSimulates(t *testing.T) {
	// Export the demo adder, parse it back, and check cycle-for-cycle
	// functional equivalence under random stimulus.
	orig := demo.Adder2()
	back, err := netlist.ParseVerilog(orig.Verilog())
	if err != nil {
		t.Fatalf("ParseVerilog: %v", err)
	}
	so, sb := New(orig), New(back)
	rng := rand.New(rand.NewSource(33))
	for i := 0; i < 400; i++ {
		a, b := uint64(rng.Intn(4)), uint64(rng.Intn(4))
		so.SetInput("a", a)
		sb.SetInput("a", a)
		so.SetInput("b", b)
		sb.SetInput("b", b)
		if so.Output("o") != sb.Output("o") {
			t.Fatalf("cycle %d: parsed netlist diverged", i)
		}
		so.Step()
		sb.Step()
	}
}
