// Package sim implements a cycle-accurate, two-phase logic simulator for
// netlists: in each cycle the combinational logic settles in topological
// order, signal-probability counters sample every net, and then the
// rising clock edge updates all flip-flops whose (possibly gated) clock is
// enabled.
//
// The SP counters reproduce the paper's Signal Probability Simulation
// (§3.2.1): a counter attached to every cell output, driven by a
// free-running clock that keeps ticking even when the circuit's own clock
// is gated off. In this simulator the free-running clock is the Step()
// call itself, so gated-off cells still accumulate residency every cycle.
//
// Since the compiled evaluation engine landed, Simulator is a thin facade
// over internal/engine's scalar interpreter: the netlist is lowered once
// into a shared read-only engine.Program (cached by netlist identity) and
// every Settle walks the flat instruction stream instead of the raw cell
// graph. The public API, SP semantics, and waveform recording are
// unchanged, and results are byte-identical to the pre-engine
// interpreter.
package sim

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/netlist"
)

// Simulator simulates one netlist instance. It is not safe for concurrent
// use; create one per goroutine.
type Simulator struct {
	nl     *netlist.Netlist
	prog   *engine.Program
	vals   []bool // current value of every net
	next   []bool // staged DFF next-state, one slot per flip-flop
	dirty  bool   // inputs changed since last settle
	cycles uint64

	spEnabled bool
	spOnes    []float64 // per net: accumulated logical-"1" residency

	recordNets []netlist.NetID
	waves      [][]bool
}

// New creates a simulator in the reset state: all DFFs hold their Init
// value and all primary inputs are 0.
func New(nl *netlist.Netlist) *Simulator {
	prog := engine.Cached(nl)
	s := &Simulator{
		nl:   nl,
		prog: prog,
		vals: make([]bool, nl.NumNets),
		next: make([]bool, len(prog.DFFs)),
	}
	s.Reset()
	return s
}

// Netlist returns the simulated design.
func (s *Simulator) Netlist() *netlist.Netlist { return s.nl }

// Program returns the compiled program the simulator runs on.
func (s *Simulator) Program() *engine.Program { return s.prog }

// Reset re-applies reset values to all flip-flops, clears inputs, and
// zeroes the cycle counter. SP counters and recorded waveforms are
// preserved so multi-run profiles can accumulate; call ResetSP to clear
// them.
func (s *Simulator) Reset() {
	s.prog.ResetScalar(s.vals)
	s.cycles = 0
	s.dirty = true
}

// EnableSP turns on signal-probability accumulation.
func (s *Simulator) EnableSP() {
	s.spEnabled = true
	if s.spOnes == nil {
		s.spOnes = make([]float64, s.nl.NumNets)
	}
}

// ResetSP clears accumulated SP counters.
func (s *Simulator) ResetSP() {
	for i := range s.spOnes {
		s.spOnes[i] = 0
	}
}

// Record registers nets whose settled value is captured every cycle.
func (s *Simulator) Record(nets ...netlist.NetID) {
	s.recordNets = append(s.recordNets, nets...)
}

// Waves returns the recorded waveform: one row per executed cycle, one
// column per recorded net (in Record order).
func (s *Simulator) Waves() [][]bool { return s.waves }

// Cycles returns the number of executed clock cycles.
func (s *Simulator) Cycles() uint64 { return s.cycles }

// SetInput drives a (multi-bit) input port with the low len(port) bits of
// val, LSB first.
func (s *Simulator) SetInput(name string, val uint64) {
	p, ok := s.nl.FindInput(name)
	if !ok {
		panic(fmt.Sprintf("sim: no input port %q on %s", name, s.nl.Name))
	}
	for i, n := range p.Bits {
		s.vals[n] = val>>uint(i)&1 == 1
	}
	s.dirty = true
}

// SetInputBits drives an input port from a bool slice (LSB first). The
// slice length must match the port width.
func (s *Simulator) SetInputBits(name string, bits []bool) {
	p, ok := s.nl.FindInput(name)
	if !ok {
		panic(fmt.Sprintf("sim: no input port %q on %s", name, s.nl.Name))
	}
	if len(bits) != len(p.Bits) {
		panic(fmt.Sprintf("sim: port %q width %d, got %d bits", name, len(p.Bits), len(bits)))
	}
	for i, n := range p.Bits {
		s.vals[n] = bits[i]
	}
	s.dirty = true
}

// Settle propagates values through the combinational logic (and the clock
// network) without advancing the clock.
func (s *Simulator) Settle() {
	if !s.dirty {
		return
	}
	s.prog.Settle(s.vals)
	s.dirty = false
}

// Step completes the current cycle: settle, sample SP counters and
// waveforms, then apply the rising clock edge to every DFF whose clock net
// is enabled. The flip-flop update runs over the program's precomputed
// DFF list — not a scan of all cells — with the staged next-state held in
// a per-flip-flop scratch buffer.
func (s *Simulator) Step() {
	s.Settle()
	if s.spEnabled {
		s.sampleSP()
	}
	if len(s.recordNets) > 0 {
		row := make([]bool, len(s.recordNets))
		for i, n := range s.recordNets {
			row[i] = s.vals[n]
		}
		s.waves = append(s.waves, row)
	}
	s.prog.StepDFFs(s.vals, s.next)
	s.cycles++
	s.dirty = true
}

// Run executes n cycles with the current inputs.
func (s *Simulator) Run(n int) {
	for i := 0; i < n; i++ {
		s.Step()
	}
}

// sampleSP accumulates one cycle of residency. Data nets contribute their
// settled logical value; clock-network nets contribute 0.5 when the clock
// is running (it spends half of each period high) and 0.0 when gated off
// (a gated clock idles low).
func (s *Simulator) sampleSP() {
	isClockNet := s.prog.IsClockNet
	for n := 0; n < s.nl.NumNets; n++ {
		switch {
		case isClockNet[n]:
			if s.vals[n] {
				s.spOnes[n] += 0.5
			}
		case s.vals[n]:
			s.spOnes[n] += 1.0
		}
	}
}

// Output reads a (multi-bit) output port as a uint64 (LSB first), after
// settling.
func (s *Simulator) Output(name string) uint64 {
	p, ok := s.nl.FindOutput(name)
	if !ok {
		panic(fmt.Sprintf("sim: no output port %q on %s", name, s.nl.Name))
	}
	s.Settle()
	var v uint64
	for i, n := range p.Bits {
		if s.vals[n] {
			v |= 1 << uint(i)
		}
	}
	return v
}

// Net reads the settled value of a single net.
func (s *Simulator) Net(n netlist.NetID) bool {
	s.Settle()
	return s.vals[n]
}

// SP returns the signal probability of net n over all sampled cycles.
func (s *Simulator) SP(n netlist.NetID) float64 {
	if !s.spEnabled || s.cycles == 0 {
		return 0
	}
	return s.spOnes[n] / float64(s.cycles)
}

// Profile is a per-net signal-probability profile plus the observation
// length, consumed by the aging analysis. It is an alias of the engine's
// profile type: both the scalar simulator and the 64-lane packed
// evaluator produce the same artifact, and partial profiles from either
// merge through MergeProfiles.
type Profile = engine.Profile

// Profile snapshots the accumulated SP counters.
func (s *Simulator) Profile() *Profile {
	p := &Profile{
		Cycles: s.cycles,
		SP:     make([]float64, s.nl.NumNets),
		Ones:   make([]float64, s.nl.NumNets),
	}
	copy(p.Ones, s.spOnes)
	if s.cycles == 0 {
		return p
	}
	for n := range p.SP {
		p.SP[n] = s.spOnes[n] / float64(s.cycles)
	}
	return p
}

// MergeProfiles combines partial profiles collected on the same netlist
// (same net count) into one, as if a single simulator had observed all
// cycles. See engine.MergeProfiles for the exactness contract the
// parallel profiling path relies on.
func MergeProfiles(ps ...*Profile) *Profile {
	return engine.MergeProfiles(ps...)
}
