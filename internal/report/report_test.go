package report

import (
	"strings"
	"testing"

	"repro/internal/core"
)

func TestTableAlignment(t *testing.T) {
	out := Table([]string{"Unit", "Value"}, [][]string{
		{"ALU", "1"},
		{"FPU", "12345"},
	})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines", len(lines))
	}
	// All rows share the same width.
	for _, l := range lines[1:] {
		if len(l) != len(lines[1]) {
			t.Errorf("ragged table: %q vs %q", l, lines[1])
		}
	}
	if !strings.HasPrefix(lines[0], "Unit") {
		t.Error("header missing")
	}
	if !strings.Contains(lines[1], "----") {
		t.Error("separator missing")
	}
}

func TestHistogram(t *testing.T) {
	bins := []core.HistogramBin{
		{LoPct: 1, HiPct: 2, Count: 10, Frac: 0.25},
		{LoPct: 2, HiPct: 3, Count: 30, Frac: 0.75},
	}
	out := Histogram(bins, 20)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines", len(lines))
	}
	// The dominant bin gets the full bar.
	if !strings.Contains(lines[1], strings.Repeat("#", 20)) {
		t.Error("dominant bin not full width")
	}
	if strings.Count(lines[0], "#") >= strings.Count(lines[1], "#") {
		t.Error("bar heights not proportional")
	}
	if Histogram(nil, 10) != "(empty)\n" {
		t.Error("empty histogram not handled")
	}
}

func TestBarsNegativeValues(t *testing.T) {
	out := Bars([]string{"a", "b"}, []float64{1.0, -0.5}, 10)
	if !strings.Contains(out, "+1.000%") || !strings.Contains(out, "-0.500%") {
		t.Errorf("values missing:\n%s", out)
	}
	if !strings.Contains(out, "-#") {
		t.Error("negative bar not marked")
	}
	// All-zero input must not divide by zero.
	_ = Bars([]string{"z"}, []float64{0}, 10)
}

func TestPct(t *testing.T) {
	if Pct(33.333) != "33.3" {
		t.Errorf("Pct = %q", Pct(33.333))
	}
}

// TestWilson pins the 95% Wilson score interval against independently
// computed reference values (R binom::binom.wilson / hand-evaluated
// closed form).
func TestWilson(t *testing.T) {
	const tol = 1e-9
	cases := []struct {
		k, n   int
		lo, hi float64
	}{
		{0, 10, 0, 0.2775327998628892},
		{10, 10, 0.7224672001371106, 1},
		{5, 10, 0.2365930905125640, 0.7634069094874359},
		{1, 100, 0.0017674320641407, 0.0544861961787053},
		{50, 10000, 0.0037949010708382, 0.0065852573161316},
		{9999, 10000, 0.9994337311025987, 0.9999823473263989},
	}
	for _, tc := range cases {
		lo, hi := Wilson(tc.k, tc.n)
		if diff(lo, tc.lo) > tol || diff(hi, tc.hi) > tol {
			t.Errorf("Wilson(%d, %d) = [%.13f, %.13f], want [%.13f, %.13f]",
				tc.k, tc.n, lo, hi, tc.lo, tc.hi)
		}
	}
}

func diff(a, b float64) float64 { return abs(a - b) }

// TestWilsonEdges: n=0 carries no information (vacuous interval); k=0
// still has a nonzero upper bound; bounds stay inside [0, 1].
func TestWilsonEdges(t *testing.T) {
	if lo, hi := Wilson(0, 0); lo != 0 || hi != 1 {
		t.Errorf("Wilson(0, 0) = [%v, %v], want [0, 1]", lo, hi)
	}
	lo, hi := Wilson(0, 25)
	if lo != 0 {
		t.Errorf("Wilson(0, 25) lo = %v, want 0", lo)
	}
	if hi <= 0 || hi >= 0.2 {
		t.Errorf("Wilson(0, 25) hi = %v, want small but nonzero", hi)
	}
	for _, n := range []int{1, 2, 7, 10000} {
		for _, k := range []int{0, 1, n / 2, n} {
			lo, hi := Wilson(k, n)
			if lo < 0 || hi > 1 || lo > hi {
				t.Errorf("Wilson(%d, %d) = [%v, %v] not a sub-interval of [0, 1]", k, n, lo, hi)
			}
			p := float64(k) / float64(n)
			if p < lo || p > hi {
				t.Errorf("Wilson(%d, %d) = [%v, %v] excludes the point estimate %v", k, n, lo, hi, p)
			}
		}
	}
}
