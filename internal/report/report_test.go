package report

import (
	"strings"
	"testing"

	"repro/internal/core"
)

func TestTableAlignment(t *testing.T) {
	out := Table([]string{"Unit", "Value"}, [][]string{
		{"ALU", "1"},
		{"FPU", "12345"},
	})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines", len(lines))
	}
	// All rows share the same width.
	for _, l := range lines[1:] {
		if len(l) != len(lines[1]) {
			t.Errorf("ragged table: %q vs %q", l, lines[1])
		}
	}
	if !strings.HasPrefix(lines[0], "Unit") {
		t.Error("header missing")
	}
	if !strings.Contains(lines[1], "----") {
		t.Error("separator missing")
	}
}

func TestHistogram(t *testing.T) {
	bins := []core.HistogramBin{
		{LoPct: 1, HiPct: 2, Count: 10, Frac: 0.25},
		{LoPct: 2, HiPct: 3, Count: 30, Frac: 0.75},
	}
	out := Histogram(bins, 20)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines", len(lines))
	}
	// The dominant bin gets the full bar.
	if !strings.Contains(lines[1], strings.Repeat("#", 20)) {
		t.Error("dominant bin not full width")
	}
	if strings.Count(lines[0], "#") >= strings.Count(lines[1], "#") {
		t.Error("bar heights not proportional")
	}
	if Histogram(nil, 10) != "(empty)\n" {
		t.Error("empty histogram not handled")
	}
}

func TestBarsNegativeValues(t *testing.T) {
	out := Bars([]string{"a", "b"}, []float64{1.0, -0.5}, 10)
	if !strings.Contains(out, "+1.000%") || !strings.Contains(out, "-0.500%") {
		t.Errorf("values missing:\n%s", out)
	}
	if !strings.Contains(out, "-#") {
		t.Error("negative bar not marked")
	}
	// All-zero input must not divide by zero.
	_ = Bars([]string{"z"}, []float64{0}, 10)
}

func TestPct(t *testing.T) {
	if Pct(33.333) != "33.3" {
		t.Errorf("Pct = %q", Pct(33.333))
	}
}
