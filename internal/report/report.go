// Package report renders the experiment results as fixed-width text
// tables and histograms, in the shape of the paper's tables and figures.
package report

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/inject"
)

// Table renders rows of cells with a header, padding columns to fit.
func Table(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(header)
	var sep []string
	for _, w := range widths {
		sep = append(sep, strings.Repeat("-", w))
	}
	line(sep)
	for _, r := range rows {
		line(r)
	}
	return b.String()
}

// Histogram renders Figure-8-style bins as a bar chart.
func Histogram(bins []core.HistogramBin, width int) string {
	var b strings.Builder
	maxFrac := 0.0
	for _, bin := range bins {
		if bin.Frac > maxFrac {
			maxFrac = bin.Frac
		}
	}
	if maxFrac == 0 {
		return "(empty)\n"
	}
	for _, bin := range bins {
		bar := int(bin.Frac / maxFrac * float64(width))
		fmt.Fprintf(&b, "%5.2f%%-%5.2f%% | %-*s %5.1f%% (%d cells)\n",
			bin.LoPct, bin.HiPct, width, strings.Repeat("#", bar), bin.Frac*100, bin.Count)
	}
	return b.String()
}

// Bars renders Figure-9-style labeled value bars (values in percent,
// which may be negative).
func Bars(labels []string, values []float64, width int) string {
	maxAbs := 0.0
	for _, v := range values {
		if a := abs(v); a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs == 0 {
		maxAbs = 1
	}
	wLabel := 0
	for _, l := range labels {
		if len(l) > wLabel {
			wLabel = len(l)
		}
	}
	var b strings.Builder
	for i, v := range values {
		bar := int(abs(v) / maxAbs * float64(width))
		sign := ""
		if v < 0 {
			sign = "-"
		}
		fmt.Fprintf(&b, "%-*s | %s%-*s %+.3f%%\n", wLabel, labels[i], sign, width, strings.Repeat("#", bar), v)
	}
	return b.String()
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// Pct formats a percentage cell.
func Pct(v float64) string { return fmt.Sprintf("%.1f", v) }

// EscapeTable renders an injection campaign's per-class outcome counts
// and escape rates (internal/inject).
func EscapeTable(r *inject.Report) string {
	var rows [][]string
	for _, c := range r.Classes {
		rows = append(rows, []string{
			c.Class,
			fmt.Sprint(c.Total),
			fmt.Sprint(c.Detected),
			fmt.Sprint(c.Masked),
			fmt.Sprint(c.SDCEscape),
			fmt.Sprint(c.StallCrash),
			Pct(c.EscapeRate * 100),
		})
	}
	return Table([]string{"Class", "N", "Det.", "Masked", "SDC", "Stall", "Escape%"}, rows)
}
