// Package report renders the experiment results as fixed-width text
// tables and histograms, in the shape of the paper's tables and figures.
package report

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/core"
	"repro/internal/inject"
)

// Table renders rows of cells with a header, padding columns to fit.
func Table(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(header)
	var sep []string
	for _, w := range widths {
		sep = append(sep, strings.Repeat("-", w))
	}
	line(sep)
	for _, r := range rows {
		line(r)
	}
	return b.String()
}

// Histogram renders Figure-8-style bins as a bar chart.
func Histogram(bins []core.HistogramBin, width int) string {
	var b strings.Builder
	maxFrac := 0.0
	for _, bin := range bins {
		if bin.Frac > maxFrac {
			maxFrac = bin.Frac
		}
	}
	if maxFrac == 0 {
		return "(empty)\n"
	}
	for _, bin := range bins {
		bar := int(bin.Frac / maxFrac * float64(width))
		fmt.Fprintf(&b, "%5.2f%%-%5.2f%% | %-*s %5.1f%% (%d cells)\n",
			bin.LoPct, bin.HiPct, width, strings.Repeat("#", bar), bin.Frac*100, bin.Count)
	}
	return b.String()
}

// Bars renders Figure-9-style labeled value bars (values in percent,
// which may be negative).
func Bars(labels []string, values []float64, width int) string {
	maxAbs := 0.0
	for _, v := range values {
		if a := abs(v); a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs == 0 {
		maxAbs = 1
	}
	wLabel := 0
	for _, l := range labels {
		if len(l) > wLabel {
			wLabel = len(l)
		}
	}
	var b strings.Builder
	for i, v := range values {
		bar := int(abs(v) / maxAbs * float64(width))
		sign := ""
		if v < 0 {
			sign = "-"
		}
		fmt.Fprintf(&b, "%-*s | %s%-*s %+.3f%%\n", wLabel, labels[i], sign, width, strings.Repeat("#", bar), v)
	}
	return b.String()
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// Pct formats a percentage cell.
func Pct(v float64) string { return fmt.Sprintf("%.1f", v) }

// wilsonZ is the two-sided 95% normal quantile used by Wilson.
const wilsonZ = 1.959963984540054

// Wilson returns the 95% Wilson score confidence interval for a
// binomial proportion with k successes in n trials, as fractions in
// [0, 1]. Unlike the normal approximation it behaves sensibly at the
// edges: k=0 yields a nonzero upper bound (observing no escapes in n
// trials does not prove a zero escape rate), and k=n yields a lower
// bound below 1. n=0 carries no information and returns the vacuous
// interval [0, 1].
func Wilson(k, n int) (lo, hi float64) {
	if n <= 0 {
		return 0, 1
	}
	z := wilsonZ
	p := float64(k) / float64(n)
	nn := float64(n)
	denom := 1 + z*z/nn
	center := p + z*z/(2*nn)
	margin := z * math.Sqrt(p*(1-p)/nn+z*z/(4*nn*nn))
	lo = (center - margin) / denom
	hi = (center + margin) / denom
	// Pin the exact edges: at k=0 (k=n) the interval includes 0 (1) by
	// construction, but the float evaluation leaves a ~1e-17 residue.
	if k == 0 {
		lo = 0
	}
	if k == n {
		hi = 1
	}
	return math.Max(lo, 0), math.Min(hi, 1)
}

// ci renders a Wilson interval as a "lo-hi" percent cell.
func ci(k, n int) string {
	if n == 0 {
		return "-"
	}
	lo, hi := Wilson(k, n)
	return fmt.Sprintf("%.1f-%.1f", lo*100, hi*100)
}

// EscapeTable renders an injection campaign's per-class outcome counts
// and escape rates (internal/inject) with 95% Wilson confidence
// intervals on the escape rate. Guarded campaigns gain two columns: how
// many detections the runtime guards own (GrdDet — completed runs only
// the guard log flagged) and how many runs fired a guard at all
// (GrdFire, including masked ones); unguarded reports render exactly as
// before.
func EscapeTable(r *inject.Report) string {
	guarded := len(r.Guards) > 0
	var rows [][]string
	for _, c := range r.Classes {
		row := []string{
			c.Class,
			fmt.Sprint(c.Total),
			fmt.Sprint(c.Detected),
			fmt.Sprint(c.Masked),
			fmt.Sprint(c.SDCEscape),
			fmt.Sprint(c.StallCrash),
			Pct(c.EscapeRate * 100),
			ci(c.SDCEscape, c.Total),
		}
		if guarded {
			row = append(row, fmt.Sprint(c.GuardDetected), fmt.Sprint(c.GuardFired))
		}
		rows = append(rows, row)
	}
	hdr := []string{"Class", "N", "Det.", "Masked", "SDC", "Stall", "Escape%", "95% CI"}
	if guarded {
		hdr = append(hdr, "GrdDet", "GrdFire")
	}
	return Table(hdr, rows)
}

// PackedStatsTable renders the packed campaign path's per-class wave
// occupancy and savings accounting (inject.RunWithStats).
func PackedStatsTable(ps *inject.PackedStats) string {
	var rows [][]string
	for i := range ps.Classes {
		c := &ps.Classes[i]
		saved := "-"
		if c.LanesUsed > 0 {
			saved = Pct(inject.Savings(ps.GoldenOps, c)*100) + "%"
		}
		occ := "-"
		if c.LaneSlots > 0 {
			occ = Pct(c.Occupancy()*100) + "%"
		}
		rows = append(rows, []string{
			c.Class,
			fmt.Sprint(c.Waves),
			fmt.Sprintf("%d/%d", c.LanesUsed, c.LaneSlots),
			occ,
			fmt.Sprint(c.Retired),
			fmt.Sprint(c.MaskedInWave),
			fmt.Sprint(c.Fallbacks),
			saved,
			fmt.Sprint(c.Shortcut),
			fmt.Sprint(c.Replayed),
		})
	}
	return Table([]string{"Class", "Waves", "Lanes", "Occup.", "Retired", "MaskedFree",
		"Fallback", "SavedOps", "Shortcut", "Replayed"}, rows)
}
