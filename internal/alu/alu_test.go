package alu

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/module"
)

func TestEvalGolden(t *testing.T) {
	cases := []struct {
		op   Op
		a, b uint32
		want uint32
	}{
		{OpAdd, 2, 3, 5},
		{OpAdd, 0xffffffff, 1, 0},
		{OpSub, 5, 7, 0xfffffffe},
		{OpAnd, 0xf0f0, 0xff00, 0xf000},
		{OpOr, 0xf0f0, 0x0f0f, 0xffff},
		{OpXor, 0xff, 0x0f, 0xf0},
		{OpSll, 1, 31, 0x80000000},
		{OpSll, 1, 32, 1}, // shift amount masked to 5 bits
		{OpSrl, 0x80000000, 31, 1},
		{OpSra, 0x80000000, 31, 0xffffffff},
		{OpSlt, 0xffffffff, 0, 1}, // -1 < 0
		{OpSlt, 0, 0xffffffff, 0},
		{OpSltu, 0xffffffff, 0, 0},
		{OpSltu, 0, 1, 1},
	}
	for _, c := range cases {
		if got := Eval(c.op, c.a, c.b); got != c.want {
			t.Errorf("%v(%#x, %#x) = %#x, want %#x", c.op, c.a, c.b, got, c.want)
		}
	}
}

func TestFlags(t *testing.T) {
	if Flags(5, 5) != 1 {
		t.Error("eq flag")
	}
	if Flags(0xffffffff, 0)&2 == 0 {
		t.Error("lt flag for -1 < 0")
	}
	if Flags(0, 1) != 2|4 {
		t.Error("lt+ltu for 0 < 1")
	}
}

func TestNetlistMatchesGoldenExec(t *testing.T) {
	m := Build()
	d := module.NewDriver(m)
	rng := rand.New(rand.NewSource(1))
	interesting := []uint32{0, 1, 2, 31, 32, 0x7fffffff, 0x80000000, 0xffffffff}
	rand32 := func() uint32 {
		if rng.Intn(3) == 0 {
			return interesting[rng.Intn(len(interesting))]
		}
		return rng.Uint32()
	}
	for i := 0; i < 400; i++ {
		op := Op(rng.Intn(NumOps))
		a, b := rand32(), rand32()
		res, flags, ok := d.Exec(uint32(op), a, b)
		if !ok {
			t.Fatalf("ALU stalled on %v(%#x, %#x)", op, a, b)
		}
		if want := Eval(op, a, b); res != want {
			t.Fatalf("%v(%#x, %#x) = %#x, want %#x", op, a, b, res, want)
		}
		if want := Flags(a, b); flags != want {
			t.Fatalf("flags(%#x, %#x) = %#x, want %#x", a, b, flags, want)
		}
	}
}

func TestNetlistPipelined(t *testing.T) {
	m := Build()
	d := module.NewDriver(m)
	rng := rand.New(rand.NewSource(2))
	n := 100
	ops := make([]uint32, n)
	as := make([]uint32, n)
	bs := make([]uint32, n)
	for i := range ops {
		ops[i] = uint32(rng.Intn(NumOps))
		as[i] = rng.Uint32()
		bs[i] = rng.Uint32()
	}
	results, flags, ok := d.ExecPipelined(ops, as, bs)
	if !ok {
		t.Fatal("pipeline did not drain")
	}
	for i := range ops {
		if want := Eval(Op(ops[i]), as[i], bs[i]); results[i] != want {
			t.Fatalf("op %d: got %#x want %#x", i, results[i], want)
		}
		if want := Flags(as[i], bs[i]); flags[i] != want {
			t.Fatalf("op %d flags: got %#x want %#x", i, flags[i], want)
		}
	}
}

func TestNetlistQuickProperty(t *testing.T) {
	m := Build()
	d := module.NewDriver(m)
	f := func(opRaw uint8, a, b uint32) bool {
		op := Op(opRaw) % NumOps
		res, _, ok := d.Exec(uint32(op), a, b)
		return ok && res == Eval(op, a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestModuleMetadata(t *testing.T) {
	m := Build()
	if m.Latency != 2 || m.OpWidth != OpWidth || m.FlagWidth != FlagWidth {
		t.Errorf("metadata wrong: %+v", m)
	}
	if f := m.FrequencyMHz(); f < 166 || f > 168 {
		t.Errorf("frequency = %v MHz, want ~167", f)
	}
	if !m.OpValid(uint32(OpSltu)) || m.OpValid(NumOps) {
		t.Error("OpValid wrong")
	}
	st := m.Netlist.Stats()
	t.Logf("ALU netlist: %+v", st)
	if st.DFFs < 100 {
		t.Errorf("suspiciously few DFFs: %d", st.DFFs)
	}
	if st.Comb < 1000 {
		t.Errorf("suspiciously small datapath: %d comb cells", st.Comb)
	}
}

func TestOpStringAndValid(t *testing.T) {
	if OpAdd.String() != "ADD" || OpSltu.String() != "SLTU" {
		t.Error("op names wrong")
	}
	if Op(99).Valid() {
		t.Error("Op(99) should be invalid")
	}
}
