// Package alu implements the CV32E40P-style arithmetic logic unit that the
// paper analyzes: a behavioural golden model plus a synthesized gate-level
// netlist with a two-stage pipeline (input registers, compute + output
// registers), a valid handshake, and a gated clock tree.
package alu

import "fmt"

// Op is an ALU operation selector (the op port encoding).
type Op uint32

// The operation set mirrors the integer portion of the CV32E40P ALU that
// RV32I exercises.
const (
	OpAdd  Op = 0
	OpSub  Op = 1
	OpAnd  Op = 2
	OpOr   Op = 3
	OpXor  Op = 4
	OpSll  Op = 5
	OpSrl  Op = 6
	OpSra  Op = 7
	OpSlt  Op = 8
	OpSltu Op = 9
	NumOps    = 10
)

var opNames = [...]string{"ADD", "SUB", "AND", "OR", "XOR", "SLL", "SRL", "SRA", "SLT", "SLTU"}

func (op Op) String() string {
	if int(op) < len(opNames) {
		return opNames[op]
	}
	return fmt.Sprintf("ALUOP(%d)", uint32(op))
}

// Valid reports whether op is a legal encoding.
func (op Op) Valid() bool { return op < NumOps }

// Eval is the behavioural golden model: the architecturally-correct result
// of op on a and b.
func Eval(op Op, a, b uint32) uint32 {
	switch op {
	case OpAdd:
		return a + b
	case OpSub:
		return a - b
	case OpAnd:
		return a & b
	case OpOr:
		return a | b
	case OpXor:
		return a ^ b
	case OpSll:
		return a << (b & 31)
	case OpSrl:
		return a >> (b & 31)
	case OpSra:
		return uint32(int32(a) >> (b & 31))
	case OpSlt:
		if int32(a) < int32(b) {
			return 1
		}
		return 0
	case OpSltu:
		if a < b {
			return 1
		}
		return 0
	}
	panic("alu: invalid op " + op.String())
}

// Flags computes the comparison flag outputs (eq, lt, ltu), packed as
// flags[0]=eq, flags[1]=lt (signed), flags[2]=ltu. The CV32E40P ALU
// produces these for branch resolution alongside the data result.
func Flags(a, b uint32) uint32 {
	var f uint32
	if a == b {
		f |= 1
	}
	if int32(a) < int32(b) {
		f |= 2
	}
	if a < b {
		f |= 4
	}
	return f
}

// FlagWidth is the width of the flags output port.
const FlagWidth = 3

// OpWidth is the width of the op input port.
const OpWidth = 4
