package alu

import (
	"repro/internal/module"
	"repro/internal/netlist"
	"repro/internal/synth"
)

// PeriodPs is the ALU's target clock period: 167 MHz, matching the
// paper's synthesis target for the CV32E40P ALU.
const PeriodPs = 5988.0

// Build synthesizes the ALU into a gate-level netlist and returns it with
// its analysis metadata.
//
// Microarchitecture (2-stage pipeline, valid handshake):
//
//	stage 1: operand/op registers (clock-gated by in_valid) + valid_q
//	stage 2: full datapath (adder, subtractor, barrel shifters, logic
//	         ops, comparators) muxed by a one-hot op decode into the
//	         result registers (clock-gated by valid_q), plus out_valid
//
// The clock tree has depth 3 (8 leaves). Leaf 0 is ungated and clocks the
// valid pipeline; leaves 1-5 are gated by in_valid (operand isolation);
// leaves 6-7 are gated by valid_q (result registers).
func Build() *module.Module { return build(nil) }

// GuardNames lists the gate-level runtime checkers this unit can emit,
// in canonical order (mirrored by the guard package's ALU registry).
var GuardNames = []string{"res3", "parity", "bounds", "flags"}

// BuildGuarded is Build plus synthesized always-on checker cells for the
// named guards (see internal/guard): each guard taps the stage-2
// datapath, computes its invariant in redundant logic, and latches any
// violation into a sticky alarm register g_<name>_q clocked with the
// result registers. Outputs "g_<name>" (per guard) and "guard_fire"
// (their OR) are appended after the base ports, and checker cells are
// appended after the base cells, so the base netlist is a bit-identical
// prefix — fault universes sampled on Build() remain valid.
//
// BuildGuarded exists to cost the checkers (cell count via
// netlist.Stats, timing via sta on the guarded netlist) and to prove at
// gate level that they stay silent on fault-free operation; campaigns
// attach behavioural guards at the backend seam instead.
func BuildGuarded(guards ...string) *module.Module { return build(guards) }

func build(guards []string) *module.Module {
	b := netlist.NewBuilder("alu")
	c := synth.NewC(b)

	clk := b.Clock("clk")
	inValid := b.Input(module.PortInValid)
	op := b.InputBus(module.PortOp, OpWidth)
	a := b.InputBus(module.PortA, 32)
	bo := b.InputBus(module.PortB, 32)

	// Clock tree. Result-register gates (leaves 6, 7) are temporarily
	// enabled by in_valid and rewired to valid_q once it exists.
	opts := []synth.ClockTreeOption{synth.WithLeafChain(1)}
	for leaf := 1; leaf <= 7; leaf++ {
		opts = append(opts, synth.WithLeafGate(leaf, inValid))
	}
	tree := c.BuildClockTree(clk, 3, opts...)

	// Stage 1: input registers.
	validQ := b.AddDFFNamed("valid_q", inValid, tree.Leaves[0], false)
	aq := append(
		c.RegisterBus(a[0:16], tree.Leaves[1], 0),
		c.RegisterBus(a[16:32], tree.Leaves[2], 0)...)
	bq := append(
		c.RegisterBus(bo[0:16], tree.Leaves[3], 0),
		c.RegisterBus(bo[16:32], tree.Leaves[4], 0)...)
	opq := c.RegisterBus(op, tree.Leaves[5], 0)

	// Rewire result-leaf clock gates to valid_q.
	for _, leaf := range []int{6, 7} {
		b.RewireInput(tree.GateCell[leaf], 1, validQ)
	}

	// Stage 2: datapath.
	sum, carryOut := c.Adder(aq, bq, c.Zero())
	diff, noBorrow := c.Sub(aq, bq)
	andv := c.AndBus(aq, bq)
	orv := c.OrBus(aq, bq)
	xorv := c.XorBus(aq, bq)
	shamt := bq[0:5]
	sll := c.ShiftLeft(aq, shamt)
	srl := c.ShiftRightL(aq, shamt)
	sra := c.ShiftRightA(aq, shamt)

	eq := c.EqualBus(aq, bq)
	ltu := c.Not(noBorrow)
	diffSign := c.Xor(aq[31], bq[31])
	lt := c.Mux(diffSign, ltu, aq[31])
	slt := c.ZeroExtend(synth.Bus{lt}, 32)
	sltu := c.ZeroExtend(synth.Bus{ltu}, 32)

	onehot := c.Decoder(opq)
	result := c.Select1H(onehot[0:NumOps], []synth.Bus{
		sum, diff, andv, orv, xorv, sll, srl, sra, slt, sltu,
	})

	resultQ := append(
		c.RegisterBus(result[0:16], tree.Leaves[6], 0),
		c.RegisterBus(result[16:32], tree.Leaves[7], 0)...)
	flagsQ := c.RegisterBus(synth.Bus{eq, lt, ltu}, tree.Leaves[6], 0)
	outValid := b.AddDFFNamed("out_valid_q", validQ, tree.Leaves[0], false)

	b.OutputBus(module.PortResult, resultQ)
	b.OutputBus(module.PortFlags, flagsQ)
	b.Output(module.PortOutValid, outValid)

	// Guard checkers observe the stage-2 combinational values (operand
	// registers in, result mux out) and latch violations on the same
	// valid_q-gated clock leaf as the result registers, so an alarm
	// samples exactly when a result is produced. All checker cells are
	// appended after the base netlist.
	if len(guards) > 0 {
		var alarms synth.Bus
		alarm := func(name string, fire netlist.NetID) {
			q := c.StickyAlarm("g_"+name+"_q", fire, tree.Leaves[6])
			b.Output("g_"+name, q)
			alarms = append(alarms, q)
		}
		for _, name := range guards {
			switch name {
			case "res3":
				// Mod-3 residue with the carry/borrow taps: because
				// 2^32 ≡ 1 (mod 3), r ≡ a+b−carry and r ≡ a−b+borrow.
				ra, rb, rr := mod3(c, aq), mod3(c, bq), mod3(c, result)
				borrow := c.Not(noBorrow)
				expAdd := mod3Add(c, mod3Add(c, ra, rb),
					synth.Bus{c.Zero(), carryOut}) // −carry ≡ +2·carry
				expSub := mod3Add(c, mod3Add(c, ra, mod3Neg(rb)),
					synth.Bus{borrow, c.Zero()}) // +borrow
				neqA := c.Or(c.Xor(expAdd[0], rr[0]), c.Xor(expAdd[1], rr[1]))
				neqS := c.Or(c.Xor(expSub[0], rr[0]), c.Xor(expSub[1], rr[1]))
				alarm(name, c.Or(
					c.And(onehot[OpAdd], neqA),
					c.And(onehot[OpSub], neqS)))
			case "parity":
				// parity(a^b) == parity(a) ^ parity(b).
				pr := c.XorReduce(result)
				pab := c.Xor(c.XorReduce(aq), c.XorReduce(bq))
				alarm(name, c.And(onehot[OpXor], c.Xor(pr, pab)))
			case "bounds":
				// Bit-domain bounds on the logic/shift/compare ops.
				ones := c.Const(32, 0xffffffff)
				andBad := c.OrReduce(c.OrBus(
					c.AndBus(result, c.NotBus(aq)),
					c.AndBus(result, c.NotBus(bq))))
				orBad := c.OrReduce(c.AndBus(c.OrBus(aq, bq), c.NotBus(result)))
				sllBad := c.OrReduce(c.AndBus(result, c.NotBus(c.ShiftLeft(ones, shamt))))
				hiMask := c.NotBus(c.ShiftRightL(ones, shamt))
				srlBad := c.OrReduce(c.AndBus(result, hiMask))
				sraBad := c.OrReduce(c.AndBus(
					c.XorBus(result, c.Repeat(aq[31], 32)), hiMask))
				cmpBad := c.OrReduce(result[1:32])
				alarm(name, c.OrReduce(synth.Bus{
					c.And(onehot[OpAnd], andBad),
					c.And(onehot[OpOr], orBad),
					c.And(onehot[OpSll], sllBad),
					c.And(onehot[OpSrl], srlBad),
					c.And(onehot[OpSra], sraBad),
					c.And(c.Or(onehot[OpSlt], onehot[OpSltu]), cmpBad),
				}))
			case "flags":
				// Flag-triple consistency plus SLT/SLTU result agreement.
				inconsistent := c.Or(
					c.And(eq, c.Or(lt, ltu)),
					c.Xor(diffSign, c.Xor(lt, ltu)))
				hi := c.OrReduce(result[1:32])
				sltBad := c.And(onehot[OpSlt], c.Or(c.Xor(result[0], lt), hi))
				sltuBad := c.And(onehot[OpSltu], c.Or(c.Xor(result[0], ltu), hi))
				alarm(name, c.OrReduce(synth.Bus{inconsistent, sltBad, sltuBad}))
			default:
				panic("alu: unknown guard " + name)
			}
		}
		b.Output("guard_fire", c.OrReduce(alarms))
	}

	return &module.Module{
		Name:        "ALU",
		Netlist:     b.MustBuild(),
		Tree:        tree,
		Latency:     2,
		OpWidth:     OpWidth,
		FlagWidth:   FlagWidth,
		PeriodPs:    PeriodPs,
		SynthMargin: 0.0243,
		Golden: func(op, a, b uint32) (uint32, uint32) {
			return Eval(Op(op), a, b), Flags(a, b)
		},
		OpValid: func(op uint32) bool { return Op(op).Valid() },
	}
}

// mod3 reduces a bus to its residue mod 3 as a 2-bit value in {0,1,2}.
// Two-bit digits have weight 4^i ≡ 1 (mod 3), so the residue is the
// mod-3 sum of the 16 digits: leaves normalize the digit value 3 to 0,
// then a balanced tree of mod-3 adders folds them together. This is the
// checker structure a hardware residue code uses.
func mod3(c *synth.C, x synth.Bus) synth.Bus {
	var digits []synth.Bus
	for i := 0; i < len(x); i += 2 {
		lo := c.And(x[i], c.Not(x[i+1]))
		hi := c.And(x[i+1], c.Not(x[i]))
		digits = append(digits, synth.Bus{lo, hi})
	}
	for len(digits) > 1 {
		var next []synth.Bus
		for i := 0; i+1 < len(digits); i += 2 {
			next = append(next, mod3Add(c, digits[i], digits[i+1]))
		}
		if len(digits)%2 == 1 {
			next = append(next, digits[len(digits)-1])
		}
		digits = next
	}
	return digits[0]
}

// mod3Add adds two residues in {0,1,2}: s = u+v in 0..4, folded back to
// {0,1,2} with two gates off the 3-bit sum (0,1,2,0,1).
func mod3Add(c *synth.C, u, v synth.Bus) synth.Bus {
	sum, _ := c.Adder(c.ZeroExtend(u, 3), c.ZeroExtend(v, 3), c.Zero())
	lo := c.Or(c.And(sum[0], c.Not(sum[1])), sum[2])
	hi := c.And(sum[1], c.Not(sum[0]))
	return synth.Bus{lo, hi}
}

// mod3Neg negates a residue in {0,1,2}: 3−v mod 3 swaps the encodings of
// 1 and 2 — a pure wire swap, no cells.
func mod3Neg(v synth.Bus) synth.Bus { return synth.Bus{v[1], v[0]} }
