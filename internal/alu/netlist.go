package alu

import (
	"repro/internal/module"
	"repro/internal/netlist"
	"repro/internal/synth"
)

// PeriodPs is the ALU's target clock period: 167 MHz, matching the
// paper's synthesis target for the CV32E40P ALU.
const PeriodPs = 5988.0

// Build synthesizes the ALU into a gate-level netlist and returns it with
// its analysis metadata.
//
// Microarchitecture (2-stage pipeline, valid handshake):
//
//	stage 1: operand/op registers (clock-gated by in_valid) + valid_q
//	stage 2: full datapath (adder, subtractor, barrel shifters, logic
//	         ops, comparators) muxed by a one-hot op decode into the
//	         result registers (clock-gated by valid_q), plus out_valid
//
// The clock tree has depth 3 (8 leaves). Leaf 0 is ungated and clocks the
// valid pipeline; leaves 1-5 are gated by in_valid (operand isolation);
// leaves 6-7 are gated by valid_q (result registers).
func Build() *module.Module {
	b := netlist.NewBuilder("alu")
	c := synth.NewC(b)

	clk := b.Clock("clk")
	inValid := b.Input(module.PortInValid)
	op := b.InputBus(module.PortOp, OpWidth)
	a := b.InputBus(module.PortA, 32)
	bo := b.InputBus(module.PortB, 32)

	// Clock tree. Result-register gates (leaves 6, 7) are temporarily
	// enabled by in_valid and rewired to valid_q once it exists.
	opts := []synth.ClockTreeOption{synth.WithLeafChain(1)}
	for leaf := 1; leaf <= 7; leaf++ {
		opts = append(opts, synth.WithLeafGate(leaf, inValid))
	}
	tree := c.BuildClockTree(clk, 3, opts...)

	// Stage 1: input registers.
	validQ := b.AddDFFNamed("valid_q", inValid, tree.Leaves[0], false)
	aq := append(
		c.RegisterBus(a[0:16], tree.Leaves[1], 0),
		c.RegisterBus(a[16:32], tree.Leaves[2], 0)...)
	bq := append(
		c.RegisterBus(bo[0:16], tree.Leaves[3], 0),
		c.RegisterBus(bo[16:32], tree.Leaves[4], 0)...)
	opq := c.RegisterBus(op, tree.Leaves[5], 0)

	// Rewire result-leaf clock gates to valid_q.
	for _, leaf := range []int{6, 7} {
		b.RewireInput(tree.GateCell[leaf], 1, validQ)
	}

	// Stage 2: datapath.
	sum, _ := c.Adder(aq, bq, c.Zero())
	diff, noBorrow := c.Sub(aq, bq)
	andv := c.AndBus(aq, bq)
	orv := c.OrBus(aq, bq)
	xorv := c.XorBus(aq, bq)
	shamt := bq[0:5]
	sll := c.ShiftLeft(aq, shamt)
	srl := c.ShiftRightL(aq, shamt)
	sra := c.ShiftRightA(aq, shamt)

	eq := c.EqualBus(aq, bq)
	ltu := c.Not(noBorrow)
	diffSign := c.Xor(aq[31], bq[31])
	lt := c.Mux(diffSign, ltu, aq[31])
	slt := c.ZeroExtend(synth.Bus{lt}, 32)
	sltu := c.ZeroExtend(synth.Bus{ltu}, 32)

	onehot := c.Decoder(opq)
	result := c.Select1H(onehot[0:NumOps], []synth.Bus{
		sum, diff, andv, orv, xorv, sll, srl, sra, slt, sltu,
	})

	resultQ := append(
		c.RegisterBus(result[0:16], tree.Leaves[6], 0),
		c.RegisterBus(result[16:32], tree.Leaves[7], 0)...)
	flagsQ := c.RegisterBus(synth.Bus{eq, lt, ltu}, tree.Leaves[6], 0)
	outValid := b.AddDFFNamed("out_valid_q", validQ, tree.Leaves[0], false)

	b.OutputBus(module.PortResult, resultQ)
	b.OutputBus(module.PortFlags, flagsQ)
	b.Output(module.PortOutValid, outValid)

	return &module.Module{
		Name:        "ALU",
		Netlist:     b.MustBuild(),
		Tree:        tree,
		Latency:     2,
		OpWidth:     OpWidth,
		FlagWidth:   FlagWidth,
		PeriodPs:    PeriodPs,
		SynthMargin: 0.0243,
		Golden: func(op, a, b uint32) (uint32, uint32) {
			return Eval(Op(op), a, b), Flags(a, b)
		},
		OpValid: func(op uint32) bool { return Op(op).Valid() },
	}
}
