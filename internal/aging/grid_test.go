package aging

import (
	"reflect"
	"testing"

	"repro/internal/cell"
)

// TestCornerGridMatchesNewLibrary pins the separability the grid relies
// on: every library of a multi-corner characterization must be
// bit-identical (reflect.DeepEqual on raw float64 tables) to an
// independent NewLibrary run at that corner, including fresh corners
// (nil) and temperature overrides (cloned model).
func TestCornerGridMatchesNewLibrary(t *testing.T) {
	base := cell.Lib28()
	m := Default()
	corners := []CornerSpec{
		{Years: 10},
		{Years: 0}, // fresh: no library
		{Years: 2.5},
		{Years: 10, TempK: 398},   // override equal to the model default
		{Years: 7, TempK: 328.15}, // cooler corner
		{Years: 0.25, TempK: 413}, // hotter corner
		{Years: -1, TempK: 350},   // fresh with an (ignored) override
	}
	g := NewCornerGrid(base, m, corners)
	for i, c := range corners {
		got := g.Library(i)
		if c.Years <= 0 {
			if got != nil {
				t.Errorf("corner %d (%+v): fresh corner produced a library", i, c)
			}
			continue
		}
		model := m
		if c.TempK != 0 && c.TempK != m.TempK {
			clone := *m
			clone.TempK = c.TempK
			model = &clone
		}
		want := NewLibrary(base, model, c.Years)
		if got == nil {
			t.Fatalf("corner %d (%+v): no library", i, c)
		}
		if !reflect.DeepEqual(got.factors, want.factors) {
			t.Errorf("corner %d (%+v): factor tables differ from NewLibrary", i, c)
		}
		if !reflect.DeepEqual(got.spGrid, want.spGrid) {
			t.Errorf("corner %d (%+v): SP grids differ", i, c)
		}
		if got.Years != want.Years || !reflect.DeepEqual(got.Model, want.Model) || got.Base != want.Base {
			t.Errorf("corner %d (%+v): library metadata differs", i, c)
		}
	}
}

// TestDelayFactorArrheniusHoist pins that supplying the Arrhenius factor
// externally (the bulk-characterization path) is bit-identical to the
// public DelayFactor, at the default and at a shifted temperature.
func TestDelayFactorArrheniusHoist(t *testing.T) {
	for _, m := range []*Model{Default(), func() *Model { m := Default(); m.TempK = 348.5; return m }()} {
		arr := m.arrhenius()
		for _, k := range []cell.Kind{cell.BUF, cell.XOR2, cell.CLKBUF, cell.DFF} {
			for _, sp := range []float64{0, 0.13, 0.5, 0.997, 1} {
				for _, yr := range []float64{0, 0.5, 3, 10, 25} {
					if got, want := m.delayFactorArr(k, sp, yr, arr), m.DelayFactor(k, sp, yr); got != want {
						t.Fatalf("delayFactorArr(%v, %v, %v) = %v, DelayFactor = %v", k, sp, yr, got, want)
					}
				}
			}
		}
	}
}

// BenchmarkNewLibrary guards the Arrhenius hoist: one characterization
// is 41 grid points × every cell kind, and the temperature exponential
// must be computed once per corner, not once per point.
func BenchmarkNewLibrary(b *testing.B) {
	base := cell.Lib28()
	m := Default()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		NewLibrary(base, m, 10)
	}
}

// BenchmarkCornerGrid measures the amortized per-corner characterization
// cost of the batched path (16 corners per grid).
func BenchmarkCornerGrid(b *testing.B) {
	base := cell.Lib28()
	m := Default()
	corners := make([]CornerSpec, 16)
	for i := range corners {
		corners[i] = CornerSpec{Years: 10 * float64(i+1) / 16}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		NewCornerGrid(base, m, corners)
	}
}
