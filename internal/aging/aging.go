// Package aging models transistor aging: the reaction-diffusion BTI model
// of the paper's Eq. 1 mapped to switching-delay degradation per standard
// cell. It replaces the paper's SPICE characterization step — the paper
// itself reduces that step to "delay degradation as a function of signal
// probability and time" (its Figure 4), which this package computes
// analytically and tabulates as an aging-aware timing library.
//
// Stress model: BTI stress on a cell's pull-up network accumulates while
// the cell's output idles low, so cells with a low signal probability age
// fastest (§2.3.1 of the paper; its Table 1 calls SP 0.13 "particularly
// extreme"). Even a cell that toggles constantly has each device under
// stress half the time, so degradation has a nonzero floor — the paper's
// Figure 8 shows the same floor at a 1.9% delay increase.
package aging

import (
	"math"

	"repro/internal/cell"
)

// Boltzmann constant in eV/K.
const kBoltzmann = 8.617333262e-5

// Model holds the calibration of the reaction-diffusion aging model.
type Model struct {
	// DegMin is the fractional delay degradation of an average-
	// sensitivity cell at SP=1 (minimal stress) after Lifetime years.
	DegMin float64
	// DegMax is the fractional degradation at SP=0 (maximal stress).
	DegMax float64
	// Beta is the stress exponent: degradation scales with
	// (1-SP)^Beta between the DegMin and DegMax anchors.
	Beta float64
	// TimeExp is the time-power-law exponent of the reaction-diffusion
	// model; 1/6 per Eq. 1.
	TimeExp float64
	// Lifetime is the reference lifetime in years at which DegMin/DegMax
	// are anchored (10 years, the mission-critical assumption of §3.2.2).
	Lifetime float64
	// TempK and RefTempK scale degradation with operating temperature
	// via the Arrhenius factor exp(Ea/k·(1/RefTempK - 1/TempK)).
	TempK    float64
	RefTempK float64
	// EaEV is the activation energy in eV.
	EaEV float64
}

// Default returns the model calibrated to the paper's observations: a
// 1.9%-6% degradation band at 10 years for a 28nm library, with the
// worst-case (hot) corner equal to the reference.
func Default() *Model {
	return &Model{
		DegMin:   0.019,
		DegMax:   0.062,
		Beta:     1.0,
		TimeExp:  1.0 / 6.0,
		Lifetime: 10,
		TempK:    398, // 125C signoff corner
		RefTempK: 398,
		EaEV:     0.49,
	}
}

// kindSensitivity captures that cell types degrade at different rates
// (different stacking, drive strength and internal node stress). Clock
// cells are high-drive and particularly exposed — the source of aged
// clock skew.
var kindSensitivity = [cell.NumKinds]float64{
	cell.TIE0: 0, cell.TIE1: 0,
	cell.BUF: 0.95, cell.INV: 0.85,
	cell.AND2: 1.0, cell.OR2: 1.0,
	cell.NAND2: 0.9, cell.NOR2: 0.95,
	cell.XOR2: 1.1, cell.XNOR2: 1.1,
	cell.MUX2: 1.05, cell.AOI21: 0.95, cell.OAI21: 0.95,
	// High-drive clock cells are the most exposed: asymmetric clock-tree
	// aging is a first-order skew mechanism (Gabbay et al., DVCON'23,
	// cited by the paper as the source of its hold violations).
	cell.DFF: 0.9, cell.CLKBUF: 2.2, cell.CLKGATE: 2.2,
}

// Sensitivity returns the relative aging sensitivity of a cell kind.
func Sensitivity(k cell.Kind) float64 { return kindSensitivity[k] }

// Stress converts a signal probability into a normalized BTI stress in
// [0, 1]: the fraction of lifetime the cell's pull-up spends under bias.
func (m *Model) Stress(sp float64) float64 {
	if sp < 0 {
		sp = 0
	}
	if sp > 1 {
		sp = 1
	}
	return 1 - sp
}

// arrhenius is the temperature acceleration factor relative to the
// reference temperature.
func (m *Model) arrhenius() float64 {
	return math.Exp(m.EaEV / kBoltzmann * (1/m.RefTempK - 1/m.TempK))
}

// DeltaVthNorm returns the normalized threshold-voltage shift (1.0 = the
// shift that produces DegMax delay degradation for a unit-sensitivity
// cell at the reference lifetime): stress^Beta · (t/Lifetime)^TimeExp,
// temperature-accelerated.
func (m *Model) DeltaVthNorm(sp, years float64) float64 {
	if years <= 0 {
		return 0
	}
	s := m.Stress(sp)
	return math.Pow(s, m.Beta) * math.Pow(years/m.Lifetime, m.TimeExp) * m.arrhenius()
}

// DelayFactor returns the multiplicative delay-degradation factor (>= 1)
// of a cell of kind k with signal probability sp after the given number
// of years. The factor interpolates between the DegMin floor (every
// switching device is stressed half the time) and the DegMax ceiling
// (statically stressed), scaled by the cell kind's sensitivity.
func (m *Model) DelayFactor(k cell.Kind, sp, years float64) float64 {
	if years <= 0 {
		return 1
	}
	return m.delayFactorArr(k, sp, years, m.arrhenius())
}

// delayFactorArr is DelayFactor with the Arrhenius factor supplied by the
// caller, so bulk characterization (NewLibrary, NewCornerGrid, curve
// sampling) computes the math.Exp once per corner instead of once per
// grid point. The expression is kept term-for-term identical to the
// inline form so hoisting never changes a single bit of the result.
func (m *Model) delayFactorArr(k cell.Kind, sp, years, arr float64) float64 {
	if years <= 0 {
		return 1
	}
	timeTemp := math.Pow(years/m.Lifetime, m.TimeExp) * arr
	frac := m.DegMin + (m.DegMax-m.DegMin)*math.Pow(m.Stress(sp), m.Beta)
	return 1 + frac*timeTemp*Sensitivity(k)
}

// Recovery returns the fraction of accumulated degradation remaining
// after the stress is removed for recoveryYears (partial BTI recovery,
// §2.3.3). The fast-recovery component anneals on a square-root-of-time
// profile; roughly half of the shift is permanent.
func (m *Model) Recovery(stressYears, recoveryYears float64) float64 {
	if recoveryYears <= 0 || stressYears <= 0 {
		return 1
	}
	recoverable := 0.5
	r := math.Sqrt(recoveryYears / (recoveryYears + stressYears))
	return 1 - recoverable*r
}
