package aging

import "repro/internal/cell"

// Library is the pre-computed aging-aware timing library: for every cell
// kind it tabulates the delay-degradation factor over a grid of signal
// probabilities, at a fixed lifetime. The paper pre-computes the same
// characterization once per standard-cell library to accelerate the
// aging-aware STA (§3.2.2); STA then looks cells up by their profiled SP.
type Library struct {
	Base  *cell.Library
	Model *Model
	Years float64

	spGrid  []float64
	factors [cell.NumKinds][]float64
}

// gridPoints is the SP characterization resolution.
const gridPoints = 41

// NewLibrary characterizes the base timing library against the aging
// model at the given lifetime.
func NewLibrary(base *cell.Library, m *Model, years float64) *Library {
	l := &Library{Base: base, Model: m, Years: years}
	l.spGrid = make([]float64, gridPoints)
	for i := range l.spGrid {
		l.spGrid[i] = float64(i) / float64(gridPoints-1)
	}
	for k := 0; k < cell.NumKinds; k++ {
		l.factors[k] = make([]float64, gridPoints)
		for i, sp := range l.spGrid {
			l.factors[k][i] = m.DelayFactor(cell.Kind(k), sp, years)
		}
	}
	return l
}

// Factor returns the tabulated delay-degradation factor for kind k at
// signal probability sp, with linear interpolation between grid points.
func (l *Library) Factor(k cell.Kind, sp float64) float64 {
	if sp <= 0 {
		return l.factors[k][0]
	}
	if sp >= 1 {
		return l.factors[k][gridPoints-1]
	}
	pos := sp * float64(gridPoints-1)
	i := int(pos)
	frac := pos - float64(i)
	return l.factors[k][i]*(1-frac) + l.factors[k][i+1]*frac
}

// AgedTiming returns the cell timing with aged propagation delays. Both
// the minimum and maximum delays slow by the same factor (the whole cell
// drives weaker); constraint windows (setup/hold) are unchanged — they
// are properties of the capturing flip-flop's sampling circuit that the
// paper's model leaves nominal.
func (l *Library) AgedTiming(k cell.Kind, sp float64) cell.Timing {
	t := l.Base.Timing[k]
	f := l.Factor(k, sp)
	t.DelayMin *= f
	t.DelayMax *= f
	return t
}

// CurvePoint is one sample of a degradation curve (the paper's Figure 4).
type CurvePoint struct {
	Years  float64
	Factor float64 // multiplicative delay factor
}

// DegradationCurve samples the delay degradation of a cell kind at a
// fixed SP over time — one curve of Figure 4.
func DegradationCurve(m *Model, k cell.Kind, sp float64, maxYears float64, points int) []CurvePoint {
	out := make([]CurvePoint, points)
	for i := 0; i < points; i++ {
		yr := maxYears * float64(i) / float64(points-1)
		out[i] = CurvePoint{Years: yr, Factor: m.DelayFactor(k, sp, yr)}
	}
	return out
}
