package aging

import (
	"math"

	"repro/internal/cell"
)

// Library is the pre-computed aging-aware timing library: for every cell
// kind it tabulates the delay-degradation factor over a grid of signal
// probabilities, at a fixed lifetime. The paper pre-computes the same
// characterization once per standard-cell library to accelerate the
// aging-aware STA (§3.2.2); STA then looks cells up by their profiled SP.
type Library struct {
	Base  *cell.Library
	Model *Model
	Years float64

	spGrid  []float64
	factors [cell.NumKinds][]float64
}

// gridPoints is the SP characterization resolution.
const gridPoints = 41

// spFracGrid tabulates the SP grid and the corner-independent stress
// fraction DegMin + (DegMax-DegMin)·stress^Beta at each grid point. The
// fraction depends only on the model's degradation anchors, never on the
// lifetime or temperature, so one tabulation serves every corner of a
// CornerGrid.
func spFracGrid(m *Model) (spGrid, frac []float64) {
	spGrid = make([]float64, gridPoints)
	frac = make([]float64, gridPoints)
	for i := range spGrid {
		sp := float64(i) / float64(gridPoints-1)
		spGrid[i] = sp
		frac[i] = m.DegMin + (m.DegMax-m.DegMin)*math.Pow(m.Stress(sp), m.Beta)
	}
	return spGrid, frac
}

// characterize fills one library from pre-tabulated stress fractions.
// The per-point expression mirrors Model.delayFactorArr term for term
// (1 + frac·timeTemp·sensitivity), so the result is bit-identical to
// calling DelayFactor at every grid point.
func characterize(base *cell.Library, m *Model, years float64, spGrid, frac []float64) *Library {
	l := &Library{Base: base, Model: m, Years: years, spGrid: spGrid}
	var timeTemp float64
	if years > 0 {
		timeTemp = math.Pow(years/m.Lifetime, m.TimeExp) * m.arrhenius()
	}
	slab := make([]float64, cell.NumKinds*gridPoints)
	for k := 0; k < cell.NumKinds; k++ {
		row := slab[k*gridPoints : (k+1)*gridPoints : (k+1)*gridPoints]
		if years > 0 {
			s := Sensitivity(cell.Kind(k))
			for i := range row {
				row[i] = 1 + frac[i]*timeTemp*s
			}
		} else {
			for i := range row {
				row[i] = 1
			}
		}
		l.factors[k] = row
	}
	return l
}

// NewLibrary characterizes the base timing library against the aging
// model at the given lifetime.
func NewLibrary(base *cell.Library, m *Model, years float64) *Library {
	spGrid, frac := spFracGrid(m)
	return characterize(base, m, years, spGrid, frac)
}

// CornerSpec names one corner of a multi-corner characterization: an
// assumed lifetime and an optional operating-temperature override in
// Kelvin (zero keeps the model's TempK).
type CornerSpec struct {
	Years float64
	TempK float64
}

// CornerGrid is a batch of aging libraries characterized in a single
// pass, the library-side half of the batched multi-corner STA: the
// model's degradation factor is separable into an SP-dependent stress
// fraction (shared by every corner) and a per-corner time-temperature
// scalar, so K corners cost one stress tabulation plus one Pow/Exp pair
// per corner instead of K independent NewLibrary characterizations.
type CornerGrid struct {
	Base    *cell.Library
	Corners []CornerSpec

	libs []*Library
}

// NewCornerGrid characterizes the base library at every corner at once.
// Each produced library is bit-identical to NewLibrary run at the same
// corner (asserted by TestCornerGridMatchesNewLibrary); corners with
// Years <= 0 are fresh and get no aged library.
func NewCornerGrid(base *cell.Library, m *Model, corners []CornerSpec) *CornerGrid {
	g := &CornerGrid{
		Base:    base,
		Corners: append([]CornerSpec(nil), corners...),
		libs:    make([]*Library, len(corners)),
	}
	spGrid, frac := spFracGrid(m)
	for ci, c := range corners {
		if c.Years <= 0 {
			continue
		}
		model := m
		if c.TempK != 0 && c.TempK != m.TempK {
			clone := *m
			clone.TempK = c.TempK
			model = &clone
		}
		g.libs[ci] = characterize(base, model, c.Years, spGrid, frac)
	}
	return g
}

// Library returns the aged library for corner i, or nil for a fresh
// (Years <= 0) corner.
func (g *CornerGrid) Library(i int) *Library { return g.libs[i] }

// Factor returns the tabulated delay-degradation factor for kind k at
// signal probability sp, with linear interpolation between grid points.
func (l *Library) Factor(k cell.Kind, sp float64) float64 {
	if sp <= 0 {
		return l.factors[k][0]
	}
	if sp >= 1 {
		return l.factors[k][gridPoints-1]
	}
	pos := sp * float64(gridPoints-1)
	i := int(pos)
	frac := pos - float64(i)
	return l.factors[k][i]*(1-frac) + l.factors[k][i+1]*frac
}

// FactorRow exposes the tabulated factor row for kind k (one value per
// SP grid point). The batched STA hoists the grid position and
// interpolation weights out of its per-corner loop and indexes rows
// directly; the interpolation expression must mirror Factor term for
// term. Callers must not mutate the row.
func (l *Library) FactorRow(k cell.Kind) []float64 { return l.factors[k] }

// AgedTiming returns the cell timing with aged propagation delays. Both
// the minimum and maximum delays slow by the same factor (the whole cell
// drives weaker); constraint windows (setup/hold) are unchanged — they
// are properties of the capturing flip-flop's sampling circuit that the
// paper's model leaves nominal.
func (l *Library) AgedTiming(k cell.Kind, sp float64) cell.Timing {
	t := l.Base.Timing[k]
	f := l.Factor(k, sp)
	t.DelayMin *= f
	t.DelayMax *= f
	return t
}

// CurvePoint is one sample of a degradation curve (the paper's Figure 4).
type CurvePoint struct {
	Years  float64
	Factor float64 // multiplicative delay factor
}

// DegradationCurve samples the delay degradation of a cell kind at a
// fixed SP over time — one curve of Figure 4.
func DegradationCurve(m *Model, k cell.Kind, sp float64, maxYears float64, points int) []CurvePoint {
	arr := m.arrhenius()
	out := make([]CurvePoint, points)
	for i := 0; i < points; i++ {
		yr := maxYears * float64(i) / float64(points-1)
		out[i] = CurvePoint{Years: yr, Factor: m.delayFactorArr(k, sp, yr, arr)}
	}
	return out
}
