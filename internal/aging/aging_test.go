package aging

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/cell"
)

func TestDelayFactorAnchors(t *testing.T) {
	m := Default()
	// A unit-sensitivity cell (AND2) at 10 years.
	lo := m.DelayFactor(cell.AND2, 1.0, 10)
	hi := m.DelayFactor(cell.AND2, 0.0, 10)
	if math.Abs(lo-1-m.DegMin) > 1e-12 {
		t.Errorf("SP=1 factor = %v, want 1+%v", lo, m.DegMin)
	}
	if math.Abs(hi-1-m.DegMax) > 1e-12 {
		t.Errorf("SP=0 factor = %v, want 1+%v", hi, m.DegMax)
	}
}

func TestDelayFactorMonotonic(t *testing.T) {
	m := Default()
	f := func(sp1, sp2, yr1, yr2 float64) bool {
		sp1 = math.Abs(math.Mod(sp1, 1))
		sp2 = math.Abs(math.Mod(sp2, 1))
		yr1 = math.Abs(math.Mod(yr1, 10))
		yr2 = math.Abs(math.Mod(yr2, 10))
		// Lower SP (more stress) ages at least as much, at equal time.
		loSP, hiSP := math.Min(sp1, sp2), math.Max(sp1, sp2)
		if m.DelayFactor(cell.XOR2, loSP, 5) < m.DelayFactor(cell.XOR2, hiSP, 5) {
			return false
		}
		// More time ages at least as much, at equal SP.
		loY, hiY := math.Min(yr1, yr2), math.Max(yr1, yr2)
		return m.DelayFactor(cell.XOR2, 0.3, hiY) >= m.DelayFactor(cell.XOR2, 0.3, loY)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestFrontLoadedDegradation(t *testing.T) {
	// §2.3.3: ~70% of the 10-year Vth degradation occurs in year one.
	m := Default()
	y1 := m.DeltaVthNorm(0, 1)
	y10 := m.DeltaVthNorm(0, 10)
	ratio := y1 / y10
	if ratio < 0.6 || ratio > 0.75 {
		t.Errorf("year-1/year-10 degradation ratio = %v, want ~0.68 (10^(-1/6))", ratio)
	}
}

func TestFreshCircuitUnaged(t *testing.T) {
	m := Default()
	if f := m.DelayFactor(cell.XOR2, 0.5, 0); f != 1 {
		t.Errorf("factor at t=0 = %v, want 1", f)
	}
}

func TestClockCellsMoreSensitive(t *testing.T) {
	m := Default()
	if m.DelayFactor(cell.CLKBUF, 0, 10) <= m.DelayFactor(cell.INV, 0, 10) {
		t.Error("clock buffers should age faster than plain inverters")
	}
}

func TestTemperatureAcceleration(t *testing.T) {
	hot := Default()
	hot.TempK = 398
	cold := Default()
	cold.TempK = 328
	if hot.DeltaVthNorm(0, 10) <= cold.DeltaVthNorm(0, 10) {
		t.Error("higher temperature should accelerate aging")
	}
}

func TestRecovery(t *testing.T) {
	m := Default()
	if r := m.Recovery(5, 0); r != 1 {
		t.Error("no recovery time means full degradation")
	}
	r1 := m.Recovery(5, 1)
	r2 := m.Recovery(5, 5)
	if !(r2 < r1 && r1 < 1) {
		t.Errorf("recovery should increase with time: %v, %v", r1, r2)
	}
	if r2 < 0.5 {
		t.Errorf("at most half the shift recovers, got remaining %v", r2)
	}
}

func TestLibraryInterpolation(t *testing.T) {
	m := Default()
	lib := NewLibrary(cell.Lib28(), m, 10)
	f := func(spRaw float64) bool {
		sp := math.Abs(math.Mod(spRaw, 1))
		want := m.DelayFactor(cell.NAND2, sp, 10)
		got := lib.Factor(cell.NAND2, sp)
		return math.Abs(got-want) < 1e-4 // linear interpolation error
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
	// Out-of-range SPs clamp.
	if lib.Factor(cell.NAND2, -0.5) != lib.Factor(cell.NAND2, 0) {
		t.Error("negative SP should clamp")
	}
	if lib.Factor(cell.NAND2, 1.5) != lib.Factor(cell.NAND2, 1) {
		t.Error("SP > 1 should clamp")
	}
}

func TestAgedTiming(t *testing.T) {
	lib := NewLibrary(cell.Lib28(), Default(), 10)
	fresh := cell.Lib28().Timing[cell.XOR2]
	aged := lib.AgedTiming(cell.XOR2, 0.1)
	if aged.DelayMax <= fresh.DelayMax || aged.DelayMin <= fresh.DelayMin {
		t.Error("aged delays should exceed fresh delays")
	}
	if aged.Setup != fresh.Setup || aged.Hold != fresh.Hold {
		t.Error("constraint windows should stay nominal")
	}
	ratio := aged.DelayMax / fresh.DelayMax
	if ratio > 1.08 {
		t.Errorf("degradation %v out of the modeled band", ratio)
	}
}

func TestDegradationCurveShape(t *testing.T) {
	m := Default()
	curve := DegradationCurve(m, cell.XOR2, 0.1, 10, 21)
	if len(curve) != 21 || curve[0].Years != 0 || curve[0].Factor != 1 {
		t.Fatalf("curve anchors wrong: %+v", curve[0])
	}
	for i := 1; i < len(curve); i++ {
		if curve[i].Factor < curve[i-1].Factor {
			t.Fatal("degradation curve must be nondecreasing")
		}
	}
	// Lower SP curve dominates higher SP curve pointwise.
	hi := DegradationCurve(m, cell.XOR2, 0.9, 10, 21)
	for i := range curve {
		if curve[i].Factor < hi[i].Factor {
			t.Fatal("SP=0.1 curve should dominate SP=0.9 curve")
		}
	}
}
