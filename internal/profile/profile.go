// Package profile implements the basic-block profiling that drives
// Profile-Guided Test Integration (§3.4.2): it derives the static basic
// blocks of an assembled image, counts their executions during a
// representative run, and reports the totals the site-selection
// heuristic needs.
package profile

import (
	"sort"

	"repro/internal/cpu"
	"repro/internal/isa"
)

// Block is one static basic block.
type Block struct {
	Index  int    // block number, in address order
	Start  uint32 // address of the leader instruction
	StartI int    // instruction index of the leader in the image
	Insts  int    // static size in instructions
	Count  uint64 // dynamic executions observed
}

// Profile is the result of a profiling run.
type Profile struct {
	Blocks []Block
	// TotalInsts is the number of dynamically executed instructions.
	TotalInsts uint64
	// TotalCycles is the cycle count of the profiling run.
	TotalCycles uint64
}

// isControl reports whether an instruction ends a basic block.
func isControl(op isa.Op) bool {
	switch op {
	case isa.JAL, isa.JALR, isa.BEQ, isa.BNE, isa.BLT, isa.BGE,
		isa.BLTU, isa.BGEU, isa.ECALL, isa.EBREAK:
		return true
	}
	return false
}

// Leaders computes the basic-block leader instruction indices of an
// image: the entry point, every branch/jump target, and every
// instruction following a control transfer.
func Leaders(img *isa.Image) []int {
	lead := map[int]bool{0: true}
	for i, inst := range img.Insts {
		switch inst.Op {
		case isa.JAL, isa.BEQ, isa.BNE, isa.BLT, isa.BGE, isa.BLTU, isa.BGEU:
			t := i + int(inst.Imm)/4
			if t >= 0 && t < len(img.Insts) {
				lead[t] = true
			}
			lead[i+1] = true
		case isa.JALR, isa.ECALL, isa.EBREAK:
			lead[i+1] = true
		}
	}
	var out []int
	for i := range lead {
		if i < len(img.Insts) {
			out = append(out, i)
		}
	}
	sort.Ints(out)
	return out
}

// Static derives the blocks of an image with zero counts.
func Static(img *isa.Image) *Profile {
	leaders := Leaders(img)
	p := &Profile{}
	for i, l := range leaders {
		end := len(img.Insts)
		if i+1 < len(leaders) {
			end = leaders[i+1]
		}
		p.Blocks = append(p.Blocks, Block{
			Index:  i,
			Start:  img.Base + 4*uint32(l),
			StartI: l,
			Insts:  end - l,
		})
	}
	return p
}

// Collect runs the image on a fresh behavioural CPU with block counters
// attached (the counter instrumentation of §3.4.2) and returns the
// filled profile. The run must exit cleanly; a nil profile is returned
// otherwise.
func Collect(img *isa.Image, memSize int, maxCycles uint64) *Profile {
	p := Static(img)
	byAddr := make(map[uint32]*Block, len(p.Blocks))
	for i := range p.Blocks {
		byAddr[p.Blocks[i].Start] = &p.Blocks[i]
	}
	c := cpu.New(memSize)
	c.InstHook = func(pc uint32, inst isa.Inst) {
		if b, ok := byAddr[pc]; ok {
			b.Count++
		}
	}
	c.Load(img)
	if c.Run(maxCycles) != cpu.HaltExit {
		return nil
	}
	p.TotalInsts = c.Instret
	p.TotalCycles = c.Cycles
	return p
}
