package profile

import (
	"testing"

	"repro/internal/isa"
)

func mustAsm(t testing.TB, a *isa.Asm) *isa.Image {
	t.Helper()
	img, err := a.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	return img
}

func TestLeadersAndStatic(t *testing.T) {
	a := isa.NewAsm()
	a.Li(isa.T0, 3) // 1 inst (small imm)
	a.Label("loop")
	a.Addi(isa.T0, isa.T0, -1)
	a.Bnez(isa.T0, "loop")
	a.Li(isa.A0, 0)
	a.Ecall()
	img := mustAsm(t, a)
	leaders := Leaders(img)
	// Leaders: entry (0), loop target (1), after-branch (3).
	want := []int{0, 1, 3}
	if len(leaders) != len(want) {
		t.Fatalf("leaders = %v", leaders)
	}
	for i := range want {
		if leaders[i] != want[i] {
			t.Fatalf("leaders = %v, want %v", leaders, want)
		}
	}
	p := Static(img)
	if len(p.Blocks) != 3 {
		t.Fatalf("blocks = %d", len(p.Blocks))
	}
	if p.Blocks[1].Insts != 2 {
		t.Errorf("loop block size = %d, want 2", p.Blocks[1].Insts)
	}
}

func TestCollectCounts(t *testing.T) {
	a := isa.NewAsm()
	a.Li(isa.T0, 5)
	a.Label("loop")
	a.Addi(isa.T0, isa.T0, -1)
	a.Bnez(isa.T0, "loop")
	a.Li(isa.A0, 0)
	a.Ecall()
	img := mustAsm(t, a)
	p := Collect(img, 1<<20, 1_000_000)
	if p == nil {
		t.Fatal("collect failed")
	}
	var loopCount uint64
	for _, b := range p.Blocks {
		if b.StartI == 1 {
			loopCount = b.Count
		}
	}
	if loopCount != 5 {
		t.Errorf("loop executed %d times, want 5", loopCount)
	}
	if p.TotalInsts == 0 || p.TotalCycles < p.TotalInsts {
		t.Errorf("totals wrong: %d insts %d cycles", p.TotalInsts, p.TotalCycles)
	}
}

func TestCollectFailure(t *testing.T) {
	a := isa.NewAsm()
	a.Ebreak()
	img := mustAsm(t, a)
	if Collect(img, 1<<20, 1000) != nil {
		t.Error("non-exiting program must yield nil profile")
	}
}
