package engine

// splitmix64 is the per-stream generator behind the random-stimulus
// profiler: tiny state, full 64-bit output (one fresh word = 64
// independent lane bits), and seedable from par.Seed-derived task seeds
// so parallel chunks never share generator state.
type splitmix64 uint64

func (s *splitmix64) next() uint64 {
	*s += 0x9E3779B97F4A7C15
	z := uint64(*s)
	z = (z ^ z>>30) * 0xBF58476D1CE4E5B9
	z = (z ^ z>>27) * 0x94D049BB133111EB
	return z ^ z>>31
}

// RandomProfile collects an aggregate SP profile of the compiled program
// under uniform random stimulus: every bit of every input port is driven
// with a fresh random word each cycle, so one packed cycle advances 64
// independent random stimulus streams. The result covers cycles x 64
// lane-cycles of observation.
//
// The profile is a deterministic function of (program, cycles, seed)
// alone — lane l's stream is fixed by the seed, not by scheduling — which
// is what lets the parallel chunked profiler in internal/core partition
// work freely while staying byte-identical at every Parallelism setting.
func RandomProfile(p *Program, cycles int, seed int64) *Profile {
	e := NewPacked(p)
	e.EnableSP()
	rng := splitmix64(seed)
	inputs := p.Netlist.Inputs
	for c := 0; c < cycles; c++ {
		for _, port := range inputs {
			for _, n := range port.Bits {
				e.vals[n] = rng.next()
			}
		}
		e.Step()
	}
	return e.Profile()
}
