package engine

import "repro/internal/netlist"

// Profile is a per-net signal-probability profile plus the observation
// length, consumed by the aging analysis. It lives in the engine because
// both interpreters produce it: the scalar simulator (internal/sim, one
// observed cycle per Step) and the packed evaluator (64 lane-cycles per
// Step). internal/sim re-exports it as sim.Profile, the name the rest of
// the workflow uses.
type Profile struct {
	Cycles uint64
	SP     []float64 // indexed by NetID
	// Ones holds the raw per-net residency counters SP is derived from
	// (multiples of 0.5, so sums over partial profiles are exact in
	// float64). They make profiles mergeable without re-rounding: the
	// parallel workload-profiling path collects one partial profile per
	// task and MergeProfiles reconstructs the exact combined SP.
	Ones []float64
}

// MergeProfiles combines partial profiles collected on the same netlist
// (same net count) into one, as if a single simulator had observed all
// cycles. Profiles with zero cycles contribute nothing. The raw Ones
// counters are summed in argument order and are exact multiples of 0.5,
// so the result is independent of how the observation was partitioned —
// the invariant the parallel profiling path relies on. Scalar and
// packed partials mix freely: a packed partial is simply 64 observations
// summed up front.
func MergeProfiles(ps ...*Profile) *Profile {
	nets := 0
	for _, p := range ps {
		if p != nil && len(p.Ones) > nets {
			nets = len(p.Ones)
		}
	}
	out := &Profile{SP: make([]float64, nets), Ones: make([]float64, nets)}
	for _, p := range ps {
		if p == nil || p.Cycles == 0 {
			continue
		}
		out.Cycles += p.Cycles
		for n, v := range p.Ones {
			out.Ones[n] += v
		}
	}
	if out.Cycles == 0 {
		return out
	}
	for n := range out.SP {
		out.SP[n] = out.Ones[n] / float64(out.Cycles)
	}
	return out
}

// CellSP returns the SP of every cell's output net, keyed by CellID — the
// shape of the paper's Table 1.
func (p *Profile) CellSP(nl *netlist.Netlist) map[netlist.CellID]float64 {
	m := make(map[netlist.CellID]float64, len(nl.Cells))
	for i, c := range nl.Cells {
		m[netlist.CellID(i)] = p.SP[c.Out]
	}
	return m
}
