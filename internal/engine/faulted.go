package engine

import (
	"fmt"

	"repro/internal/cell"
	"repro/internal/netlist"
)

// This file is the concurrent-fault-simulation core: a 64-lane packed
// evaluator whose lanes disagree. Lane 0 runs the unmodified (golden)
// netlist; lanes 1-63 each carry an independent timing-violation
// failure model, expressed as a lane-masked overlay on the shared
// compiled Program instead of as 63 separately instrumented netlists.
//
// An Overlay is the engine-level mirror of fault.Spec (the engine
// cannot import internal/fault — fault sits above the engine via
// internal/sta — so the injection plane translates specs into overlays).
// The overlay semantics are bit-exact with fault.FailingNetlist's
// instrumentation: the endpoint flip-flop Y samples (active ? C : D)
// where active compares X(t) with X(t-1) (setup, via a history
// register) or with X(t+1)=X.D (hold), optionally edge-filtered, and C
// is a constant or the output of a 16-bit LFSR clocked with the root
// clock. Because every embedded LFSR in a failing netlist is seeded and
// clocked identically, one shared LFSR word serves all lanes and sites.
//
// FaultedPacked exposes Settle and Edge as separate phases (instead of
// the scalar simulator's fused Step) so a driver can read settled
// outputs, compare lanes word-wise, and retire diverged lanes before
// the clock edge — mirroring the check-then-step structure of
// module.Driver.Exec exactly.

// OverlayCheck selects the timing-violation flavor of an overlay.
type OverlayCheck uint8

// Overlay check types (mirror sta.Setup / sta.Hold).
const (
	OverlaySetup OverlayCheck = iota
	OverlayHold
)

// OverlayC selects the wrong value C sampled on a violation (mirror
// fault.C0 / fault.C1 / fault.CRandom).
type OverlayC uint8

// Overlay C settings.
const (
	OverlayC0 OverlayC = iota
	OverlayC1
	OverlayCRandom
)

// OverlayEdge filters activation to a transition direction of X (mirror
// fault.AnyChange / fault.RisingEdge / fault.FallingEdge).
type OverlayEdge uint8

// Overlay edge filters.
const (
	OverlayAnyChange OverlayEdge = iota
	OverlayRisingEdge
	OverlayFallingEdge
)

// overlayLFSRSeed matches the reset state of the hardware LFSR that
// fault.FailingNetlist embeds for CRandom sites (fault.addLFSR).
const overlayLFSRSeed = 0xACE1

// Overlay is one lane-masked failure site: in every lane of Lanes, the
// capturing flip-flop End misbehaves per the timing-violation model
// whenever the launching flip-flop Start satisfies the activation
// condition. Lane 0 is reserved for the golden circuit and may not
// appear in any mask.
type Overlay struct {
	Lanes uint64 // lane mask; bit l applies this site to lane l
	Check OverlayCheck
	Start netlist.CellID // X: the launching flip-flop
	End   netlist.CellID // Y: the capturing flip-flop
	C     OverlayC
	Edge  OverlayEdge
}

// faultSite is one compiled overlay: net IDs resolved, the endpoint
// mapped to its Program DFF slot.
type faultSite struct {
	lanes    uint64
	dff      int32 // index into Program.DFFs (the endpoint Y)
	xQ       int32 // X's output net
	xD       int32 // X's D-input net
	histClk  int32 // X's clock net (clocks the setup history register)
	check    OverlayCheck
	c        OverlayC
	edge     OverlayEdge
	same     bool // Start == End: metastable, active unconditionally
	histInit bool // X's reset value seeds the history register
}

// FaultedProgram is a compiled Program plus compiled lane-masked
// overlays. Like the Program it is immutable and shareable; per-run
// state lives in FaultedPacked.
type FaultedProgram struct {
	Prog  *Program
	sites []faultSite
}

// CompileFaulted validates overlays against the program's netlist and
// binds them to its flip-flop slots. It rejects sites whose cells are
// out of range or not flip-flops, masks that claim the golden lane 0
// (or no lane at all), and two overlays driving the same endpoint in
// the same lane (the packed mirror of fault.FailingNetlistMulti's
// duplicate-endpoint rule).
func CompileFaulted(p *Program, overlays []Overlay) (*FaultedProgram, error) {
	nl := p.Netlist
	dffSlot := make(map[int32]int32, len(p.DFFs))
	for i := range p.DFFs {
		dffSlot[p.DFFs[i].Cell] = int32(i)
	}
	endLanes := make(map[int32]uint64)
	fp := &FaultedProgram{Prog: p, sites: make([]faultSite, 0, len(overlays))}
	for i, o := range overlays {
		if o.Lanes == 0 {
			return nil, fmt.Errorf("engine: overlay %d has an empty lane mask", i)
		}
		if o.Lanes&1 != 0 {
			return nil, fmt.Errorf("engine: overlay %d claims the golden lane 0", i)
		}
		for _, id := range []netlist.CellID{o.Start, o.End} {
			if id < 0 || int(id) >= len(nl.Cells) {
				return nil, fmt.Errorf("engine: overlay %d: cell %d out of range (%d cells)", i, id, len(nl.Cells))
			}
			if nl.Cells[id].Kind != cell.DFF {
				return nil, fmt.Errorf("engine: overlay %d: cell %d (%s) is not a flip-flop", i, id, nl.Cells[id].Name)
			}
		}
		slot := dffSlot[int32(o.End)]
		if endLanes[slot]&o.Lanes != 0 {
			return nil, fmt.Errorf("engine: overlay %d: endpoint %s already faulted in an overlapping lane",
				i, nl.Cells[o.End].Name)
		}
		endLanes[slot] |= o.Lanes
		x := nl.Cells[o.Start]
		fp.sites = append(fp.sites, faultSite{
			lanes:    o.Lanes,
			dff:      slot,
			xQ:       int32(x.Out),
			xD:       int32(x.In[0]),
			histClk:  int32(x.Clk),
			check:    o.Check,
			c:        o.C,
			edge:     o.Edge,
			same:     o.Start == o.End,
			histInit: x.Init,
		})
	}
	return fp, nil
}

// Sites returns the number of compiled overlay sites.
func (fp *FaultedProgram) Sites() int { return len(fp.sites) }

// FaultedPacked evaluates a FaultedProgram over 64 lanes: lane 0 is the
// golden circuit, every other lane the golden circuit plus its overlay
// sites. Retired lanes (Retire) drop out of overlay evaluation; the
// word-parallel base update they share with live lanes is unaffected.
type FaultedPacked struct {
	fp     *FaultedProgram
	prog   *Program
	vals   []uint64 // current word of every net
	dffBuf []uint64 // staged DFF next-state, one word per flip-flop
	hist   []uint64 // per site: X(t-1) history words (setup sites)
	lfsr   uint16   // shared CRandom source (all failing-netlist LFSRs run in lock-step)
	ret    uint64   // retired-lane mask
	cycles uint64
}

// NewFaultedPacked creates a faulted evaluator in the reset state.
func NewFaultedPacked(fp *FaultedProgram) *FaultedPacked {
	e := &FaultedPacked{
		fp:     fp,
		prog:   fp.Prog,
		vals:   make([]uint64, fp.Prog.NumNets),
		dffBuf: make([]uint64, len(fp.Prog.DFFs)),
		hist:   make([]uint64, len(fp.sites)),
	}
	e.Reset()
	return e
}

// Reset re-applies reset values in every lane: DFF Init words, overlay
// history registers from X's Init, the LFSR seed, and an empty
// retired mask.
func (e *FaultedPacked) Reset() {
	for i := range e.vals {
		e.vals[i] = 0
	}
	if e.prog.ClockRoot >= 0 {
		e.vals[e.prog.ClockRoot] = ^uint64(0)
	}
	for i := range e.prog.DFFs {
		if e.prog.DFFs[i].Init {
			e.vals[e.prog.DFFs[i].Out] = ^uint64(0)
		}
	}
	for i := range e.fp.sites {
		if e.fp.sites[i].histInit {
			e.hist[i] = ^uint64(0)
		} else {
			e.hist[i] = 0
		}
	}
	e.lfsr = overlayLFSRSeed
	e.ret = 0
	e.cycles = 0
}

// SetInput drives a (multi-bit) input port with the low len(port) bits
// of val, broadcast to all 64 lanes: every lane sees the same stimulus,
// as the packed campaign replays one program against 63 fault variants.
func (e *FaultedPacked) SetInput(name string, val uint64) {
	p, ok := e.prog.Netlist.FindInput(name)
	if !ok {
		panic(fmt.Sprintf("engine: no input port %q on %s", name, e.prog.Netlist.Name))
	}
	for i, n := range p.Bits {
		if val>>uint(i)&1 == 1 {
			e.vals[n] = ^uint64(0)
		} else {
			e.vals[n] = 0
		}
	}
}

// Word reads the current word of net n. Callers settle explicitly
// before reading combinational nets.
func (e *FaultedPacked) Word(n netlist.NetID) uint64 { return e.vals[n] }

// Lane reads the value of net n in a single lane.
func (e *FaultedPacked) Lane(n netlist.NetID, lane int) bool {
	return e.vals[n]>>uint(lane)&1 == 1
}

// ExtractLane copies one lane's settled value of every net into dst
// (len >= NumNets) — the state snapshot a retired lane's scalar
// continuation is seeded from.
func (e *FaultedPacked) ExtractLane(lane int, dst []bool) {
	for n, w := range e.vals {
		dst[n] = w>>uint(lane)&1 == 1
	}
}

// HistLane reads one lane of site si's history register (meaningful for
// setup sites with Start != End; false otherwise).
func (e *FaultedPacked) HistLane(si, lane int) bool {
	return e.hist[si]>>uint(lane)&1 == 1
}

// SetWord forces net n to a full word. Combinational nets are
// recomputed on the next Settle, so this is useful for seeding
// flip-flop outputs and primary inputs from a mid-run snapshot — the
// packed fault campaign resumes retired lanes this way.
func (e *FaultedPacked) SetWord(n netlist.NetID, w uint64) { e.vals[n] = w }

// SetHist forces site si's history-register word (snapshot seeding).
func (e *FaultedPacked) SetHist(si int, w uint64) { e.hist[si] = w }

// LFSR returns the shared CRandom LFSR state.
func (e *FaultedPacked) LFSR() uint16 { return e.lfsr }

// SetLFSR forces the shared CRandom LFSR state (snapshot seeding).
func (e *FaultedPacked) SetLFSR(v uint16) { e.lfsr = v }

// Retire removes lanes from overlay evaluation. Retired lanes keep
// evaluating as (meaningless) golden traffic in the word-parallel base
// update but cost nothing extra.
func (e *FaultedPacked) Retire(mask uint64) { e.ret |= mask }

// Retired returns the retired-lane mask.
func (e *FaultedPacked) Retired() uint64 { return e.ret }

// Cycles returns the number of executed clock cycles.
func (e *FaultedPacked) Cycles() uint64 { return e.cycles }

// Settle propagates all 64 lanes through the combinational logic in
// program order.
func (e *FaultedPacked) Settle() { settlePacked(e.prog, e.vals) }

// Edge completes the cycle: stage every flip-flop's base next-state,
// mix in the lane-masked faulty values at the overlay endpoints, update
// the overlay history registers, publish, and step the shared LFSR.
// All reads see pre-edge settled values — flip-flops, history registers
// and LFSR sample simultaneously, exactly like the instrumented cells
// of a failing netlist under the scalar simulator.
func (e *FaultedPacked) Edge() {
	vals := e.vals
	dffs := e.prog.DFFs
	for i := range dffs {
		f := &dffs[i]
		clk := vals[f.Clk]
		e.dffBuf[i] = (vals[f.D] & clk) | (vals[f.Out] &^ clk)
	}
	var cRnd uint64 // broadcast of the LFSR output bit (qs[15])
	if e.lfsr>>15&1 == 1 {
		cRnd = ^uint64(0)
	}
	for si := range e.fp.sites {
		s := &e.fp.sites[si]
		m := s.lanes &^ e.ret
		if m == 0 {
			continue
		}
		var active uint64
		if s.same {
			active = ^uint64(0)
		} else {
			var prev, cur uint64
			if s.check == OverlaySetup {
				prev, cur = e.hist[si], vals[s.xQ]
			} else {
				prev, cur = vals[s.xQ], vals[s.xD]
			}
			switch s.edge {
			case OverlayAnyChange:
				active = prev ^ cur
			case OverlayRisingEdge:
				active = ^prev & cur
			case OverlayFallingEdge:
				active = prev &^ cur
			}
		}
		var c uint64
		switch s.c {
		case OverlayC1:
			c = ^uint64(0)
		case OverlayCRandom:
			c = cRnd
		}
		f := &e.prog.DFFs[s.dff]
		clk := vals[f.Clk]
		faulty := (c & active) | (vals[f.D] &^ active)
		staged := (faulty & clk) | (vals[f.Out] &^ clk)
		e.dffBuf[s.dff] = (e.dffBuf[s.dff] &^ m) | (staged & m)
	}
	for si := range e.fp.sites {
		s := &e.fp.sites[si]
		if s.check == OverlaySetup && !s.same {
			clk := vals[s.histClk]
			e.hist[si] = (vals[s.xQ] & clk) | (e.hist[si] &^ clk)
		}
	}
	for i := range dffs {
		vals[dffs[i].Out] = e.dffBuf[i]
	}
	fb := (e.lfsr>>15 ^ e.lfsr>>13 ^ e.lfsr>>12 ^ e.lfsr>>10) & 1
	e.lfsr = e.lfsr<<1 | fb
	e.cycles++
}

// Step is Settle followed by Edge — one full cycle for drivers that do
// not need to observe the settled state in between.
func (e *FaultedPacked) Step() {
	e.Settle()
	e.Edge()
}
