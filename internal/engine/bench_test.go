package engine_test

import (
	"math/rand"
	"testing"

	"repro/internal/alu"
	"repro/internal/engine"
	"repro/internal/sim"
)

// BenchmarkSPProfile measures SP-profile collection under random
// stimulus on the ALU netlist, in both evaluators. The unit of work is
// one lane-cycle (one stimulus vector observed for one clock cycle), so
// ns/op is directly comparable: the scalar path runs b.N simulator
// steps, the packed path runs b.N/64 steps of 64 lanes each. The packed
// speedup recorded in EXPERIMENTS.md is scalar ns/op divided by packed
// ns/op.
func BenchmarkSPProfile(b *testing.B) {
	nl := alu.Build().Netlist
	prog := engine.Cached(nl)

	b.Run("scalar", func(b *testing.B) {
		s := sim.New(nl)
		s.EnableSP()
		rng := rand.New(rand.NewSource(1))
		var bufs [][]bool
		for _, p := range nl.Inputs {
			bufs = append(bufs, make([]bool, len(p.Bits)))
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for pi, p := range nl.Inputs {
				for j := range bufs[pi] {
					bufs[pi][j] = rng.Int63()&1 == 1
				}
				s.SetInputBits(p.Name, bufs[pi])
			}
			s.Step()
		}
		_ = s.Profile()
	})

	b.Run("packed", func(b *testing.B) {
		e := engine.NewPacked(prog)
		e.EnableSP()
		rng := rand.New(rand.NewSource(1))
		b.ResetTimer()
		for done := 0; done < b.N; done += engine.Lanes {
			for _, p := range nl.Inputs {
				for _, n := range p.Bits {
					e.SetNet(n, rng.Uint64())
				}
			}
			e.Step()
		}
		_ = e.Profile()
	})
}

// BenchmarkRandomSP measures the end-to-end profile-free SP path
// (engine.RandomProfile) per packed cycle.
func BenchmarkRandomSP(b *testing.B) {
	prog := engine.Cached(alu.Build().Netlist)
	b.ResetTimer()
	engine.RandomProfile(prog, b.N, 1)
}
