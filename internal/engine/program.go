// Package engine is the compiled evaluation core shared by every
// consumer that walks a netlist cycle by cycle: the functional simulator
// (internal/sim), the SP-profiling paths in internal/core, the
// failing-netlist replays of the test-quality experiments, and the CNF
// unroller of the bounded model checker (internal/bmc).
//
// Compile lowers a validated netlist.Netlist once into a Program: a
// dense, cache-friendly instruction stream in dependency (levelized
// topological) order with flattened input-net arrays, consecutive
// same-kind ops grouped into dispatch runs, and the sequential and
// clock-network structure precomputed (DFF list, clock-net membership).
// Two interpreters evaluate a Program:
//
//   - the scalar interpreter (scalar.go): one bool per net, preserving
//     the exact semantics — and byte-identical results — of the original
//     per-cell switch in internal/sim;
//   - the 64-lane packed interpreter (packed.go): one uint64 word per
//     net, each bit an independent stimulus stream, with SP residency
//     accumulated via popcount.
//
// Programs are immutable after Compile and safe to share read-only
// across the worker pool; Cached (cache.go) keys compiled programs by
// netlist identity so repeated replays of the same module skip
// re-lowering.
package engine

import (
	"fmt"

	"repro/internal/cell"
	"repro/internal/netlist"
)

// Op is one compiled combinational (or clock-network) cell evaluation.
// Inputs are flattened into a fixed-size array — netlist validation
// guarantees no cell exceeds cell.MaxArity inputs — so the interpreters
// never chase a per-cell slice header on the hot path.
type Op struct {
	Out  int32               // output net
	In   [cell.MaxArity]int32 // input nets; entries >= NIn are unused
	Cell int32               // originating netlist.CellID (for diagnostics/BMC)
	Kind cell.Kind
	NIn  uint8
}

// Run is a maximal span of consecutive same-kind ops in the instruction
// stream. The interpreters dispatch once per run instead of once per op.
type Run struct {
	Kind   cell.Kind
	Lo, Hi int32 // Ops[Lo:Hi]
}

// DFF is one precomputed flip-flop: the nets its edge update reads and
// writes, plus its reset value. The list replaces the full-cell scans
// the simulator and the BMC unroller used to do per cycle / per depth.
type DFF struct {
	D, Clk, Out int32
	Cell        int32 // originating netlist.CellID
	Init        bool
}

// Program is a compiled netlist. All fields are read-only after Compile.
type Program struct {
	Netlist *netlist.Netlist

	// Ops holds the combinational and clock cells in the netlist's
	// dependency (levelized topological) order: every op appears after
	// the ops driving its inputs. The order is exactly netlist.Topo()
	// order, so evaluation results — and the CNF variable-allocation
	// order in the BMC unroller — are identical to walking the raw
	// netlist.
	Ops  []Op
	Runs []Run

	// Level is the longest-path depth of each op (Ops index -> level).
	// Purely informational: it bounds the combinational depth and feeds
	// reports; evaluation relies only on the dependency order of Ops.
	Level []int32

	// DFFs lists every flip-flop in cell order.
	DFFs []DFF

	NumNets   int
	ClockRoot int32 // netlist.NoNet (-1) for pure-combinational modules

	// IsClockNet marks clock-network membership (the clock root plus
	// every clock-cell output) — the nets whose SP samples as 0.5 when
	// high (a running clock spends half of each period high).
	IsClockNet []bool

	// dataNets / clockNets partition [0, NumNets) for the packed SP
	// sampling loops (branch-free iteration per class).
	dataNets  []int32
	clockNets []int32
}

// Compile lowers a validated netlist into a Program. It panics on
// structural impossibilities (an input arity above cell.MaxArity) that
// netlist.Builder.Build already rejects — Compile accepting a netlist
// that the interpreters would silently mis-evaluate is never an option.
func Compile(nl *netlist.Netlist) *Program {
	p := &Program{
		Netlist:    nl,
		NumNets:    nl.NumNets,
		ClockRoot:  int32(nl.ClockRoot),
		IsClockNet: make([]bool, nl.NumNets),
	}

	// Instruction stream: the netlist's topological order, verbatim.
	topo := nl.Topo()
	p.Ops = make([]Op, len(topo))
	p.Level = make([]int32, len(topo))
	level := make([]int32, nl.NumNets) // net -> longest-path depth of its driver
	for i, cid := range topo {
		c := &nl.Cells[cid]
		if len(c.In) > cell.MaxArity {
			panic(fmt.Sprintf("engine: cell %s has %d inputs, engine supports at most %d (netlist bypassed Build validation)",
				c.Name, len(c.In), cell.MaxArity))
		}
		op := Op{Out: int32(c.Out), Cell: int32(cid), Kind: c.Kind, NIn: uint8(len(c.In))}
		var lvl int32
		for j, in := range c.In {
			op.In[j] = int32(in)
			if l := level[in]; l >= lvl {
				lvl = l + 1
			}
		}
		level[c.Out] = lvl
		p.Ops[i] = op
		p.Level[i] = lvl
	}

	// Kind-grouped dispatch runs over the unmodified order, counted first
	// so the slice is a single exact allocation — at million-op scale the
	// append-doubling copies, not the fills, used to dominate compile time.
	numRuns := 0
	for i := range p.Ops {
		if i == 0 || p.Ops[i].Kind != p.Ops[i-1].Kind {
			numRuns++
		}
	}
	p.Runs = make([]Run, 0, numRuns)
	for lo := 0; lo < len(p.Ops); {
		hi := lo + 1
		for hi < len(p.Ops) && p.Ops[hi].Kind == p.Ops[lo].Kind {
			hi++
		}
		p.Runs = append(p.Runs, Run{Kind: p.Ops[lo].Kind, Lo: int32(lo), Hi: int32(hi)})
		lo = hi
	}

	// Sequential and clock-network structure, same pre-counted shape.
	numDFFs := 0
	for i := range nl.Cells {
		if nl.Cells[i].Kind == cell.DFF {
			numDFFs++
		}
	}
	p.DFFs = make([]DFF, 0, numDFFs)
	if nl.ClockRoot != netlist.NoNet {
		p.IsClockNet[nl.ClockRoot] = true
	}
	for i := range nl.Cells {
		c := &nl.Cells[i]
		switch {
		case c.Kind == cell.DFF:
			p.DFFs = append(p.DFFs, DFF{
				D: int32(c.In[0]), Clk: int32(c.Clk), Out: int32(c.Out),
				Cell: int32(i), Init: c.Init,
			})
		case c.Kind.IsClock():
			p.IsClockNet[c.Out] = true
		}
	}
	numClock := 0
	for n := 0; n < p.NumNets; n++ {
		if p.IsClockNet[n] {
			numClock++
		}
	}
	p.clockNets = make([]int32, 0, numClock)
	p.dataNets = make([]int32, 0, p.NumNets-numClock)
	for n := 0; n < p.NumNets; n++ {
		if p.IsClockNet[n] {
			p.clockNets = append(p.clockNets, int32(n))
		} else {
			p.dataNets = append(p.dataNets, int32(n))
		}
	}
	return p
}

// Depth returns the maximum combinational level of the program (0 for a
// program with no combinational cells).
func (p *Program) Depth() int {
	d := int32(0)
	for _, l := range p.Level {
		if l > d {
			d = l
		}
	}
	return int(d)
}

// Stats renders a one-line program summary for reports and cmds.
func (p *Program) Stats() string {
	return fmt.Sprintf("%d ops in %d runs (depth %d), %d DFFs, %d nets (%d clock)",
		len(p.Ops), len(p.Runs), p.Depth(), len(p.DFFs), p.NumNets, len(p.clockNets))
}
