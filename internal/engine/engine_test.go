package engine_test

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/cell"
	"repro/internal/engine"
	"repro/internal/netlist"
	"repro/internal/sim"
	"repro/internal/synth"
)

// randomNetlist builds a random sequential DAG: a clock (with a buffered
// and a gated branch), a few input bits, and a mix of every
// combinational kind plus DFFs clocked from any clock branch. Cells only
// ever read already-driven nets, so the result always validates.
func randomNetlist(seed int64) *netlist.Netlist {
	rng := rand.New(rand.NewSource(seed))
	b := netlist.NewBuilder(fmt.Sprintf("rnd%d", seed))
	clk := b.Clock("clk")
	nIn := 2 + rng.Intn(5)
	in := b.InputBus("x", nIn)
	pool := append(netlist.Bus{}, in...)
	clks := []netlist.NetID{
		clk,
		b.Add(cell.CLKBUF, clk),
		b.Add(cell.CLKGATE, clk, pool[rng.Intn(len(pool))]),
	}
	kinds := []cell.Kind{
		cell.TIE0, cell.TIE1, cell.BUF, cell.INV,
		cell.AND2, cell.OR2, cell.NAND2, cell.NOR2,
		cell.XOR2, cell.XNOR2, cell.MUX2, cell.AOI21, cell.OAI21,
	}
	nCells := 5 + rng.Intn(45)
	for i := 0; i < nCells; i++ {
		if rng.Intn(4) == 0 {
			d := pool[rng.Intn(len(pool))]
			q := b.AddDFF(d, clks[rng.Intn(len(clks))], rng.Intn(2) == 0)
			pool = append(pool, q)
			continue
		}
		k := kinds[rng.Intn(len(kinds))]
		ins := make([]netlist.NetID, k.NumInputs())
		for j := range ins {
			ins[j] = pool[rng.Intn(len(pool))]
		}
		pool = append(pool, b.Add(k, ins...))
	}
	b.Output("y", pool[len(pool)-1])
	return b.MustBuild()
}

// driveBoth presents one cycle of stimulus — a full 64-lane word per
// input bit — to the packed evaluator and the matching single-lane slice
// to a scalar simulator.
func driveBoth(e *engine.Packed, s *sim.Simulator, in netlist.Bus, words []uint64, lane int) {
	bits := make([]bool, len(in))
	for j, n := range in {
		e.SetNet(n, words[j])
		bits[j] = words[j]>>uint(lane)&1 == 1
	}
	s.SetInputBits("x", bits)
}

// TestPackedLaneMatchesScalar is the cross-evaluator equivalence
// property: over randomized netlists and stimulus, one lane of the
// packed evaluator deep-equals a scalar sim.Simulator driven with that
// lane's stimulus slice — every settled net value (hence all DFF state)
// on every cycle, and the per-lane SP accumulation reconstructed from
// those values.
func TestPackedLaneMatchesScalar(t *testing.T) {
	check := func(seed int64, lane8 uint8) bool {
		lane := int(lane8) % engine.Lanes
		nl := randomNetlist(seed)
		prog := engine.Cached(nl)
		e := engine.NewPacked(prog)
		s := sim.New(nl)
		s.EnableSP()
		rng := rand.New(rand.NewSource(seed ^ 0x5eed))
		in, _ := nl.FindInput("x")
		laneOnes := make([]float64, nl.NumNets) // expected lane SP counters
		words := make([]uint64, len(in.Bits))
		for cyc := 0; cyc < 25; cyc++ {
			for j := range words {
				words[j] = rng.Uint64()
			}
			driveBoth(e, s, in.Bits, words, lane)
			e.Settle()
			for n := 0; n < nl.NumNets; n++ {
				id := netlist.NetID(n)
				if e.Lane(id, lane) != s.Net(id) {
					t.Logf("seed %d lane %d cycle %d: net %s packed=%v scalar=%v",
						seed, lane, cyc, nl.NetName(id), e.Lane(id, lane), s.Net(id))
					return false
				}
				switch {
				case prog.IsClockNet[n]:
					if e.Lane(id, lane) {
						laneOnes[n] += 0.5
					}
				case e.Lane(id, lane):
					laneOnes[n] += 1.0
				}
			}
			e.Step()
			s.Step()
		}
		// The scalar SP counters must equal the residency reconstructed
		// from the packed lane's observed values — same rounding, since
		// both are sums of exact halves.
		prof := s.Profile()
		for n := range laneOnes {
			if prof.Ones[n] != laneOnes[n] {
				t.Logf("seed %d lane %d: net %d Ones packed-lane=%v scalar=%v",
					seed, lane, n, laneOnes[n], prof.Ones[n])
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestPackedSPAggregationIsExact proves the popcount accumulation
// argument from DESIGN.md: the packed evaluator's aggregate Ones
// counters equal the float64 sum of 64 independent scalar simulators'
// counters, exactly (==, not approximately), and the merged profile has
// the same SP. Counts are integers (halves on clock nets), so no
// rounding ever occurs.
func TestPackedSPAggregationIsExact(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 17, 99} {
		nl := randomNetlist(seed)
		prog := engine.Cached(nl)
		e := engine.NewPacked(prog)
		e.EnableSP()
		scalars := make([]*sim.Simulator, engine.Lanes)
		for l := range scalars {
			scalars[l] = sim.New(nl)
			scalars[l].EnableSP()
		}
		rng := rand.New(rand.NewSource(seed))
		in, _ := nl.FindInput("x")
		words := make([]uint64, len(in.Bits))
		bits := make([]bool, len(in.Bits))
		const cycles = 20
		for cyc := 0; cyc < cycles; cyc++ {
			for j := range words {
				words[j] = rng.Uint64()
			}
			for j, n := range in.Bits {
				e.SetNet(n, words[j])
			}
			for l, s := range scalars {
				for j := range bits {
					bits[j] = words[j]>>uint(l)&1 == 1
				}
				s.SetInputBits("x", bits)
			}
			e.Step()
			for _, s := range scalars {
				s.Step()
			}
		}
		packed := e.Profile()
		parts := make([]*sim.Profile, len(scalars))
		for l, s := range scalars {
			parts[l] = s.Profile()
		}
		merged := sim.MergeProfiles(parts...)
		if packed.Cycles != merged.Cycles {
			t.Fatalf("seed %d: packed covers %d lane-cycles, merged scalars %d",
				seed, packed.Cycles, merged.Cycles)
		}
		for n := range packed.Ones {
			if packed.Ones[n] != merged.Ones[n] {
				t.Errorf("seed %d net %d: packed Ones %v != sum-of-scalars %v",
					seed, n, packed.Ones[n], merged.Ones[n])
			}
		}
		if !reflect.DeepEqual(packed.SP, merged.SP) {
			t.Errorf("seed %d: packed SP differs from merged scalar SP", seed)
		}
	}
}

// TestCompileStructure checks the compiled program's shape: one op per
// non-sequential cell in exactly topological order, runs that partition
// the stream into same-kind spans, the complete DFF list in cell order,
// and a dependency order where every operand is available before its
// reader.
func TestCompileStructure(t *testing.T) {
	nl := randomNetlist(42)
	p := engine.Compile(nl)
	topo := nl.Topo()
	if len(p.Ops) != len(topo) {
		t.Fatalf("%d ops, want %d", len(p.Ops), len(topo))
	}
	for i, cid := range topo {
		if p.Ops[i].Cell != int32(cid) {
			t.Fatalf("op %d compiled from cell %d, want %d (topo order must be preserved)",
				i, p.Ops[i].Cell, cid)
		}
	}
	// Runs partition [0, len(Ops)) into maximal same-kind spans.
	at := 0
	for _, r := range p.Runs {
		if int(r.Lo) != at || r.Hi <= r.Lo {
			t.Fatalf("run %+v does not continue partition at %d", r, at)
		}
		for i := r.Lo; i < r.Hi; i++ {
			if p.Ops[i].Kind != r.Kind {
				t.Fatalf("op %d kind %s inside %s run", i, p.Ops[i].Kind, r.Kind)
			}
		}
		at = int(r.Hi)
	}
	if at != len(p.Ops) {
		t.Fatalf("runs cover %d ops, want %d", at, len(p.Ops))
	}
	if got, want := len(p.DFFs), len(nl.DFFs()); got != want {
		t.Fatalf("%d DFFs, want %d", got, want)
	}
	// Dependency order: an op's inputs are either primary/state nets or
	// outputs of earlier ops.
	ready := make([]bool, nl.NumNets)
	for n := 0; n < nl.NumNets; n++ {
		d := nl.Driver(netlist.NetID(n))
		if d == netlist.NoCell || nl.Cells[d].Kind.IsSequential() {
			ready[n] = true
		}
	}
	for i := range p.Ops {
		op := &p.Ops[i]
		for j := 0; j < int(op.NIn); j++ {
			if !ready[op.In[j]] {
				t.Fatalf("op %d reads net %d before it is computed", i, op.In[j])
			}
		}
		ready[op.Out] = true
		if lvl := p.Level[i]; lvl < 0 || int(lvl) > p.Depth() {
			t.Fatalf("op %d has level %d outside [0, %d]", i, lvl, p.Depth())
		}
	}
}

// TestCachedSharesPrograms checks the keyed cache: same netlist, same
// program instance; distinct netlists, distinct programs.
// TestCompileAllocsConstant guards the million-op compile path: every
// Program slice is pre-counted and allocated exactly once, so the
// allocation count must not grow with netlist size. The bound is a small
// constant (the fixed set of slice headers plus the Program itself), not
// a per-cell budget.
func TestCompileAllocsConstant(t *testing.T) {
	small := synth.Pipeline{Stages: 3, Width: 8, Lanes: 1}.Build()
	large := synth.Pipeline{Stages: 5, Width: 32, Lanes: 4}.Build()
	if len(large.Cells) < 4*len(small.Cells) {
		t.Fatalf("test premise broken: %d vs %d cells", len(small.Cells), len(large.Cells))
	}
	measure := func(nl *netlist.Netlist) float64 {
		return testing.AllocsPerRun(10, func() { engine.Compile(nl) })
	}
	a, b := measure(small), measure(large)
	if a != b {
		t.Errorf("Compile allocations scale with netlist size: %v (small) vs %v (large)", a, b)
	}
	if a > 16 {
		t.Errorf("Compile makes %v allocations, want a small constant", a)
	}
}

func TestCachedSharesPrograms(t *testing.T) {
	a := randomNetlist(7)
	b := randomNetlist(8)
	if engine.Cached(a) != engine.Cached(a) {
		t.Error("same netlist compiled twice")
	}
	if engine.Cached(a) == engine.Cached(b) {
		t.Error("distinct netlists share a program")
	}
	if sim.New(a).Program() != engine.Cached(a) {
		t.Error("simulator does not share the cached program")
	}
}

// TestOversizedArityPanics proves Compile refuses a netlist whose cells
// exceed cell.MaxArity inputs (only reachable by bypassing Build, which
// rejects such netlists itself).
func TestOversizedArityPanics(t *testing.T) {
	nl := randomNetlist(3)
	clone := nl.Clone()
	for i := range clone.Cells {
		if clone.Cells[i].Kind == cell.AND2 {
			clone.Cells[i].In = append(clone.Cells[i].In, clone.Cells[i].In[0], clone.Cells[i].In[0])
			defer func() {
				if recover() == nil {
					t.Error("Compile accepted a cell with fan-in above cell.MaxArity")
				}
			}()
			engine.Compile(clone)
			return
		}
	}
	t.Skip("random netlist had no AND2 to widen")
}
