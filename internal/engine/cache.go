package engine

import (
	"sync"

	"repro/internal/lru"
	"repro/internal/netlist"
)

// The program cache keys compiled programs by netlist identity.
// Netlists are immutable after Build (instrumentation passes construct
// new ones through NewBuilderFrom), so pointer identity is a sound key.
//
// The cache exists because the workflow replays the same few netlists
// thousands of times from many goroutines: the module netlist behind
// every profiling chunk and every netlist-backed CPU, and one failing
// netlist per (pair, failure-mode) task whose whole suite replay runs on
// it. Caching makes the compile a once-per-netlist cost shared read-only
// across the PR 1 worker pool instead of a per-simulator cost.
//
// Failing netlists are transient — each test-quality task builds one,
// replays the suite, and drops it — so an unbounded map would grow with
// the experiment. The cache is a bounded LRU: the module netlists every
// campaign keeps coming back to stay resident while the one-shot failing
// netlists cycle through the cold end. Eviction only costs a recompile,
// never correctness.
const cacheCap = 512

var cache = struct {
	sync.Mutex
	c *lru.Cache[*netlist.Netlist, *Program]
}{c: lru.New[*netlist.Netlist, *Program](cacheCap)}

// Cached returns the compiled program for nl, compiling and memoizing it
// on first use. Safe for concurrent use; the returned program is shared
// and read-only.
func Cached(nl *netlist.Netlist) *Program {
	cache.Lock()
	defer cache.Unlock()
	if p, ok := cache.c.Get(nl); ok {
		return p
	}
	p := Compile(nl)
	cache.c.Add(nl, p)
	return p
}

// CacheSize reports the number of memoized programs (for tests).
func CacheSize() int {
	cache.Lock()
	defer cache.Unlock()
	return cache.c.Len()
}

// CacheStats snapshots the program cache's hit/miss/eviction counters.
func CacheStats() lru.Stats {
	cache.Lock()
	defer cache.Unlock()
	return cache.c.Stats()
}
