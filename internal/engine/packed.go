package engine

import (
	"fmt"
	"math/bits"

	"repro/internal/cell"
	"repro/internal/netlist"
)

// Lanes is the width of the packed evaluator: one uint64 word per net,
// each bit position an independent stimulus stream.
const Lanes = 64

// Packed is the 64-lane bit-parallel interpreter over a compiled
// program. Every net holds a uint64 word; bit l of every word belongs to
// lane l, an independent simulation advancing in lock-step with the
// other 63. One Settle costs about the same as a scalar Settle (the ALU
// operates on words either way), so evaluating 64 stimulus streams per
// pass is where the throughput win comes from.
//
// SP residency is accumulated in aggregate across lanes via popcount:
// each cycle a data net adds OnesCount64(word) — the exact number of
// lanes observing a logical 1 — and a clock-network net adds half that
// (a running clock spends half of each period high; a gated-off clock
// idles low, contributing nothing). Counts are integers (halves for
// clock nets) accumulated in float64, so sums stay exact far beyond any
// realistic observation length (2^53 half-cycles).
//
// A Packed is not safe for concurrent use; create one per goroutine.
// The compiled program it runs is shared read-only.
type Packed struct {
	prog   *Program
	vals   []uint64 // current word of every net
	dffBuf []uint64 // staged DFF next-state, one word per flip-flop
	cycles uint64

	spEnabled bool
	spOnes    []float64 // per net: aggregate lane-residency (lane-cycles)
}

// NewPacked creates a packed evaluator in the reset state: all DFFs hold
// their Init value in every lane and all primary inputs are 0.
func NewPacked(p *Program) *Packed {
	e := &Packed{
		prog:   p,
		vals:   make([]uint64, p.NumNets),
		dffBuf: make([]uint64, len(p.DFFs)),
	}
	e.Reset()
	return e
}

// Program returns the compiled program under evaluation.
func (e *Packed) Program() *Program { return e.prog }

// Reset re-applies reset values in every lane and zeroes the cycle
// counter. SP counters are preserved (call ResetSP to clear), matching
// the scalar simulator's Reset contract.
func (e *Packed) Reset() {
	for i := range e.vals {
		e.vals[i] = 0
	}
	if e.prog.ClockRoot >= 0 {
		e.vals[e.prog.ClockRoot] = ^uint64(0) // clock enabled in every lane
	}
	for i := range e.prog.DFFs {
		if e.prog.DFFs[i].Init {
			e.vals[e.prog.DFFs[i].Out] = ^uint64(0)
		}
	}
	e.cycles = 0
}

// EnableSP turns on aggregate signal-probability accumulation.
func (e *Packed) EnableSP() {
	e.spEnabled = true
	if e.spOnes == nil {
		e.spOnes = make([]float64, e.prog.NumNets)
	}
}

// ResetSP clears accumulated SP counters.
func (e *Packed) ResetSP() {
	for i := range e.spOnes {
		e.spOnes[i] = 0
	}
}

// Cycles returns the number of executed packed cycles (each advancing
// all 64 lanes by one clock cycle).
func (e *Packed) Cycles() uint64 { return e.cycles }

// SetNet drives net n with a full word: bit l is the value lane l sees.
func (e *Packed) SetNet(n netlist.NetID, word uint64) { e.vals[n] = word }

// Net reads the current (settled or not — callers settle explicitly)
// word of net n.
func (e *Packed) Net(n netlist.NetID) uint64 { return e.vals[n] }

// Lane reads the value of net n in a single lane.
func (e *Packed) Lane(n netlist.NetID, lane int) bool {
	return e.vals[n]>>uint(lane)&1 == 1
}

// SetInput drives every bit of a named input port with per-lane words:
// words[i] is the word of port bit i (LSB first). The word count must
// match the port width.
func (e *Packed) SetInput(name string, words []uint64) {
	p, ok := e.prog.Netlist.FindInput(name)
	if !ok {
		panic(fmt.Sprintf("engine: no input port %q on %s", name, e.prog.Netlist.Name))
	}
	if len(words) != len(p.Bits) {
		panic(fmt.Sprintf("engine: port %q width %d, got %d words", name, len(p.Bits), len(words)))
	}
	for i, n := range p.Bits {
		e.vals[n] = words[i]
	}
}

// Settle propagates all 64 lanes through the combinational logic (and
// the clock network) in program order.
func (e *Packed) Settle() { settlePacked(e.prog, e.vals) }

// settlePacked is the shared 64-lane combinational evaluation loop,
// used by both the uniform Packed evaluator and the fault-overlay
// FaultedPacked evaluator.
func settlePacked(p *Program, vals []uint64) {
	ops := p.Ops
	for _, r := range p.Runs {
		run := ops[r.Lo:r.Hi]
		switch r.Kind {
		case cell.TIE0:
			for i := range run {
				vals[run[i].Out] = 0
			}
		case cell.TIE1:
			for i := range run {
				vals[run[i].Out] = ^uint64(0)
			}
		case cell.BUF, cell.CLKBUF:
			for i := range run {
				vals[run[i].Out] = vals[run[i].In[0]]
			}
		case cell.INV:
			for i := range run {
				vals[run[i].Out] = ^vals[run[i].In[0]]
			}
		case cell.AND2, cell.CLKGATE:
			for i := range run {
				vals[run[i].Out] = vals[run[i].In[0]] & vals[run[i].In[1]]
			}
		case cell.OR2:
			for i := range run {
				vals[run[i].Out] = vals[run[i].In[0]] | vals[run[i].In[1]]
			}
		case cell.NAND2:
			for i := range run {
				vals[run[i].Out] = ^(vals[run[i].In[0]] & vals[run[i].In[1]])
			}
		case cell.NOR2:
			for i := range run {
				vals[run[i].Out] = ^(vals[run[i].In[0]] | vals[run[i].In[1]])
			}
		case cell.XOR2:
			for i := range run {
				vals[run[i].Out] = vals[run[i].In[0]] ^ vals[run[i].In[1]]
			}
		case cell.XNOR2:
			for i := range run {
				vals[run[i].Out] = ^(vals[run[i].In[0]] ^ vals[run[i].In[1]])
			}
		case cell.MUX2:
			for i := range run {
				s := vals[run[i].In[2]]
				vals[run[i].Out] = (vals[run[i].In[0]] &^ s) | (vals[run[i].In[1]] & s)
			}
		case cell.AOI21:
			for i := range run {
				vals[run[i].Out] = ^((vals[run[i].In[0]] & vals[run[i].In[1]]) | vals[run[i].In[2]])
			}
		case cell.OAI21:
			for i := range run {
				vals[run[i].Out] = ^((vals[run[i].In[0]] | vals[run[i].In[1]]) & vals[run[i].In[2]])
			}
		default:
			panic("engine: cannot evaluate " + r.Kind.String())
		}
	}
}

// Step completes one cycle in all lanes: settle, sample SP, then apply
// the rising clock edge per lane — a flip-flop's lane samples D only
// where its clock word is high, so clock gating acts independently per
// lane, exactly like the scalar simulator's per-cycle enable check.
func (e *Packed) Step() {
	e.Settle()
	if e.spEnabled {
		e.sampleSP()
	}
	vals := e.vals
	dffs := e.prog.DFFs
	for i := range dffs {
		f := &dffs[i]
		clk := vals[f.Clk]
		e.dffBuf[i] = (vals[f.D] & clk) | (vals[f.Out] &^ clk)
	}
	for i := range dffs {
		vals[dffs[i].Out] = e.dffBuf[i]
	}
	e.cycles++
}

// Run executes n cycles with the current inputs.
func (e *Packed) Run(n int) {
	for i := 0; i < n; i++ {
		e.Step()
	}
}

// sampleSP accumulates one cycle of aggregate residency across lanes.
func (e *Packed) sampleSP() {
	for _, n := range e.prog.dataNets {
		e.spOnes[n] += float64(bits.OnesCount64(e.vals[n]))
	}
	for _, n := range e.prog.clockNets {
		e.spOnes[n] += 0.5 * float64(bits.OnesCount64(e.vals[n]))
	}
}

// Profile snapshots the accumulated SP counters. Cycles counts
// lane-cycles (packed cycles x 64): each lane is a full, independent
// observation, so a packed profile merges with scalar partial profiles
// through MergeProfiles without any special casing — the Ones counters
// are the same "sum over observed cycles of per-cycle residency"
// quantity, just summed over 64 streams at once.
func (e *Packed) Profile() *Profile {
	p := &Profile{
		Cycles: e.cycles * Lanes,
		SP:     make([]float64, e.prog.NumNets),
		Ones:   make([]float64, e.prog.NumNets),
	}
	copy(p.Ones, e.spOnes)
	if p.Cycles == 0 {
		return p
	}
	for n := range p.SP {
		p.SP[n] = p.Ones[n] / float64(p.Cycles)
	}
	return p
}
