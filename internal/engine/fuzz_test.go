package engine_test

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/netlist"
	"repro/internal/sim"
)

// FuzzPackedVsScalar lets the fuzzer pick both the netlist shape (via
// seed) and the raw stimulus bytes, then cross-checks two lanes of the
// packed evaluator against independently driven scalar simulators on
// every settled net of every cycle. Each stimulus byte is expanded to a
// full 64-bit lane word with a splitmix-style mix so high lanes see
// different bits than lane 0.
func FuzzPackedVsScalar(f *testing.F) {
	f.Add(int64(1), []byte{0x00})
	f.Add(int64(7), []byte{0xff, 0x13, 0xa5})
	f.Add(int64(42), []byte{0xde, 0xad, 0xbe, 0xef, 0x01, 0x02})
	f.Fuzz(func(t *testing.T, seed int64, stim []byte) {
		if len(stim) == 0 || len(stim) > 256 {
			t.Skip()
		}
		nl := randomNetlist(seed % 1024)
		prog := engine.Cached(nl)
		e := engine.NewPacked(prog)
		lanes := []int{0, engine.Lanes - 1}
		sims := make([]*sim.Simulator, len(lanes))
		for i := range sims {
			sims[i] = sim.New(nl)
		}
		in, _ := nl.FindInput("x")
		words := make([]uint64, len(in.Bits))
		bits := make([]bool, len(in.Bits))
		for cyc, b := range stim {
			for j := range words {
				// Deterministic per-(cycle, bit) word derived from the
				// fuzzed byte; odd multiplier so every byte value changes
				// every lane.
				x := uint64(b) + uint64(cyc)<<8 + uint64(j)<<16
				x *= 0x9e3779b97f4a7c15
				x ^= x >> 29
				words[j] = x
			}
			for j, n := range in.Bits {
				e.SetNet(n, words[j])
			}
			for i, l := range lanes {
				for j := range bits {
					bits[j] = words[j]>>uint(l)&1 == 1
				}
				sims[i].SetInputBits("x", bits)
			}
			e.Settle()
			for n := 0; n < nl.NumNets; n++ {
				id := netlist.NetID(n)
				for i, l := range lanes {
					if e.Lane(id, l) != sims[i].Net(id) {
						t.Fatalf("cycle %d net %s lane %d: packed=%v scalar=%v",
							cyc, nl.NetName(id), l, e.Lane(id, l), sims[i].Net(id))
					}
				}
			}
			e.Step()
			for _, s := range sims {
				s.Step()
			}
		}
	})
}
