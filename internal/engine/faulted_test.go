package engine_test

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/cell"
	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/netlist"
	"repro/internal/sim"
	"repro/internal/sta"
)

// randomSequentialNetlist builds a random synchronous DAG with several
// flip-flops and exposed outputs (the same shape the BMC differential
// tests use), so random fault specs have DFF pairs to target and the
// fault cone usually reaches an observable bit.
func randomSequentialNetlist(seed int64) *netlist.Netlist {
	rng := rand.New(rand.NewSource(seed))
	b := netlist.NewBuilder(fmt.Sprintf("rnd%d", seed))
	clk := b.Clock("clk")
	nIn := 2 + rng.Intn(4)
	in := b.InputBus("x", nIn)
	pool := append(netlist.Bus{}, in...)
	kinds := []cell.Kind{
		cell.BUF, cell.INV, cell.AND2, cell.OR2, cell.NAND2,
		cell.NOR2, cell.XOR2, cell.XNOR2, cell.MUX2, cell.AOI21, cell.OAI21,
	}
	pool = append(pool, b.AddDFF(pool[rng.Intn(len(pool))], clk, rng.Intn(2) == 0))
	pool = append(pool, b.AddDFF(pool[rng.Intn(len(pool))], clk, rng.Intn(2) == 0))
	nCells := 5 + rng.Intn(30)
	for i := 0; i < nCells; i++ {
		if rng.Intn(4) == 0 {
			d := pool[rng.Intn(len(pool))]
			pool = append(pool, b.AddDFF(d, clk, rng.Intn(2) == 0))
			continue
		}
		k := kinds[rng.Intn(len(kinds))]
		ins := make([]netlist.NetID, k.NumInputs())
		for j := range ins {
			ins[j] = pool[rng.Intn(len(pool))]
		}
		pool = append(pool, b.Add(k, ins...))
	}
	for i := 0; i < 3 && i < len(pool); i++ {
		b.Output(fmt.Sprintf("y%d", i), pool[len(pool)-1-i])
	}
	return b.MustBuild()
}

func dffCells(nl *netlist.Netlist) []netlist.CellID {
	var out []netlist.CellID
	for i, c := range nl.Cells {
		if c.Kind == cell.DFF {
			out = append(out, netlist.CellID(i))
		}
	}
	return out
}

func randomFaultSpec(rng *rand.Rand, dffs []netlist.CellID) fault.Spec {
	s := fault.Spec{
		Start: dffs[rng.Intn(len(dffs))],
		End:   dffs[rng.Intn(len(dffs))],
		C:     fault.CValue(rng.Intn(3)),
		Edge:  fault.EdgeFilter(rng.Intn(3)),
	}
	if rng.Intn(2) == 1 {
		s.Type = sta.Hold
	}
	return s
}

// overlayFor mirrors the inject package's fault.Spec -> engine.Overlay
// translation for a single lane.
func overlayFor(f fault.Spec, lanes uint64) engine.Overlay {
	o := engine.Overlay{Lanes: lanes, Start: f.Start, End: f.End}
	if f.Type == sta.Hold {
		o.Check = engine.OverlayHold
	}
	o.C = engine.OverlayC(f.C)
	o.Edge = engine.OverlayEdge(f.Edge)
	return o
}

// TestFaultedPackedMatchesFailingNetlist is the overlay-semantics
// differential: for random netlists and random single/multi fault
// specs, a FaultedPacked lane must match, output bit for output bit and
// cycle for cycle, a scalar simulation of the corresponding
// fault.FailingNetlist — while lane 0 matches the healthy netlist.
func TestFaultedPackedMatchesFailingNetlist(t *testing.T) {
	cases := 60
	if testing.Short() {
		cases = 12
	}
	for seed := int64(0); seed < int64(cases); seed++ {
		rng := rand.New(rand.NewSource(seed ^ 0x5eed))
		nl := randomSequentialNetlist(seed)
		dffs := dffCells(nl)

		nFaults := 1 + rng.Intn(2)
		var specs []fault.Spec
		ends := map[netlist.CellID]bool{}
		for len(specs) < nFaults {
			s := randomFaultSpec(rng, dffs)
			if ends[s.End] {
				continue
			}
			ends[s.End] = true
			specs = append(specs, s)
		}
		var failNl *netlist.Netlist
		if len(specs) == 1 {
			failNl = fault.FailingNetlist(nl, specs[0])
		} else {
			var err error
			failNl, err = fault.FailingNetlistMulti(nl, specs...)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
		}

		lane := 1 + rng.Intn(63)
		var overlays []engine.Overlay
		for _, s := range specs {
			overlays = append(overlays, overlayFor(s, uint64(1)<<uint(lane)))
		}
		fp, err := engine.CompileFaulted(engine.Cached(nl), overlays)
		if err != nil {
			t.Fatalf("seed %d: CompileFaulted: %v", seed, err)
		}
		pe := engine.NewFaultedPacked(fp)
		healthy := sim.New(nl)
		failing := sim.New(failNl)

		xW := 0
		for _, p := range nl.Inputs {
			if p.Name == "x" {
				xW = len(p.Bits)
			}
		}
		for cyc := 0; cyc < 40; cyc++ {
			in := rng.Uint64() & (1<<uint(xW) - 1)
			pe.SetInput("x", in)
			healthy.SetInput("x", in)
			failing.SetInput("x", in)
			pe.Settle()
			for _, p := range nl.Outputs {
				wantG := healthy.Output(p.Name)
				wantF := failing.Output(p.Name)
				for i, n := range p.Bits {
					if got := pe.Lane(n, 0); got != (wantG>>uint(i)&1 == 1) {
						t.Fatalf("seed %d cycle %d: golden lane %s[%d] = %v, scalar %v",
							seed, cyc, p.Name, i, got, !got)
					}
					if got := pe.Lane(n, lane); got != (wantF>>uint(i)&1 == 1) {
						t.Fatalf("seed %d cycle %d lane %d (faults %v): %s[%d] = %v, scalar failing %v",
							seed, cyc, lane, specs, p.Name, i, got, !got)
					}
				}
			}
			pe.Edge()
			healthy.Step()
			failing.Step()
		}
	}
}

// TestFaultedPackedRetire: a lane retired at reset never sees its
// overlay — it tracks the golden circuit for the whole run.
func TestFaultedPackedRetire(t *testing.T) {
	nl := randomSequentialNetlist(7)
	dffs := dffCells(nl)
	spec := fault.Spec{Type: sta.Setup, Start: dffs[0], End: dffs[1], C: fault.C1, Edge: fault.AnyChange}
	fp, err := engine.CompileFaulted(engine.Cached(nl), []engine.Overlay{overlayFor(spec, 1<<5)})
	if err != nil {
		t.Fatal(err)
	}
	pe := engine.NewFaultedPacked(fp)
	pe.Retire(1 << 5)
	healthy := sim.New(nl)
	rng := rand.New(rand.NewSource(9))
	for cyc := 0; cyc < 30; cyc++ {
		in := rng.Uint64() & 3
		pe.SetInput("x", in)
		healthy.SetInput("x", in)
		pe.Settle()
		for _, p := range nl.Outputs {
			want := healthy.Output(p.Name)
			for i, n := range p.Bits {
				if got := pe.Lane(n, 5); got != (want>>uint(i)&1 == 1) {
					t.Fatalf("cycle %d: retired lane %s[%d] = %v, golden %v", cyc, p.Name, i, got, !got)
				}
			}
		}
		pe.Edge()
		healthy.Step()
	}
	if pe.Retired() != 1<<5 {
		t.Fatalf("retired mask = %#x", pe.Retired())
	}
}

// TestCompileFaultedRejects pins the overlay validation rules.
func TestCompileFaultedRejects(t *testing.T) {
	nl := randomSequentialNetlist(3)
	dffs := dffCells(nl)
	p := engine.Cached(nl)
	comb := netlist.CellID(-1)
	for i := range nl.Cells {
		if nl.Cells[i].Kind != cell.DFF {
			comb = netlist.CellID(i)
			break
		}
	}
	ok := engine.Overlay{Lanes: 1 << 1, Start: dffs[0], End: dffs[1]}
	bad := []struct {
		name string
		ovs  []engine.Overlay
	}{
		{"empty mask", []engine.Overlay{{Start: dffs[0], End: dffs[1]}}},
		{"golden lane", []engine.Overlay{{Lanes: 1, Start: dffs[0], End: dffs[1]}}},
		{"out of range", []engine.Overlay{{Lanes: 1 << 1, Start: 1 << 29, End: dffs[1]}}},
		{"not a DFF", []engine.Overlay{{Lanes: 1 << 1, Start: comb, End: dffs[1]}}},
		{"duplicate endpoint same lane", []engine.Overlay{ok, {Lanes: 1 << 1, Start: dffs[1], End: dffs[1]}}},
	}
	for _, tc := range bad {
		if _, err := engine.CompileFaulted(p, tc.ovs); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	// The same endpoint in different lanes is legal — that is the whole
	// point of lane packing.
	if _, err := engine.CompileFaulted(p, []engine.Overlay{ok, {Lanes: 1 << 2, Start: dffs[1], End: dffs[1]}}); err != nil {
		t.Errorf("distinct-lane endpoint sharing rejected: %v", err)
	}
}
