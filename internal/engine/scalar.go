package engine

import "repro/internal/cell"

// Settle propagates values through the compiled combinational logic
// (and the clock network) in program order. vals must have length
// p.NumNets. Semantics match the original per-cell interpreter in
// internal/sim exactly — same order, same results — it is only the
// dispatch that changed: a flat instruction stream grouped into
// same-kind runs instead of a pointer-chasing switch over netlist cells.
func (p *Program) Settle(vals []bool) {
	ops := p.Ops
	for _, r := range p.Runs {
		run := ops[r.Lo:r.Hi]
		switch r.Kind {
		case cell.TIE0:
			for i := range run {
				vals[run[i].Out] = false
			}
		case cell.TIE1:
			for i := range run {
				vals[run[i].Out] = true
			}
		case cell.BUF, cell.CLKBUF:
			for i := range run {
				vals[run[i].Out] = vals[run[i].In[0]]
			}
		case cell.INV:
			for i := range run {
				vals[run[i].Out] = !vals[run[i].In[0]]
			}
		case cell.AND2, cell.CLKGATE:
			for i := range run {
				vals[run[i].Out] = vals[run[i].In[0]] && vals[run[i].In[1]]
			}
		case cell.OR2:
			for i := range run {
				vals[run[i].Out] = vals[run[i].In[0]] || vals[run[i].In[1]]
			}
		case cell.NAND2:
			for i := range run {
				vals[run[i].Out] = !(vals[run[i].In[0]] && vals[run[i].In[1]])
			}
		case cell.NOR2:
			for i := range run {
				vals[run[i].Out] = !(vals[run[i].In[0]] || vals[run[i].In[1]])
			}
		case cell.XOR2:
			for i := range run {
				vals[run[i].Out] = vals[run[i].In[0]] != vals[run[i].In[1]]
			}
		case cell.XNOR2:
			for i := range run {
				vals[run[i].Out] = vals[run[i].In[0]] == vals[run[i].In[1]]
			}
		case cell.MUX2:
			for i := range run {
				if vals[run[i].In[2]] {
					vals[run[i].Out] = vals[run[i].In[1]]
				} else {
					vals[run[i].Out] = vals[run[i].In[0]]
				}
			}
		case cell.AOI21:
			for i := range run {
				vals[run[i].Out] = !((vals[run[i].In[0]] && vals[run[i].In[1]]) || vals[run[i].In[2]])
			}
		case cell.OAI21:
			for i := range run {
				vals[run[i].Out] = !((vals[run[i].In[0]] || vals[run[i].In[1]]) && vals[run[i].In[2]])
			}
		default:
			panic("engine: cannot evaluate " + r.Kind.String())
		}
	}
}

// StepDFFs applies the rising clock edge to every flip-flop whose
// (possibly gated) clock net is high: one pass over the precomputed DFF
// list captures the staged next-state into scratch, then a tight
// write-back publishes it. scratch must have length len(p.DFFs); it
// replaces the per-net staging array (and the two full-cell scans) the
// simulator used before the engine existed.
func (p *Program) StepDFFs(vals []bool, scratch []bool) {
	for i := range p.DFFs {
		f := &p.DFFs[i]
		if vals[f.Clk] {
			scratch[i] = vals[f.D]
		} else {
			scratch[i] = vals[f.Out]
		}
	}
	for i := range p.DFFs {
		vals[p.DFFs[i].Out] = scratch[i]
	}
}

// ResetScalar writes the reset state into vals: all nets 0, the clock
// root high (clock enabled), every DFF output at its Init value.
func (p *Program) ResetScalar(vals []bool) {
	for i := range vals {
		vals[i] = false
	}
	if p.ClockRoot >= 0 {
		vals[p.ClockRoot] = true
	}
	for i := range p.DFFs {
		vals[p.DFFs[i].Out] = p.DFFs[i].Init
	}
}
